open Netsim

type hop = {
  index : int;
  replies : int;
  slope : float option;
  capacity : float option;
  latency : float option;
}

type result = { hops : hop array; narrow_hop : int option }

let fit_min_line points =
  match points with
  | [] | [ _ ] -> None
  | _ ->
      let n = float_of_int (List.length points) in
      let sx = List.fold_left (fun a (s, _) -> a +. float_of_int s) 0. points in
      let sy = List.fold_left (fun a (_, r) -> a +. r) 0. points in
      let sxx = List.fold_left (fun a (s, _) -> a +. (float_of_int s *. float_of_int s)) 0. points in
      let sxy = List.fold_left (fun a (s, r) -> a +. (float_of_int s *. r)) 0. points in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Stats.Float_cmp.is_zero ~eps:1e-9 denom then None
      else
        let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
        let intercept = (sy -. (slope *. sx)) /. n in
        Some (slope, intercept)

let default_sizes = [ 200; 500; 800; 1100; 1400 ]

(* State for one measurement campaign: per (hop, size), the minimum
   observed RTT. *)
type campaign = {
  net : Net.t;
  flow : int;
  src : int;
  dst : int;
  sizes : int array;
  probes_per_size : int;
  hops : int;
  (* send time per outstanding probe, indexed by seq *)
  sent : (int, float) Hashtbl.t;
  (* (hop, size) -> min rtt *)
  min_rtt : (int * int, float) Hashtbl.t;
  replies : int array;  (* per hop, 0-based *)
}

(* Probe seq encodes (hop, size index, repetition) so the reply can be
   matched without extra state. *)
let seq_of c ~hop ~size_idx ~rep =
  (((hop * Array.length c.sizes) + size_idx) * c.probes_per_size) + rep

let decode c seq =
  let rep = seq mod c.probes_per_size in
  let rest = seq / c.probes_per_size in
  let size_idx = rest mod Array.length c.sizes in
  let hop = rest / Array.length c.sizes in
  (hop, size_idx, rep)

let on_reply c (pkt : Packet.t) =
  match Hashtbl.find_opt c.sent pkt.Packet.seq with
  | None -> ()
  | Some sent_at ->
      Hashtbl.remove c.sent pkt.Packet.seq;
      let now = Sim.now (Net.sim c.net) in
      let rtt = now -. sent_at in
      let hop, size_idx, _ = decode c pkt.Packet.seq in
      c.replies.(hop - 1) <- c.replies.(hop - 1) + 1;
      let key = (hop, c.sizes.(size_idx)) in
      (match Hashtbl.find_opt c.min_rtt key with
      | Some best when best <= rtt -> ()
      | Some _ | None -> Hashtbl.replace c.min_rtt key rtt)

let estimate c =
  (* Per-hop line fits on the per-size minima.  [min_rtt] is only ever
     read by keyed [find_opt] in the fixed (hop, size) order below —
     never iterated — so Hashtbl iteration order (R8) cannot reach the
     estimates. *)
  let fits =
    Array.init c.hops (fun i ->
        let hop = i + 1 in
        let points =
          Array.to_list c.sizes
          |> List.filter_map (fun size ->
                 Option.map (fun r -> (size, r)) (Hashtbl.find_opt c.min_rtt (hop, size)))
        in
        fit_min_line points)
  in
  let hops =
    Array.init c.hops (fun i ->
        let hop = i + 1 in
        let this = fits.(i) in
        let prev = if i = 0 then Some (0., 0.) else fits.(i - 1) in
        let capacity, latency =
          match (prev, this) with
          | Some (s0, i0), Some (s1, i1) when s1 > s0 +. 1e-12 ->
              ( Some (8. /. (s1 -. s0)),
                (* RTT intercepts include the (size-independent) return
                   path; the forward fixed-delay difference is a good
                   estimate when return queuing is filtered by the
                   minima. *)
                Some (Float.max 0. (i1 -. i0) /. 2.) )
          | _ -> (None, None)
        in
        {
          index = hop;
          replies = c.replies.(i);
          slope = (match this with Some (s, _) -> Some s | None -> None);
          capacity;
          latency;
        })
  in
  let narrow_hop =
    Array.fold_left
      (fun best h ->
        match (h.capacity, best) with
        | Some cap, Some (_, best_cap) when cap < best_cap -> Some (h.index, cap)
        | Some cap, None -> Some (h.index, cap)
        | _ -> best)
      None hops
    |> Option.map fst
  in
  { hops; narrow_hop }

let run ?(sizes = default_sizes) ?(probes_per_size = 16) ?(interval = 0.03) net ~src
    ~hops ~dst ~k =
  if hops <= 0 then invalid_arg "Pathchar.run: hops <= 0";
  if probes_per_size <= 0 then invalid_arg "Pathchar.run: probes_per_size <= 0";
  if sizes = [] then invalid_arg "Pathchar.run: empty size list";
  let sim = Net.sim net in
  let c =
    {
      net;
      flow = Sim.fresh_flow_id sim;
      src;
      dst;
      sizes = Array.of_list sizes;
      probes_per_size;
      hops;
      sent = Hashtbl.create 256;
      min_rtt = Hashtbl.create 64;
      replies = Array.make hops 0;
    }
  in
  Net.set_handler net ~node:src ~flow:c.flow (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Icmp_ttl_exceeded -> on_reply c pkt
      | Packet.Udp | Packet.Tcp_data | Packet.Tcp_ack -> ());
  (* Probes whose TTL outlives the path reach the destination, which
     answers like a real host would (port unreachable); reusing the
     time-exceeded kind keeps the reply path uniform. *)
  Net.set_handler net ~node:dst ~flow:c.flow (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Udp ->
          Net.inject net
            (Packet.make ~id:(Sim.fresh_packet_id sim) ~flow:c.flow ~src:dst
               ~dst:pkt.Packet.src ~size:56 ~kind:Packet.Icmp_ttl_exceeded
               ~seq:pkt.Packet.seq ~sent_at:(Sim.now sim) ())
      | Packet.Icmp_ttl_exceeded | Packet.Tcp_data | Packet.Tcp_ack -> ());
  let total = hops * Array.length c.sizes * probes_per_size in
  let count = ref 0 in
  for hop = 1 to hops do
    Array.iteri
      (fun size_idx size ->
        for rep = 0 to probes_per_size - 1 do
          let at = Sim.now sim +. (float_of_int !count *. interval) in
          incr count;
          let seq = seq_of c ~hop ~size_idx ~rep in
          Sim.at sim at (fun () ->
              Hashtbl.replace c.sent seq (Sim.now sim);
              Net.inject net
                (Packet.make ~id:(Sim.fresh_packet_id sim) ~flow:c.flow ~src:c.src ~dst:c.dst
                   ~size ~kind:Packet.Udp ~seq ~sent_at:(Sim.now sim) ~ttl:hop ()))
        done)
      c.sizes
  done;
  (* Collect after the last probe plus generous slack for replies. *)
  let finish_at = Sim.now sim +. (float_of_int total *. interval) +. 5. in
  Sim.at sim finish_at (fun () -> k (estimate c))

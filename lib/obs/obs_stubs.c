/* Monotonic clock for Obs spans: CLOCK_MONOTONIC nanoseconds as an
   OCaml immediate int (63 bits holds ~292 years), so reading the clock
   never allocates.  [@@noalloc] on the OCaml side skips the caml_enter/
   leave_blocking_section dance; clock_gettime on a vDSO platform is a
   few tens of nanoseconds. */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value dcl_obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

(** Process-wide, domain-safe metrics registry and monotonic-clock
    spans — the observability layer of the identification stack.

    Instrumentation sites create metrics once at module initialization
    ({!Counter.make} and friends are idempotent: the same name+labels
    returns the same metric) and then record into them unconditionally;
    every recording operation first reads one process-global enabled
    flag and is a no-op returning immediately when collection is off.
    The disabled path performs no allocation: counters and gauges take
    immediate arguments, and spans communicate start times as plain
    [int] nanoseconds ({!Span.start} returns [0] when disabled), so no
    float or [int64] is ever boxed on behalf of a disabled metric.

    When enabled, the hot path stays lock-free: counter and histogram
    cells are per-domain-sharded [Atomic.t] slots (indexed by the
    calling domain's id, so pool workers never contend on a cache
    line), gauges are a single atomic cell, and float accumulation uses
    a compare-and-set loop.  The only mutex in the module guards metric
    {e registration}, which happens at module-load time.

    Collection is enabled by the [DCL_OBS] environment variable ([1],
    [true] or [yes]) or programmatically with {!set_enabled} (the
    binaries enable it when [--metrics] is passed).  Snapshots are
    exported as Prometheus text format ({!prometheus}) or JSON
    ({!json}); both iterate the registry in sorted order, so two dumps
    with no intervening events are byte-identical.

    Naming convention: [dcl_<layer>_<metric>], e.g.
    [dcl_em_iterations_total], [dcl_pool_queue_wait_seconds],
    [dcl_identify_stage_seconds{stage="fit"}]. *)

val enabled : unit -> bool
(** Whether collection is on.  A single atomic load. *)

val set_enabled : bool -> unit
(** Turn collection on or off at runtime.  Metrics recorded while
    enabled are retained across a disable/enable cycle. *)

type counter
type gauge
type histogram

module Counter : sig
  (** Monotonically increasing value, sharded per domain.  Carries an
      integer fast path ({!incr}/{!add}: one [Atomic.fetch_and_add])
      and a float side ({!add_float}, CAS loop) for second-valued
      totals such as busy time. *)

  val make : ?labels:(string * string) list -> ?help:string -> string -> counter
  (** [make name] registers (or retrieves) the counter [name] with the
      given label set.  Idempotent per (name, labels); re-registering
      the same key as a different metric kind raises
      [Invalid_argument]. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val add_float : counter -> float -> unit

  val value : counter -> float
  (** Sum over all shards (integer and float sides). *)
end

module Gauge : sig
  (** A value that can go up and down; one atomic cell. *)

  val make : ?labels:(string * string) list -> ?help:string -> string -> gauge
  val set : gauge -> float -> unit
  val add : gauge -> float -> unit

  val set_max : gauge -> float -> unit
  (** Raise the gauge to [v] if [v] is larger — high-water marks. *)

  val value : gauge -> float
end

module Histogram : sig
  (** Fixed-bucket histogram (Prometheus semantics: bucket [i] counts
      observations [<= uppers.(i)], cumulative on export, plus a
      [+Inf] overflow bucket, a total count and a sum).  Bucket counts
      are per-domain-sharded atomics. *)

  val default_latency_buckets : float array
  (** Log-ish spacing from 1 µs to 60 s, suited to everything from a
      single EM sweep to a full pipeline stage. *)

  val linear_buckets : lo:float -> width:float -> n:int -> float array
  (** [n] strictly increasing upper bounds [lo], [lo + width], ... —
      for small-integer-valued observations (chunks per sweep, records
      per window) where the latency defaults are useless.  Raises
      [Invalid_argument] unless [n] and [width] are positive. *)

  val make :
    ?labels:(string * string) list ->
    ?help:string ->
    ?buckets:float array ->
    string ->
    histogram
  (** [buckets] must be strictly increasing (default
      {!default_latency_buckets}).  Idempotent like {!Counter.make}. *)

  val observe : histogram -> float -> unit

  val bucket_index : histogram -> float -> int
  (** Index of the bucket that would receive [v]: the smallest [i] with
      [v <= uppers.(i)], or [Array.length uppers] for the [+Inf]
      overflow bucket.  Exposed so tests can pin the boundary
      (inclusive upper edge) behaviour. *)

  val count : histogram -> int
  val sum : histogram -> float

  val bucket_counts : histogram -> (float * int) array
  (** Cumulative [(upper_bound, count <= upper_bound)] pairs ending
      with [(infinity, count)], as Prometheus exports them. *)

  val quantile : histogram -> float -> float
  (** Prometheus-style [histogram_quantile]: the bucket holding rank
      [q * count], linearly interpolated inside the bucket (lower edge
      0 for the first bucket).  A rank landing on the cumulative
      boundary of an {e empty} bucket — [q = 0.] with empty leading
      buckets, for instance — resolves to the lower edge of the first
      occupied bucket at or after it, where the observations actually
      are.  A rank falling in the [+Inf] overflow bucket clamps to the
      largest finite upper bound (including when the overflow bucket
      is the only occupied one); [nan] on an empty histogram.  Raises
      [Invalid_argument] unless [q] is in [\[0, 1\]].  The estimate's resolution is the bucket width —
      intended for bench summaries (p50/p95/p99 of an epoch-latency
      histogram), not precise statistics. *)
end

module Span : sig
  (** Monotonic wall-clock timing of a region, recorded into a latency
      histogram.  The disabled path is one flag check per call and
      allocates nothing (times travel as immediate [int]
      nanoseconds). *)

  val now_ns : unit -> int
  (** CLOCK_MONOTONIC in integer nanoseconds; never allocates. *)

  val start : unit -> int
  (** [0] when collection is disabled, {!now_ns} otherwise. *)

  val stop : histogram -> int -> unit
  (** [stop h t0] observes the elapsed seconds since [t0] into [h]; a
      no-op when disabled or when [t0 = 0] (the span started while
      disabled). *)

  val time : histogram -> (unit -> 'a) -> 'a
  (** [time h f] runs [f] inside a span.  Allocates a closure at the
      call site; prefer {!start}/{!stop} on allocation-sensitive
      paths. *)
end

(** {1 Export} *)

val prometheus : unit -> string
(** The registry as a Prometheus text-format snapshot ([# HELP] /
    [# TYPE] per family, metrics sorted by name then labels). *)

val json : unit -> string
(** The registry as a JSON object
    [{"counters": [...], "gauges": [...], "histograms": [...]}], same
    ordering as {!prometheus}. *)

val write : string -> unit
(** Write a snapshot to a destination: ["-"] prints Prometheus text to
    stdout; a path ending in [.json] writes JSON; any other path writes
    Prometheus text.  File writes are atomic: the snapshot lands in a
    temporary file in the destination's directory and is renamed over
    the target, so a concurrent reader never observes a truncated
    dump. *)

val reset : unit -> unit
(** Zero every registered metric (registration survives).  For tests
    and benches. *)

(** {1 Flight recorder} *)

module Trace : sig
  (** Per-domain-sharded, fixed-capacity ring-buffer flight recorder of
      structured events.  Independent of the metrics flag: tracing is
      enabled by the [DCL_TRACE] environment variable ([1] / [true] /
      [yes]) or {!set_enabled}.  The disabled path is one atomic flag
      load per call and allocates nothing — all emitters take immediate
      arguments (static-literal names, [int] payloads), which is why
      they come as concrete variants rather than optional parameters.

      When enabled, an emission claims a slot with one
      [Atomic.fetch_and_add] on its shard's cursor and mutates the
      preallocated slot in place: no allocation, no lock, no contention
      between domains (shard = domain id, as for metrics).  The ring
      overwrites oldest-first when full; {!emitted} keeps counting past
      the capacity so tests can detect wraparound.

      Determinism contract: the recorder only ever {e reads} the
      monotonic clock and writes its own rings — no instrumented
      computation observes trace state, so enabling tracing cannot
      change fingerprints or winners.

      Readers ({!events}, {!dump}, {!chrome_json}) must be quiescent
      with respect to emitters: call them from the driver between
      epochs, or after a pool job has returned. *)

  val enabled : unit -> bool
  val set_enabled : bool -> unit

  val set_capacity : int -> unit
  (** Replace the rings with fresh ones of per-shard capacity [n]
      (rounded up to a power of two; default 4096).  Discards recorded
      events; call while no other domain is emitting.  Raises
      [Invalid_argument] unless [n > 0]. *)

  val capacity : unit -> int
  (** Current per-shard ring capacity. *)

  val clear : unit -> unit
  (** Reset every shard's cursor; recorded events are forgotten. *)

  (** {2 Emitters}

      [name] should be a static string (it is stored by pointer); [arg]
      is a free integer payload (restart id, epoch, path index...);
      [detail] variants attach a second static string (a cause, a
      conclusion name).  [_at] variants take an explicit timestamp from
      {!Span.now_ns} for spans whose start was captured earlier. *)

  val span_begin : string -> int -> unit
  val span_begin_d : string -> string -> int -> unit
  val span_begin_at : string -> int -> int -> unit
  val span_end : string -> unit
  val span_end_at : string -> int -> unit
  val instant : string -> int -> unit
  val instant_d : string -> string -> int -> unit
  val instant_at : string -> int -> int -> unit
  val counter : string -> int -> unit

  (** {2 Introspection and export} *)

  val emitted : unit -> int
  (** Total events emitted since the last {!clear}, including those
      already overwritten by wraparound. *)

  val stored : unit -> int
  (** Events currently retained across all rings
      ([min emitted capacity] per shard). *)

  type phase = B | E | I | C

  type event = {
    ev_ts : int;
    ev_shard : int;
    ev_seq : int;
    ev_phase : phase;
    ev_name : string;
    ev_detail : string;
    ev_arg : int;
  }

  val events : unit -> event list
  (** The retained window, merged across shards and sorted by
      (timestamp, shard, sequence) — deterministic for a fixed ring
      state. *)

  val dump : unit -> string
  (** One line per event:
      [ts shard seq phase name arg=N \[detail=...\]], in {!events}
      order.  The deterministic text form tests assert against. *)

  val chrome_json : unit -> string
  (** The retained window as Chrome trace-event JSON
      ([{"traceEvents": [...]}]) loadable in Perfetto or
      chrome://tracing.  Timestamps in microseconds, tid = shard. *)

  val write : string -> unit
  (** ["-"] prints the text dump to stdout; a [.json] path writes
      {!chrome_json}; any other path writes {!dump}.  File writes are
      atomic as for {!Obs.write}. *)
end

(** {1 Runtime self-telemetry} *)

module Runtime : sig
  val sample : unit -> unit
  (** Record GC deltas since the previous call into the
      [dcl_runtime_*] gauges (minor/major words, minor/major
      collections, heap words) via [Gc.quick_stat].  Gated on the
      metrics flag.  Call from one domain only (the fleet driver calls
      it once per epoch); the previous-sample state is unsynchronized
      by design. *)
end

(** {1 Admin endpoint} *)

module Admin : sig
  (** Dependency-free blocking HTTP/1.1 admin server on a dedicated
      domain.  GET-only, one connection at a time,
      [Connection: close] — introspection plumbing, not a web
      server.

      Routes split in two: the [fast] callback answers on the server
      domain and must only touch domain-safe state (the metrics
      registry's atomics); any path it declines is parked on a pending
      queue that the driving thread serves with {!serve_pending},
      so driver-owned structures are only read from the domain that
      mutates them. *)

  type t

  val start :
    ?host:string -> port:int -> fast:(string -> (string * string) option) -> unit -> t
  (** Bind [host] (default ["127.0.0.1"]) on [port] (0 picks an
      ephemeral port — see {!port}) and spawn the server domain.
      [fast path] returns [Some (content_type, body)] to answer
      immediately, [None] to defer to {!serve_pending}.  Raises
      [Invalid_argument] for a port outside [\[0, 65535\]] and
      [Unix.Unix_error] if the bind fails. *)

  val port : t -> int
  (** The bound port (the actual one when [port:0] was requested). *)

  val serve_pending : t -> handle:(string -> (string * string) option) -> int
  (** Drain queued slow-route requests in arrival order: [handle path]
      returns [Some (content_type, body)] for a 200, [None] for a 404;
      an exception inside [handle] answers 500 and keeps serving.
      Returns the number of requests served.  Call from the driving
      domain. *)

  val stop : t -> unit
  (** Stop accepting, answer any still-queued request with 503, wake
      and join the server domain, close the socket.  Idempotent on the
      queue but call it once, from the domain that called {!start}. *)
end

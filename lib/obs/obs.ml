(* Metrics registry and spans.  See obs.mli for the contract; the two
   load-bearing properties are (1) the disabled path is one atomic load
   and zero allocation per recording call, and (2) the enabled hot path
   is lock-free: every mutable cell is an Atomic.t, and counter /
   histogram cells are sharded by domain id so pool workers do not
   bounce a cache line between cores. *)

external now_ns_ext : unit -> int = "dcl_obs_now_ns" [@@noalloc]

let flag = Atomic.make false

let () =
  match Sys.getenv_opt "DCL_OBS" with
  | Some ("1" | "true" | "yes") -> Atomic.set flag true
  | _ -> ()

let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

(* Shard count: power of two so the domain id masks cheaply.  Domain
   ids are assigned consecutively (main = 0, pool workers 1..k), so
   with the pool's worker cap well below 16 every domain gets its own
   shard; a collision merely shares an atomic, it is never wrong. *)
let shards = 16

let shard () = (Domain.self () :> int) land (shards - 1)

(* Float accumulation over a boxed-float atomic: CAS loop.  The read
   value is physically the stored box, so compare_and_set's [==] test
   is exact. *)
let rec atomic_add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then atomic_add_float cell x

let rec atomic_max_float cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then atomic_max_float cell x

type counter = { c_ints : int Atomic.t array; c_floats : float Atomic.t array }

type gauge = { g_cell : float Atomic.t }

type histogram = {
  h_uppers : float array;
  (* shard-major: shard s, bucket i at [s * (buckets + 1) + i]; the
     last column is the +Inf overflow bucket. *)
  h_counts : int Atomic.t array;
  h_sums : float Atomic.t array;
}

type kind = Kcounter of counter | Kgauge of gauge | Khistogram of histogram

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : kind;
}

(* Registration is rare (module initialization, pool worker spawn) and
   the only mutex in the module; recording never touches it. *)
let registry : (string * (string * string) list, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let kind_name = function
  | Kcounter _ -> "counter"
  | Kgauge _ -> "gauge"
  | Khistogram _ -> "histogram"

let register ~labels ~help name fresh project =
  Mutex.lock reg_mutex;
  let m =
    match Hashtbl.find_opt registry (name, labels) with
    | Some m -> m
    | None ->
        let m = { name; labels; help; kind = fresh () } in
        Hashtbl.add registry (name, labels) m;
        m
  in
  Mutex.unlock reg_mutex;
  match project m.kind with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs: %s is already registered as a %s" name
           (kind_name m.kind))

module Counter = struct
  let make ?(labels = []) ?(help = "") name =
    register ~labels ~help name
      (fun () ->
        Kcounter
          {
            c_ints = Array.init shards (fun _ -> Atomic.make 0);
            c_floats = Array.init shards (fun _ -> Atomic.make 0.);
          })
      (function Kcounter c -> Some c | _ -> None)

  let incr c =
    if Atomic.get flag then
      ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_ints (shard ())) 1)

  let add c n =
    if Atomic.get flag then
      ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_ints (shard ())) n)

  let add_float c x =
    if Atomic.get flag then atomic_add_float (Array.unsafe_get c.c_floats (shard ())) x

  let value c =
    let acc = ref 0. in
    Array.iter (fun a -> acc := !acc +. float_of_int (Atomic.get a)) c.c_ints;
    Array.iter (fun a -> acc := !acc +. Atomic.get a) c.c_floats;
    !acc
end

module Gauge = struct
  let make ?(labels = []) ?(help = "") name =
    register ~labels ~help name
      (fun () -> Kgauge { g_cell = Atomic.make 0. })
      (function Kgauge g -> Some g | _ -> None)

  let set g x = if Atomic.get flag then Atomic.set g.g_cell x
  let add g x = if Atomic.get flag then atomic_add_float g.g_cell x
  let set_max g x = if Atomic.get flag then atomic_max_float g.g_cell x
  let value g = Atomic.get g.g_cell
end

module Histogram = struct
  let default_latency_buckets =
    [|
      1e-6; 1e-5; 1e-4; 2.5e-4; 1e-3; 2.5e-3; 1e-2; 2.5e-2; 0.1; 0.25; 1.; 2.5;
      10.; 60.;
    |]

  let linear_buckets ~lo ~width ~n =
    if n <= 0 then invalid_arg "Obs.Histogram.linear_buckets: n <= 0";
    if width <= 0. then invalid_arg "Obs.Histogram.linear_buckets: width <= 0";
    Array.init n (fun i -> lo +. (width *. float_of_int i))

  let make ?(labels = []) ?(help = "") ?(buckets = default_latency_buckets) name =
    let nb = Array.length buckets in
    if nb = 0 then invalid_arg "Obs.Histogram.make: empty bucket list";
    for i = 1 to nb - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Obs.Histogram.make: buckets must be strictly increasing"
    done;
    register ~labels ~help name
      (fun () ->
        Khistogram
          {
            h_uppers = Array.copy buckets;
            h_counts = Array.init (shards * (nb + 1)) (fun _ -> Atomic.make 0);
            h_sums = Array.init shards (fun _ -> Atomic.make 0.);
          })
      (function Khistogram h -> Some h | _ -> None)

  (* Smallest bucket whose (inclusive) upper bound holds [v]; the
     overflow index is [Array.length uppers].  Linear scan: the default
     bucket list has 14 entries and observations cluster low. *)
  let bucket_index h v =
    let uppers = h.h_uppers in
    let nb = Array.length uppers in
    let i = ref 0 in
    while !i < nb && v > Array.unsafe_get uppers !i do
      incr i
    done;
    !i

  let observe h v =
    if Atomic.get flag then begin
      let nb = Array.length h.h_uppers in
      let base = shard () * (nb + 1) in
      ignore
        (Atomic.fetch_and_add (Array.unsafe_get h.h_counts (base + bucket_index h v)) 1);
      atomic_add_float (Array.unsafe_get h.h_sums (base / (nb + 1))) v
    end

  let raw_bucket h i =
    (* Sum of shard cells for (non-cumulative) bucket [i]. *)
    let nb = Array.length h.h_uppers in
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + Atomic.get h.h_counts.((s * (nb + 1)) + i)
    done;
    !acc

  let count h =
    let nb = Array.length h.h_uppers in
    let acc = ref 0 in
    for i = 0 to nb do
      acc := !acc + raw_bucket h i
    done;
    !acc

  let sum h =
    let acc = ref 0. in
    Array.iter (fun a -> acc := !acc +. Atomic.get a) h.h_sums;
    !acc

  let bucket_counts h =
    let nb = Array.length h.h_uppers in
    let cum = ref 0 in
    Array.init (nb + 1) (fun i ->
        cum := !cum + raw_bucket h i;
        ((if i < nb then h.h_uppers.(i) else infinity), !cum))

  (* Prometheus-style histogram_quantile: find the bucket holding rank
     q * count and interpolate linearly inside it (lower edge 0 for the
     first bucket).  Ranks landing in the +Inf overflow bucket clamp to
     the last finite upper bound — the histogram carries no information
     past it. *)
  let quantile h q =
    if q < 0. || q > 1. then invalid_arg "Obs.Histogram.quantile: q outside [0, 1]";
    let total = count h in
    if total = 0 then Float.nan
    else begin
      let uppers = h.h_uppers in
      let nb = Array.length uppers in
      let rank = q *. float_of_int total in
      (* Scan until the cumulative count reaches the rank AND the
         current bucket holds mass.  The second conjunct is the
         low-rank edge: a rank landing exactly on the cumulative
         boundary of an empty bucket (q = 0. with an empty leading
         bucket, or any rank equal to the count below one) must
         resolve where the observations actually are — the first
         occupied bucket at or after it — not at the empty bucket's
         upper edge. *)
      let i = ref 0 and cum = ref (raw_bucket h 0) in
      while !i < nb && (float_of_int !cum < rank || raw_bucket h !i = 0) do
        incr i;
        if !i < nb then cum := !cum + raw_bucket h !i
      done;
      if !i >= nb then uppers.(nb - 1)
      else begin
        let upper = uppers.(!i) in
        let lower = if !i = 0 then 0. else uppers.(!i - 1) in
        let in_bucket = raw_bucket h !i in
        let below = !cum - in_bucket in
        let frac = (rank -. float_of_int below) /. float_of_int in_bucket in
        lower +. ((upper -. lower) *. Float.max 0. (Float.min 1. frac))
      end
    end
end

module Span = struct
  let now_ns = now_ns_ext
  let start () = if Atomic.get flag then now_ns_ext () else 0

  let stop h t0 =
    if t0 <> 0 && Atomic.get flag then
      Histogram.observe h (float_of_int (now_ns_ext () - t0) *. 1e-9)

  let time h f =
    let t0 = start () in
    let r = f () in
    stop h t0;
    r
end

(* --- Export ------------------------------------------------------------- *)

let sorted_metrics () =
  Mutex.lock reg_mutex;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock reg_mutex;
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    ms

(* %.17g-style shortest-exact is overkill here; %g is stable for equal
   inputs, which is all snapshot determinism needs. *)
let fmt_float x =
  (* lint: allow R3 magnitude guard for %.0f formatting, not an equality tolerance *)
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label v)) labels)
      ^ "}"

(* Labels merged with extras (histogram [le]), for the _bucket lines. *)
let render_labels_extra labels extra = render_labels (labels @ extra)

let prometheus () =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_family then begin
        last_family := m.name;
        if m.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind))
      end;
      match m.kind with
      | Kcounter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Counter.value c)))
      | Kgauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Gauge.value g)))
      | Khistogram h ->
          Array.iter
            (fun (upper, cum) ->
              let le = if Float.is_finite upper then fmt_float upper else "+Inf" in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (render_labels_extra m.labels [ ("le", le) ])
                   cum))
            (Histogram.bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels)
               (Histogram.count h)))
    (sorted_metrics ());
  Buffer.contents buf

let json_string s = Printf.sprintf "%S" s

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v)) labels)
  ^ "}"

let json () =
  let counters = Buffer.create 512
  and gauges = Buffer.create 512
  and hists = Buffer.create 1024 in
  let sep buf = if Buffer.length buf > 0 then Buffer.add_string buf "," in
  List.iter
    (fun m ->
      match m.kind with
      | Kcounter c ->
          sep counters;
          Buffer.add_string counters
            (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
               (json_string m.name) (json_labels m.labels)
               (fmt_float (Counter.value c)))
      | Kgauge g ->
          sep gauges;
          Buffer.add_string gauges
            (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
               (json_string m.name) (json_labels m.labels)
               (fmt_float (Gauge.value g)))
      | Khistogram h ->
          sep hists;
          let buckets =
            Array.to_list (Histogram.bucket_counts h)
            |> List.map (fun (upper, cum) ->
                   Printf.sprintf "{\"le\":%s,\"count\":%d}"
                     (if Float.is_finite upper then fmt_float upper else "\"+Inf\"")
                     cum)
            |> String.concat ","
          in
          Buffer.add_string hists
            (Printf.sprintf
               "{\"name\":%s,\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
               (json_string m.name) (json_labels m.labels) (Histogram.count h)
               (fmt_float (Histogram.sum h))
               buckets))
    (sorted_metrics ());
  Printf.sprintf "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}\n"
    (Buffer.contents counters) (Buffer.contents gauges) (Buffer.contents hists)

let write dest =
  (* lint: allow R4 dest = "-" is the caller explicitly requesting a stdout dump *)
  if dest = "-" then print_string (prometheus ())
  else begin
    let oc = open_out dest in
    output_string oc (if Filename.check_suffix dest ".json" then json () else prometheus ());
    close_out oc
  end

let reset () =
  List.iter
    (fun m ->
      match m.kind with
      | Kcounter c ->
          Array.iter (fun a -> Atomic.set a 0) c.c_ints;
          Array.iter (fun a -> Atomic.set a 0.) c.c_floats
      | Kgauge g -> Atomic.set g.g_cell 0.
      | Khistogram h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Array.iter (fun a -> Atomic.set a 0.) h.h_sums)
    (sorted_metrics ())

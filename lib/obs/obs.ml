(* Metrics registry and spans.  See obs.mli for the contract; the two
   load-bearing properties are (1) the disabled path is one atomic load
   and zero allocation per recording call, and (2) the enabled hot path
   is lock-free: every mutable cell is an Atomic.t, and counter /
   histogram cells are sharded by domain id so pool workers do not
   bounce a cache line between cores. *)

external now_ns_ext : unit -> int = "dcl_obs_now_ns" [@@noalloc]

(* lint: owner shared *)
let flag = Atomic.make false

let () =
  match Sys.getenv_opt "DCL_OBS" with
  | Some ("1" | "true" | "yes") -> Atomic.set flag true
  | _ -> ()

let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

(* Shard count: power of two so the domain id masks cheaply.  Domain
   ids are assigned consecutively (main = 0, pool workers 1..k), so
   with the pool's worker cap well below 16 every domain gets its own
   shard; a collision merely shares an atomic, it is never wrong. *)
let shards = 16

let shard () = (Domain.self () :> int) land (shards - 1)

(* Float accumulation over a boxed-float atomic: CAS loop.  The read
   value is physically the stored box, so compare_and_set's [==] test
   is exact. *)
let rec atomic_add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then atomic_add_float cell x

let rec atomic_max_float cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then atomic_max_float cell x

type counter = { c_ints : int Atomic.t array; c_floats : float Atomic.t array }

type gauge = { g_cell : float Atomic.t }

type histogram = {
  h_uppers : float array;
  (* shard-major: shard s, bucket i at [s * (buckets + 1) + i]; the
     last column is the +Inf overflow bucket. *)
  h_counts : int Atomic.t array;
  h_sums : float Atomic.t array;
}

type kind = Kcounter of counter | Kgauge of gauge | Khistogram of histogram

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : kind;
}

(* Registration is rare (module initialization, pool worker spawn) and
   the only mutex in the module; recording never touches it. *)
(* lint: owner shared guarded-by reg_mutex *)
let registry : (string * (string * string) list, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let kind_name = function
  | Kcounter _ -> "counter"
  | Kgauge _ -> "gauge"
  | Khistogram _ -> "histogram"

let register ~labels ~help name fresh project =
  Mutex.lock reg_mutex;
  let m =
    (* [fresh] allocates caller-supplied cells and may raise; do not
       leave the registry lock held if it does. *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mutex)
      (fun () ->
        match Hashtbl.find_opt registry (name, labels) with
        | Some m -> m
        | None ->
            let m = { name; labels; help; kind = fresh () } in
            Hashtbl.add registry (name, labels) m;
            m)
  in
  match project m.kind with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs: %s is already registered as a %s" name
           (kind_name m.kind))

module Counter = struct
  let make ?(labels = []) ?(help = "") name =
    register ~labels ~help name
      (fun () ->
        Kcounter
          {
            c_ints = Array.init shards (fun _ -> Atomic.make 0);
            c_floats = Array.init shards (fun _ -> Atomic.make 0.);
          })
      (function Kcounter c -> Some c | _ -> None)

  let incr c =
    if Atomic.get flag then
      ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_ints (shard ())) 1)

  let add c n =
    if Atomic.get flag then
      ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_ints (shard ())) n)

  let add_float c x =
    if Atomic.get flag then atomic_add_float (Array.unsafe_get c.c_floats (shard ())) x

  let value c =
    let acc = ref 0. in
    Array.iter (fun a -> acc := !acc +. float_of_int (Atomic.get a)) c.c_ints;
    Array.iter (fun a -> acc := !acc +. Atomic.get a) c.c_floats;
    !acc
end

module Gauge = struct
  let make ?(labels = []) ?(help = "") name =
    register ~labels ~help name
      (fun () -> Kgauge { g_cell = Atomic.make 0. })
      (function Kgauge g -> Some g | _ -> None)

  let set g x = if Atomic.get flag then Atomic.set g.g_cell x
  let add g x = if Atomic.get flag then atomic_add_float g.g_cell x
  let set_max g x = if Atomic.get flag then atomic_max_float g.g_cell x
  let value g = Atomic.get g.g_cell
end

module Histogram = struct
  (* lint: allow R7 constant bucket table; written nowhere after initialization *)
  let default_latency_buckets =
    [|
      1e-6; 1e-5; 1e-4; 2.5e-4; 1e-3; 2.5e-3; 1e-2; 2.5e-2; 0.1; 0.25; 1.; 2.5;
      10.; 60.;
    |]

  let linear_buckets ~lo ~width ~n =
    if n <= 0 then invalid_arg "Obs.Histogram.linear_buckets: n <= 0";
    if width <= 0. then invalid_arg "Obs.Histogram.linear_buckets: width <= 0";
    Array.init n (fun i -> lo +. (width *. float_of_int i))

  let make ?(labels = []) ?(help = "") ?(buckets = default_latency_buckets) name =
    let nb = Array.length buckets in
    if nb = 0 then invalid_arg "Obs.Histogram.make: empty bucket list";
    for i = 1 to nb - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Obs.Histogram.make: buckets must be strictly increasing"
    done;
    register ~labels ~help name
      (fun () ->
        Khistogram
          {
            h_uppers = Array.copy buckets;
            h_counts = Array.init (shards * (nb + 1)) (fun _ -> Atomic.make 0);
            h_sums = Array.init shards (fun _ -> Atomic.make 0.);
          })
      (function Khistogram h -> Some h | _ -> None)

  (* Smallest bucket whose (inclusive) upper bound holds [v]; the
     overflow index is [Array.length uppers].  Linear scan: the default
     bucket list has 14 entries and observations cluster low. *)
  let bucket_index h v =
    let uppers = h.h_uppers in
    let nb = Array.length uppers in
    let i = ref 0 in
    while !i < nb && v > Array.unsafe_get uppers !i do
      incr i
    done;
    !i

  let observe h v =
    if Atomic.get flag then begin
      let nb = Array.length h.h_uppers in
      let base = shard () * (nb + 1) in
      ignore
        (Atomic.fetch_and_add (Array.unsafe_get h.h_counts (base + bucket_index h v)) 1);
      atomic_add_float (Array.unsafe_get h.h_sums (base / (nb + 1))) v
    end

  let raw_bucket h i =
    (* Sum of shard cells for (non-cumulative) bucket [i]. *)
    let nb = Array.length h.h_uppers in
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + Atomic.get h.h_counts.((s * (nb + 1)) + i)
    done;
    !acc

  let count h =
    let nb = Array.length h.h_uppers in
    let acc = ref 0 in
    for i = 0 to nb do
      acc := !acc + raw_bucket h i
    done;
    !acc

  let sum h =
    let acc = ref 0. in
    Array.iter (fun a -> acc := !acc +. Atomic.get a) h.h_sums;
    !acc

  let bucket_counts h =
    let nb = Array.length h.h_uppers in
    let cum = ref 0 in
    Array.init (nb + 1) (fun i ->
        cum := !cum + raw_bucket h i;
        ((if i < nb then h.h_uppers.(i) else infinity), !cum))

  (* Prometheus-style histogram_quantile: find the bucket holding rank
     q * count and interpolate linearly inside it (lower edge 0 for the
     first bucket).  Ranks landing in the +Inf overflow bucket clamp to
     the last finite upper bound — the histogram carries no information
     past it. *)
  let quantile h q =
    if q < 0. || q > 1. then invalid_arg "Obs.Histogram.quantile: q outside [0, 1]";
    let total = count h in
    if total = 0 then Float.nan
    else begin
      let uppers = h.h_uppers in
      let nb = Array.length uppers in
      let rank = q *. float_of_int total in
      (* Scan until the cumulative count reaches the rank AND the
         current bucket holds mass.  The second conjunct is the
         low-rank edge: a rank landing exactly on the cumulative
         boundary of an empty bucket (q = 0. with an empty leading
         bucket, or any rank equal to the count below one) must
         resolve where the observations actually are — the first
         occupied bucket at or after it — not at the empty bucket's
         upper edge. *)
      let i = ref 0 and cum = ref (raw_bucket h 0) in
      while !i < nb && (float_of_int !cum < rank || raw_bucket h !i = 0) do
        incr i;
        if !i < nb then cum := !cum + raw_bucket h !i
      done;
      if !i >= nb then uppers.(nb - 1)
      else begin
        let upper = uppers.(!i) in
        let lower = if !i = 0 then 0. else uppers.(!i - 1) in
        let in_bucket = raw_bucket h !i in
        let below = !cum - in_bucket in
        let frac = (rank -. float_of_int below) /. float_of_int in_bucket in
        lower +. ((upper -. lower) *. Float.max 0. (Float.min 1. frac))
      end
    end
end

module Span = struct
  let now_ns = now_ns_ext
  let start () = if Atomic.get flag then now_ns_ext () else 0

  let stop h t0 =
    if t0 <> 0 && Atomic.get flag then
      Histogram.observe h (float_of_int (now_ns_ext () - t0) *. 1e-9)

  let time h f =
    let t0 = start () in
    let r = f () in
    stop h t0;
    r
end

(* --- Export ------------------------------------------------------------- *)

let sorted_metrics () =
  Mutex.lock reg_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_mutex)
    (fun () ->
      (* Sort at the collection point: the Hashtbl fold observes
         unspecified iteration order (R8), which must not reach the
         exported snapshot. *)
      List.sort
        (fun a b ->
          match compare a.name b.name with
          | 0 -> compare a.labels b.labels
          | c -> c)
        (Hashtbl.fold (fun _ m acc -> m :: acc) registry []))

(* %.17g-style shortest-exact is overkill here; %g is stable for equal
   inputs, which is all snapshot determinism needs. *)
let fmt_float x =
  (* lint: allow R3 magnitude guard for %.0f formatting, not an equality tolerance *)
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      (* Quotes concatenated by hand: %S would re-escape the backslashes
         escape_label just produced (and emit OCaml decimal escapes the
         exposition format does not define). *)
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
      ^ "}"

(* Labels merged with extras (histogram [le]), for the _bucket lines. *)
let render_labels_extra labels extra = render_labels (labels @ extra)

let prometheus () =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_family then begin
        last_family := m.name;
        if m.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind))
      end;
      match m.kind with
      | Kcounter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Counter.value c)))
      | Kgauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Gauge.value g)))
      | Khistogram h ->
          Array.iter
            (fun (upper, cum) ->
              let le = if Float.is_finite upper then fmt_float upper else "+Inf" in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (render_labels_extra m.labels [ ("le", le) ])
                   cum))
            (Histogram.bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels)
               (fmt_float (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels)
               (Histogram.count h)))
    (sorted_metrics ());
  Buffer.contents buf

(* RFC 8259 string escaping.  OCaml's %S is close but wrong: it emits
   decimal escapes like \127 for control bytes, which no JSON parser
   accepts.  Control characters go out as \u00XX. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v)) labels)
  ^ "}"

let json () =
  let counters = Buffer.create 512
  and gauges = Buffer.create 512
  and hists = Buffer.create 1024 in
  let sep buf = if Buffer.length buf > 0 then Buffer.add_string buf "," in
  List.iter
    (fun m ->
      match m.kind with
      | Kcounter c ->
          sep counters;
          Buffer.add_string counters
            (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
               (json_string m.name) (json_labels m.labels)
               (fmt_float (Counter.value c)))
      | Kgauge g ->
          sep gauges;
          Buffer.add_string gauges
            (Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
               (json_string m.name) (json_labels m.labels)
               (fmt_float (Gauge.value g)))
      | Khistogram h ->
          sep hists;
          let buckets =
            Array.to_list (Histogram.bucket_counts h)
            |> List.map (fun (upper, cum) ->
                   Printf.sprintf "{\"le\":%s,\"count\":%d}"
                     (if Float.is_finite upper then fmt_float upper else "\"+Inf\"")
                     cum)
            |> String.concat ","
          in
          Buffer.add_string hists
            (Printf.sprintf
               "{\"name\":%s,\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
               (json_string m.name) (json_labels m.labels) (Histogram.count h)
               (fmt_float (Histogram.sum h))
               buckets))
    (sorted_metrics ());
  Printf.sprintf "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}\n"
    (Buffer.contents counters) (Buffer.contents gauges) (Buffer.contents hists)

(* Atomic file replacement: write the full snapshot to a temporary file
   in the destination's directory, then rename it over the target.  A
   concurrent reader (a scraper, CI artifact collection) therefore sees
   either the previous complete snapshot or the new one, never a
   truncated file.  Same-directory placement keeps the rename on one
   filesystem, where POSIX guarantees it is atomic. *)
let write_file path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      (try
         output_string oc contents;
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Sys.rename tmp path)

let write dest =
  (* lint: allow R4 dest = "-" is the caller explicitly requesting a stdout dump *)
  if dest = "-" then print_string (prometheus ())
  else
    write_file dest
      (if Filename.check_suffix dest ".json" then json () else prometheus ())

let reset () =
  List.iter
    (fun m ->
      match m.kind with
      | Kcounter c ->
          Array.iter (fun a -> Atomic.set a 0) c.c_ints;
          Array.iter (fun a -> Atomic.set a 0.) c.c_floats
      | Kgauge g -> Atomic.set g.g_cell 0.
      | Khistogram h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Array.iter (fun a -> Atomic.set a 0.) h.h_sums)
    (sorted_metrics ())

(* --- Flight recorder ---------------------------------------------------- *)

module Trace = struct
  (* lint: owner shared *)
  let tflag = Atomic.make false

  type phase = B | E | I | C

  (* One preallocated slot per ring position; emission mutates fields in
     place so the enabled path allocates nothing either.  The string
     fields receive static literals from the instrumentation sites —
     storing them is a pointer write. *)
  type slot = {
    mutable s_ts : int;
    mutable s_seq : int;
    mutable s_phase : phase;
    mutable s_name : string;
    mutable s_detail : string;
    mutable s_arg : int;
  }

  type ring = { slots : slot array; cursor : int Atomic.t }

  (* Per-shard rings, lazily allocated: the recorder costs nothing until
     tracing is first enabled.  With the shard = domain-id mapping every
     domain owns its ring exclusively, so slot writes are single-writer;
     the cursor is atomic so a (theoretical) shard collision still hands
     out distinct sequence numbers. *)
  (* lint: owner shared *)
  let rings : ring array option Atomic.t = Atomic.make None

  let default_capacity = 4096

  let alloc n =
    Array.init shards (fun _ ->
        {
          slots =
            Array.init n (fun _ ->
                { s_ts = 0; s_seq = 0; s_phase = I; s_name = ""; s_detail = ""; s_arg = 0 });
          cursor = Atomic.make 0;
        })

  let round_pow2 n =
    let r = ref 1 in
    while !r < n do
      r := !r * 2
    done;
    !r

  let ensure_rings () =
    match Atomic.get rings with
    | Some r -> r
    | None ->
        let r = alloc default_capacity in
        if Atomic.compare_and_set rings None (Some r) then r
        else (match Atomic.get rings with Some r -> r | None -> assert false)

  let set_capacity n =
    if n <= 0 then invalid_arg "Obs.Trace.set_capacity: capacity must be positive";
    Atomic.set rings (Some (alloc (round_pow2 n)))

  let capacity () =
    match Atomic.get rings with
    | Some rs -> Array.length rs.(0).slots
    | None -> default_capacity

  let enabled () = Atomic.get tflag

  let set_enabled b =
    if b then ignore (ensure_rings () : ring array);
    Atomic.set tflag b

  (* Environment opt-in must run after [ensure_rings] is in scope: the
     flag without the rings would silently drop every event. *)
  let () =
    match Sys.getenv_opt "DCL_TRACE" with
    | Some ("1" | "true" | "yes") -> set_enabled true
    | _ -> ()

  let clear () =
    match Atomic.get rings with
    | None -> ()
    | Some rs -> Array.iter (fun r -> Atomic.set r.cursor 0) rs

  let emit phase name detail arg ts =
    match Atomic.get rings with
    | None -> ()
    | Some rs ->
        let r = Array.unsafe_get rs (shard ()) in
        let n = Array.length r.slots in
        let idx = Atomic.fetch_and_add r.cursor 1 in
        let s = Array.unsafe_get r.slots (idx land (n - 1)) in
        s.s_ts <- ts;
        s.s_seq <- idx;
        s.s_phase <- phase;
        s.s_name <- name;
        s.s_detail <- detail;
        s.s_arg <- arg

  (* Emitters come in concrete variants instead of optional arguments:
     an optional argument would box a [Some] at every call site even
     when tracing is off, breaking the zero-allocation contract. *)
  let span_begin name arg = if Atomic.get tflag then emit B name "" arg (now_ns_ext ())

  let span_begin_d name detail arg =
    if Atomic.get tflag then emit B name detail arg (now_ns_ext ())

  let span_begin_at name arg ts = if Atomic.get tflag then emit B name "" arg ts
  let span_end name = if Atomic.get tflag then emit E name "" 0 (now_ns_ext ())
  let span_end_at name ts = if Atomic.get tflag then emit E name "" 0 ts
  let instant name arg = if Atomic.get tflag then emit I name "" arg (now_ns_ext ())

  let instant_d name detail arg =
    if Atomic.get tflag then emit I name detail arg (now_ns_ext ())

  let instant_at name arg ts = if Atomic.get tflag then emit I name "" arg ts
  let counter name arg = if Atomic.get tflag then emit C name "" arg (now_ns_ext ())

  let emitted () =
    match Atomic.get rings with
    | None -> 0
    | Some rs -> Array.fold_left (fun acc r -> acc + Atomic.get r.cursor) 0 rs

  let stored () =
    match Atomic.get rings with
    | None -> 0
    | Some rs ->
        Array.fold_left
          (fun acc r -> acc + min (Atomic.get r.cursor) (Array.length r.slots))
          0 rs

  type event = {
    ev_ts : int;
    ev_shard : int;
    ev_seq : int;
    ev_phase : phase;
    ev_name : string;
    ev_detail : string;
    ev_arg : int;
  }

  (* Snapshot the retained window of every ring, oldest first, and order
     the merge deterministically: timestamp, then shard, then sequence
     number.  Readers must be quiescent with respect to emitters (the
     driver reads between epochs; tests read after the pool job
     returns) — the ring is a forensic record, not a concurrent
     queue. *)
  let events () =
    match Atomic.get rings with
    | None -> []
    | Some rs ->
        let acc = ref [] in
        Array.iteri
          (fun sh r ->
            let n = Array.length r.slots in
            let total = Atomic.get r.cursor in
            let count = if total < n then total else n in
            for i = total - count to total - 1 do
              let s = r.slots.(i land (n - 1)) in
              acc :=
                {
                  ev_ts = s.s_ts;
                  ev_shard = sh;
                  ev_seq = s.s_seq;
                  ev_phase = s.s_phase;
                  ev_name = s.s_name;
                  ev_detail = s.s_detail;
                  ev_arg = s.s_arg;
                }
                :: !acc
            done)
          rs;
        List.sort
          (fun a b ->
            match compare a.ev_ts b.ev_ts with
            | 0 -> (
                match compare a.ev_shard b.ev_shard with
                | 0 -> compare a.ev_seq b.ev_seq
                | c -> c)
            | c -> c)
          !acc

  let phase_char = function B -> 'B' | E -> 'E' | I -> 'i' | C -> 'C'

  let dump () =
    let b = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "%d %d %d %c %s arg=%d%s\n" e.ev_ts e.ev_shard e.ev_seq
             (phase_char e.ev_phase) e.ev_name e.ev_arg
             (if e.ev_detail = "" then "" else " detail=" ^ e.ev_detail)))
      (events ());
    Buffer.contents b

  (* Chrome trace-event format (the JSON-object flavour Perfetto and
     chrome://tracing both load): ts is microseconds as a decimal, tid
     is the shard (= domain) id, span phases are "B"/"E", instants are
     thread-scoped "i", counter samples are "C". *)
  let chrome_event e =
    let common =
      Printf.sprintf "\"name\":%s,\"ts\":%.3f,\"pid\":0,\"tid\":%d"
        (json_string e.ev_name)
        (float_of_int e.ev_ts /. 1e3)
        e.ev_shard
    in
    let args =
      if e.ev_detail = "" then Printf.sprintf "{\"arg\":%d}" e.ev_arg
      else
        Printf.sprintf "{\"arg\":%d,\"detail\":%s}" e.ev_arg (json_string e.ev_detail)
    in
    match e.ev_phase with
    | B -> Printf.sprintf "{%s,\"ph\":\"B\",\"args\":%s}" common args
    | E -> Printf.sprintf "{%s,\"ph\":\"E\"}" common
    | I -> Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\",\"args\":%s}" common args
    | C -> Printf.sprintf "{%s,\"ph\":\"C\",\"args\":{\"value\":%d}}" common e.ev_arg

  let chrome_json () =
    "{\"traceEvents\":["
    ^ String.concat "," (List.map chrome_event (events ()))
    ^ "]}\n"

  let write dest =
    (* lint: allow R4 dest = "-" is the caller explicitly requesting a stdout dump *)
    if dest = "-" then print_string (dump ())
    else
      write_file dest
        (if Filename.check_suffix dest ".json" then chrome_json () else dump ())
end

(* --- Runtime self-telemetry --------------------------------------------- *)

module Runtime = struct
  let g_minor =
    Gauge.make ~help:"Minor words allocated since the previous sample"
      "dcl_runtime_minor_words_delta"

  let g_major =
    Gauge.make ~help:"Major words allocated since the previous sample"
      "dcl_runtime_major_words_delta"

  let g_minor_cols =
    Gauge.make ~help:"Minor collections since the previous sample"
      "dcl_runtime_minor_collections_delta"

  let g_major_cols =
    Gauge.make ~help:"Major collections since the previous sample"
      "dcl_runtime_major_collections_delta"

  let g_heap =
    Gauge.make ~help:"Major heap size in words at the last sample"
      "dcl_runtime_heap_words"

  (* Previous-sample state.  [sample] is documented driver-domain-only,
     so a plain mutable cell suffices. *)
  (* lint: owner driver *)
  let last = ref None

  let sample () =
    if Atomic.get flag then begin
      let s = Gc.quick_stat () in
      (match !last with
      | None -> ()
      | Some (mw, jw, mc, jc) ->
          Gauge.set g_minor (s.Gc.minor_words -. mw);
          Gauge.set g_major (s.Gc.major_words -. jw);
          Gauge.set g_minor_cols (float_of_int (s.Gc.minor_collections - mc));
          Gauge.set g_major_cols (float_of_int (s.Gc.major_collections - jc)));
      Gauge.set g_heap (float_of_int s.Gc.heap_words);
      last :=
        Some (s.Gc.minor_words, s.Gc.major_words, s.Gc.minor_collections, s.Gc.major_collections)
    end
end

(* --- Admin endpoint ----------------------------------------------------- *)

module Admin = struct
  (* Dependency-free blocking HTTP/1.1 server on its own domain.  Fast
     routes (healthz, metrics: data behind atomics) are answered on the
     server domain; everything else parks the connection on a pending
     queue that the driver drains once per epoch with [serve_pending],
     so driver-owned state (fleet, timelines, trace rings) is only ever
     read from the domain that mutates it. *)

  type pending = {
    p_path : string;
    p_mutex : Mutex.t;
    p_cond : Condition.t;
    mutable p_response : (int * string * string) option;
  }

  type t = {
    a_sock : Unix.file_descr;
    a_port : int;
    a_host : string;
    a_fast : string -> (string * string) option;
    a_q_mutex : Mutex.t;
    mutable a_queue : pending list;
    mutable a_accepting : bool;
    a_stopping : bool Atomic.t;
    mutable a_domain : unit Domain.t option;
  }

  let reason_of = function
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 500 -> "Internal Server Error"
    | 503 -> "Service Unavailable"
    | _ -> "Error"

  let http_response status content_type body =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      status (reason_of status) content_type (String.length body) body

  let send_all fd s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let off = ref 0 in
    try
      while !off < n do
        let k = Unix.write fd b !off (n - !off) in
        if k <= 0 then off := n else off := !off + k
      done
    with Unix.Unix_error _ -> ()

  (* Read until the header terminator; request bodies are ignored (all
     routes are GET).  Bounded so a hostile peer cannot balloon the
     buffer. *)
  let read_request fd =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 1024 in
    let rec has_terminator s i =
      if i + 3 >= String.length s then false
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then true
      else has_terminator s (i + 1)
    in
    let rec loop () =
      if Buffer.length buf > 16384 then None
      else
        let k = try Unix.read fd chunk 0 1024 with Unix.Unix_error _ -> 0 in
        if k <= 0 then None
        else begin
          Buffer.add_subbytes buf chunk 0 k;
          let s = Buffer.contents buf in
          if has_terminator s 0 then Some s else loop ()
        end
    in
    loop ()

  let parse_request s =
    match String.index_opt s '\r' with
    | None -> None
    | Some eol -> (
        match String.split_on_char ' ' (String.sub s 0 eol) with
        | [ meth; target; _version ] ->
            let path =
              match String.index_opt target '?' with
              | Some q -> String.sub target 0 q
              | None -> target
            in
            Some (meth, path)
        | _ -> None)

  let handle_conn t fd =
    let respond status content_type body =
      send_all fd (http_response status content_type body)
    in
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
     with Unix.Unix_error _ -> ());
    (match read_request fd with
    | None -> respond 400 "text/plain" "bad request\n"
    | Some req -> (
        match parse_request req with
        | None -> respond 400 "text/plain" "bad request\n"
        | Some (meth, path) -> (
            if meth <> "GET" then respond 405 "text/plain" "method not allowed\n"
            else
              match t.a_fast path with
              | Some (ct, body) -> respond 200 ct body
              | None ->
                  let p =
                    {
                      p_path = path;
                      p_mutex = Mutex.create ();
                      p_cond = Condition.create ();
                      p_response = None;
                    }
                  in
                  Mutex.lock t.a_q_mutex;
                  let queued = t.a_accepting in
                  if queued then t.a_queue <- p :: t.a_queue;
                  Mutex.unlock t.a_q_mutex;
                  if not queued then respond 503 "text/plain" "shutting down\n"
                  else begin
                    Mutex.lock p.p_mutex;
                    let status, ct, body =
                      (* [Option.get] after the wait loop cannot raise
                         (the loop exits only once a response is set),
                         but keep the span protected so a future edit
                         cannot park the connection with the lock held. *)
                      Fun.protect
                        ~finally:(fun () -> Mutex.unlock p.p_mutex)
                        (fun () ->
                          while p.p_response = None do
                            Condition.wait p.p_cond p.p_mutex
                          done;
                          Option.get p.p_response)
                    in
                    respond status ct body
                  end)));
    try Unix.close fd with Unix.Unix_error _ -> ()

  let rec accept_loop t =
    if not (Atomic.get t.a_stopping) then begin
      (match try Some (Unix.accept t.a_sock) with Unix.Unix_error _ -> None with
      | Some (fd, _) ->
          if Atomic.get t.a_stopping then (
            try Unix.close fd with Unix.Unix_error _ -> ())
          else handle_conn t fd
      | None -> ());
      accept_loop t
    end

  let start ?(host = "127.0.0.1") ~port ~fast () =
    if port < 0 || port > 65535 then
      invalid_arg "Obs.Admin.start: port outside [0, 65535]";
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (addr, port));
       Unix.listen sock 16
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let actual_port =
      match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    let t =
      {
        a_sock = sock;
        a_port = actual_port;
        a_host = host;
        a_fast = fast;
        a_q_mutex = Mutex.create ();
        a_queue = [];
        a_accepting = true;
        a_stopping = Atomic.make false;
        a_domain = None;
      }
    in
    t.a_domain <- Some (Domain.spawn (fun () -> accept_loop t));
    t

  let port t = t.a_port

  let serve_pending t ~handle =
    Mutex.lock t.a_q_mutex;
    let pend = List.rev t.a_queue in
    t.a_queue <- [];
    Mutex.unlock t.a_q_mutex;
    List.iter
      (fun p ->
        let resp =
          match try `Ok (handle p.p_path) with _ -> `Err with
          | `Ok (Some (ct, body)) -> (200, ct, body)
          | `Ok None -> (404, "text/plain", "not found\n")
          | `Err -> (500, "text/plain", "internal error\n")
        in
        Mutex.lock p.p_mutex;
        p.p_response <- Some resp;
        Condition.signal p.p_cond;
        Mutex.unlock p.p_mutex)
      pend;
    List.length pend

  let stop t =
    Mutex.lock t.a_q_mutex;
    t.a_accepting <- false;
    let leftover = List.rev t.a_queue in
    t.a_queue <- [];
    Mutex.unlock t.a_q_mutex;
    List.iter
      (fun p ->
        Mutex.lock p.p_mutex;
        p.p_response <- Some (503, "text/plain", "shutting down\n");
        Condition.signal p.p_cond;
        Mutex.unlock p.p_mutex)
      leftover;
    Atomic.set t.a_stopping true;
    (* Wake a server domain parked in accept(2) with a throwaway
       connection to our own listening socket; it observes the stopping
       flag and exits. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.a_host, t.a_port))
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    (match t.a_domain with
    | Some d ->
        Domain.join d;
        t.a_domain <- None
    | None -> ());
    try Unix.close t.a_sock with Unix.Unix_error _ -> ()
end

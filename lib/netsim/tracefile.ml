type event_kind = Enqueue | Dequeue | Drop | Receive

type event = {
  kind : event_kind;
  time : float;
  from_node : int;
  to_node : int;
  packet_type : string;
  size : int;
  flow : int;
  src : int;
  dst : int;
  seq : int;
  packet_id : int;
}

type t = { mutable events_rev : event list; mutable count : int }

let create () = { events_rev = []; count = 0 }

let record t kind ~time ~from_node ~to_node (pkt : Packet.t) =
  let packet_type =
    match pkt.Packet.kind with
    | Packet.Udp -> "cbr"
    | Packet.Tcp_data -> "tcp"
    | Packet.Tcp_ack -> "ack"
    | Packet.Icmp_ttl_exceeded -> "icmp"
  in
  t.events_rev <-
    {
      kind;
      time;
      from_node;
      to_node;
      packet_type;
      size = pkt.Packet.size;
      flow = pkt.Packet.flow;
      src = pkt.Packet.src;
      dst = pkt.Packet.dst;
      seq = pkt.Packet.seq;
      packet_id = pkt.Packet.id;
    }
    :: t.events_rev;
  t.count <- t.count + 1

let attach t sim link =
  let from_node = Link.src link and to_node = Link.dst link in
  let log kind pkt = record t kind ~time:(Sim.now sim) ~from_node ~to_node pkt in
  Link.set_on_accept link (log Enqueue);
  Link.set_on_transmit link (log Dequeue);
  Link.set_on_drop link (log Drop);
  Link.add_deliver_observer link (log Receive)

let events t = Array.of_list (List.rev t.events_rev)
let count t = t.count

let kind_char = function Enqueue -> '+' | Dequeue -> '-' | Drop -> 'd' | Receive -> 'r'

let kind_of_char = function
  | '+' -> Enqueue
  | '-' -> Dequeue
  | 'd' -> Drop
  | 'r' -> Receive
  | c -> failwith (Printf.sprintf "Tracefile: unknown event %c" c)

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          Printf.fprintf oc "%c %.6f %d %d %s %d ---- %d %d.0 %d.0 %d %d\n"
            (kind_char e.kind) e.time e.from_node e.to_node e.packet_type e.size e.flow
            e.src e.dst e.seq e.packet_id)
        (List.rev t.events_rev))

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ ev; time; from_node; to_node; ptype; size; _flags; flow; src; dst; seq; pid ]
             ->
               let node_of s = int_of_float (float_of_string s) in
               out :=
                 {
                   kind = kind_of_char ev.[0];
                   time = float_of_string time;
                   from_node = int_of_string from_node;
                   to_node = int_of_string to_node;
                   packet_type = ptype;
                   size = int_of_string size;
                   flow = int_of_string flow;
                   src = node_of src;
                   dst = node_of dst;
                   seq = int_of_string seq;
                   packet_id = int_of_string pid;
                 }
                 :: !out
           | _ -> failwith "Tracefile.load: malformed line"
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let drops_per_flow events =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      if e.kind = Drop then
        Hashtbl.replace tbl e.flow (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.flow)))
    events;
  (* Sorted at the collection point: the fold's iteration order is
     unspecified (R8) and must not leak into the per-flow report. *)
  Hashtbl.fold (fun flow n acc -> (flow, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots at indices >= size are stale and unreachable. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

(* lint: allow R3 exact tie on timestamps falls through to seq; a tolerance would reorder events *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else 2 * cap in
    let nh = Array.make ncap entry in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

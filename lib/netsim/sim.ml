type t = {
  mutable now : float;
  events : (unit -> unit) Eventq.t;
  rng : Stats.Rng.t;
  mutable next_packet_id : int;
  mutable next_flow_id : int;
}

let create ?(seed = 1) () =
  {
    now = 0.;
    events = Eventq.create ();
    rng = Stats.Rng.create seed;
    next_packet_id = 0;
    next_flow_id = 0;
  }

let now t = t.now
let rng t = t.rng

(* Event-loop telemetry.  Counts are kept in plain locals during the
   loop (the loop is single-domain and allocation-sensitive) and
   flushed to the registry once when the loop drains, so the per-event
   overhead while enabled is one compare and two increments. *)
let m_events =
  Obs.Counter.make ~help:"Simulator events processed" "dcl_sim_events_total"

let m_depth_max =
  Obs.Gauge.make ~help:"Event-queue depth high-water mark"
    "dcl_sim_queue_depth_max"

let flush_loop_stats ~track ~events ~depth_max =
  if track && events > 0 then begin
    Obs.Counter.add m_events events;
    Obs.Gauge.set_max m_depth_max (float_of_int depth_max)
  end

let at t time f =
  if time < t.now -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%.9f < %.9f)" time t.now);
  Eventq.push t.events ~time:(Float.max time t.now) f

let after t d f =
  if d < 0. then invalid_arg "Sim.after: negative delay";
  at t (t.now +. d) f

let run_until t horizon =
  let track = Obs.enabled () in
  let events = ref 0 and depth_max = ref 0 in
  let continue = ref true in
  while !continue do
    match Eventq.peek_time t.events with
    | Some time when time <= horizon -> (
        if track then begin
          let d = Eventq.length t.events in
          if d > !depth_max then depth_max := d
        end;
        match Eventq.pop t.events with
        | Some (time, f) ->
            t.now <- time;
            incr events;
            f ()
        | None -> continue := false)
    | Some _ | None -> continue := false
  done;
  flush_loop_stats ~track ~events:!events ~depth_max:!depth_max;
  t.now <- Float.max t.now horizon

let run t =
  let track = Obs.enabled () in
  let events = ref 0 and depth_max = ref 0 in
  let continue = ref true in
  while !continue do
    (if track then
       let d = Eventq.length t.events in
       if d > !depth_max then depth_max := d);
    match Eventq.pop t.events with
    | Some (time, f) ->
        t.now <- time;
        incr events;
        f ()
    | None -> continue := false
  done;
  flush_loop_stats ~track ~events:!events ~depth_max:!depth_max

let pending t = Eventq.length t.events

let fresh_packet_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let fresh_flow_id t =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

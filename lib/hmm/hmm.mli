(** Hidden Markov model over discretized delay symbols, extended with
    per-symbol loss probabilities so that a probe loss can be treated
    as a delay observation with a missing value (Section V of the
    paper).

    The model has [n] hidden states and [m] delay symbols.  The hidden
    state evolves as a Markov chain ([pi], [a]); in state [i] the probe
    has delay symbol [j] with probability [b.(i).(j)]; a probe whose
    delay symbol is [j] is lost (observed as missing) with probability
    [c.(j)].  The observable is therefore either [Some j] (delay
    symbol) or [None] (loss). *)

type t = {
  n : int;
  m : int;
  pi : float array;  (** initial hidden-state distribution, length [n] *)
  a : float array array;  (** hidden-state transitions, [n]×[n] *)
  b : float array array;  (** symbol emission per state, [n]×[m] *)
  c : float array;  (** [c.(j)] = P(loss | symbol [j]), length [m] *)
}

type observation = int option
(** [Some j]: delay symbol [j] observed; [None]: probe lost. *)

type fit_stats = Em.fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;  (** parameter change fell below the threshold *)
  skipped_restarts : int;
      (** restarts discarded as degenerate by {!fit}; [0] from {!fit_from} *)
}

val pp_fit_stats : Format.formatter -> fit_stats -> unit

val init_random : Stats.Rng.t -> n:int -> m:int -> loss_fraction:float -> t
(** Random starting point: stochastic [pi], [a], [b] bounded away from
    zero, and [c.(j)] set near [loss_fraction] (the empirical loss rate
    of the trace) so the first E-step is well conditioned. *)

val init_informed : Stats.Rng.t -> n:int -> m:int -> observation array -> t
(** Data-driven starting point: emissions from the observed symbol
    frequencies and [c] from attributing each loss to its nearest
    surviving neighbour's symbol (see {!Mmhd.init_informed}).  {!fit}
    always includes this starting point. *)

val validate : t -> unit
(** Raises [Invalid_argument] unless all parameter blocks are
    stochastic / probabilities. *)

val log_likelihood : t -> observation array -> float

val viterbi : t -> observation array -> int array * float
(** Most likely hidden-state sequence given the observations (losses
    handled through the missing-value emission) and its log
    probability, by log-space dynamic programming.  A diagnostic tool:
    e.g. segmenting a trace into calm/congested phases. *)

val state_posteriors : t -> observation array -> float array array
(** [gamma.(t).(i)] = P(hidden state [i] at time [t] | observations),
    computed by scaled forward–backward.  For tests and diagnostics. *)

val fit :
  ?eps:float ->
  ?max_iter:int ->
  ?restarts:int ->
  ?domains:int ->
  ?sweep:Em.Sweep.policy ->
  rng:Stats.Rng.t ->
  n:int ->
  m:int ->
  observation array ->
  t * fit_stats
(** Baum–Welch EM handling missing values.  Iterates until the largest
    absolute parameter change drops below [eps] (default 1e-3, the
    paper's threshold) or [max_iter] (default 300).  [restarts] (default 2)
    independently-jittered {!init_informed} starting points are raced
    and the best converged fit wins; purely random starting points are
    not used (see the implementation comment on degenerate optima).
    With [domains > 1] the restarts run on that many concurrent
    domains of the persistent pool ({!Stats.Pool}; domains are spawned
    once per process and their EM workspaces stay warm across calls);
    each restart draws from its own pre-split RNG, so the winning
    model is bit-identical to the serial run.  A [?sweep] policy
    additionally chunks each sweep across pool domains
    ({!Em.Sweep}); the default is the serial sweep. *)

val fit_from :
  ?eps:float ->
  ?max_iter:int ->
  ?sweep:Em.Sweep.policy ->
  t ->
  observation array ->
  t * fit_stats
(** EM from an explicit starting point. *)

val to_em : t -> Em.model
(** The flattened {!Em} view of the model ([s = n] states); exposed so
    benchmarks and tests can drive the shared kernel (e.g. alternate
    {!Em.precision} workspaces) directly. *)

val virtual_delay_pmf : t -> observation array -> float array
(** Equation (5): [P(Y = j | loss)] — the posterior delay-symbol
    distribution of the lost probes, averaged over all loss instants of
    the sequence.  Requires at least one loss.  This is the
    distribution the hypothesis tests consume. *)

val simulate : Stats.Rng.t -> t -> len:int -> observation array * int array
(** Draw a sequence from the model; returns (observations, hidden
    states).  Used by tests to check parameter recovery. *)

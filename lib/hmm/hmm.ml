type t = {
  n : int;
  m : int;
  pi : float array;
  a : float array array;
  b : float array array;
  c : float array;
}

type observation = int option

type fit_stats = Em.fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
}

let pp_fit_stats = Em.pp_fit_stats

let clamp_prob p = Float.max 1e-6 (Float.min (1. -. 1e-6) p)

let init_random rng ~n ~m ~loss_fraction =
  if n <= 0 || m <= 0 then invalid_arg "Hmm.init_random: n and m must be positive";
  let jitter () = 0.8 +. (0.4 *. Stats.Rng.float rng) in
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng n;
    a = Stats.Matrix.random_stochastic rng n n;
    b = Stats.Matrix.random_stochastic rng n m;
    c = Array.init m (fun _ -> clamp_prob (loss_fraction *. jitter ()));
  }

(* See Mmhd.neighbor_attribution: empirical loss-to-symbol attribution
   used to seed [c]. *)
let neighbor_attribution ~m obs =
  let tt = Array.length obs in
  let seen = Array.make m 1. and lost = Array.make m 0.5 in
  let nearest t0 =
    let rec scan d =
      if d > tt then None
      else
        let back = t0 - d and fwd = t0 + d in
        let pick t = if t >= 0 && t < tt then obs.(t) else None in
        match pick back with
        | Some j -> Some j
        | None -> ( match pick fwd with Some j -> Some j | None -> scan (d + 1))
    in
    scan 1
  in
  Array.iteri
    (fun t o ->
      match o with
      | Some j -> seen.(j) <- seen.(j) +. 1.
      | None -> (
          match nearest t with
          | Some j -> lost.(j) <- lost.(j) +. 1.
          | None -> ()))
    obs;
  (seen, lost)

let init_informed rng ~n ~m obs =
  let seen, lost = neighbor_attribution ~m obs in
  let jitter () = 0.85 +. (0.3 *. Stats.Rng.float rng) in
  let c = Array.init m (fun j -> clamp_prob (lost.(j) /. (seen.(j) +. lost.(j)))) in
  (* Tilt each state's emissions toward a different end of the symbol
     axis: identical rows are a saddle point of the likelihood from
     which EM cannot separate the hidden states. *)
  let tilt i j =
    if n = 1 || m = 1 then 1.
    else
      let dir = (2. *. float_of_int i /. float_of_int (n - 1)) -. 1. in
      let pos = (2. *. float_of_int j /. float_of_int (m - 1)) -. 1. in
      exp (1.2 *. dir *. pos)
  in
  let b = Array.init n (fun i -> Array.init m (fun j -> seen.(j) *. tilt i j *. jitter ())) in
  Stats.Matrix.row_normalize b;
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng n;
    a = Stats.Matrix.random_stochastic rng n n;
    b;
    c;
  }

let is_prob_vector v = Array.for_all (fun p -> p >= 0. && p <= 1.) v

let validate t =
  let stochastic_vec v =
    Stats.Float_cmp.approx_eq ~eps:1e-6 (Array.fold_left ( +. ) 0. v) 1.
  in
  if Array.length t.pi <> t.n || not (stochastic_vec t.pi) || not (is_prob_vector t.pi)
  then invalid_arg "Hmm.validate: pi is not a distribution over n states";
  if Stats.Matrix.dims t.a <> (t.n, t.n) || not (Stats.Matrix.is_stochastic t.a) then
    invalid_arg "Hmm.validate: a is not an n-by-n stochastic matrix";
  if Stats.Matrix.dims t.b <> (t.n, t.m) || not (Stats.Matrix.is_stochastic t.b) then
    invalid_arg "Hmm.validate: b is not an n-by-m stochastic matrix";
  if Array.length t.c <> t.m || not (is_prob_vector t.c) then
    invalid_arg "Hmm.validate: c is not a vector of m probabilities"

(* --- Em kernel bridge -------------------------------------------------- *)

let flatten rows r c =
  let out = Array.make (r * c) 0. in
  for i = 0 to r - 1 do
    Array.blit rows.(i) 0 out (i * c) c
  done;
  out

let unflatten flat r c = Array.init r (fun i -> Array.sub flat (i * c) c)

let to_em t =
  {
    Em.s = t.n;
    m = t.m;
    pi = Array.copy t.pi;
    a = flatten t.a t.n t.n;
    b = flatten t.b t.n t.m;
    c = Array.copy t.c;
  }

let of_em ~n ~m (e : Em.model) =
  {
    n;
    m;
    pi = Array.copy e.Em.pi;
    a = unflatten e.Em.a n n;
    b = unflatten e.Em.b n m;
    c = Array.copy e.Em.c;
  }

let ws = Em.domain_ws

let emission t i = function
  | Some j -> t.b.(i).(j) *. (1. -. t.c.(j))
  | None ->
      let acc = ref 0. in
      for j = 0 to t.m - 1 do
        acc := !acc +. (t.b.(i).(j) *. t.c.(j))
      done;
      !acc

let viterbi t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Hmm.viterbi: empty observation sequence";
  let n = t.n in
  let log_safe x = if x <= 0. then neg_infinity else log x in
  let delta = Array.make_matrix tt n neg_infinity in
  let back = Array.make_matrix tt n 0 in
  for i = 0 to n - 1 do
    delta.(0).(i) <- log_safe t.pi.(i) +. log_safe (emission t i obs.(0))
  done;
  for time = 1 to tt - 1 do
    for i = 0 to n - 1 do
      let e = log_safe (emission t i obs.(time)) in
      for k = 0 to n - 1 do
        let cand = delta.(time - 1).(k) +. log_safe t.a.(k).(i) +. e in
        if cand > delta.(time).(i) then begin
          delta.(time).(i) <- cand;
          back.(time).(i) <- k
        end
      done
    done
  done;
  let best = ref 0 in
  for i = 1 to n - 1 do
    if delta.(tt - 1).(i) > delta.(tt - 1).(!best) then best := i
  done;
  let path = Array.make tt 0 in
  path.(tt - 1) <- !best;
  for time = tt - 2 downto 0 do
    path.(time) <- back.(time + 1).(path.(time + 1))
  done;
  (path, delta.(tt - 1).(!best))

let log_likelihood t obs = Em.log_likelihood ~ws:(ws ()) (to_em t) obs
let state_posteriors t obs = Em.state_posteriors ~ws:(ws ()) (to_em t) obs

let fit_from ?eps ?max_iter ?sweep t0 obs =
  let fitted, stats =
    Em.fit_from ~ws:(ws ()) ?eps ?max_iter ?sweep ~update_b:true (to_em t0) obs
  in
  (of_em ~n:t0.n ~m:t0.m fitted, stats)

let fit ?eps ?max_iter ?(restarts = 2) ?(domains = 1) ?sweep ~rng ~n ~m obs =
  if restarts <= 0 then invalid_arg "Hmm.fit: restarts must be positive";
  (* Every starting point is the data-driven informed initialization
     with independent jitter, and the best converged attempt wins.
     Purely random initializations are deliberately not raced by
     likelihood: the model family admits degenerate optima in which a
     rarely-observed symbol absorbs all the losses (its loss
     probability is driven toward 1 at negligible cost), and those
     optima can dominate the likelihood while being statistically
     meaningless.  Informed starts are anchored by the neighbour
     attribution, so comparing them by likelihood is safe.
     Each restart draws from its own pre-split RNG, so the winner is
     identical whether the restarts run serially or across domains. *)
  let rngs = Array.init restarts (fun _ -> Stats.Rng.split rng) in
  let init k = to_em (init_informed rngs.(k) ~n ~m obs) in
  let fitted, stats =
    Em.fit_restarts ?eps ?max_iter ~domains ?sweep ~restarts ~update_b:true ~init
      obs
  in
  (of_em ~n ~m fitted, stats)

let virtual_delay_pmf t obs =
  if not (Array.exists (fun o -> o = None) obs) then
    invalid_arg "Hmm.virtual_delay_pmf: no loss in the sequence";
  Em.virtual_delay_pmf ~ws:(ws ()) (to_em t) obs

let simulate rng t ~len =
  if len <= 0 then invalid_arg "Hmm.simulate: len <= 0";
  validate t;
  let states = Array.make len 0 in
  let obs = Array.make len None in
  let state = ref (Stats.Sampler.categorical rng t.pi) in
  for time = 0 to len - 1 do
    states.(time) <- !state;
    let j = Stats.Sampler.categorical rng t.b.(!state) in
    obs.(time) <- (if Stats.Sampler.bernoulli rng ~p:t.c.(j) then None else Some j);
    state := Stats.Sampler.categorical rng t.a.(!state)
  done;
  (obs, states)

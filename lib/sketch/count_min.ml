(* Count-min sketch over integer keys (Cormode & Muthukrishnan):
   [rows] hash rows of [width] counters; an update adds to one counter
   per row, a query takes the minimum over the rows.  Collisions only
   ever inflate a cell, so the estimate never falls below the true
   count — the overestimation-only guarantee the fleet gate leans on
   (a zero estimate proves a loss-free window, so masking the loss
   signal with it can never hide a path that really lost probes).

   Counters are plain ints: the sketch is updated from the driver
   domain at push time, never from pool workers, so it needs no atomic
   story.  [halve] ages the whole table by floor division; because
   [floor ((a + b) / 2) >= floor (a / 2) + floor (b / 2)], a halved
   cell still dominates the sum of its keys' individually halved
   counts, preserving the overestimation bound against the equally
   decayed true counts. *)

type t = {
  rows : int;
  width : int; (* power of two *)
  mask : int;
  counts : int array; (* rows * width, row-major *)
  seeds : int64 array; (* per-row hash seed *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* SplitMix64 finalizer: full-avalanche mixing of key + row seed, the
   same generator family as Stats.Rng, so row hashes are pairwise
   independent for all practical purposes. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(rows = 4) ~width ~seed () =
  if rows <= 0 then invalid_arg "Sketch.Count_min.create: rows must be positive";
  if width <= 0 then invalid_arg "Sketch.Count_min.create: width must be positive";
  let width = next_pow2 width 1 in
  let rng = Stats.Rng.create seed in
  {
    rows;
    width;
    mask = width - 1;
    counts = Array.make (rows * width) 0;
    seeds = Array.init rows (fun _ -> Stats.Rng.bits64 rng);
  }

let rows t = t.rows
let width t = t.width

let slot t row key =
  Int64.to_int (mix (Int64.add (Int64.of_int key) t.seeds.(row))) land t.mask

let add t key n =
  if n < 0 then invalid_arg "Sketch.Count_min.add: count must be non-negative";
  for r = 0 to t.rows - 1 do
    let i = (r * t.width) + slot t r key in
    t.counts.(i) <- t.counts.(i) + n
  done

let query t key =
  let best = ref max_int in
  for r = 0 to t.rows - 1 do
    let c = t.counts.((r * t.width) + slot t r key) in
    if c < !best then best := c
  done;
  !best

let halve t =
  for i = 0 to Array.length t.counts - 1 do
    t.counts.(i) <- t.counts.(i) asr 1
  done

let clear t = Array.fill t.counts 0 (Array.length t.counts) 0

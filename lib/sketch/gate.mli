(** Promotion/demotion state machine with hysteresis — the per-path
    policy core of the sketch-gated triage front end.

    A path is {e Quiet} (tracked only by the O(1) sketch estimators) or
    {e Promoted} (running full incremental EM and SDCL/WDCL re-tests).
    Each epoch the owner feeds the machine three booleans distilled
    from the path's sketches and model:

    - [suspect]: a promotion signal crossed its threshold ({!suspect}
      over the loss EWMA and delay-quantile elevation);
    - [calm]: every signal sits below [demote_margin] times its
      threshold — the hysteresis band that stops border-line paths
      from flapping;
    - [settled]: the full inference has a current no-dominant verdict.

    Promotion fires after [promote_after] consecutive suspect epochs.
    Demotion is deliberately more conservative: it needs [calm] AND
    [settled] for [demote_after] consecutive epochs, so delay-reactive
    cross-traffic that periodically suppresses its own congestion
    signal keeps its full-inference slot.  Any miss resets the streak. *)

type config = {
  loss_threshold : float;  (** promote when the loss EWMA reaches this *)
  drift_threshold : float;
      (** promote when the delay-quantile elevation reaches this *)
  promote_after : int;  (** consecutive suspect epochs before promotion *)
  demote_after : int;  (** consecutive calm+settled epochs before demotion *)
  demote_margin : float;
      (** hysteresis: calm means below [margin * threshold], in [\[0, 1\]] *)
}

val config :
  ?loss_threshold:float ->
  ?drift_threshold:float ->
  ?promote_after:int ->
  ?demote_after:int ->
  ?demote_margin:float ->
  unit ->
  config
(** Defaults: [loss_threshold = 0.2], [drift_threshold = 0.75],
    [promote_after = 2], [demote_after = 4], [demote_margin = 0.8].
    Raises [Invalid_argument] on out-of-range values. *)

val suspect : config -> loss:float -> drift:float -> bool
(** Either signal at or above its promotion threshold. *)

type cause = Loss | Drift | Both
(** Which signal(s) crossed: the forensic refinement of {!suspect}. *)

val cause_name : cause -> string
(** Static display name: ["loss-ewma"], ["drift"],
    ["loss-ewma+drift"].  Never allocates. *)

val suspect_cause : config -> loss:float -> drift:float -> cause option
(** [Some c] exactly when {!suspect} holds, refined by which
    threshold(s) were crossed. *)

val calm : config -> loss:float -> drift:float -> bool
(** Both signals strictly below their margin-shrunk thresholds. *)

type t
(** One path's gate state: promoted flag plus the current streak. *)

val create : unit -> t
(** Fresh Quiet gate. *)

val promoted : t -> bool

val streak : t -> int
(** Consecutive qualifying epochs toward the next transition. *)

type decision = Stay | Promote | Demote

val step : config -> t -> suspect:bool -> calm:bool -> settled:bool -> decision
(** Advance one epoch.  [Promote] and [Demote] are returned exactly on
    the epoch the state flips; the caller owns the side effects
    (moving the path on or off full inference). *)

(** Streaming per-path estimators for the triage front end, with
    quantized lookup tables replacing their nonlinear ops (the AHAB
    data-plane idiom: precompute the nonlinearity over a quantized
    domain, index it in O(1) per update).

    Everything here is single-writer scalar state — one value per
    monitored path, updated from the driver domain at push time — and
    fully deterministic: the same update sequence reproduces the same
    estimate bitwise. *)

(** Precomputed powers [factor^k]: coasting an estimator (or a demoted
    path's decayed sufficient statistics) over [k] skipped epochs is
    one table load and one multiply instead of a [**]. *)
module Decay_table : sig
  type t

  val make : ?max_pow:int -> factor:float -> unit -> t
  (** Table of [factor^0 .. factor^max_pow] (default 64), accumulated
      by successive multiplication — the same products [k] single
      decays produce.  Raises [Invalid_argument] unless
      [factor] is in [\[0, 1\]] and [max_pow >= 1]. *)

  val pow : t -> int -> float
  (** [pow t k] is [factor^k], clamped at [max_pow] (past it the
      coasted signal is indistinguishable from zero).  Raises
      [Invalid_argument] on a negative [k]. *)

  val factor : t -> float
  val max_pow : t -> int
end

(** Exponentially weighted moving average, e.g. of a path's per-batch
    loss fraction. *)
module Ewma : sig
  type t

  val make : alpha:float -> t
  (** Smoothing factor in (0, 1]; the first {!update} primes the value
      directly.  Raises [Invalid_argument] out of range. *)

  val update : t -> float -> unit
  (** [value <- (1 - alpha) * value + alpha * x] — written in that
      form so an [x = 0] update is bitwise [value * (1 - alpha)],
      matching {!Decay_table}'s per-step factor. *)

  val coast : t -> Decay_table.t -> int -> unit
  (** [coast t table k] applies [k] missed zero-updates in one multiply
      through the table: equal to [k] explicit [update t 0.] calls up
      to multiplication order (the table accumulates left-to-right).
      A no-op before the first update.  Raises [Invalid_argument] on
      negative [k]. *)

  val value : t -> float
  (** [0.] before the first update. *)

  val primed : t -> bool
end

(** Robbins-Monro p-quantile tracker: one float of state, one
    comparison and one table-quantized gain per observation.

    [q <- q + step_n * (p - 1{y <= q})] converges to the p-quantile of
    a stationary input; the gain [step_n] follows the 1/n schedule
    quantized to powers of two of the count (a 16-entry lookup table),
    so no division runs per update.  Monotone by construction: an
    observation above the estimate can only raise it, one below can
    only lower it. *)
module Quantile : sig
  type t

  val make : ?levels:int -> ?step0:float -> p:float -> lo:float -> hi:float -> unit -> t
  (** Track the [p]-quantile (in (0, 1)) of inputs clamped to
      [\[lo, hi\]].  [step0] (default [(hi - lo) / 4]) is the warm-up
      gain, halved at every count doubling past 16 observations down
      through [levels] (default 16) table entries.  Raises
      [Invalid_argument] on out-of-range parameters. *)

  val update : t -> float -> unit

  val value : t -> float
  (** Current estimate, clamped to [\[lo, hi\]]; [lo] before the first
      update. *)

  val elevation : t -> float
  (** [(value - lo) / (hi - lo)]: the estimate's normalized height
      above the range floor, in [\[0, 1\]] — the fleet gate's
      delay-quantile-drift signal (how far the path's delay quantile
      has climbed above its propagation floor). *)

  val count : t -> int
end

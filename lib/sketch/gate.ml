(* Promotion/demotion state machine with hysteresis: the per-path
   policy core of the sketch-gated triage front end.

   A path is either Quiet (tracked only by sketches) or Promoted
   (running full incremental EM + SDCL/WDCL re-tests).  Crossing a
   promotion threshold must persist for [promote_after] consecutive
   epochs before the path is promoted; demotion is deliberately more
   conservative — the signals must sit below a margin-shrunk threshold
   AND the EM side must have settled on a no-dominant verdict, for
   [demote_after] consecutive epochs — so delay-reactive cross-traffic
   that suppresses its own signal (the hard cases in "Common Problems
   in Delay-Based Congestion Control Algorithms") is not dropped from
   full inference the moment it backs off. *)

type config = {
  loss_threshold : float;
  drift_threshold : float;
  promote_after : int;
  demote_after : int;
  demote_margin : float;
}

let config ?(loss_threshold = 0.2) ?(drift_threshold = 0.75) ?(promote_after = 2)
    ?(demote_after = 4) ?(demote_margin = 0.8) () =
  if Stats.Float_cmp.lt loss_threshold 0. then
    invalid_arg "Sketch.Gate.config: loss_threshold must be non-negative";
  if Stats.Float_cmp.lt drift_threshold 0. then
    invalid_arg "Sketch.Gate.config: drift_threshold must be non-negative";
  if promote_after < 1 then
    invalid_arg "Sketch.Gate.config: promote_after must be positive";
  if demote_after < 1 then
    invalid_arg "Sketch.Gate.config: demote_after must be positive";
  if Stats.Float_cmp.lt demote_margin 0. || Stats.Float_cmp.gt demote_margin 1.
  then invalid_arg "Sketch.Gate.config: demote_margin must be in [0, 1]";
  { loss_threshold; drift_threshold; promote_after; demote_after; demote_margin }

let suspect cfg ~loss ~drift =
  Stats.Float_cmp.geq loss cfg.loss_threshold
  || Stats.Float_cmp.geq drift cfg.drift_threshold

type cause = Loss | Drift | Both

(* Static strings so forensic consumers (trace events, timelines) can
   store the cause without allocating per emission. *)
let cause_name = function
  | Loss -> "loss-ewma"
  | Drift -> "drift"
  | Both -> "loss-ewma+drift"

let suspect_cause cfg ~loss ~drift =
  let l = Stats.Float_cmp.geq loss cfg.loss_threshold in
  let d = Stats.Float_cmp.geq drift cfg.drift_threshold in
  match (l, d) with
  | true, true -> Some Both
  | true, false -> Some Loss
  | false, true -> Some Drift
  | false, false -> None

let calm cfg ~loss ~drift =
  Stats.Float_cmp.lt loss (cfg.demote_margin *. cfg.loss_threshold)
  && Stats.Float_cmp.lt drift (cfg.demote_margin *. cfg.drift_threshold)

type t = { mutable promoted : bool; mutable streak : int }

let create () = { promoted = false; streak = 0 }
let promoted t = t.promoted
let streak t = t.streak

type decision = Stay | Promote | Demote

let step cfg t ~suspect ~calm ~settled =
  if t.promoted then
    if calm && settled then begin
      t.streak <- t.streak + 1;
      if t.streak >= cfg.demote_after then begin
        t.promoted <- false;
        t.streak <- 0;
        Demote
      end
      else Stay
    end
    else begin
      t.streak <- 0;
      Stay
    end
  else if suspect then begin
    t.streak <- t.streak + 1;
    if t.streak >= cfg.promote_after then begin
      t.promoted <- true;
      t.streak <- 0;
      Promote
    end
    else Stay
  end
  else begin
    t.streak <- 0;
    Stay
  end

(** Count-min sketch over integer keys — sublinear-memory frequency
    estimation for the fleet's probe-loss stream.

    [rows] hash rows of [width] counters (width rounded up to a power
    of two); {!add} increments one counter per row, {!query} takes the
    minimum.  Collisions only inflate cells, so for any key

    {v true count <= query <= true count + noise v}

    — the classic overestimation-only guarantee.  The fleet gate uses
    the lower side: a zero estimate {e proves} the key saw no events in
    the (decayed) window, so gating a promotion signal on
    [query > 0] can never suppress a path that really lost probes.

    The sketch is single-writer by design: the fleet updates it from
    the driver domain at push time, in ascending path order, which
    keeps gated fleets bit-reproducible.  It must not be written from
    pool workers. *)

type t

val create : ?rows:int -> width:int -> seed:int -> unit -> t
(** [rows] (default 4) independent hash rows of [width] counters
    (rounded up to a power of two).  [seed] derives the per-row hash
    seeds deterministically — equal seeds give equal sketches.  Raises
    [Invalid_argument] on non-positive dimensions. *)

val add : t -> int -> int -> unit
(** [add t key n] adds [n >= 0] events for [key].  Raises
    [Invalid_argument] on a negative count. *)

val query : t -> int -> int
(** Upper bound on the number of events added for [key] since creation
    (scaled down by any intervening {!halve}s); never below the equally
    decayed true count. *)

val halve : t -> unit
(** Age every counter by floor division by two.  Called once per epoch
    this turns the totals into an exponentially decayed window while
    preserving the overestimation bound against the equally halved true
    counts ([floor ((a+b)/2) >= floor (a/2) + floor (b/2)]). *)

val clear : t -> unit
(** Zero every counter. *)

val rows : t -> int

val width : t -> int
(** The effective width after rounding up to a power of two. *)

(* Streaming per-path estimators for the triage front end: a loss-rate
   EWMA, a Robbins-Monro delay-quantile tracker, and the quantized
   lookup tables that replace their nonlinear ops with O(1) indexing —
   the data-plane trick AHAB uses for rate estimation (precompute the
   nonlinear function over a quantized domain, look it up per update).

   Two nonlinear ops are table-quantized here:

   - [Decay_table]: [factor^k] for coasting an estimator (or a demoted
     path's sufficient statistics) over k skipped epochs, instead of a
     [**] per path per epoch;
   - [Quantile]'s step schedule: the Robbins-Monro 1/n gain, quantized
     to powers of two of the observation count, so an update costs one
     table load instead of a division. *)

module Decay_table = struct
  type t = { factor : float; pows : float array }

  let make ?(max_pow = 64) ~factor () =
    if Stats.Float_cmp.lt factor 0. || Stats.Float_cmp.gt factor 1. then
      invalid_arg "Sketch.Estimators.Decay_table.make: factor must be in [0, 1]";
    if max_pow < 1 then
      invalid_arg "Sketch.Estimators.Decay_table.make: max_pow must be positive";
    let pows = Array.make (max_pow + 1) 1. in
    for k = 1 to max_pow do
      pows.(k) <- pows.(k - 1) *. factor
    done;
    { factor; pows }

  let factor t = t.factor
  let max_pow t = Array.length t.pows - 1

  let pow t k =
    if k < 0 then invalid_arg "Sketch.Estimators.Decay_table.pow: negative power";
    t.pows.(min k (Array.length t.pows - 1))
end

module Ewma = struct
  (* Written as [(1 - alpha) * v + alpha * x] (not [v + alpha * (x - v)])
     so that an x = 0 update is bitwise [v * (1 - alpha)] — the same
     per-step factor Decay_table accumulates, which is what makes
     coasting k epochs agree with k explicit zero updates up to
     multiplication order. *)
  type t = {
    alpha : float;
    one_minus : float;
    mutable value : float;
    mutable primed : bool;
  }

  let make ~alpha =
    if Stats.Float_cmp.leq alpha 0. || Stats.Float_cmp.gt alpha 1. then
      invalid_arg "Sketch.Estimators.Ewma.make: alpha must be in (0, 1]";
    { alpha; one_minus = 1. -. alpha; value = 0.; primed = false }

  let update t x =
    if t.primed then t.value <- (t.one_minus *. t.value) +. (t.alpha *. x)
    else begin
      t.value <- x;
      t.primed <- true
    end

  let coast t table k =
    if k < 0 then invalid_arg "Sketch.Estimators.Ewma.coast: negative epochs";
    if k > 0 && t.primed then t.value <- t.value *. Decay_table.pow table k

  let value t = t.value
  let primed t = t.primed
end

module Quantile = struct
  type t = {
    p : float;
    lo : float;
    hi : float;
    steps : float array; (* Robbins-Monro gains, quantized by log2 count *)
    mutable q : float;
    mutable count : int;
  }

  let make ?(levels = 16) ?step0 ~p ~lo ~hi () =
    if Stats.Float_cmp.leq p 0. || Stats.Float_cmp.geq p 1. then
      invalid_arg "Sketch.Estimators.Quantile.make: p must be in (0, 1)";
    if Stats.Float_cmp.geq lo hi then
      invalid_arg "Sketch.Estimators.Quantile.make: lo must be below hi";
    if levels < 1 then
      invalid_arg "Sketch.Estimators.Quantile.make: levels must be positive";
    let step0 = match step0 with Some s -> s | None -> (hi -. lo) /. 4. in
    if Stats.Float_cmp.leq step0 0. then
      invalid_arg "Sketch.Estimators.Quantile.make: step0 must be positive";
    {
      p;
      lo;
      hi;
      steps = Array.init levels (fun k -> step0 /. float_of_int (1 lsl k));
      q = lo;
      count = 0;
    }

  (* Gain level: halve the step every doubling of the count past a
     16-observation warm-up.  [bits] is the integer log2, so the whole
     schedule is int ops plus one table load. *)
  let level t =
    let n = t.count lsr 4 in
    let k = ref 0 in
    while n lsr !k > 0 do
      incr k
    done;
    min !k (Array.length t.steps - 1)

  let update t y =
    t.count <- t.count + 1;
    if t.count = 1 then t.q <- Float.max t.lo (Float.min t.hi y)
    else begin
      let step = t.steps.(level t) in
      let dir = if Stats.Float_cmp.gt y t.q then t.p else t.p -. 1. in
      t.q <- Float.max t.lo (Float.min t.hi (t.q +. (step *. dir)))
    end

  let value t = t.q
  let count t = t.count

  let elevation t = (t.q -. t.lo) /. (t.hi -. t.lo)
end

(** Per-path streaming identification state.

    Each monitored path owns one value of {!t}: decayed EM sufficient
    statistics ({!Em.Incremental}), the current MMHD model, and the
    current SDCL/WDCL conclusion.  One {!update} per epoch performs one
    online-EM iteration over the path's new observation batch — decay
    by the forgetting factor [lambda], append the batch's statistics
    seeded from the carried filtered distribution, M-step — and then
    re-tests the hypothesis tests on the VQD read off the decayed loss
    counts ({!Em.Incremental.loss_mass} normalized, the streaming
    Eq. (5)).  Cost per epoch is O(batch), independent of how long the
    path has been monitored; memory per path is O(s^2) floats.

    The model family is the paper's recommended MMHD ([n] hidden
    components over the scheme's [m] symbols, indicator emission
    matrix); [n = 1] degenerates to the Markov ablation. *)

type config = {
  n : int;  (** hidden-dimension size *)
  m : int;  (** delay symbols (copied from the scheme) *)
  lambda : float;  (** per-epoch forgetting factor in [\[0, 1\]] *)
  scheme : Dcl.Discretize.t;
  params : Dcl.Identify.params;  (** test parameters for the re-tests *)
  min_weight : float;
      (** effective (decayed) observation count required before the
          tests run *)
  min_loss_mass : float;
      (** decayed loss mass required before the tests run — below it
          there is no meaningful VQD *)
  timeline_capacity : int;
      (** diagnosis-history entries retained per path ({!Timeline});
          [0] disables recording *)
}

val config :
  ?n:int ->
  ?lambda:float ->
  ?params:Dcl.Identify.params ->
  ?min_weight:float ->
  ?min_loss_mass:float ->
  ?timeline_capacity:int ->
  scheme:Dcl.Discretize.t ->
  unit ->
  config
(** Defaults: [n = 2], [lambda = 0.9] (an effective window of ten
    epochs), [params = Dcl.Identify.default_params], [min_weight = 64]
    observations, [min_loss_mass = 1] expected loss,
    [timeline_capacity = 64] retained diagnosis events.  Raises
    [Invalid_argument] on out-of-range values. *)

val states : config -> int
(** Flattened state count [n * m] — the workspace-cache key
    ({!Workspace_cache.get}). *)

type t

val create : config -> rng:Stats.Rng.t -> t
(** Fresh untested path state.  [rng] must be the path's own pre-split
    stream: it seeds the informed model initialization, so two fleets
    built from equal-seeded RNGs evolve identically. *)

val update : ws:Em.workspace -> ?epoch:int -> t -> Em.observation array -> bool
(** Process one epoch's batch; returns whether the conclusion changed.
    An empty batch is a no-op.  Before the first delay observation
    arrives, batches are dropped (the informed initializer needs at
    least one delay); afterwards the model is re-estimated every
    epoch, and the tests re-run once the {!config} gates are met.  A
    {!Em.Zero_likelihood} degeneracy resets the path to its untested
    state (counted in [dcl_fleet_path_resets_total] and {!resets})
    instead of propagating.  [ws] is the calling domain's workspace
    ({!Workspace_cache.get}).  Each non-dropped batch appends an entry
    to the path's {!timeline}, stamped with [epoch] (the scheduler's
    fleet epoch) when given, the path's own update count otherwise. *)

val coast : t -> factor:float -> unit
(** Apply the decay the path missed while it was not being updated
    (e.g. demoted to sketch-only tracking): multiply the sufficient
    statistics by [factor] (= [lambda^k] for [k] skipped epochs, via
    {!Sketch.Estimators.Decay_table}), so re-promotion resumes from
    warm but correctly aged statistics.  A no-op before the first
    appended batch.  Raises [Invalid_argument] unless [factor] is in
    [\[0, 1\]]. *)

val conclusion : t -> Dcl.Identify.conclusion option
(** [None] until the test gates are first met (or after a reset). *)

val bound : t -> float option
(** Current [Q_max] upper bound (seconds) when a DCL is identified. *)

val vqd : t -> Dcl.Vqd.t option
(** The streaming VQD estimate, when enough decayed loss mass has
    accumulated. *)

val model : t -> Em.model option
val weight : t -> float
(** Effective (decayed) observation count behind the statistics. *)

val epochs : t -> int
val observations : t -> int
val resets : t -> int
val last_log_likelihood : t -> float
(** Log-likelihood of the most recent appended batch; [nan] before the
    first. *)

val stats : t -> Em.Incremental.stats
(** The underlying accumulators (for tests and introspection). *)

val timeline : t -> Timeline.t
(** The path's bounded diagnosis history (verdict updates, gate
    transitions recorded by the scheduler, resets). *)

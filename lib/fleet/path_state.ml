(* Per-path streaming state: decayed EM sufficient statistics, the
   current model, and the current SDCL/WDCL conclusion.

   One [update] is one online-EM iteration (decay, append the batch's
   statistics, M-step) followed by a re-test of the hypothesis tests on
   the VQD read off the decayed loss counts — the streaming analogue of
   Identify.run's fit-then-test pipeline, at O(batch) cost per epoch
   instead of O(history). *)

let m_resets =
  Obs.Counter.make
    ~help:"Fleet paths whose model was restarted after a zero-likelihood \
           degeneracy"
    "dcl_fleet_path_resets_total"

type config = {
  n : int;
  m : int;
  lambda : float;
  scheme : Dcl.Discretize.t;
  params : Dcl.Identify.params;
  min_weight : float;
  min_loss_mass : float;
  timeline_capacity : int;
}

let config ?(n = 2) ?(lambda = 0.9) ?params ?(min_weight = 64.)
    ?(min_loss_mass = 1.) ?(timeline_capacity = 64) ~scheme () =
  if n <= 0 then invalid_arg "Fleet.Path_state.config: n must be positive";
  if lambda < 0. || lambda > 1. then
    invalid_arg "Fleet.Path_state.config: lambda must be in [0, 1]";
  if min_weight < 0. then
    invalid_arg "Fleet.Path_state.config: min_weight must be non-negative";
  if min_loss_mass <= 0. then
    invalid_arg "Fleet.Path_state.config: min_loss_mass must be positive";
  if timeline_capacity < 0 then
    invalid_arg "Fleet.Path_state.config: timeline_capacity must be non-negative";
  let params = match params with Some p -> p | None -> Dcl.Identify.default_params in
  {
    n;
    m = scheme.Dcl.Discretize.m;
    lambda;
    scheme;
    params;
    min_weight;
    min_loss_mass;
    timeline_capacity;
  }

let states cfg = cfg.n * cfg.m

type t = {
  config : config;
  rng : Stats.Rng.t;
  stats : Em.Incremental.stats;
  timeline : Timeline.t;
  mutable model : Em.model option;
  mutable conclusion : Dcl.Identify.conclusion option;
  mutable bound : float option;
  mutable epochs : int;
  mutable observations : int;
  mutable resets : int;
  mutable last_log_likelihood : float;
}

let create config ~rng =
  {
    config;
    rng;
    stats = Em.Incremental.create ~s:(states config) ~m:config.m;
    timeline = Timeline.create ~capacity:config.timeline_capacity;
    model = None;
    conclusion = None;
    bound = None;
    epochs = 0;
    observations = 0;
    resets = 0;
    last_log_likelihood = Float.nan;
  }

let model t = t.model
let conclusion t = t.conclusion
let bound t = t.bound
let epochs t = t.epochs
let observations t = t.observations
let resets t = t.resets
let weight t = Em.Incremental.weight t.stats
let last_log_likelihood t = t.last_log_likelihood
let stats t = t.stats
let timeline t = t.timeline

(* Catch-up decay for a path whose epochs went by without updates (a
   demoted path re-entering full inference): one multiplication by
   lambda^k stands in for the k per-epoch decays it missed, so its
   decayed statistics are warm but correctly aged.  A path with no
   appended batch yet has nothing to age. *)
let coast t ~factor =
  if Stats.Float_cmp.lt factor 0. || Stats.Float_cmp.gt factor 1. then
    invalid_arg "Fleet.Path_state.coast: factor must be in [0, 1]";
  if Em.Incremental.batches t.stats > 0 then
    Em.Incremental.decay t.stats ~lambda:factor

let vqd t =
  let mass = Em.Incremental.loss_mass t.stats in
  let total = Array.fold_left ( +. ) 0. mass in
  if Stats.Float_cmp.geq total t.config.min_loss_mass then
    Some (Dcl.Vqd.of_pmf t.config.scheme mass)
  else None

(* Re-run the hypothesis tests against the streaming VQD.  Gated on an
   effective sample size ([min_weight] decayed observations) and a
   minimum decayed loss mass: with no losses yet there is no VQD, and
   with a fraction of one expected loss the tests would amplify one
   posterior row into a verdict. *)
let retest t =
  if Stats.Float_cmp.geq (Em.Incremental.weight t.stats) t.config.min_weight
  then
    match vqd t with
    | None -> ()
    | Some vqd ->
        let v = Dcl.Identify.conclude ~params:t.config.params vqd in
        t.conclusion <- Some v.Dcl.Identify.conclusion;
        t.bound <- v.Dcl.Identify.bound

let update ~ws ?epoch t batch =
  let len = Array.length batch in
  if len = 0 then false
  else begin
    let model =
      match t.model with
      | Some model -> Some model
      | None ->
          (* First batch (or post-reset): data-driven starting point.
             An all-loss first batch cannot seed the informed
             initializer; hold the batch's observations back until a
             delay arrives.  Once a model exists, all-loss batches are
             handled by the missing-value emission. *)
          if Array.exists (fun o -> o <> None) batch then
            Some
              (Mmhd.to_em
                 (Mmhd.init_informed t.rng ~n:t.config.n ~m:t.config.m batch))
          else None
    in
    match model with
    | None -> false
    | Some model -> (
        t.epochs <- t.epochs + 1;
        t.observations <- t.observations + len;
        let epoch = match epoch with Some e -> e | None -> t.epochs in
        Em.Incremental.decay t.stats ~lambda:t.config.lambda;
        let was = t.conclusion in
        match Em.Incremental.append ~ws t.stats model batch with
        | ll ->
            t.last_log_likelihood <- ll;
            t.model <- Some (Em.Incremental.m_step t.stats model);
            retest t;
            Timeline.record t.timeline
              (Timeline.Update
                 {
                   epoch;
                   verdict = t.conclusion;
                   log_likelihood = ll;
                   weight = Em.Incremental.weight t.stats;
                   bound = t.bound;
                 });
            t.conclusion <> was
        | exception Em.Zero_likelihood _ ->
            (* The M-step floors make this essentially impossible once a
               model has been re-estimated, but a pathological first
               model can still produce an impossible observation.
               Restart the path from scratch; the next batch re-seeds
               via the informed initializer. *)
            Em.Incremental.reset t.stats;
            t.model <- None;
            t.conclusion <- None;
            t.bound <- None;
            t.resets <- t.resets + 1;
            Obs.Counter.incr m_resets;
            Timeline.record t.timeline (Timeline.Reset { epoch });
            Obs.Trace.instant "fleet.reset" epoch;
            was <> None)
  end

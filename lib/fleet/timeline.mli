(** Bounded per-path diagnosis history.

    Each {!Path_state.t} retains a fixed-capacity overwrite-oldest ring
    of diagnosis events — verdict updates, gate transitions with their
    cause, zero-likelihood resets — queryable after (or during) a run:
    the data behind [dcl-fleetd]'s [/paths/:id] route and the verdict
    history tomography fusion will consume.

    Not synchronized: a timeline is appended to by whichever domain
    currently owns the path (pool workers during the update fan-out,
    the driver for gate events between pool jobs), and those phases
    never overlap. *)

type entry =
  | Update of {
      epoch : int;
      verdict : Dcl.Identify.conclusion option;
      log_likelihood : float;
      weight : float;
      bound : float option;
    }  (** One online-EM epoch: the re-test outcome and its evidence. *)
  | Gate of { epoch : int; promoted : bool; cause : string; streak : int }
      (** A promotion ([promoted = true]) or demotion, with the signal
          that caused it ({!Sketch.Gate.cause_name}, or ["calm"] for
          demotions) and the streak length that triggered it. *)
  | Reset of { epoch : int }
      (** A zero-likelihood degeneracy restarted the path. *)

type t

val create : capacity:int -> t
(** A ring retaining the last [capacity] entries; [capacity = 0]
    disables recording ({!record} becomes a no-op).  Raises
    [Invalid_argument] if negative. *)

val record : t -> entry -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries ([min total capacity]). *)

val total : t -> int
(** Entries ever recorded, including overwritten ones. *)

val capacity : t -> int

val verdict_name : Dcl.Identify.conclusion option -> string
(** ["untested"], ["strongly-dominant"], ["weakly-dominant"] or
    ["no-dominant"] — static strings, kebab-cased for JSON. *)

val to_json : t -> string
(** [{"total":_,"capacity":_,"entries":[...]}], entries oldest first.
    Non-finite floats (a pre-first-batch log-likelihood) and absent
    bounds are [null]. *)

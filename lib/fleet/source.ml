(* Observation sources for fleet drivers: where each path's per-epoch
   batches come from.

   Two backends: [synthetic] shares a few ground-truth Markov templates
   across all paths (per-path state is just a template index, a chain
   state and an RNG — 10^5 paths do not hold 10^5 models), and
   [of_trace] replays a recorded probe trace with per-path phase
   offsets.  Generation always runs on the driver's domain, outside
   the pooled tick, so sources need no concurrency story. *)

type t = {
  paths : int;
  scheme : Dcl.Discretize.t;
  pull : int -> int -> Em.observation array;
  truth : (int -> bool) option;
}

let paths t = t.paths
let scheme t = t.scheme

let pull t ~path ~len =
  if path < 0 || path >= t.paths then
    invalid_arg "Fleet.Source.pull: path index out of range";
  if len <= 0 then invalid_arg "Fleet.Source.pull: len must be positive";
  t.pull path len

let ground_truth t p =
  match t.truth with None -> None | Some f -> Some (f p)

(* --- synthetic ----------------------------------------------------- *)

(* A template is a plain Markov chain over the m delay symbols (the
   n = 1 MMHD) with a per-symbol loss probability.  [dominant]
   templates concentrate both delay mass and losses at the top
   symbols — the VQD of a strongly dominant congested link; balanced
   templates split losses between a low- and a high-delay mode, the
   no-DCL shape. *)
type template = {
  t_pi : float array; (* m *)
  t_a : float array; (* m*m row-major *)
  t_c : float array; (* m *)
  dominant : bool;
}

let normalize_into a =
  let sum = Array.fold_left ( +. ) 0. a in
  let inv = 1. /. sum in
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) *. inv
  done

let make_template rng ~m ~dominant =
  let top = float_of_int (m - 1) in
  let weight j =
    if dominant then ((0.5 +. float_of_int j) /. top) ** 2.
    else if j = 0 then 5.
    else 1.
  in
  let c =
    if dominant then
      Array.init m (fun j -> 0.002 +. (0.25 *. ((float_of_int j /. top) ** 4.)))
    else begin
      (* Two congested links, neither dominant: the low-delay link
         causes ~65% of losses (so the median loss symbol d-star stays
         in the bottom of the range), the high-delay link 20% (so F at
         twice d-star tops out well below the ~0.94 test thresholds), and
         the rest dribbles across the middle.  c_j = K * target_j /
         weight_j turns the loss-mass targets into per-symbol loss
         probabilities; K sets the overall loss rate to ~6%. *)
      let k = 0.06 *. float_of_int (m + 4) in
      Array.init m (fun j ->
          let target =
            if j = 0 then 0.65
            else if j = m - 1 then 0.20
            else 0.15 /. float_of_int (m - 2)
          in
          k *. target /. weight j)
    end
  in
  let pi = Array.init m weight in
  normalize_into pi;
  let a = Array.make (m * m) 0. in
  for y = 0 to m - 1 do
    let off = y * m in
    for y' = 0 to m - 1 do
      (* Mild multiplicative jitter decorrelates templates of the same
         kind without disturbing the mode structure; the diagonal boost
         makes congestion episodes persistent, which is both physically
         plausible and what lets the model attribute a lost probe's
         unobserved delay symbol from its neighbours. *)
      let sticky = if y' = y then 3. else 1. in
      a.(off + y') <- weight y' *. sticky *. (0.8 +. (0.4 *. Stats.Rng.float rng))
    done;
    let sum = ref 0. in
    for y' = 0 to m - 1 do
      sum := !sum +. a.(off + y')
    done;
    let inv = 1. /. !sum in
    for y' = 0 to m - 1 do
      a.(off + y') <- a.(off + y') *. inv
    done
  done;
  { t_pi = pi; t_a = a; t_c = c; dominant }

(* Categorical draw over a row of a flat matrix, cumulative scan (the
   Stats.Sampler idiom without a per-step row copy). *)
let draw_row rng row ~off ~len =
  let u = Stats.Rng.float rng in
  let acc = ref 0. and k = ref 0 in
  (try
     for j = 0 to len - 1 do
       acc := !acc +. row.(off + j);
       if u < !acc then begin
         k := j;
         raise Exit
       end
     done;
     k := len - 1
   with Exit -> ());
  !k

(* How many of [templates] generators are congested: the nearest
   integer to the requested fraction, computed once.  The old per-index
   predicate [float_of_int i +. 0.5 < fraction *. float_of_int n]
   re-ran a raw float comparison against a computed product for every
   template and could misround at representable boundaries (the shape
   lint R3 bans elsewhere); the count is the single boundary decision,
   so it goes through the sanctioned rounding home. *)
let congested_templates ~templates ~fraction =
  Stats.Float_cmp.round_to_int (fraction *. float_of_int templates)

let synthetic ?(templates = 8) ?(congested_fraction = 0.3) ?(m = 5) ~rng ~paths
    () =
  if paths <= 0 then invalid_arg "Fleet.Source.synthetic: paths must be positive";
  if templates <= 0 then
    invalid_arg "Fleet.Source.synthetic: templates must be positive";
  if m < 3 then invalid_arg "Fleet.Source.synthetic: m must be at least 3";
  if Stats.Float_cmp.lt congested_fraction 0.
     || Stats.Float_cmp.gt congested_fraction 1. then
    invalid_arg "Fleet.Source.synthetic: congested_fraction outside [0, 1]";
  (* 10 ms symbol bins over a 20 ms propagation delay: arbitrary but
     physically plausible; the symbols are what matter. *)
  let scheme =
    Dcl.Discretize.of_range ~m ~lo:0.02 ~hi:(0.02 +. (0.01 *. float_of_int m))
  in
  let congested = congested_templates ~templates ~fraction:congested_fraction in
  let tpls =
    Array.init templates (fun i -> make_template rng ~m ~dominant:(i < congested))
  in
  let assign = Array.make paths 0 in
  let states = Array.make paths 0 in
  let rngs = Array.make paths rng in
  for p = 0 to paths - 1 do
    assign.(p) <- Stats.Rng.int rng templates;
    rngs.(p) <- Stats.Rng.split rng;
    states.(p) <- draw_row rngs.(p) tpls.(assign.(p)).t_pi ~off:0 ~len:m
  done;
  let pull p len =
    let tpl = tpls.(assign.(p)) in
    let prng = rngs.(p) in
    let batch = Array.make len None in
    let state = ref states.(p) in
    for i = 0 to len - 1 do
      let y = !state in
      batch.(i) <-
        (if Stats.Sampler.bernoulli prng ~p:tpl.t_c.(y) then None else Some y);
      state := draw_row prng tpl.t_a ~off:(y * m) ~len:m
    done;
    states.(p) <- !state;
    batch
  in
  {
    paths;
    scheme;
    pull;
    truth = Some (fun p -> tpls.(assign.(p)).dominant);
  }

(* --- trace replay -------------------------------------------------- *)

let of_trace ?(m = 5) ~paths trace =
  if paths <= 0 then invalid_arg "Fleet.Source.of_trace: paths must be positive";
  let scheme =
    Dcl.Discretize.of_trace ~m ~prop_delay:Dcl.Discretize.From_trace trace
  in
  let symbols = Dcl.Discretize.symbolize scheme (Probe.Trace.observations trace) in
  let tt = Array.length symbols in
  (* Fibonacci-hash phase offsets decorrelate the replicas: neighbours
     start far apart in the trace. *)
  let cursors = Array.make paths 0 in
  for p = 0 to paths - 1 do
    cursors.(p) <- p * 2654435761 mod tt
  done;
  let pull p len =
    let batch = Array.make len None in
    let cur = cursors.(p) in
    for i = 0 to len - 1 do
      batch.(i) <- symbols.((cur + i) mod tt)
    done;
    cursors.(p) <- (cur + len) mod tt;
    batch
  in
  { paths; scheme; pull; truth = None }

(** Observation sources: where each path's per-epoch batches come
    from.

    A source is pull-based — the fleet driver asks for [len] more
    observations of a path when it schedules that path's next epoch —
    and runs entirely on the driver's domain, so determinism of the
    pooled tick is independent of the source.  Per-path state is O(1):
    the synthetic backend shares a handful of ground-truth templates
    across the whole fleet, and trace replay shares one symbolized
    trace. *)

type t

val paths : t -> int

val scheme : t -> Dcl.Discretize.t
(** The discretization scheme the source's symbols are drawn from;
    fleet configs must be built against it. *)

val pull : t -> path:int -> len:int -> Em.observation array
(** The path's next [len] observations ([None] = lost probe).  Each
    call advances the path's position; the returned array is fresh and
    owned by the caller (safe to hand to {!Scheduler.push}).  Raises
    [Invalid_argument] on an out-of-range path or non-positive
    [len]. *)

val ground_truth : t -> int -> bool option
(** Whether the path's generator is a dominant-congestion template —
    [None] when the source has no ground truth (trace replay). *)

val congested_templates : templates:int -> fraction:float -> int
(** Number of congested generators a [fraction] requests out of
    [templates]: [round (fraction * templates)] through
    {!Stats.Float_cmp.round_to_int}, the single boundary decision
    behind {!synthetic}'s template split (exposed for property
    tests). *)

val synthetic :
  ?templates:int ->
  ?congested_fraction:float ->
  ?m:int ->
  rng:Stats.Rng.t ->
  paths:int ->
  unit ->
  t
(** A fleet-sized population sharing [templates] (default 8)
    ground-truth Markov-chain generators over [m] (default 5, min 3)
    delay symbols.  A [congested_fraction] (default 0.3) of the
    templates concentrate delay mass and losses at the top symbols
    (the strongly-dominant VQD shape); the rest split losses between a
    low- and a high-delay mode (the no-DCL shape).  Each path is
    assigned a template and an RNG split from [rng] at creation, so a
    seeded source replays bit-identically.  Raises [Invalid_argument]
    on out-of-range arguments. *)

val of_trace : ?m:int -> paths:int -> Probe.Trace.t -> t
(** Replay a recorded trace as [paths] replicas, symbolized once with
    an [m]-symbol (default 5) scheme fit to the trace
    ({!Dcl.Discretize.of_trace}).  Paths start at spread-out phase
    offsets and wrap around, so replicas decorrelate while every
    path's long-run statistics match the trace.  Raises wherever
    {!Dcl.Discretize.of_trace} does (e.g. fewer than two distinct
    delays). *)

(** Fleet epoch scheduler: drive the streaming identification of many
    concurrent paths over the persistent domain pool.

    The driver {!push}es observation batches onto paths as they arrive
    and calls {!tick} once per epoch.  A tick batches every active
    path's pending observations and fans one update per path —
    online-EM iteration plus SDCL/WDCL re-test ({!Path_state.update})
    — across {!Stats.Pool}, then emits conclusion transitions.

    {b Sketch gating.}  With [?gate] set, a triage front end tracks
    every path with O(1)-per-observation streaming estimators — a loss
    EWMA, a Robbins-Monro delay-quantile tracker and a shared
    count-min sketch over the loss stream ({!Sketch}) — and only paths
    the gate promotes ({!Sketch.Gate.step}) accumulate pending batches
    and run full inference at {!tick}.  Quiet paths cost no EM work,
    hold no pending memory, and the pool fan-out is sized by the
    promoted count.  Promotion after sustained suspicion applies the
    catch-up decay [lambda^skipped] ({!Path_state.coast}) so the
    path's dormant statistics re-enter warm but correctly aged;
    demotion (calm and concluded [No_dominant] for the configured
    streak) keeps the model, conclusion and decayed statistics in
    place for the next warm re-promotion.

    {b Determinism contract.}  A pooled tick ([domains > 1]) is
    bit-identical to the serial one: each item writes only its own
    path's state and uses only the evaluating domain's cached
    workspace ({!Workspace_cache}); each path draws from its own RNG
    pre-split at {!create}; and transitions are buffered per item and
    emitted after the pool drains in ascending path index, so the
    event order observers see is a pure function of the pushed
    observations.  The pool schedule chooses {e where} a path runs,
    never what it computes.  Gating preserves the contract — all
    sketch state updates happen at {!push} time on the driver's
    domain — but adds one caller obligation: the shared count-min
    sketch folds every push, so drivers must push paths in a fixed
    (ascending) order for cross-run reproducibility. *)

type transition = {
  path : int;
  epoch : int;  (** the tick (0-based) that produced the change *)
  was : Dcl.Identify.conclusion option;
  now : Dcl.Identify.conclusion option;
}

type t

val create :
  ?domains:int ->
  ?on_transition:(transition -> unit) ->
  ?gate:Sketch.Gate.config ->
  rng:Stats.Rng.t ->
  paths:int ->
  Path_state.config ->
  t
(** A fleet of [paths] identical-config paths.  [domains] (default 1)
    pool participants evaluate each tick.  [on_transition] is called
    on the ticking domain, after the tick's updates complete, in
    ascending path index.  [gate] enables sketch gating: paths start
    in sketch-only tracking and run full inference only while
    promoted.  Each path's RNG is split from [rng] at creation, so
    equal seeds give bitwise-equal fleets regardless of [domains]. *)

val push : t -> path:int -> Em.observation array -> unit
(** Queue a batch for a path (consumed, not copied — the caller must
    not mutate it afterwards).  Empty batches are dropped.  When
    gated, the batch first updates the path's sketch estimators (and,
    once per epoch, its gate); a quiet path's batch is then absorbed
    by the sketches and dropped instead of queued.  Raises
    [Invalid_argument] on an out-of-range index. *)

val tick : t -> int
(** Run one epoch over every path with pending observations; returns
    how many paths were updated.  Ticks with nothing pending still
    advance the epoch counter (and, when gated, still age the shared
    loss sketch). *)

val path_count : t -> int
val epoch : t -> int
(** Number of {!tick}s run so far. *)

val path : t -> int -> Path_state.t
(** The path's live state (read-only by convention; raises
    [Invalid_argument] out of range). *)

val conclusion : t -> int -> Dcl.Identify.conclusion option
(** Shorthand for [Path_state.conclusion (path t i)]. *)

val gated : t -> bool

val promoted_count : t -> int
(** Paths currently promoted to full inference; [path_count] when the
    fleet is ungated. *)

type gate_stats = {
  promoted : int;  (** currently promoted *)
  promotions : int;  (** promotions since creation *)
  demotions : int;
  sketch_only_observations : int;
      (** observations absorbed by the sketches without full
          inference *)
}

val gate_stats : t -> gate_stats option
(** [None] when the fleet is ungated. *)

type gate_view = {
  promoted_path : bool;
  loss_ewma : float;  (** per-epoch loss-fraction EWMA *)
  drift : float;  (** delay-quantile elevation in [\[0, 1\]] *)
  loss_estimate : int;
      (** count-min estimate of the path's decayed loss count (only
          ever an overestimate) *)
}

val gate_view : t -> int -> gate_view option
(** The path's sketch-side state, for tests and operator dashboards;
    [None] when ungated.  Raises [Invalid_argument] out of range. *)

val epoch_histogram : Obs.histogram
(** The shared ["dcl_fleet_epoch_seconds"] tick-latency histogram
    (populated when {!Obs} collection is enabled), exposed so benches
    can read quantiles without re-registering the metric. *)

val fingerprint : t -> string
(** Order-sensitive hash over every path's model parameters,
    conclusion and statistics weight — plus, when gated, every path's
    gate and estimator state and the gating totals; any bitwise
    divergence between two fleets changes it.  Used by the
    determinism checks (serial tick must equal pooled tick). *)

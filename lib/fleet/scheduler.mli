(** Fleet epoch scheduler: drive the streaming identification of many
    concurrent paths over the persistent domain pool.

    The driver {!push}es observation batches onto paths as they arrive
    and calls {!tick} once per epoch.  A tick batches every active
    path's pending observations and fans one update per path —
    online-EM iteration plus SDCL/WDCL re-test ({!Path_state.update})
    — across {!Stats.Pool}, then emits conclusion transitions.

    {b Determinism contract.}  A pooled tick ([domains > 1]) is
    bit-identical to the serial one: each item writes only its own
    path's state and uses only the evaluating domain's cached
    workspace ({!Workspace_cache}); each path draws from its own RNG
    pre-split at {!create}; and transitions are buffered per item and
    emitted after the pool drains in ascending path index, so the
    event order observers see is a pure function of the pushed
    observations.  The pool schedule chooses {e where} a path runs,
    never what it computes. *)

type transition = {
  path : int;
  epoch : int;  (** the tick (0-based) that produced the change *)
  was : Dcl.Identify.conclusion option;
  now : Dcl.Identify.conclusion option;
}

type t

val create :
  ?domains:int ->
  ?on_transition:(transition -> unit) ->
  rng:Stats.Rng.t ->
  paths:int ->
  Path_state.config ->
  t
(** A fleet of [paths] identical-config paths.  [domains] (default 1)
    pool participants evaluate each tick.  [on_transition] is called
    on the ticking domain, after the tick's updates complete, in
    ascending path index.  Each path's RNG is split from [rng] at
    creation, so equal seeds give bitwise-equal fleets regardless of
    [domains]. *)

val push : t -> path:int -> Em.observation array -> unit
(** Queue a batch for a path (consumed, not copied — the caller must
    not mutate it afterwards).  Empty batches are dropped.  Raises
    [Invalid_argument] on an out-of-range index. *)

val tick : t -> int
(** Run one epoch over every path with pending observations; returns
    how many paths were updated.  Ticks with nothing pending still
    advance the epoch counter. *)

val path_count : t -> int
val epoch : t -> int
(** Number of {!tick}s run so far. *)

val path : t -> int -> Path_state.t
(** The path's live state (read-only by convention; raises
    [Invalid_argument] out of range). *)

val conclusion : t -> int -> Dcl.Identify.conclusion option
(** Shorthand for [Path_state.conclusion (path t i)]. *)

val epoch_histogram : Obs.histogram
(** The shared ["dcl_fleet_epoch_seconds"] tick-latency histogram
    (populated when {!Obs} collection is enabled), exposed so benches
    can read quantiles without re-registering the metric. *)

val fingerprint : t -> string
(** Order-sensitive hash over every path's model parameters,
    conclusion and statistics weight; any bitwise divergence between
    two fleets changes it.  Used by the determinism checks (serial
    tick must equal pooled tick). *)

(* Bounded per-path diagnosis history: the forensic record behind
   /paths/:id and the input tomography fusion will consume.

   A fixed-capacity overwrite-oldest ring of entries, owned by whichever
   domain currently owns the path (updates append from the worker
   processing the path's chunk, gate events append from the driver
   between pool jobs — the phases never overlap, so no synchronization
   is needed).  Capacity 0 disables recording entirely. *)

type entry =
  | Update of {
      epoch : int;
      verdict : Dcl.Identify.conclusion option;
      log_likelihood : float;
      weight : float;
      bound : float option;
    }
  | Gate of { epoch : int; promoted : bool; cause : string; streak : int }
  | Reset of { epoch : int }

type t = { entries : entry array; mutable total : int }

let dummy = Reset { epoch = 0 }

let create ~capacity =
  if capacity < 0 then
    invalid_arg "Fleet.Timeline.create: capacity must be non-negative";
  { entries = Array.make capacity dummy; total = 0 }

let capacity t = Array.length t.entries
let total t = t.total
let length t = min t.total (Array.length t.entries)

let record t e =
  let n = Array.length t.entries in
  if n > 0 then begin
    t.entries.(t.total mod n) <- e;
    t.total <- t.total + 1
  end

let entries t =
  let n = Array.length t.entries in
  let count = length t in
  let acc = ref [] in
  for i = t.total - 1 downto t.total - count do
    acc := t.entries.(i mod n) :: !acc
  done;
  !acc

let verdict_name = function
  | None -> "untested"
  | Some Dcl.Identify.Strongly_dominant -> "strongly-dominant"
  | Some Dcl.Identify.Weakly_dominant -> "weakly-dominant"
  | Some Dcl.Identify.No_dominant -> "no-dominant"

(* %.6g is plenty for forensic display and keeps the JSON small; NaN
   and infinities (last_log_likelihood before the first batch) are not
   representable in JSON and go out as null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let entry_to_json = function
  | Update { epoch; verdict; log_likelihood; weight; bound } ->
      Printf.sprintf
        "{\"kind\":\"update\",\"epoch\":%d,\"verdict\":\"%s\",\"log_likelihood\":%s,\"weight\":%s,\"bound\":%s}"
        epoch (verdict_name verdict)
        (json_float log_likelihood)
        (json_float weight)
        (match bound with Some b -> json_float b | None -> "null")
  | Gate { epoch; promoted; cause; streak } ->
      Printf.sprintf
        "{\"kind\":\"gate\",\"epoch\":%d,\"promoted\":%b,\"cause\":\"%s\",\"streak\":%d}"
        epoch promoted cause streak
  | Reset { epoch } -> Printf.sprintf "{\"kind\":\"reset\",\"epoch\":%d}" epoch

let to_json t =
  Printf.sprintf "{\"total\":%d,\"capacity\":%d,\"entries\":[%s]}" t.total
    (Array.length t.entries)
    (String.concat "," (List.map entry_to_json (entries t)))

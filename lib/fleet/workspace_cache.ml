(* Per-domain cache of EM workspaces, keyed by model dimensions.

   The fleet's epoch updates fan path items across the persistent
   Stats.Pool; every item needs an Em.workspace for its sweep.  One
   workspace per path would hold 10^5 sets of sweep buffers; one per
   domain per (s, m) shape holds a handful.  Keying by shape (rather
   than sharing one workspace per domain like [Em.domain_ws]) matters
   when a fleet mixes model configurations: [Em_kernel.reserve] resets
   the time-axis buffers whenever [s] or [m] grows, so alternating
   shapes through a single workspace would reallocate on every switch,
   while per-shape workspaces stay warm.

   Safety: a workspace must not be shared across concurrent sweeps.
   Each cache is domain-local ([Domain.DLS]), each pool item runs on
   exactly one domain, and the fleet scheduler's items never nest
   pool-parallel sweeps, so a cached workspace is only ever used by
   the domain that owns it. *)

let key : (int * int, Em.workspace) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let get ~s ~m =
  let tbl = Domain.DLS.get key in
  match Hashtbl.find_opt tbl (s, m) with
  | Some ws -> ws
  | None ->
      let ws = Em.workspace () in
      Hashtbl.add tbl (s, m) ws;
      ws

let cached () = Hashtbl.length (Domain.DLS.get key)

(* Epoch scheduler: batch every active path's pending observations and
   fan the per-path updates (online-EM iteration + re-test) across the
   persistent Stats.Pool, one item per path.

   Optionally gated by a sketch triage front end (Sketch.Gate): quiet
   paths are tracked only by O(1) streaming estimators — a loss EWMA, a
   Robbins-Monro delay-quantile tracker and a count-min sketch over the
   loss stream — and only paths the gate promotes hold pending batches
   and run full inference.  All sketch state is updated at push time on
   the driver's domain, in the caller's push order, so the pooled tick
   still touches nothing shared.

   Determinism contract (DESIGN.md §11-12): each item touches only its
   own path's state and the evaluating domain's cached workspace; every
   path draws from its own RNG pre-split at creation; and conclusion
   transitions are collected into per-item slots and emitted after the
   pool drains, in ascending path index.  The pooled tick is therefore
   bit-identical to the serial one — scheduling chooses which domain
   runs a path, never what the path computes or the order observers
   see results.  Gating adds one caller obligation: because the shared
   count-min sketch folds every push, gate decisions are a function of
   the epoch's push order, so drivers must push paths in a fixed
   (ascending) order for cross-run reproducibility. *)

let h_epoch =
  Obs.Histogram.make ~help:"Wall time of one fleet epoch tick"
    "dcl_fleet_epoch_seconds"

let m_ticks = Obs.Counter.make ~help:"Fleet epoch ticks run" "dcl_fleet_ticks_total"

let m_updates =
  Obs.Counter.make ~help:"Per-path epoch updates performed"
    "dcl_fleet_path_updates_total"

let m_observations =
  Obs.Counter.make ~help:"Observations consumed by fleet epoch updates"
    "dcl_fleet_observations_total"

let m_transitions =
  Obs.Counter.make ~help:"Per-path conclusion transitions emitted"
    "dcl_fleet_transitions_total"

let m_promotions =
  Obs.Counter.make ~help:"Paths promoted from sketch-only tracking to full inference"
    "dcl_fleet_promotions_total"

let m_demotions =
  Obs.Counter.make ~help:"Paths demoted from full inference back to sketch-only tracking"
    "dcl_fleet_demotions_total"

let m_sketch_only_observations =
  Obs.Counter.make
    ~help:"Observations absorbed by the sketch front end without full inference"
    "dcl_fleet_sketch_only_observations_total"

let g_paths = Obs.Gauge.make ~help:"Paths monitored by the fleet" "dcl_fleet_paths"

let g_active =
  Obs.Gauge.make ~help:"Paths with pending observations at the last tick"
    "dcl_fleet_active_paths"

let g_promoted =
  Obs.Gauge.make ~help:"Paths currently promoted to full inference"
    "dcl_fleet_promoted_paths"

type transition = {
  path : int;
  epoch : int;
  was : Dcl.Identify.conclusion option;
  now : Dcl.Identify.conclusion option;
}

type gate_stats = {
  promoted : int;
  promotions : int;
  demotions : int;
  sketch_only_observations : int;
}

(* Gate runtime: per-path estimators plus the shared count-min sketch
   and the two quantized decay tables (one for coasting loss EWMAs over
   skipped epochs, one for aging a re-promoted path's EM statistics).
   Sized by the full path count; the EM side — pending batches, pool
   items, workspaces — is sized by the *promoted* count. *)
type gating = {
  g_config : Sketch.Gate.config;
  g_cms : Sketch.Count_min.t;
  g_loss : Sketch.Estimators.Ewma.t array;
  g_quant : Sketch.Estimators.Quantile.t array;
  g_gates : Sketch.Gate.t array;
  g_last_eval : int array; (* epoch of the path's last gate evaluation *)
  g_last_em : int array; (* epoch of the path's last full-inference update *)
  g_ewma_decay : Sketch.Estimators.Decay_table.t; (* (1 - alpha)^k *)
  g_stat_decay : Sketch.Estimators.Decay_table.t; (* lambda^k *)
  mutable g_promoted : int;
  mutable g_promotions : int;
  mutable g_demotions : int;
  mutable g_skipped_obs : int;
}

type t = {
  config : Path_state.config;
  domains : int;
  on_transition : (transition -> unit) option;
  paths : Path_state.t array;
  pending : Em.observation array list array; (* newest batch first *)
  active : int array; (* scratch: indices updated this tick *)
  slots : transition option array; (* scratch: per-item transition *)
  gating : gating option;
  mutable epoch : int;
}

(* Fixed small chunk: epoch items are cheap and unevenly costed (paths
   without losses re-test trivially; fresh paths run the informed
   initializer), so a small chunk bounds the straggler tail.  Chunking
   never affects results. *)
let pool_chunk = 64

(* The loss EWMA's smoothing factor: ~7-epoch memory, enough to smooth
   a single noisy batch without hiding a persistent shift. *)
let ewma_alpha = 0.15

(* The tracked delay quantile.  0.75 splits the template shapes the
   tests themselves split: a strongly dominant VQD concentrates its
   delay mass at the top symbols (high 0.75-quantile), a no-DCL shape
   keeps it near the propagation floor. *)
let quantile_p = 0.75

let make_gating config ~paths g_config =
  let m = config.Path_state.m in
  {
    g_config;
    (* Four rows at ~4 cells per path bound the collision inflation
       well under one loss event at fleet scale. *)
    g_cms = Sketch.Count_min.create ~width:(4 * paths) ~seed:0x5ce7c4 ();
    g_loss = Array.init paths (fun _ -> Sketch.Estimators.Ewma.make ~alpha:ewma_alpha);
    g_quant =
      Array.init paths (fun _ ->
          Sketch.Estimators.Quantile.make ~p:quantile_p ~lo:0.
            ~hi:(float_of_int (m - 1)) ());
    g_gates = Array.init paths (fun _ -> Sketch.Gate.create ());
    g_last_eval = Array.make paths (-1);
    g_last_em = Array.make paths 0;
    g_ewma_decay = Sketch.Estimators.Decay_table.make ~factor:(1. -. ewma_alpha) ();
    g_stat_decay =
      Sketch.Estimators.Decay_table.make ~factor:config.Path_state.lambda ();
    g_promoted = 0;
    g_promotions = 0;
    g_demotions = 0;
    g_skipped_obs = 0;
  }

let create ?(domains = 1) ?on_transition ?gate ~rng ~paths config =
  if paths <= 0 then invalid_arg "Fleet.Scheduler.create: paths must be positive";
  if domains <= 0 then
    invalid_arg "Fleet.Scheduler.create: domains must be positive";
  Obs.Gauge.set g_paths (float_of_int paths);
  {
    config;
    domains;
    on_transition;
    paths =
      Array.init paths (fun _ -> Path_state.create config ~rng:(Stats.Rng.split rng));
    pending = Array.make paths [];
    active = Array.make paths 0;
    slots = Array.make paths None;
    gating = Option.map (make_gating config ~paths) gate;
    epoch = 0;
  }

let path_count t = Array.length t.paths
let epoch t = t.epoch
let gated t = t.gating <> None

let path t i =
  if i < 0 || i >= Array.length t.paths then
    invalid_arg "Fleet.Scheduler.path: index out of range";
  t.paths.(i)

let conclusion t i = Path_state.conclusion (path t i)

let promoted_count t =
  match t.gating with None -> Array.length t.paths | Some g -> g.g_promoted

let gate_stats t =
  Option.map
    (fun g ->
      {
        promoted = g.g_promoted;
        promotions = g.g_promotions;
        demotions = g.g_demotions;
        sketch_only_observations = g.g_skipped_obs;
      })
    t.gating

type gate_view = {
  promoted_path : bool;
  loss_ewma : float;
  drift : float;
  loss_estimate : int;
}

let gate_view t i =
  ignore (path t i : Path_state.t);
  Option.map
    (fun g ->
      {
        promoted_path = Sketch.Gate.promoted g.g_gates.(i);
        loss_ewma = Sketch.Estimators.Ewma.value g.g_loss.(i);
        drift = Sketch.Estimators.Quantile.elevation g.g_quant.(i);
        loss_estimate = Sketch.Count_min.query g.g_cms i;
      })
    t.gating

(* The sketch pass over one pushed batch: fold every observation into
   the path's estimators (and the shared count-min sketch), then — once
   per epoch, at the path's first push — run the gate.  Promotion ages
   the path's dormant EM statistics by lambda^skipped through the
   quantized table so re-promotion is warm but correct; demotion leaves
   the path's model and conclusion in place (the verdict stays visible,
   the statistics merely stop updating until the gate re-promotes). *)
let gated_push t g ~path:pidx batch =
  let len = Array.length batch in
  let losses = ref 0 in
  let quant = g.g_quant.(pidx) in
  for i = 0 to len - 1 do
    match Array.unsafe_get batch i with
    | None -> incr losses
    | Some y -> Sketch.Estimators.Quantile.update quant (float_of_int y)
  done;
  if !losses > 0 then Sketch.Count_min.add g.g_cms pidx !losses;
  let ewma = g.g_loss.(pidx) in
  (* Coast the EWMA over epochs the path was not pushed at all, so a
     sparsely probed path's stale loss estimate decays like everyone
     else's. *)
  let missed = t.epoch - g.g_last_eval.(pidx) - 1 in
  if g.g_last_eval.(pidx) >= 0 && missed > 0 then
    Sketch.Estimators.Ewma.coast ewma g.g_ewma_decay missed;
  Sketch.Estimators.Ewma.update ewma (float_of_int !losses /. float_of_int len);
  if g.g_last_eval.(pidx) < t.epoch then begin
    g.g_last_eval.(pidx) <- t.epoch;
    (* The loss signal is the EWMA masked by the count-min estimate:
       the sketch only ever overestimates, so a zero estimate proves a
       loss-free decayed window and can never hide a real loser. *)
    let loss =
      if Sketch.Count_min.query g.g_cms pidx = 0 then 0.
      else Sketch.Estimators.Ewma.value ewma
    in
    let drift = Sketch.Estimators.Quantile.elevation quant in
    let p = t.paths.(pidx) in
    let settled = Path_state.conclusion p = Some Dcl.Identify.No_dominant in
    (* The cause refines the suspect boolean for the forensic record;
       feeding [cause <> None] to the gate keeps its semantics
       bit-identical to the plain [suspect] call. *)
    let cause = Sketch.Gate.suspect_cause g.g_config ~loss ~drift in
    let streak_before = Sketch.Gate.streak g.g_gates.(pidx) in
    match
      Sketch.Gate.step g.g_config g.g_gates.(pidx) ~suspect:(cause <> None)
        ~calm:(Sketch.Gate.calm g.g_config ~loss ~drift)
        ~settled
    with
    | Sketch.Gate.Stay -> ()
    | Sketch.Gate.Promote ->
        g.g_promoted <- g.g_promoted + 1;
        g.g_promotions <- g.g_promotions + 1;
        Obs.Counter.incr m_promotions;
        let why =
          match cause with Some c -> Sketch.Gate.cause_name c | None -> "suspect"
        in
        Timeline.record (Path_state.timeline p)
          (Timeline.Gate
             {
               epoch = t.epoch;
               promoted = true;
               cause = why;
               streak = streak_before + 1;
             });
        Obs.Trace.instant_d "gate.promote" why pidx;
        let skipped = t.epoch - g.g_last_em.(pidx) - 1 in
        if skipped > 0 then
          Path_state.coast p
            ~factor:(Sketch.Estimators.Decay_table.pow g.g_stat_decay skipped)
    | Sketch.Gate.Demote ->
        g.g_promoted <- g.g_promoted - 1;
        g.g_demotions <- g.g_demotions + 1;
        Obs.Counter.incr m_demotions;
        Timeline.record (Path_state.timeline p)
          (Timeline.Gate
             {
               epoch = t.epoch;
               promoted = false;
               cause = "calm";
               streak = streak_before + 1;
             });
        Obs.Trace.instant_d "gate.demote" "calm" pidx
  end;
  if Sketch.Gate.promoted g.g_gates.(pidx) then
    t.pending.(pidx) <- batch :: t.pending.(pidx)
  else begin
    g.g_skipped_obs <- g.g_skipped_obs + len;
    if Obs.enabled () then Obs.Counter.add m_sketch_only_observations len
  end

let push t ~path batch =
  if path < 0 || path >= Array.length t.paths then
    invalid_arg "Fleet.Scheduler.push: path index out of range";
  if Array.length batch > 0 then
    match t.gating with
    | None -> t.pending.(path) <- batch :: t.pending.(path)
    | Some g -> gated_push t g ~path batch

(* Concatenate a path's pending batches in arrival order.  The common
   one-batch-per-epoch case reuses the pushed array. *)
let drain_pending t pidx =
  match t.pending.(pidx) with
  | [] -> [||]
  | [ b ] ->
      t.pending.(pidx) <- [];
      b
  | newest_first ->
      t.pending.(pidx) <- [];
      Array.concat (List.rev newest_first)

let tick t =
  let s = Path_state.states t.config and m = t.config.Path_state.m in
  let n_active = ref 0 in
  for pidx = 0 to Array.length t.paths - 1 do
    match t.pending.(pidx) with
    | [] -> ()
    | _ :: _ ->
        t.active.(!n_active) <- pidx;
        incr n_active
  done;
  let n = !n_active in
  let t0 = Obs.Span.start () in
  Obs.Trace.span_begin "fleet.epoch" t.epoch;
  if n > 0 then begin
    (* Size the pool fan-out by the work actually promoted this epoch:
       waking eight domains for a handful of promoted paths costs more
       in queue traffic than it saves.  Participant count never affects
       results (determinism contract). *)
    let participants = min t.domains (1 + ((n - 1) / pool_chunk)) in
    Stats.Pool.run ~chunk:pool_chunk ~participants n (fun i ->
        let pidx = t.active.(i) in
        let p = t.paths.(pidx) in
        let batch = drain_pending t pidx in
        let was = Path_state.conclusion p in
        let changed =
          Path_state.update ~ws:(Workspace_cache.get ~s ~m) ~epoch:t.epoch p batch
        in
        if Obs.enabled () then Obs.Counter.add m_observations (Array.length batch);
        t.slots.(i) <-
          (if changed then
             Some { path = pidx; epoch = t.epoch; was; now = Path_state.conclusion p }
           else None))
  end;
  (match t.gating with
  | None -> ()
  | Some g ->
      (* Age the shared loss sketch once per epoch, mirroring the
         per-path EWMA decay, and record who ran full inference (for
         warm re-promotion's catch-up aging). *)
      Sketch.Count_min.halve g.g_cms;
      for i = 0 to n - 1 do
        g.g_last_em.(t.active.(i)) <- t.epoch
      done;
      Obs.Gauge.set g_promoted (float_of_int g.g_promoted));
  t.epoch <- t.epoch + 1;
  (* Ascending-path-index emission, after the pool drains: the
     operator-facing event order is a pure function of the inputs. *)
  for i = 0 to n - 1 do
    (match t.slots.(i) with
    | None -> ()
    | Some tr -> (
        Obs.Counter.incr m_transitions;
        Obs.Trace.instant_d "fleet.transition" (Timeline.verdict_name tr.now) tr.path;
        match t.on_transition with Some f -> f tr | None -> ()));
    t.slots.(i) <- None
  done;
  Obs.Trace.span_end "fleet.epoch";
  Obs.Span.stop h_epoch t0;
  if Obs.enabled () then begin
    Obs.Counter.incr m_ticks;
    Obs.Counter.add m_updates n;
    Obs.Gauge.set g_active (float_of_int n);
    Obs.Runtime.sample ()
  end;
  n

let epoch_histogram = h_epoch

let fingerprint t =
  (* Order-sensitive fold over every path's model parameters and
     conclusion: any bitwise divergence between two fleets (e.g. a
     pooled vs a serial run) changes the fingerprint. *)
  let h = ref 0L in
  let mix bits = h := Int64.add (Int64.mul !h 1000003L) bits in
  let mixf x = mix (Int64.bits_of_float x) in
  let mixi i = mix (Int64.of_int i) in
  Array.iter
    (fun p ->
      (match Path_state.model p with
      | None -> mixi 0
      | Some (model : Em.model) ->
          mixi 1;
          Array.iter mixf model.Em.pi;
          Array.iter mixf model.Em.a;
          Array.iter mixf model.Em.c);
      mixi
        (match Path_state.conclusion p with
        | None -> 0
        | Some Dcl.Identify.Strongly_dominant -> 1
        | Some Dcl.Identify.Weakly_dominant -> 2
        | Some Dcl.Identify.No_dominant -> 3);
      mixf (Path_state.weight p))
    t.paths;
  (* When gated, the sketch layer is part of the observable state:
     divergent gate decisions must change the fingerprint even if the
     surviving models happen to agree. *)
  (match t.gating with
  | None -> ()
  | Some g ->
      for i = 0 to Array.length t.paths - 1 do
        mixi (if Sketch.Gate.promoted g.g_gates.(i) then 1 else 0);
        mixi (Sketch.Gate.streak g.g_gates.(i));
        mixf (Sketch.Estimators.Ewma.value g.g_loss.(i));
        mixf (Sketch.Estimators.Quantile.value g.g_quant.(i));
        mixi (Sketch.Count_min.query g.g_cms i)
      done;
      mixi g.g_promoted;
      mixi g.g_promotions;
      mixi g.g_demotions;
      mixi g.g_skipped_obs);
  Printf.sprintf "%016Lx" !h

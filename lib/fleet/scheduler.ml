(* Epoch scheduler: batch every active path's pending observations and
   fan the per-path updates (online-EM iteration + re-test) across the
   persistent Stats.Pool, one item per path.

   Determinism contract (DESIGN.md §11): each item touches only its own
   path's state and the evaluating domain's cached workspace; every
   path draws from its own RNG pre-split at creation; and conclusion
   transitions are collected into per-item slots and emitted after the
   pool drains, in ascending path index.  The pooled tick is therefore
   bit-identical to the serial one — scheduling chooses which domain
   runs a path, never what the path computes or the order observers
   see results. *)

let h_epoch =
  Obs.Histogram.make ~help:"Wall time of one fleet epoch tick"
    "dcl_fleet_epoch_seconds"

let m_ticks = Obs.Counter.make ~help:"Fleet epoch ticks run" "dcl_fleet_ticks_total"

let m_updates =
  Obs.Counter.make ~help:"Per-path epoch updates performed"
    "dcl_fleet_path_updates_total"

let m_observations =
  Obs.Counter.make ~help:"Observations consumed by fleet epoch updates"
    "dcl_fleet_observations_total"

let m_transitions =
  Obs.Counter.make ~help:"Per-path conclusion transitions emitted"
    "dcl_fleet_transitions_total"

let g_paths = Obs.Gauge.make ~help:"Paths monitored by the fleet" "dcl_fleet_paths"

let g_active =
  Obs.Gauge.make ~help:"Paths with pending observations at the last tick"
    "dcl_fleet_active_paths"

type transition = {
  path : int;
  epoch : int;
  was : Dcl.Identify.conclusion option;
  now : Dcl.Identify.conclusion option;
}

type t = {
  config : Path_state.config;
  domains : int;
  on_transition : (transition -> unit) option;
  paths : Path_state.t array;
  pending : Em.observation array list array; (* newest batch first *)
  active : int array; (* scratch: indices updated this tick *)
  slots : transition option array; (* scratch: per-item transition *)
  mutable epoch : int;
}

(* Fixed small chunk: epoch items are cheap and unevenly costed (paths
   without losses re-test trivially; fresh paths run the informed
   initializer), so a small chunk bounds the straggler tail.  Chunking
   never affects results. *)
let pool_chunk = 64

let create ?(domains = 1) ?on_transition ~rng ~paths config =
  if paths <= 0 then invalid_arg "Fleet.Scheduler.create: paths must be positive";
  if domains <= 0 then
    invalid_arg "Fleet.Scheduler.create: domains must be positive";
  Obs.Gauge.set g_paths (float_of_int paths);
  {
    config;
    domains;
    on_transition;
    paths =
      Array.init paths (fun _ -> Path_state.create config ~rng:(Stats.Rng.split rng));
    pending = Array.make paths [];
    active = Array.make paths 0;
    slots = Array.make paths None;
    epoch = 0;
  }

let path_count t = Array.length t.paths
let epoch t = t.epoch

let path t i =
  if i < 0 || i >= Array.length t.paths then
    invalid_arg "Fleet.Scheduler.path: index out of range";
  t.paths.(i)

let conclusion t i = Path_state.conclusion (path t i)

let push t ~path batch =
  if path < 0 || path >= Array.length t.paths then
    invalid_arg "Fleet.Scheduler.push: path index out of range";
  if Array.length batch > 0 then t.pending.(path) <- batch :: t.pending.(path)

(* Concatenate a path's pending batches in arrival order.  The common
   one-batch-per-epoch case reuses the pushed array. *)
let drain_pending t pidx =
  match t.pending.(pidx) with
  | [] -> [||]
  | [ b ] ->
      t.pending.(pidx) <- [];
      b
  | newest_first ->
      t.pending.(pidx) <- [];
      Array.concat (List.rev newest_first)

let tick t =
  let s = Path_state.states t.config and m = t.config.Path_state.m in
  let n_active = ref 0 in
  for pidx = 0 to Array.length t.paths - 1 do
    match t.pending.(pidx) with
    | [] -> ()
    | _ :: _ ->
        t.active.(!n_active) <- pidx;
        incr n_active
  done;
  let n = !n_active in
  let t0 = Obs.Span.start () in
  if n > 0 then
    Stats.Pool.run ~chunk:pool_chunk ~participants:t.domains n (fun i ->
        let pidx = t.active.(i) in
        let p = t.paths.(pidx) in
        let batch = drain_pending t pidx in
        let was = Path_state.conclusion p in
        let changed = Path_state.update ~ws:(Workspace_cache.get ~s ~m) p batch in
        if Obs.enabled () then Obs.Counter.add m_observations (Array.length batch);
        t.slots.(i) <-
          (if changed then
             Some { path = pidx; epoch = t.epoch; was; now = Path_state.conclusion p }
           else None));
  t.epoch <- t.epoch + 1;
  (* Ascending-path-index emission, after the pool drains: the
     operator-facing event order is a pure function of the inputs. *)
  for i = 0 to n - 1 do
    (match t.slots.(i) with
    | None -> ()
    | Some tr -> (
        Obs.Counter.incr m_transitions;
        match t.on_transition with Some f -> f tr | None -> ()));
    t.slots.(i) <- None
  done;
  Obs.Span.stop h_epoch t0;
  if Obs.enabled () then begin
    Obs.Counter.incr m_ticks;
    Obs.Counter.add m_updates n;
    Obs.Gauge.set g_active (float_of_int n)
  end;
  n

let epoch_histogram = h_epoch

let fingerprint t =
  (* Order-sensitive fold over every path's model parameters and
     conclusion: any bitwise divergence between two fleets (e.g. a
     pooled vs a serial run) changes the fingerprint. *)
  let h = ref 0L in
  let mix bits = h := Int64.add (Int64.mul !h 1000003L) bits in
  let mixf x = mix (Int64.bits_of_float x) in
  let mixi i = mix (Int64.of_int i) in
  Array.iter
    (fun p ->
      (match Path_state.model p with
      | None -> mixi 0
      | Some (model : Em.model) ->
          mixi 1;
          Array.iter mixf model.Em.pi;
          Array.iter mixf model.Em.a;
          Array.iter mixf model.Em.c);
      mixi
        (match Path_state.conclusion p with
        | None -> 0
        | Some Dcl.Identify.Strongly_dominant -> 1
        | Some Dcl.Identify.Weakly_dominant -> 2
        | Some Dcl.Identify.No_dominant -> 3);
      mixf (Path_state.weight p))
    t.paths;
  Printf.sprintf "%016Lx" !h

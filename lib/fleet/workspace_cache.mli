(** Per-domain cache of {!Em.workspace}s keyed by model dimensions
    [(s, m)].

    The fleet monitors up to 10^5 paths but runs their epoch sweeps on
    a handful of pool domains; workspaces therefore live per
    {e worker}, not per path.  Unlike {!Em.domain_ws} (one workspace
    per domain), the cache keeps one workspace per model {e shape} per
    domain, so fleets mixing configurations do not thrash
    [Em_kernel.reserve]'s grow-only buffers by alternating dimensions
    through a single workspace.

    Memory: one entry holds O(batch * s) floats after its first sweep
    — for the default MMHD (s = 10, m = 5) and 64-observation batches,
    a few KiB per shape per domain. *)

val get : s:int -> m:int -> Em.workspace
(** The calling domain's workspace for [(s, m)], created on first use.
    The workspace must only be used from the calling domain and not
    across concurrent sweeps on it (the fleet scheduler's per-path
    items satisfy both). *)

val cached : unit -> int
(** Number of distinct shapes cached by the calling domain. *)

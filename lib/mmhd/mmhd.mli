(** Markov model with a hidden dimension (MMHD; Wei, Wang, Towsley,
    "Continuous-time hidden Markov models for network performance
    evaluation", Performance Evaluation 2002), with the missing-value
    EM of the paper's Appendix B.

    Unlike an HMM, the state itself contains the observable: a state is
    a pair [(x, y)] of a hidden component [x] in [0..n-1] and a delay
    symbol [y] in [0..m-1], and the pair evolves jointly as a Markov
    chain over [n*m] states.  When the chain is in state [(x, y)] the
    probe is lost (observed as missing) with probability [c.(y)],
    otherwise symbol [y] is observed directly.  With [n = 1] the model
    degenerates to a plain Markov chain on the delay symbols.

    States are flattened as [s = x * m + y]. *)

type t = {
  n : int;  (** hidden-dimension size *)
  m : int;  (** number of delay symbols *)
  pi : float array;  (** initial state distribution, length [n*m] *)
  a : float array array;  (** state transition matrix, [n*m]×[n*m] *)
  c : float array;  (** [c.(y)] = P(loss | delay symbol [y]) *)
}

type observation = int option

type fit_stats = Em.fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
      (** restarts discarded as degenerate by {!fit}; [0] from {!fit_from} *)
}

val pp_fit_stats : Format.formatter -> fit_stats -> unit

val states : t -> int
(** [n * m]. *)

val state_of : t -> hidden:int -> symbol:int -> int
val symbol_of : t -> int -> int
val hidden_of : t -> int -> int

val init_random : Stats.Rng.t -> n:int -> m:int -> loss_fraction:float -> t
(** The paper's initialization: random stochastic transition matrix,
    near-uniform [pi], and [c] seeded at the empirical loss rate. *)

val init_informed : Stats.Rng.t -> n:int -> m:int -> observation array -> t
(** Data-driven starting point: transitions from the observed symbol
    bigrams, [pi] from the symbol frequencies, and [c] from attributing
    each loss to its nearest surviving neighbour's symbol.  Starting EM
    here avoids a degenerate optimum in sparse-loss traces where a
    rarely-observed symbol absorbs all losses; {!fit} always includes
    this starting point. *)

val validate : t -> unit
val log_likelihood : t -> observation array -> float

val viterbi : t -> observation array -> int array * float
(** Most likely state sequence (flattened [(hidden, symbol)] states)
    given the observations, and its log probability.  At a loss instant
    the decoded state's symbol component is the single most likely
    virtual delay symbol — a point estimate complementing the Eq. (5)
    posterior. *)

val state_posteriors : t -> observation array -> float array array
(** [gamma.(t).(s)] = P(state [s] at [t] | observations). *)

val fit :
  ?eps:float ->
  ?max_iter:int ->
  ?restarts:int ->
  ?domains:int ->
  ?sweep:Em.Sweep.policy ->
  rng:Stats.Rng.t ->
  n:int ->
  m:int ->
  observation array ->
  t * fit_stats
(** EM (Appendix B) until the largest parameter change drops below
    [eps] (default 1e-3) or [max_iter] (default 300).  [restarts] (default 2)
    independently-jittered {!init_informed} starting points are raced
    and the best converged fit wins; purely random starting points are
    not used (see the implementation comment on degenerate optima).
    With [domains > 1] the restarts run on that many concurrent
    domains of the persistent pool ({!Stats.Pool}; domains are spawned
    once per process and their EM workspaces stay warm across calls);
    each restart draws from its own pre-split RNG, so the winning
    model is bit-identical to the serial run.  A [?sweep] policy
    additionally chunks each sweep across pool domains
    ({!Em.Sweep}); the default is the serial sweep. *)

val fit_from :
  ?eps:float ->
  ?max_iter:int ->
  ?sweep:Em.Sweep.policy ->
  t ->
  observation array ->
  t * fit_stats

val to_em : t -> Em.model
(** The flattened {!Em} view of the model ([s = n * m] states, fixed
    indicator emission matrix); exposed so benchmarks and tests can
    drive the shared kernel (e.g. alternate {!Em.precision}
    workspaces) directly. *)

val virtual_delay_pmf : t -> observation array -> float array
(** Equation (5): [P(Y = j | loss)].  Requires at least one loss. *)

val simulate : Stats.Rng.t -> t -> len:int -> observation array * int array

type t = {
  n : int;
  m : int;
  pi : float array;
  a : float array array;
  c : float array;
}

type observation = int option

type fit_stats = Em.fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
}

let pp_fit_stats = Em.pp_fit_stats

let states t = t.n * t.m

let state_of t ~hidden ~symbol =
  if hidden < 0 || hidden >= t.n || symbol < 0 || symbol >= t.m then
    invalid_arg "Mmhd.state_of: out of range";
  (hidden * t.m) + symbol

let symbol_of t s = s mod t.m
let hidden_of t s = s / t.m

let clamp_prob p = Float.max 1e-6 (Float.min (1. -. 1e-6) p)

let init_random rng ~n ~m ~loss_fraction =
  if n <= 0 || m <= 0 then invalid_arg "Mmhd.init_random: n and m must be positive";
  let s = n * m in
  let jitter () = 0.8 +. (0.4 *. Stats.Rng.float rng) in
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng s;
    a = Stats.Matrix.random_stochastic rng s s;
    c = Array.init m (fun _ -> clamp_prob (loss_fraction *. jitter ()));
  }

(* Nearest-surviving-neighbour attribution of losses to symbols: the
   empirical analogue of the posterior the EM will compute.  Seeds the
   initial loss probabilities [c] so that EM starts near solutions that
   explain losses with the symbols actually observed around them,
   instead of drifting to a degenerate optimum where a rarely-observed
   symbol absorbs all losses. *)
let neighbor_attribution ~m obs =
  let tt = Array.length obs in
  let seen = Array.make m 1. and lost = Array.make m 0.5 in
  let nearest t0 =
    let rec scan d =
      if d > tt then None
      else
        let back = t0 - d and fwd = t0 + d in
        let pick t = if t >= 0 && t < tt then obs.(t) else None in
        match pick back with
        | Some j -> Some j
        | None -> ( match pick fwd with Some j -> Some j | None -> scan (d + 1))
    in
    scan 1
  in
  Array.iteri
    (fun t o ->
      match o with
      | Some j -> seen.(j) <- seen.(j) +. 1.
      | None -> (
          match nearest t with
          | Some j -> lost.(j) <- lost.(j) +. 1.
          | None -> ()))
    obs;
  (seen, lost)

(* Symbol bigram frequencies over the observed (non-loss) subsequence,
   Laplace-smoothed; used to seed the transition structure. *)
let observed_bigrams ~m obs =
  let big = Array.init m (fun _ -> Array.make m 0.2) in
  let prev = ref None in
  Array.iter
    (fun o ->
      (match (!prev, o) with
      | Some i, Some j -> big.(i).(j) <- big.(i).(j) +. 1.
      | _ -> ());
      prev := o)
    obs;
  Stats.Matrix.row_normalize big;
  big

let init_informed rng ~n ~m obs =
  let seen, lost = neighbor_attribution ~m obs in
  let big = observed_bigrams ~m obs in
  let s = n * m in
  let jitter () = 0.85 +. (0.3 *. Stats.Rng.float rng) in
  let c = Array.init m (fun j -> clamp_prob (lost.(j) /. (seen.(j) +. lost.(j)))) in
  let total_seen = Array.fold_left ( +. ) 0. seen in
  let pi =
    Array.init s (fun st -> seen.(st mod m) /. total_seen /. float_of_int n *. jitter ())
  in
  let pi_total = Array.fold_left ( +. ) 0. pi in
  let pi = Array.map (fun p -> p /. pi_total) pi in
  let a =
    Array.init s (fun st ->
        let y = st mod m in
        let row =
          Array.init s (fun st' -> big.(y).(st' mod m) /. float_of_int n *. jitter ())
        in
        row)
  in
  Stats.Matrix.row_normalize a;
  { n; m; pi; a; c }

let validate t =
  let s = states t in
  let stochastic_vec v =
    Stats.Float_cmp.approx_eq ~eps:1e-6 (Array.fold_left ( +. ) 0. v) 1.
  in
  let is_prob_vector v = Array.for_all (fun p -> p >= 0. && p <= 1.) v in
  if Array.length t.pi <> s || not (stochastic_vec t.pi) || not (is_prob_vector t.pi)
  then invalid_arg "Mmhd.validate: pi is not a distribution over n*m states";
  if Stats.Matrix.dims t.a <> (s, s) || not (Stats.Matrix.is_stochastic t.a) then
    invalid_arg "Mmhd.validate: a is not stochastic over n*m states";
  if Array.length t.c <> t.m || not (is_prob_vector t.c) then
    invalid_arg "Mmhd.validate: c is not a vector of m probabilities"

(* --- Em kernel bridge -------------------------------------------------- *)

(* The MMHD is the Em kernel instance whose emission matrix is the
   fixed 0/1 indicator "state (x, y) emits symbol y" — flattened state
   [st] emits [st mod m].  EM must not re-estimate it ([update_b =
   false]); the kernel's active-state machinery recovers the sparse
   O(T*n*S) sweeps from its zero pattern. *)
let indicator_b ~s ~m =
  let b = Array.make (s * m) 0. in
  for st = 0 to s - 1 do
    b.((st * m) + (st mod m)) <- 1.
  done;
  b

let flatten rows r c =
  let out = Array.make (r * c) 0. in
  for i = 0 to r - 1 do
    Array.blit rows.(i) 0 out (i * c) c
  done;
  out

let to_em t =
  let s = states t in
  {
    Em.s;
    m = t.m;
    pi = Array.copy t.pi;
    a = flatten t.a s s;
    b = indicator_b ~s ~m:t.m;
    c = Array.copy t.c;
  }

let of_em ~n ~m (e : Em.model) =
  let s = n * m in
  {
    n;
    m;
    pi = Array.copy e.Em.pi;
    a = Array.init s (fun st -> Array.sub e.Em.a (st * s) s);
    c = Array.copy e.Em.c;
  }

let ws = Em.domain_ws

let emission t s = function
  | Some j -> if symbol_of t s = j then 1. -. t.c.(j) else 0.
  | None -> t.c.(symbol_of t s)

(* States compatible with an observation: n states for an observed
   symbol, all n*m for a loss. *)
let active t = function
  | Some j -> Array.init t.n (fun x -> (x * t.m) + j)
  | None -> Array.init (states t) (fun s -> s)

let viterbi t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Mmhd.viterbi: empty observation sequence";
  let s_all = states t in
  let log_safe x = if x <= 0. then neg_infinity else log x in
  let act = Array.map (active t) obs in
  let delta = Array.make_matrix tt s_all neg_infinity in
  let back = Array.make_matrix tt s_all 0 in
  Array.iter
    (fun s -> delta.(0).(s) <- log_safe t.pi.(s) +. log_safe (emission t s obs.(0)))
    act.(0);
  for time = 1 to tt - 1 do
    Array.iter
      (fun s' ->
        let e = log_safe (emission t s' obs.(time)) in
        Array.iter
          (fun s ->
            let cand = delta.(time - 1).(s) +. log_safe t.a.(s).(s') +. e in
            if cand > delta.(time).(s') then begin
              delta.(time).(s') <- cand;
              back.(time).(s') <- s
            end)
          act.(time - 1))
      act.(time)
  done;
  let best = ref act.(tt - 1).(0) in
  Array.iter (fun s -> if delta.(tt - 1).(s) > delta.(tt - 1).(!best) then best := s) act.(tt - 1);
  let path = Array.make tt 0 in
  path.(tt - 1) <- !best;
  for time = tt - 2 downto 0 do
    path.(time) <- back.(time + 1).(path.(time + 1))
  done;
  (path, delta.(tt - 1).(!best))

let log_likelihood t obs = Em.log_likelihood ~ws:(ws ()) (to_em t) obs
let state_posteriors t obs = Em.state_posteriors ~ws:(ws ()) (to_em t) obs

let fit_from ?eps ?max_iter ?sweep t0 obs =
  let fitted, stats =
    Em.fit_from ~ws:(ws ()) ?eps ?max_iter ?sweep ~update_b:false (to_em t0) obs
  in
  (of_em ~n:t0.n ~m:t0.m fitted, stats)

let fit ?eps ?max_iter ?(restarts = 2) ?(domains = 1) ?sweep ~rng ~n ~m obs =
  if restarts <= 0 then invalid_arg "Mmhd.fit: restarts must be positive";
  (* Every starting point is the data-driven informed initialization
     with independent jitter, and the best converged attempt wins.
     Purely random initializations are deliberately not raced by
     likelihood: the model family admits degenerate optima in which a
     rarely-observed symbol absorbs all the losses (its loss
     probability is driven toward 1 at negligible cost), and those
     optima can dominate the likelihood while being statistically
     meaningless.  Informed starts are anchored by the neighbour
     attribution, so comparing them by likelihood is safe.
     Each restart draws from its own pre-split RNG, so the winner is
     identical whether the restarts run serially or across domains. *)
  let rngs = Array.init restarts (fun _ -> Stats.Rng.split rng) in
  let init k = to_em (init_informed rngs.(k) ~n ~m obs) in
  let fitted, stats =
    Em.fit_restarts ?eps ?max_iter ~domains ?sweep ~restarts ~update_b:false
      ~init obs
  in
  (of_em ~n ~m fitted, stats)

let virtual_delay_pmf t obs =
  if not (Array.exists (fun o -> o = None) obs) then
    invalid_arg "Mmhd.virtual_delay_pmf: no loss in the sequence";
  Em.virtual_delay_pmf ~ws:(ws ()) (to_em t) obs

let simulate rng t ~len =
  if len <= 0 then invalid_arg "Mmhd.simulate: len <= 0";
  validate t;
  let path = Array.make len 0 in
  let obs = Array.make len None in
  let state = ref (Stats.Sampler.categorical rng t.pi) in
  for time = 0 to len - 1 do
    path.(time) <- !state;
    let y = symbol_of t !state in
    obs.(time) <- (if Stats.Sampler.bernoulli rng ~p:t.c.(y) then None else Some y);
    state := Stats.Sampler.categorical rng t.a.(!state)
  done;
  (obs, path)

(** Moving-block bootstrap confidence intervals for the test statistic
    [F at 2*d_star].

    The hypothesis tests compare an {e estimated} CDF value against a
    threshold; the paper absorbs estimation error informally ("0.97 >=
    0.94").  This module quantifies it: the probe records are resampled
    in contiguous blocks (preserving the temporal dependence the models
    exploit), the identification statistic is recomputed per replicate,
    and a percentile interval is reported together with the fraction of
    replicates on each side of the WDCL threshold.

    By default replicates are fitted with the Markov model ([N = 1]) —
    two orders of magnitude cheaper than the full MMHD and, on the
    traces of this repository, within a few percent of its statistic
    (see the ablation bench). *)

type interval = {
  point : float;  (** statistic of the original trace *)
  lo : float;  (** lower percentile bound *)
  hi : float;  (** upper percentile bound *)
  accept_fraction : float;
      (** fraction of replicates on which WDCL-Test accepts *)
  replicates : int;
}

val f_statistic :
  ?params:Identify.params ->
  ?replicates:int ->
  ?block:float ->
  ?confidence:float ->
  ?domains:int ->
  rng:Stats.Rng.t ->
  Probe.Trace.t ->
  interval
(** [f_statistic ~rng trace] bootstraps [F at 2*d_star].  [replicates]
    defaults to 50, [block] to 20 s of probing, [confidence] to 0.9
    (i.e. the 5th and 95th percentiles).  [params] defaults to the
    pipeline defaults with the Markov model.  Replicates on which the
    resampled trace is unidentifiable are skipped (they still count
    toward [replicates]); raises like {!Identify.run} if the original
    trace is unidentifiable.

    With [domains > 1] (default 1) the replicate loop runs on that many
    concurrent domains of the persistent pool ({!Stats.Pool}).  Each
    replicate resamples and refits with its own pre-split RNG, so the
    reported interval is bit-identical to the serial run. *)

type model = Model_mmhd | Model_hmm | Model_markov

type params = {
  model : model;
  n : int;
  m : int;
  em_eps : float;
  em_max_iter : int;
  restarts : int;
  domains : int;
  prop_delay : Discretize.prop_delay;
  sdcl_tolerance : float;
  wdcl_tolerance : float;
  beta : float;
  eps : float;
}

let default_params =
  {
    model = Model_mmhd;
    n = 2;
    m = 5;
    em_eps = 1e-3;
    em_max_iter = 300;
    restarts = 2;
    domains = 1;
    prop_delay = Discretize.From_trace;
    sdcl_tolerance = Tests.default_tolerance;
    wdcl_tolerance = 0.04;
    beta = 0.06;
    eps = 0.;
  }

type conclusion = Strongly_dominant | Weakly_dominant | No_dominant

(* Pipeline telemetry: one latency histogram per stage (shared family,
   distinguished by the [stage] label) and a completed-runs counter.
   All no-ops while Obs collection is disabled. *)
let h_stage stage =
  Obs.Histogram.make
    ~labels:[ ("stage", stage) ]
    ~help:"Per-stage latency of the identification pipeline"
    "dcl_identify_stage_seconds"

let h_discretize = h_stage "discretize"
let h_fit = h_stage "fit"
let h_vqd = h_stage "vqd"
let h_tests = h_stage "tests"
let h_bound = h_stage "bound"

let m_runs =
  Obs.Counter.make ~help:"Completed Identify.run pipelines"
    "dcl_identify_runs_total"

type result = {
  params : params;
  scheme : Discretize.t;
  vqd : Vqd.t;
  sdcl : Tests.outcome;
  wdcl : Tests.outcome;
  conclusion : conclusion;
  bound : float option;
  loss_rate : float;
  observations : int;
  em_iterations : int;
  log_likelihood : float;
  em_converged : bool;
  em_skipped_restarts : int;
}

let identifiable trace =
  Probe.Trace.losses trace > 0
  && Probe.Trace.length trace > Probe.Trace.losses trace
  &&
  let ds = Probe.Trace.observed_delays trace in
  Array.length ds > 0
  && Array.fold_left Float.max ds.(0) ds > Array.fold_left Float.min ds.(0) ds

let model_pmf params ~rng symbols =
  let fit0 = Obs.Span.start () in
  match params.model with
  | Model_mmhd | Model_markov ->
      let n = match params.model with Model_markov -> 1 | Model_mmhd | Model_hmm -> params.n in
      let model, stats =
        Mmhd.fit ~eps:params.em_eps ~max_iter:params.em_max_iter ~restarts:params.restarts
          ~domains:params.domains ~rng ~n ~m:params.m symbols
      in
      Obs.Span.stop h_fit fit0;
      let vqd0 = Obs.Span.start () in
      let pmf = Mmhd.virtual_delay_pmf model symbols in
      Obs.Span.stop h_vqd vqd0;
      (pmf, stats)
  | Model_hmm ->
      let model, stats =
        Hmm.fit ~eps:params.em_eps ~max_iter:params.em_max_iter ~restarts:params.restarts
          ~domains:params.domains ~rng ~n:params.n ~m:params.m symbols
      in
      Obs.Span.stop h_fit fit0;
      let vqd0 = Obs.Span.start () in
      let pmf = Hmm.virtual_delay_pmf model symbols in
      Obs.Span.stop h_vqd vqd0;
      (pmf, stats)

let fit_vqd ?(params = default_params) ~rng trace =
  if not (identifiable trace) then
    invalid_arg "Identify: trace has no loss or no delay spread";
  let disc0 = Obs.Span.start () in
  let scheme = Discretize.of_trace ~m:params.m ~prop_delay:params.prop_delay trace in
  let symbols = Discretize.symbolize scheme (Probe.Trace.observations trace) in
  Obs.Span.stop h_discretize disc0;
  let pmf, stats = model_pmf params ~rng symbols in
  (Vqd.of_pmf scheme pmf, stats)

(* The back half of the pipeline — hypothesis tests plus the bound —
   factored out of [run] so callers holding a VQD from another source
   (notably the fleet layer's streaming sufficient statistics) can
   re-test without refitting a trace. *)
type verdicts = {
  sdcl : Tests.outcome;
  wdcl : Tests.outcome;
  conclusion : conclusion;
  bound : float option;
}

let conclude ?(params = default_params) vqd =
  let tests0 = Obs.Span.start () in
  let sdcl = Tests.sdcl ~tolerance:params.sdcl_tolerance vqd in
  let wdcl =
    Tests.wdcl ~tolerance:params.wdcl_tolerance ~beta:params.beta ~eps:params.eps vqd
  in
  Obs.Span.stop h_tests tests0;
  let conclusion =
    match (sdcl.Tests.verdict, wdcl.Tests.verdict) with
    | Tests.Accept, _ -> Strongly_dominant
    | Tests.Reject, Tests.Accept -> Weakly_dominant
    | Tests.Reject, Tests.Reject -> No_dominant
  in
  let bound0 = Obs.Span.start () in
  let bound =
    match conclusion with
    | Strongly_dominant -> Some (Bound.sdcl_bound vqd)
    | Weakly_dominant -> Some (Bound.wdcl_bound ~beta:params.beta vqd)
    | No_dominant -> None
  in
  Obs.Span.stop h_bound bound0;
  { sdcl; wdcl; conclusion; bound }

let run ?(params = default_params) ~rng trace =
  let vqd, (stats : Em.fit_stats) = fit_vqd ~params ~rng trace in
  let v = conclude ~params vqd in
  Obs.Counter.incr m_runs;
  {
    params;
    scheme = vqd.Vqd.scheme;
    vqd;
    sdcl = v.sdcl;
    wdcl = v.wdcl;
    conclusion = v.conclusion;
    bound = v.bound;
    loss_rate = Probe.Trace.loss_rate trace;
    observations = Probe.Trace.length trace;
    em_iterations = stats.Em.iterations;
    log_likelihood = stats.Em.log_likelihood;
    em_converged = stats.Em.converged;
    em_skipped_restarts = stats.Em.skipped_restarts;
  }

let conclusion_to_string = function
  | Strongly_dominant -> "strongly dominant congested link"
  | Weakly_dominant -> "weakly dominant congested link"
  | No_dominant -> "no dominant congested link"

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>conclusion: %s@,SDCL-Test: %a@,WDCL-Test(beta=%.2f,eps=%.2f): %a@,"
    (conclusion_to_string r.conclusion) Tests.pp_outcome r.sdcl r.params.beta r.params.eps
    Tests.pp_outcome r.wdcl;
  (match r.bound with
  | Some b -> Format.fprintf ppf "Q_max upper bound: %.1f ms@," (1000. *. b)
  | None -> ());
  Format.fprintf ppf
    "loss rate: %.2f%%, probes: %d, EM: %d iterations (%s), logL=%.1f"
    (100. *. r.loss_rate) r.observations r.em_iterations
    (if r.em_converged then "converged" else "max-iter")
    r.log_likelihood;
  if r.em_skipped_restarts > 0 then
    Format.fprintf ppf ", %d degenerate restart%s skipped" r.em_skipped_restarts
      (if r.em_skipped_restarts = 1 then "" else "s");
  Format.fprintf ppf "@]"

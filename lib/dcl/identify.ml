type model = Model_mmhd | Model_hmm | Model_markov

type params = {
  model : model;
  n : int;
  m : int;
  em_eps : float;
  em_max_iter : int;
  restarts : int;
  domains : int;
  prop_delay : Discretize.prop_delay;
  sdcl_tolerance : float;
  wdcl_tolerance : float;
  beta : float;
  eps : float;
}

let default_params =
  {
    model = Model_mmhd;
    n = 2;
    m = 5;
    em_eps = 1e-3;
    em_max_iter = 300;
    restarts = 2;
    domains = 1;
    prop_delay = Discretize.From_trace;
    sdcl_tolerance = Tests.default_tolerance;
    wdcl_tolerance = 0.04;
    beta = 0.06;
    eps = 0.;
  }

type conclusion = Strongly_dominant | Weakly_dominant | No_dominant

type result = {
  params : params;
  scheme : Discretize.t;
  vqd : Vqd.t;
  sdcl : Tests.outcome;
  wdcl : Tests.outcome;
  conclusion : conclusion;
  bound : float option;
  loss_rate : float;
  observations : int;
  em_iterations : int;
  log_likelihood : float;
  em_converged : bool;
}

let identifiable trace =
  Probe.Trace.losses trace > 0
  && Probe.Trace.length trace > Probe.Trace.losses trace
  &&
  let ds = Probe.Trace.observed_delays trace in
  Array.length ds > 0
  && Array.fold_left Float.max ds.(0) ds > Array.fold_left Float.min ds.(0) ds

let model_pmf params ~rng symbols =
  match params.model with
  | Model_mmhd | Model_markov ->
      let n = match params.model with Model_markov -> 1 | Model_mmhd | Model_hmm -> params.n in
      let model, stats =
        Mmhd.fit ~eps:params.em_eps ~max_iter:params.em_max_iter ~restarts:params.restarts
          ~domains:params.domains ~rng ~n ~m:params.m symbols
      in
      ( Mmhd.virtual_delay_pmf model symbols,
        (stats.Mmhd.iterations, stats.Mmhd.log_likelihood, stats.Mmhd.converged) )
  | Model_hmm ->
      let model, stats =
        Hmm.fit ~eps:params.em_eps ~max_iter:params.em_max_iter ~restarts:params.restarts
          ~domains:params.domains ~rng ~n:params.n ~m:params.m symbols
      in
      ( Hmm.virtual_delay_pmf model symbols,
        (stats.Hmm.iterations, stats.Hmm.log_likelihood, stats.Hmm.converged) )

let fit_vqd ?(params = default_params) ~rng trace =
  if not (identifiable trace) then
    invalid_arg "Identify: trace has no loss or no delay spread";
  let scheme = Discretize.of_trace ~m:params.m ~prop_delay:params.prop_delay trace in
  let symbols = Discretize.symbolize scheme (Probe.Trace.observations trace) in
  let pmf, stats = model_pmf params ~rng symbols in
  (Vqd.of_pmf scheme pmf, stats)

let run ?(params = default_params) ~rng trace =
  let vqd, (em_iterations, log_likelihood, em_converged) = fit_vqd ~params ~rng trace in
  let sdcl = Tests.sdcl ~tolerance:params.sdcl_tolerance vqd in
  let wdcl =
    Tests.wdcl ~tolerance:params.wdcl_tolerance ~beta:params.beta ~eps:params.eps vqd
  in
  let conclusion =
    match (sdcl.Tests.verdict, wdcl.Tests.verdict) with
    | Tests.Accept, _ -> Strongly_dominant
    | Tests.Reject, Tests.Accept -> Weakly_dominant
    | Tests.Reject, Tests.Reject -> No_dominant
  in
  let bound =
    match conclusion with
    | Strongly_dominant -> Some (Bound.sdcl_bound vqd)
    | Weakly_dominant -> Some (Bound.wdcl_bound ~beta:params.beta vqd)
    | No_dominant -> None
  in
  {
    params;
    scheme = vqd.Vqd.scheme;
    vqd;
    sdcl;
    wdcl;
    conclusion;
    bound;
    loss_rate = Probe.Trace.loss_rate trace;
    observations = Probe.Trace.length trace;
    em_iterations;
    log_likelihood;
    em_converged;
  }

let conclusion_to_string = function
  | Strongly_dominant -> "strongly dominant congested link"
  | Weakly_dominant -> "weakly dominant congested link"
  | No_dominant -> "no dominant congested link"

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>conclusion: %s@,SDCL-Test: %a@,WDCL-Test(beta=%.2f,eps=%.2f): %a@,"
    (conclusion_to_string r.conclusion) Tests.pp_outcome r.sdcl r.params.beta r.params.eps
    Tests.pp_outcome r.wdcl;
  (match r.bound with
  | Some b -> Format.fprintf ppf "Q_max upper bound: %.1f ms@," (1000. *. b)
  | None -> ());
  Format.fprintf ppf
    "loss rate: %.2f%%, probes: %d, EM: %d iterations (%s), logL=%.1f@]"
    (100. *. r.loss_rate) r.observations r.em_iterations
    (if r.em_converged then "converged" else "max-iter")
    r.log_likelihood

type interval = {
  point : float;
  lo : float;
  hi : float;
  accept_fraction : float;
  replicates : int;
}

(* Resample the trace in contiguous blocks of [per_block] records,
   rewriting send times so the result is a well-formed trace of the
   same length. *)
let resample rng trace ~per_block =
  let records = trace.Probe.Trace.records in
  let n = Array.length records in
  let out = Array.make n records.(0) in
  let filled = ref 0 in
  while !filled < n do
    let start = Stats.Rng.int rng (Stdlib.max 1 (n - per_block + 1)) in
    let len = Stdlib.min per_block (n - !filled) in
    for i = 0 to len - 1 do
      let r = records.(start + i) in
      out.(!filled + i) <-
        { r with Probe.Trace.send_time = float_of_int (!filled + i) *. trace.Probe.Trace.interval }
    done;
    filled := !filled + len
  done;
  { trace with Probe.Trace.records = out }

let default_params =
  { Identify.default_params with Identify.model = Identify.Model_markov }

let f_statistic ?(params = default_params) ?(replicates = 50) ?(block = 20.)
    ?(confidence = 0.9) ?(domains = 1) ~rng trace =
  if replicates <= 0 then invalid_arg "Bootstrap.f_statistic: replicates <= 0";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.f_statistic: confidence must be in (0, 1)";
  let original = Identify.run ~params ~rng trace in
  let point = original.Identify.wdcl.Tests.f_at_two_d_star in
  let per_block =
    Stdlib.max 1 (int_of_float (block /. trace.Probe.Trace.interval))
  in
  (* One pre-split RNG per replicate: each replicate (resampling plus
     refit) is a pure function of its index, so the interval is
     bit-identical however the replicates are spread over domains. *)
  let rngs = Array.init replicates (fun _ -> Stats.Rng.split rng) in
  let replicate k =
    let rng = rngs.(k) in
    let sample = resample rng trace ~per_block in
    if Identify.identifiable sample then begin
      let r = Identify.run ~params ~rng sample in
      Some
        ( r.Identify.wdcl.Tests.f_at_two_d_star,
          r.Identify.wdcl.Tests.verdict = Tests.Accept )
    end
    else None
  in
  let results = Stats.Par.map_range ~domains replicates replicate in
  let xs =
    Array.of_list
      (List.filter_map (Option.map fst) (Array.to_list results))
  in
  let accepts =
    Array.fold_left
      (fun n -> function Some (_, true) -> n + 1 | _ -> n)
      0 results
  in
  let lo, hi =
    if Array.length xs = 0 then (Float.nan, Float.nan)
    else
      let tail = (1. -. confidence) /. 2. in
      (Stats.Summary.quantile xs tail, Stats.Summary.quantile xs (1. -. tail))
  in
  {
    point;
    lo;
    hi;
    accept_fraction = float_of_int accepts /. float_of_int replicates;
    replicates;
  }

type verdict = Accept | Reject

type outcome = {
  verdict : verdict;
  d_star : int;
  two_d_star : int;
  f_at_two_d_star : float;
  threshold : float;
}

let default_tolerance = 0.005

(* Shared scaffolding: find d_star (smallest symbol with F >= 1/2,
   1-based) and evaluate F at ceil((1 + 1/x) * d_star), which is the
   paper's "2 d_star" when the generalization parameter x is 1; then
   compare against [threshold]. *)
let run_test vqd ~threshold ~delay_factor =
  if delay_factor <= 0. then invalid_arg "Tests: delay_factor must be positive";
  let d_star0 = Vqd.quantile_symbol vqd 0.5 in
  let d_star = d_star0 + 1 in
  let two_d_star =
    int_of_float (ceil ((1. +. (1. /. delay_factor)) *. float_of_int d_star))
  in
  let f = Vqd.cdf_at vqd (two_d_star - 1) in
  {
    verdict = (if Stats.Float_cmp.geq f threshold then Accept else Reject);
    d_star;
    two_d_star;
    f_at_two_d_star = f;
    threshold;
  }

let sdcl ?(tolerance = default_tolerance) ?(delay_factor = 1.) vqd =
  run_test vqd ~threshold:(1. -. tolerance) ~delay_factor

let wdcl ?(tolerance = default_tolerance) ?(delay_factor = 1.) ~beta ~eps vqd =
  if beta < 0. || beta >= 0.5 then invalid_arg "Tests.wdcl: beta must be in [0, 1/2)";
  if eps < 0. || eps > 1. then invalid_arg "Tests.wdcl: eps must be in [0, 1]";
  run_test vqd ~threshold:(((1. -. beta) *. (1. -. eps)) -. tolerance) ~delay_factor

let pp_outcome ppf o =
  Format.fprintf ppf "%s (d*=%d, F(2d*=%d)=%.4f, threshold=%.4f)"
    (match o.verdict with Accept -> "accept" | Reject -> "reject")
    o.d_star o.two_d_star o.f_at_two_d_star o.threshold

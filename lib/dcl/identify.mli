(** The end-end identification pipeline (Sections IV–V): discretize
    the trace, fit a model treating losses as missing delay values,
    read off the virtual queuing delay distribution, run the hypothesis
    tests, and bound the dominant link's maximum queuing delay. *)

type model =
  | Model_mmhd  (** the paper's recommended model *)
  | Model_hmm
  | Model_markov  (** MMHD with [n = 1]: no hidden dimension (ablation) *)

type params = {
  model : model;
  n : int;  (** hidden states / hidden-dimension size *)
  m : int;  (** delay symbols; the paper uses 5 (tests) or 40 (bounds) *)
  em_eps : float;  (** EM convergence threshold (paper: 1e-3 or 1e-4) *)
  em_max_iter : int;
  restarts : int;  (** random EM restarts, best likelihood kept *)
  domains : int;
      (** multicore domains racing the restarts; 1 = serial.  The
          winning fit is identical either way (per-restart pre-split
          RNGs). *)
  prop_delay : Discretize.prop_delay;
  sdcl_tolerance : float;  (** statistical slack of the SDCL test *)
  wdcl_tolerance : float;
      (** statistical slack of the WDCL test.  The model-based estimate
          of [F] systematically sits a few percent below the dominant
          link's true loss share: the posterior of a lost probe is
          informed by nearby surviving probes, which by construction
          saw a just-below-full buffer, so a little probability mass
          leaks to neighbouring symbols.  The default absorbs this
          bias plus sampling noise; the ablation bench sweeps it. *)
  beta : float;  (** WDCL loss parameter *)
  eps : float;  (** WDCL delay parameter *)
}

val default_params : params
(** MMHD with [n = 2], [m = 5], EM threshold 1e-3, 2 restarts,
    propagation delay from the trace, SDCL tolerance 0.005, WDCL
    tolerance 0.04, WDCL parameters [beta = 0.06] and [eps = 0] — the
    configuration of the paper's worked examples. *)

type conclusion = Strongly_dominant | Weakly_dominant | No_dominant

type result = {
  params : params;
  scheme : Discretize.t;
  vqd : Vqd.t;
  sdcl : Tests.outcome;
  wdcl : Tests.outcome;
  conclusion : conclusion;
  bound : float option;
      (** upper bound on the dominant link's [Q_k] (seconds) when a
          DCL was identified: the SDCL median bound, or the WDCL
          [beta]-bound *)
  loss_rate : float;
  observations : int;
  em_iterations : int;
  log_likelihood : float;
  em_converged : bool;
  em_skipped_restarts : int;
      (** EM restarts discarded as degenerate (zero-likelihood) *)
}

val fit_vqd :
  ?params:params -> rng:Stats.Rng.t -> Probe.Trace.t -> Vqd.t * Em.fit_stats
(** Model-fitting front half only: returns the inferred virtual
    queuing delay distribution and the winning fit's statistics.  Used
    by the figure benches that plot distributions without running the
    tests. *)

type verdicts = {
  sdcl : Tests.outcome;
  wdcl : Tests.outcome;
  conclusion : conclusion;
  bound : float option;
}

val conclude : ?params:params -> Vqd.t -> verdicts
(** The back half of the pipeline: run the SDCL and WDCL tests on an
    already-obtained virtual queuing delay distribution and derive the
    conclusion and bound.  Only the test parameters of [params]
    ([sdcl_tolerance], [wdcl_tolerance], [beta], [eps]) are consulted.
    [run] is [fit_vqd] followed by [conclude]; the fleet layer calls
    this directly on distributions read off streaming sufficient
    statistics ({!Em.Incremental.loss_mass}), where there is no trace
    to refit. *)

val run : ?params:params -> rng:Stats.Rng.t -> Probe.Trace.t -> result
(** Full pipeline.  Raises [Invalid_argument] when the trace has no
    loss or no delay spread (identification needs both; see
    {!identifiable}). *)

val identifiable : Probe.Trace.t -> bool
(** The trace has at least one loss, at least one surviving probe, and
    a positive delay spread. *)

val conclusion_to_string : conclusion -> string
val pp_result : Format.formatter -> result -> unit

let sdcl_bound vqd =
  Discretize.queuing_value vqd.Vqd.scheme (Vqd.quantile_symbol vqd 0.5)

let wdcl_bound ~beta vqd =
  if beta < 0. || beta >= 0.5 then invalid_arg "Bound.wdcl_bound: beta must be in [0, 1/2)";
  let m = Array.length vqd.Vqd.cdf in
  let rec find j =
    if j >= m - 1 || Stats.Float_cmp.gt (Vqd.cdf_at vqd j) beta then j else find (j + 1)
  in
  Discretize.queuing_value vqd.Vqd.scheme (find 0)

let components ?(mass_threshold = 0.005) vqd =
  let pmf = vqd.Vqd.pmf in
  let m = Array.length pmf in
  let runs = ref [] in
  let start = ref None in
  let mass = ref 0. in
  let close last =
    match !start with
    | Some first ->
        runs := (first, last, !mass) :: !runs;
        start := None;
        mass := 0.
    | None -> ()
  in
  for j = 0 to m - 1 do
    if Stats.Float_cmp.gt pmf.(j) mass_threshold then begin
      if !start = None then start := Some j;
      mass := !mass +. pmf.(j)
    end
    else close (j - 1)
  done;
  close (m - 1);
  List.rev !runs

let component_bound ?mass_threshold vqd =
  match components ?mass_threshold vqd with
  | [] -> sdcl_bound vqd
  | runs ->
      let first, _, _ =
        List.fold_left
          (fun ((_, _, best_mass) as best) ((_, _, mass) as run) ->
            if Stats.Float_cmp.gt mass best_mass then run else best)
          (List.hd runs) (List.tl runs)
      in
      Discretize.queuing_value vqd.Vqd.scheme first

(** Sliding-window identification: continuous monitoring of a path's
    congestion structure.

    The paper identifies a DCL from one offline probing window; a
    network operator, however, wants to watch the structure evolve —
    e.g. to notice when a second link becomes congested and the path
    stops having a dominant congested link.  This module re-runs the
    identification pipeline over a window sliding along the trace and
    reports the sequence of conclusions. *)

type sample = {
  at : float;  (** send time of the window's last probe *)
  conclusion : Identify.conclusion option;
      (** [None] when the window was not identifiable (no loss or no
          delay spread) *)
  f_at_two_d_star : float;  (** WDCL statistic; [nan] when unidentifiable *)
  loss_rate : float;
}

val scan :
  ?params:Identify.params ->
  ?domains:int ->
  ?on_change:
    (at:float ->
    was:Identify.conclusion option ->
    now:Identify.conclusion option ->
    unit) ->
  rng:Stats.Rng.t ->
  window:float ->
  stride:float ->
  Probe.Trace.t ->
  sample list
(** [scan ~rng ~window ~stride trace] evaluates the identification on
    [\[t, t + window\]] for [t = 0, stride, 2*stride, ...] (times
    relative to the trace start) and returns one sample per window, in
    order.  Requires [0 < stride] and [0 < window <= duration].

    Window positions are walked in integer record indices (the stride
    is rounded once to a whole number of probe intervals, minimum one
    record), so the scan emits exactly
    [(length - per_window) / stride_records + 1] samples with no
    float-accumulation drift.  Quotients such as [window /. interval]
    that are within one part in 10^9 of an integer are snapped to that
    integer before rounding, so decimal-fraction parameters (window
    1.0 s, interval 0.1 s) give exactly the 10-record window they name
    rather than an 11-record one from binary-float excess.

    {b Coverage contract.}  Every record index in
    [\[0, (count - 1) * stride_records + per_window)] is read by at
    least one window; trailing records beyond that bound (fewer than
    [stride_records] of them whenever at least one window fits, but
    possibly the whole trace when [window > duration] of the trace)
    are analyzed by {e no} window.  The scan publishes that tail size
    through the [dcl_online_tail_records] gauge (last scan) and the
    [dcl_online_tail_records_total] counter (cumulative) so deployments
    can alarm on a stride/window mismatch; it never pads or emits a
    partial window, since a shorter window would silently change the
    statistical power of the tests run inside it.

    Each window's identification draws from
    its own RNG pre-split from [rng], so with [domains > 1] the windows
    are evaluated on that many concurrent domains of the persistent
    pool ({!Stats.Pool}) and the samples are identical to the serial
    run.

    {b Warm workspaces.}  Every window's EM fits run on the evaluating
    domain's persistent workspace ([Em.domain_ws], kept in
    [Domain.DLS] and warm across pool jobs), so consecutive windows on
    a domain reuse grown buffers instead of re-allocating them.  The
    reuse is layout-only — a warm workspace holds no carried state, so
    the fitted models are bit-identical to fresh-workspace fits; both
    properties (identity asserted, bytes saved per window reported as
    the [warm_ws_*] fields) are measured by [bench_em --obs] in
    [BENCH_obs.json].

    [on_change] is called once per conclusion transition — each
    consecutive window pair whose conclusions differ — with the
    timestamp of the later window and the two conclusions.  The calls
    happen after all windows are evaluated, in chronological order, on
    the calling domain, regardless of [domains] and of whether
    observability collection is enabled (the
    [dcl_online_conclusion_transitions_total] counter, by contrast,
    only counts while enabled). *)

val changes : sample list -> (float * Identify.conclusion option) list
(** Collapse a scan to its change points: the first sample and every
    sample whose conclusion differs from its predecessor's. *)

type sample = {
  at : float;
  conclusion : Identify.conclusion option;
  f_at_two_d_star : float;
  loss_rate : float;
}

let h_window =
  Obs.Histogram.make ~help:"Latency of one sliding-window identification"
    "dcl_online_window_seconds"

let m_transitions =
  Obs.Counter.make
    ~help:"Conclusion changes between consecutive sliding windows"
    "dcl_online_conclusion_transitions_total"

let g_tail =
  Obs.Gauge.make
    ~help:"Trailing records left uncovered by the most recent scan"
    "dcl_online_tail_records"

let m_tail =
  Obs.Counter.make
    ~help:"Trailing records left uncovered by scans, cumulative"
    "dcl_online_tail_records_total"

(* Snap a float quotient that should be a whole number of records back
   onto that integer before truncation-style rounding.  [window /.
   interval] with decimal-fraction parameters (window 1.0, interval
   0.1) evaluates to 10.000000000000002 in binary floats; feeding that
   to [ceil] yields an 11-record window — a genuine off-by-one in
   which every window reads one record too many.  The relative epsilon
   keeps the snap meaningful for large quotients while never bridging
   a real fractional part. *)
let snap q =
  let r = Float.round q in
  if Stats.Float_cmp.approx_eq ~eps:(1e-9 *. Float.max 1. (Float.abs q)) q r
  then r
  else q

let scan ?(params = Identify.default_params) ?(domains = 1) ?on_change ~rng
    ~window ~stride trace =
  if stride <= 0. then invalid_arg "Online.scan: stride <= 0";
  let duration = Probe.Trace.duration trace in
  if window <= 0. || window > duration then
    invalid_arg "Online.scan: window must be in (0, duration]";
  let interval = trace.Probe.Trace.interval in
  let n = Probe.Trace.length trace in
  (* Window positions are walked in integer record indices.  The
     previous implementation accumulated [t +. stride] in floats and
     recovered the record index as [int_of_float (t /. interval)]; when
     stride is not exactly representable (e.g. 0.1) the accumulated sum
     drifts across record boundaries, duplicating some windows and
     skipping others.  Rounding the stride to a whole number of records
     once makes every window position exact. *)
  let per_window = int_of_float (ceil (snap (window /. interval))) in
  let stride_rec = max 1 (int_of_float (Float.round (snap (stride /. interval)))) in
  let count = if per_window > n then 0 else ((n - per_window) / stride_rec) + 1 in
  (* Coverage contract (see the .mli): records past the last window's
     end are silently analyzed by no window; surface how many so a
     monitoring deployment can alarm on a stride/window mismatch. *)
  let covered = if count = 0 then 0 else ((count - 1) * stride_rec) + per_window in
  let tail = n - covered in
  Obs.Gauge.set g_tail (float_of_int tail);
  if tail > 0 then Obs.Counter.add m_tail tail;
  (* One pre-split RNG per window: each window's identification is a
     pure function of its index, so the samples are identical whether
     the windows are evaluated serially or across domains. *)
  let rngs = Array.init count (fun _ -> Stats.Rng.split rng) in
  let eval w =
    let t0 = Obs.Span.start () in
    let pos = w * stride_rec in
    let segment = Probe.Trace.sub trace ~pos ~len:per_window in
    let last = segment.Probe.Trace.records.(per_window - 1).Probe.Trace.send_time in
    let sample =
      if Identify.identifiable segment then begin
        let r = Identify.run ~params ~rng:rngs.(w) segment in
        {
          at = last;
          conclusion = Some r.Identify.conclusion;
          f_at_two_d_star = r.Identify.wdcl.Tests.f_at_two_d_star;
          loss_rate = r.Identify.loss_rate;
        }
      end
      else
        {
          at = last;
          conclusion = None;
          f_at_two_d_star = Float.nan;
          loss_rate = Probe.Trace.loss_rate segment;
        }
    in
    Obs.Span.stop h_window t0;
    sample
  in
  let samples = Array.to_list (Stats.Par.map_range ~domains count eval) in
  (* Conclusion-transition events are emitted after all windows are
     collected (not from inside [eval]): with [domains > 1] the windows
     finish out of order, and the operator-facing event stream must be
     chronological. *)
  let concl_detail = function
    | None -> "untested"
    | Some Identify.Strongly_dominant -> "strongly-dominant"
    | Some Identify.Weakly_dominant -> "weakly-dominant"
    | Some Identify.No_dominant -> "no-dominant"
  in
  let rec walk i = function
    | a :: (b :: _ as rest) ->
        if b.conclusion <> a.conclusion then begin
          Obs.Counter.incr m_transitions;
          Obs.Trace.instant_d "online.transition" (concl_detail b.conclusion) i;
          match on_change with
          | Some f -> f ~at:b.at ~was:a.conclusion ~now:b.conclusion
          | None -> ()
        end;
        walk (i + 1) rest
    | [] | [ _ ] -> ()
  in
  walk 1 samples;
  samples

let changes samples =
  let rec collapse prev acc = function
    | [] -> List.rev acc
    | s :: rest ->
        if prev = None || Some s.conclusion <> prev then
          collapse (Some s.conclusion) ((s.at, s.conclusion) :: acc) rest
        else collapse prev acc rest
  in
  collapse None [] samples

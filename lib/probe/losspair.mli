(** The loss-pair baseline (Liu & Crovella, IMW 2001), the empirical
    alternative the paper compares its model-based approach against.

    Two back-to-back probes are sent every [pair_interval] seconds.
    When exactly one of the two is lost, the surviving probe's queuing
    delay is taken as a sample of the lost probe's (virtual) queuing
    delay — the loss-pair assumption that both packets saw the same
    queues.  The maximum queuing delay of the congested link is then
    read off the peak of the sample distribution. *)

type t

val create :
  ?size:int ->
  ?gap:float ->
  Netsim.Net.t ->
  src:int ->
  dst:int ->
  pair_interval:float ->
  unit ->
  t
(** [gap] is the intra-pair spacing; by default the serialization time
    of the probe on the slowest path link (true back-to-back spacing
    after the pair has been serialized once). *)

val start : t -> at:float -> until:float -> unit

val base_delay : t -> float
(** Queuing-free end–end delay of the probed path. *)

val pairs_sent : t -> int
val loss_pairs : t -> int
(** Pairs in which exactly one probe was lost. *)

val both_lost : t -> int

val samples : t -> float array
(** Surviving-probe queuing delays (end–end delay minus the path's
    queuing-free delay), one per loss pair, in send order. *)

val estimate_max_queuing_delay : ?bins:int -> t -> float option
(** Peak (mode) of the loss-pair sample histogram ([bins] default 40):
    the loss-pair estimate of the dominant link's [Q_k].  [None] when
    no loss pair was observed. *)

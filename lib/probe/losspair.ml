open Netsim

type t = {
  net : Net.t;
  size : int;
  gap : float;
  pair_interval : float;
  path : Link.t list;
  base_delay : float;
  rng : Stats.Rng.t;
  mutable pairs_sent : int;
  mutable loss_pairs : int;
  mutable both_lost : int;
  mutable samples : (int * float) list;  (* (pair index, sample), newest first *)
}

let default_gap ~size path =
  let slowest =
    List.fold_left (fun acc l -> Float.min acc (Link.bandwidth l)) infinity path
  in
  float_of_int (size * 8) /. slowest

let create ?(size = 10) ?gap net ~src ~dst ~pair_interval () =
  if pair_interval <= 0. then invalid_arg "Losspair.create: pair_interval <= 0";
  let path = Net.path_links net ~src ~dst in
  let gap = match gap with Some g -> g | None -> default_gap ~size path in
  {
    net;
    size;
    gap;
    pair_interval;
    path;
    base_delay = Shadow.base_delay ~size path;
    rng = Stats.Rng.split (Sim.rng (Net.sim net));
    pairs_sent = 0;
    loss_pairs = 0;
    both_lost = 0;
    samples = [];
  }

let record t idx (first : Shadow.result) (second : Shadow.result) =
  let outcome r = r.Shadow.loss_hop <> None in
  match (outcome first, outcome second) with
  | true, true -> t.both_lost <- t.both_lost + 1
  | false, false -> ()
  | lost1, _ ->
      t.loss_pairs <- t.loss_pairs + 1;
      let survivor = if lost1 then second else first in
      t.samples <- (idx, Shadow.total_queuing survivor) :: t.samples

let start t ~at ~until =
  if until <= at then invalid_arg "Losspair.start: empty probing window";
  let n = int_of_float (ceil ((until -. at) /. t.pair_interval)) in
  for i = 0 to n - 1 do
    let t0 = at +. (float_of_int i *. t.pair_interval) in
    if t0 < until then begin
      let idx = t.pairs_sent in
      t.pairs_sent <- t.pairs_sent + 1;
      (* Both results are needed before classifying; the second probe
         always completes later in virtual time, but callbacks can
         interleave across pairs, so pair them explicitly. *)
      let slot = ref None in
      let on_result r =
        match !slot with
        | None -> slot := Some r
        | Some first -> record t idx first r
      in
      Shadow.launch t.net ~path:t.path ~size:t.size ~rng:t.rng ~at:t0 ~k:on_result;
      Shadow.launch t.net ~path:t.path ~size:t.size ~rng:t.rng ~at:(t0 +. t.gap)
        ~k:on_result
    end
  done

let base_delay t = t.base_delay
let pairs_sent t = t.pairs_sent
let loss_pairs t = t.loss_pairs
let both_lost t = t.both_lost

let samples t =
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) t.samples in
  Array.of_list (List.map snd ordered)

let estimate_max_queuing_delay ?(bins = 40) t =
  let xs = samples t in
  if Array.length xs = 0 then None
  else begin
    let lo = 0. in
    let hi = Array.fold_left Float.max xs.(0) xs +. 1e-9 in
    let h = Stats.Histogram.create ~m:bins ~lo ~hi in
    Array.iter (Stats.Histogram.add h) xs;
    Some (Stats.Histogram.mode_value h)
  end

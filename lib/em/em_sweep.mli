(** Within-sweep parallel drivers for the EM kernel (library-internal;
    re-exported to users as [Em.Sweep]).

    A {!policy} says how to cut one forward/backward/accumulate sweep
    over a [tt]-step sequence into K chunks and how many pool domains
    to run them on.  Chunk boundaries and the combine order are pure
    functions of [(tt, K)], so for a fixed policy the pooled and inline
    runs are bit-identical; see DESIGN.md §10 for the warm-up math. *)

type policy

val policy :
  ?chunks:int -> ?domains:int -> ?warmup:int -> ?min_chunk:int -> unit -> policy
(** [chunks] (default 1): target chunk count K.  [domains] (default
    [chunks]): pool participants running them.  [warmup] (default 512,
    floored at 1): speculative boundary steps per interior chunk.
    [min_chunk] (default 4096, floored at [2 * warmup]): shortest
    allowed chunk — sweeps whose [tt / K] falls below it fall back to
    fewer chunks, down to serial.  Raises [Invalid_argument] on
    non-positive [chunks] or [domains]. *)

val serial : policy
(** [policy ()]: one chunk, no pool — the plain serial sweep. *)

val chunks : policy -> int
val domains : policy -> int

val effective_chunks : policy -> tt:int -> int
(** The chunk count actually used for a [tt]-step sweep, after the
    [min_chunk] crossover cut. *)

val forward : Em_kernel.workspace -> Em_kernel.model -> policy -> tt:int -> float
(** Chunked scaled forward pass; returns the log-likelihood.
    @raise Em_kernel.Zero_likelihood on an impossible observation. *)

val backward : Em_kernel.workspace -> Em_kernel.model -> policy -> tt:int -> unit
(** Chunked scaled backward pass; requires a completed {!forward}. *)

val accumulate :
  Em_kernel.workspace -> Em_kernel.model -> policy -> tt:int -> unit
(** Chunked E-step statistics accumulation into the workspace's final
    accumulators; requires completed {!forward} and {!backward}. *)

val domain_ws : unit -> Em_kernel.workspace
(** The calling domain's workspace, held in domain-local storage and
    reused across calls. *)

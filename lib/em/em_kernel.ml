(* Bigarray-backed hot state and range kernels for the shared EM sweep.

   This module owns the numerical inner loops only: the public API, the
   EM update logic and restart racing live in [Em], and the chunked
   multi-domain drivers in [Em_sweep].

   All float sweep state lives in unboxed [Bigarray.Array1] float64
   buffers ([buf]); [unsafe_get]/[unsafe_set] on them appear strictly
   inside the [lint: hot] fences below (dcl-lint rule R5 checks both
   directions).  Every kernel runs over an explicit time range
   [\[t0, t1)] plus a chunk [slot] addressing per-chunk scratch, so the
   serial sweep (one chunk covering the whole sequence) and the chunked
   parallel sweep of [Em_sweep] are the same code path — chunking
   doubles as the time-axis cache block: a chunk's alpha rows are still
   L2-warm when its backward and accumulate passes revisit them.

   Float32 mode keeps the same float64 storage but rounds every stored
   sweep value (normalized alpha rows, beta rows, warm-up rows, and the
   prepared model tables) through a one-element float32 scratch cell,
   emulating a single-precision sweep with double-precision
   accumulation. *)

module Ba = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t

type precision = F64 | F32

type model = {
  s : int;
  m : int;
  pi : float array;
  a : float array;
  b : float array;
  c : float array;
}

exception Zero_likelihood of int

let m_zero =
  Obs.Counter.make ~help:"Observations found impossible under the current model"
    "dcl_em_zero_likelihood_total"

type workspace = {
  precision : precision;
  f32 : bool;
  (* One-element float32 cell: storing and re-loading a double through
     it is exactly IEEE round-to-nearest single rounding. *)
  r32 : (float, Bigarray.float32_elt, Bigarray.c_layout) Ba.t;
  (* T*S sweep buffers, row-major by time. *)
  mutable alpha : buf;
  mutable beta : buf;
  mutable scale : buf; (* T *)
  (* Observation classes: cls.(t) = j for [Some j], m for [None].  A
     class is both the row of the emission table and the row of the
     active-state table, so the sweeps never touch the boxed
     [int option] observations. *)
  mutable cls : int array; (* T *)
  (* Per-iteration emission table, class-major: row j < m holds
     e(st, Some j) at e_all.(j*s + st), row m holds the loss emission
     e(st, None) at e_all.(m*s + st). *)
  mutable e_all : buf; (* (M+1)*S *)
  mutable w : buf; (* S*M, state-major loss-symbol weights *)
  (* The transition matrix, copied row-major (a_r) and transposed (a_t)
     so both sweep directions stream contiguous rows. *)
  mutable a_r : buf; (* S*S *)
  mutable a_t : buf; (* S*S *)
  mutable pi_b : buf; (* S *)
  (* Active-state lists: row j < m lists states that can emit symbol j,
     row m lists states with positive loss emission. *)
  mutable act : int array; (* (M+1)*S *)
  mutable act_len : int array; (* M+1 *)
  (* Final EM accumulators (the M-step reads these). *)
  mutable xi : buf; (* S*S *)
  mutable gamma_sum : buf; (* S *)
  mutable count_obs : buf; (* S*M *)
  mutable count_loss : buf; (* S*M *)
  (* Per-chunk scratch, one slot per chunk of the parallel sweep (all
     K-striped so concurrent chunks write disjoint ranges). *)
  mutable tmp : buf; (* K*S, backward/accumulate step scratch *)
  mutable warm : buf; (* K*2*S, speculative warm-up ping-pong rows *)
  mutable wsum : buf; (* K, warm-up normalizers *)
  mutable lls : buf; (* K, per-chunk logL partials *)
  mutable acc_xi : buf; (* K*S*S *)
  mutable acc_gamma : buf; (* K*S *)
  mutable acc_obs : buf; (* K*S*M *)
  mutable acc_loss : buf; (* K*S*M *)
  mutable cap_t : int;
  mutable cap_s : int;
  mutable cap_m : int;
  mutable cap_k : int;
}

let fbuf n = Ba.create Bigarray.float64 Bigarray.c_layout n

let create ?(precision = F64) () =
  {
    precision;
    f32 = (match precision with F32 -> true | F64 -> false);
    r32 = Ba.create Bigarray.float32 Bigarray.c_layout 1;
    alpha = fbuf 0;
    beta = fbuf 0;
    scale = fbuf 0;
    cls = [||];
    e_all = fbuf 0;
    w = fbuf 0;
    a_r = fbuf 0;
    a_t = fbuf 0;
    pi_b = fbuf 0;
    act = [||];
    act_len = [||];
    xi = fbuf 0;
    gamma_sum = fbuf 0;
    count_obs = fbuf 0;
    count_loss = fbuf 0;
    tmp = fbuf 0;
    warm = fbuf 0;
    wsum = fbuf 0;
    lls = fbuf 0;
    acc_xi = fbuf 0;
    acc_gamma = fbuf 0;
    acc_obs = fbuf 0;
    acc_loss = fbuf 0;
    cap_t = 0;
    cap_s = 0;
    cap_m = 0;
    cap_k = 0;
  }

(* Grow (never shrink) every buffer to hold a [tt]-step, [k]-chunk
   sweep of an [s]-state, [m]-symbol model.  Amortized: a workspace
   reused across iterations and restarts allocates nothing after the
   first call. *)
let reserve ws ~tt ~s ~m ~k =
  if s > ws.cap_s || m > ws.cap_m then begin
    let cs = max s ws.cap_s and cm = max m ws.cap_m in
    ws.e_all <- fbuf ((cm + 1) * cs);
    ws.w <- fbuf (cs * cm);
    ws.a_r <- fbuf (cs * cs);
    ws.a_t <- fbuf (cs * cs);
    ws.pi_b <- fbuf cs;
    ws.act <- Array.make ((cm + 1) * cs) 0;
    ws.act_len <- Array.make (cm + 1) 0;
    ws.xi <- fbuf (cs * cs);
    ws.gamma_sum <- fbuf cs;
    ws.count_obs <- fbuf (cs * cm);
    ws.count_loss <- fbuf (cs * cm);
    ws.cap_s <- cs;
    ws.cap_m <- cm;
    (* Force the T- and K-striped buffers to regrow with the new row
       width. *)
    ws.cap_t <- 0;
    ws.cap_k <- 0
  end;
  if tt > ws.cap_t then begin
    let ct = max tt ws.cap_t in
    ws.alpha <- fbuf (ct * ws.cap_s);
    ws.beta <- fbuf (ct * ws.cap_s);
    ws.scale <- fbuf ct;
    ws.cls <- Array.make ct 0;
    ws.cap_t <- ct
  end;
  if k > ws.cap_k then begin
    let ck = max k ws.cap_k in
    ws.tmp <- fbuf (ck * ws.cap_s);
    ws.warm <- fbuf (ck * 2 * ws.cap_s);
    ws.wsum <- fbuf ck;
    ws.lls <- fbuf ck;
    ws.acc_xi <- fbuf (ck * ws.cap_s * ws.cap_s);
    ws.acc_gamma <- fbuf (ck * ws.cap_s);
    ws.acc_obs <- fbuf (ck * ws.cap_s * ws.cap_m);
    ws.acc_loss <- fbuf (ck * ws.cap_s * ws.cap_m);
    ws.cap_k <- ck
  end

(* Collapse the boxed observations into integer classes once per sweep;
   every pass then reads the flat [cls] array instead of matching an
   [int option] (a pointer dereference plus a branch) at each of its
   per-time-step accesses. *)
let classify ws (t : model) obs =
  let m = t.m and cls = ws.cls in
  for time = 0 to Array.length obs - 1 do
    Array.unsafe_set cls time
      (match Array.unsafe_get obs time with Some j -> j | None -> m)
  done

(* lint: hot *)

(* Round a double to the nearest float32 value through the scratch
   cell; identity in float64 mode.  Small enough for Closure-mode
   inlining, so the f64 path keeps its one-branch cost. *)
let[@inline always] round32 ws x =
  if ws.f32 then begin
    Ba.unsafe_set ws.r32 0 x;
    Ba.unsafe_get ws.r32 0
  end
  else x

(* [Ba.fill (Ba.sub ..)] would allocate a view per call; a plain loop
   keeps the clears allocation-free. *)
let fill_range (b : buf) off len v =
  for i = 0 to len - 1 do
    Ba.unsafe_set b (off + i) v
  done

(* Fill the emission table, active-state lists, transposed/row copies
   of the transitions and the initial distribution for [t] — once per
   class per iteration, however many times each class occurs in the
   sequence.  The missing-value emission (paper Section V) lives here,
   shared by both model families:
     e(st, Some j) = b_st(j) * (1 - c_j)
     e(st, None)   = sum_j b_st(j) * c_j
     w(st, j)      = b_st(j) * c_j / e(st, None)   (loss-symbol posterior)
   In float32 mode every prepared table entry is rounded here, once. *)
let prepare ws (t : model) =
  let s = t.s and m = t.m in
  let b = t.b and c = t.c in
  let e_all = ws.e_all and w = ws.w in
  let act = ws.act and act_len = ws.act_len in
  for j = 0 to m - 1 do
    let one_minus_c = 1. -. Array.unsafe_get c j in
    let row = j * s in
    let len = ref 0 in
    for st = 0 to s - 1 do
      let e = round32 ws (Array.unsafe_get b ((st * m) + j) *. one_minus_c) in
      Ba.unsafe_set e_all (row + st) e;
      if e > 0. then begin
        Array.unsafe_set act (row + !len) st;
        incr len
      end
    done;
    act_len.(j) <- !len
  done;
  let loss_row = m * s in
  let loss_len = ref 0 in
  for st = 0 to s - 1 do
    let acc = ref 0. in
    let base = st * m in
    for j = 0 to m - 1 do
      acc := !acc +. (Array.unsafe_get b (base + j) *. Array.unsafe_get c j)
    done;
    let e = round32 ws !acc in
    Ba.unsafe_set e_all (loss_row + st) e;
    if e > 0. then begin
      Array.unsafe_set act (loss_row + !loss_len) st;
      incr loss_len;
      let inv = 1. /. e in
      for j = 0 to m - 1 do
        Ba.unsafe_set w (base + j)
          (round32 ws
             (Array.unsafe_get b (base + j) *. Array.unsafe_get c j *. inv))
      done
    end
    else
      for j = 0 to m - 1 do
        Ba.unsafe_set w (base + j) 0.
      done
  done;
  act_len.(m) <- !loss_len;
  let a = t.a and a_r = ws.a_r and a_t = ws.a_t in
  for st = 0 to s - 1 do
    let row = st * s in
    for st' = 0 to s - 1 do
      let v = round32 ws (Array.unsafe_get a (row + st')) in
      Ba.unsafe_set a_r (row + st') v;
      Ba.unsafe_set a_t ((st' * s) + st) v
    done
  done;
  for st = 0 to s - 1 do
    Ba.unsafe_set ws.pi_b st (round32 ws (Array.unsafe_get t.pi st))
  done

(* One forward step over the active sets.  A class [r] addresses both
   its emission row and its active-state row at offset [r * s], so one
   [base] serves both tables and there is no per-kind dispatch.  Writes
   unnormalized values into the destination row and the row sum into
   [scb.(scidx)] — the destination and scale target are parameters so
   the same step serves the main alpha sweep ([alpha] / [scale]) and
   the speculative warm-up (scratch rows / [wsum] slot).  The inner sum
   reads the transposed transitions: for a fixed successor [st'] the
   predecessors walk the contiguous row [a_t.(st'*s + ..)]. *)
let fwd_step ws ~s ~(srcb : buf) ~rowp ~(dstb : buf) ~row ~base ~len ~basep
    ~lenp ~(scb : buf) ~scidx =
  let a_t = ws.a_t and e_all = ws.e_all and act = ws.act in
  let sc = ref 0. in
  for idx = 0 to len - 1 do
    let st' = Array.unsafe_get act (base + idx) in
    let trow = st' * s in
    let acc = ref 0. in
    for idxp = 0 to lenp - 1 do
      let st = Array.unsafe_get act (basep + idxp) in
      acc :=
        !acc
        +. (Ba.unsafe_get srcb (rowp + st) *. Ba.unsafe_get a_t (trow + st))
    done;
    let v = !acc *. Ba.unsafe_get e_all (base + st') in
    Ba.unsafe_set dstb (row + st') v;
    sc := !sc +. v
  done;
  Ba.unsafe_set scb scidx !sc

(* Normalize the active slots of a freshly written row by its sum,
   read back from [scb.(scidx)] where the producing step stored it,
   rounding each stored slot in float32 mode.  The sum travels through
   the scale buffer rather than as a float argument: without flambda a
   float crossing a function boundary is boxed, and this call sits on
   the per-observation hot path. *)
let normalize_row ws ~(b : buf) ~row ~base ~len ~(scb : buf) ~scidx =
  let act = ws.act in
  let inv = 1. /. Ba.unsafe_get scb scidx in
  for idx = 0 to len - 1 do
    let st = Array.unsafe_get act (base + idx) in
    Ba.unsafe_set b (row + st) (round32 ws (Ba.unsafe_get b (row + st) *. inv))
  done

(* Seed a (to-be-normalized) alpha row from the initial distribution:
   time 0 of the sequence, wherever the row lives. *)
let forward_seed ws ~(dstb : buf) ~row ~base0 ~len0 ~(scb : buf) ~scidx =
  let act = ws.act and e_all = ws.e_all and pi = ws.pi_b in
  let s0 = ref 0. in
  for idx = 0 to len0 - 1 do
    let st = Array.unsafe_get act (base0 + idx) in
    let v = Ba.unsafe_get pi st *. Ba.unsafe_get e_all (base0 + st) in
    Ba.unsafe_set dstb (row + st) v;
    s0 := !s0 +. v
  done;
  Ba.unsafe_set scb scidx !s0

(* One complete normalized forward step at [time]: the predecessor row
   is [srcb.(rowp..)] (time - 1), the destination row and scale target
   are parameters.  Raises on a zero row sum, which with the uniform
   warm-up seed only happens when the true likelihood is zero too (the
   seed dominates a positive multiple of the true alpha row). *)
let fwd_step_at ws ~s ~time ~(srcb : buf) ~rowp ~(dstb : buf) ~row ~(scb : buf)
    ~scidx =
  let cls = ws.cls and act_len = ws.act_len in
  let r = Array.unsafe_get cls time and rp = Array.unsafe_get cls (time - 1) in
  let base = r * s and len = Array.unsafe_get act_len r in
  let basep = rp * s and lenp = Array.unsafe_get act_len rp in
  fwd_step ws ~s ~srcb ~rowp ~dstb ~row ~base ~len ~basep ~lenp ~scb ~scidx;
  let sc = Ba.unsafe_get scb scidx in
  if sc <= 0. then begin
    Obs.Counter.incr m_zero;
    raise (Zero_likelihood time)
  end;
  normalize_row ws ~b:dstb ~row ~base ~len ~scb ~scidx

(* Scaled forward recursion (Rabiner's \hat{alpha}) over [t0, t1):
   writes the alpha rows and scales of those times and stores the
   chunk's logL partial in [lls.(slot)].  For [t0 = 0] the first row is
   seeded from pi (the exact serial start); otherwise the predecessor
   row for time [t0] is [srcb.(src_row..)] — a warm-up scratch row.
   Only slots listed in a time's active set are written; every later
   read is masked by the same active set, so the untouched slots are
   never observed. *)
let forward_range ws (t : model) ~slot ~t0 ~t1 ~(srcb : buf) ~src_row =
  let s = t.s in
  let alpha = ws.alpha and scale = ws.scale in
  let ll = ref 0. in
  let first =
    if t0 = 0 then begin
      let r0 = Array.unsafe_get ws.cls 0 in
      let base0 = r0 * s and len0 = Array.unsafe_get ws.act_len r0 in
      forward_seed ws ~dstb:alpha ~row:0 ~base0 ~len0 ~scb:scale ~scidx:0;
      let s0 = Ba.unsafe_get scale 0 in
      if s0 <= 0. then begin
        Obs.Counter.incr m_zero;
        raise (Zero_likelihood 0)
      end;
      normalize_row ws ~b:alpha ~row:0 ~base:base0 ~len:len0 ~scb:scale
        ~scidx:0;
      ll := log s0;
      1
    end
    else begin
      fwd_step_at ws ~s ~time:t0 ~srcb ~rowp:src_row ~dstb:alpha ~row:(t0 * s)
        ~scb:scale ~scidx:t0;
      ll := log (Ba.unsafe_get scale t0);
      t0 + 1
    end
  in
  for time = first to t1 - 1 do
    fwd_step_at ws ~s ~time ~srcb:alpha ~rowp:((time - 1) * s) ~dstb:alpha
      ~row:(time * s) ~scb:scale ~scidx:time;
    ll := !ll +. log (Ba.unsafe_get scale time)
  done;
  Ba.unsafe_set ws.lls slot !ll

(* Speculative forward warm-up for a chunk starting at [t0 > 0]: run
   the same normalized recursion over the [warmup] steps before [t0] in
   the chunk's private ping-pong scratch rows, seeded uniformly over
   the states active at the warm-up start (or exactly from pi when the
   warm-up reaches time 0, in which case the chunk is exact).  The
   normalized forward map contracts toward the true filtered
   distribution, so by [t0] the scratch row has converged to the serial
   alpha row — to the last bit, for the warm-up lengths used in
   practice.  Returns the scratch offset holding the predecessor row
   for time [t0]. *)
let forward_warm ws (t : model) ~slot ~warmup ~t0 =
  let s = t.s in
  let w0 = max 0 (t0 - warmup) in
  let warm = ws.warm and wsum = ws.wsum in
  let row_a = slot * 2 * ws.cap_s in
  let row_b = row_a + ws.cap_s in
  let r0 = Array.unsafe_get ws.cls w0 in
  let base0 = r0 * s and len0 = Array.unsafe_get ws.act_len r0 in
  if w0 = 0 then begin
    forward_seed ws ~dstb:warm ~row:row_a ~base0 ~len0 ~scb:wsum ~scidx:slot;
    let s0 = Ba.unsafe_get wsum slot in
    if s0 <= 0. then begin
      Obs.Counter.incr m_zero;
      raise (Zero_likelihood 0)
    end;
    normalize_row ws ~b:warm ~row:row_a ~base:base0 ~len:len0 ~scb:wsum
      ~scidx:slot
  end
  else begin
    let v = round32 ws (1. /. float_of_int len0) in
    for idx = 0 to len0 - 1 do
      Ba.unsafe_set warm (row_a + Array.unsafe_get ws.act (base0 + idx)) v
    done
  end;
  let src = ref row_a and dst = ref row_b in
  for time = w0 + 1 to t0 - 1 do
    fwd_step_at ws ~s ~time ~srcb:warm ~rowp:!src ~dstb:warm ~row:!dst
      ~scb:wsum ~scidx:slot;
    let swap = !src in
    src := !dst;
    dst := swap
  done;
  !src

(* One backward step at [time]: reads the successor beta row (time + 1)
   from [srcb.(src_row..)], writes the beta row for [time] into
   [dstb.(row..)].  The chunk-private [tmp] slot holds
   tmp(st') = e(st', o_{time+1}) * beta_{time+1}(st') / scale_{time+1};
   the contraction then walks contiguous rows of the row-major
   transition copy. *)
let bwd_step ws ~s ~time ~(srcb : buf) ~src_row ~(dstb : buf) ~row ~tmpoff =
  let cls = ws.cls and act_len = ws.act_len and act = ws.act in
  let r = Array.unsafe_get cls time and r1 = Array.unsafe_get cls (time + 1) in
  let base = r * s and len = Array.unsafe_get act_len r in
  let base1 = r1 * s and len1 = Array.unsafe_get act_len r1 in
  let tmp = ws.tmp and e_all = ws.e_all and a_r = ws.a_r in
  let inv = 1. /. Ba.unsafe_get ws.scale (time + 1) in
  for idx1 = 0 to len1 - 1 do
    let st' = Array.unsafe_get act (base1 + idx1) in
    Ba.unsafe_set tmp (tmpoff + st')
      (Ba.unsafe_get e_all (base1 + st')
      *. Ba.unsafe_get srcb (src_row + st')
      *. inv)
  done;
  for idx = 0 to len - 1 do
    let st = Array.unsafe_get act (base + idx) in
    let arow = st * s in
    let acc = ref 0. in
    for idx1 = 0 to len1 - 1 do
      let st' = Array.unsafe_get act (base1 + idx1) in
      acc :=
        !acc
        +. (Ba.unsafe_get a_r (arow + st') *. Ba.unsafe_get tmp (tmpoff + st'))
    done;
    Ba.unsafe_set dstb (row + st) (round32 ws !acc)
  done

(* Scaled backward recursion over [t0, t1); requires a completed
   forward pass (true scales).  The last chunk ([t1 = tt]) starts from
   the exact all-ones seed; an interior chunk's first step reads the
   warmed successor row (beta at [t1]) from [srcb.(src_row..)]. *)
let backward_range ws (t : model) ~t0 ~t1 ~tt ~(srcb : buf) ~src_row ~tmpoff =
  let s = t.s in
  let beta = ws.beta in
  let first =
    if t1 = tt then begin
      let rl = Array.unsafe_get ws.cls (tt - 1) in
      let basel = rl * s and lenl = Array.unsafe_get ws.act_len rl in
      let rowl = (tt - 1) * s in
      for idx = 0 to lenl - 1 do
        Ba.unsafe_set beta (rowl + Array.unsafe_get ws.act (basel + idx)) 1.
      done;
      tt - 2
    end
    else begin
      bwd_step ws ~s ~time:(t1 - 1) ~srcb ~src_row ~dstb:beta
        ~row:((t1 - 1) * s) ~tmpoff;
      t1 - 2
    end
  in
  for time = first downto t0 do
    bwd_step ws ~s ~time ~srcb:beta ~src_row:((time + 1) * s) ~dstb:beta
      ~row:(time * s) ~tmpoff
  done

(* Speculative backward warm-up for a chunk ending before [tt]: seed
   all-ones at [we = min (tt-1) (t1-1+warmup)] and recurse down to
   [t1] in the chunk's scratch rows.  Because the scales are the true
   forward scales and every alpha row is normalized, the recursion
   preserves <alpha_t, beta_t> = 1 exactly while the matrix products
   contract directions, so the warm row converges to the true scaled
   beta at [t1] (bit-exactly in practice; exactly whenever [we]
   reaches [tt - 1], where all-ones is the serial seed).  Returns the
   scratch offset of the row for time [t1]. *)
let backward_warm ws (t : model) ~slot ~warmup ~t1 ~tt =
  let s = t.s in
  let we = min (tt - 1) (t1 - 1 + warmup) in
  let warm = ws.warm in
  let row_a = slot * 2 * ws.cap_s in
  let row_b = row_a + ws.cap_s in
  let re = Array.unsafe_get ws.cls we in
  let basee = re * s and lene = Array.unsafe_get ws.act_len re in
  for idx = 0 to lene - 1 do
    Ba.unsafe_set warm (row_a + Array.unsafe_get ws.act (basee + idx)) 1.
  done;
  let src = ref row_a and dst = ref row_b in
  for time = we - 1 downto t1 do
    bwd_step ws ~s ~time ~srcb:warm ~src_row:!src ~dstb:warm ~row:!dst
      ~tmpoff:(slot * ws.cap_s);
    let swap = !src in
    src := !dst;
    dst := swap
  done;
  !src

(* E-step statistics for [t0, t1), fused into one ascending-time pass
   (emission/loss counts at [time], then transition statistics toward
   [time + 1]) — the two groups touch disjoint accumulator cells, so
   each cell still receives its contributions in ascending time order.
   The targets are parameters: the serial path accumulates straight
   into the final buffers, a parallel chunk into its private slot.
   Transition statistics stop at [tt - 2], matching the serial
   recursion (gamma_sum is the transition-count denominator). *)
let accumulate_range ws (t : model) ~t0 ~t1 ~tt ~tmpoff ~(xib : buf) ~xioff
    ~(gsum : buf) ~goff ~(cobs : buf) ~coff ~(closs : buf) ~loff =
  let s = t.s and m = t.m in
  let alpha = ws.alpha and beta = ws.beta and cls = ws.cls in
  let act = ws.act and act_len = ws.act_len in
  let w = ws.w and a_r = ws.a_r and e_all = ws.e_all and tmp = ws.tmp in
  let scale = ws.scale in
  for time = t0 to t1 - 1 do
    let r = Array.unsafe_get cls time in
    let base = r * s and len = Array.unsafe_get act_len r in
    let row = time * s in
    (* Emission / loss statistics, branched once per time step on the
       precomputed class. *)
    if r < m then
      for idx = 0 to len - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let g =
          Ba.unsafe_get alpha (row + st) *. Ba.unsafe_get beta (row + st)
        in
        let ko = coff + (st * m) + r in
        Ba.unsafe_set cobs ko (Ba.unsafe_get cobs ko +. g)
      done
    else
      for idx = 0 to len - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let g =
          Ba.unsafe_get alpha (row + st) *. Ba.unsafe_get beta (row + st)
        in
        let wbase = st * m in
        for j = 0 to m - 1 do
          let kl = loff + wbase + j in
          Ba.unsafe_set closs kl
            (Ba.unsafe_get closs kl +. (g *. Ba.unsafe_get w (wbase + j)))
        done
      done;
    (* Transition statistics over active pairs. *)
    if time <= tt - 2 then begin
      let r1 = Array.unsafe_get cls (time + 1) in
      let base1 = r1 * s and len1 = Array.unsafe_get act_len r1 in
      let row1 = (time + 1) * s in
      let inv = 1. /. Ba.unsafe_get scale (time + 1) in
      for idx1 = 0 to len1 - 1 do
        let st' = Array.unsafe_get act (base1 + idx1) in
        Ba.unsafe_set tmp (tmpoff + st')
          (Ba.unsafe_get e_all (base1 + st')
          *. Ba.unsafe_get beta (row1 + st')
          *. inv)
      done;
      for idx = 0 to len - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let a_ts = Ba.unsafe_get alpha (row + st) in
        let kg = goff + st in
        Ba.unsafe_set gsum kg
          (Ba.unsafe_get gsum kg
          +. (a_ts *. Ba.unsafe_get beta (row + st)));
        if a_ts > 0. then begin
          let arow = st * s in
          for idx1 = 0 to len1 - 1 do
            let st' = Array.unsafe_get act (base1 + idx1) in
            let kx = xioff + arow + st' in
            Ba.unsafe_set xib kx
              (Ba.unsafe_get xib kx
              +. (a_ts
                 *. Ba.unsafe_get a_r (arow + st')
                 *. Ba.unsafe_get tmp (tmpoff + st')))
          done
        end
      done
    end
  done
(* lint: end-hot *)

(* --- chunk-level wrappers (called by Em_sweep and the serial path) --- *)

let forward_chunk ws (t : model) ~warmup ~slot ~t0 ~t1 =
  if t0 = 0 then forward_range ws t ~slot ~t0 ~t1 ~srcb:ws.alpha ~src_row:0
  else begin
    let wr = forward_warm ws t ~slot ~warmup ~t0 in
    forward_range ws t ~slot ~t0 ~t1 ~srcb:ws.warm ~src_row:wr
  end

let backward_chunk ws (t : model) ~warmup ~slot ~t0 ~t1 ~tt =
  let tmpoff = slot * ws.cap_s in
  if t1 = tt then
    backward_range ws t ~t0 ~t1 ~tt ~srcb:ws.beta ~src_row:0 ~tmpoff
  else begin
    let wr = backward_warm ws t ~slot ~warmup ~t1 ~tt in
    backward_range ws t ~t0 ~t1 ~tt ~srcb:ws.warm ~src_row:wr ~tmpoff
  end

let clear_stats ws ~s ~m =
  fill_range ws.xi 0 (s * s) 0.;
  fill_range ws.gamma_sum 0 s 0.;
  fill_range ws.count_obs 0 (s * m) 0.;
  fill_range ws.count_loss 0 (s * m) 0.

let accumulate_direct ws (t : model) ~t0 ~t1 ~tt =
  accumulate_range ws t ~t0 ~t1 ~tt ~tmpoff:0 ~xib:ws.xi ~xioff:0
    ~gsum:ws.gamma_sum ~goff:0 ~cobs:ws.count_obs ~coff:0 ~closs:ws.count_loss
    ~loff:0

let accumulate_slot ws (t : model) ~slot ~t0 ~t1 ~tt =
  let s2 = ws.cap_s * ws.cap_s and sm = ws.cap_s * ws.cap_m in
  fill_range ws.acc_xi (slot * s2) (t.s * t.s) 0.;
  fill_range ws.acc_gamma (slot * ws.cap_s) t.s 0.;
  fill_range ws.acc_obs (slot * sm) (t.s * t.m) 0.;
  fill_range ws.acc_loss (slot * sm) (t.s * t.m) 0.;
  accumulate_range ws t ~t0 ~t1 ~tt ~tmpoff:(slot * ws.cap_s) ~xib:ws.acc_xi
    ~xioff:(slot * s2) ~gsum:ws.acc_gamma ~goff:(slot * ws.cap_s)
    ~cobs:ws.acc_obs ~coff:(slot * sm) ~closs:ws.acc_loss ~loff:(slot * sm)

(* Fold chunk [slot]'s private statistics into the final accumulators.
   Must be called in ascending slot order so the combine is a pure
   function of the chunking, independent of the pool schedule. *)
let combine_slot ws ~slot ~s ~m =
  let s2 = ws.cap_s * ws.cap_s and sm = ws.cap_s * ws.cap_m in
  for i = 0 to (s * s) - 1 do
    Ba.set ws.xi i (Ba.get ws.xi i +. Ba.get ws.acc_xi ((slot * s2) + i))
  done;
  for i = 0 to s - 1 do
    Ba.set ws.gamma_sum i
      (Ba.get ws.gamma_sum i +. Ba.get ws.acc_gamma ((slot * ws.cap_s) + i))
  done;
  for i = 0 to (s * m) - 1 do
    Ba.set ws.count_obs i
      (Ba.get ws.count_obs i +. Ba.get ws.acc_obs ((slot * sm) + i));
    Ba.set ws.count_loss i
      (Ba.get ws.count_loss i +. Ba.get ws.acc_loss ((slot * sm) + i))
  done

(* Total log-likelihood of a [k]-chunk forward pass: the per-chunk
   partials summed in ascending chunk order (a fixed association, so
   the result depends on the chunking but not on the schedule). *)
let ll_total ws ~k =
  let ll = ref 0. in
  for i = 0 to k - 1 do
    ll := !ll +. Ba.get ws.lls i
  done;
  !ll

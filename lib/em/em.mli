(** Shared allocation-free EM kernel for the paper's two model families.

    Both the HMM (per-state symbol emissions, {!Hmm}) and the MMHD
    (state = (hidden, symbol) pair, {!Mmhd}) are instances of one
    generic structure: a Markov chain over [s] states where state [st]
    emits delay symbol [j] with probability [b.(st * m + j)] and a probe
    whose symbol is [j] is lost — observed as a missing value — with
    probability [c.(j)].  The HMM uses a free row-stochastic [b]
    (re-estimated by EM); the MMHD uses a fixed 0/1 indicator [b]
    ([b.(st * m + j) = 1] iff [st mod m = j]), which EM must not touch.

    The kernel provides the scaled forward–backward recursion, the
    loss-as-missing-value emission logic (Section V of the paper), the
    EM step, and restart racing.  All [O(T * s)] sweep state lives in
    unboxed [Bigarray] float64 buffers preallocated in a reusable
    {!workspace} (optionally emulating a single-precision sweep, see
    {!precision}).  States with zero emission probability for an
    observation are skipped via per-symbol active-state lists, which
    restores the MMHD's [O(T * n * s)] sparse cost inside the generic
    kernel.

    Hot-path layout: observations are collapsed once per sweep into
    integer {e observation classes} (symbol [j], or [m] for a loss)
    indexing a single class-major emission table and the active-state
    lists, so emission rows are computed once per class per iteration
    and the sweeps never touch the boxed [int option] sequence; and the
    workspace keeps a transposed copy of the transition matrix so the
    forward recursion's inner sums walk contiguous rows, like the
    backward pass and M-step do over the untransposed matrix.  These
    are pure layout changes: results are bit-identical to the direct
    formulation.

    Long sweeps can additionally be cut into chunks that run
    concurrently on the persistent {!Stats.Pool} domains — see
    {!Sweep} and the [?sweep] arguments below.  For a fixed policy the
    pooled and inline runs are bit-identical; only the chunk count
    changes the floating-point association (DESIGN.md §10). *)

type model = Em_kernel.model = {
  s : int;  (** number of states *)
  m : int;  (** number of delay symbols *)
  pi : float array;  (** initial distribution, length [s] *)
  a : float array;  (** transitions, [s * s] row-major: [a.(i * s + k)] *)
  b : float array;  (** symbol emission, [s * m] row-major, row-stochastic *)
  c : float array;  (** [c.(j)] = P(loss | symbol [j]), length [m] *)
}

type observation = int option
(** [Some j]: delay symbol [j] observed; [None]: probe lost. *)

type precision = Em_kernel.precision =
  | F64  (** native double-precision sweeps (the default) *)
  | F32
      (** emulate a single-precision sweep: every stored sweep value
          (normalized alpha/beta rows, prepared model tables) is
          rounded to the nearest float32, while the E-step accumulators
          stay double — "mixed precision" in the GPU-kernel sense.  The
          log-likelihood drifts from [F64] by an
          {!Stats.Float_cmp}-boundable relative error. *)

type fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
      (** Restarts discarded as degenerate ({!Zero_likelihood}) by
          {!fit_restarts}; always [0] from {!fit_from}. *)
}

val pp_fit_stats : Format.formatter -> fit_stats -> unit
(** ["42 iterations (converged), logL=-123.456, 1 degenerate restart
    skipped"]-style one-liner. *)

exception Zero_likelihood of int
(** Raised (with the offending time index) when an observation has zero
    probability under the current model, e.g. after an emission row
    collapses.  {!fit_restarts} treats this as a degenerate restart and
    skips it instead of aborting. *)

(** Within-sweep parallelism policies (chunked forward/backward/
    accumulate passes over {!Stats.Pool}). *)
module Sweep : sig
  type policy

  val policy :
    ?chunks:int ->
    ?domains:int ->
    ?warmup:int ->
    ?min_chunk:int ->
    unit ->
    policy
  (** [chunks] (default 1): target chunk count K — the time axis is cut
      into K near-equal ranges whose boundary states are recovered by
      speculative warm-up recursions of [warmup] steps (default 512,
      floored at 1).  [domains] (default [chunks]): pool participants.
      [min_chunk] (default 4096, floored at [2 * warmup]): the serial
      crossover — a sweep of [tt] steps uses at most [tt / min_chunk]
      chunks, falling back to the serial path for short sequences.
      Raises [Invalid_argument] on non-positive [chunks] or
      [domains]. *)

  val serial : policy
  (** [policy ()]: one chunk, no pool — the plain serial sweep, and the
      default of every [?sweep] argument. *)

  val chunks : policy -> int
  val domains : policy -> int

  val effective_chunks : policy -> tt:int -> int
  (** The chunk count actually used for a [tt]-step sweep, after the
      [min_chunk] crossover cut. *)
end

type workspace
(** Reusable scratch buffers ([alpha], [beta], [scale], [xi],
    expected-count accumulators, active-state lists, per-chunk warm-up
    scratch).  Buffers grow on demand and are retained between calls,
    so a fit of [iters] iterations performs no per-iteration [O(T * s)]
    allocation.  A workspace must not be shared across {e concurrent}
    fits; the chunked sweep hands disjoint ranges of one workspace to
    the pool, which is the one sanctioned concurrent use. *)

val workspace : ?precision:precision -> unit -> workspace
(** A fresh (empty) workspace; [precision] defaults to {!F64}. *)

val precision : workspace -> precision

val domain_ws : unit -> workspace
(** The calling domain's (float64) workspace, held in domain-local
    storage and reused across calls — the idiomatic way to get an
    allocation-free series of fits without threading a workspace
    explicitly. *)

val log_likelihood :
  ws:workspace -> ?sweep:Sweep.policy -> model -> observation array -> float
(** Scaled-forward log-likelihood (forward pass only).
    @raise Zero_likelihood on an impossible observation. *)

val state_posteriors : ws:workspace -> model -> observation array -> float array array
(** [gamma.(t).(st)] = P(state [st] at time [t] | observations).  The
    result is freshly allocated; the sweep itself uses the workspace. *)

val virtual_delay_pmf : ws:workspace -> model -> observation array -> float array
(** Equation (5): the posterior delay-symbol distribution of the lost
    probes, averaged over all loss instants.  Requires at least one
    loss ([Invalid_argument] otherwise). *)

val em_step :
  ws:workspace ->
  ?sweep:Sweep.policy ->
  update_b:bool ->
  model ->
  observation array ->
  model
(** One EM iteration.  When [update_b] is false the emission matrix [b]
    is shared, not re-estimated (the MMHD case, where [b] is
    structural).  Re-estimated parameter blocks are floored away from
    zero (transitions and any re-estimated [b] at 1e-12 before row
    normalization, [c] clamped to [1e-9, 1 - 1e-9]) so that a symbol's
    emission probability cannot collapse to exactly zero during EM. *)

(** Streaming EM over decayed sufficient statistics — the per-path
    recursion of the fleet layer ([lib/fleet]).  A {!Incremental.stats}
    value holds the E-step accumulators (transition statistics, state
    denominators, per-symbol observation and loss counts, batch-start
    posteriors) of every observation batch appended so far, each
    multiplied by a forgetting factor [lambda] per {!Incremental.decay};
    {!Incremental.m_step} re-estimates a model from the decayed totals
    exactly as {!em_step} does from a single batch.  One
    [decay]/[append]/[m_step] round per epoch is one online-EM
    iteration whose cost is O(batch), independent of the history
    length. *)
module Incremental : sig
  type stats
  (** Decayed sufficient-statistic accumulators for one monitored
      sequence ([O(s^2 + s*m)] floats; no per-observation state). *)

  val create : s:int -> m:int -> stats
  (** Empty statistics for an [s]-state, [m]-symbol model.  Raises
      [Invalid_argument] on non-positive dimensions. *)

  val reset : stats -> unit
  (** Zero every accumulator and drop the carried filtered
      distribution (e.g. after a {!Zero_likelihood} recovery). *)

  val decay : stats -> lambda:float -> unit
  (** Multiply every accumulator (and the running weight and
      log-likelihood) by [lambda] in [\[0, 1\]]; [lambda = 1] is the
      bitwise identity.  Call once per epoch before {!append}: the
      effective memory is a [1 / (1 - lambda)]-batch exponential
      window. *)

  val append :
    ws:workspace -> ?carry:bool -> stats -> model -> observation array -> float
  (** Run one serial forward–backward sweep of [model] over the batch
      and add its E-step statistics to the accumulators; returns the
      batch's log-likelihood.  With [carry] (the default) the sweep is
      seeded from the previous batch's filtered end-distribution
      propagated one step through the model's transitions, so the
      forward likelihood factorizes across batches exactly
      ([logL(b1 ++ b2) = append b1 + append b2] up to the association
      of the final log sums); smoothing, however, is truncated at batch
      boundaries and the boundary transition's expected counts are not
      accumulated — the two approximations of the streaming recursion.
      [carry:false] (or a first batch) seeds from [model.pi].
      Raises [Invalid_argument] on an empty batch or a dimension
      mismatch, {!Zero_likelihood} on an impossible observation (the
      statistics are untouched in both cases). *)

  val m_step : ?update_b:bool -> stats -> model -> model
  (** Re-estimate the model from the decayed totals: the exact mirror
      of {!em_step}'s M-step (same zero-row fallbacks to the current
      parameters, same floors), so with [lambda = 1] and a single
      appended batch the result is bit-identical to
      [em_step model batch].  [update_b] defaults to [false] (the MMHD
      case).  Raises [Invalid_argument] before the first {!append}. *)

  val loss_mass : stats -> float array
  (** Per-symbol virtual-delay mass of the lost probes,
      [sum_st count_loss(st, j)] — the streaming analogue of the
      Eq. (5) numerator.  Normalizing it yields the VQD estimate the
      SDCL/WDCL tests consume ({!Dcl.Vqd.of_pmf}). *)

  val filtered_end : stats -> float array
  (** Copy of the filtered state distribution at the last appended
      instant (all zeros before the first append). *)

  val weight : stats -> float
  (** Decayed total observation count — the effective sample size
      behind the current statistics. *)

  val log_likelihood : stats -> float
  (** Decayed sum of per-batch log-likelihoods. *)

  val batches : stats -> int
  (** Number of batches appended since creation / {!reset}. *)

  val xi : stats -> float array
  (** Copies of the raw decayed accumulators, for tests and
      introspection: transition statistics ([s*s]), transition
      denominators ([s]), per-symbol observation and loss counts
      ([s*m] each). *)

  val gamma_sum : stats -> float array
  val count_obs : stats -> float array
  val count_loss : stats -> float array
end

val set_iteration_trace :
  (iteration:int -> log_likelihood:float -> unit) option -> unit
(** Install (or remove, with [None]) a process-wide per-iteration hook:
    after every EM sweep, {!fit_from} calls it with the 1-based
    iteration number and the log-likelihood of the {e updated} model.
    Costs one extra forward pass per iteration while installed; the
    hook may fire concurrently from several domains during
    {!fit_restarts}. *)

val fit_from :
  ws:workspace ->
  ?eps:float ->
  ?max_iter:int ->
  ?sweep:Sweep.policy ->
  update_b:bool ->
  model ->
  observation array ->
  model * fit_stats
(** EM from an explicit starting point until the largest absolute
    parameter change drops below [eps] (default 1e-3) or [max_iter]
    (default 300) iterations. *)

val fit_restarts :
  ?eps:float ->
  ?max_iter:int ->
  ?domains:int ->
  ?sweep:Sweep.policy ->
  restarts:int ->
  update_b:bool ->
  init:(int -> model) ->
  observation array ->
  model * fit_stats
(** Race [restarts] EM runs started from [init 0 .. init (restarts -
    1)] and return the winner: converged beats non-converged, then
    higher log-likelihood, then lower restart index.  With [domains > 1]
    the restarts run on that many concurrent multicore domains (each
    with its own workspace); because every restart's starting point is a
    pure function of its index, the winning model is bit-identical to
    the serial ([domains = 1]) run.  A [?sweep] policy additionally
    chunks each restart's sweeps; nested inside restart-level
    parallelism the chunks run inline, so the two levels compose
    without changing results.  A restart that hits {!Zero_likelihood}
    is skipped; [Failure] is raised only if every restart degenerates.
    [init] must be safe to call from any domain (per-index pre-split
    RNGs satisfy this). *)

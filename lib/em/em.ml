type model = {
  s : int;
  m : int;
  pi : float array;
  a : float array;
  b : float array;
  c : float array;
}

type observation = int option

type fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
}

let pp_fit_stats ppf s =
  Format.fprintf ppf "%d iterations (%s), logL=%.3f, %d degenerate restart%s skipped"
    s.iterations
    (if s.converged then "converged" else "max-iter")
    s.log_likelihood s.skipped_restarts
    (if s.skipped_restarts = 1 then "" else "s")

exception Zero_likelihood of int

(* Telemetry: registered once at module load, recorded only while Obs
   collection is enabled (each call is a single flag check otherwise).
   Span timings use integer nanoseconds end to end, so the disabled
   path allocates nothing even inside the per-iteration loop. *)
let m_iterations =
  Obs.Counter.make ~help:"EM iterations run (E+M steps), all fits and restarts"
    "dcl_em_iterations_total"

let m_fits = Obs.Counter.make ~help:"EM fits completed" "dcl_em_fits_total"

let m_sweep =
  Obs.Histogram.make ~help:"Wall time of one EM iteration (one em_step)"
    "dcl_em_sweep_seconds"

let m_zero =
  Obs.Counter.make ~help:"Observations found impossible under the current model"
    "dcl_em_zero_likelihood_total"

let m_degenerate =
  Obs.Counter.make ~help:"Restarts skipped after hitting a zero-likelihood degeneracy"
    "dcl_em_degenerate_restarts_total"

let m_last_ll =
  Obs.Gauge.make ~help:"Final log-likelihood of the most recently completed fit"
    "dcl_em_last_log_likelihood"

(* Per-iteration log-likelihood trace hook: when installed, [fit_from]
   computes the likelihood after every EM step (one extra forward pass
   per iteration) and reports it.  The hook may be called concurrently
   from racing restart domains; it must be thread-safe. *)
let iteration_trace :
    (iteration:int -> log_likelihood:float -> unit) option Atomic.t =
  (* lint: allow R2 lock-free hook cell read by racing restart domains *)
  Atomic.make None

(* lint: allow R2 installing the trace hook must be visible to all domains *)
let set_iteration_trace h = Atomic.set iteration_trace h

(* Floors applied by the M-step so no re-estimated emission or
   transition probability can collapse to exactly zero (a collapsed row
   makes a later observation impossible and used to abort the whole
   fit).  Small enough not to disturb the EM fixed points at the
   paper's 1e-3 convergence threshold. *)
let prob_floor = 1e-12
let c_floor = 1e-9

type workspace = {
  (* T*S sweep buffers, row-major by time. *)
  mutable alpha : float array;
  mutable beta : float array;
  mutable scale : float array; (* T *)
  mutable tmp : float array; (* S *)
  (* Observation classes: cls.(t) = j for [Some j], m for [None].  A
     class is both the row of the emission table and the row of the
     active-state table, so the sweeps never touch the boxed
     [int option] observations. *)
  mutable cls : int array; (* T *)
  (* Per-iteration emission table, class-major: row j < m holds
     e(st, Some j) at e_all.(j*s + st), row m holds the loss emission
     e(st, None) at e_all.(m*s + st). *)
  mutable e_all : float array; (* (M+1)*S *)
  mutable w : float array; (* S*M, state-major loss-symbol weights *)
  (* Transposed transitions, a_t.(st'*s + st) = a.(st*s + st'), so the
     forward recursion's inner sum over predecessor states walks a
     contiguous row (the backward pass and the M-step already walk
     contiguous rows of [a] itself). *)
  mutable a_t : float array; (* S*S *)
  (* Active-state lists: row j < m lists states that can emit symbol j,
     row m lists states with positive loss emission. *)
  mutable act : int array; (* (M+1)*S *)
  mutable act_len : int array; (* M+1 *)
  (* EM accumulators. *)
  mutable xi : float array; (* S*S *)
  mutable gamma_sum : float array; (* S *)
  mutable count_obs : float array; (* S*M *)
  mutable count_loss : float array; (* S*M *)
  mutable cap_t : int;
  mutable cap_s : int;
  mutable cap_m : int;
}

let workspace () =
  {
    alpha = [||];
    beta = [||];
    scale = [||];
    tmp = [||];
    cls = [||];
    e_all = [||];
    w = [||];
    a_t = [||];
    act = [||];
    act_len = [||];
    xi = [||];
    gamma_sum = [||];
    count_obs = [||];
    count_loss = [||];
    cap_t = 0;
    cap_s = 0;
    cap_m = 0;
  }

(* Grow (never shrink) every buffer to hold a [tt]-step sweep of an
   [s]-state, [m]-symbol model.  Amortized: a workspace reused across
   iterations and restarts allocates nothing after the first call. *)
let reserve ws ~tt ~s ~m =
  if s > ws.cap_s || m > ws.cap_m then begin
    let cs = max s ws.cap_s and cm = max m ws.cap_m in
    ws.tmp <- Array.make cs 0.;
    ws.e_all <- Array.make ((cm + 1) * cs) 0.;
    ws.w <- Array.make (cs * cm) 0.;
    ws.a_t <- Array.make (cs * cs) 0.;
    ws.act <- Array.make ((cm + 1) * cs) 0;
    ws.act_len <- Array.make (cm + 1) 0;
    ws.xi <- Array.make (cs * cs) 0.;
    ws.gamma_sum <- Array.make cs 0.;
    ws.count_obs <- Array.make (cs * cm) 0.;
    ws.count_loss <- Array.make (cs * cm) 0.;
    ws.cap_s <- cs;
    ws.cap_m <- cm;
    (* Force the T*S buffers to regrow with the new row width. *)
    ws.cap_t <- 0
  end;
  if tt > ws.cap_t then begin
    let ct = max tt ws.cap_t in
    ws.alpha <- Array.make (ct * ws.cap_s) 0.;
    ws.beta <- Array.make (ct * ws.cap_s) 0.;
    ws.scale <- Array.make ct 0.;
    ws.cls <- Array.make ct 0;
    ws.cap_t <- ct
  end

(* Collapse the boxed observations into integer classes once per sweep;
   every pass then reads the flat [cls] array instead of matching an
   [int option] (a pointer dereference plus a branch) at each of its
   per-time-step accesses. *)
let classify ws (t : model) obs =
  let m = t.m and cls = ws.cls in
  for time = 0 to Array.length obs - 1 do
    Array.unsafe_set cls time
      (match Array.unsafe_get obs time with Some j -> j | None -> m)
  done

(* Fill the emission table, active-state lists and transposed
   transitions for [t] — once per class per iteration, however many
   times each class occurs in the sequence.  The missing-value emission
   (paper Section V) lives here, shared by both model families:
     e(st, Some j) = b_st(j) * (1 - c_j)
     e(st, None)   = sum_j b_st(j) * c_j
     w(st, j)      = b_st(j) * c_j / e(st, None)   (loss-symbol posterior) *)
let prepare ws (t : model) =
  let s = t.s and m = t.m in
  let b = t.b and c = t.c in
  let e_all = ws.e_all and w = ws.w in
  let act = ws.act and act_len = ws.act_len in
  for j = 0 to m - 1 do
    let one_minus_c = 1. -. Array.unsafe_get c j in
    let row = j * s in
    let len = ref 0 in
    for st = 0 to s - 1 do
      let e = Array.unsafe_get b ((st * m) + j) *. one_minus_c in
      Array.unsafe_set e_all (row + st) e;
      if e > 0. then begin
        Array.unsafe_set act (row + !len) st;
        incr len
      end
    done;
    act_len.(j) <- !len
  done;
  let loss_row = m * s in
  let loss_len = ref 0 in
  for st = 0 to s - 1 do
    let acc = ref 0. in
    let base = st * m in
    for j = 0 to m - 1 do
      acc := !acc +. (Array.unsafe_get b (base + j) *. Array.unsafe_get c j)
    done;
    let e = !acc in
    Array.unsafe_set e_all (loss_row + st) e;
    if e > 0. then begin
      Array.unsafe_set act (loss_row + !loss_len) st;
      incr loss_len;
      let inv = 1. /. e in
      for j = 0 to m - 1 do
        Array.unsafe_set w (base + j)
          (Array.unsafe_get b (base + j) *. Array.unsafe_get c j *. inv)
      done
    end
    else
      for j = 0 to m - 1 do
        Array.unsafe_set w (base + j) 0.
      done
  done;
  act_len.(m) <- !loss_len;
  let a = t.a and a_t = ws.a_t in
  for st = 0 to s - 1 do
    let row = st * s in
    for st' = 0 to s - 1 do
      Array.unsafe_set a_t ((st' * s) + st) (Array.unsafe_get a (row + st'))
    done
  done

(* lint: hot *)
(* One forward step over the active sets.  A class [r] addresses both
   its emission row and its active-state row at offset [r * s], so one
   [base] serves both tables and there is no per-kind dispatch.  Writes
   unnormalized alpha values and the scale into the workspace directly
   so no float crosses a function boundary (a non-inlined float return
   is boxed, and these run once per active state per time step).  The
   inner sum reads the transposed transitions: for a fixed successor
   [st'] the predecessors walk the contiguous row [a_t.(st'*s + ..)]. *)
let fwd_step a_t act alpha e_all ~base ~len ~basep ~lenp ~row ~rowp ~s scale
    ~time =
  let sc = ref 0. in
  for idx = 0 to len - 1 do
    let st' = Array.unsafe_get act (base + idx) in
    let trow = st' * s in
    let acc = ref 0. in
    for idxp = 0 to lenp - 1 do
      let st = Array.unsafe_get act (basep + idxp) in
      acc :=
        !acc
        +. Array.unsafe_get alpha (rowp + st) *. Array.unsafe_get a_t (trow + st)
    done;
    let v = !acc *. Array.unsafe_get e_all (base + st') in
    Array.unsafe_set alpha (row + st') v;
    sc := !sc +. v
  done;
  Array.unsafe_set scale time !sc

(* Scaled forward pass (Rabiner's \hat{alpha}) over [tt] classified
   steps; returns the log-likelihood.  Only slots listed in the time's
   active set are written; every later read is masked by the same
   active set, so the untouched slots are never observed. *)
let forward ws (t : model) tt =
  let s = t.s in
  let alpha = ws.alpha and scale = ws.scale and a_t = ws.a_t in
  let e_all = ws.e_all and cls = ws.cls in
  let act = ws.act and act_len = ws.act_len in
  let ll = ref 0. in
  let r0 = Array.unsafe_get cls 0 in
  let base0 = r0 * s and len0 = act_len.(r0) in
  let s0 = ref 0. in
  for idx = 0 to len0 - 1 do
    let st = Array.unsafe_get act (base0 + idx) in
    let v = Array.unsafe_get t.pi st *. Array.unsafe_get e_all (base0 + st) in
    Array.unsafe_set alpha st v;
    s0 := !s0 +. v
  done;
  if !s0 <= 0. then begin
    Obs.Counter.incr m_zero;
    raise (Zero_likelihood 0)
  end;
  scale.(0) <- !s0;
  ll := log !s0;
  let inv0 = 1. /. !s0 in
  for idx = 0 to len0 - 1 do
    let st = Array.unsafe_get act (base0 + idx) in
    Array.unsafe_set alpha st (Array.unsafe_get alpha st *. inv0)
  done;
  for time = 1 to tt - 1 do
    let r = Array.unsafe_get cls time and rp = Array.unsafe_get cls (time - 1) in
    let base = r * s and len = act_len.(r) in
    let basep = rp * s and lenp = act_len.(rp) in
    let row = time * s and rowp = (time - 1) * s in
    fwd_step a_t act alpha e_all ~base ~len ~basep ~lenp ~row ~rowp ~s scale
      ~time;
    let sc = Array.unsafe_get scale time in
    if sc <= 0. then begin
      Obs.Counter.incr m_zero;
      raise (Zero_likelihood time)
    end;
    ll := !ll +. log sc;
    let inv = 1. /. sc in
    for idx = 0 to len - 1 do
      let st' = Array.unsafe_get act (base + idx) in
      Array.unsafe_set alpha ((row + st')) (Array.unsafe_get alpha (row + st') *. inv)
    done
  done;
  !ll

(* Fill [tmp.(st')] = e(st', o1) * beta.(row1 + st') / scale.(time1)
   for the active states of the time's class; shared by the backward
   pass and the xi accumulation of the EM step.  [base1] addresses both
   the class's active row and its emission row, so the observed and
   loss cases are one code path; the scale is re-read from the
   workspace array rather than passed as a float argument, for the same
   boxing reason as {!fwd_step}. *)
let fill_tmp ws ~base1 ~len1 ~row1 ~time1 =
  let act = ws.act and beta = ws.beta and tmp = ws.tmp and e_all = ws.e_all in
  let inv = 1. /. Array.unsafe_get ws.scale time1 in
  for idx1 = 0 to len1 - 1 do
    let st' = Array.unsafe_get act (base1 + idx1) in
    Array.unsafe_set tmp st'
      (Array.unsafe_get e_all (base1 + st')
      *. Array.unsafe_get beta (row1 + st')
      *. inv)
  done

(* Scaled backward pass; requires a completed forward pass (scales).
   The inner sum over successors walks a contiguous row of [a]
   directly. *)
let backward ws (t : model) tt =
  let s = t.s in
  let beta = ws.beta and tmp = ws.tmp and a = t.a in
  let act = ws.act and act_len = ws.act_len and cls = ws.cls in
  let rl = Array.unsafe_get cls (tt - 1) in
  let basel = rl * s and lenl = act_len.(rl) in
  let rowl = (tt - 1) * s in
  for idx = 0 to lenl - 1 do
    Array.unsafe_set beta (rowl + Array.unsafe_get act (basel + idx)) 1.
  done;
  for time = tt - 2 downto 0 do
    let r = Array.unsafe_get cls time and r1 = Array.unsafe_get cls (time + 1) in
    let base = r * s and len = act_len.(r) in
    let base1 = r1 * s and len1 = act_len.(r1) in
    let row = time * s and row1 = (time + 1) * s in
    fill_tmp ws ~base1 ~len1 ~row1 ~time1:(time + 1);
    for idx = 0 to len - 1 do
      let st = Array.unsafe_get act (base + idx) in
      let acc = ref 0. in
      let arow = st * s in
      for idx1 = 0 to len1 - 1 do
        let st' = Array.unsafe_get act (base1 + idx1) in
        acc := !acc +. (Array.unsafe_get a (arow + st') *. Array.unsafe_get tmp st')
      done;
      Array.unsafe_set beta (row + st) !acc
    done
  done
(* lint: end-hot *)

let check_obs name obs = if Array.length obs = 0 then invalid_arg (name ^ ": empty observation sequence")

let sweep ws t obs =
  let tt = Array.length obs in
  reserve ws ~tt ~s:t.s ~m:t.m;
  classify ws t obs;
  prepare ws t;
  let ll = forward ws t tt in
  backward ws t tt;
  ll

let log_likelihood ~ws t obs =
  check_obs "Em.log_likelihood" obs;
  let tt = Array.length obs in
  reserve ws ~tt ~s:t.s ~m:t.m;
  classify ws t obs;
  prepare ws t;
  forward ws t tt

let state_posteriors ~ws t obs =
  check_obs "Em.state_posteriors" obs;
  ignore (sweep ws t obs);
  let s = t.s in
  let act = ws.act and act_len = ws.act_len and cls = ws.cls in
  Array.init (Array.length obs) (fun time ->
      let gamma = Array.make s 0. in
      let r = cls.(time) in
      let base = r * s and row = time * s in
      for idx = 0 to act_len.(r) - 1 do
        let st = Array.unsafe_get act (base + idx) in
        gamma.(st) <- Array.unsafe_get ws.alpha (row + st) *. Array.unsafe_get ws.beta (row + st)
      done;
      gamma)

let virtual_delay_pmf ~ws t obs =
  check_obs "Em.virtual_delay_pmf" obs;
  if not (Array.exists (fun o -> o = None) obs) then
    invalid_arg "Em.virtual_delay_pmf: no loss in the sequence";
  ignore (sweep ws t obs);
  let s = t.s and m = t.m in
  let alpha = ws.alpha and beta = ws.beta and w = ws.w and cls = ws.cls in
  let act = ws.act and act_len = ws.act_len in
  let acc = Array.make m 0. in
  let base = m * s and len = act_len.(m) in
  for time = 0 to Array.length obs - 1 do
    if cls.(time) = m then begin
      let row = time * s in
      for idx = 0 to len - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let g = Array.unsafe_get alpha (row + st) *. Array.unsafe_get beta (row + st) in
        let wbase = st * m in
        for j = 0 to m - 1 do
          acc.(j) <- acc.(j) +. (g *. Array.unsafe_get w (wbase + j))
        done
      done
    end
  done;
  Stats.Histogram.normalize acc

(* Floor every entry of [row] (length [n] at [off]) and normalize it to
   sum to one. *)
let floor_normalize row off n =
  let sum = ref 0. in
  for k = 0 to n - 1 do
    let v = Array.unsafe_get row (off + k) in
    let v = if v < prob_floor then prob_floor else v in
    Array.unsafe_set row (off + k) v;
    sum := !sum +. v
  done;
  let inv = 1. /. !sum in
  for k = 0 to n - 1 do
    Array.unsafe_set row (off + k) (Array.unsafe_get row (off + k) *. inv)
  done

let clamp_c p = Float.max c_floor (Float.min (1. -. c_floor) p)

let em_step ~ws ~update_b (t : model) obs =
  check_obs "Em.em_step" obs;
  let tt = Array.length obs in
  let s = t.s and m = t.m in
  ignore (sweep ws t obs);
  let alpha = ws.alpha and beta = ws.beta and tmp = ws.tmp and cls = ws.cls in
  let act = ws.act and act_len = ws.act_len in
  let xi = ws.xi and gamma_sum = ws.gamma_sum in
  let count_obs = ws.count_obs and count_loss = ws.count_loss in
  Array.fill xi 0 (s * s) 0.;
  Array.fill gamma_sum 0 s 0.;
  Array.fill count_obs 0 (s * m) 0.;
  Array.fill count_loss 0 (s * m) 0.;
  (* lint: hot *)
  (* Transition statistics over active pairs. *)
  for time = 0 to tt - 2 do
    let r = Array.unsafe_get cls time and r1 = Array.unsafe_get cls (time + 1) in
    let base = r * s and len = act_len.(r) in
    let base1 = r1 * s and len1 = act_len.(r1) in
    let row = time * s and row1 = (time + 1) * s in
    fill_tmp ws ~base1 ~len1 ~row1 ~time1:(time + 1);
    for idx = 0 to len - 1 do
      let st = Array.unsafe_get act (base + idx) in
      let a_ts = Array.unsafe_get alpha (row + st) in
      gamma_sum.(st) <-
        gamma_sum.(st) +. (a_ts *. Array.unsafe_get beta (row + st));
      if a_ts > 0. then begin
        let arow = st * s in
        for idx1 = 0 to len1 - 1 do
          let st' = Array.unsafe_get act (base1 + idx1) in
          Array.unsafe_set xi (arow + st')
            (Array.unsafe_get xi (arow + st')
            +. (a_ts *. Array.unsafe_get t.a (arow + st') *. Array.unsafe_get tmp st'))
        done
      end
    done
  done;
  (* Emission / loss statistics, branched once per time step on the
     precomputed class. *)
  let w = ws.w in
  for time = 0 to tt - 1 do
    let r = Array.unsafe_get cls time in
    let row = time * s in
    if r < m then begin
      let base = r * s in
      for idx = 0 to act_len.(r) - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let g = Array.unsafe_get alpha (row + st) *. Array.unsafe_get beta (row + st) in
        count_obs.((st * m) + r) <- count_obs.((st * m) + r) +. g
      done
    end
    else begin
      let base = m * s in
      for idx = 0 to act_len.(m) - 1 do
        let st = Array.unsafe_get act (base + idx) in
        let g = Array.unsafe_get alpha (row + st) *. Array.unsafe_get beta (row + st) in
        let cbase = st * m in
        for j = 0 to m - 1 do
          count_loss.(cbase + j) <-
            count_loss.(cbase + j) +. (g *. Array.unsafe_get w (cbase + j))
        done
      done
    end
  done;
  (* lint: end-hot *)
  (* M-step.  gamma 0 sums to 1 only up to rounding; renormalize. *)
  let pi' = Array.make s 0. in
  let r0 = cls.(0) in
  let base0 = r0 * s in
  for idx = 0 to act_len.(r0) - 1 do
    let st = Array.unsafe_get act (base0 + idx) in
    pi'.(st) <- Float.max 0. (alpha.(st) *. beta.(st))
  done;
  let pi_sum = Array.fold_left ( +. ) 0. pi' in
  let pi' = Array.map (fun p -> p /. pi_sum) pi' in
  let a' = Array.make (s * s) 0. in
  for st = 0 to s - 1 do
    let off = st * s in
    if gamma_sum.(st) <= 0. then Array.blit t.a off a' off s
    else begin
      let inv = 1. /. gamma_sum.(st) in
      for k = 0 to s - 1 do
        a'.(off + k) <- xi.(off + k) *. inv
      done;
      floor_normalize a' off s
    end
  done;
  let b' =
    if not update_b then t.b
    else begin
      let b' = Array.make (s * m) 0. in
      for st = 0 to s - 1 do
        let off = st * m in
        let sum = ref 0. in
        for j = 0 to m - 1 do
          let v = count_obs.(off + j) +. count_loss.(off + j) in
          b'.(off + j) <- v;
          sum := !sum +. v
        done;
        if !sum <= 0. then Array.blit t.b off b' off m else floor_normalize b' off m
      done;
      b'
    end
  in
  let c' =
    Array.init m (fun j ->
        let lost = ref 0. and seen = ref 0. in
        for st = 0 to s - 1 do
          let l = count_loss.((st * m) + j) in
          lost := !lost +. l;
          seen := !seen +. count_obs.((st * m) + j) +. l
        done;
        if !seen <= 0. then t.c.(j) else clamp_c (!lost /. !seen))
  in
  { t with pi = pi'; a = a'; b = b'; c = c' }

let max_abs_diff u v =
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let e = abs_float (x -. v.(i)) in
      if e > !d then d := e)
    u;
  !d

let param_change old_t new_t =
  let d = max_abs_diff old_t.pi new_t.pi in
  let d = Float.max d (max_abs_diff old_t.a new_t.a) in
  let d = if old_t.b == new_t.b then d else Float.max d (max_abs_diff old_t.b new_t.b) in
  Float.max d (max_abs_diff old_t.c new_t.c)

let fit_from ~ws ?(eps = 1e-3) ?(max_iter = 300) ~update_b t0 obs =
  let rec iterate t iter =
    let t0_ns = Obs.Span.start () in
    let t' = em_step ~ws ~update_b t obs in
    Obs.Span.stop m_sweep t0_ns;
    (* lint: allow R2 lock-free read of the shared trace hook *)
    (match Atomic.get iteration_trace with
    | None -> ()
    | Some hook ->
        hook ~iteration:(iter + 1) ~log_likelihood:(log_likelihood ~ws t' obs));
    let change = param_change t t' in
    if change <= eps || iter + 1 >= max_iter then begin
      let stats =
        {
          iterations = iter + 1;
          log_likelihood = log_likelihood ~ws t' obs;
          converged = change <= eps;
          skipped_restarts = 0;
        }
      in
      if Obs.enabled () then begin
        Obs.Counter.add m_iterations stats.iterations;
        Obs.Counter.incr m_fits;
        Obs.Gauge.set m_last_ll stats.log_likelihood
      end;
      (t', stats)
    end
    else iterate t' (iter + 1)
  in
  iterate t0 0

(* One workspace per domain, reused across every fit that domain runs.
   Because the domains behind Stats.Pool persist for the process
   lifetime, these workspaces stay warm across pool jobs: back-to-back
   parallel fits allocate nothing for their sweep buffers. *)
let domain_ws_key = Domain.DLS.new_key workspace (* lint: allow R2 DLS keeps one warm workspace per pool domain *)
let domain_ws () = Domain.DLS.get domain_ws_key (* lint: allow R2 DLS lookup of the per-domain workspace *)

let fit_restarts ?eps ?max_iter ?(domains = 1) ~restarts ~update_b ~init obs =
  if restarts <= 0 then invalid_arg "Em.fit_restarts: restarts must be positive";
  let attempt k =
    try Some (fit_from ~ws:(domain_ws ()) ?eps ?max_iter ~update_b (init k) obs)
    with Zero_likelihood _ -> None
  in
  let results = Stats.Par.map_range ~domains restarts attempt in
  let best = ref None in
  let skipped = ref 0 in
  Array.iter
    (fun cand ->
      match (cand, !best) with
      | None, _ -> incr skipped
      | Some c, None -> best := Some c
      | Some ((_, cs) as c), Some (_, bs) ->
          let better =
            (cs.converged && not bs.converged)
            || (cs.converged = bs.converged && cs.log_likelihood > bs.log_likelihood)
          in
          if better then best := Some c)
    results;
  if !skipped > 0 then Obs.Counter.add m_degenerate !skipped;
  match !best with
  | Some (model, stats) -> (model, { stats with skipped_restarts = !skipped })
  | None -> failwith "Em.fit_restarts: every restart hit a zero-likelihood degeneracy"

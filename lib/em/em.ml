(* Public EM surface: model/fit types, the EM update and convergence
   logic, and restart racing.  The numerical inner loops live in
   Em_kernel (Bigarray hot state, range kernels); the chunked
   multi-domain sweep drivers live in Em_sweep, re-exported here as
   [Sweep]. *)

module Kernel = Em_kernel
module Sweep = Em_sweep
module Ba = Bigarray.Array1

type model = Em_kernel.model = {
  s : int;
  m : int;
  pi : float array;
  a : float array;
  b : float array;
  c : float array;
}

type precision = Em_kernel.precision = F64 | F32

type observation = int option

type fit_stats = {
  iterations : int;
  log_likelihood : float;
  converged : bool;
  skipped_restarts : int;
}

let pp_fit_stats ppf s =
  Format.fprintf ppf "%d iterations (%s), logL=%.3f, %d degenerate restart%s skipped"
    s.iterations
    (if s.converged then "converged" else "max-iter")
    s.log_likelihood s.skipped_restarts
    (if s.skipped_restarts = 1 then "" else "s")

exception Zero_likelihood = Em_kernel.Zero_likelihood

(* Telemetry: registered once at module load, recorded only while Obs
   collection is enabled (each call is a single flag check otherwise).
   Span timings use integer nanoseconds end to end, so the disabled
   path allocates nothing even inside the per-iteration loop. *)
let m_iterations =
  Obs.Counter.make ~help:"EM iterations run (E+M steps), all fits and restarts"
    "dcl_em_iterations_total"

let m_fits = Obs.Counter.make ~help:"EM fits completed" "dcl_em_fits_total"

let m_sweep =
  Obs.Histogram.make ~help:"Wall time of one EM iteration (one em_step)"
    "dcl_em_sweep_seconds"

let m_degenerate =
  Obs.Counter.make ~help:"Restarts skipped after hitting a zero-likelihood degeneracy"
    "dcl_em_degenerate_restarts_total"

let m_last_ll =
  Obs.Gauge.make ~help:"Final log-likelihood of the most recently completed fit"
    "dcl_em_last_log_likelihood"

(* Per-iteration log-likelihood trace hook: when installed, [fit_from]
   computes the likelihood after every EM step (one extra forward pass
   per iteration) and reports it.  The hook may be called concurrently
   from racing restart domains; it must be thread-safe. *)
let iteration_trace :
    (iteration:int -> log_likelihood:float -> unit) option Atomic.t =
  (* lint: allow R2 lock-free hook cell read by racing restart domains *)
  Atomic.make None

(* lint: allow R2 installing the trace hook must be visible to all domains *)
let set_iteration_trace h = Atomic.set iteration_trace h

(* Floors applied by the M-step so no re-estimated emission or
   transition probability can collapse to exactly zero (a collapsed row
   makes a later observation impossible and used to abort the whole
   fit).  Small enough not to disturb the EM fixed points at the
   paper's 1e-3 convergence threshold. *)
let prob_floor = 1e-12
let c_floor = 1e-9

type workspace = Em_kernel.workspace

let workspace ?precision () = Kernel.create ?precision ()
let precision (ws : workspace) = ws.precision
let domain_ws = Sweep.domain_ws

let check_obs name obs =
  if Array.length obs = 0 then invalid_arg (name ^ ": empty observation sequence")

let run_sweep ~sweep ws (t : model) obs =
  let tt = Array.length obs in
  Kernel.reserve ws ~tt ~s:t.s ~m:t.m ~k:(Sweep.effective_chunks sweep ~tt);
  Kernel.classify ws t obs;
  Kernel.prepare ws t;
  let ll = Sweep.forward ws t sweep ~tt in
  Sweep.backward ws t sweep ~tt;
  ll

let log_likelihood ~ws ?(sweep = Sweep.serial) t obs =
  check_obs "Em.log_likelihood" obs;
  let tt = Array.length obs in
  Kernel.reserve ws ~tt ~s:t.s ~m:t.m ~k:(Sweep.effective_chunks sweep ~tt);
  Kernel.classify ws t obs;
  Kernel.prepare ws t;
  Sweep.forward ws t sweep ~tt

let state_posteriors ~(ws : workspace) t obs =
  check_obs "Em.state_posteriors" obs;
  ignore (run_sweep ~sweep:Sweep.serial ws t obs);
  let s = t.s in
  let act = ws.act and act_len = ws.act_len and cls = ws.cls in
  Array.init (Array.length obs) (fun time ->
      let gamma = Array.make s 0. in
      let r = cls.(time) in
      let base = r * s and row = time * s in
      for idx = 0 to act_len.(r) - 1 do
        let st = act.(base + idx) in
        gamma.(st) <- Ba.get ws.alpha (row + st) *. Ba.get ws.beta (row + st)
      done;
      gamma)

let virtual_delay_pmf ~(ws : workspace) t obs =
  check_obs "Em.virtual_delay_pmf" obs;
  if not (Array.exists (fun o -> o = None) obs) then
    invalid_arg "Em.virtual_delay_pmf: no loss in the sequence";
  ignore (run_sweep ~sweep:Sweep.serial ws t obs);
  let s = t.s and m = t.m in
  let cls = ws.cls and act = ws.act and act_len = ws.act_len in
  let acc = Array.make m 0. in
  let base = m * s and len = act_len.(m) in
  for time = 0 to Array.length obs - 1 do
    if cls.(time) = m then begin
      let row = time * s in
      for idx = 0 to len - 1 do
        let st = act.(base + idx) in
        let g = Ba.get ws.alpha (row + st) *. Ba.get ws.beta (row + st) in
        let wbase = st * m in
        for j = 0 to m - 1 do
          acc.(j) <- acc.(j) +. (g *. Ba.get ws.w (wbase + j))
        done
      done
    end
  done;
  Stats.Histogram.normalize acc

(* Floor every entry of [row] (length [n] at [off]) and normalize it to
   sum to one. *)
let floor_normalize row off n =
  let sum = ref 0. in
  for k = 0 to n - 1 do
    let v = Array.unsafe_get row (off + k) in
    let v = if v < prob_floor then prob_floor else v in
    Array.unsafe_set row (off + k) v;
    sum := !sum +. v
  done;
  let inv = 1. /. !sum in
  for k = 0 to n - 1 do
    Array.unsafe_set row (off + k) (Array.unsafe_get row (off + k) *. inv)
  done

let clamp_c p = Float.max c_floor (Float.min (1. -. c_floor) p)

let em_step ~(ws : workspace) ?(sweep = Sweep.serial) ~update_b (t : model) obs =
  check_obs "Em.em_step" obs;
  let tt = Array.length obs in
  let s = t.s and m = t.m in
  ignore (run_sweep ~sweep ws t obs);
  Sweep.accumulate ws t sweep ~tt;
  (* M-step over the accumulated statistics.  gamma 0 sums to 1 only up
     to rounding; renormalize. *)
  let cls = ws.cls and act = ws.act and act_len = ws.act_len in
  let pi' = Array.make s 0. in
  let r0 = cls.(0) in
  let base0 = r0 * s in
  for idx = 0 to act_len.(r0) - 1 do
    let st = act.(base0 + idx) in
    pi'.(st) <- Float.max 0. (Ba.get ws.alpha st *. Ba.get ws.beta st)
  done;
  let pi_sum = Array.fold_left ( +. ) 0. pi' in
  let pi' = Array.map (fun p -> p /. pi_sum) pi' in
  let a' = Array.make (s * s) 0. in
  for st = 0 to s - 1 do
    let off = st * s in
    let g = Ba.get ws.gamma_sum st in
    if g <= 0. then Array.blit t.a off a' off s
    else begin
      let inv = 1. /. g in
      for k = 0 to s - 1 do
        a'.(off + k) <- Ba.get ws.xi (off + k) *. inv
      done;
      floor_normalize a' off s
    end
  done;
  let b' =
    if not update_b then t.b
    else begin
      let b' = Array.make (s * m) 0. in
      for st = 0 to s - 1 do
        let off = st * m in
        let sum = ref 0. in
        for j = 0 to m - 1 do
          let v = Ba.get ws.count_obs (off + j) +. Ba.get ws.count_loss (off + j) in
          b'.(off + j) <- v;
          sum := !sum +. v
        done;
        if !sum <= 0. then Array.blit t.b off b' off m else floor_normalize b' off m
      done;
      b'
    end
  in
  let c' =
    Array.init m (fun j ->
        let lost = ref 0. and seen = ref 0. in
        for st = 0 to s - 1 do
          let l = Ba.get ws.count_loss ((st * m) + j) in
          lost := !lost +. l;
          seen := !seen +. Ba.get ws.count_obs ((st * m) + j) +. l
        done;
        if !seen <= 0. then t.c.(j) else clamp_c (!lost /. !seen))
  in
  { t with pi = pi'; a = a'; b = b'; c = c' }

(* Streaming EM over decayed sufficient statistics (the fleet layer's
   per-path recursion).  A [stats] value accumulates the E-step
   statistics of every appended batch, scaled by a forgetting factor
   between batches; the M-step then re-estimates the model from the
   decayed totals exactly as [em_step] does from one batch's totals.
   [append] runs one serial forward–backward sweep over the new batch
   only, so the per-epoch cost is O(batch), not O(history). *)
module Incremental = struct
  type stats = {
    s : int;
    m : int;
    xi : float array; (* s*s decayed transition statistics *)
    gamma_sum : float array; (* s, transition denominators *)
    count_obs : float array; (* s*m *)
    count_loss : float array; (* s*m *)
    pi0 : float array; (* s, decayed batch-start posteriors *)
    fend : float array; (* s, filtered distribution at the last instant *)
    mutable primed : bool; (* [fend] holds a real distribution *)
    mutable weight : float;
    mutable log_likelihood : float;
    mutable batches : int;
  }

  let create ~s ~m =
    if s <= 0 || m <= 0 then
      invalid_arg "Em.Incremental.create: dimensions must be positive";
    {
      s;
      m;
      xi = Array.make (s * s) 0.;
      gamma_sum = Array.make s 0.;
      count_obs = Array.make (s * m) 0.;
      count_loss = Array.make (s * m) 0.;
      pi0 = Array.make s 0.;
      fend = Array.make s 0.;
      primed = false;
      weight = 0.;
      log_likelihood = 0.;
      batches = 0;
    }

  let reset st =
    Array.fill st.xi 0 (st.s * st.s) 0.;
    Array.fill st.gamma_sum 0 st.s 0.;
    Array.fill st.count_obs 0 (st.s * st.m) 0.;
    Array.fill st.count_loss 0 (st.s * st.m) 0.;
    Array.fill st.pi0 0 st.s 0.;
    Array.fill st.fend 0 st.s 0.;
    st.primed <- false;
    st.weight <- 0.;
    st.log_likelihood <- 0.;
    st.batches <- 0

  let scale_into a lambda =
    for i = 0 to Array.length a - 1 do
      Array.unsafe_set a i (Array.unsafe_get a i *. lambda)
    done

  (* Multiplying by 1.0 is the bitwise identity, so [decay ~lambda:1.]
     is exact and needs no float-equality guard. *)
  let decay st ~lambda =
    if lambda < 0. || lambda > 1. then
      invalid_arg "Em.Incremental.decay: lambda must be in [0, 1]";
    scale_into st.xi lambda;
    scale_into st.gamma_sum lambda;
    scale_into st.count_obs lambda;
    scale_into st.count_loss lambda;
    scale_into st.pi0 lambda;
    st.weight <- st.weight *. lambda;
    st.log_likelihood <- st.log_likelihood *. lambda

  let dims_check name st (t : model) =
    if t.s <> st.s || t.m <> st.m then
      invalid_arg (name ^ ": model dimensions do not match the statistics")

  let append ~(ws : workspace) ?(carry = true) st (t : model) obs =
    dims_check "Em.Incremental.append" st t;
    check_obs "Em.Incremental.append" obs;
    let s = st.s and m = st.m in
    let tt = Array.length obs in
    Obs.Trace.span_begin "em.append" tt;
    (* Seed the batch from the carried filtered distribution propagated
       one step through the current transitions: the previous batch
       ended at instant T-1, this one starts at the next instant, so
       pi_batch = A^T fend.  The boundary transition's expected counts
       are not accumulated (the only cross-batch approximation; the
       forward likelihood itself factorizes exactly). *)
    let t =
      if carry && st.primed then begin
        let pi = Array.make s 0. in
        for dst = 0 to s - 1 do
          let acc = ref 0. in
          for src = 0 to s - 1 do
            acc := !acc +. (st.fend.(src) *. t.a.((src * s) + dst))
          done;
          pi.(dst) <- !acc
        done;
        { t with pi }
      end
      else t
    in
    let ll =
      match run_sweep ~sweep:Sweep.serial ws t obs with
      | ll -> ll
      | exception e ->
          (* Zero_likelihood from the sweep: close the span so the
             recorder's begin/end stream stays balanced. *)
          Obs.Trace.span_end "em.append";
          raise e
    in
    Kernel.clear_stats ws ~s ~m;
    Kernel.accumulate_direct ws t ~t0:0 ~t1:tt ~tt;
    for i = 0 to (s * s) - 1 do
      st.xi.(i) <- st.xi.(i) +. Ba.get ws.xi i
    done;
    for i = 0 to s - 1 do
      st.gamma_sum.(i) <- st.gamma_sum.(i) +. Ba.get ws.gamma_sum i
    done;
    for i = 0 to (s * m) - 1 do
      st.count_obs.(i) <- st.count_obs.(i) +. Ba.get ws.count_obs i;
      st.count_loss.(i) <- st.count_loss.(i) +. Ba.get ws.count_loss i
    done;
    (* Batch-start posterior (the [em_step] pi target), restricted to
       the states active at the batch's first instant; and the filtered
       end, the normalized alpha row of the last instant.  Only active
       slots of an alpha row are written by the sweep, so both extracts
       mask by the instant's active set. *)
    let r0 = ws.cls.(0) in
    let base0 = r0 * s in
    for idx = 0 to ws.act_len.(r0) - 1 do
      let state = ws.act.(base0 + idx) in
      st.pi0.(state) <-
        st.pi0.(state)
        +. Float.max 0. (Ba.get ws.alpha state *. Ba.get ws.beta state)
    done;
    Array.fill st.fend 0 s 0.;
    let rl = ws.cls.(tt - 1) in
    let basel = rl * s and rowl = (tt - 1) * s in
    for idx = 0 to ws.act_len.(rl) - 1 do
      let state = ws.act.(basel + idx) in
      st.fend.(state) <- Ba.get ws.alpha (rowl + state)
    done;
    st.primed <- true;
    st.weight <- st.weight +. float_of_int tt;
    st.log_likelihood <- st.log_likelihood +. ll;
    st.batches <- st.batches + 1;
    Obs.Trace.span_end "em.append";
    ll

  (* Mirror of [em_step]'s M-step, reading the decayed accumulators:
     with [lambda = 1] and a single appended batch the two produce
     bit-identical models. *)
  let m_step ?(update_b = false) st (t : model) =
    dims_check "Em.Incremental.m_step" st t;
    if st.batches = 0 then
      invalid_arg "Em.Incremental.m_step: no appended batch";
    let s = st.s and m = st.m in
    let pi_sum = Array.fold_left ( +. ) 0. st.pi0 in
    let pi' =
      if pi_sum > 0. then Array.map (fun p -> p /. pi_sum) st.pi0
      else Array.copy t.pi
    in
    let a' = Array.make (s * s) 0. in
    for state = 0 to s - 1 do
      let off = state * s in
      let g = st.gamma_sum.(state) in
      if g <= 0. then Array.blit t.a off a' off s
      else begin
        let inv = 1. /. g in
        for k = 0 to s - 1 do
          a'.(off + k) <- st.xi.(off + k) *. inv
        done;
        floor_normalize a' off s
      end
    done;
    let b' =
      if not update_b then t.b
      else begin
        let b' = Array.make (s * m) 0. in
        for state = 0 to s - 1 do
          let off = state * m in
          let sum = ref 0. in
          for j = 0 to m - 1 do
            let v = st.count_obs.(off + j) +. st.count_loss.(off + j) in
            b'.(off + j) <- v;
            sum := !sum +. v
          done;
          if !sum <= 0. then Array.blit t.b off b' off m
          else floor_normalize b' off m
        done;
        b'
      end
    in
    let c' =
      Array.init m (fun j ->
          let lost = ref 0. and seen = ref 0. in
          for state = 0 to s - 1 do
            let l = st.count_loss.((state * m) + j) in
            lost := !lost +. l;
            seen := !seen +. st.count_obs.((state * m) + j) +. l
          done;
          if !seen <= 0. then t.c.(j) else clamp_c (!lost /. !seen))
    in
    { t with pi = pi'; a = a'; b = b'; c = c' }

  let loss_mass st =
    Array.init st.m (fun j ->
        let acc = ref 0. in
        for state = 0 to st.s - 1 do
          acc := !acc +. st.count_loss.((state * st.m) + j)
        done;
        !acc)

  let filtered_end st = Array.copy st.fend
  let weight st = st.weight
  let log_likelihood st = st.log_likelihood
  let batches st = st.batches
  let xi st = Array.copy st.xi
  let gamma_sum st = Array.copy st.gamma_sum
  let count_obs st = Array.copy st.count_obs
  let count_loss st = Array.copy st.count_loss
end

let max_abs_diff u v =
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let e = abs_float (x -. v.(i)) in
      if e > !d then d := e)
    u;
  !d

let param_change old_t new_t =
  let d = max_abs_diff old_t.pi new_t.pi in
  let d = Float.max d (max_abs_diff old_t.a new_t.a) in
  let d = if old_t.b == new_t.b then d else Float.max d (max_abs_diff old_t.b new_t.b) in
  Float.max d (max_abs_diff old_t.c new_t.c)

let fit_from ~ws ?(eps = 1e-3) ?(max_iter = 300) ?(sweep = Sweep.serial)
    ~update_b t0 obs =
  let rec iterate t iter =
    let t0_ns = Obs.Span.start () in
    Obs.Trace.span_begin "em.sweep" (iter + 1);
    let t' =
      match em_step ~ws ~sweep ~update_b t obs with
      | t' ->
          Obs.Trace.span_end "em.sweep";
          t'
      | exception e ->
          Obs.Trace.span_end "em.sweep";
          raise e
    in
    Obs.Span.stop m_sweep t0_ns;
    (* lint: allow R2 lock-free read of the shared trace hook *)
    (match Atomic.get iteration_trace with
    | None -> ()
    | Some hook ->
        hook ~iteration:(iter + 1) ~log_likelihood:(log_likelihood ~ws ~sweep t' obs));
    let change = param_change t t' in
    if change <= eps || iter + 1 >= max_iter then begin
      let stats =
        {
          iterations = iter + 1;
          log_likelihood = log_likelihood ~ws ~sweep t' obs;
          converged = change <= eps;
          skipped_restarts = 0;
        }
      in
      if Obs.enabled () then begin
        Obs.Counter.add m_iterations stats.iterations;
        Obs.Counter.incr m_fits;
        Obs.Gauge.set m_last_ll stats.log_likelihood
      end;
      (t', stats)
    end
    else iterate t' (iter + 1)
  in
  iterate t0 0

let fit_restarts ?eps ?max_iter ?(domains = 1) ?sweep ~restarts ~update_b ~init
    obs =
  if restarts <= 0 then invalid_arg "Em.fit_restarts: restarts must be positive";
  let attempt k =
    Obs.Trace.span_begin "em.fit" k;
    match fit_from ~ws:(domain_ws ()) ?eps ?max_iter ?sweep ~update_b (init k) obs with
    | r ->
        Obs.Trace.span_end "em.fit";
        Some r
    | exception Zero_likelihood _ ->
        Obs.Trace.instant "em.zero_likelihood" k;
        Obs.Trace.span_end "em.fit";
        None
  in
  let results = Stats.Par.map_range ~domains restarts attempt in
  let best = ref None in
  let skipped = ref 0 in
  Array.iter
    (fun cand ->
      match (cand, !best) with
      | None, _ -> incr skipped
      | Some c, None -> best := Some c
      | Some ((_, cs) as c), Some (_, bs) ->
          let better =
            (cs.converged && not bs.converged)
            || (cs.converged = bs.converged && cs.log_likelihood > bs.log_likelihood)
          in
          if better then best := Some c)
    results;
  if !skipped > 0 then Obs.Counter.add m_degenerate !skipped;
  match !best with
  | Some (model, stats) -> (model, { stats with skipped_restarts = !skipped })
  | None -> failwith "Em.fit_restarts: every restart hit a zero-likelihood degeneracy"

(* Within-sweep parallelism for the EM kernel: split the time axis into
   K chunks on the persistent Stats.Pool, with speculative warm-up at
   the chunk boundaries (Em_kernel) and a serial fallback when the
   per-chunk range drops below the crossover threshold.

   Determinism contract: for a fixed policy, the pooled run and the
   inline ([domains = 1]) run execute the identical chunked arithmetic
   over disjoint buffer ranges, so the results are bit-identical —
   only the chunk count K changes the floating-point association.
   Nested inside a restart-parallel pool item, Stats.Pool.run degrades
   to the inline loop, so restart- and sweep-level parallelism compose
   without changing results. *)

type policy = { chunks : int; domains : int; warmup : int; min_chunk : int }

let policy ?(chunks = 1) ?domains ?(warmup = 512) ?(min_chunk = 4096) () =
  if chunks < 1 then invalid_arg "Em.Sweep.policy: chunks must be positive";
  let domains = match domains with Some d -> d | None -> chunks in
  if domains < 1 then invalid_arg "Em.Sweep.policy: domains must be positive";
  let warmup = max 1 warmup in
  (* A chunk shorter than two warm-ups spends more time speculating
     than sweeping; the crossover floor keeps the parallel path an
     actual win. *)
  let min_chunk = max min_chunk (2 * warmup) in
  { chunks; domains; warmup; min_chunk }

let serial = policy ()
let chunks p = p.chunks
let domains p = p.domains

let m_chunks =
  Obs.Counter.make ~help:"Sweep chunks evaluated by the chunked EM drivers"
    "dcl_em_sweep_chunks_total"

let m_fallback =
  Obs.Counter.make
    ~help:
      "Chunked sweeps that fell back to a single chunk (sequence below the \
       crossover threshold)"
    "dcl_em_sweep_serial_fallback_total"

let h_chunks =
  Obs.Histogram.make ~help:"Chunks per EM sweep pass"
    ~buckets:(Obs.Histogram.linear_buckets ~lo:1. ~width:1. ~n:16)
    "dcl_em_sweep_chunks_per_sweep"

let h_phase =
  Obs.Histogram.make
    ~help:"Wall time of one chunked sweep phase (forward, backward or \
           accumulate)"
    "dcl_em_sweep_phase_seconds"

(* Effective chunk count for a [tt]-step sweep: the policy's K, cut
   down so no chunk is shorter than [min_chunk] (the serial-crossover
   heuristic). *)
let effective_chunks p ~tt =
  if p.chunks <= 1 then 1 else max 1 (min p.chunks (tt / p.min_chunk))

(* Chunk [i] of [k] covers [i*tt/k, (i+1)*tt/k): bounds are a pure
   function of (tt, k), never of the schedule. *)
let chunk_lo ~tt ~k i = i * tt / k
let chunk_hi ~tt ~k i = (i + 1) * tt / k

(* Run [f 0 .. f (k-1)], on the pool when the policy asks for domains.
   Items write disjoint workspace ranges, so pooled and inline runs are
   bit-identical; exceptions surface as the lowest-index item's, same
   as the inline loop's first raise. *)
let run p k f =
  if k = 1 || p.domains <= 1 then
    for i = 0 to k - 1 do
      f i
    done
  else Stats.Pool.run ~participants:p.domains k f

let note_chunks p k =
  if Obs.enabled () then begin
    if p.chunks > 1 && k = 1 then Obs.Counter.incr m_fallback;
    Obs.Counter.add m_chunks k;
    Obs.Histogram.observe h_chunks (float_of_int k)
  end

let forward ws (t : Em_kernel.model) p ~tt =
  let k = effective_chunks p ~tt in
  note_chunks p k;
  let t0_ns = Obs.Span.start () in
  run p k (fun i ->
      Em_kernel.forward_chunk ws t ~warmup:p.warmup ~slot:i
        ~t0:(chunk_lo ~tt ~k i) ~t1:(chunk_hi ~tt ~k i));
  Obs.Span.stop h_phase t0_ns;
  Em_kernel.ll_total ws ~k

let backward ws (t : Em_kernel.model) p ~tt =
  let k = effective_chunks p ~tt in
  let t0_ns = Obs.Span.start () in
  run p k (fun i ->
      Em_kernel.backward_chunk ws t ~warmup:p.warmup ~slot:i
        ~t0:(chunk_lo ~tt ~k i) ~t1:(chunk_hi ~tt ~k i) ~tt);
  Obs.Span.stop h_phase t0_ns

let accumulate ws (t : Em_kernel.model) p ~tt =
  let k = effective_chunks p ~tt in
  let t0_ns = Obs.Span.start () in
  Em_kernel.clear_stats ws ~s:t.s ~m:t.m;
  if k = 1 then Em_kernel.accumulate_direct ws t ~t0:0 ~t1:tt ~tt
  else begin
    run p k (fun i ->
        Em_kernel.accumulate_slot ws t ~slot:i ~t0:(chunk_lo ~tt ~k i)
          ~t1:(chunk_hi ~tt ~k i) ~tt);
    (* Ascending combine: the final statistics depend on the chunking,
       not on which domain ran which chunk. *)
    for i = 0 to k - 1 do
      Em_kernel.combine_slot ws ~slot:i ~s:t.s ~m:t.m
    done
  end;
  Obs.Span.stop h_phase t0_ns

(* One workspace per domain, reused across every fit that domain runs.
   Because the domains behind Stats.Pool persist for the process
   lifetime, these workspaces stay warm across pool jobs: back-to-back
   parallel fits allocate nothing for their sweep buffers. *)
let domain_ws_key = Domain.DLS.new_key (fun () -> Em_kernel.create ())
let domain_ws () = Domain.DLS.get domain_ws_key

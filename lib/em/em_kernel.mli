(** Bigarray-backed hot state and range kernels for the shared EM
    sweep (library-internal; the public surface is {!Em}).

    The kernels are written over explicit time ranges [[t0, t1)] and a
    chunk [slot] addressing per-chunk scratch, so one code path serves
    the serial sweep (one chunk covering the sequence) and the chunked
    parallel sweep driven by {!Em_sweep}.  The workspace record is
    exposed transparently so {!Em}'s M-step and posterior extractors
    can read the sweep buffers without a forest of accessors. *)

module Ba = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t

type precision = F64 | F32

type model = {
  s : int;
  m : int;
  pi : float array;
  a : float array;
  b : float array;
  c : float array;
}

exception Zero_likelihood of int

type workspace = {
  precision : precision;
  f32 : bool;
  r32 : (float, Bigarray.float32_elt, Bigarray.c_layout) Ba.t;
  mutable alpha : buf;
  mutable beta : buf;
  mutable scale : buf;
  mutable cls : int array;
  mutable e_all : buf;
  mutable w : buf;
  mutable a_r : buf;
  mutable a_t : buf;
  mutable pi_b : buf;
  mutable act : int array;
  mutable act_len : int array;
  mutable xi : buf;
  mutable gamma_sum : buf;
  mutable count_obs : buf;
  mutable count_loss : buf;
  mutable tmp : buf;
  mutable warm : buf;
  mutable wsum : buf;
  mutable lls : buf;
  mutable acc_xi : buf;
  mutable acc_gamma : buf;
  mutable acc_obs : buf;
  mutable acc_loss : buf;
  mutable cap_t : int;
  mutable cap_s : int;
  mutable cap_m : int;
  mutable cap_k : int;
}

val create : ?precision:precision -> unit -> workspace
(** A fresh (empty) workspace; [precision] defaults to [F64]. *)

val reserve : workspace -> tt:int -> s:int -> m:int -> k:int -> unit
(** Grow (never shrink) every buffer for a [tt]-step, [k]-chunk sweep
    of an [s]-state, [m]-symbol model.  Amortized allocation-free on
    reuse. *)

val classify : workspace -> model -> int option array -> unit
(** Collapse the observations into integer classes in [cls] (symbol
    [j], or [m] for a loss). *)

val prepare : workspace -> model -> unit
(** Fill the emission table, loss weights, active-state lists and
    transition copies for the model (rounded to float32 in [F32]
    mode). *)

val forward_chunk :
  workspace -> model -> warmup:int -> slot:int -> t0:int -> t1:int -> unit
(** Forward recursion over [[t0, t1)]: exact from pi when [t0 = 0],
    otherwise speculatively warmed over the [warmup] steps before
    [t0].  Stores the chunk's logL partial in [lls.(slot)].
    @raise Zero_likelihood on an impossible observation. *)

val backward_chunk :
  workspace ->
  model ->
  warmup:int ->
  slot:int ->
  t0:int ->
  t1:int ->
  tt:int ->
  unit
(** Backward recursion over [[t0, t1)]: exact all-ones seed when
    [t1 = tt], otherwise warmed over the [warmup] steps past [t1].
    Requires a completed forward pass (true scales). *)

val clear_stats : workspace -> s:int -> m:int -> unit
(** Zero the final E-step accumulators. *)

val accumulate_direct : workspace -> model -> t0:int -> t1:int -> tt:int -> unit
(** Accumulate the E-step statistics of [[t0, t1)] straight into the
    final accumulators (serial path). *)

val accumulate_slot :
  workspace -> model -> slot:int -> t0:int -> t1:int -> tt:int -> unit
(** Accumulate into chunk [slot]'s private accumulators (cleared
    first); combine afterwards with {!combine_slot}. *)

val combine_slot : workspace -> slot:int -> s:int -> m:int -> unit
(** Fold chunk [slot]'s private statistics into the final accumulators;
    call in ascending slot order for a schedule-independent result. *)

val ll_total : workspace -> k:int -> float
(** Sum of the [k] per-chunk logL partials, in ascending chunk order. *)

(* Persistent work pool over multicore domains.

   Worker domains are spawned once per process (lazily, on the first
   submission that wants them) and then reused for every subsequent
   job, so a fan-out site pays Domain.spawn/Domain.join once instead of
   on every call.  Keeping the domains alive also keeps their
   domain-local state — in particular the EM workspaces held in
   [Domain.DLS] by [Em.domain_ws] — warm across jobs.

   A job is a range [0 .. n-1] of independent items.  The caller
   submits it, workers and the caller pull index-range chunks off the
   job under a mutex, evaluate them, and the caller returns when every
   item has been evaluated.  Because each item writes only its own
   result slot, the result is independent of which domain ran which
   chunk; scheduling is dynamic but the outcome is deterministic. *)

type job = {
  run : int -> unit;
  n : int;
  chunk : int;
  mutable next : int; (* first unissued index; [n] once exhausted *)
  mutable in_flight : int; (* chunks currently being evaluated *)
  mutable failed : (int * exn) option; (* lowest-index failure *)
  submitted_ns : int; (* Obs.Span.now_ns at submission; 0 when obs is off *)
  mutable busy_ns : int; (* total chunk-evaluation time (under [mutex]) *)
}

(* Telemetry (no-ops while Obs collection is disabled).  Per-chunk
   recording lives behind a single [Obs.enabled] check per chunk, so
   the scheduling hot path is untouched when observability is off. *)
let m_jobs = Obs.Counter.make ~help:"Pool jobs submitted" "dcl_pool_jobs_total"
let m_items = Obs.Counter.make ~help:"Pool items evaluated" "dcl_pool_items_total"

let m_chunks =
  Obs.Counter.make ~help:"Index-range chunks pulled off the job queue"
    "dcl_pool_chunks_total"

let m_queue_wait =
  Obs.Histogram.make
    ~help:"Delay between job submission and the start of each of its chunks"
    "dcl_pool_queue_wait_seconds"

let m_workers =
  Obs.Gauge.make ~help:"Persistent worker domains spawned so far" "dcl_pool_workers"

let m_utilization =
  Obs.Gauge.make
    ~help:"Busy fraction of the participating domains during the last pool job"
    "dcl_pool_utilization_ratio"

let m_busy =
  Obs.Counter.make ~help:"Total chunk-evaluation time across all domains"
    "dcl_pool_busy_seconds_total"

(* Per-evaluating-domain item counters: one per worker (labeled by its
   spawn index) plus one for the submitting caller's own chunks. *)
let worker_items idx =
  Obs.Counter.make
    ~labels:[ ("worker", string_of_int idx) ]
    ~help:"Items evaluated per pool domain (caller = submitting domain)"
    "dcl_pool_worker_items_total"

let caller_items =
  Obs.Counter.make
    ~labels:[ ("worker", "caller") ]
    ~help:"Items evaluated per pool domain (caller = submitting domain)"
    "dcl_pool_worker_items_total"

let mutex = Mutex.create ()

(* Signalled when a job with unissued chunks is installed. *)
let work = Condition.create ()

(* Signalled when the last in-flight chunk of a job completes. *)
let idle = Condition.create ()

(* At most one job at a time; [submit] serializes callers. *)
(* lint: owner shared guarded-by mutex *)
let current : job option ref = ref None
let submit_mutex = Mutex.create ()
(* lint: owner shared guarded-by submit_mutex *)
let spawned = ref 0
(* lint: owner shared guarded-by submit_mutex *)
let handles : unit Domain.t list ref = ref []
(* lint: owner shared guarded-by mutex *)
let quit = ref false

(* Set while the current domain is evaluating chunks, so a nested
   submission from inside a job runs inline instead of deadlocking on
   [submit_mutex]. *)
let in_job_key = Domain.DLS.new_key (fun () -> ref false)

let inside_job () = !(Domain.DLS.get in_job_key)

let size () = max 1 (Domain.recommended_domain_count ())
let worker_count () = !spawned

(* Worker cap: machine size minus the participating caller, unless
   overridden (tests and benches raise it to exercise the concurrent
   path on small machines). *)
(* lint: owner driver *)
let capacity_override = ref None
let capacity () = match !capacity_override with Some c -> c | None -> size () - 1
let set_capacity c =
  if c <= 0 then invalid_arg "Pool.set_capacity: capacity must be positive";
  capacity_override := Some c

(* Pull and evaluate chunks of [j] until none are left.  Called (by
   workers and the submitting caller alike) with [mutex] held; returns
   with [mutex] held.  Item exceptions are recorded, never raised here:
   the job keeps the failure with the lowest item index, which is
   deterministic because chunks are issued in increasing index order —
   by the time item [i] is issued, every chunk containing a smaller
   index has been issued and will run to completion. *)
let eval_chunks ~items_c j =
  let flag = Domain.DLS.get in_job_key in
  flag := true;
  while j.next < j.n do
    let lo = j.next in
    let hi = min j.n (lo + j.chunk) in
    j.next <- hi;
    j.in_flight <- j.in_flight + 1;
    Mutex.unlock mutex;
    let tr = Obs.Trace.enabled () in
    let t0 =
      if Obs.enabled () || tr then begin
        let t0 = Obs.Span.now_ns () in
        if Obs.enabled () then begin
          if j.submitted_ns <> 0 then
            Obs.Histogram.observe m_queue_wait
              (float_of_int (t0 - j.submitted_ns) *. 1e-9);
          Obs.Counter.incr m_chunks;
          Obs.Counter.add m_items (hi - lo);
          Obs.Counter.add items_c (hi - lo)
        end;
        if tr then begin
          (* The queue-wait span reconstructs the gap between job
             submission and this chunk starting, on the shard of the
             domain that picked the chunk up; arg = first item index. *)
          if j.submitted_ns <> 0 then begin
            Obs.Trace.span_begin_at "pool.queue_wait" lo j.submitted_ns;
            Obs.Trace.span_end_at "pool.queue_wait" t0
          end;
          Obs.Trace.span_begin_at "pool.chunk" lo t0
        end;
        t0
      end
      else 0
    in
    let err =
      let i = ref lo in
      try
        while !i < hi do
          j.run !i;
          incr i
        done;
        None
      with e -> Some (!i, e)
    in
    if tr then Obs.Trace.span_end "pool.chunk";
    (* lint: allow R9 hand-over-hand: eval_chunks runs with [mutex] held at loop entry and exit; this reacquire pairs with the release at the top of the loop *)
    Mutex.lock mutex;
    if t0 <> 0 then begin
      let d = Obs.Span.now_ns () - t0 in
      j.busy_ns <- j.busy_ns + d;
      Obs.Counter.add_float m_busy (float_of_int d *. 1e-9)
    end;
    j.in_flight <- j.in_flight - 1;
    (match err with
    | None -> ()
    | Some (i, e) ->
        (match j.failed with
        | Some (i0, _) when i0 <= i -> ()
        | _ -> j.failed <- Some (i, e));
        (* Stop issuing further chunks; in-flight ones drain. *)
        j.next <- j.n)
  done;
  flag := false;
  if j.in_flight = 0 then Condition.broadcast idle

let rec worker_loop items_c =
  (* lint: allow R9 both match arms unlock; eval_chunks records item exceptions instead of raising (see its header comment) *)
  Mutex.lock mutex;
  let job = ref None in
  while
    (match !current with
    | Some j when j.next < j.n -> job := Some j
    | _ -> ());
    !job = None && not !quit
  do
    Condition.wait work mutex
  done;
  match !job with
  | None -> Mutex.unlock mutex (* quitting *)
  | Some j ->
      eval_chunks ~items_c j;
      Mutex.unlock mutex;
      worker_loop items_c

let shutdown () =
  Mutex.lock mutex;
  quit := true;
  Condition.broadcast work;
  Mutex.unlock mutex;
  List.iter Domain.join !handles;
  handles := []

(* Called with [submit_mutex] held (submissions are serialized, so no
   two domains race to spawn). *)
let ensure_workers want =
  let want = min want (capacity ()) in
  if !spawned = 0 && want > 0 then at_exit shutdown;
  while !spawned < want do
    (* Create the worker's item counter on the spawning domain: metric
       registration takes the registry mutex, which the worker loop
       itself never needs to touch. *)
    let items_c = worker_items !spawned in
    handles := Domain.spawn (fun () -> worker_loop items_c) :: !handles;
    incr spawned
  done;
  Obs.Gauge.set m_workers (float_of_int !spawned)

let run ?chunk ~participants n runit =
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Pool.run: chunk must be positive"
  | _ -> ());
  if n > 0 then
    if inside_job () then
      (* Nested submission from inside a pool job: run inline.  The
         outer job already owns the pool. *)
      for i = 0 to n - 1 do
        runit i
      done
    else begin
      Mutex.lock submit_mutex;
      let finished =
        (* [ensure_workers] can raise (domain spawn is resource-bound);
           never leave with the submission lock held. *)
        Fun.protect
          ~finally:(fun () -> Mutex.unlock submit_mutex)
          (fun () ->
            let participants = max 1 (min participants n) in
            ensure_workers (participants - 1);
            if !spawned = 0 then None
            else begin
              (* Small chunks (a quarter of an even split) let finished
                 domains steal remaining work from slow ones; for the common
                 restart-racing case (n = participants) the chunk is 1.
                 Callers with many cheap skewed items (the fleet scheduler's
                 per-path epoch updates) override the split: a fixed small
                 chunk bounds the straggler tail without per-item queue
                 traffic. *)
              let chunk =
                match chunk with
                | Some c -> min c n
                | None -> max 1 (n / (participants * 4))
              in
              let submitted_ns =
                if Obs.enabled () || Obs.Trace.enabled () then Obs.Span.now_ns ()
                else 0
              in
              Obs.Counter.incr m_jobs;
              let j =
                {
                  run = runit;
                  n;
                  chunk;
                  next = 0;
                  in_flight = 0;
                  failed = None;
                  submitted_ns;
                  busy_ns = 0;
                }
              in
              (* lint: allow R9 eval_chunks records item exceptions instead of raising, and the Condition traffic around it is no-raise *)
              Mutex.lock mutex;
              current := Some j;
              Condition.broadcast work;
              eval_chunks ~items_c:caller_items j;
              while j.next < j.n || j.in_flight > 0 do
                Condition.wait idle mutex
              done;
              current := None;
              Mutex.unlock mutex;
              if submitted_ns <> 0 then begin
                (* Busy fraction of the domains that could have worked on the
                   job: evaluation time over concurrency * makespan. *)
                let wall = Obs.Span.now_ns () - submitted_ns in
                let concurrency = min participants (!spawned + 1) in
                if wall > 0 then
                  Obs.Gauge.set m_utilization
                    (float_of_int j.busy_ns
                    /. (float_of_int wall *. float_of_int concurrency))
              end;
              Some j
            end)
      in
      match finished with
      | None ->
          (* No workers to hand the job to (single-core machine or zero
             capacity): the caller evaluates every item itself.  Still a
             submitted pool job, so account for it. *)
          if Obs.enabled () then begin
            Obs.Counter.incr m_jobs;
            Obs.Counter.add m_items n;
            Obs.Counter.add caller_items n
          end;
          for i = 0 to n - 1 do
            runit i
          done
      | Some j -> (
          match j.failed with Some (_, e) -> raise e | None -> ())
    end

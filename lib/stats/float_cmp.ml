(* The only module allowed to compare floats directly: dcl-lint rule R3
   exempts lib/stats/float_cmp.ml and flags =, <>, compare and
   hand-rolled abs_float tolerance tests everywhere else. *)

let approx_eq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps

let is_zero ?eps x = approx_eq ?eps x 0.

(* Map the IEEE bit pattern to a monotone integer line: non-negative
   floats keep their bits, negative floats are mirrored below zero, so
   adjacent representable doubles are adjacent integers and the ULP
   distance is a subtraction. *)
let monotone_bits x =
  let bits = Int64.bits_of_float x in
  if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits

let equal_ulp ?(ulps = 4) a b =
  if Float.is_nan a || Float.is_nan b then false
  else
    let d = Int64.sub (monotone_bits a) (monotone_bits b) in
    let d = if Int64.compare d 0L < 0 then Int64.neg d else d in
    Int64.compare d (Int64.of_int ulps) <= 0

let compare_eps ?(eps = 0.) a b =
  if approx_eq ~eps a b then 0 else if a < b then -1 else 1

let geq ?(slack = 0.) a b = a >= b -. slack
let gt ?(slack = 0.) a b = a > b -. slack
let leq ?(slack = 0.) a b = a <= b +. slack
let lt ?(slack = 0.) a b = a < b +. slack

(* Counts derived from fractions (congested_fraction * templates, ...)
   sit on representability boundaries: 0.3 * 8 is 2.4000000000000004,
   and a raw `<` against an index misrounds exactly where it matters.
   Rounding to the nearest integer in one audited place keeps every
   such boundary decision here. *)
let round_to_int x =
  if Float.is_nan x then invalid_arg "Stats.Float_cmp.round_to_int: nan";
  let r = Float.round x in
  (* float_of_int max_int rounds up to 2^62, which is itself out of
     range, hence the asymmetric >=. *)
  if r < float_of_int min_int || r >= float_of_int max_int then
    invalid_arg "Stats.Float_cmp.round_to_int: out of int range";
  int_of_float r

(** Fixed-bin histograms and discrete probability distributions
    (PMF/CDF) over bin indices.

    The paper discretizes end-end queuing delay into [m] equal-width
    bins over [\[lo, hi\]]; symbol [j] (1-based in the paper, 0-based
    here) covers the delay range [(lo + j*w, lo + (j+1)*w]] with
    [w = (hi - lo) / m].  All distribution-level operations in the
    repository (hypothesis tests, bounds, distances) work on the
    0-based bin index. *)

type t
(** A histogram with [m] equal-width bins over [\[lo, hi\]]. *)

val create : m:int -> lo:float -> hi:float -> t
(** Requires [m > 0] and [hi > lo]. *)

val bins : t -> int
val lo : t -> float
val hi : t -> float
val width : t -> float

val index_of : t -> float -> int
(** [index_of h x] maps a value to its bin.  Bins are half-open on the
    shared boundary grid [edges.(j) = lo + j*w]: bin [j] owns
    [\[edges.(j), edges.(j+1))], except the last bin which also owns
    [hi].  The index is reconciled against that grid, so a sample
    lying exactly on a boundary always lands in the bin whose lower
    edge it is — the raw [(x - lo) / w] division can round either way
    at a boundary and would otherwise place boundary samples in the
    adjacent bin.  Values outside [\[lo, hi\]] clamp to the first/last
    bin; {!add} counts such clamps (see {!clamped}). *)

val value_of : t -> int -> float
(** [value_of h j] is the upper edge of bin [j] — the paper's
    convention for converting a discretized delay back to an actual
    delay value ("the corresponding actual delay value is j*w"). *)

val add : t -> float -> unit
(** Bin a sample via {!index_of}.  A sample strictly outside
    [\[lo, hi\]] is clamped into the edge bin rather than dropped —
    silently mixing out-of-range mass into the edge bins skews the
    delay PMF, so each clamp is recorded in the per-histogram
    {!clamped} counter and the process-wide
    [dcl_histogram_clamped_total] {!Obs.Counter}. *)

val add_index : t -> int -> unit
val total : t -> int
val counts : t -> int array

val clamped : t -> int
(** Number of {!add} samples that fell strictly outside [\[lo, hi\]]
    and were clamped into an edge bin. *)

val pmf : t -> float array
(** Normalized counts; all zeros when the histogram is empty. *)

val mode_value : t -> float
(** Upper edge of the most-populated bin.  Requires a non-empty
    histogram. *)

(** {1 Operations on probability vectors} *)

val cdf_of_pmf : float array -> float array
(** Running sum; last entry forced to exactly 1.0 when the input sums
    to within 1e-9 of 1. *)

val normalize : float array -> float array
(** Scale a non-negative vector to sum to 1.  Requires positive sum. *)

val total_variation : float array -> float array -> float
(** TV distance [0.5 * sum |p_i - q_i|] between same-length PMFs. *)

val pmf_of_samples : m:int -> lo:float -> hi:float -> float array -> float array
(** One-shot helper: bin the samples and return the PMF. *)

type t = {
  m : int;
  lo : float;
  hi : float;
  width : float;
  edges : float array;
  counts : int array;
  mutable total : int;
  mutable clamped : int;
}

let m_clamped =
  Obs.Counter.make
    ~help:"Samples outside [lo, hi] clamped into an edge bin"
    "dcl_histogram_clamped_total"

let create ~m ~lo ~hi =
  if m <= 0 then invalid_arg "Histogram.create: m <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  let width = (hi -. lo) /. float_of_int m in
  {
    m;
    lo;
    hi;
    width;
    (* The shared boundary grid: bin [j] is the half-open interval
       [edges.(j), edges.(j + 1)) (the last bin also owns [hi]).
       Indexing and bin edges must come from the same grid — deriving
       the index from [(x - lo) / width] alone disagrees with the
       grid for samples sitting on a boundary whose product form
       rounds the other way, pushing them into the adjacent bin. *)
    edges = Array.init (m + 1) (fun j -> lo +. (float_of_int j *. width));
    counts = Array.make m 0;
    total = 0;
    clamped = 0;
  }

let bins t = t.m
let lo t = t.lo
let hi t = t.hi
let width t = t.width

let index_of t x =
  if x <= t.lo then 0
  else if x >= t.hi then t.m - 1
  else begin
    (* Seed from the division, then walk at most one edge in either
       direction so the returned bin satisfies the half-open contract
       [edges.(j) <= x < edges.(j + 1)] exactly. *)
    let j = ref (int_of_float ((x -. t.lo) /. t.width)) in
    if !j > t.m - 1 then j := t.m - 1;
    if !j < 0 then j := 0;
    while !j > 0 && x < t.edges.(!j) do
      decr j
    done;
    while !j < t.m - 1 && x >= t.edges.(!j + 1) do
      incr j
    done;
    !j
  end

let value_of t j = t.lo +. (float_of_int (j + 1) *. t.width)

let add_index t j =
  if j < 0 || j >= t.m then invalid_arg "Histogram.add_index: bin out of range";
  t.counts.(j) <- t.counts.(j) + 1;
  t.total <- t.total + 1

let add t x =
  if x < t.lo || x > t.hi then begin
    t.clamped <- t.clamped + 1;
    Obs.Counter.incr m_clamped
  end;
  add_index t (index_of t x)

let total t = t.total
let counts t = Array.copy t.counts
let clamped t = t.clamped

let pmf t =
  if t.total = 0 then Array.make t.m 0.
  else
    let n = float_of_int t.total in
    Array.map (fun c -> float_of_int c /. n) t.counts

let mode_value t =
  if t.total = 0 then invalid_arg "Histogram.mode_value: empty histogram";
  let best = ref 0 in
  for j = 1 to t.m - 1 do
    if t.counts.(j) > t.counts.(!best) then best := j
  done;
  value_of t !best

let cdf_of_pmf p =
  let n = Array.length p in
  let c = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. p.(i);
    c.(i) <- !acc
  done;
  if n > 0 && Float_cmp.approx_eq ~eps:1e-9 c.(n - 1) 1. then c.(n - 1) <- 1.;
  c

let normalize v =
  let s = Array.fold_left ( +. ) 0. v in
  if s <= 0. then invalid_arg "Histogram.normalize: non-positive sum";
  Array.map (fun x -> x /. s) v

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Histogram.total_variation: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  0.5 *. !acc

let pmf_of_samples ~m ~lo ~hi xs =
  let h = create ~m ~lo ~hi in
  Array.iter (add h) xs;
  pmf h

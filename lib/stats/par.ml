(* lint: owner driver *)
let spawn_per_call = ref false

(* PR 1's fork–join implementation: spawn fresh domains for every call.
   Kept (behind [spawn_per_call]) so the bench can measure what the
   persistent pool amortizes away. *)
let map_range_spawn ~domains n f =
  if n <= 0 then [||]
  else
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      let errors = Array.make domains None in
      (* Strided assignment: worker [d] owns items d, d+domains, ... so
         ownership is disjoint and independent of scheduling. *)
      let worker d =
        try
          let i = ref d in
          while !i < n do
            results.(!i) <- Some (f !i);
            i := !i + domains
          done
        with e -> errors.(d) <- Some e
      in
      let handles = Array.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
      worker 0;
      Array.iter Domain.join handles;
      Array.iter (function Some e -> raise e | None -> ()) errors;
      Array.map (function Some x -> x | None -> assert false) results
    end

let map_range ~domains n f =
  if n <= 0 then [||]
  else if !spawn_per_call then map_range_spawn ~domains n f
  else
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      Pool.run ~participants:domains n (fun i -> results.(i) <- Some (f i));
      Array.map (function Some x -> x | None -> assert false) results
    end

(** The one sanctioned home for float comparison semantics.

    The SDCL/WDCL hypothesis tests compare an estimated CDF value
    [F] at twice the [d_star] quantile against a threshold derived
    from Theorems 1-2; the [d_star] walk and the [Q_max] bounds sit on
    the same kind of boundary.  An accidental exact [=] (or a hand-rolled
    [abs_float (a -. b) < eps] with a locally invented [eps]) at any of
    those sites silently changes the paper's accept/reject conclusions,
    so [dcl-lint] rule R3 forbids both everywhere except this module,
    and every boundary-sensitive comparison routes through here.

    All predicates are [false] when either operand is NaN (including
    [approx_eq nan nan]), matching IEEE comparison semantics. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is [abs_float (a -. b) <= eps] (default
    [eps = 1e-9]).  [eps = 0.] gives exact equality with NaN-safe
    semantics. *)

val is_zero : ?eps:float -> float -> bool
(** [approx_eq x 0.]: near-zero guard for denominators. *)

val equal_ulp : ?ulps:int -> float -> float -> bool
(** Equality up to [ulps] units in the last place (default 4), via the
    monotone bit-pattern ordering of IEEE doubles.  Scale-free
    alternative to [approx_eq] when the magnitudes are unknown. *)

val compare_eps : ?eps:float -> float -> float -> int
(** Three-way comparison that treats values within [eps] (default 0)
    as equal: [-1], [0] or [1]. *)

(** Threshold comparisons.  [slack] (default [0.]) widens acceptance:
    [geq ~slack a b] holds when [a >= b -. slack].  With the default
    slack these are exactly [>=] / [>] / [<=] / [<] — the point is the
    single audited call site, not a hidden tolerance. *)

val geq : ?slack:float -> float -> float -> bool
val gt : ?slack:float -> float -> float -> bool
val leq : ?slack:float -> float -> float -> bool
val lt : ?slack:float -> float -> float -> bool

val round_to_int : float -> int
(** Nearest integer (ties away from zero, [Float.round]) as an [int] —
    the sanctioned home for deriving counts from fractions
    ([round (fraction * total)]), where a raw [<] against an index
    misrounds at representability boundaries such as [0.3 *. 8.].
    Raises [Invalid_argument] on NaN or values outside [int] range. *)

(** Persistent work pool over multicore domains.

    Worker domains are spawned once per process — lazily, on the first
    submission that asks for them, and never more than
    [Domain.recommended_domain_count () - 1] (the submitting caller is
    the remaining participant).  They stay alive until process exit,
    so repeated fan-outs pay [Domain.spawn]/[Domain.join] once instead
    of per call, and per-domain state held in [Domain.DLS] (notably the
    EM workspaces of [Em.domain_ws]) stays warm across jobs.

    A job is a range of [n] independent items.  Chunks of the range are
    handed to workers through a mutex/condition queue; the caller
    participates and returns only when every item has run.  Items must
    write disjoint state (typically: each item fills its own slot of a
    result array), which makes the job's outcome independent of the
    dynamic chunk schedule.

    Exceptions raised by items are re-raised in the caller after the
    job drains; when several items fail, the exception of the {e
    lowest} item index is chosen, which is deterministic because chunks
    are issued in increasing index order.

    Most callers want {!Par.map_range}, the array-building façade over
    this module. *)

val run : ?chunk:int -> participants:int -> int -> (int -> unit) -> unit
(** [run ~participants n f] evaluates [f 0 .. f (n - 1)], using up to
    [participants] concurrent domains (the caller plus at most
    [participants - 1] pool workers, further capped by the machine
    size); returns when all items have run.  With no usable workers
    (single-core machine, or [participants <= 1]) the items run inline
    in the caller.  A nested [run] from inside an item also runs
    inline, so items may themselves use pool-backed operations safely.
    Jobs from different domains are serialized, not interleaved.

    [chunk] overrides the index-range chunk size pulled per queue
    round-trip (default: a quarter of an even split, at least 1).  A
    small fixed chunk bounds the straggler tail of jobs with many
    cheap, unevenly-costed items — the fleet scheduler's shape — at
    the price of more queue traffic.  Chunking never affects results,
    only scheduling.  Raises [Invalid_argument] unless positive. *)

val size : unit -> int
(** [Domain.recommended_domain_count ()] (at least 1): the maximum
    useful number of participants. *)

val worker_count : unit -> int
(** Number of persistent worker domains spawned so far (0 until the
    first multi-participant submission, then stable — the pool never
    respawns). *)

val capacity : unit -> int
(** Current worker cap: the [set_capacity] override when one is in
    force, [size () - 1] otherwise. *)

val set_capacity : int -> unit
(** Override the worker cap (default [size () - 1]).  Raises
    [Invalid_argument] unless the new cap is positive: a zero or
    negative override would silently serialize every job, which is
    indistinguishable from a passing concurrency test.  Raising it above
    the machine size oversubscribes cores — useful for exercising the
    concurrent path in tests and benches on small machines, a
    pessimization otherwise.  Lowering it does not retire workers
    already spawned. *)

val inside_job : unit -> bool
(** Whether the calling domain is currently evaluating a pool item. *)

let make r c v = Array.init r (fun _ -> Array.make c v)
let copy m = Array.map Array.copy m

let dims m =
  let r = Array.length m in
  (r, if r = 0 then 0 else Array.length m.(0))

let row_normalize m =
  Array.iter
    (fun row ->
      let s = Array.fold_left ( +. ) 0. row in
      let n = Array.length row in
      if s <= 0. then Array.fill row 0 n (1. /. float_of_int n)
      else
        for j = 0 to n - 1 do
          row.(j) <- row.(j) /. s
        done)
    m

let max_abs_diff_vec a b =
  if Array.length a <> Array.length b then
    invalid_arg "Matrix.max_abs_diff_vec: length mismatch";
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let e = abs_float (x -. b.(i)) in
      if e > !d then d := e)
    a;
  !d

let max_abs_diff a b =
  if Array.length a <> Array.length b then invalid_arg "Matrix.max_abs_diff: row mismatch";
  let d = ref 0. in
  Array.iteri
    (fun i row ->
      let e = max_abs_diff_vec row b.(i) in
      if e > !d then d := e)
    a;
  !d

let random_stochastic rng r c =
  let m = Array.init r (fun _ -> Array.init c (fun _ -> 0.05 +. Rng.float rng)) in
  row_normalize m;
  m

let is_stochastic ?(eps = 1e-6) m =
  Array.for_all
    (fun row ->
      Array.for_all (fun x -> x >= 0.) row
      && Float_cmp.approx_eq ~eps (Array.fold_left ( +. ) 0. row) 1.)
    m

(** Minimal deterministic fork–join parallelism over multicore domains.

    Work items are indexed [0 .. n-1] and the result array is always in
    index order, so callers that pre-derive any per-item randomness (see
    {!Rng.split}) obtain results that are bit-identical regardless of
    [domains].  Exceptions raised by work items are re-raised in the
    calling domain after all workers have joined. *)

val map_range : domains:int -> int -> (int -> 'a) -> 'a array
(** [map_range ~domains n f] evaluates [f 0 .. f (n - 1)] on up to
    [domains] concurrent domains (clamped to [n]; [domains <= 1] runs
    in the calling domain with no spawns) and returns [[| f 0; ...;
    f (n - 1) |]].  [f] must not share mutable state across items. *)

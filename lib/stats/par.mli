(** Minimal deterministic fork–join parallelism over multicore domains.

    Work items are indexed [0 .. n-1] and the result array is always in
    index order, so callers that pre-derive any per-item randomness (see
    {!Rng.split}) obtain results that are bit-identical regardless of
    [domains].  Exceptions raised by work items are re-raised in the
    calling domain after all workers have finished.

    Since PR 2 the parallel path runs on the persistent domain pool
    ({!Pool}): domains are spawned once per process and reused, so
    repeated fan-outs (EM restart racing, window scanning, bootstrap
    replicates) no longer pay [Domain.spawn]/[Domain.join] per call. *)

val map_range : domains:int -> int -> (int -> 'a) -> 'a array
(** [map_range ~domains n f] evaluates [f 0 .. f (n - 1)] on up to
    [domains] concurrent domains (clamped to [n]; [domains <= 1] runs
    in the calling domain with no parallelism) and returns [[| f 0; ...;
    f (n - 1) |]].  [f] must not share mutable state across items.
    Nested calls from inside [f] run serially in the calling domain. *)

val map_range_spawn : domains:int -> int -> (int -> 'a) -> 'a array
(** The pre-pool implementation: spawns [domains - 1] fresh domains on
    every call and joins them before returning.  Same contract and same
    results as {!map_range}; kept so benchmarks can compare
    spawn-per-call against pool amortization.  Not for production
    call sites. *)

val spawn_per_call : bool ref
(** Benchmark escape hatch, default [false].  When set, {!map_range}
    delegates to {!map_range_spawn}, letting a bench drive unmodified
    callers (e.g. [Mmhd.fit]) through the legacy path.  Results are
    identical either way; only the scheduling cost differs. *)

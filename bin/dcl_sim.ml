(* dcl-sim: run one of the built-in experiment scenarios and write the
   probe trace to a file for later analysis with dcl-identify.

     dcl-sim --scenario weakly --duration 600 --seed 3 -o weakly.trace *)

open Cmdliner

type scenario =
  | Strongly
  | Weakly
  | No_dcl
  | Inet_ufpr
  | Inet_adsl_ufpr
  | Inet_adsl_usevilla
  | Inet_adsl_snu

let scenarios =
  [
    ("strongly", Strongly);
    ("weakly", Weakly);
    ("nodcl", No_dcl);
    ("inet-ufpr", Inet_ufpr);
    ("inet-adsl-ufpr", Inet_adsl_ufpr);
    ("inet-adsl-usevilla", Inet_adsl_usevilla);
    ("inet-adsl-snu", Inet_adsl_snu);
  ]

let print_link_reports reports =
  Array.iter
    (fun (r : Scenarios.Paper_topology.link_report) ->
      Printf.printf "  %-12s loss %5.2f%%  util %4.2f  Q_max %6.1f ms  (%d drops / %d arrivals)\n"
        r.Scenarios.Paper_topology.label
        (100. *. r.Scenarios.Paper_topology.loss_rate)
        r.Scenarios.Paper_topology.utilization
        (1000. *. r.Scenarios.Paper_topology.q_max)
        r.Scenarios.Paper_topology.drops r.Scenarios.Paper_topology.arrivals)
    reports

let summarize_trace trace =
  Printf.printf "trace: %d probes over %.0f s, loss rate %.3f%%\n" (Probe.Trace.length trace)
    (Probe.Trace.duration trace)
    (100. *. Probe.Trace.loss_rate trace)

let run scenario seed duration bw3 output metrics =
  Obs_cli.with_metrics metrics @@ fun () ->
  let trace =
    match scenario with
    | Strongly | Weakly | No_dcl ->
        let cfg =
          match scenario with
          | Strongly -> Scenarios.Presets.strongly_dcl ~seed ~duration ~bw3 ()
          | Weakly -> Scenarios.Presets.weakly_dcl ~seed ~duration ()
          | No_dcl | _ -> Scenarios.Presets.no_dcl ~seed ~duration ()
        in
        let o = Scenarios.Paper_topology.run cfg in
        print_link_reports o.Scenarios.Paper_topology.reports;
        let shares =
          Dcl.Truth.loss_shares o.Scenarios.Paper_topology.trace ~hop_count:5
        in
        Printf.printf "loss shares by hop: %s\n"
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%.3f") shares)));
        Format.printf "ground truth: %a@." Dcl.Truth.pp_regime
          (Dcl.Truth.classify o.Scenarios.Paper_topology.trace ~hop_count:5);
        o.Scenarios.Paper_topology.trace
    | Inet_ufpr | Inet_adsl_ufpr | Inet_adsl_usevilla | Inet_adsl_snu ->
        let kind =
          match scenario with
          | Inet_ufpr -> Scenarios.Internet.Ethernet_ufpr
          | Inet_adsl_ufpr -> Scenarios.Internet.Adsl_from_ufpr
          | Inet_adsl_usevilla -> Scenarios.Internet.Adsl_from_usevilla
          | Inet_adsl_snu | _ -> Scenarios.Internet.Adsl_from_snu
        in
        let o = Scenarios.Internet.run ~seed ~duration kind in
        Printf.printf "%s: %d hops, clock skew %.1f ppm (estimated %.1f ppm)\n"
          (Scenarios.Internet.kind_to_string kind)
          (Scenarios.Internet.hop_count kind)
          (1e6 *. o.Scenarios.Internet.skew_applied)
          (1e6 *. o.Scenarios.Internet.skew_estimated);
        (* The written trace is the skew-repaired one, as a real
           measurement pipeline would produce. *)
        o.Scenarios.Internet.repaired
  in
  summarize_trace trace;
  Probe.Trace.save trace output;
  Printf.printf "trace written to %s\n" output;
  0

let scenario_arg =
  let doc =
    Printf.sprintf "Scenario to simulate: %s."
      (String.concat ", " (List.map fst scenarios))
  in
  Arg.(
    required
    & opt (some (enum scenarios)) None
    & info [ "s"; "scenario" ] ~docv:"NAME" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let duration_arg =
  Arg.(
    value & opt float 300.
    & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Probing duration in seconds.")

let bw3_arg =
  Arg.(
    value & opt float 1e6
    & info [ "bw3" ] ~docv:"BPS"
        ~doc:"Bottleneck (L3) bandwidth for the strongly scenario, bits/s.")

let output_arg =
  Arg.(
    value & opt string "probe.trace"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let cmd =
  let doc = "simulate a dominant-congested-link scenario and record a probe trace" in
  Cmd.v
    (Cmd.info "dcl-sim" ~doc)
    Term.(
      const run $ scenario_arg $ seed_arg $ duration_arg $ bw3_arg $ output_arg
      $ Obs_cli.metrics_arg)

let () = exit (Cmd.eval' cmd)

(* dcl-pathchar: run a pathchar-style per-hop capacity estimation over
   one of the built-in wide-area scenarios — the cross-validation step
   of the paper's Internet experiments, as a standalone tool.

     dcl-pathchar --scenario inet-adsl-snu *)

open Cmdliner

let kinds =
  [
    ("inet-ufpr", Scenarios.Internet.Ethernet_ufpr);
    ("inet-adsl-ufpr", Scenarios.Internet.Adsl_from_ufpr);
    ("inet-adsl-usevilla", Scenarios.Internet.Adsl_from_usevilla);
    ("inet-adsl-snu", Scenarios.Internet.Adsl_from_snu);
  ]

let run kind seed duration metrics =
  Obs_cli.with_metrics metrics @@ fun () ->
  let o = Scenarios.Internet.run ~seed ~duration ~with_pathchar:true kind in
  Printf.printf "%s (%d hops), probing %.0f s\n"
    (Scenarios.Internet.kind_to_string kind)
    (Scenarios.Internet.hop_count kind)
    duration;
  match o.Scenarios.Internet.pathchar with
  | None ->
      (* Return instead of [exit]: exiting would skip the --metrics
         dump the surrounding [with_metrics] writes on the way out. *)
      prerr_endline "no pathchar result";
      1
  | Some r ->
      Array.iter
        (fun (h : Pathchar.hop) ->
          Printf.printf "hop %2d: %4d replies, capacity %s, latency %s%s\n"
            h.Pathchar.index h.Pathchar.replies
            (match h.Pathchar.capacity with
            | Some c -> Printf.sprintf "%7.2f Mb/s" (c /. 1e6)
            | None -> "      -     ")
            (match h.Pathchar.latency with
            | Some l -> Printf.sprintf "%5.1f ms" (1000. *. l)
            | None -> "   -   ")
            (if Some h.Pathchar.index = r.Pathchar.narrow_hop then "   <- narrow link"
             else ""))
        r.Pathchar.hops;
      Printf.printf
        "(ground truth: the congested link is hop %d%s)\n"
        (o.Scenarios.Internet.bottleneck_hop + 1)
        (match o.Scenarios.Internet.secondary_hop with
        | Some h -> Printf.sprintf "; a second congested link is hop %d" (h + 1)
        | None -> "");
      0

let kind_arg =
  let doc =
    Printf.sprintf "Wide-area scenario: %s." (String.concat ", " (List.map fst kinds))
  in
  Arg.(
    required & opt (some (enum kinds)) None & info [ "s"; "scenario" ] ~docv:"NAME" ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let duration_arg =
  Arg.(
    value & opt float 120.
    & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Simulation duration.")

let cmd =
  let doc = "per-hop capacity estimation (pathchar) over an emulated wide-area path" in
  Cmd.v (Cmd.info "dcl-pathchar" ~doc)
    Term.(const run $ kind_arg $ seed_arg $ duration_arg $ Obs_cli.metrics_arg)

let () = exit (Cmd.eval' cmd)

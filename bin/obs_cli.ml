(* Shared --metrics plumbing for the dcl command-line tools: one
   optional flag that turns collection on for the whole run and dumps a
   registry snapshot on exit. *)

open Cmdliner

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and write a snapshot on exit: $(b,-) prints \
           Prometheus text to stdout, a path ending in $(b,.json) writes JSON, \
           any other path writes Prometheus text.  Collection can also be \
           enabled without a dump by setting $(b,DCL_OBS=1) in the \
           environment.")

(* Run [f] with collection enabled when a dump was requested, and write
   the snapshot afterwards.  The snapshot is written even when [f]
   raises mid-pipeline — partial metrics are exactly what one wants
   when diagnosing the failure. *)
let with_metrics dest f =
  match dest with
  | None -> f ()
  | Some d ->
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.write d) f

(* Shared --metrics / --trace plumbing for the dcl command-line tools:
   optional flags that turn collection on for the whole run and dump a
   registry snapshot / flight-recorder dump on exit. *)

open Cmdliner

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and write a snapshot on exit: $(b,-) prints \
           Prometheus text to stdout, a path ending in $(b,.json) writes JSON, \
           any other path writes Prometheus text.  Collection can also be \
           enabled without a dump by setting $(b,DCL_OBS=1) in the \
           environment.")

(* Run [f] with collection enabled when a dump was requested, and write
   the snapshot afterwards.  The snapshot is written even when [f]
   raises mid-pipeline — partial metrics are exactly what one wants
   when diagnosing the failure. *)
let with_metrics dest f =
  match dest with
  | None -> f ()
  | Some d ->
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.write d) f

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record flight-recorder trace events and write them on exit: a path \
           ending in $(b,.json) writes Chrome trace-event JSON (loadable in \
           Perfetto), $(b,-) prints the sorted text dump to stdout, any other \
           path writes the text dump.  Tracing can also be enabled without a \
           dump by setting $(b,DCL_TRACE=1) in the environment.")

(* Same shape as [with_metrics]: the dump is written even when [f]
   raises — the flight recorder exists for exactly that post-mortem. *)
let with_trace dest f =
  match dest with
  | None -> f ()
  | Some d ->
      Obs.Trace.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.Trace.write d) f

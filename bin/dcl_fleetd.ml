(* dcl-fleetd: fleet-scale streaming monitor.  Drives an observation
   source — synthetic templates, a recorded probe trace, or a fresh
   netsim run — through the fleet epoch scheduler and reports per-path
   conclusions.

     dcl-fleetd --paths 100000 --epochs 20
     dcl-fleetd --source probe.trace --paths 1000 --lambda 0.95
     dcl-fleetd --source sim --paths 500 --domains 4 --metrics -
     dcl-fleetd --paths 100000 --gate --congested-fraction 0.1 *)

open Cmdliner

(* --- validated argument converters ---------------------------------

   Out-of-range values are rejected at the cmdliner layer (exit code
   124 with a usage message) instead of surfacing later as an
   [Invalid_argument] backtrace from the library or, worse, a
   mysterious "no such file" from a typo'd --source. *)

let int_at_least floor =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    | Some v when v < floor ->
        Error (`Msg (Printf.sprintf "%d is below the minimum of %d" v floor))
    | Some v -> Ok v
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_int = int_at_least 1

let float_range ~lo_exclusive ~lo ~hi ~what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
    | Some v ->
        if Float.is_nan v then Error (`Msg (Printf.sprintf "%s cannot be NaN" what))
        else if
          (if lo_exclusive then Stats.Float_cmp.leq v lo
           else Stats.Float_cmp.lt v lo)
          || Stats.Float_cmp.gt v hi
        then
          Error
            (`Msg
               (Printf.sprintf "%g is outside %c%g, %g] for %s" v
                  (if lo_exclusive then '(' else '[')
                  lo hi what))
        else Ok v
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)

let nonneg_float ~what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
    | Some v ->
        if Float.is_nan v || Stats.Float_cmp.lt v 0. then
          Error (`Msg (Printf.sprintf "%s must be non-negative, got %s" what s))
        else Ok v
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)

let source_conv =
  let parse s =
    match s with
    | "synth" | "sim" -> Ok s
    | file when Sys.file_exists file -> Ok file
    | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown source %S: expected 'synth', 'sim', or the path of an \
                 existing probe trace file"
                s))
  in
  Arg.conv ~docv:"SRC" (parse, Format.pp_print_string)

let build_source source rng ~paths ~m ~congested_fraction ~seed =
  match source with
  | "synth" -> Fleet.Source.synthetic ~congested_fraction ~m ~rng ~paths ()
  | "sim" ->
      (* A strongly-dominant run of the paper topology; 60 s of probing
         keeps startup short while leaving thousands of symbols to
         replay. *)
      let bw3 = List.hd Scenarios.Presets.strongly_dcl_sweep in
      let config = Scenarios.Presets.strongly_dcl ~seed ~duration:60. ~bw3 () in
      let outcome = Scenarios.Paper_topology.run config in
      Fleet.Source.of_trace ~m ~paths outcome.Scenarios.Paper_topology.trace
  | file -> Fleet.Source.of_trace ~m ~paths (Probe.Trace.load file)

let conclusion_name = function
  | None -> "untested"
  | Some Dcl.Identify.Strongly_dominant -> "strongly-dominant"
  | Some Dcl.Identify.Weakly_dominant -> "weakly-dominant"
  | Some Dcl.Identify.No_dominant -> "no-dominant"

(* JSON helpers for the admin routes: non-finite floats are not
   representable in JSON and go out as null. *)
let jfloat x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let run paths epochs epoch_len lambda n m domains source congested_fraction seed
    gate gate_loss gate_drift gate_h gate_demote verbose metrics trace listen
    metrics_interval linger =
  Obs_cli.with_metrics metrics @@ fun () ->
  Obs_cli.with_trace trace @@ fun () ->
  (* The admin endpoint's /metrics route is pointless without
     collection, so --listen implies it. *)
  if listen <> None then Obs.set_enabled true;
  let rng = Stats.Rng.create seed in
  let src = build_source source rng ~paths ~m ~congested_fraction ~seed in
  let config =
    Fleet.Path_state.config ~n ~lambda ~scheme:(Fleet.Source.scheme src) ()
  in
  let transitions = ref 0 in
  let on_transition (tr : Fleet.Scheduler.transition) =
    incr transitions;
    if verbose then
      Printf.printf "epoch %3d path %6d: %s -> %s\n" tr.Fleet.Scheduler.epoch
        tr.Fleet.Scheduler.path
        (conclusion_name tr.Fleet.Scheduler.was)
        (conclusion_name tr.Fleet.Scheduler.now)
  in
  let gate =
    if gate then
      Some
        (Sketch.Gate.config ~loss_threshold:gate_loss ~drift_threshold:gate_drift
           ~promote_after:gate_h ~demote_after:gate_demote ())
    else None
  in
  let sched =
    Fleet.Scheduler.create ~domains ~on_transition ?gate ~rng ~paths config
  in
  let admin =
    Option.map
      (fun port ->
        let fast path =
          (* Answered on the server domain: these only read the metrics
             registry's atomics.  Everything else (fleet state, trace
             rings) defers to the driver via serve_pending. *)
          match path with
          | "/healthz" -> Some ("text/plain", "ok\n")
          | "/metrics" -> Some ("text/plain; version=0.0.4", Obs.prometheus ())
          | _ -> None
        in
        let a = Obs.Admin.start ~port ~fast () in
        Printf.printf "admin: listening on http://127.0.0.1:%d\n%!"
          (Obs.Admin.port a);
        a)
      listen
  in
  Fun.protect ~finally:(fun () -> Option.iter Obs.Admin.stop admin) @@ fun () ->
  let path_json p =
    let ps = Fleet.Scheduler.path sched p in
    let gate_json =
      match Fleet.Scheduler.gate_view sched p with
      | None -> "null"
      | Some gv ->
          Printf.sprintf
            "{\"promoted\":%b,\"loss_ewma\":%s,\"drift\":%s,\"loss_estimate\":%d}"
            gv.Fleet.Scheduler.promoted_path
            (jfloat gv.Fleet.Scheduler.loss_ewma)
            (jfloat gv.Fleet.Scheduler.drift)
            gv.Fleet.Scheduler.loss_estimate
    in
    Printf.sprintf
      "{\"path\":%d,\"conclusion\":\"%s\",\"bound\":%s,\"weight\":%s,\"epochs\":%d,\"observations\":%d,\"resets\":%d,\"gate\":%s,\"timeline\":%s}\n"
      p
      (conclusion_name (Fleet.Path_state.conclusion ps))
      (match Fleet.Path_state.bound ps with Some b -> jfloat b | None -> "null")
      (jfloat (Fleet.Path_state.weight ps))
      (Fleet.Path_state.epochs ps)
      (Fleet.Path_state.observations ps)
      (Fleet.Path_state.resets ps)
      gate_json
      (Fleet.Timeline.to_json (Fleet.Path_state.timeline ps))
  in
  let summary_json () =
    let counts = Hashtbl.create 4 in
    for p = 0 to paths - 1 do
      let key = conclusion_name (Fleet.Scheduler.conclusion sched p) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    done;
    let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
    Printf.sprintf
      "{\"paths\":%d,\"epoch\":%d,\"promoted\":%d,\"strongly_dominant\":%d,\"weakly_dominant\":%d,\"no_dominant\":%d,\"untested\":%d}\n"
      paths (Fleet.Scheduler.epoch sched)
      (Fleet.Scheduler.promoted_count sched)
      (count "strongly-dominant") (count "weakly-dominant")
      (count "no-dominant") (count "untested")
  in
  let handle path =
    if path = "/paths" then Some ("application/json", summary_json ())
    else if path = "/trace" then Some ("application/json", Obs.Trace.chrome_json ())
    else if String.length path > 7 && String.sub path 0 7 = "/paths/" then
      match int_of_string_opt (String.sub path 7 (String.length path - 7)) with
      | Some p when p >= 0 && p < paths -> Some ("application/json", path_json p)
      | _ -> None
    else None
  in
  let serve () =
    match admin with
    | Some a -> ignore (Obs.Admin.serve_pending a ~handle : int)
    | None -> ()
  in
  let start = Obs.Span.now_ns () in
  for e = 1 to epochs do
    for p = 0 to paths - 1 do
      Fleet.Scheduler.push sched ~path:p
        (Fleet.Source.pull src ~path:p ~len:epoch_len)
    done;
    ignore (Fleet.Scheduler.tick sched : int);
    serve ();
    (* Per-epoch flush: a crashed or killed run still leaves a metrics
       snapshot behind (the write is atomic, so scrapers never see a
       torn file).  Stdout dumps stay exit-only. *)
    match metrics with
    | Some d when d <> "-" && e mod metrics_interval = 0 -> Obs.write d
    | _ -> ()
  done;
  let elapsed = float_of_int (Obs.Span.now_ns () - start) *. 1e-9 in
  let counts = Hashtbl.create 4 in
  let resets = ref 0 in
  for p = 0 to paths - 1 do
    let key = conclusion_name (Fleet.Scheduler.conclusion sched p) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
    resets := !resets + Fleet.Path_state.resets (Fleet.Scheduler.path sched p)
  done;
  Printf.printf "fleet: %d paths, %d epochs of %d observations, lambda %.2f, %d domain%s\n"
    paths epochs epoch_len lambda domains
    (if domains = 1 then "" else "s");
  List.iter
    (fun key ->
      match Hashtbl.find_opt counts key with
      | Some c -> Printf.printf "  %-18s %d\n" key c
      | None -> ())
    [ "strongly-dominant"; "weakly-dominant"; "no-dominant"; "untested" ];
  Printf.printf "transitions: %d, model resets: %d\n" !transitions !resets;
  (match Fleet.Scheduler.gate_stats sched with
  | None -> ()
  | Some gs ->
      Printf.printf
        "gate: %d promoted (%d promotions, %d demotions), %d observations \
         absorbed sketch-only\n"
        gs.Fleet.Scheduler.promoted gs.Fleet.Scheduler.promotions
        gs.Fleet.Scheduler.demotions gs.Fleet.Scheduler.sketch_only_observations);
  (* Against synthetic ground truth, score agreement over decided
     paths and recall over the truly congested ones — the number the
     gate must not cost. *)
  (match Fleet.Source.ground_truth src 0 with
  | None -> ()
  | Some _ ->
      let agree = ref 0 and decided = ref 0 in
      let dominant = ref 0 and recalled = ref 0 in
      for p = 0 to paths - 1 do
        (match (Fleet.Scheduler.conclusion sched p, Fleet.Source.ground_truth src p) with
        | Some concl, Some truth ->
            incr decided;
            if (concl <> Dcl.Identify.No_dominant) = truth then incr agree
        | _ -> ());
        match Fleet.Source.ground_truth src p with
        | Some true ->
            incr dominant;
            (match Fleet.Scheduler.conclusion sched p with
            | Some Dcl.Identify.Strongly_dominant
            | Some Dcl.Identify.Weakly_dominant ->
                incr recalled
            | _ -> ())
        | _ -> ()
      done;
      if !decided > 0 then
        Printf.printf "ground truth agreement: %d/%d (%.1f%%)\n" !agree !decided
          (100. *. float_of_int !agree /. float_of_int !decided);
      if !dominant > 0 then
        Printf.printf "dominant-path recall: %d/%d (%.1f%%)\n" !recalled !dominant
          (100. *. float_of_int !recalled /. float_of_int !dominant));
  Printf.printf "%.3f s wall, %.0f path-updates/s\n" elapsed
    (float_of_int (paths * epochs) /. elapsed);
  (* Keep the endpoint alive for scrapers that arrive after the run
     body finishes (CI smoke tests, a human with a browser). *)
  (match admin with
  | Some _ when linger > 0. ->
      Printf.printf "admin: lingering %.1f s\n%!" linger;
      let deadline = Obs.Span.now_ns () + int_of_float (linger *. 1e9) in
      while Obs.Span.now_ns () < deadline do
        serve ();
        Unix.sleepf 0.05
      done
  | _ -> ());
  0

let paths_arg =
  Arg.(
    value & opt positive_int 1000
    & info [ "paths" ] ~docv:"N" ~doc:"Number of concurrently monitored paths.")

let epochs_arg =
  Arg.(
    value & opt positive_int 20
    & info [ "epochs" ] ~docv:"N" ~doc:"Number of epoch ticks to run.")

let epoch_arg =
  Arg.(
    value & opt positive_int 16
    & info [ "epoch" ] ~docv:"OBS"
        ~doc:"Observations appended to each path per epoch tick (at least 1).")

let lambda_arg =
  Arg.(
    value
    & opt (float_range ~lo_exclusive:true ~lo:0. ~hi:1. ~what:"--lambda") 0.9
    & info [ "lambda" ] ~docv:"L"
        ~doc:
          "Forgetting factor applied to each path's sufficient statistics every \
           epoch, in (0, 1]; 1.0 never forgets.")

let n_arg =
  Arg.(
    value & opt positive_int 2
    & info [ "n"; "hidden-states" ] ~docv:"N" ~doc:"Hidden states of the per-path MMHD.")

let m_arg =
  Arg.(
    value & opt (int_at_least 3) 5
    & info [ "m"; "symbols" ] ~docv:"M" ~doc:"Number of delay symbols (at least 3).")

let domains_arg =
  Arg.(
    value & opt positive_int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Pool domains updating paths in parallel; results are bit-identical \
           to the serial run.")

let source_arg =
  Arg.(
    value & opt source_conv "synth"
    & info [ "source" ] ~docv:"SRC"
        ~doc:
          "Observation source: $(b,synth) (shared ground-truth templates), \
           $(b,sim) (a fresh strongly-dominant netsim run, replayed), or a \
           probe trace file to replay.")

let congested_arg =
  Arg.(
    value
    & opt
        (float_range ~lo_exclusive:false ~lo:0. ~hi:1.
           ~what:"--congested-fraction")
        0.3
    & info [ "congested-fraction" ] ~docv:"F"
        ~doc:
          "Fraction of synthetic templates with a dominant congested link, in \
           [0, 1].")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let gate_arg =
  Arg.(
    value & flag
    & info [ "gate" ]
        ~doc:
          "Enable the sketch triage front end: quiet paths are tracked only by \
           O(1) streaming estimators and full per-path inference runs only on \
           paths the gate promotes.")

let gate_loss_arg =
  Arg.(
    value & opt (nonneg_float ~what:"--gate-loss") 0.2
    & info [ "gate-loss" ] ~docv:"F"
        ~doc:"Loss-EWMA promotion threshold (fraction of probes lost per epoch).")

let gate_drift_arg =
  Arg.(
    value & opt (nonneg_float ~what:"--gate-drift") 0.75
    & info [ "gate-drift" ] ~docv:"F"
        ~doc:
          "Delay-quantile-drift promotion threshold: elevation of the tracked \
           quantile above the propagation floor, in [0, 1].")

let gate_h_arg =
  Arg.(
    value & opt positive_int 2
    & info [ "gate-h" ] ~docv:"H"
        ~doc:"Consecutive suspect epochs required before promotion (hysteresis).")

let gate_demote_arg =
  Arg.(
    value & opt positive_int 4
    & info [ "gate-demote" ] ~docv:"D"
        ~doc:
          "Consecutive calm, no-dominant-concluded epochs required before a \
           promoted path demotes back to sketch-only tracking.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Print every per-path conclusion transition.")

let port_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a port number, got %S" s))
    | Some v when v < 0 || v > 65535 ->
        Error (`Msg (Printf.sprintf "%d is outside the port range [0, 65535]" v))
    | Some v -> Ok v
  in
  Arg.conv ~docv:"PORT" (parse, Format.pp_print_int)

let listen_arg =
  Arg.(
    value
    & opt (some port_conv) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Serve a live introspection endpoint on 127.0.0.1:$(docv) while the \
           run progresses: $(b,/healthz), $(b,/metrics) (Prometheus), \
           $(b,/paths) (fleet summary), $(b,/paths/)$(i,ID) (per-path \
           diagnosis timeline as JSON), $(b,/trace) (flight-recorder dump as \
           Chrome trace-event JSON).  Port 0 picks an ephemeral port, printed \
           at startup.  Implies metrics collection.")

let metrics_interval_arg =
  Arg.(
    value & opt positive_int 1
    & info [ "metrics-interval" ] ~docv:"N"
        ~doc:
          "Flush the $(b,--metrics) file every $(docv) epochs (default: every \
           epoch), so a crashed or killed run still leaves a snapshot behind.  \
           Stdout dumps ($(b,--metrics -)) are only written on exit.")

let linger_arg =
  Arg.(
    value
    & opt (nonneg_float ~what:"--linger") 0.
    & info [ "linger" ] ~docv:"SECONDS"
        ~doc:
          "Keep the $(b,--listen) endpoint serving for $(docv) seconds after \
           the run completes.")

let cmd =
  let doc = "monitor a fleet of paths with streaming DCL identification" in
  Cmd.v
    (Cmd.info "dcl-fleetd" ~doc)
    Term.(
      const run $ paths_arg $ epochs_arg $ epoch_arg $ lambda_arg $ n_arg $ m_arg
      $ domains_arg $ source_arg $ congested_arg $ seed_arg $ gate_arg
      $ gate_loss_arg $ gate_drift_arg $ gate_h_arg $ gate_demote_arg
      $ verbose_arg $ Obs_cli.metrics_arg $ Obs_cli.trace_arg $ listen_arg
      $ metrics_interval_arg $ linger_arg)

let () = exit (Cmd.eval' cmd)

(* dcl-fleetd: fleet-scale streaming monitor.  Drives an observation
   source — synthetic templates, a recorded probe trace, or a fresh
   netsim run — through the fleet epoch scheduler and reports per-path
   conclusions.

     dcl-fleetd --paths 100000 --epochs 20
     dcl-fleetd --source probe.trace --paths 1000 --lambda 0.95
     dcl-fleetd --source sim --paths 500 --domains 4 --metrics - *)

open Cmdliner

let build_source source rng ~paths ~m ~congested_fraction ~seed =
  match source with
  | "synth" -> Fleet.Source.synthetic ~congested_fraction ~m ~rng ~paths ()
  | "sim" ->
      (* A strongly-dominant run of the paper topology; 60 s of probing
         keeps startup short while leaving thousands of symbols to
         replay. *)
      let bw3 = List.hd Scenarios.Presets.strongly_dcl_sweep in
      let config = Scenarios.Presets.strongly_dcl ~seed ~duration:60. ~bw3 () in
      let outcome = Scenarios.Paper_topology.run config in
      Fleet.Source.of_trace ~m ~paths outcome.Scenarios.Paper_topology.trace
  | file -> Fleet.Source.of_trace ~m ~paths (Probe.Trace.load file)

let conclusion_name = function
  | None -> "untested"
  | Some Dcl.Identify.Strongly_dominant -> "strongly-dominant"
  | Some Dcl.Identify.Weakly_dominant -> "weakly-dominant"
  | Some Dcl.Identify.No_dominant -> "no-dominant"

let run paths epochs epoch_len lambda n m domains source congested_fraction seed
    verbose metrics =
  Obs_cli.with_metrics metrics @@ fun () ->
  let rng = Stats.Rng.create seed in
  let src = build_source source rng ~paths ~m ~congested_fraction ~seed in
  let config =
    Fleet.Path_state.config ~n ~lambda ~scheme:(Fleet.Source.scheme src) ()
  in
  let transitions = ref 0 in
  let on_transition (tr : Fleet.Scheduler.transition) =
    incr transitions;
    if verbose then
      Printf.printf "epoch %3d path %6d: %s -> %s\n" tr.Fleet.Scheduler.epoch
        tr.Fleet.Scheduler.path
        (conclusion_name tr.Fleet.Scheduler.was)
        (conclusion_name tr.Fleet.Scheduler.now)
  in
  let sched = Fleet.Scheduler.create ~domains ~on_transition ~rng ~paths config in
  let start = Obs.Span.now_ns () in
  for _ = 1 to epochs do
    for p = 0 to paths - 1 do
      Fleet.Scheduler.push sched ~path:p
        (Fleet.Source.pull src ~path:p ~len:epoch_len)
    done;
    ignore (Fleet.Scheduler.tick sched : int)
  done;
  let elapsed = float_of_int (Obs.Span.now_ns () - start) *. 1e-9 in
  let counts = Hashtbl.create 4 in
  let resets = ref 0 in
  for p = 0 to paths - 1 do
    let key = conclusion_name (Fleet.Scheduler.conclusion sched p) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
    resets := !resets + Fleet.Path_state.resets (Fleet.Scheduler.path sched p)
  done;
  Printf.printf "fleet: %d paths, %d epochs of %d observations, lambda %.2f, %d domain%s\n"
    paths epochs epoch_len lambda domains
    (if domains = 1 then "" else "s");
  List.iter
    (fun key ->
      match Hashtbl.find_opt counts key with
      | Some c -> Printf.printf "  %-18s %d\n" key c
      | None -> ())
    [ "strongly-dominant"; "weakly-dominant"; "no-dominant"; "untested" ];
  Printf.printf "transitions: %d, model resets: %d\n" !transitions !resets;
  (* Against synthetic ground truth, score the paths that reached a
     verdict: a dominant-template path should test (strongly or
     weakly) dominant. *)
  (match Fleet.Source.ground_truth src 0 with
  | None -> ()
  | Some _ ->
      let agree = ref 0 and decided = ref 0 in
      for p = 0 to paths - 1 do
        match (Fleet.Scheduler.conclusion sched p, Fleet.Source.ground_truth src p) with
        | Some concl, Some truth ->
            incr decided;
            if (concl <> Dcl.Identify.No_dominant) = truth then incr agree
        | _ -> ()
      done;
      if !decided > 0 then
        Printf.printf "ground truth agreement: %d/%d (%.1f%%)\n" !agree !decided
          (100. *. float_of_int !agree /. float_of_int !decided));
  Printf.printf "%.3f s wall, %.0f path-updates/s\n" elapsed
    (float_of_int (paths * epochs) /. elapsed);
  0

let paths_arg =
  Arg.(
    value & opt int 1000
    & info [ "paths" ] ~docv:"N" ~doc:"Number of concurrently monitored paths.")

let epochs_arg =
  Arg.(value & opt int 20 & info [ "epochs" ] ~docv:"N" ~doc:"Number of epoch ticks to run.")

let epoch_arg =
  Arg.(
    value & opt int 16
    & info [ "epoch" ] ~docv:"OBS"
        ~doc:"Observations appended to each path per epoch tick.")

let lambda_arg =
  Arg.(
    value & opt float 0.9
    & info [ "lambda" ] ~docv:"L"
        ~doc:
          "Forgetting factor applied to each path's sufficient statistics every \
           epoch; 1.0 never forgets.")

let n_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "hidden-states" ] ~docv:"N" ~doc:"Hidden states of the per-path MMHD.")

let m_arg =
  Arg.(
    value & opt int 5 & info [ "m"; "symbols" ] ~docv:"M" ~doc:"Number of delay symbols.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Pool domains updating paths in parallel; results are bit-identical \
           to the serial run.")

let source_arg =
  Arg.(
    value & opt string "synth"
    & info [ "source" ] ~docv:"SRC"
        ~doc:
          "Observation source: $(b,synth) (shared ground-truth templates), \
           $(b,sim) (a fresh strongly-dominant netsim run, replayed), or a \
           probe trace file to replay.")

let congested_arg =
  Arg.(
    value & opt float 0.3
    & info [ "congested-fraction" ] ~docv:"F"
        ~doc:"Fraction of synthetic templates with a dominant congested link.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Print every per-path conclusion transition.")

let cmd =
  let doc = "monitor a fleet of paths with streaming DCL identification" in
  Cmd.v
    (Cmd.info "dcl-fleetd" ~doc)
    Term.(
      const run $ paths_arg $ epochs_arg $ epoch_arg $ lambda_arg $ n_arg $ m_arg
      $ domains_arg $ source_arg $ congested_arg $ seed_arg $ verbose_arg
      $ Obs_cli.metrics_arg)

let () = exit (Cmd.eval' cmd)

(* dcl-identify: run the model-based dominant-congested-link
   identification on a recorded probe trace.

     dcl-identify probe.trace
     dcl-identify --model hmm --hidden-states 3 --beta 0.02 probe.trace *)

open Cmdliner

let models =
  [
    ("mmhd", Dcl.Identify.Model_mmhd);
    ("hmm", Dcl.Identify.Model_hmm);
    ("markov", Dcl.Identify.Model_markov);
  ]

let run file model n m beta eps prop_delay seed fine_bound domains metrics =
  Obs_cli.with_metrics metrics @@ fun () ->
  let trace = Probe.Trace.load file in
  Printf.printf "trace: %d probes over %.0f s, loss rate %.3f%%\n" (Probe.Trace.length trace)
    (Probe.Trace.duration trace)
    (100. *. Probe.Trace.loss_rate trace);
  (* The method assumes stationary loss/delay characteristics
     (Section III); warn when the trace drifts.  Only the expected
     too-few-probes rejection is silent — any other failure of the
     check is itself worth a warning, not a swallow. *)
  (if Probe.Trace.length trace >= 8 then
     match Dcl.Stationarity.check trace with
     | report ->
         if not report.Dcl.Stationarity.stationary then
           Format.printf "warning: %a@." Dcl.Stationarity.pp_report report
     | exception Invalid_argument msg
       when msg = "Stationarity.check: trace too short" ->
         ()
     | exception Invalid_argument msg ->
         Format.printf "warning: stationarity check failed: %s@." msg);
  if not (Dcl.Identify.identifiable trace) then begin
    prerr_endline
      "trace is not identifiable: it needs at least one loss, one surviving probe, and \
       a positive delay spread";
    1
  end
  else begin
    let params =
      {
        Dcl.Identify.default_params with
        model;
        n;
        m;
        beta;
        eps;
        domains;
        prop_delay =
          (match prop_delay with
          | Some p -> Dcl.Discretize.Known p
          | None -> Dcl.Discretize.From_trace);
      }
    in
    let rng = Stats.Rng.create seed in
    let result = Dcl.Identify.run ~params ~rng trace in
    Format.printf "%a@." Dcl.Identify.pp_result result;
    Format.printf "inferred virtual queuing delay distribution: %a@." Dcl.Vqd.pp
      result.Dcl.Identify.vqd;
    if fine_bound && result.Dcl.Identify.conclusion <> Dcl.Identify.No_dominant then begin
      let fine = { params with Dcl.Identify.m = 40 } in
      let vqd40, _ = Dcl.Identify.fit_vqd ~params:fine ~rng trace in
      Printf.printf "fine-grained (M=40) component bound on Q_max: %.1f ms\n"
        (1000. *. Dcl.Bound.component_bound vqd40)
    end;
    (* If the trace carries simulator ground truth, report it. *)
    if Array.length (Probe.Trace.truth_virtual_delays trace) > 0 then begin
      let hops = trace.Probe.Trace.hop_count in
      Format.printf "ground truth (from simulation): %a@." Dcl.Truth.pp_regime
        (Dcl.Truth.classify trace ~hop_count:hops);
      let truth = Dcl.Vqd.of_trace_truth result.Dcl.Identify.scheme trace in
      Format.printf "true virtual queuing delay distribution:     %a@." Dcl.Vqd.pp truth;
      Printf.printf "total-variation distance model vs truth: %.3f\n"
        (Dcl.Vqd.tv_distance truth result.Dcl.Identify.vqd)
    end;
    0
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Probe trace file.")

let model_arg =
  Arg.(
    value
    & opt (enum models) Dcl.Identify.Model_mmhd
    & info [ "model" ] ~docv:"NAME" ~doc:"Inference model: mmhd, hmm, or markov.")

let n_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "hidden-states" ] ~docv:"N" ~doc:"Number of hidden states.")

let m_arg =
  Arg.(
    value & opt int 5 & info [ "m"; "symbols" ] ~docv:"M" ~doc:"Number of delay symbols.")

let beta_arg =
  Arg.(
    value & opt float 0.06
    & info [ "beta" ] ~docv:"B" ~doc:"WDCL loss parameter (share of off-link losses).")

let eps_arg =
  Arg.(value & opt float 0. & info [ "eps" ] ~docv:"E" ~doc:"WDCL delay parameter.")

let prop_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "propagation-delay" ] ~docv:"SECONDS"
        ~doc:
          "Known end-end propagation delay; by default it is estimated as the minimum \
           observed delay.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the EM.")

let fine_arg =
  Arg.(
    value & flag
    & info [ "fine-bound" ]
        ~doc:"Also fit with M=40 symbols and report the component-heuristic Q_max bound.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Multicore domains racing the EM restarts; the winning fit is \
           identical to the serial run.")

let cmd =
  let doc = "identify whether a dominant congested link exists from a probe trace" in
  Cmd.v
    (Cmd.info "dcl-identify" ~doc)
    Term.(
      const run $ file_arg $ model_arg $ n_arg $ m_arg $ beta_arg $ eps_arg $ prop_arg
      $ seed_arg $ fine_arg $ domains_arg $ Obs_cli.metrics_arg)

let () = exit (Cmd.eval' cmd)

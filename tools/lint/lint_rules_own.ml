(* R7 [domain-ownership]: a static race detector tailored to this
   repository's concurrency contract (DESIGN.md §11-13).  Three
   sub-checks:

   1. Every top-level mutable binding (ref / Atomic.t / Hashtbl.t /
      array / ... as the outermost constructor) in the ownership trees
      — lib/fleet, lib/obs, lib/stats — must carry an ownership
      annotation on its own line or the line above:

        (* lint: owner driver *)
        (* lint: owner worker *)
        (* lint: owner shared [guarded-by MUTEX] *)

   2. [shared] state must synchronize: its outermost type is Atomic.t
      (or Mutex/Condition), or the annotation names its guard with
      [guarded-by].

   3. Closures handed to the pool submission functions ([Pool.run],
      [Par.map_range]) or to [Domain.spawn] run in worker context:
      any read or write of [driver]-owned state reachable from such a
      closure — directly, or through unit-local functions it calls
      (computed to a fixpoint) — is a diagnostic.  This is exactly the
      Scheduler/Admin parked-route contract: driver-owned state is
      only ever touched between epochs on the driver's domain.

   Cross-unit reachability is resolved through the annotation table
   (built over every unit in the run), but calls into functions of
   *other* units are not followed — a worker closure must not touch
   driver state through a helper either, and the helper's own unit is
   analyzed when it is linted. *)

open Lint_common
open Lint_tast

type owned = {
  w_kind : owner_kind;
  w_qual : string; (* display name, e.g. "Pool.current" *)
}

type table = (string * string, owned) Hashtbl.t

let create_table () : table = Hashtbl.create 32

(* Owner directives of one unit, with use tracking for the dangling
   check. *)
type pending_owner = {
  p_line : int;
  p_kind : owner_kind;
  p_guard : string option;
  mutable p_used : bool;
}

let lookup (table : table) ~modname name =
  match split_last name with
  | Some (parent, last) -> Hashtbl.find_opt table (parent, last)
  | None -> Hashtbl.find_opt table (modname, name)

(* Phase 1 over one unit: attach owner annotations to top-level mutable
   bindings, populate the global table, and report missing/unguarded
   annotations (only inside the ownership trees) and dangling ones
   (anywhere typed). *)
let collect (table : table) (u : unit_ctx) =
  let fi = u.u_fi in
  let diags = ref [] in
  let owners =
    List.filter_map
      (function
        | Owner { o_line; o_kind; o_guard } ->
            Some { p_line = o_line; p_kind = o_kind; p_guard = o_guard; p_used = false }
        | _ -> None)
      fi.f_directives
  in
  let owner_at line =
    List.find_opt (fun p -> p.p_line = line || p.p_line = line - 1) owners
  in
  iter_top_bindings u.u_str (fun submodule (vb : Typedtree.value_binding) ->
      match pat_var vb.vb_pat with
      | Some (_, name_loc) -> (
          let name = name_loc.txt in
          let loc = vb.vb_pat.pat_loc in
          let container = mutable_container vb.vb_pat.pat_type in
          match (container, owner_at (loc_line loc)) with
          | None, None -> ()
          | None, Some p ->
              p.p_used <- true;
              report_at diags ~file:fi.f_path ~loc ~rule:"R0"
                ("owner annotation on " ^ name
               ^ ", which is not top-level mutable state (ref/Atomic/Hashtbl/array/...)")
          | Some kind, None ->
              if ownership_home fi.f_rel then
                report_at diags ~file:fi.f_path ~loc ~rule:"R7"
                  ("top-level mutable state " ^ name ^ " (" ^ kind
                 ^ ") needs an ownership annotation: (* lint: owner \
                    driver|worker|shared *)")
          | Some _, Some p ->
              p.p_used <- true;
              (if p.p_kind = Shared && (not (self_guarded vb.vb_pat.pat_type))
                  && p.p_guard = None
               then
                 report_at diags ~file:fi.f_path ~loc ~rule:"R7"
                   ("shared state " ^ name
                  ^ " is not Atomic-typed; name its lock with (* lint: owner \
                     shared guarded-by MUTEX *)"));
              let qual =
                (if submodule = "" then u.u_modname else submodule) ^ "." ^ name
              in
              let entry = { w_kind = p.p_kind; w_qual = qual } in
              Hashtbl.replace table (u.u_modname, name) entry;
              if submodule <> "" then Hashtbl.replace table (submodule, name) entry)
      | None -> ());
  List.iter
    (fun p ->
      if not p.p_used then
        report_at diags ~file:fi.f_path
          ~loc:
            {
              Location.loc_start =
                { Lexing.pos_fname = fi.f_path; pos_lnum = p.p_line; pos_bol = 0; pos_cnum = 0 };
              loc_end =
                { Lexing.pos_fname = fi.f_path; pos_lnum = p.p_line; pos_bol = 0; pos_cnum = 0 };
              loc_ghost = false;
            }
          ~rule:"R0"
          ("owner annotation (" ^ owner_kind_name p.p_kind
         ^ ") is not attached to a top-level mutable binding"))
    owners;
  !diags

(* ------------------------------------------------------------------ *)
(* Phase 2: worker-context reachability. *)

let submission_function name =
  name = "Domain.spawn"
  ||
  match split_last name with
  | Some (("Pool" | "Par"), ("run" | "map_range")) -> true
  | _ -> false

(* Driver-owned accesses appearing syntactically inside [e]. *)
let direct_accesses (table : table) ~modname (e : Typedtree.expression) =
  let acc = ref [] in
  let open Tast_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        let name = norm_path p in
        match lookup table ~modname name with
        | Some { w_kind = Driver; w_qual } -> acc := (w_qual, e.exp_loc) :: !acc
        | _ -> ())
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  List.rev !acc

(* Bare (unit-local) function names called inside [e], with call
   locations. *)
let local_calls (e : Typedtree.expression) =
  let acc = ref [] in
  let open Tast_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_loc; _ }, _) ->
        let name = norm_path p in
        if not (String.contains name '.') then acc := (name, exp_loc) :: !acc
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  List.rev !acc

let check (table : table) (u : unit_ctx) =
  let fi = u.u_fi in
  let modname = u.u_modname in
  let diags = ref [] in
  (* Unit-local call graph over top-level functions: name -> (direct
     driver accesses, callees), closed to a fixpoint so a worker
     closure calling [f] which calls [g] which reads driver state is
     still caught. *)
  let funs = Hashtbl.create 16 in
  iter_top_bindings u.u_str (fun _submodule vb ->
      match (pat_var vb.vb_pat, vb.vb_expr.exp_desc) with
      | Some (_, name_loc), Texp_function _ ->
          Hashtbl.replace funs name_loc.txt
            ( direct_accesses table ~modname vb.vb_expr,
              List.map fst (local_calls vb.vb_expr) )
      | _ -> ());
  let reach = Hashtbl.create 16 in
  let rec reachable name visiting =
    match Hashtbl.find_opt reach name with
    | Some r -> r
    | None ->
        if List.mem name visiting then []
        else (
          match Hashtbl.find_opt funs name with
          | None -> []
          | Some (own, callees) ->
              let r =
                List.map fst own
                @ List.concat_map (fun c -> reachable c (name :: visiting)) callees
              in
              let r = List.sort_uniq compare r in
              Hashtbl.replace reach name r;
              r)
  in
  let flag_closure (closure : Typedtree.expression) =
    List.iter
      (fun (qual, loc) ->
        report_at diags ~file:fi.f_path ~loc ~rule:"R7"
          ("driver-owned " ^ qual
         ^ " accessed from worker context (closure passed to Pool.run / \
            Domain.spawn); only the driver domain may touch it"))
      (direct_accesses table ~modname closure);
    List.iter
      (fun (callee, loc) ->
        match reachable callee [] with
        | [] -> ()
        | quals ->
            report_at diags ~file:fi.f_path ~loc ~rule:"R7"
              ("worker context reaches driver-owned " ^ String.concat ", " quals
             ^ " via " ^ callee))
      (local_calls closure)
  in
  let open Tast_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (head, args) -> (
        match head_name head with
        | Some name when submission_function name ->
            List.iter
              (fun (_, arg) ->
                match arg with
                | Some ({ Typedtree.exp_desc = Texp_function _; _ } as closure) ->
                    flag_closure closure
                | Some ({ Typedtree.exp_desc = Texp_ident (p, _, _); exp_loc; _ }) -> (
                    (* A named local function submitted directly. *)
                    let n = norm_path p in
                    if not (String.contains n '.') then
                      match reachable n [] with
                      | [] -> ()
                      | quals ->
                          report_at diags ~file:fi.f_path ~loc:exp_loc ~rule:"R7"
                            ("worker context reaches driver-owned "
                           ^ String.concat ", " quals ^ " via " ^ n))
                | _ -> ())
              args
        | _ -> ())
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it u.u_str;
  !diags

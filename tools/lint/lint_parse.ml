(* Pass 1: parsetree rules.  Every source is parsed with compiler-libs
   and walked with [Ast_iterator]; rules R1-R6 report a diagnostic
   (file:line:col, rule id, message) when a forbidden construct appears
   outside its sanctioned home.  This pass needs no build artifacts, so
   it runs on anything that parses — including sources that do not yet
   typecheck.  The typed-tree pass (Lint_typed) refines R3/R5 with real
   type information and owns R7-R9. *)

open Lint_common

let ident_name lid = try String.concat "." (Longident.flatten lid) with _ -> ""

let strip_stdlib name =
  match strip_prefix ~prefix:"Stdlib." name with Some r -> r | None -> name

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* R1: references that reach for ambient randomness or wall-clock
   seeding.  [Random] covers the whole stdlib module; the [Unix] names
   are the classic seed sources. *)
let rng_banned name =
  has_prefix ~prefix:"Random." name
  || name = "Random"
  || name = "Unix.gettimeofday"
  || name = "Unix.time"

(* R2: multicore primitives. *)
let concurrency_banned name =
  List.exists
    (fun p -> has_prefix ~prefix:p name)
    [ "Domain."; "Mutex."; "Condition."; "Atomic." ]

(* R4: process control and stdout/stderr from library code. *)
let io_banned name =
  List.mem name
    [
      "exit";
      "print_string";
      "print_endline";
      "print_newline";
      "print_int";
      "print_float";
      "print_char";
      "prerr_endline";
      "prerr_string";
      "prerr_newline";
      "Printf.printf";
      "Printf.eprintf";
      "Format.printf";
      "Format.eprintf";
    ]

(* R5: combinators whose call (or partial application) allocates a
   closure or a fresh structure.  Array accessors that compile to loads
   and stores are whitelisted; everything else in [Array], all of
   [List], and any formatting is banned inside a hot fence. *)
let array_access_whitelist =
  [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "blit"; "fill"; "unsafe_blit"; "unsafe_fill" ]

let allocating name =
  match String.index_opt name '.' with
  | Some i -> (
      let m = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match m with
      | "List" | "Printf" | "Format" -> true
      | "Array" -> not (List.mem rest array_access_whitelist)
      | _ -> false)
  | None -> name = "@" || name = "^"

(* R5, Bigarray leg.  The EM hot state lives on [Bigarray.Array1]
   buffers, so fences must admit the accessors that compile to plain
   loads and stores — and nothing else: [create] maps fresh memory,
   [sub]/[slice] allocate proxy records.  [unsafe_*] accessors have the
   dual constraint: they skip bounds checks, so they are confined TO
   the fences, where the index arithmetic is audited; an unsafe access
   in ordinary code is a diagnostic even though it does not allocate. *)
let bigarray_access_whitelist =
  [ "get"; "set"; "unsafe_get"; "unsafe_set"; "dim"; "fill"; "blit"; "unsafe_fill"; "unsafe_blit" ]

let bigarray_path path = path = "Bigarray" || has_prefix ~prefix:"Bigarray." path

(* Member access through a [Bigarray] array-op submodule
   ([Bigarray.Array1.get]) or a registered top-level alias
   ([module Ba = Bigarray.Array1], so [Ba.get]).  Members of the bare
   [Bigarray] module itself — the kind and layout values [float64],
   [c_layout], ... — are plain constants and not array operations, so
   they are deliberately not captured. *)
let bigarray_member ~aliases name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i ->
      let path = String.sub name 0 i in
      let member = String.sub name (i + 1) (String.length name - i - 1) in
      let qualifies =
        has_prefix ~prefix:"Bigarray." path
        || List.exists (fun a -> a = path || has_prefix ~prefix:(a ^ ".") path) aliases
      in
      if qualifies then Some member else None

let bigarray_aliases str =
  let acc = ref [] in
  let open Ast_iterator in
  let module_binding self (mb : Parsetree.module_binding) =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Parsetree.Pmod_ident { txt; _ } ->
        if bigarray_path (ident_name txt) then acc := name :: !acc
    | _ -> ());
    default_iterator.module_binding self mb
  in
  let it = { default_iterator with module_binding } in
  it.structure it str;
  !acc

(* R3: syntactic float-ness.  This is an approximation — pass 1 has no
   typer — but it is cheap, runs on sources that do not compile, and
   covers the overwhelmingly common literal/arithmetic shapes; the
   typed pass catches the rest from [Typedtree] types. *)
let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_returning =
  [
    "float_of_int";
    "float_of_string";
    "abs_float";
    "sqrt";
    "log";
    "log10";
    "exp";
    "ceil";
    "floor";
    "mod_float";
    "atan";
    "atan2";
    "cos";
    "sin";
    "tan";
    "min_float";
    "max_float";
  ]

let float_consts = [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* Project registry: idents that are floats wherever they appear in
   this codebase (quantile/threshold machinery of Theorems 1-2). *)
let known_float_idents =
  [ "threshold"; "tolerance"; "eps"; "log_likelihood"; "logl"; "mass_threshold"; "qdelay" ]

let float_module_non_float =
  [
    "Float.equal";
    "Float.compare";
    "Float.is_nan";
    "Float.is_finite";
    "Float.is_integer";
    "Float.to_int";
    "Float.to_string";
    "Float.sign_bit";
  ]

let rec is_floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } ->
      let name = strip_stdlib (ident_name txt) in
      List.mem name float_consts || List.mem name known_float_idents
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let name = strip_stdlib (ident_name txt) in
      List.mem name float_arith || List.mem name float_returning
      || (has_prefix ~prefix:"Float." name && not (List.mem name float_module_non_float))
  | Pexp_constraint (inner, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      ident_name txt = "float" || is_floatish inner
  | _ -> false

let is_abs_application (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let name = strip_stdlib (ident_name txt) in
      name = "abs_float" || name = "Float.abs"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* One file. *)

type context = {
  x_file : string; (* path as reported in diagnostics *)
  x_rel : string; (* repo-relative path used for classification *)
  x_hot : (int * int) list;
  mutable x_ba_aliases : string list; (* top-level aliases of Bigarray.* *)
  mutable x_diags : diag list;
}

let report ctx ~loc ~rule message =
  let p = loc.Location.loc_start in
  ctx.x_diags <-
    mk ~file:ctx.x_file ~line:p.Lexing.pos_lnum
      ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
      ~rule message
    :: ctx.x_diags

let in_hot ctx line = in_ranges ctx.x_hot line

let check_ident ctx ~loc name =
  let name = strip_stdlib name in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  if rng_banned name && not (rng_home ctx.x_rel) then
    report ctx ~loc ~rule:"R1"
      (name
     ^ " breaks the pre-split RNG determinism contract; draw from a Stats.Rng stream (lib/stats/rng.ml is the only sanctioned home)");
  if concurrency_banned name && not (concurrency_home ctx.x_rel) then
    report ctx ~loc ~rule:"R2"
      (name
     ^ " outside lib/stats/pool.ml, lib/stats/par.ml, lib/em/em_sweep.ml, lib/obs/, lib/fleet/ or lib/sketch/; route parallelism through Stats.Pool");
  if in_lib ctx.x_rel && io_banned name then
    report ctx ~loc ~rule:"R4"
      (name ^ " in library code; binaries own process control and stdout");
  if in_hot ctx line && allocating name then
    report ctx ~loc ~rule:"R5"
      (name ^ " allocates inside a (* lint: hot *) region");
  match bigarray_member ~aliases:ctx.x_ba_aliases name with
  | None -> ()
  | Some member ->
      if in_hot ctx line then begin
        if not (List.mem member bigarray_access_whitelist) then
          report ctx ~loc ~rule:"R5"
            (name
           ^ " allocates inside a (* lint: hot *) region; only the load/store Bigarray accessors are fence-safe")
      end
      else if has_prefix ~prefix:"unsafe_" member then
        report ctx ~loc ~rule:"R5"
          (name
         ^ " skips bounds checks outside a (* lint: hot *) fence; unsafe Bigarray access belongs inside an audited hot region")

let comparison_ops = [ "="; "<>" ]
let ordered_ops = [ "<"; "<="; ">"; ">=" ]

let check_apply ctx ~loc fname (args : (Asttypes.arg_label * Parsetree.expression) list) =
  if float_cmp_home ctx.x_rel then ()
  else
    let operands = List.map snd args in
    let fname = strip_stdlib fname in
    if (List.mem fname comparison_ops || fname = "compare") && List.length operands >= 2
       && List.exists is_floatish operands
    then
      report ctx ~loc ~rule:"R3"
        ("float operand under polymorphic " ^ fname
       ^ "; exact float equality corrupts the F(2d*) threshold logic — use Stats.Float_cmp")
    else if List.mem fname ordered_ops && List.exists is_abs_application operands then
      report ctx ~loc ~rule:"R3"
        "hand-rolled abs_float epsilon test; use Stats.Float_cmp.approx_eq"

let walk_structure ctx str =
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx ~loc:e.pexp_loc (ident_name txt)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        check_apply ctx ~loc:e.pexp_loc (ident_name txt) args
    | Pexp_construct ({ txt; _ }, _)
      when ident_name txt = "::"
           && in_hot ctx e.pexp_loc.Location.loc_start.Lexing.pos_lnum ->
        report ctx ~loc:e.pexp_loc ~rule:"R5" "list cons allocates inside a (* lint: hot *) region"
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it str

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

(* The parse-pass diagnostics of one prepared file, unsorted and
   unsuppressed; [Dcl_lint] merges them with the typed pass and applies
   the suppressions once.  [mli_exists]: [None] checks the filesystem
   next to the file's disk path; tests pass [Some _] to pin the
   answer. *)
let check ?mli_exists (fi : file_info) =
  let ctx =
    { x_file = fi.f_path; x_rel = fi.f_rel; x_hot = fi.f_hot; x_ba_aliases = []; x_diags = [] }
  in
  let parse_diags =
    try
      let str = parse_structure ~file:fi.f_path fi.f_src in
      ctx.x_ba_aliases <- bigarray_aliases str;
      walk_structure ctx str;
      []
    with
    | Syntaxerr.Error _ ->
        [ mk ~file:fi.f_path ~line:1 ~col:0 ~rule:"R0" "syntax error; cannot lint" ]
    | e ->
        [ mk ~file:fi.f_path ~line:1 ~col:0 ~rule:"R0" ("parse failure: " ^ Printexc.to_string e) ]
  in
  (if in_lib fi.f_rel && Filename.check_suffix fi.f_rel ".ml" then
     let exists =
       match mli_exists with
       | Some b -> b
       | None ->
           fi.f_disk_path <> ""
           && Sys.file_exists (Filename.chop_suffix fi.f_disk_path ".ml" ^ ".mli")
     in
     if not exists then
       ctx.x_diags <-
         mk ~file:fi.f_path ~line:1 ~col:0 ~rule:"R6"
           ("module " ^ Filename.basename fi.f_rel ^ " exposes its full implementation; add a .mli")
         :: ctx.x_diags);
  ctx.x_diags @ fi.f_fence_diags @ malformed_diags fi @ parse_diags

(* Standalone parse-only lint of one source, as dcl-lint v1 behaved:
   used by the unit tests and anywhere no .cmt is available. *)
let lint_source ?(disk_path = "") ?mli_exists ~path src =
  let fi = file_info ~disk_path ~path src in
  apply_suppressions fi.f_directives (sort_diags (check ?mli_exists fi))

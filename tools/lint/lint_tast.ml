(* Typed-tree substrate for pass 2: loading and indexing the .cmt
   files dune emits (bin_annot is on by default), normalizing the
   [Path.t]s the typer records, and the small type predicates the
   R7-R9 rule modules share.

   Path normalization matters because dune-wrapped libraries mangle
   module names: the typer sees [Stats.Pool.run] as
   [Stats__Pool.run], and [Hashtbl.fold] as [Stdlib__Hashtbl.fold] (a
   stdlib alias module).  [norm_path] maps each component to the text
   after its last "__" and drops a leading [Stdlib], so rule tables can
   be written against the source-level names ([Pool.run],
   [Hashtbl.fold], [Mutex.lock]). *)

open Lint_common

(* ------------------------------------------------------------------ *)
(* Path and name normalization. *)

let last_after_dunder s =
  match String.rindex_opt s '_' with
  | Some i when i > 0 && s.[i - 1] = '_' && i + 1 < String.length s ->
      String.sub s (i + 1) (String.length s - i - 1)
  | _ -> s

let norm_name name =
  let comps =
    String.split_on_char '.' name
    |> List.map last_after_dunder
    |> List.filter (fun c -> c <> "")
  in
  let comps = match comps with "Stdlib" :: (_ :: _ as tl) -> tl | l -> l in
  String.concat "." comps

let norm_path p = norm_name (Path.name p)

(* Head ident of an application: the normalized path when the function
   position is a plain identifier. *)
let head_name (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (norm_path p) | _ -> None

(* Like [head_name], but looks through curried application heads: the
   typer rewrites [x |> f a] into an application whose function
   position is the partial application [f a], so the interesting ident
   sits one (or more) Texp_apply levels down. *)
let rec curried_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (norm_path p)
  | Texp_apply (h, _) -> curried_head h
  | _ -> None

(* The bound variable of a binding pattern: a plain [Tpat_var], or the
   [Tpat_alias] the typer produces for [let x : t = e]. *)
let pat_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name)
  | Tpat_alias (_, id, name) -> Some (id, name)
  | _ -> None

(* (enclosing module, value) view of a normalized dotted path:
   ["Pool.run"] -> [Some ("Pool", "run")]; a bare ident has no module
   component. *)
let split_last name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i ->
      let head = String.sub name 0 i in
      let last = String.sub name (i + 1) (String.length name - i - 1) in
      let parent =
        match String.rindex_opt head '.' with
        | None -> head
        | Some j -> String.sub head (j + 1) (String.length head - j - 1)
      in
      Some (parent, last)

(* ------------------------------------------------------------------ *)
(* Type predicates. *)

let rec ty_constr_name (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Some (norm_path p)
  | Tpoly (ty, _) -> ty_constr_name ty
  | _ -> None

let is_float_ty ty = ty_constr_name ty = Some "float"

(* The outermost constructor decides whether a top-level binding is
   mutable state for R7.  Mutable records of project-local types are
   not resolvable without an environment, so they are out of scope
   (DESIGN.md §14 documents the limitation); every shared cell in this
   repository is one of these stdlib containers. *)
let mutable_container ty =
  match ty_constr_name ty with
  | Some ("ref" | "array" | "bytes") as s -> s
  | Some ("Atomic.t" | "Hashtbl.t" | "Queue.t" | "Stack.t" | "Buffer.t") as s -> s
  | _ -> None

(* [shared] state whose outermost type is one of these synchronizes by
   construction and needs no [guarded-by] clause. *)
let self_guarded ty =
  match ty_constr_name ty with
  | Some ("Atomic.t" | "Mutex.t" | "Condition.t" | "Semaphore.Counting.t") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Location helpers. *)

let loc_line (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

let report_at diags ~file ~loc ~rule msg =
  diags := mk ~file ~line:(loc_line loc) ~col:(loc_col loc) ~rule msg :: !diags

(* ------------------------------------------------------------------ *)
(* The .cmt index: every .cmt under the given roots, keyed by the
   basename of the source file it was compiled from, resolved against a
   requested source path by suffix match.  Reading a header is cheap
   (one Marshal.from_channel), so the index loads eagerly. *)

type entry = { e_cmt : string; e_source : string; e_str : Typedtree.structure }

type index = { by_base : (string, entry list) Hashtbl.t }

let empty_index () = { by_base = Hashtbl.create 8 }

let load_cmt path =
  match (Cmt_format.read_cmt path).cmt_annots with
  | Cmt_format.Implementation str -> Some str
  | _ -> None
  | exception _ -> None

let add_root idx root =
  List.iter
    (fun cmt ->
      match Cmt_format.read_cmt cmt with
      | { cmt_sourcefile = Some src; cmt_annots = Cmt_format.Implementation str; _ } ->
          let base = Filename.basename src in
          let prev = Option.value ~default:[] (Hashtbl.find_opt idx.by_base base) in
          Hashtbl.replace idx.by_base base
            ({ e_cmt = cmt; e_source = src; e_str = str } :: prev)
      | _ | (exception _) -> ())
    (cmt_files root)

let build_index roots =
  let idx = empty_index () in
  List.iter (add_root idx) roots;
  idx

(* Suffix match in either direction, aligned on '/' boundaries, so
   "lib/stats/pool.ml" resolves against a cmt compiled from
   "/abs/prefix/lib/stats/pool.ml" and vice versa. *)
let path_matches a b =
  let a = String.concat "/" (segments a) and b = String.concat "/" (segments b) in
  let tail_of whole suf =
    let lw = String.length whole and ls = String.length suf in
    lw > ls && String.sub whole (lw - ls - 1) (ls + 1) = "/" ^ suf
  in
  a = b || tail_of a b || tail_of b a

let find idx ~source =
  match Hashtbl.find_opt idx.by_base (Filename.basename source) with
  | None | Some [] -> None
  | Some [ e ] -> Some e
  | Some entries -> (
      match List.find_opt (fun e -> path_matches e.e_source source) entries with
      | Some e -> Some e
      | None -> None)

(* ------------------------------------------------------------------ *)
(* One typed unit, ready for the rule modules. *)

type unit_ctx = {
  u_fi : file_info;
  u_str : Typedtree.structure;
  u_modname : string; (* "Pool" for lib/stats/pool.ml *)
}

let modname_of_source path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let unit_of_entry (fi : file_info) (e : entry) =
  { u_fi = fi; u_str = e.e_str; u_modname = modname_of_source fi.f_path }

(* Iterate the structure-level value bindings of a unit, including
   those of nested [module M = struct ... end] definitions, with the
   innermost enclosing module name ("" at the unit's own top level).
   Functor bodies and first-class modules are not descended into:
   top-level mutable state lives in plain nested modules here. *)
let iter_top_bindings (str : Typedtree.structure) f =
  let rec go_str prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (f prefix) vbs
        | Tstr_module mb -> go_mb prefix mb
        | Tstr_recmodule mbs -> List.iter (go_mb prefix) mbs
        | _ -> ())
      str.str_items
  and go_mb _prefix (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "" in
    match mb.mb_expr.mod_desc with
    | Tmod_structure s -> go_str name s
    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) -> go_str name s
    | _ -> ()
  in
  go_str "" str

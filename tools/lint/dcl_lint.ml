(* dcl-lint: AST-level contract checker for the determinism and
   domain-safety invariants of this repository.

   The reproduction's headline guarantees — bit-identical EM results
   serial vs parallel, and a zero-allocation disabled observability
   path — are structural properties of the source, so they are checked
   structurally: every [lib/], [bin/] and [bench/] implementation is
   parsed with compiler-libs and walked with [Ast_iterator], and each
   rule reports a diagnostic (file:line:col, rule id, message) when a
   forbidden construct appears outside its sanctioned home.

   Rules (short id / long id):

   - R1 [rng-containment]     [Random.*] and [Unix.gettimeofday]-style
                              wall-clock seeding only in
                              [lib/stats/rng.ml].  All randomness must
                              flow through the pre-split [Stats.Rng]
                              streams, or per-restart/per-replicate
                              determinism silently dies.
   - R2 [domain-containment]  [Domain.*], [Mutex.*], [Condition.*],
                              [Atomic.*] only in [lib/stats/pool.ml],
                              [lib/stats/par.ml], [lib/em/em_sweep.ml]
                              (the within-sweep chunk driver),
                              [lib/obs/] and [lib/fleet/] (per-domain
                              workspace caching + epoch fan-out).
   - R3 [float-cmp]           no [=] / [<>] / [compare] on float-typed
                              operands (syntactic float literals,
                              float-returning applications, registered
                              float idents), and no hand-rolled
                              [abs_float (a -. b) < eps] tests; route
                              through [Stats.Float_cmp].
   - R4 [io-containment]      no [exit] / [Printf.printf] /
                              [prerr_endline] and friends in [lib/]:
                              binaries own process control and stdout.
   - R5 [hot-alloc]           inside [(* lint: hot *)] ...
                              [(* lint: end-hot *)] fences, no
                              closure-allocating combinators
                              ([List.*], [Array.map]/[init]/..., any
                              [Printf.*]/[Format.*]), no list-cons
                              allocation, and no allocating Bigarray
                              members ([create]/[sub]/...; the
                              load/store accessors are whitelisted).
                              Dually, [unsafe_*] Bigarray accessors are
                              confined TO the fences: bounds-unchecked
                              access is only tolerated where the
                              surrounding index arithmetic is audited.
                              Top-level [module Ba = Bigarray.Array1]
                              style aliases are resolved before the
                              walk.
   - R6 [missing-mli]         every [lib/] module ships an interface.

   Any diagnostic can be suppressed for its own line or the next line
   with [(* lint: allow RULE reason *)]; the reason is mandatory and a
   bare allow is itself a diagnostic (R0 [bad-lint-comment]). *)

type diag = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : string; (* short id, e.g. "R3" *)
  d_id : string; (* long id, e.g. "float-cmp" *)
  d_message : string;
}

let rules =
  [
    ("R0", "bad-lint-comment");
    ("R1", "rng-containment");
    ("R2", "domain-containment");
    ("R3", "float-cmp");
    ("R4", "io-containment");
    ("R5", "hot-alloc");
    ("R6", "missing-mli");
  ]

let long_id short = try List.assoc short rules with Not_found -> short

(* Accept either the short or the long spelling of a rule id. *)
let normalize_rule s =
  let s = String.lowercase_ascii s in
  let matches (short, long) =
    String.lowercase_ascii short = s || String.lowercase_ascii long = s
  in
  match List.find_opt matches rules with
  | Some (short, _) -> Some short
  | None -> None

let mk ~file ~line ~col ~rule message =
  { d_file = file; d_line = line; d_col = col; d_rule = rule; d_id = long_id rule; d_message = message }

(* ------------------------------------------------------------------ *)
(* Comment scanning.  The parser drops comments, and both the
   suppression grammar and the hot fences live in comments, so a small
   lexical pass recovers them: it tracks string literals, char literals
   and nested comments well enough for this codebase's surface
   syntax. *)

type comment = { c_line : int; c_text : string }

let scan_comments src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let buf = Buffer.create 64 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      Buffer.clear buf;
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '\n' then begin
          incr line;
          Buffer.add_char buf '\n';
          incr i
        end
        else if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      out := { c_line = start_line; c_text = Buffer.contents buf } :: !out
    end
    else if c = '"' then begin
      (* String literal: skip to the unescaped closing quote. *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' -> i := !i + 2
        | '"' ->
            fin := true;
            incr i
        | '\n' ->
            incr line;
            incr i
        | _ -> incr i
      done
    end
    else if c = '\'' then
      (* Char literal ['x'] or ['\n']; anything else (a type variable)
         is just a quote. *)
      if !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 2] = '\'' then i := !i + 3
      else if !i + 1 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && !j <= !i + 5 && src.[!j] <> '\'' do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then i := !j + 1 else incr i
      end
      else incr i
    else incr i
  done;
  List.rev !out

type directive =
  | Allow of { a_rule : string; a_line : int }
  | Hot_start of int
  | Hot_end of int
  | Expect of { e_rule : string; e_line : int }
  | Fixture_path of string
  | Malformed of { m_line : int; m_message : string }

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let parse_directive { c_line; c_text } =
  let t = String.trim c_text in
  match strip_prefix ~prefix:"lint:" t with
  | Some rest -> (
      match split_words rest with
      | [ "hot" ] -> Some (Hot_start c_line)
      | [ "end-hot" ] -> Some (Hot_end c_line)
      | "allow" :: rule :: _ :: _ -> (
          match normalize_rule rule with
          | Some "R0" | None ->
              Some (Malformed { m_line = c_line; m_message = "unknown rule in allow: " ^ rule })
          | Some r -> Some (Allow { a_rule = r; a_line = c_line }))
      | [ "allow"; rule ] ->
          Some
            (Malformed
               { m_line = c_line; m_message = "allow " ^ rule ^ " needs a reason" })
      | [ "allow" ] ->
          Some (Malformed { m_line = c_line; m_message = "allow needs a rule and a reason" })
      | _ ->
          Some (Malformed { m_line = c_line; m_message = "unrecognized lint directive: " ^ rest }))
  | None -> (
      match strip_prefix ~prefix:"expect:" t with
      | Some rest -> (
          match split_words rest with
          | [ rule ] -> (
              match normalize_rule rule with
              | Some r -> Some (Expect { e_rule = r; e_line = c_line })
              | None ->
                  Some
                    (Malformed { m_line = c_line; m_message = "unknown rule in expect: " ^ rule }))
          | _ -> Some (Malformed { m_line = c_line; m_message = "expect takes one rule id" }))
      | None -> (
          match strip_prefix ~prefix:"lint-fixture:" t with
          | Some rest -> Some (Fixture_path (String.trim rest))
          | None -> None))

(* Fold the fence directives into inclusive line ranges; unmatched
   fences are diagnostics, not crashes. *)
let hot_ranges ~file directives =
  let ranges = ref [] in
  let bad = ref [] in
  let open_start = ref None in
  List.iter
    (fun d ->
      match d with
      | Hot_start l -> (
          match !open_start with
          | None -> open_start := Some l
          | Some _ ->
              bad := mk ~file ~line:l ~col:0 ~rule:"R0" "nested (* lint: hot *) fence" :: !bad)
      | Hot_end l -> (
          match !open_start with
          | Some s ->
              ranges := (s, l) :: !ranges;
              open_start := None
          | None ->
              bad :=
                mk ~file ~line:l ~col:0 ~rule:"R0" "(* lint: end-hot *) without an open fence"
                :: !bad)
      | _ -> ())
    directives;
  (match !open_start with
  | Some s ->
      bad := mk ~file ~line:s ~col:0 ~rule:"R0" "unclosed (* lint: hot *) fence" :: !bad
  | None -> ());
  (List.rev !ranges, List.rev !bad)

(* ------------------------------------------------------------------ *)
(* Path classification.  Files are judged by where they sit in the
   repository ([lib/] vs [bin/] vs [bench/]); fixture files declare a
   virtual location with [(* lint-fixture: lib/... *)] so every rule
   can be exercised from [test/lint_fixtures/]. *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(* The repo-relative path: the suffix starting at the last [lib], [bin]
   or [bench] segment, so absolute paths classify the same way. *)
let rel_path path =
  let segs = segments path in
  let rec last_root acc rev =
    match rev with
    | [] -> None
    | s :: _ when s = "lib" || s = "bin" || s = "bench" -> Some (s :: acc)
    | s :: tl -> last_root (s :: acc) tl
  in
  match last_root [] (List.rev segs) with
  | Some suffix -> String.concat "/" suffix
  | None -> String.concat "/" segs

let in_lib rel = match segments rel with "lib" :: _ -> true | _ -> false

let rng_home rel = rel = "lib/stats/rng.ml"
let float_cmp_home rel = rel = "lib/stats/float_cmp.ml"

let concurrency_home rel =
  match rel with
  | "lib/stats/pool.ml" | "lib/stats/par.ml" | "lib/em/em_sweep.ml" -> true
  | _ -> (
      match segments rel with
      | "lib" :: "obs" :: _ -> true
      (* The fleet layer owns per-domain workspace caching (Domain.DLS)
         and pool fan-out, so it is a legitimate home for domain
         primitives. *)
      | "lib" :: "fleet" :: _ -> true
      (* The sketch triage layer sits on the fleet's push path and may
         reach for the same per-domain primitives. *)
      | "lib" :: "sketch" :: _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* AST rules. *)

let ident_name lid = try String.concat "." (Longident.flatten lid) with _ -> ""

let strip_stdlib name =
  match strip_prefix ~prefix:"Stdlib." name with Some r -> r | None -> name

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* R1: references that reach for ambient randomness or wall-clock
   seeding.  [Random] covers the whole stdlib module; the [Unix] names
   are the classic seed sources. *)
let rng_banned name =
  has_prefix ~prefix:"Random." name
  || name = "Random"
  || name = "Unix.gettimeofday"
  || name = "Unix.time"

(* R2: multicore primitives. *)
let concurrency_banned name =
  List.exists
    (fun p -> has_prefix ~prefix:p name)
    [ "Domain."; "Mutex."; "Condition."; "Atomic." ]

(* R4: process control and stdout/stderr from library code. *)
let io_banned name =
  List.mem name
    [
      "exit";
      "print_string";
      "print_endline";
      "print_newline";
      "print_int";
      "print_float";
      "print_char";
      "prerr_endline";
      "prerr_string";
      "prerr_newline";
      "Printf.printf";
      "Printf.eprintf";
      "Format.printf";
      "Format.eprintf";
    ]

(* R5: combinators whose call (or partial application) allocates a
   closure or a fresh structure.  Array accessors that compile to loads
   and stores are whitelisted; everything else in [Array], all of
   [List], and any formatting is banned inside a hot fence. *)
let array_access_whitelist =
  [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "blit"; "fill"; "unsafe_blit"; "unsafe_fill" ]

let allocating name =
  match String.index_opt name '.' with
  | Some i -> (
      let m = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match m with
      | "List" | "Printf" | "Format" -> true
      | "Array" -> not (List.mem rest array_access_whitelist)
      | _ -> false)
  | None -> name = "@" || name = "^"

(* R5, Bigarray leg.  The EM hot state lives on [Bigarray.Array1]
   buffers, so fences must admit the accessors that compile to plain
   loads and stores — and nothing else: [create] maps fresh memory,
   [sub]/[slice] allocate proxy records.  [unsafe_*] accessors have the
   dual constraint: they skip bounds checks, so they are confined TO
   the fences, where the index arithmetic is audited; an unsafe access
   in ordinary code is a diagnostic even though it does not allocate. *)
let bigarray_access_whitelist =
  [ "get"; "set"; "unsafe_get"; "unsafe_set"; "dim"; "fill"; "blit"; "unsafe_fill"; "unsafe_blit" ]

let bigarray_path path = path = "Bigarray" || has_prefix ~prefix:"Bigarray." path

(* Member access through a [Bigarray] array-op submodule
   ([Bigarray.Array1.get]) or a registered top-level alias
   ([module Ba = Bigarray.Array1], so [Ba.get]).  Members of the bare
   [Bigarray] module itself — the kind and layout values [float64],
   [c_layout], ... — are plain constants and not array operations, so
   they are deliberately not captured. *)
let bigarray_member ~aliases name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i ->
      let path = String.sub name 0 i in
      let member = String.sub name (i + 1) (String.length name - i - 1) in
      let qualifies =
        has_prefix ~prefix:"Bigarray." path
        || List.exists (fun a -> a = path || has_prefix ~prefix:(a ^ ".") path) aliases
      in
      if qualifies then Some member else None

let bigarray_aliases str =
  let acc = ref [] in
  let open Ast_iterator in
  let module_binding self (mb : Parsetree.module_binding) =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Parsetree.Pmod_ident { txt; _ } ->
        if bigarray_path (ident_name txt) then acc := name :: !acc
    | _ -> ());
    default_iterator.module_binding self mb
  in
  let it = { default_iterator with module_binding } in
  it.structure it str;
  !acc

(* R3: syntactic float-ness.  This is an approximation — the linter has
   no typer — but it is the approximation the contract asks for: float
   literals, float arithmetic, float-returning stdlib calls, and a
   registry of idents that are floats by project convention. *)
let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_returning =
  [
    "float_of_int";
    "float_of_string";
    "abs_float";
    "sqrt";
    "log";
    "log10";
    "exp";
    "ceil";
    "floor";
    "mod_float";
    "atan";
    "atan2";
    "cos";
    "sin";
    "tan";
    "min_float";
    "max_float";
  ]

let float_consts = [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* Project registry: idents that are floats wherever they appear in
   this codebase (quantile/threshold machinery of Theorems 1-2). *)
let known_float_idents =
  [ "threshold"; "tolerance"; "eps"; "log_likelihood"; "logl"; "mass_threshold"; "qdelay" ]

let float_module_non_float =
  [
    "Float.equal";
    "Float.compare";
    "Float.is_nan";
    "Float.is_finite";
    "Float.is_integer";
    "Float.to_int";
    "Float.to_string";
    "Float.sign_bit";
  ]

let rec is_floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } ->
      let name = strip_stdlib (ident_name txt) in
      List.mem name float_consts || List.mem name known_float_idents
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let name = strip_stdlib (ident_name txt) in
      List.mem name float_arith || List.mem name float_returning
      || (has_prefix ~prefix:"Float." name && not (List.mem name float_module_non_float))
  | Pexp_constraint (inner, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      ident_name txt = "float" || is_floatish inner
  | _ -> false

let is_abs_application (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let name = strip_stdlib (ident_name txt) in
      name = "abs_float" || name = "Float.abs"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* One file. *)

type context = {
  x_file : string; (* path as reported in diagnostics *)
  x_rel : string; (* repo-relative path used for classification *)
  x_hot : (int * int) list;
  mutable x_ba_aliases : string list; (* top-level aliases of Bigarray.* *)
  mutable x_diags : diag list;
}

let report ctx ~loc ~rule message =
  let p = loc.Location.loc_start in
  ctx.x_diags <-
    mk ~file:ctx.x_file ~line:p.Lexing.pos_lnum
      ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
      ~rule message
    :: ctx.x_diags

let in_hot ctx line = List.exists (fun (a, b) -> line >= a && line <= b) ctx.x_hot

let check_ident ctx ~loc name =
  let name = strip_stdlib name in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  if rng_banned name && not (rng_home ctx.x_rel) then
    report ctx ~loc ~rule:"R1"
      (name
     ^ " breaks the pre-split RNG determinism contract; draw from a Stats.Rng stream (lib/stats/rng.ml is the only sanctioned home)");
  if concurrency_banned name && not (concurrency_home ctx.x_rel) then
    report ctx ~loc ~rule:"R2"
      (name
     ^ " outside lib/stats/pool.ml, lib/stats/par.ml, lib/em/em_sweep.ml, lib/obs/, lib/fleet/ or lib/sketch/; route parallelism through Stats.Pool");
  if in_lib ctx.x_rel && io_banned name then
    report ctx ~loc ~rule:"R4"
      (name ^ " in library code; binaries own process control and stdout");
  if in_hot ctx line && allocating name then
    report ctx ~loc ~rule:"R5"
      (name ^ " allocates inside a (* lint: hot *) region");
  match bigarray_member ~aliases:ctx.x_ba_aliases name with
  | None -> ()
  | Some member ->
      if in_hot ctx line then begin
        if not (List.mem member bigarray_access_whitelist) then
          report ctx ~loc ~rule:"R5"
            (name
           ^ " allocates inside a (* lint: hot *) region; only the load/store Bigarray accessors are fence-safe")
      end
      else if has_prefix ~prefix:"unsafe_" member then
        report ctx ~loc ~rule:"R5"
          (name
         ^ " skips bounds checks outside a (* lint: hot *) fence; unsafe Bigarray access belongs inside an audited hot region")

let comparison_ops = [ "=" ; "<>" ]
let ordered_ops = [ "<"; "<="; ">"; ">=" ]

let check_apply ctx ~loc fname (args : (Asttypes.arg_label * Parsetree.expression) list) =
  if float_cmp_home ctx.x_rel then ()
  else
    let operands = List.map snd args in
    let fname = strip_stdlib fname in
    if (List.mem fname comparison_ops || fname = "compare") && List.length operands >= 2
       && List.exists is_floatish operands
    then
      report ctx ~loc ~rule:"R3"
        ("float operand under polymorphic " ^ fname
       ^ "; exact float equality corrupts the F(2d*) threshold logic — use Stats.Float_cmp")
    else if List.mem fname ordered_ops && List.exists is_abs_application operands then
      report ctx ~loc ~rule:"R3"
        "hand-rolled abs_float epsilon test; use Stats.Float_cmp.approx_eq"

let walk_structure ctx str =
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx ~loc:e.pexp_loc (ident_name txt)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        check_apply ctx ~loc:e.pexp_loc (ident_name txt) args
    | Pexp_construct ({ txt; _ }, _)
      when ident_name txt = "::"
           && in_hot ctx e.pexp_loc.Location.loc_start.Lexing.pos_lnum ->
        report ctx ~loc:e.pexp_loc ~rule:"R5" "list cons allocates inside a (* lint: hot *) region"
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it str

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

(* Suppression: an allow comment covers its own line and the next. *)
let apply_suppressions directives diags =
  let allows =
    List.filter_map (function Allow { a_rule; a_line } -> Some (a_rule, a_line) | _ -> None) directives
  in
  List.filter
    (fun d ->
      d.d_rule = "R0"
      || not
           (List.exists
              (fun (rule, line) -> rule = d.d_rule && (d.d_line = line || d.d_line = line + 1))
              allows))
    diags

(* [mli_exists]: [None] checks the filesystem next to [disk_path];
   tests pass [Some _] to pin the answer. *)
let lint_source ?(disk_path = "") ?mli_exists ~path src =
  let comments = scan_comments src in
  let directives = List.filter_map parse_directive comments in
  let fixture_path =
    List.find_map (function Fixture_path p -> Some p | _ -> None) directives
  in
  let effective = match fixture_path with Some p -> p | None -> path in
  let rel = rel_path effective in
  let hot, fence_diags = hot_ranges ~file:path directives in
  let malformed =
    List.filter_map
      (function
        | Malformed { m_line; m_message } ->
            Some (mk ~file:path ~line:m_line ~col:0 ~rule:"R0" m_message)
        | _ -> None)
      directives
  in
  let ctx = { x_file = path; x_rel = rel; x_hot = hot; x_ba_aliases = []; x_diags = [] } in
  let parse_diags =
    try
      let str = parse_structure ~file:path src in
      ctx.x_ba_aliases <- bigarray_aliases str;
      walk_structure ctx str;
      []
    with
    | Syntaxerr.Error _ -> [ mk ~file:path ~line:1 ~col:0 ~rule:"R0" "syntax error; cannot lint" ]
    | e ->
        [ mk ~file:path ~line:1 ~col:0 ~rule:"R0" ("parse failure: " ^ Printexc.to_string e) ]
  in
  (if in_lib rel && Filename.check_suffix rel ".ml" then
     let exists =
       match mli_exists with
       | Some b -> b
       | None ->
           disk_path <> ""
           && Sys.file_exists (Filename.chop_suffix disk_path ".ml" ^ ".mli")
     in
     if not exists then
       ctx.x_diags <-
         mk ~file:path ~line:1 ~col:0 ~rule:"R6"
           ("module " ^ Filename.basename rel ^ " exposes its full implementation; add a .mli")
         :: ctx.x_diags);
  let diags =
    List.sort
      (fun a b -> if a.d_line <> b.d_line then compare a.d_line b.d_line else compare a.d_col b.d_col)
      (ctx.x_diags @ fence_diags @ malformed @ parse_diags)
  in
  apply_suppressions directives diags

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path = lint_source ~disk_path:path ~path (read_file path)

(* ------------------------------------------------------------------ *)
(* Tree walking and output. *)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || entry.[0] = '.' then []
           else ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","id":"%s","message":"%s"}|}
    (json_escape d.d_file) d.d_line d.d_col d.d_rule d.d_id (json_escape d.d_message)

let print_diags ~json diags =
  if json then
    print_string ("[" ^ String.concat ",\n " (List.map diag_to_json diags) ^ "]\n")
  else
    List.iter
      (fun d ->
        Printf.printf "%s:%d:%d [%s/%s] %s\n" d.d_file d.d_line d.d_col d.d_rule d.d_id d.d_message)
      diags

(* ------------------------------------------------------------------ *)
(* Fixture self-test: each fixture marks its expected diagnostics with
   [(* expect: RULE *)] on the offending line; the run passes when
   every fixture produces exactly its expected (line, rule) multiset —
   suppressed variants expect nothing and must produce nothing. *)

let fixture_expectations src =
  scan_comments src |> List.filter_map parse_directive
  |> List.filter_map (function Expect { e_rule; e_line } -> Some (e_line, e_rule) | _ -> None)

let run_fixtures dir =
  let files = ml_files dir in
  if files = [] then begin
    Printf.printf "dcl-lint: no fixtures under %s\n" dir;
    1
  end
  else begin
    let failures = ref 0 in
    let checked = ref 0 in
    List.iter
      (fun path ->
        incr checked;
        let src = read_file path in
        let expected = List.sort compare (fixture_expectations src) in
        let actual =
          List.sort compare
            (List.map (fun d -> (d.d_line, d.d_rule)) (lint_source ~disk_path:path ~path src))
        in
        if expected <> actual then begin
          incr failures;
          let show l =
            String.concat ", " (List.map (fun (ln, r) -> Printf.sprintf "%s@%d" r ln) l)
          in
          Printf.printf "FIXTURE FAIL %s\n  expected: [%s]\n  actual:   [%s]\n" path
            (show expected) (show actual)
        end)
      files;
    if !failures = 0 then begin
      Printf.printf "dcl-lint: %d fixtures ok\n" !checked;
      0
    end
    else begin
      Printf.printf "dcl-lint: %d of %d fixtures failed\n" !failures !checked;
      1
    end
  end

(* ------------------------------------------------------------------ *)
(* CLI. *)

let version = "1.0.0"

let usage =
  String.concat "\n"
    [
      "dcl-lint " ^ version ^ " — project-contract checker (determinism / domain-safety)";
      "";
      "usage: dcl-lint [--json] PATH...         lint .ml files under each PATH";
      "       dcl-lint --fixtures DIR           self-test against expectation fixtures";
      "       dcl-lint --version | --help";
      "";
      "rules:";
      "  R1/rng-containment     Random.* and wall-clock seeding only in lib/stats/rng.ml";
      "  R2/domain-containment  Domain/Mutex/Condition/Atomic only in pool.ml, par.ml,";
      "                         em_sweep.ml, lib/obs/, lib/fleet/, lib/sketch/";
      "  R3/float-cmp           no =, <>, compare on floats; no hand-rolled abs_float epsilon";
      "  R4/io-containment      no exit / printf / prerr in lib/";
      "  R5/hot-alloc           no allocating combinators or Bigarray create/sub inside";
      "                         (* lint: hot *) fences; no unsafe Bigarray access outside them";
      "  R6/missing-mli         lib/ modules must ship a .mli";
      "";
      "suppress one site: (* lint: allow RULE reason *)  — reason is mandatory";
      "exit codes: 0 clean, 1 diagnostics reported, 2 usage error";
    ]

module Cli = struct
  let run args =
    let json = ref false in
    let fixtures = ref None in
    let paths = ref [] in
    let rec parse = function
      | [] -> None
      | "--json" :: tl ->
          json := true;
          parse tl
      | "--fixtures" :: dir :: tl ->
          fixtures := Some dir;
          parse tl
      | [ "--fixtures" ] -> Some "--fixtures needs a directory"
      | ("--version" | "-V") :: _ ->
          print_endline ("dcl-lint " ^ version);
          raise Exit
      | ("--help" | "-h") :: _ ->
          print_endline usage;
          raise Exit
      | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> Some ("unknown option " ^ arg)
      | path :: tl ->
          paths := path :: !paths;
          parse tl
    in
    match parse args with
    | exception Exit -> 0
    | Some err ->
        prerr_endline ("dcl-lint: " ^ err);
        prerr_endline usage;
        2
    | None -> (
        match !fixtures with
        | Some dir -> if Sys.file_exists dir then run_fixtures dir else (prerr_endline ("dcl-lint: no such directory " ^ dir); 2)
        | None ->
            let roots = List.rev !paths in
            if roots = [] then begin
              prerr_endline "dcl-lint: no paths given";
              prerr_endline usage;
              2
            end
            else if List.exists (fun p -> not (Sys.file_exists p)) roots then begin
              prerr_endline "dcl-lint: path does not exist";
              2
            end
            else begin
              let files = List.concat_map ml_files roots in
              let diags = List.concat_map lint_file files in
              print_diags ~json:!json diags;
              if diags = [] then begin
                if not !json then
                  Printf.printf "dcl-lint: %d files clean\n" (List.length files);
                0
              end
              else 1
            end)
end

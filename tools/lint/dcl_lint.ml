(* dcl-lint v2: the two-pass contract checker for the determinism and
   domain-safety invariants of this repository.

   Pass 1 (Lint_parse) parses every source with compiler-libs and walks
   the parsetree: rules R0-R6, no build artifacts needed, runs on
   anything that parses.  Pass 2 (Lint_typed) loads the .cmt files dune
   already emits and walks the typedtree with real type and path
   information: the R7 domain-ownership race checker, the R8
   determinism rules, the R9 lock-safety rule, and type-resolved
   upgrades of R3 (float comparisons from Typedtree types) and R5
   (Bigarray unsafe_* alias tracking).  See lint_common.ml for the
   directive grammar and DESIGN.md §14 for the architecture.

   This module is the facade: the public API the test suite drives
   ([lint_source], [Cli.run], the [diag] record) and the orchestration
   that merges both passes, deduplicates, applies suppressions, and
   renders text / JSON / SARIF. *)

type diag = Lint_common.diag = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : string; (* short id, e.g. "R3" *)
  d_id : string; (* long id, e.g. "float-cmp" *)
  d_message : string;
}

let rules = Lint_common.rules
let normalize_rule = Lint_common.normalize_rule

(* Parse-only lint of one in-memory source: dcl-lint v1 behavior, kept
   for the unit tests and for callers with no .cmt at hand. *)
let lint_source = Lint_parse.lint_source
let lint_file path = lint_source ~disk_path:path ~path (Lint_common.read_file path)

(* SARIF rendering, exported so the test suite can validate the
   document shape without shelling out to the CLI. *)
module Sarif = Lint_sarif

(* ------------------------------------------------------------------ *)
(* The two-pass pipeline. *)

(* Both passes can judge the same site (the parse pass by name
   heuristics, the typed pass from types), so same (file, line, rule)
   collapses to the first — i.e. lowest-column — diagnostic. *)
let dedup_line_rule diags =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (d : diag) ->
      let key = (d.d_file, d.d_line, d.d_rule) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

let prepare path =
  Lint_common.file_info ~disk_path:path ~path (Lint_common.read_file path)

let finish (fi : Lint_common.file_info) raw =
  Lint_common.apply_suppressions fi.f_directives
    (dedup_line_rule (Lint_common.sort_diags raw))

(* Lint [files] (disk paths) with both passes; [cmt_roots] are scanned
   recursively for .cmt files.  With [require_cmt], a lib/ source that
   resolves to no .cmt is itself a diagnostic — the repo sweep uses
   this so the typed rules cannot silently stop running. *)
let lint_files ?(cmt_roots = []) ?(require_cmt = false) files =
  let fis = List.map prepare files in
  let index = Lint_tast.build_index cmt_roots in
  let typed_of = Lint_typed.analyze ~index ~require_cmt fis in
  List.concat_map
    (fun (fi : Lint_common.file_info) ->
      finish fi (Lint_parse.check fi @ typed_of fi.f_path))
    fis

(* ------------------------------------------------------------------ *)
(* Fixture self-test: each fixture marks its expected diagnostics with
   [(* expect: RULE *)] on the offending line; the run passes when
   every fixture produces exactly its expected (line, rule) multiset —
   suppressed variants expect nothing and must produce nothing.
   Fixture corpora that are compiled dune libraries (the typed corpus)
   resolve against the .cmt index like any other source, so R7-R9
   expectations work the same way. *)

let run_fixtures ?(cmt_roots = []) dirs =
  let files = List.concat_map Lint_common.ml_files dirs in
  if files = [] then begin
    Printf.printf "dcl-lint: no fixtures under %s\n" (String.concat " " dirs);
    1
  end
  else begin
    let fis = List.map prepare files in
    let index = Lint_tast.build_index cmt_roots in
    let typed_of = Lint_typed.analyze ~index ~require_cmt:false fis in
    let failures = ref 0 in
    List.iter
      (fun (fi : Lint_common.file_info) ->
        let expected =
          Lint_common.(
            List.filter_map
              (function Expect { e_rule; e_line } -> Some (e_line, e_rule) | _ -> None)
              fi.f_directives)
          |> List.sort compare
        in
        let diags = finish fi (Lint_parse.check fi @ typed_of fi.f_path) in
        let actual = List.sort compare (List.map (fun d -> (d.d_line, d.d_rule)) diags) in
        if expected <> actual then begin
          incr failures;
          let show l =
            String.concat ", " (List.map (fun (ln, r) -> Printf.sprintf "%s@%d" r ln) l)
          in
          Printf.printf "FIXTURE FAIL %s\n  expected: [%s]\n  actual:   [%s]\n" fi.f_path
            (show expected) (show actual)
        end)
      fis;
    if !failures = 0 then begin
      Printf.printf "dcl-lint: %d fixtures ok\n" (List.length files);
      0
    end
    else begin
      Printf.printf "dcl-lint: %d of %d fixtures failed\n" !failures (List.length files);
      1
    end
  end

(* ------------------------------------------------------------------ *)
(* CLI. *)

let version = "2.0.0"

let usage =
  String.concat "\n"
    ([
       "dcl-lint " ^ version ^ " — project-contract checker (determinism / domain-safety)";
       "";
       "usage: dcl-lint [options] PATH...        lint .ml files under each PATH";
       "       dcl-lint --fixtures DIR [...]     self-test against expectation fixtures";
       "       dcl-lint --version | --help";
       "";
       "options:";
       "  --json                 machine-readable diagnostics on stdout";
       "  --sarif FILE           also write SARIF 2.1.0 to FILE ('-' for stdout)";
       "  --cmt ROOT             scan ROOT recursively for .cmt files (repeatable);";
       "                         enables the typed pass (R7-R9, typed R3/R5)";
       "  --require-cmt          lib/ sources with no .cmt are a diagnostic (R0)";
       "  --only RULES           comma-separated rule filter, e.g. R7,R9 or";
       "                         lock-safety (R0 is always reported)";
       "  --changed-files FILE   lint only the files listed in FILE (one path per";
       "                         line), intersected with the PATH... sweep";
       "";
       "rules:";
     ]
    @ List.map
        (fun (short, long) ->
          let help =
            match List.assoc_opt short Lint_common.rule_help with
            | Some h -> h
            | None -> long
          in
          Printf.sprintf "  %s/%-18s %s" short long help)
        rules
    @ [
        "";
        "suppress one site: (* lint: allow RULE reason *)  — reason is mandatory";
        "annotate ownership: (* lint: owner driver|worker|shared [guarded-by MUTEX] *)";
        "exit codes: 0 clean, 1 diagnostics reported, 2 usage error";
      ])

let read_lines path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out |> List.map String.trim |> List.filter (fun l -> l <> "")

module Cli = struct
  let run args =
    let json = ref false in
    let sarif = ref None in
    let cmt_roots = ref [] in
    let require_cmt = ref false in
    let only = ref None in
    let changed_files = ref None in
    let fixtures = ref [] in
    let paths = ref [] in
    let rec parse = function
      | [] -> None
      | "--json" :: tl ->
          json := true;
          parse tl
      | "--sarif" :: file :: tl ->
          sarif := Some file;
          parse tl
      | [ "--sarif" ] -> Some "--sarif needs a file (or '-')"
      | "--cmt" :: root :: tl ->
          cmt_roots := root :: !cmt_roots;
          parse tl
      | [ "--cmt" ] -> Some "--cmt needs a directory"
      | "--require-cmt" :: tl ->
          require_cmt := true;
          parse tl
      | "--only" :: spec :: tl -> (
          let parts = String.split_on_char ',' spec |> List.filter (fun s -> s <> "") in
          let resolved = List.map (fun p -> (p, normalize_rule p)) parts in
          match List.find_opt (fun (_, r) -> r = None) resolved with
          | Some (p, _) -> Some ("unknown rule in --only: " ^ p)
          | None when parts = [] -> Some "--only needs at least one rule"
          | None ->
              only := Some (List.filter_map snd resolved);
              parse tl)
      | [ "--only" ] -> Some "--only needs a comma-separated rule list"
      | "--changed-files" :: file :: tl ->
          if Sys.file_exists file then begin
            changed_files := Some (read_lines file);
            parse tl
          end
          else Some ("--changed-files: no such file " ^ file)
      | [ "--changed-files" ] -> Some "--changed-files needs a file"
      | "--fixtures" :: dir :: tl ->
          fixtures := dir :: !fixtures;
          parse tl
      | [ "--fixtures" ] -> Some "--fixtures needs a directory"
      | ("--version" | "-V") :: _ ->
          print_endline ("dcl-lint " ^ version);
          raise Exit
      | ("--help" | "-h") :: _ ->
          print_endline usage;
          raise Exit
      | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> Some ("unknown option " ^ arg)
      | path :: tl ->
          paths := path :: !paths;
          parse tl
    in
    match parse args with
    | exception Exit -> 0
    | Some err ->
        prerr_endline ("dcl-lint: " ^ err);
        prerr_endline usage;
        2
    | None -> (
        match List.rev !fixtures with
        | _ :: _ as dirs ->
            if List.for_all Sys.file_exists dirs then
              run_fixtures ~cmt_roots:(List.rev !cmt_roots) dirs
            else begin
              prerr_endline "dcl-lint: no such fixture directory";
              2
            end
        | [] ->
            let roots = List.rev !paths in
            if roots = [] then begin
              prerr_endline "dcl-lint: no paths given";
              prerr_endline usage;
              2
            end
            else if List.exists (fun p -> not (Sys.file_exists p)) roots then begin
              prerr_endline "dcl-lint: path does not exist";
              2
            end
            else begin
              let files = List.concat_map Lint_common.ml_files roots in
              let files =
                match !changed_files with
                | None -> files
                | Some changed ->
                    List.filter
                      (fun f -> List.exists (Lint_tast.path_matches f) changed)
                      files
              in
              let diags =
                lint_files ~cmt_roots:(List.rev !cmt_roots) ~require_cmt:!require_cmt
                  files
              in
              let diags =
                match !only with
                | None -> diags
                | Some keep ->
                    List.filter (fun d -> d.d_rule = "R0" || List.mem d.d_rule keep) diags
              in
              (match !sarif with
              | Some file -> Lint_sarif.write ~file diags
              | None -> ());
              Lint_common.print_diags ~json:!json diags;
              if diags = [] then begin
                if not !json then
                  Printf.printf "dcl-lint: %d files clean\n" (List.length files);
                0
              end
              else 1
            end)
end

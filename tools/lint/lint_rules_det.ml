(* R8 [determinism], plus the type-resolved upgrades of R3 and R5 that
   the parse pass approximates syntactically.

   R8 has three legs, all serving the bit-identical-fingerprint
   contract (ROADMAP items 1-3):

   - Hashtbl iteration order is unspecified, so any
     [Hashtbl.iter/fold/to_seq*] in library code must sit under a sort
     at the collection point.  "Under a sort" is judged on the typed
     tree: the iteration is fine anywhere inside the argument subtree
     of a [List.sort]/[Array.sort]-family application, including the
     data side of a [|>] / [@@] pipe whose function side sorts.

   - Physical equality ([==] / [!=]) on floats compares boxes, not
     values, and is never deterministic across allocators.

   - Wall-clock reads ([Sys.time], [Unix.gettimeofday], [Unix.time])
     outside the sanctioned homes (lib/stats/rng.ml seeds, lib/obs
     timestamps) smuggle nondeterminism into library results.

   Typed R3: polymorphic [=] / [<>] / [compare] whose first operand
   *types* as float — catches [let eq (a : float) b = a = b], which no
   syntactic heuristic can.  Typed R5: a let-binding that aliases a
   Bigarray [unsafe_*] accessor is tracked by its [Ident], and any use
   of the alias outside a (* lint: hot *) fence is flagged, closing the
   rename loophole of the name-based pass. *)

open Lint_common
open Lint_tast

let sort_heads =
  [
    "List.sort";
    "List.sort_uniq";
    "List.stable_sort";
    "List.fast_sort";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

let hashtbl_iteration = function
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
      true
  | _ -> false

let wall_clock = function
  | "Sys.time" | "Unix.gettimeofday" | "Unix.time" -> true
  | _ -> false

let contains_sort (e : Typedtree.expression) =
  let found = ref false in
  let open Tast_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> if List.mem (norm_path p) sort_heads then found := true
    | _ -> ());
    if not !found then default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  !found

let first_arg_is_float args =
  match List.find_opt (fun (_, a) -> a <> None) args with
  | Some (_, Some (a : Typedtree.expression)) -> is_float_ty a.exp_type
  | _ -> false

(* Bigarray array-op [unsafe_*] accessors, post-normalization:
   "Array1.unsafe_get", "Genarray.unsafe_set", ... *)
let is_unsafe_bigarray name =
  match split_last name with
  | Some (parent, last) ->
      List.mem parent [ "Array1"; "Array2"; "Array3"; "Genarray" ]
      && strip_prefix ~prefix:"unsafe_" last <> None
  | None -> false

let check (u : unit_ctx) =
  let fi = u.u_fi in
  let diags = ref [] in
  let lib = in_lib fi.f_rel in
  (* Pass A: collect let-bound aliases of Bigarray unsafe accessors,
     wherever they appear in the unit. *)
  let aliases = ref [] in
  let open Tast_iterator in
  let collect_vb self (vb : Typedtree.value_binding) =
    (match (pat_var vb.vb_pat, vb.vb_expr.exp_desc) with
    | Some (id, name_loc), Texp_ident (p, _, _) ->
        let target = norm_path p in
        if is_unsafe_bigarray target then aliases := (id, name_loc.txt, target) :: !aliases
    | _ -> ());
    default_iterator.value_binding self vb
  in
  let it = { default_iterator with value_binding = collect_vb } in
  it.structure it u.u_str;
  (* Pass B: the sorted-context walk. *)
  let sorted = ref false in
  let with_sorted f =
    let saved = !sorted in
    sorted := true;
    f ();
    sorted := saved
  in
  let expr self (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (head, args) -> (
        match curried_head head with
        | Some n when List.mem n sort_heads ->
            with_sorted (fun () -> default_iterator.expr self e)
        | Some ("|>" | "@@")
          when List.exists
                 (function _, Some a -> contains_sort a | _ -> false)
                 args ->
            with_sorted (fun () -> default_iterator.expr self e)
        | Some n when hashtbl_iteration n && lib && not !sorted ->
            report_at diags ~file:fi.f_path ~loc:e.exp_loc ~rule:"R8"
              (n
             ^ " observes unspecified iteration order; sort at the collection \
                point (List.sort under the same expression) so exported results \
                are deterministic");
            default_iterator.expr self e
        | Some (("==" | "!=") as op) when first_arg_is_float args ->
            report_at diags ~file:fi.f_path ~loc:e.exp_loc ~rule:"R8"
              ("physical equality " ^ op
             ^ " on floats compares boxes, not values; use Stats.Float_cmp");
            default_iterator.expr self e
        | Some (("=" | "<>" | "compare") as op)
          when first_arg_is_float args && not (float_cmp_home fi.f_rel) ->
            report_at diags ~file:fi.f_path ~loc:e.exp_loc ~rule:"R3"
              ("polymorphic " ^ op
             ^ " on operands that type as float; exact float equality corrupts \
                the F(2d*) threshold logic — use Stats.Float_cmp");
            default_iterator.expr self e
        | _ -> default_iterator.expr self e)
    | Texp_ident (p, _, _) ->
        (let n = norm_path p in
         if wall_clock n && lib && not (wallclock_home fi.f_rel) then
           report_at diags ~file:fi.f_path ~loc:e.exp_loc ~rule:"R8"
             (n
            ^ " reads the wall clock in library code; seeding lives in \
               lib/stats/rng.ml and timestamps in lib/obs");
         match p with
         | Path.Pident id ->
             List.iter
               (fun (aid, aname, target) ->
                 if Ident.same id aid && not (in_ranges fi.f_hot (loc_line e.exp_loc))
                 then
                   report_at diags ~file:fi.f_path ~loc:e.exp_loc ~rule:"R5"
                     (aname ^ " aliases " ^ target
                    ^ "; unsafe Bigarray access (even renamed) belongs inside an \
                       audited (* lint: hot *) fence"))
               !aliases
         | _ -> ());
        default_iterator.expr self e
    | _ -> default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it u.u_str;
  !diags

let () = exit (Dcl_lint.Cli.run (List.tl (Array.to_list Sys.argv)))

(* SARIF 2.1.0 exporter.  One run, one driver, the full R0-R9 rule
   catalog (ids + the same one-line help the CLI prints), one result
   per diagnostic.  Kept to the subset GitHub code scanning consumes:
   ruleId/ruleIndex/level/message/locations with a physicalLocation
   region.  Columns are 1-based in SARIF, 0-based internally. *)

open Lint_common

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let version = "2.1.0"
let tool_version = "2.0.0"

let rule_index rule =
  let rec go i = function
    | [] -> 0
    | (short, _) :: tl -> if short = rule then i else go (i + 1) tl
  in
  go 0 rules

let rule_objects () =
  rules
  |> List.map (fun (short, long) ->
         let help =
           match List.assoc_opt short rule_help with Some h -> h | None -> long
         in
         Printf.sprintf
           {|{"id":"%s","name":"%s","shortDescription":{"text":"%s"},"defaultConfiguration":{"level":"error"}}|}
           (json_escape short) (json_escape long) (json_escape help))
  |> String.concat ","

let result d =
  Printf.sprintf
    {|{"ruleId":"%s","ruleIndex":%d,"level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s","uriBaseId":"SRCROOT"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (json_escape d.d_rule) (rule_index d.d_rule)
    (json_escape (d.d_message ^ " [" ^ d.d_id ^ "]"))
    (json_escape d.d_file)
    (max 1 d.d_line) (d.d_col + 1)

let to_string diags =
  Printf.sprintf
    {|{"$schema":"%s","version":"%s","runs":[{"tool":{"driver":{"name":"dcl-lint","version":"%s","informationUri":"https://example.invalid/dcl-lint","rules":[%s]}},"originalUriBaseIds":{"SRCROOT":{"uri":"file:///"}},"results":[%s]}]}|}
    schema_uri version tool_version (rule_objects ())
    (String.concat "," (List.map result diags))
  ^ "\n"

let write ~file diags =
  let s = to_string diags in
  if file = "-" then print_string s
  else begin
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc s)
  end

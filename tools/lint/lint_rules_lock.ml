(* R9 [lock-safety]: every [Mutex.lock] must dominate a matching
   [Mutex.unlock] on all paths out of the span, including exceptional
   ones.  A span is accepted when, scanning forward through the
   statement list the lock opens:

   - a matching [Mutex.unlock] appears with only provably no-raise
     statements in between, or
   - a [Fun.protect ~finally:(fun () -> ... Mutex.unlock ...)] guards
     the rest of the span (the body may raise; the finalizer runs), or
   - the span ends in a [match]/[if] whose every branch satisfies the
     same condition.

   Anything else — a call that may raise between lock and unlock, a
   branch that can leave without unlocking, a span that never unlocks
   in this function — is a diagnostic at the lock site.  Deliberate
   protocols (hand-over-hand relocking, unlock-in-callee) carry an
   [allow R9] with a reason; that is the point: every exception to the
   discipline is written down next to the lock.

   "Provably no-raise" is a conservative syntactic judgment: constants,
   identifiers, closure creation, constructors, field loads and stores,
   sequencing/branching over no-raise parts, and applications whose
   head is on a whitelist of non-raising primitives ([Atomic.*],
   [Condition.*], [:=], [!], arithmetic, [List.rev], ...).  Division is
   deliberately not whitelisted (Division_by_zero), nor is [Mutex.lock]
   itself (Sys_error on relock, and nesting deserves review).  Lock
   identity is the rendered lock expression — an identifier path or a
   record-field chain like [t.q_mutex] — matched leniently: an
   unrenderable lock expression matches any unlock. *)

open Lint_common
open Lint_tast

let rec expr_key (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (norm_path p)
  | Texp_field (b, _, lbl) -> (
      match expr_key b with
      | Some k -> Some (k ^ "." ^ lbl.Types.lbl_name)
      | None -> None)
  | _ -> None

let keys_match a b = match (a, b) with Some a, Some b -> a = b | _ -> true

(* Applications of [fn] with one explicit argument: the mutex. *)
let mutex_op fn (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (head, args) when head_name head = Some fn -> (
      match List.find_opt (fun (_, a) -> a <> None) args with
      | Some (_, Some arg) -> Some (expr_key arg)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The no-raise judgment. *)

let whitelist =
  [
    ":=";
    "!";
    "not";
    "&&";
    "||";
    "+";
    "-";
    "*";
    "+.";
    "-.";
    "*.";
    "/.";
    "land";
    "lor";
    "lxor";
    "lsl";
    "lsr";
    "asr";
    "incr";
    "decr";
    "=";
    "<>";
    "<";
    "<=";
    ">";
    ">=";
    "==";
    "!=";
    "min";
    "max";
    "abs";
    "ignore";
    "fst";
    "snd";
    "ref";
    "float_of_int";
    "int_of_float";
    "succ";
    "pred";
    "Atomic.get";
    "Atomic.set";
    "Atomic.exchange";
    "Atomic.compare_and_set";
    "Atomic.fetch_and_add";
    "Atomic.incr";
    "Atomic.decr";
    "Atomic.make";
    "Condition.wait";
    "Condition.signal";
    "Condition.broadcast";
    "Mutex.unlock";
    "List.rev";
    "List.length";
    "Array.length";
    "String.length";
    "Option.is_none";
    "Option.is_some";
    "Option.value";
    "Hashtbl.find_opt";
    "Hashtbl.mem";
    "Hashtbl.length";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.remove";
    "Queue.is_empty";
    "Queue.length";
    "Queue.push";
    "Queue.add";
  ]

(* Higher-order primitives that call their closure argument: safe only
   when that closure's body is itself no-raise (a named function
   argument is unknown, hence unsafe). *)
let ho_whitelist = [ "Hashtbl.iter"; "Hashtbl.fold"; "List.iter"; "Array.iter" ]

let rec no_raise (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant _ | Texp_ident _ | Texp_function _ | Texp_unreachable -> true
  | Texp_construct (_, _, args) -> List.for_all no_raise args
  | Texp_tuple es | Texp_array es -> List.for_all no_raise es
  | Texp_variant (_, arg) -> ( match arg with None -> true | Some a -> no_raise a)
  | Texp_record { fields; extended_expression; _ } ->
      (match extended_expression with None -> true | Some e -> no_raise e)
      && Array.for_all
           (fun (_, def) ->
             match def with
             | Typedtree.Overridden (_, e) -> no_raise e
             | Typedtree.Kept _ -> true)
           fields
  | Texp_field (b, _, _) -> no_raise b
  | Texp_setfield (a, _, _, b) -> no_raise a && no_raise b
  | Texp_sequence (a, b) -> no_raise a && no_raise b
  | Texp_let (_, vbs, body) ->
      List.for_all (fun (vb : Typedtree.value_binding) -> no_raise vb.vb_expr) vbs
      && no_raise body
  | Texp_ifthenelse (c, t, f) -> (
      no_raise c && no_raise t && match f with None -> true | Some f -> no_raise f)
  | Texp_while (c, b) -> no_raise c && no_raise b
  | Texp_match (scrut, cases, Total) ->
      no_raise scrut
      && List.for_all
           (fun (c : _ Typedtree.case) -> c.c_guard = None && no_raise c.c_rhs)
           cases
  | Texp_apply (head, args) -> (
      match head_name head with
      | Some n when List.mem n whitelist ->
          List.for_all (fun (_, a) -> match a with None -> true | Some a -> no_raise a) args
      | Some n when List.mem n ho_whitelist ->
          List.for_all
            (fun (_, a) ->
              match a with
              | None -> true
              | Some ({ Typedtree.exp_desc = Texp_function { cases; _ }; _ }) ->
                  List.for_all (fun (c : _ Typedtree.case) -> no_raise c.c_rhs) cases
              | Some a -> (not (is_function_ty a)) && no_raise a)
            args
      | _ -> false)
  | _ -> false

and is_function_ty (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with Tarrow _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Span analysis. *)

let rec linearize (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_sequence (a, b) -> linearize a @ linearize b
  | Texp_let (_, vbs, body) ->
      List.map (fun (vb : Typedtree.value_binding) -> vb.vb_expr) vbs @ linearize body
  | _ -> [ e ]

(* Does [Fun.protect]'s finalizer release this lock? *)
let protect_unlocks key (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (head, args) when head_name head = Some "Fun.protect" ->
      List.exists
        (fun (label, a) ->
          match (label, a) with
          | ( Asttypes.Labelled "finally",
              Some ({ Typedtree.exp_desc = Texp_function { cases; _ }; _ }) ) ->
              List.exists
                (fun (c : _ Typedtree.case) ->
                  let found = ref false in
                  let open Tast_iterator in
                  let expr self e =
                    (match mutex_op "Mutex.unlock" e with
                    | Some k when keys_match key k -> found := true
                    | _ -> ());
                    default_iterator.expr self e
                  in
                  let it = { default_iterator with expr } in
                  it.expr it c.c_rhs;
                  !found)
                cases
          | _, _ -> false)
        args
  | _ -> false

let rec satisfied key items =
  match items with
  | [] -> false
  | item :: rest ->
      (match mutex_op "Mutex.unlock" item with
      | Some k when keys_match key k -> true
      | _ ->
          if protect_unlocks key item then true
          else if rest = [] then
            (* Terminal branch: every way out must release. *)
            match item.Typedtree.exp_desc with
            | Texp_match (scrut, cases, Total) when no_raise scrut ->
                cases <> []
                && List.for_all
                     (fun (c : _ Typedtree.case) ->
                       c.c_guard = None && satisfied key (linearize c.c_rhs))
                     cases
            | Texp_ifthenelse (c, t, Some f) when no_raise c ->
                satisfied key (linearize t) && satisfied key (linearize f)
            | _ -> false
          else no_raise item && satisfied key rest)

let check (u : unit_ctx) =
  let fi = u.u_fi in
  let diags = ref [] in
  let rec check_block e =
    let items = linearize e in
    let rec scan = function
      | [] -> ()
      | item :: rest ->
          (match mutex_op "Mutex.lock" item with
          | Some key ->
              if not (satisfied key rest) then
                report_at diags ~file:fi.f_path ~loc:item.Typedtree.exp_loc ~rule:"R9"
                  ("Mutex.lock"
                  ^ (match key with Some k -> " on " ^ k | None -> "")
                  ^ " does not dominate an unlock on all paths (a statement in \
                     the span may raise, or a branch leaves without \
                     unlocking); use Fun.protect ~finally or keep the span \
                     no-raise")
          | None -> ());
          scan rest
    in
    scan items;
    List.iter descend items
  and descend (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } -> List.iter case_block cases
    | Texp_apply (h, args) ->
        descend h;
        List.iter (fun (_, a) -> Option.iter descend a) args
    | Texp_match (scrut, cases, _) ->
        descend scrut;
        List.iter case_block cases
    | Texp_try (body, handlers) ->
        check_block body;
        List.iter case_block handlers
    | Texp_ifthenelse (c, t, f) ->
        descend c;
        check_block t;
        Option.iter check_block f
    | Texp_while (c, b) ->
        descend c;
        check_block b
    | Texp_for (_, _, lo, hi, _, body) ->
        descend lo;
        descend hi;
        check_block body
    | Texp_sequence _ | Texp_let _ -> check_block e
    | Texp_construct (_, _, es) | Texp_tuple es | Texp_array es -> List.iter descend es
    | Texp_record { fields; extended_expression; _ } ->
        Option.iter descend extended_expression;
        Array.iter
          (fun (_, def) ->
            match def with Typedtree.Overridden (_, e) -> descend e | Typedtree.Kept _ -> ())
          fields
    | Texp_field (b, _, _) -> descend b
    | Texp_setfield (a, _, _, b) ->
        descend a;
        descend b
    | Texp_variant (_, arg) -> Option.iter descend arg
    | Texp_lazy b -> check_block b
    | Texp_assert (b, _) -> descend b
    | _ -> ()
  and case_block : 'a. 'a Typedtree.case -> unit =
   fun c ->
    Option.iter descend c.c_guard;
    check_block c.c_rhs
  in
  iter_top_bindings u.u_str (fun _submodule vb -> check_block vb.vb_expr);
  !diags

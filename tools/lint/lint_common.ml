(* Shared substrate of the two-pass dcl-lint analyzer: the diagnostic
   type and rule table, the lexical comment scanner that recovers the
   lint directives the parser drops (suppressions, hot fences,
   ownership annotations, fixture paths, expectations), repository path
   classification, and the suppression filter.

   The parsetree pass (Lint_parse, rules R0-R6) and the typed-tree
   pass (Lint_typed over .cmt files, rules R7-R9 plus the
   type-resolved R3/R5 upgrades) both build on this module; the
   orchestration lives in Dcl_lint. *)

type diag = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : string; (* short id, e.g. "R3" *)
  d_id : string; (* long id, e.g. "float-cmp" *)
  d_message : string;
}

let rules =
  [
    ("R0", "bad-lint-comment");
    ("R1", "rng-containment");
    ("R2", "domain-containment");
    ("R3", "float-cmp");
    ("R4", "io-containment");
    ("R5", "hot-alloc");
    ("R6", "missing-mli");
    ("R7", "domain-ownership");
    ("R8", "determinism");
    ("R9", "lock-safety");
  ]

(* One-line rule summaries: shared by --help and the SARIF rule
   catalog, so CI annotations carry the same wording as the CLI. *)
let rule_help =
  [
    ("R0", "malformed lint directive (unsuppressible)");
    ("R1", "Random.* and wall-clock seeding only in lib/stats/rng.ml");
    ( "R2",
      "Domain/Mutex/Condition/Atomic only in pool.ml, par.ml, em_sweep.ml, \
       lib/obs/, lib/fleet/, lib/sketch/" );
    ("R3", "no =, <>, compare on floats; no hand-rolled abs_float epsilon");
    ("R4", "no exit / printf / prerr in lib/");
    ( "R5",
      "no allocating combinators or Bigarray create/sub inside (* lint: hot *) \
       fences; no unsafe Bigarray access outside them" );
    ("R6", "lib/ modules must ship a .mli");
    ( "R7",
      "top-level mutable state in lib/fleet, lib/obs, lib/stats carries an \
       ownership annotation; driver-owned state is unreachable from pool-worker \
       closures" );
    ( "R8",
      "Hashtbl iteration order must be sorted at collection; no physical \
       equality on floats; no wall-clock reads outside rng.ml / lib/obs" );
    ( "R9",
      "every Mutex.lock dominates a Mutex.unlock on all paths, including \
       exceptional ones (Fun.protect or a no-raise span)" );
  ]

let long_id short = try List.assoc short rules with Not_found -> short

(* Accept either the short or the long spelling of a rule id. *)
let normalize_rule s =
  let s = String.lowercase_ascii s in
  let matches (short, long) =
    String.lowercase_ascii short = s || String.lowercase_ascii long = s
  in
  match List.find_opt matches rules with
  | Some (short, _) -> Some short
  | None -> None

let mk ~file ~line ~col ~rule message =
  { d_file = file; d_line = line; d_col = col; d_rule = rule; d_id = long_id rule; d_message = message }

let sort_diags diags =
  List.sort
    (fun a b ->
      match compare a.d_file b.d_file with
      | 0 ->
          if a.d_line <> b.d_line then compare a.d_line b.d_line
          else compare a.d_col b.d_col
      | c -> c)
    diags

(* ------------------------------------------------------------------ *)
(* Comment scanning.  The parser drops comments, and the suppression
   grammar, the hot fences and the ownership annotations all live in
   comments, so a small lexical pass recovers them: it tracks string
   literals, char literals and nested comments well enough for this
   codebase's surface syntax. *)

type comment = { c_line : int; c_text : string }

let scan_comments src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let buf = Buffer.create 64 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      Buffer.clear buf;
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '\n' then begin
          incr line;
          Buffer.add_char buf '\n';
          incr i
        end
        else if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      out := { c_line = start_line; c_text = Buffer.contents buf } :: !out
    end
    else if c = '"' then begin
      (* String literal: skip to the unescaped closing quote. *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' -> i := !i + 2
        | '"' ->
            fin := true;
            incr i
        | '\n' ->
            incr line;
            incr i
        | _ -> incr i
      done
    end
    else if c = '\'' then
      (* Char literal ['x'] or ['\n']; anything else (a type variable)
         is just a quote. *)
      if !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 2] = '\'' then i := !i + 3
      else if !i + 1 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && !j <= !i + 5 && src.[!j] <> '\'' do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then i := !j + 1 else incr i
      end
      else incr i
    else incr i
  done;
  List.rev !out

(* Ownership annotation grammar (R7, DESIGN.md §14):

     (* lint: owner driver *)                    driver-domain only
     (* lint: owner worker *)                    pool-worker local
     (* lint: owner shared *)                    Atomic-typed state
     (* lint: owner shared guarded-by MUTEX *)   mutex-protected state

   The annotation sits on the declaration's own line or the line
   directly above it.  [shared] without an Atomic/Mutex/Condition type
   must name its guard. *)
type owner_kind = Driver | Worker | Shared

let owner_kind_name = function
  | Driver -> "driver"
  | Worker -> "worker"
  | Shared -> "shared"

type directive =
  | Allow of { a_rule : string; a_line : int }
  | Hot_start of int
  | Hot_end of int
  | Owner of { o_line : int; o_kind : owner_kind; o_guard : string option }
  | Expect of { e_rule : string; e_line : int }
  | Fixture_path of string
  | Malformed of { m_line : int; m_message : string }

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let parse_owner c_line words =
  let malformed m = Some (Malformed { m_line = c_line; m_message = m }) in
  let kind_of = function
    | "driver" -> Some Driver
    | "worker" -> Some Worker
    | "shared" -> Some Shared
    | _ -> None
  in
  match words with
  | [] -> malformed "owner needs a kind: driver, worker or shared"
  | kind :: rest -> (
      match kind_of kind with
      | None ->
          malformed ("unknown owner kind " ^ kind ^ " (driver, worker or shared)")
      | Some k -> (
          match (k, rest) with
          | _, [] -> Some (Owner { o_line = c_line; o_kind = k; o_guard = None })
          | Shared, [ "guarded-by"; guard ] ->
              Some (Owner { o_line = c_line; o_kind = Shared; o_guard = Some guard })
          | Shared, [ "guarded-by" ] -> malformed "guarded-by needs a mutex name"
          | (Driver | Worker), "guarded-by" :: _ ->
              malformed "guarded-by only qualifies owner shared"
          | _, w :: _ -> malformed ("unexpected token after owner kind: " ^ w)))

let parse_directive { c_line; c_text } =
  let t = String.trim c_text in
  match strip_prefix ~prefix:"lint:" t with
  | Some rest -> (
      match split_words rest with
      | [ "hot" ] -> Some (Hot_start c_line)
      | [ "end-hot" ] -> Some (Hot_end c_line)
      | "owner" :: rest -> parse_owner c_line rest
      | "allow" :: rule :: _ :: _ -> (
          match normalize_rule rule with
          | Some "R0" | None ->
              Some (Malformed { m_line = c_line; m_message = "unknown rule in allow: " ^ rule })
          | Some r -> Some (Allow { a_rule = r; a_line = c_line }))
      | [ "allow"; rule ] ->
          Some
            (Malformed
               { m_line = c_line; m_message = "allow " ^ rule ^ " needs a reason" })
      | [ "allow" ] ->
          Some (Malformed { m_line = c_line; m_message = "allow needs a rule and a reason" })
      | _ ->
          Some (Malformed { m_line = c_line; m_message = "unrecognized lint directive: " ^ rest }))
  | None -> (
      match strip_prefix ~prefix:"expect:" t with
      | Some rest -> (
          match split_words rest with
          | [ rule ] -> (
              match normalize_rule rule with
              | Some r -> Some (Expect { e_rule = r; e_line = c_line })
              | None ->
                  Some
                    (Malformed { m_line = c_line; m_message = "unknown rule in expect: " ^ rule }))
          | _ -> Some (Malformed { m_line = c_line; m_message = "expect takes one rule id" }))
      | None -> (
          match strip_prefix ~prefix:"lint-fixture:" t with
          | Some rest -> Some (Fixture_path (String.trim rest))
          | None -> None))

(* Fold the fence directives into inclusive line ranges; unmatched
   fences are diagnostics, not crashes. *)
let hot_ranges ~file directives =
  let ranges = ref [] in
  let bad = ref [] in
  let open_start = ref None in
  List.iter
    (fun d ->
      match d with
      | Hot_start l -> (
          match !open_start with
          | None -> open_start := Some l
          | Some _ ->
              bad := mk ~file ~line:l ~col:0 ~rule:"R0" "nested (* lint: hot *) fence" :: !bad)
      | Hot_end l -> (
          match !open_start with
          | Some s ->
              ranges := (s, l) :: !ranges;
              open_start := None
          | None ->
              bad :=
                mk ~file ~line:l ~col:0 ~rule:"R0" "(* lint: end-hot *) without an open fence"
                :: !bad)
      | _ -> ())
    directives;
  (match !open_start with
  | Some s ->
      bad := mk ~file ~line:s ~col:0 ~rule:"R0" "unclosed (* lint: hot *) fence" :: !bad
  | None -> ());
  (List.rev !ranges, List.rev !bad)

let in_ranges ranges line = List.exists (fun (a, b) -> line >= a && line <= b) ranges

(* ------------------------------------------------------------------ *)
(* Path classification.  Files are judged by where they sit in the
   repository ([lib/] vs [bin/] vs [bench/]); fixture files declare a
   virtual location with [(* lint-fixture: lib/... *)] so every rule
   can be exercised from the fixture corpora. *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(* The repo-relative path: the suffix starting at the last [lib], [bin]
   or [bench] segment, so absolute paths classify the same way. *)
let rel_path path =
  let segs = segments path in
  let rec last_root acc rev =
    match rev with
    | [] -> None
    | s :: _ when s = "lib" || s = "bin" || s = "bench" -> Some (s :: acc)
    | s :: tl -> last_root (s :: acc) tl
  in
  match last_root [] (List.rev segs) with
  | Some suffix -> String.concat "/" suffix
  | None -> String.concat "/" segs

let in_lib rel = match segments rel with "lib" :: _ -> true | _ -> false

let rng_home rel = rel = "lib/stats/rng.ml"
let float_cmp_home rel = rel = "lib/stats/float_cmp.ml"

let concurrency_home rel =
  match rel with
  | "lib/stats/pool.ml" | "lib/stats/par.ml" | "lib/em/em_sweep.ml" -> true
  | _ -> (
      match segments rel with
      | "lib" :: "obs" :: _ -> true
      (* The fleet layer owns per-domain workspace caching (Domain.DLS)
         and pool fan-out, so it is a legitimate home for domain
         primitives. *)
      | "lib" :: "fleet" :: _ -> true
      (* The sketch triage layer sits on the fleet's push path and may
         reach for the same per-domain primitives. *)
      | "lib" :: "sketch" :: _ -> true
      | _ -> false)

(* R7 ownership discipline applies where the concurrent actors live:
   the pool and its clients' shared state. *)
let ownership_home rel =
  match segments rel with
  | "lib" :: ("fleet" | "obs" | "stats") :: _ -> true
  | _ -> false

(* R8 wall-clock containment: the RNG module owns seeding, lib/obs owns
   monotonic timestamps (and translates them for export). *)
let wallclock_home rel =
  rng_home rel || (match segments rel with "lib" :: "obs" :: _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Suppression: an allow comment covers its own line and the next. *)

let apply_suppressions directives diags =
  let allows =
    List.filter_map (function Allow { a_rule; a_line } -> Some (a_rule, a_line) | _ -> None) directives
  in
  List.filter
    (fun d ->
      d.d_rule = "R0"
      || not
           (List.exists
              (fun (rule, line) -> rule = d.d_rule && (d.d_line = line || d.d_line = line + 1))
              allows))
    diags

(* ------------------------------------------------------------------ *)
(* Per-file front matter shared by both passes: source text, comments,
   directives, fixture-declared location, hot fences. *)

type file_info = {
  f_path : string; (* path as reported in diagnostics *)
  f_rel : string; (* repo-relative path used for classification *)
  f_src : string;
  f_directives : directive list;
  f_hot : (int * int) list;
  f_fence_diags : diag list; (* unmatched-fence R0s *)
  f_disk_path : string; (* "" when linting an in-memory source *)
}

let file_info ?(disk_path = "") ~path src =
  let comments = scan_comments src in
  let directives = List.filter_map parse_directive comments in
  let fixture_path =
    List.find_map (function Fixture_path p -> Some p | _ -> None) directives
  in
  let effective = match fixture_path with Some p -> p | None -> path in
  let hot, fence_diags = hot_ranges ~file:path directives in
  {
    f_path = path;
    f_rel = rel_path effective;
    f_src = src;
    f_directives = directives;
    f_hot = hot;
    f_fence_diags = fence_diags;
    f_disk_path = disk_path;
  }

let malformed_diags fi =
  List.filter_map
    (function
      | Malformed { m_line; m_message } ->
          Some (mk ~file:fi.f_path ~line:m_line ~col:0 ~rule:"R0" m_message)
      | _ -> None)
    fi.f_directives

(* ------------------------------------------------------------------ *)
(* Filesystem helpers. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || entry.[0] = '.' then []
           else ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* The .cmt walker must descend into dune's dot-directories
   ([.stats.objs/byte/...]), so unlike [ml_files] it skips nothing. *)
let rec cmt_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> cmt_files (Filename.concat path entry))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

(* ------------------------------------------------------------------ *)
(* Output. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","id":"%s","message":"%s"}|}
    (json_escape d.d_file) d.d_line d.d_col d.d_rule d.d_id (json_escape d.d_message)

let print_diags ~json diags =
  if json then
    print_string ("[" ^ String.concat ",\n " (List.map diag_to_json diags) ^ "]\n")
  else
    List.iter
      (fun d ->
        Printf.printf "%s:%d:%d [%s/%s] %s\n" d.d_file d.d_line d.d_col d.d_rule d.d_id d.d_message)
      diags

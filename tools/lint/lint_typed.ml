(* Pass 2 orchestration: resolve each linted source against the .cmt
   index, run the global ownership collection (R7 needs every unit's
   annotations before any unit's worker closures can be judged), then
   the per-unit rule modules.

   The two-phase shape matters: [Lint_rules_own.collect] populates one
   table across ALL units first, so a scheduler closure in lib/fleet
   that reaches a driver-owned cell declared in lib/stats is still
   caught.  [analyze] returns a lookup from the diagnostic path of each
   input file to its raw (unsorted, unsuppressed) typed diagnostics;
   [Dcl_lint] merges them with the parse pass and applies suppressions
   once per file. *)

open Lint_common

let source_key (fi : file_info) = if fi.f_disk_path <> "" then fi.f_disk_path else fi.f_path

let analyze ~(index : Lint_tast.index) ~require_cmt (fis : file_info list) =
  let tbl : (string, diag list ref) Hashtbl.t = Hashtbl.create 16 in
  let add (fi : file_info) ds =
    if ds <> [] then
      match Hashtbl.find_opt tbl fi.f_path with
      | Some r -> r := ds @ !r
      | None -> Hashtbl.replace tbl fi.f_path (ref ds)
  in
  let units =
    List.filter_map
      (fun fi ->
        match Lint_tast.find index ~source:(source_key fi) with
        | Some e -> Some (Lint_tast.unit_of_entry fi e)
        | None ->
            if require_cmt && in_lib fi.f_rel then
              add fi
                [
                  mk ~file:fi.f_path ~line:1 ~col:0 ~rule:"R0"
                    "no .cmt found for this module; typed rules (R7-R9) did not \
                     run — check the @lint cmt wiring";
                ];
            None)
      fis
  in
  let table = Lint_rules_own.create_table () in
  List.iter (fun u -> add u.Lint_tast.u_fi (Lint_rules_own.collect table u)) units;
  List.iter
    (fun (u : Lint_tast.unit_ctx) ->
      add u.u_fi (Lint_rules_own.check table u);
      add u.u_fi (Lint_rules_det.check u);
      add u.u_fi (Lint_rules_lock.check u))
    units;
  fun path -> match Hashtbl.find_opt tbl path with Some r -> !r | None -> []

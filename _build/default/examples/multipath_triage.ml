(* Multipath triage — the paper's traffic-engineering motivation
   (Section I): when several congested paths are available, a path with
   a single dominant congested link is cheaper to fix than one whose
   congestion is spread over several links.  This example probes two
   candidate paths and ranks them.

     dune exec examples/multipath_triage.exe *)

let analyze label (outcome : Scenarios.Paper_topology.outcome) =
  let trace = outcome.Scenarios.Paper_topology.trace in
  let rng = Stats.Rng.create 11 in
  let result = Dcl.Identify.run ~rng trace in
  Printf.printf "\npath %s: loss rate %.2f%%\n" label (100. *. Probe.Trace.loss_rate trace);
  Format.printf "  inferred VQD: %a@." Dcl.Vqd.pp result.Dcl.Identify.vqd;
  Format.printf "  SDCL %a@.  WDCL %a@." Dcl.Tests.pp_outcome result.Dcl.Identify.sdcl
    Dcl.Tests.pp_outcome result.Dcl.Identify.wdcl;
  Printf.printf "  conclusion: %s\n"
    (Dcl.Identify.conclusion_to_string result.Dcl.Identify.conclusion);
  result.Dcl.Identify.conclusion

let () =
  (* Path A: one dominant congested link (the weakly preset).  Path B:
     two comparably congested links (the no-DCL preset).  Both are
     lossy; end-end loss rate alone cannot tell them apart. *)
  Printf.printf "probing two candidate paths for 300 s each...\n";
  let path_a =
    Scenarios.Paper_topology.run (Scenarios.Presets.weakly_dcl ~seed:3 ~duration:300. ())
  in
  let path_b =
    Scenarios.Paper_topology.run (Scenarios.Presets.no_dcl ~seed:4 ~duration:300. ())
  in
  let a = analyze "A" path_a in
  let b = analyze "B" path_b in
  print_newline ();
  (match (a, b) with
  | (Dcl.Identify.Strongly_dominant | Dcl.Identify.Weakly_dominant), Dcl.Identify.No_dominant
    ->
      print_endline
        "verdict: path A's congestion is concentrated on a single link - upgrading that \
         one link fixes the path.  Path B is congested in several places; fixing it \
         needs more resources.  Invest in path A first."
  | Dcl.Identify.No_dominant, (Dcl.Identify.Strongly_dominant | Dcl.Identify.Weakly_dominant)
    -> print_endline "verdict: path B has the single fixable bottleneck; invest there."
  | _ ->
      print_endline
        "verdict: no clear winner - both paths have the same congestion structure.");
  (* Ground truth, since these are simulations. *)
  Format.printf "@.(ground truth: path A %a; path B %a)@." Dcl.Truth.pp_regime
    (Dcl.Truth.classify path_a.Scenarios.Paper_topology.trace ~hop_count:5)
    Dcl.Truth.pp_regime
    (Dcl.Truth.classify path_b.Scenarios.Paper_topology.trace ~hop_count:5)

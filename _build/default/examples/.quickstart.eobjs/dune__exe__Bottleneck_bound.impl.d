examples/bottleneck_bound.ml: Array Dcl Printf Scenarios Stats

examples/online_monitor.mli:

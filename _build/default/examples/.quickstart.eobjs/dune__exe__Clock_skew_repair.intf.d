examples/clock_skew_repair.mli:

examples/multipath_triage.mli:

examples/pinpoint.mli:

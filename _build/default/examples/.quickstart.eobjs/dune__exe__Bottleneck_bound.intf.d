examples/bottleneck_bound.mli:

examples/quickstart.ml: Dcl Format Link Net Netsim Printf Probe Sim Stats Traffic

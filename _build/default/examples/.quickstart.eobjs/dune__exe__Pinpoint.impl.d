examples/pinpoint.ml: Array Dcl List Net Netsim Printf Probe Sim Stats Traffic

examples/multipath_triage.ml: Dcl Format Printf Probe Scenarios Stats

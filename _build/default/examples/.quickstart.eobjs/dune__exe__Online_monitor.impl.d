examples/online_monitor.ml: Dcl List Net Netsim Printf Probe Sim Stats Traffic

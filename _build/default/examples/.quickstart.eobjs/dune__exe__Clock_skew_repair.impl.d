examples/clock_skew_repair.ml: Dcl Format Printf Probe Scenarios Stats

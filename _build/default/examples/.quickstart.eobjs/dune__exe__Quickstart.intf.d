examples/quickstart.mli:

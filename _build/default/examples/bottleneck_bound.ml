(* Bounding the bottleneck's maximum queuing delay (Section IV-B):
   after identifying a dominant congested link, estimate an upper bound
   on its maximum queuing delay — a path property no end-end average
   reveals — and compare the model-based bound with the loss-pair
   baseline and the simulator's ground truth.

     dune exec examples/bottleneck_bound.exe *)

let () =
  Printf.printf "simulating a strongly dominant congested link (0.5 Mb/s bottleneck)...\n";
  let cfg =
    Scenarios.Presets.strongly_dcl ~seed:5 ~duration:400. ~with_loss_pairs:true ~bw3:0.5e6
      ()
  in
  let o = Scenarios.Paper_topology.run cfg in
  let trace = o.Scenarios.Paper_topology.trace in
  let q_true = (o.Scenarios.Paper_topology.reports.(2)).Scenarios.Paper_topology.q_max in

  (* Step 1: coarse identification (M = 5). *)
  let rng = Stats.Rng.create 9 in
  let result = Dcl.Identify.run ~rng trace in
  Printf.printf "identification: %s\n"
    (Dcl.Identify.conclusion_to_string result.Dcl.Identify.conclusion);
  (match result.Dcl.Identify.bound with
  | Some b -> Printf.printf "coarse (M=5) quantile bound:    %6.1f ms\n" (1000. *. b)
  | None -> ());

  (* Step 2: a finer fit (M = 40) sharpens the bound via the
     connected-component heuristic, as in the paper's Fig. 7. *)
  let fine = { Dcl.Identify.default_params with m = 40 } in
  let vqd40, _ = Dcl.Identify.fit_vqd ~params:fine ~rng trace in
  let bound40 = Dcl.Bound.component_bound vqd40 in
  Printf.printf "fine (M=40) component bound:    %6.1f ms\n" (1000. *. bound40);

  (* Step 3: the loss-pair baseline (Liu & Crovella). *)
  (match o.Scenarios.Paper_topology.loss_pair_estimate with
  | Some lp ->
      Printf.printf "loss-pair estimate:             %6.1f ms (from %d loss pairs)\n"
        (1000. *. lp)
        (Array.length o.Scenarios.Paper_topology.loss_pair_samples)
  | None -> print_endline "loss-pair estimate:             (no loss pairs observed)");

  Printf.printf "true maximum queuing delay Q_k: %6.1f ms\n" (1000. *. q_true);
  Printf.printf "fine-bound error: %.1f ms (%.1f%%)\n"
    (1000. *. abs_float (bound40 -. q_true))
    (100. *. abs_float (bound40 -. q_true) /. q_true)

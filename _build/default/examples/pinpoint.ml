(* Pinpointing the dominant congested link — the paper's future work
   (Section VII), realized with prefix probing: probe from the source
   to every router along the path as well as to the destination, run
   the identification on each prefix, and locate the hop at which the
   path "acquires" its dominant congested link.

     dune exec examples/pinpoint.exe *)

open Netsim

let () =
  (* A five-link chain whose fourth link is the dominant congested
     link. *)
  let sim = Sim.create ~seed:17 () in
  let net = Net.create sim in
  let src = Net.add_node net "src" in
  let routers = Array.init 5 (fun i -> Net.add_node net (Printf.sprintf "r%d" (i + 1))) in
  let dst = Net.add_node net "dst" in
  let chain = Array.concat [ [| src |]; routers; [| dst |] ] in
  Array.iteri
    (fun i a ->
      if i < Array.length chain - 1 then
        let bw = if i = 3 then 0.7e6 else 10e6 in
        let cap = if i = 3 then 25_600 else 200_000 in
        ignore (Net.add_duplex net ~a ~b:chain.(i + 1) ~bandwidth:bw ~delay:0.004 ~capacity:cap ()))
    chain;
  Net.compute_routes net;
  (* Congest link 4 (r4 -> r5) with two FTP sawtooths. *)
  ignore (Traffic.Workload.ftp_at net ~src:chain.(3) ~dst:chain.(4) ~at:0.1);
  ignore (Traffic.Workload.ftp_at net ~src:chain.(3) ~dst:chain.(4) ~at:0.4);

  (* One prober per prefix: to r1..r5 and to dst (6 links). *)
  let probers =
    List.init 6 (fun i ->
        let target = chain.(i + 1) in
        let p = Probe.Prober.create net ~src ~dst:target ~interval:0.02 () in
        Probe.Prober.start p ~at:20. ~until:320.;
        (i + 1, p))
  in
  Sim.run_until sim 325.;
  let traces = List.map (fun (hops, p) -> (hops, Probe.Prober.trace p)) probers in

  let rng = Stats.Rng.create 5 in
  let prefixes, located = Dcl.Locate.analyze ~rng traces in
  print_endline "prefix  loss    conclusion";
  List.iter
    (fun (p : Dcl.Locate.prefix) ->
      Printf.printf "  %d     %5.2f%%  %s\n" p.Dcl.Locate.hops
        (100. *. p.Dcl.Locate.loss_rate)
        (match p.Dcl.Locate.conclusion with
        | Some c -> Dcl.Identify.conclusion_to_string c
        | None -> "(not identifiable)"))
    prefixes;
  (match located with
  | Some hop -> Printf.printf "\npinpointed dominant congested link: hop %d\n" hop
  | None -> print_endline "\nno dominant congested link pinpointed");
  print_endline "(ground truth: the congested link is hop 4)"

(* Quickstart: build a small network, congest one link, probe the path
   for two minutes, and ask whether a dominant congested link exists.

     dune exec examples/quickstart.exe *)

open Netsim

let () =
  (* 1. A three-hop path: client - r1 - r2 - server.  The middle link
     is a 1 Mb/s bottleneck with a 20 kB buffer; the others are fast. *)
  let sim = Sim.create ~seed:42 () in
  let net = Net.create sim in
  let client = Net.add_node net "client" in
  let r1 = Net.add_node net "r1" in
  let r2 = Net.add_node net "r2" in
  let server = Net.add_node net "server" in
  ignore (Net.add_duplex net ~a:client ~b:r1 ~bandwidth:10e6 ~delay:0.002 ~capacity:200_000 ());
  let bottleneck, _ =
    Net.add_duplex net ~a:r1 ~b:r2 ~bandwidth:1e6 ~delay:0.010 ~capacity:20_000 ()
  in
  ignore (Net.add_duplex net ~a:r2 ~b:server ~bandwidth:10e6 ~delay:0.002 ~capacity:200_000 ());
  Net.compute_routes net;

  (* 2. Cross traffic congesting the bottleneck: one greedy FTP plus a
     web workload between the two routers. *)
  Traffic.Tcp.start (Traffic.Workload.ftp net ~src:r1 ~dst:r2);
  Traffic.Workload.http_start (Traffic.Workload.http net ~src:r1 ~dst:r2 ~session_rate:0.2);

  (* 3. Periodic 10-byte probes every 20 ms for 120 s (the paper's
     measurement process). *)
  let prober = Probe.Prober.create net ~src:client ~dst:server ~interval:0.02 () in
  Probe.Prober.start prober ~at:10. ~until:130.;
  Sim.run_until sim 135.;
  let trace = Probe.Prober.trace prober in
  Printf.printf "collected %d probes, loss rate %.2f%%\n" (Probe.Trace.length trace)
    (100. *. Probe.Trace.loss_rate trace);

  (* 4. Model-based identification (MMHD, the paper's defaults). *)
  let rng = Stats.Rng.create 7 in
  let result = Dcl.Identify.run ~rng trace in
  Format.printf "%a@." Dcl.Identify.pp_result result;

  (* 5. Because this is a simulation, we can check the answer. *)
  Format.printf "ground truth: %a (bottleneck Q_max = %.0f ms)@." Dcl.Truth.pp_regime
    (Dcl.Truth.classify trace ~hop_count:3)
    (1000. *. Link.max_queuing_delay bottleneck)

(* Wide-area measurement with unsynchronized clocks (Section VI-B):
   one-way delays measured between two hosts drift by the relative
   clock skew.  This example probes an emulated 15-hop Internet path,
   shows how the raw measurements are distorted, repairs them with the
   convex-hull skew estimator, and runs the identification on the
   repaired trace.

     dune exec examples/clock_skew_repair.exe *)

let spread trace = Probe.Trace.max_delay trace -. Probe.Trace.min_delay trace

let () =
  Printf.printf "probing an emulated UFPR -> ADSL path for 10 minutes...\n";
  let o = Scenarios.Internet.run ~seed:2 ~duration:600. Scenarios.Internet.Adsl_from_ufpr in
  Printf.printf "receiver clock skew: %+.1f ppm (unknown to the measurement pipeline)\n"
    (1e6 *. o.Scenarios.Internet.skew_applied);
  Printf.printf "raw (skewed) delay spread:      %6.1f ms\n"
    (1000. *. spread o.Scenarios.Internet.skewed);
  Printf.printf "true delay spread:              %6.1f ms\n"
    (1000. *. spread o.Scenarios.Internet.trace);
  Printf.printf "estimated skew:      %+.1f ppm\n" (1e6 *. o.Scenarios.Internet.skew_estimated);
  Printf.printf "repaired delay spread:          %6.1f ms\n"
    (1000. *. spread o.Scenarios.Internet.repaired);

  (* Identification on the repaired trace. *)
  let rng = Stats.Rng.create 13 in
  let result = Dcl.Identify.run ~rng o.Scenarios.Internet.repaired in
  Format.printf "@.identification on the repaired trace:@.%a@." Dcl.Identify.pp_result
    result;
  Printf.printf
    "(ground truth: the only congested link is hop %d, the ADSL access link, Q_max = \
     %.0f ms)\n"
    o.Scenarios.Internet.bottleneck_hop
    (1000. *. o.Scenarios.Internet.bottleneck_q_max)

(* Continuous monitoring: watch a path's congestion structure change.

   For the first half of this run a single link is congested (a
   dominant congested link exists); halfway through, heavy pulses start
   on a second, larger-buffered link, and the path stops having a
   dominant congested link.  A sliding-window identification
   (Dcl.Online) detects the transition.

     dune exec examples/online_monitor.exe *)

open Netsim

let () =
  let sim = Sim.create ~seed:21 () in
  let net = Net.create sim in
  let src = Net.add_node net "src" in
  let r1 = Net.add_node net "r1" in
  let r2 = Net.add_node net "r2" in
  let r3 = Net.add_node net "r3" in
  let dst = Net.add_node net "dst" in
  ignore (Net.add_duplex net ~a:src ~b:r1 ~bandwidth:10e6 ~delay:0.001 ~capacity:200_000 ());
  (* Link A: 0.7 Mb/s, modest buffer — congested from the start. *)
  ignore (Net.add_duplex net ~a:r1 ~b:r2 ~bandwidth:0.7e6 ~delay:0.005 ~capacity:25_600 ());
  (* Link B: 0.2 Mb/s, large buffer — idle at first. *)
  ignore (Net.add_duplex net ~a:r2 ~b:r3 ~bandwidth:0.2e6 ~delay:0.005 ~capacity:25_600 ());
  ignore (Net.add_duplex net ~a:r3 ~b:dst ~bandwidth:10e6 ~delay:0.001 ~capacity:200_000 ());
  Net.compute_routes net;

  (* Link A's congestion: two FTP sawtooths, running throughout. *)
  ignore (Traffic.Workload.ftp_at net ~src:r1 ~dst:r2 ~at:0.1);
  ignore (Traffic.Workload.ftp_at net ~src:r1 ~dst:r2 ~at:0.4);
  (* Link B: a light base load now; heavy overflow pulses START AT
     t = 620 s (the regime change). *)
  Traffic.Udp.start (Traffic.Udp.cbr net ~src:r2 ~dst:r3 ~rate:0.05e6 ~pkt_size:1000);
  let pulses =
    Traffic.Udp.pulse net ~src:r2 ~dst:r3 ~rate:0.8e6 ~pkt_size:1000 ~on_duration:0.55
      ~period:20.
  in
  Sim.at sim 620. (fun () -> Traffic.Udp.start pulses);

  (* Probe for 20 minutes. *)
  let prober = Probe.Prober.create net ~src ~dst ~interval:0.02 () in
  Probe.Prober.start prober ~at:20. ~until:1220.;
  Sim.run_until sim 1225.;
  let trace = Probe.Prober.trace prober in
  Printf.printf "trace: %d probes, loss rate %.2f%%\n" (Probe.Trace.length trace)
    (100. *. Probe.Trace.loss_rate trace);

  (* Slide a 5-minute window in 1-minute steps. *)
  let rng = Stats.Rng.create 3 in
  let samples = Dcl.Online.scan ~rng ~window:300. ~stride:60. trace in
  print_endline "window-end  conclusion            F(2d*)  loss";
  List.iter
    (fun (s : Dcl.Online.sample) ->
      Printf.printf "  %6.0f s  %-20s %6.3f  %.2f%%\n" s.Dcl.Online.at
        (match s.Dcl.Online.conclusion with
        | Some c -> Dcl.Identify.conclusion_to_string c
        | None -> "(not identifiable)")
        s.Dcl.Online.f_at_two_d_star
        (100. *. s.Dcl.Online.loss_rate))
    samples;
  print_endline "\nchange points:";
  List.iter
    (fun (at, c) ->
      Printf.printf "  from the window ending at %.0f s: %s\n" at
        (match c with
        | Some c -> Dcl.Identify.conclusion_to_string c
        | None -> "(not identifiable)"))
    (Dcl.Online.changes samples)

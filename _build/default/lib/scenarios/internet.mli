(** Emulated wide-area paths standing in for the paper's PlanetLab /
    Internet experiments (Section VI-B, Figs. 12–14).

    Each path is a router chain with heterogeneous link speeds, light
    bursty cross traffic on a few transit hops, and one (or, for the
    SNU path, two) congested low-bandwidth links.  One-way delays are
    measured by the same periodic prober as the ns-style experiments;
    receiver timestamps are then distorted with a constant clock skew
    and repaired with {!Clocksync} — mirroring the paper's tcpdump
    methodology, with the advantage that per-hop ground truth is
    available (it plays the role pchar plays in the paper). *)

type kind =
  | Ethernet_ufpr
      (** Cornell → UFPR: 11 hops, one congested link mid-path
          ("inside Brazil"), ~0.1% loss; WDCL-Test accepts (Fig. 12). *)
  | Adsl_from_ufpr
      (** UFPR → ADSL receiver: 15 hops, congested ADSL access link,
          ~0.1% loss; accepts (Fig. 13a). *)
  | Adsl_from_usevilla
      (** USevilla → ADSL receiver: 11 hops, ~0.7% loss; accepts
          (Fig. 13b) and drives the probing-duration study (Fig. 14). *)
  | Adsl_from_snu
      (** SNU → ADSL receiver: 20 hops, a second congested link
          mid-path (the paper's 13th hop) with a larger maximum queuing
          delay; WDCL-Test rejects (Fig. 13c). *)

val kind_to_string : kind -> string
val hop_count : kind -> int

type outcome = {
  trace : Probe.Trace.t;  (** true-clock trace, with ground truth *)
  skewed : Probe.Trace.t;  (** receiver-clock distorted *)
  repaired : Probe.Trace.t;  (** after {!Clocksync} skew removal *)
  skew_applied : float;  (** seconds/second *)
  skew_estimated : float;
  bottleneck_hop : int;  (** path hop index of the main congested link *)
  bottleneck_q_max : float;
  secondary_hop : int option;
  secondary_q_max : float option;
  loss_rate : float;
  pathchar : Pathchar.result option;
      (** per-hop capacity estimates from a concurrent pathchar
          campaign (the paper's pchar cross-validation), when
          requested *)
}

val run : ?seed:int -> ?duration:float -> ?with_pathchar:bool -> kind -> outcome
(** Default duration 1200 s (the paper's 20-minute stationary
    segments).  With [with_pathchar] (default false), a pathchar
    campaign runs concurrently with the probing and its estimates are
    returned — the paper's consistency check that the identified
    dominant link coincides with a low-bandwidth link. *)

(** {1 Clock helpers (exposed for tests)} *)

val distort_clock : skew:float -> offset:float -> Probe.Trace.t -> Probe.Trace.t
(** Add [offset +. skew *. (send_time - first send_time)] to every
    observed delay (losses unchanged). *)

val repair_clock : Probe.Trace.t -> Probe.Trace.t * float
(** Estimate and remove the skew from the surviving probes' delays;
    returns the repaired trace and the estimated skew. *)

lib/scenarios/paper_topology.mli: Netsim Probe

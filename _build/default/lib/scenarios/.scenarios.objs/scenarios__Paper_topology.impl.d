lib/scenarios/paper_topology.ml: Array Link Net Netsim Printf Probe Sim Stats Traffic

lib/scenarios/internet.mli: Pathchar Probe

lib/scenarios/internet.ml: Array Clocksync Link List Net Netsim Option Pathchar Printf Probe Sim Stats Traffic

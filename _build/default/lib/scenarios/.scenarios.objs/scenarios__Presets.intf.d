lib/scenarios/presets.mli: Paper_topology

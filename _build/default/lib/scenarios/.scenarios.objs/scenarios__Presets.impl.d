lib/scenarios/presets.ml: Array Float Netsim Paper_topology

open Paper_topology

(* The presets mirror the structure of the paper's Tables II-IV:

   - strongly: only L3 loses packets; L1/L2 are fast links with light,
     loss-free cross traffic, so the virtual queuing delay of lost
     probes concentrates at the top of the observed delay range and
     SDCL-Test accepts (paper Fig. 5).
   - weakly: the dominant link is L1 (0.7 Mb/s, Q_max ~0.3 s, an FTP
     sawtooth periodically filling the buffer) taking ~19 of 20 losses;
     L3 (0.2 Mb/s, Q_max ~1 s, light web traffic) loses occasionally,
     putting a small mass at high delay symbols — SDCL-Test rejects
     (F at 2*d_star ~0.95 < 1) while WDCL-Test with beta = 0.06
     accepts, the paper's worked example (Section VI-A2).
   - no_dcl: same two lossy links, but L3's web traffic is heavy
     enough that the two loss shares are comparable (~60/40).  Since
     Q_max of L3 is ~3x that of L1, nearly half of the virtual delays
     land beyond 2*d_star and WDCL-Test rejects (Section VI-A3).

   The weakly and no-DCL presets differ only in the secondary link's
   congestion level: the beta = 0.06 loss-share boundary is exactly
   what separates the two regimes.  Losses arrive in short episodes
   (FTP sawtooth peaks, HTTP slow-start spikes) flanked by surviving
   probes whose delays carry the information the EM exploits. *)

let mk_link ~bw ~cap = { bandwidth = bw; capacity = cap; queue = Netsim.Net.Droptail_q }

(* Loss-free cross traffic for a fast (10 Mb/s) link: web sessions and
   a gentle on-off stream; queues a little, never drops. *)
let fast_cross =
  {
    no_cross with
    http_sessions_per_s = 2.0;
    onoff_rate = 2e6;
    onoff_mean_on = 0.5;
    onoff_mean_off = 0.5;
  }

(* Bursty but loss-free traffic for the middle 1 Mb/s link with a large
   buffer: stretches the observed delay range without dropping. *)
let bursty_middle ~bw =
  {
    no_cross with
    http_sessions_per_s = 0.3;
    onoff_rate = 2.5 *. bw;
    onoff_mean_on = 0.12;
    onoff_mean_off = 1.0;
  }

(* Closed-loop congestion: an FTP sawtooth that periodically fills the
   buffer, plus web sessions and a moderate on-off stream. *)
let ftp_congested ?(ftp = 1) ~bw () =
  {
    ftp_flows = ftp;
    http_sessions_per_s = 0.2;
    onoff_rate = 0.15 *. bw;
    onoff_mean_on = 0.5;
    onoff_mean_off = 1.0;
    cbr_rate = 0.;
    pulse_rate = 0.;
    pulse_on = 0.5;
    pulse_period = 30.;
  }

(* Secondary congestion for a weak/comparable second lossy link: a
   CBR base plus a strong periodic pulse that overflows the buffer once
   per period for a predictable dwell time.  One episode per period
   keeps the link's share of losses steady across runs, unlike
   rare-event-driven designs whose share swings wildly. *)
let pulsed_congested ~bw ~pulse_on ~period =
  {
    no_cross with
    http_sessions_per_s = 0.005;
    cbr_rate = 0.25 *. bw;
    pulse_rate = 4.0 *. bw;
    pulse_on;
    pulse_period = period;
  }

let base ?(seed = 1) ?(duration = 300.) ?(with_loss_pairs = false) () =
  { default_config with seed; duration; with_loss_pairs }

let strongly_dcl ?seed ?duration ?with_loss_pairs ~bw3 () =
  let cfg = base ?seed ?duration ?with_loss_pairs () in
  {
    cfg with
    backbone =
      [|
        mk_link ~bw:10e6 ~cap:80_000;
        mk_link ~bw:10e6 ~cap:80_000;
        mk_link ~bw:bw3 ~cap:20_000;
      |];
    cross = [| fast_cross; fast_cross; ftp_congested ~bw:bw3 () |];
  }

let strongly_dcl_sweep = [ 1e6; 0.7e6; 0.5e6; 0.3e6 ]

let weakly_dcl ?seed ?duration ?with_loss_pairs ?(bw1 = 0.7e6) ?(bw3 = 0.2e6) () =
  let cfg = base ?seed ?duration ?with_loss_pairs () in
  {
    cfg with
    backbone =
      [|
        (* Dominant: moderate Q_max, takes ~95% of the losses. *)
        mk_link ~bw:bw1 ~cap:25_600;
        mk_link ~bw:1e6 ~cap:153_600;
        (* Occasional loser with the larger Q_max. *)
        mk_link ~bw:bw3 ~cap:25_600;
      |];
    cross =
      [|
        { (ftp_congested ~ftp:2 ~bw:bw1 ()) with http_sessions_per_s = 0.05; onoff_rate = 0.05 *. bw1 };
        { (bursty_middle ~bw:1e6) with onoff_rate = 2e6; onoff_mean_on = 0.08 };
        pulsed_congested ~bw:bw3 ~pulse_on:0.34 ~period:110.;
      |];
  }

let weakly_dcl_sweep = [ (0.7e6, 0.2e6); (0.65e6, 0.22e6); (0.7e6, 0.25e6); (0.6e6, 0.2e6) ]

let no_dcl ?seed ?duration ?with_loss_pairs ?(bw1 = 0.7e6) ?(bw3 = 0.2e6) () =
  let cfg = base ?seed ?duration ?with_loss_pairs () in
  {
    cfg with
    backbone =
      [|
        mk_link ~bw:bw1 ~cap:25_600;
        mk_link ~bw:1e6 ~cap:153_600;
        mk_link ~bw:bw3 ~cap:25_600;
      |];
    cross =
      [|
        { (ftp_congested ~ftp:2 ~bw:bw1 ()) with http_sessions_per_s = 0.05; onoff_rate = 0.05 *. bw1 };
        { (bursty_middle ~bw:1e6) with onoff_rate = 2e6; onoff_mean_on = 0.08 };
        pulsed_congested ~bw:bw3 ~pulse_on:0.47 ~period:17.;
      |];
  }

let no_dcl_sweep = [ (0.7e6, 0.2e6); (0.6e6, 0.2e6); (0.7e6, 0.25e6); (0.6e6, 0.25e6) ]

let with_red ~min_th_frac cfg =
  let red_of (lc : link_config) =
    (* Thresholds in packets, capacity assumed to hold 1000-byte
       cross-traffic packets (plus headers). *)
    let buffer_pkts = float_of_int lc.capacity /. 1040. in
    let min_th = Float.max 1. (min_th_frac *. buffer_pkts) in
    { lc with queue = Netsim.Net.Red_q { min_th; max_th = 3. *. min_th } }
  in
  { cfg with backbone = Array.map red_of cfg.backbone }

open Netsim

type kind = Ethernet_ufpr | Adsl_from_ufpr | Adsl_from_usevilla | Adsl_from_snu

let kind_to_string = function
  | Ethernet_ufpr -> "Cornell->UFPR (Ethernet)"
  | Adsl_from_ufpr -> "UFPR->ADSL"
  | Adsl_from_usevilla -> "USevilla->ADSL"
  | Adsl_from_snu -> "SNU->ADSL"

(* Hop counts from Section VI-B. *)
let hop_count = function
  | Ethernet_ufpr -> 11
  | Adsl_from_ufpr -> 15
  | Adsl_from_usevilla -> 11
  | Adsl_from_snu -> 20

type congested = {
  hop : int;  (* link index on the path, 0-based *)
  bandwidth : float;
  capacity : int;
  (* grazing pulse parameters controlling the loss level *)
  pulse_on : float;
  pulse_period : float;
}

type profile = {
  hops : int;
  congested : congested list;  (* first entry = the main bottleneck *)
  stretch_hop : int;
      (* deep-buffered transit hop whose rare, fixed-height load pulses
         stretch the observed delay range (bufferbloat episodes) *)
  busy_transit : int list;  (* transit hops with light background jitter *)
}

(* The ADSL access link: the paper's pchar runs consistently point at a
   low-bandwidth link next to the receiver. *)
let adsl ~hop ~pulse_on ~pulse_period =
  { hop; bandwidth = 0.8e6; capacity = 25_600; pulse_on; pulse_period }

let profile = function
  | Ethernet_ufpr ->
      {
        hops = 11;
        congested =
          [
            {
              hop = 6;
              bandwidth = 1.2e6;
              capacity = 38_400;
              pulse_on = 0.005;
              pulse_period = 20.;
            };
          ];
        stretch_hop = 3;
        busy_transit = [ 2; 8 ];
      }
  | Adsl_from_ufpr ->
      {
        hops = 15;
        congested = [ adsl ~hop:14 ~pulse_on:0.005 ~pulse_period:20. ];
        stretch_hop = 7;
        busy_transit = [ 3; 11 ];
      }
  | Adsl_from_usevilla ->
      {
        hops = 11;
        congested = [ adsl ~hop:10 ~pulse_on:0.005 ~pulse_period:3. ];
        stretch_hop = 5;
        busy_transit = [ 2; 8 ];
      }
  | Adsl_from_snu ->
      {
        hops = 20;
        congested =
          [
            adsl ~hop:19 ~pulse_on:0.005 ~pulse_period:8.;
            (* The second congested link mid-path (the paper's 13th
               hop) with a clearly larger maximum queuing delay. *)
            {
              hop = 12;
              bandwidth = 0.5e6;
              capacity = 64_000;
              pulse_on = 0.005;
              pulse_period = 75.;
            };
          ];
        stretch_hop = 8;
        busy_transit = [ 4; 16 ];
      }

type outcome = {
  trace : Probe.Trace.t;
  skewed : Probe.Trace.t;
  repaired : Probe.Trace.t;
  skew_applied : float;
  skew_estimated : float;
  bottleneck_hop : int;
  bottleneck_q_max : float;
  secondary_hop : int option;
  secondary_q_max : float option;
  loss_rate : float;
  pathchar : Pathchar.result option;
}

let distort_clock ~skew ~offset trace =
  let records = trace.Probe.Trace.records in
  let t0 = if Array.length records = 0 then 0. else records.(0).Probe.Trace.send_time in
  let records =
    Array.map
      (fun (r : Probe.Trace.record) ->
        match r.obs with
        | Probe.Trace.Lost -> r
        | Probe.Trace.Delay d ->
            let drift = offset +. (skew *. (r.send_time -. t0)) in
            { r with obs = Probe.Trace.Delay (d +. drift) })
      records
  in
  { trace with records }

let repair_clock trace =
  let records = trace.Probe.Trace.records in
  let survivors =
    Array.to_list records
    |> List.filter_map (fun (r : Probe.Trace.record) ->
           match r.obs with
           | Probe.Trace.Delay d -> Some (r.send_time, d)
           | Probe.Trace.Lost -> None)
  in
  let times = Array.of_list (List.map fst survivors) in
  let delays = Array.of_list (List.map snd survivors) in
  let { Clocksync.slope; _ } = Clocksync.estimate ~times ~delays in
  let t0 = if Array.length records = 0 then 0. else records.(0).Probe.Trace.send_time in
  let records =
    Array.map
      (fun (r : Probe.Trace.record) ->
        match r.obs with
        | Probe.Trace.Lost -> r
        | Probe.Trace.Delay d ->
            { r with obs = Probe.Trace.Delay (d -. (slope *. (r.send_time -. t0))) })
      records
  in
  ({ trace with records }, slope)

let run ?(seed = 1) ?(duration = 1200.) ?(with_pathchar = false) kind =
  let p = profile kind in
  let sim = Sim.create ~seed () in
  let rng = Stats.Rng.split (Sim.rng sim) in
  let net = Net.create sim in
  let src = Net.add_node net "sender" in
  let routers = Array.init p.hops (fun i -> Net.add_node net (Printf.sprintf "R%d" (i + 1))) in
  let dst = Net.add_node net "receiver" in
  (* Path nodes in order: src, R1 .. Rhops, dst — but the paper counts
     "hops" as links, so we use [hops - 1] routers and [hops] links. *)
  ignore routers;
  let path_nodes = Array.concat [ [| src |]; Array.sub routers 0 (p.hops - 1); [| dst |] ] in
  let congested_at hop = List.find_opt (fun c -> c.hop = hop) p.congested in
  let links =
    Array.init p.hops (fun i ->
        let a = path_nodes.(i) and b = path_nodes.(i + 1) in
        match congested_at i with
        | Some c ->
            let fwd, _ =
              Net.add_duplex net ~a ~b ~bandwidth:c.bandwidth
                ~delay:(Stats.Sampler.uniform rng ~lo:0.001 ~hi:0.006)
                ~capacity:c.capacity ()
            in
            fwd
        | None ->
            (* Busy transit hops are deep-buffered: their bursts create
               rare large delay spikes (never losses), stretching the
               observed delay range the way real wide-area paths do. *)
            let capacity = if i = p.stretch_hop then 1_500_000 else 100_000 in
            let fwd, _ =
              Net.add_duplex net ~a ~b ~bandwidth:10e6
                ~delay:(Stats.Sampler.uniform rng ~lo:0.001 ~hi:0.012)
                ~capacity ()
            in
            fwd)
  in
  Net.compute_routes net;
  (* Congested links: a CBR base plus grazing pulses (one brief
     overflow per period), plus light web traffic. *)
  List.iter
    (fun c ->
      let a = path_nodes.(c.hop) and b = path_nodes.(c.hop + 1) in
      Traffic.Udp.start
        (Traffic.Udp.cbr net ~src:a ~dst:b ~rate:(0.15 *. c.bandwidth) ~pkt_size:1000);
      let fill = float_of_int c.capacity /. ((4.15 -. 1.) *. c.bandwidth /. 8.) in
      let source =
        Traffic.Udp.pulse net ~src:a ~dst:b ~rate:(4. *. c.bandwidth) ~pkt_size:1000
          ~on_duration:(fill +. c.pulse_on) ~period:c.pulse_period
      in
      Sim.after sim (c.pulse_period *. Stats.Rng.float rng) (fun () ->
          Traffic.Udp.start source);
      Traffic.Workload.http_start
        (Traffic.Workload.http net ~src:a ~dst:b ~session_rate:0.01))
    p.congested;
  (* The stretch hop: every two minutes a fixed-size 25 Mb/s pulse
     builds ~0.9 s of backlog in the deep buffer and drains — a
     bufferbloat episode.  It pins the top of the observed delay range
     (so the congested link's full-queue delay sits at a low symbol, as
     on real wide-area paths) while coinciding with only ~1% of the
     probing time. *)
  (let a = path_nodes.(p.stretch_hop) and b = path_nodes.(p.stretch_hop + 1) in
   let source =
     Traffic.Udp.pulse net ~src:a ~dst:b ~rate:25e6 ~pkt_size:1000 ~on_duration:0.6
       ~period:120.
   in
   Sim.after sim (120. *. Stats.Rng.float rng) (fun () -> Traffic.Udp.start source));
  (* Busy transit hops: light background jitter, loss-free. *)
  List.iter
    (fun hop ->
      let a = path_nodes.(hop) and b = path_nodes.(hop + 1) in
      let source =
        Traffic.Udp.onoff net ~src:a ~dst:b ~rate:12e6 ~pkt_size:1000 ~mean_on:0.02
          ~mean_off:1.
      in
      Sim.after sim (Stats.Rng.float rng) (fun () -> Traffic.Udp.start source))
    p.busy_transit;
  let prober = Probe.Prober.create net ~src ~dst:(path_nodes.(p.hops)) ~interval:0.02 () in
  let warmup = 20. in
  Probe.Prober.start prober ~at:warmup ~until:(warmup +. duration);
  let pathchar_result = ref None in
  if with_pathchar then
    Sim.at sim warmup (fun () ->
        Pathchar.run net ~src ~hops:p.hops ~dst:(path_nodes.(p.hops)) ~k:(fun r ->
            pathchar_result := Some r));
  Sim.run_until sim (warmup +. duration +. 10.);
  let trace = Probe.Prober.trace prober in
  (* Receiver clock: up to +/-100 ppm skew, as real hosts exhibit. *)
  let skew = Stats.Sampler.uniform rng ~lo:(-1e-4) ~hi:1e-4 in
  let skewed = distort_clock ~skew ~offset:0.005 trace in
  let repaired, est = repair_clock skewed in
  let main = List.hd p.congested in
  let secondary = match p.congested with _ :: s :: _ -> Some s | [ _ ] | [] -> None in
  {
    trace;
    skewed;
    repaired;
    skew_applied = skew;
    skew_estimated = est;
    bottleneck_hop = main.hop;
    bottleneck_q_max = Link.max_queuing_delay links.(main.hop);
    secondary_hop = Option.map (fun c -> c.hop) secondary;
    secondary_q_max = Option.map (fun c -> Link.max_queuing_delay links.(c.hop)) secondary;
    loss_rate = Probe.Trace.loss_rate trace;
    pathchar = !pathchar_result;
  }

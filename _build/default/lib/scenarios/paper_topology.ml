open Netsim

type link_config = { bandwidth : float; capacity : int; queue : Net.queue_spec }

type cross_config = {
  ftp_flows : int;
  http_sessions_per_s : float;
  onoff_rate : float;
  onoff_mean_on : float;
  onoff_mean_off : float;
  cbr_rate : float;
  pulse_rate : float;
  pulse_on : float;
  pulse_period : float;
}

let no_cross =
  {
    ftp_flows = 0;
    http_sessions_per_s = 0.;
    onoff_rate = 0.;
    onoff_mean_on = 0.5;
    onoff_mean_off = 0.5;
    cbr_rate = 0.;
    pulse_rate = 0.;
    pulse_on = 0.5;
    pulse_period = 30.;
  }

type config = {
  seed : int;
  backbone : link_config array;
  cross : cross_config array;
  probe_interval : float;
  warmup : float;
  duration : float;
  with_loss_pairs : bool;
  pair_interval : float;
}

let default_link = { bandwidth = 10e6; capacity = 80_000; queue = Net.Droptail_q }

let default_config =
  {
    seed = 1;
    backbone = Array.make 3 default_link;
    cross = Array.make 3 no_cross;
    probe_interval = 0.02;
    warmup = 30.;
    duration = 300.;
    with_loss_pairs = false;
    pair_interval = 0.04;
  }

type link_report = {
  label : string;
  loss_rate : float;
  utilization : float;
  q_max : float;
  arrivals : int;
  drops : int;
}

type outcome = {
  trace : Probe.Trace.t;
  reports : link_report array;
  backbone_hops : int array;
  loss_pair_samples : float array;
  loss_pair_estimate : float option;
}

let start_cross_traffic net rng ~src ~dst (c : cross_config) =
  let sim = Net.sim net in
  for k = 0 to c.ftp_flows - 1 do
    (* Stagger FTP starts so slow-start bursts do not synchronize. *)
    let at = 0.05 +. (0.37 *. float_of_int k) +. (0.1 *. Stats.Rng.float rng) in
    ignore (Traffic.Workload.ftp_at net ~src ~dst ~at)
  done;
  if c.http_sessions_per_s > 0. then
    Traffic.Workload.http_start
      (Traffic.Workload.http net ~src ~dst ~session_rate:c.http_sessions_per_s);
  if c.onoff_rate > 0. then begin
    let source =
      Traffic.Udp.onoff net ~src ~dst ~rate:c.onoff_rate ~pkt_size:1000
        ~mean_on:c.onoff_mean_on ~mean_off:c.onoff_mean_off
    in
    Sim.after sim (0.2 *. Stats.Rng.float rng) (fun () -> Traffic.Udp.start source)
  end;
  if c.cbr_rate > 0. then
    Traffic.Udp.start (Traffic.Udp.cbr net ~src ~dst ~rate:c.cbr_rate ~pkt_size:1000);
  if c.pulse_rate > 0. then begin
    let source =
      Traffic.Udp.pulse net ~src ~dst ~rate:c.pulse_rate ~pkt_size:1000
        ~on_duration:c.pulse_on ~period:c.pulse_period
    in
    Sim.after sim (c.pulse_period *. Stats.Rng.float rng) (fun () ->
        Traffic.Udp.start source)
  end

let run config =
  if Array.length config.backbone <> 3 || Array.length config.cross <> 3 then
    invalid_arg "Paper_topology.run: need exactly 3 backbone link and cross configs";
  let sim = Sim.create ~seed:config.seed () in
  let rng = Stats.Rng.split (Sim.rng sim) in
  let net = Net.create sim in
  let s0 = Net.add_node net "s0" in
  let routers = Array.init 4 (fun i -> Net.add_node net (Printf.sprintf "r%d" (i + 1))) in
  let d0 = Net.add_node net "d0" in
  (* Access links: ample bandwidth and buffer, no loss (paper setup).
     Edge propagation delays are drawn from U[0.5 ms, 1.5 ms]. *)
  let edge_delay () = Stats.Sampler.uniform rng ~lo:0.0005 ~hi:0.0015 in
  ignore
    (Net.add_duplex net ~a:s0 ~b:routers.(0) ~bandwidth:10e6 ~delay:(edge_delay ())
       ~capacity:1_000_000 ());
  ignore
    (Net.add_duplex net ~a:routers.(3) ~b:d0 ~bandwidth:10e6 ~delay:(edge_delay ())
       ~capacity:1_000_000 ());
  let backbone =
    Array.init 3 (fun i ->
        let lc = config.backbone.(i) in
        let fwd, _rev =
          Net.add_duplex net ~a:routers.(i) ~b:routers.(i + 1) ~bandwidth:lc.bandwidth
            ~delay:0.005 ~capacity:lc.capacity ~queue:lc.queue ()
        in
        fwd)
  in
  Net.compute_routes net;
  Array.iteri
    (fun i c -> start_cross_traffic net rng ~src:routers.(i) ~dst:routers.(i + 1) c)
    config.cross;
  let prober = Probe.Prober.create net ~src:s0 ~dst:d0 ~interval:config.probe_interval () in
  let t_end = config.warmup +. config.duration in
  Probe.Prober.start prober ~at:config.warmup ~until:t_end;
  let pairs =
    if config.with_loss_pairs then begin
      let lp =
        Probe.Losspair.create net ~src:s0 ~dst:d0 ~pair_interval:config.pair_interval ()
      in
      Probe.Losspair.start lp ~at:config.warmup ~until:t_end;
      Some lp
    end
    else None
  in
  (* Slack after the probing window lets in-flight shadows finish. *)
  Sim.run_until sim (t_end +. 5.);
  let trace = Probe.Prober.trace prober in
  let reports =
    Array.mapi
      (fun i link ->
        {
          label = Printf.sprintf "L%d (r%d,r%d)" (i + 1) (i + 1) (i + 2);
          loss_rate = Link.loss_rate link;
          utilization = Link.busy_time link /. Sim.now sim;
          q_max = Link.max_queuing_delay link;
          arrivals = Link.arrivals link;
          drops = Link.drops link;
        })
      backbone
  in
  {
    trace;
    reports;
    (* Probe path: s0->r1 (hop 0), L1..L3 (hops 1..3), r4->d0 (hop 4). *)
    backbone_hops = [| 1; 2; 3 |];
    loss_pair_samples = (match pairs with Some lp -> Probe.Losspair.samples lp | None -> [||]);
    loss_pair_estimate =
      (match pairs with
      | Some lp -> Probe.Losspair.estimate_max_queuing_delay lp
      | None -> None);
  }

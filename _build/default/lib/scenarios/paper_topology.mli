(** The paper's ns topology (Fig. 4): a chain of four routers
    [r1 - r2 - r3 - r4] with three backbone links [L1, L2, L3], a probe
    sender [s0] attached to [r1] and a receiver [d0] attached to [r4].
    Per-link cross traffic flows from [r_i] to [r_(i+1)] (FTP, HTTP
    sessions, UDP on-off, CBR in any mix), so each backbone link's
    congestion is controlled independently.  Periodic probes (and
    optionally loss pairs) run from [s0] to [d0]. *)

type link_config = {
  bandwidth : float;  (** bits/s *)
  capacity : int;  (** buffer, bytes *)
  queue : Netsim.Net.queue_spec;
}

type cross_config = {
  ftp_flows : int;
  http_sessions_per_s : float;  (** 0 disables *)
  onoff_rate : float;  (** bits/s during ON; 0 disables *)
  onoff_mean_on : float;
  onoff_mean_off : float;
  cbr_rate : float;  (** bits/s; 0 disables *)
  pulse_rate : float;  (** bits/s during a pulse; 0 disables *)
  pulse_on : float;  (** pulse duration, seconds *)
  pulse_period : float;  (** pulse period, seconds *)
}

val no_cross : cross_config

type config = {
  seed : int;
  backbone : link_config array;  (** exactly 3: L1, L2, L3 *)
  cross : cross_config array;  (** exactly 3, matching the links *)
  probe_interval : float;
  warmup : float;  (** traffic-only time before probing starts *)
  duration : float;  (** probing time *)
  with_loss_pairs : bool;
  pair_interval : float;
}

val default_config : config
(** 20 ms probes, 40 ms pair spacing, 30 s warmup, 300 s duration, no
    cross traffic — a template to override. *)

type link_report = {
  label : string;
  loss_rate : float;
  utilization : float;
  q_max : float;  (** the link's maximum queuing delay [Q_k], seconds *)
  arrivals : int;
  drops : int;
}

type outcome = {
  trace : Probe.Trace.t;
  reports : link_report array;  (** one per backbone link *)
  backbone_hops : int array;
      (** probe-path hop index of each backbone link (for matching
          ground-truth loss marks to links) *)
  loss_pair_samples : float array;
  loss_pair_estimate : float option;
}

val run : config -> outcome
(** Build the network, start the cross traffic, probe during
    [\[warmup, warmup + duration\]], and collect everything. *)

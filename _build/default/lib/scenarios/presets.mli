(** Ready-made parameterizations of {!Paper_topology} matching the
    three regimes of the paper's Section VI-A (Tables II–IV) and the
    adaptive-RED variants of Section VI-A5 (Figs. 10–11).

    Absolute bandwidths/buffers differ from the paper (its exact unit
    conventions are not recoverable from the text); what is preserved
    is the structure: which links lose packets, the ordering of loss
    shares, loss rates of a few percent, and maximum queuing delays of
    tens to hundreds of milliseconds. *)

val strongly_dcl :
  ?seed:int ->
  ?duration:float ->
  ?with_loss_pairs:bool ->
  bw3:float ->
  unit ->
  Paper_topology.config
(** Losses only at L3 (bandwidth [bw3] bits/s, swept in Table II);
    L1/L2 carry loss-free cross traffic. *)

val strongly_dcl_sweep : float list
(** The Table II bandwidth sweep for L3, bits/s. *)

val weakly_dcl :
  ?seed:int ->
  ?duration:float ->
  ?with_loss_pairs:bool ->
  ?bw1:float ->
  ?bw3:float ->
  unit ->
  Paper_topology.config
(** Two lossy links: L1 with a small loss rate, L3 dominating (about
    19 of every 20 losses) with the larger maximum queuing delay. *)

val weakly_dcl_sweep : (float * float) list
(** The Table III (bw1, bw3) sweep, bits/s. *)

val no_dcl :
  ?seed:int ->
  ?duration:float ->
  ?with_loss_pairs:bool ->
  ?bw1:float ->
  ?bw3:float ->
  unit ->
  Paper_topology.config
(** L1 and L3 with comparable loss rates: no dominant congested
    link. *)

val no_dcl_sweep : (float * float) list
(** The Table IV (bw1, bw3) sweep, bits/s. *)

val with_red : min_th_frac:float -> Paper_topology.config -> Paper_topology.config
(** Replace every backbone queue by adaptive RED with
    [min_th = min_th_frac * capacity] (in packets) and
    [max_th = 3 * min_th] (Figs. 10–11). *)

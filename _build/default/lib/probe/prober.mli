(** Periodic end–end prober (the paper's measurement process): one
    [size]-byte probe every [interval] seconds from [src] to [dst],
    implemented as transparent {!Shadow} probes so each record carries
    both the real-probe observation (delay, or loss when the probe is
    marked lost) and the virtual-probe ground truth. *)

type t

val create :
  ?size:int -> Netsim.Net.t -> src:int -> dst:int -> interval:float -> unit -> t
(** Default probe size: 10 bytes (the paper's).  Routes must already be
    computed. *)

val start : t -> at:float -> until:float -> unit
(** Schedule probes at [at], [at+interval], ... up to (excluding)
    [until].  Results accumulate as the simulation runs. *)

val path : t -> Netsim.Link.t list
val base_delay : t -> float

val trace : t -> Trace.t
(** Snapshot of the completed probes, in send order.  Call after the
    simulation has run past [until] plus the path delay. *)

(** Transparent probe traversal — the paper's {e virtual probe}
    (Section III) made executable.

    A shadow probe walks the path hop by hop in simulated time, reading
    each link's live queue state at its arrival instant, but occupies
    no buffer space and consumes no bandwidth.  At each link it records
    the queuing delay it would have experienced; if the link would drop
    it (droptail buffer overflow, or a RED early-drop draw) and it
    carries no loss mark yet, it records the link's maximum queuing
    delay [Q_k] and marks itself lost — exactly the paper's
    definition.  A marked probe keeps traversing the remaining links,
    which yields the virtual queuing delay of a lost probe. *)

type result = {
  sent_at : float;
  hop_queuing : float array;
      (** queuing delay recorded at each hop, in path order; the
          loss-mark hop contributes its [Q_k] (droptail) or its current
          backlog (RED early drop) *)
  loss_hop : int option;  (** index into the path of the loss mark *)
  base_delay : float;
      (** propagation plus per-hop probe transmission time: the
          queuing-free end-end delay *)
}

val base_delay : size:int -> Netsim.Link.t list -> float
(** Queuing-free delay of a [size]-byte packet over the path. *)

val launch :
  Netsim.Net.t ->
  path:Netsim.Link.t list ->
  size:int ->
  rng:Stats.Rng.t ->
  at:float ->
  k:(result -> unit) ->
  unit
(** Schedule a shadow probe departing at absolute time [at]; [k] runs
    at the (virtual) arrival instant with the completed record.  [rng]
    resolves probabilistic RED drop decisions. *)

val total_queuing : result -> float
(** Sum of per-hop queuing delays — the probe's (virtual) end-end
    queuing delay [Y]. *)

val end_to_end_delay : result -> float
(** [base_delay + total_queuing]. *)

open Netsim

type result = {
  sent_at : float;
  hop_queuing : float array;
  loss_hop : int option;
  base_delay : float;
}

let base_delay ~size path =
  List.fold_left
    (fun acc link -> acc +. Link.prop_delay link +. Link.transmission_time link ~size)
    0. path

let total_queuing r = Array.fold_left ( +. ) 0. r.hop_queuing
let end_to_end_delay r = r.base_delay +. total_queuing r

let launch net ~path ~size ~rng ~at ~k =
  let sim = Net.sim net in
  let links = Array.of_list path in
  let n = Array.length links in
  if n = 0 then invalid_arg "Shadow.launch: empty path";
  let hop_queuing = Array.make n 0. in
  let loss_hop = ref None in
  let base = base_delay ~size path in
  let rec arrive hop =
    if hop = n then
      k { sent_at = at; hop_queuing = Array.copy hop_queuing; loss_hop = !loss_hop; base_delay = base }
    else begin
      let link = links.(hop) in
      let backlog = Link.unfinished_work link in
      let qdelay =
        if !loss_hop = None then begin
          let p = Link.would_drop link ~size in
          let dropped = p >= 1. || (p > 0. && Stats.Rng.float rng < p) in
          if dropped then begin
            loss_hop := Some hop;
            (* A droptail drop means a full buffer: the virtual probe
               records the drain time of that full buffer, Q_k.  A RED
               early drop happens below capacity; the queue the probe
               "sees" is the live backlog. *)
            match Link.policy link with
            | Link.Droptail -> Link.max_queuing_delay link
            | Link.Red _ -> backlog
          end
          else backlog
        end
        else backlog
      in
      hop_queuing.(hop) <- qdelay;
      let hop_time = qdelay +. Link.transmission_time link ~size +. Link.prop_delay link in
      Sim.after sim hop_time (fun () -> arrive (hop + 1))
    end
  in
  Sim.at sim at (fun () -> arrive 0)

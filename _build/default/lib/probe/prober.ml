open Netsim

type t = {
  net : Net.t;
  size : int;
  interval : float;
  path : Link.t list;
  base_delay : float;
  rng : Stats.Rng.t;
  mutable results : (int * Shadow.result) list;  (* (probe index, result), newest first *)
  mutable launched : int;
}

let create ?(size = 10) net ~src ~dst ~interval () =
  if interval <= 0. then invalid_arg "Prober.create: interval <= 0";
  let path = Net.path_links net ~src ~dst in
  {
    net;
    size;
    interval;
    path;
    base_delay = Shadow.base_delay ~size path;
    rng = Stats.Rng.split (Sim.rng (Net.sim net));
    results = [];
    launched = 0;
  }

let start t ~at ~until =
  if until <= at then invalid_arg "Prober.start: empty probing window";
  let n = int_of_float (ceil ((until -. at) /. t.interval)) in
  for i = 0 to n - 1 do
    let send_time = at +. (float_of_int i *. t.interval) in
    if send_time < until then begin
      let idx = t.launched in
      t.launched <- t.launched + 1;
      Shadow.launch t.net ~path:t.path ~size:t.size ~rng:t.rng ~at:send_time
        ~k:(fun r -> t.results <- (idx, r) :: t.results)
    end
  done

let path t = t.path
let base_delay t = t.base_delay

let record_of_result (r : Shadow.result) =
  let vqd = Shadow.total_queuing r in
  let truth =
    Some
      Trace.
        { virtual_queuing_delay = vqd; hop_queuing = r.hop_queuing; loss_hop = r.loss_hop }
  in
  let obs =
    match r.loss_hop with
    | Some _ -> Trace.Lost
    | None -> Trace.Delay (Shadow.end_to_end_delay r)
  in
  Trace.{ send_time = r.sent_at; obs; truth }

let trace t =
  let completed = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev t.results) in
  let records = Array.of_list (List.map (fun (_, r) -> record_of_result r) completed) in
  Trace.create ~records ~interval:t.interval ~base_delay:t.base_delay
    ~hop_count:(List.length t.path)

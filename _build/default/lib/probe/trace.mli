(** Probe traces: the sequence of per-probe outcomes (end–end delay or
    loss) that the identification pipeline consumes, optionally paired
    with virtual-probe ground truth for validation. *)

type observation = Lost | Delay of float  (** end–end delay, seconds *)

type truth = {
  virtual_queuing_delay : float;
      (** the paper's [Y]: end–end queuing delay of the virtual probe,
          with the loss-mark hop contributing [Q_k] *)
  hop_queuing : float array;
  loss_hop : int option;  (** hop index of the loss mark *)
}

type record = { send_time : float; obs : observation; truth : truth option }

type t = {
  records : record array;
  interval : float;  (** probe spacing, seconds *)
  base_delay : float;  (** queuing-free end–end delay (propagation + tx) *)
  hop_count : int;
}

val create :
  records:record array -> interval:float -> base_delay:float -> hop_count:int -> t

val length : t -> int
val losses : t -> int
val loss_rate : t -> float
val duration : t -> float

val observations : t -> observation array

val observed_delays : t -> float array
(** Delays of the probes that were not lost, in order. *)

val min_delay : t -> float
(** Smallest observed end–end delay (the paper's [R_min], used to
    approximate the propagation delay when it is unknown).  Requires at
    least one surviving probe. *)

val max_delay : t -> float

val truth_virtual_delays : t -> float array
(** Ground-truth virtual {e queuing} delays of the probes carrying a
    loss mark — the population whose CDF is the paper's [F].  Empty if
    the trace carries no ground truth. *)

val truth_loss_share : t -> int -> float
(** [truth_loss_share t hop] = fraction of loss marks at path hop
    [hop]; 0 when there are no losses. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous sub-trace (records [pos .. pos+len-1]). *)

val random_segment : Stats.Rng.t -> t -> duration:float -> t
(** Uniformly positioned contiguous segment covering [duration]
    seconds of probing (Section VI-A4's evaluation protocol). *)

val save : t -> string -> unit
(** Write the trace to a text file (one record per line; ground truth
    retained when present). *)

val load : string -> t
(** Inverse of {!save}. *)

lib/probe/trace.ml: Array Float Fun List Printf Stats String

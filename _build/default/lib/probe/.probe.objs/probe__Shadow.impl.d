lib/probe/shadow.ml: Array Link List Net Netsim Sim Stats

lib/probe/trace.mli: Stats

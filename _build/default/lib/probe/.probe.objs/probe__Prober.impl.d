lib/probe/prober.ml: Array Link List Net Netsim Shadow Sim Stats Trace

lib/probe/prober.mli: Netsim Trace

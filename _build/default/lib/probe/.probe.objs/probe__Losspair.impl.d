lib/probe/losspair.ml: Array Float Link List Net Netsim Shadow Sim Stats

lib/probe/losspair.mli: Netsim

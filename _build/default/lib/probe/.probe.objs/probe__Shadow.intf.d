lib/probe/shadow.mli: Netsim Stats

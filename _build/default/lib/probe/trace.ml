type observation = Lost | Delay of float

type truth = {
  virtual_queuing_delay : float;
  hop_queuing : float array;
  loss_hop : int option;
}

type record = { send_time : float; obs : observation; truth : truth option }

type t = {
  records : record array;
  interval : float;
  base_delay : float;
  hop_count : int;
}

let create ~records ~interval ~base_delay ~hop_count =
  if interval <= 0. then invalid_arg "Trace.create: interval <= 0";
  { records; interval; base_delay; hop_count }

let length t = Array.length t.records

let losses t =
  Array.fold_left
    (fun acc r -> match r.obs with Lost -> acc + 1 | Delay _ -> acc)
    0 t.records

let loss_rate t =
  let n = length t in
  if n = 0 then 0. else float_of_int (losses t) /. float_of_int n

let duration t = float_of_int (length t) *. t.interval
let observations t = Array.map (fun r -> r.obs) t.records

let observed_delays t =
  let out = ref [] in
  Array.iter
    (fun r -> match r.obs with Delay d -> out := d :: !out | Lost -> ())
    t.records;
  Array.of_list (List.rev !out)

let min_delay t =
  let ds = observed_delays t in
  if Array.length ds = 0 then invalid_arg "Trace.min_delay: no surviving probe";
  Array.fold_left Float.min ds.(0) ds

let max_delay t =
  let ds = observed_delays t in
  if Array.length ds = 0 then invalid_arg "Trace.max_delay: no surviving probe";
  Array.fold_left Float.max ds.(0) ds

let truth_virtual_delays t =
  let out = ref [] in
  Array.iter
    (fun r ->
      match r.truth with
      | Some { loss_hop = Some _; virtual_queuing_delay; _ } ->
          out := virtual_queuing_delay :: !out
      | Some { loss_hop = None; _ } | None -> ())
    t.records;
  Array.of_list (List.rev !out)

let truth_loss_share t hop =
  let total = ref 0 and at_hop = ref 0 in
  Array.iter
    (fun r ->
      match r.truth with
      | Some { loss_hop = Some h; _ } ->
          incr total;
          if h = hop then incr at_hop
      | Some { loss_hop = None; _ } | None -> ())
    t.records;
  if !total = 0 then 0. else float_of_int !at_hop /. float_of_int !total

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Trace.sub: out of bounds";
  { t with records = Array.sub t.records pos len }

let random_segment rng t ~duration =
  let want = int_of_float (ceil (duration /. t.interval)) in
  let n = length t in
  if want > n then invalid_arg "Trace.random_segment: duration exceeds trace";
  let pos = if want = n then 0 else Stats.Rng.int rng (n - want + 1) in
  sub t ~pos ~len:want

(* --- text serialization ---------------------------------------------

   Header line:   dcltrace 1 <interval> <base_delay> <hop_count>
   Record lines:  <send_time> (L | <delay>) [T <vqd> <loss_hop|-> <hop_q...>]  *)

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "dcltrace 1 %.9f %.9f %d\n" t.interval t.base_delay t.hop_count;
      Array.iter
        (fun r ->
          Printf.fprintf oc "%.6f" r.send_time;
          (match r.obs with
          | Lost -> output_string oc " L"
          | Delay d -> Printf.fprintf oc " %.9f" d);
          (match r.truth with
          | None -> ()
          | Some tr ->
              Printf.fprintf oc " T %.9f %s" tr.virtual_queuing_delay
                (match tr.loss_hop with None -> "-" | Some h -> string_of_int h);
              Array.iter (fun q -> Printf.fprintf oc " %.9f" q) tr.hop_queuing);
          output_char oc '\n')
        t.records)

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      let interval, base_delay, hop_count =
        match String.split_on_char ' ' header with
        | [ "dcltrace"; "1"; i; b; h ] ->
            (float_of_string i, float_of_string b, int_of_string h)
        | _ -> failwith "Trace.load: bad header"
      in
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 0 then begin
             let fields = String.split_on_char ' ' line in
             match fields with
             | send :: obs :: rest ->
                 let send_time = float_of_string send in
                 let obs = if obs = "L" then Lost else Delay (float_of_string obs) in
                 let truth =
                   match rest with
                   | "T" :: vqd :: hop :: qs ->
                       Some
                         {
                           virtual_queuing_delay = float_of_string vqd;
                           loss_hop = (if hop = "-" then None else Some (int_of_string hop));
                           hop_queuing = Array.of_list (List.map float_of_string qs);
                         }
                   | [] -> None
                   | _ -> failwith "Trace.load: bad record"
                 in
                 records := { send_time; obs; truth } :: !records
             | _ -> failwith "Trace.load: bad record"
           end
         done
       with End_of_file -> ());
      create ~records:(Array.of_list (List.rev !records)) ~interval ~base_delay ~hop_count)

type t = {
  n : int;
  m : int;
  pi : float array;
  a : float array array;
  b : float array array;
  c : float array;
}

type observation = int option
type fit_stats = { iterations : int; log_likelihood : float; converged : bool }

let clamp_prob p = Float.max 1e-6 (Float.min (1. -. 1e-6) p)

let init_random rng ~n ~m ~loss_fraction =
  if n <= 0 || m <= 0 then invalid_arg "Hmm.init_random: n and m must be positive";
  let jitter () = 0.8 +. (0.4 *. Stats.Rng.float rng) in
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng n;
    a = Stats.Matrix.random_stochastic rng n n;
    b = Stats.Matrix.random_stochastic rng n m;
    c = Array.init m (fun _ -> clamp_prob (loss_fraction *. jitter ()));
  }

(* See Mmhd.neighbor_attribution: empirical loss-to-symbol attribution
   used to seed [c]. *)
let neighbor_attribution ~m obs =
  let tt = Array.length obs in
  let seen = Array.make m 1. and lost = Array.make m 0.5 in
  let nearest t0 =
    let rec scan d =
      if d > tt then None
      else
        let back = t0 - d and fwd = t0 + d in
        let pick t = if t >= 0 && t < tt then obs.(t) else None in
        match pick back with
        | Some j -> Some j
        | None -> ( match pick fwd with Some j -> Some j | None -> scan (d + 1))
    in
    scan 1
  in
  Array.iteri
    (fun t o ->
      match o with
      | Some j -> seen.(j) <- seen.(j) +. 1.
      | None -> (
          match nearest t with
          | Some j -> lost.(j) <- lost.(j) +. 1.
          | None -> ()))
    obs;
  (seen, lost)

let init_informed rng ~n ~m obs =
  let seen, lost = neighbor_attribution ~m obs in
  let jitter () = 0.85 +. (0.3 *. Stats.Rng.float rng) in
  let c = Array.init m (fun j -> clamp_prob (lost.(j) /. (seen.(j) +. lost.(j)))) in
  (* Tilt each state's emissions toward a different end of the symbol
     axis: identical rows are a saddle point of the likelihood from
     which EM cannot separate the hidden states. *)
  let tilt i j =
    if n = 1 || m = 1 then 1.
    else
      let dir = (2. *. float_of_int i /. float_of_int (n - 1)) -. 1. in
      let pos = (2. *. float_of_int j /. float_of_int (m - 1)) -. 1. in
      exp (1.2 *. dir *. pos)
  in
  let b = Array.init n (fun i -> Array.init m (fun j -> seen.(j) *. tilt i j *. jitter ())) in
  Stats.Matrix.row_normalize b;
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng n;
    a = Stats.Matrix.random_stochastic rng n n;
    b;
    c;
  }

let is_prob_vector v = Array.for_all (fun p -> p >= 0. && p <= 1.) v

let validate t =
  let stochastic_vec v = abs_float (Array.fold_left ( +. ) 0. v -. 1.) <= 1e-6 in
  if Array.length t.pi <> t.n || not (stochastic_vec t.pi) || not (is_prob_vector t.pi)
  then invalid_arg "Hmm.validate: pi is not a distribution over n states";
  if Stats.Matrix.dims t.a <> (t.n, t.n) || not (Stats.Matrix.is_stochastic t.a) then
    invalid_arg "Hmm.validate: a is not an n-by-n stochastic matrix";
  if Stats.Matrix.dims t.b <> (t.n, t.m) || not (Stats.Matrix.is_stochastic t.b) then
    invalid_arg "Hmm.validate: b is not an n-by-m stochastic matrix";
  if Array.length t.c <> t.m || not (is_prob_vector t.c) then
    invalid_arg "Hmm.validate: c is not a vector of m probabilities"

(* Emission probability of observation [o] in hidden state [i]:
     e_i(Some j) = b_i(j) * (1 - c_j)
     e_i(None)   = sum_j b_i(j) * c_j                                  *)
let emission t i = function
  | Some j -> t.b.(i).(j) *. (1. -. t.c.(j))
  | None ->
      let acc = ref 0. in
      for j = 0 to t.m - 1 do
        acc := !acc +. (t.b.(i).(j) *. t.c.(j))
      done;
      !acc

(* Scaled forward-backward (Rabiner's \hat{alpha}/\hat{beta}); returns
   (alpha, beta, scales).  gamma_t(i) = alpha_t(i) * beta_t(i) under
   this scaling. *)
let forward_backward t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Hmm: empty observation sequence";
  let n = t.n in
  let alpha = Array.make_matrix tt n 0. in
  let beta = Array.make_matrix tt n 0. in
  let scale = Array.make tt 0. in
  (* Forward. *)
  let s0 = ref 0. in
  for i = 0 to n - 1 do
    let v = t.pi.(i) *. emission t i obs.(0) in
    alpha.(0).(i) <- v;
    s0 := !s0 +. v
  done;
  if !s0 <= 0. then failwith "Hmm: observation has zero likelihood under the model";
  scale.(0) <- !s0;
  for i = 0 to n - 1 do
    alpha.(0).(i) <- alpha.(0).(i) /. !s0
  done;
  for time = 1 to tt - 1 do
    let s = ref 0. in
    for i = 0 to n - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (alpha.(time - 1).(k) *. t.a.(k).(i))
      done;
      let v = !acc *. emission t i obs.(time) in
      alpha.(time).(i) <- v;
      s := !s +. v
    done;
    if !s <= 0. then failwith "Hmm: observation has zero likelihood under the model";
    scale.(time) <- !s;
    for i = 0 to n - 1 do
      alpha.(time).(i) <- alpha.(time).(i) /. !s
    done
  done;
  (* Backward. *)
  for i = 0 to n - 1 do
    beta.(tt - 1).(i) <- 1.
  done;
  for time = tt - 2 downto 0 do
    for i = 0 to n - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (t.a.(i).(k) *. emission t k obs.(time + 1) *. beta.(time + 1).(k))
      done;
      beta.(time).(i) <- !acc /. scale.(time + 1)
    done
  done;
  (alpha, beta, scale)

let viterbi t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Hmm.viterbi: empty observation sequence";
  let n = t.n in
  let log_safe x = if x <= 0. then neg_infinity else log x in
  let delta = Array.make_matrix tt n neg_infinity in
  let back = Array.make_matrix tt n 0 in
  for i = 0 to n - 1 do
    delta.(0).(i) <- log_safe t.pi.(i) +. log_safe (emission t i obs.(0))
  done;
  for time = 1 to tt - 1 do
    for i = 0 to n - 1 do
      let e = log_safe (emission t i obs.(time)) in
      for k = 0 to n - 1 do
        let cand = delta.(time - 1).(k) +. log_safe t.a.(k).(i) +. e in
        if cand > delta.(time).(i) then begin
          delta.(time).(i) <- cand;
          back.(time).(i) <- k
        end
      done
    done
  done;
  let best = ref 0 in
  for i = 1 to n - 1 do
    if delta.(tt - 1).(i) > delta.(tt - 1).(!best) then best := i
  done;
  let path = Array.make tt 0 in
  path.(tt - 1) <- !best;
  for time = tt - 2 downto 0 do
    path.(time) <- back.(time + 1).(path.(time + 1))
  done;
  (path, delta.(tt - 1).(!best))

let log_likelihood t obs =
  let _, _, scale = forward_backward t obs in
  Array.fold_left (fun acc s -> acc +. log s) 0. scale

let state_posteriors t obs =
  let alpha, beta, _ = forward_backward t obs in
  Array.mapi (fun time a_row -> Array.mapi (fun i a_i -> a_i *. beta.(time).(i)) a_row) alpha

(* Posterior of the missing symbol given hidden state i and a loss:
   w(i,j) = b_i(j) c_j / e_i(None).  Time-independent. *)
let loss_symbol_weights t =
  Array.init t.n (fun i ->
      let e_loss = emission t i None in
      Array.init t.m (fun j ->
          if e_loss <= 0. then 0. else t.b.(i).(j) *. t.c.(j) /. e_loss))

(* One EM iteration; returns the re-estimated model. *)
let em_step t obs =
  let tt = Array.length obs in
  let n = t.n and m = t.m in
  let alpha, beta, scale = forward_backward t obs in
  let gamma time i = alpha.(time).(i) *. beta.(time).(i) in
  let w = loss_symbol_weights t in
  (* Transition statistics. *)
  let xi_sum = Stats.Matrix.make n n 0. in
  let gamma_sum = Array.make n 0. in
  for time = 0 to tt - 2 do
    for i = 0 to n - 1 do
      gamma_sum.(i) <- gamma_sum.(i) +. gamma time i;
      for k = 0 to n - 1 do
        xi_sum.(i).(k) <-
          xi_sum.(i).(k)
          +. alpha.(time).(i) *. t.a.(i).(k)
             *. emission t k obs.(time + 1)
             *. beta.(time + 1).(k)
             /. scale.(time + 1)
      done
    done
  done;
  (* Emission / loss statistics. *)
  let count_obs = Stats.Matrix.make n m 0. in
  let count_loss = Stats.Matrix.make n m 0. in
  for time = 0 to tt - 1 do
    match obs.(time) with
    | Some j ->
        for i = 0 to n - 1 do
          count_obs.(i).(j) <- count_obs.(i).(j) +. gamma time i
        done
    | None ->
        for i = 0 to n - 1 do
          let g = gamma time i in
          for j = 0 to m - 1 do
            count_loss.(i).(j) <- count_loss.(i).(j) +. (g *. w.(i).(j))
          done
        done
  done;
  (* Renormalize: gamma 0 sums to 1 only up to rounding. *)
  let pi' = Array.init n (fun i -> Float.max 0. (gamma 0 i)) in
  let pi_sum = Array.fold_left ( +. ) 0. pi' in
  let pi' = Array.map (fun p -> p /. pi_sum) pi' in
  let a' =
    Array.init n (fun i ->
        Array.init n (fun k ->
            if gamma_sum.(i) <= 0. then t.a.(i).(k) else xi_sum.(i).(k) /. gamma_sum.(i)))
  in
  Stats.Matrix.row_normalize a';
  let b' =
    Array.init n (fun i ->
        let row = Array.init m (fun j -> count_obs.(i).(j) +. count_loss.(i).(j)) in
        let s = Array.fold_left ( +. ) 0. row in
        if s <= 0. then Array.copy t.b.(i) else Array.map (fun x -> x /. s) row)
  in
  let c' =
    Array.init m (fun j ->
        let lost = ref 0. and seen = ref 0. in
        for i = 0 to n - 1 do
          lost := !lost +. count_loss.(i).(j);
          seen := !seen +. count_obs.(i).(j) +. count_loss.(i).(j)
        done;
        if !seen <= 0. then t.c.(j) else !lost /. !seen)
  in
  { t with pi = pi'; a = a'; b = b'; c = c' }

let param_change old_t new_t =
  let d1 = Stats.Matrix.max_abs_diff_vec old_t.pi new_t.pi in
  let d2 = Stats.Matrix.max_abs_diff old_t.a new_t.a in
  let d3 = Stats.Matrix.max_abs_diff old_t.b new_t.b in
  let d4 = Stats.Matrix.max_abs_diff_vec old_t.c new_t.c in
  Float.max (Float.max d1 d2) (Float.max d3 d4)

let fit_from ?(eps = 1e-3) ?(max_iter = 300) t0 obs =
  let rec iterate t iter =
    let t' = em_step t obs in
    let change = param_change t t' in
    if change <= eps || iter + 1 >= max_iter then
      (t', { iterations = iter + 1; log_likelihood = log_likelihood t' obs; converged = change <= eps })
    else iterate t' (iter + 1)
  in
  iterate t0 0

let fit ?eps ?max_iter ?(restarts = 2) ~rng ~n ~m obs =
  if restarts <= 0 then invalid_arg "Hmm.fit: restarts must be positive";
  (* Every starting point is the data-driven informed initialization
     with independent jitter, and the best converged attempt wins.
     Purely random initializations are deliberately not raced by
     likelihood: the model family admits degenerate optima in which a
     rarely-observed symbol absorbs all the losses (its loss
     probability is driven toward 1 at negligible cost), and those
     optima can dominate the likelihood while being statistically
     meaningless.  Informed starts are anchored by the neighbour
     attribution, so comparing them by likelihood is safe. *)
  let attempt () = fit_from ?eps ?max_iter (init_informed rng ~n ~m obs) obs in
  let best = ref (attempt ()) in
  for _ = 2 to restarts do
    let cand = attempt () in
    let better =
      ((snd cand).converged && not (snd !best).converged)
      || (snd cand).converged = (snd !best).converged
         && (snd cand).log_likelihood > (snd !best).log_likelihood
    in
    if better then best := cand
  done;
  !best

let virtual_delay_pmf t obs =
  let alpha, beta, _ = forward_backward t obs in
  let w = loss_symbol_weights t in
  let acc = Array.make t.m 0. in
  let losses = ref 0 in
  Array.iteri
    (fun time o ->
      match o with
      | Some _ -> ()
      | None ->
          incr losses;
          for i = 0 to t.n - 1 do
            let g = alpha.(time).(i) *. beta.(time).(i) in
            for j = 0 to t.m - 1 do
              acc.(j) <- acc.(j) +. (g *. w.(i).(j))
            done
          done)
    obs;
  if !losses = 0 then invalid_arg "Hmm.virtual_delay_pmf: no loss in the sequence";
  Stats.Histogram.normalize acc

let simulate rng t ~len =
  if len <= 0 then invalid_arg "Hmm.simulate: len <= 0";
  validate t;
  let states = Array.make len 0 in
  let obs = Array.make len None in
  let state = ref (Stats.Sampler.categorical rng t.pi) in
  for time = 0 to len - 1 do
    states.(time) <- !state;
    let j = Stats.Sampler.categorical rng t.b.(!state) in
    obs.(time) <- (if Stats.Sampler.bernoulli rng ~p:t.c.(j) then None else Some j);
    state := Stats.Sampler.categorical rng t.a.(!state)
  done;
  (obs, states)

open Netsim

type shape =
  | Cbr
  | Onoff of { mean_on : float; mean_off : float }
  | Pulse of { on_duration : float; period : float }

type t = {
  net : Net.t;
  flow : int;
  src : int;
  dst : int;
  interval : float;  (* packet spacing while sending *)
  pkt_size : int;
  shape : shape;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable seq : int;
  mutable sent : int;
  mutable received : int;
}

let make net ~src ~dst ~rate ~pkt_size shape =
  if rate <= 0. then invalid_arg "Udp: rate <= 0";
  if pkt_size <= 0 then invalid_arg "Udp: pkt_size <= 0";
  let s = Net.sim net in
  let flow = Sim.fresh_flow_id s in
  let t =
    {
      net;
      flow;
      src;
      dst;
      interval = float_of_int (pkt_size * 8) /. rate;
      pkt_size;
      shape;
      rng = Stats.Rng.split (Sim.rng s);
      running = false;
      seq = 0;
      sent = 0;
      received = 0;
    }
  in
  Net.set_handler net ~node:dst ~flow (fun _ -> t.received <- t.received + 1);
  t

let cbr net ~src ~dst ~rate ~pkt_size = make net ~src ~dst ~rate ~pkt_size Cbr

let onoff net ~src ~dst ~rate ~pkt_size ~mean_on ~mean_off =
  if mean_on <= 0. || mean_off <= 0. then invalid_arg "Udp.onoff: non-positive period";
  make net ~src ~dst ~rate ~pkt_size (Onoff { mean_on; mean_off })

let pulse net ~src ~dst ~rate ~pkt_size ~on_duration ~period =
  if on_duration <= 0. || period <= on_duration then
    invalid_arg "Udp.pulse: need 0 < on_duration < period";
  make net ~src ~dst ~rate ~pkt_size (Pulse { on_duration; period })

let emit t =
  let s = Net.sim t.net in
  let pkt =
    Packet.make ~id:(Sim.fresh_packet_id s) ~flow:t.flow ~src:t.src ~dst:t.dst
      ~size:t.pkt_size ~kind:Packet.Udp ~seq:t.seq ~sent_at:(Sim.now s) ()
  in
  t.seq <- t.seq + 1;
  t.sent <- t.sent + 1;
  Net.inject t.net pkt

let rec send_loop t ~until =
  if t.running then begin
    let s = Net.sim t.net in
    let now = Sim.now s in
    if now <= until then begin
      emit t;
      Sim.after s t.interval (fun () -> send_loop t ~until)
    end
    else
      match t.shape with
      | Cbr ->
          (* CBR never pauses; [until] is infinite, unreachable. *)
          ()
      | Onoff { mean_on; mean_off } ->
          let off = Stats.Sampler.exponential t.rng ~rate:(1. /. mean_off) in
          Sim.after s off (fun () -> start_on t ~mean_on)
      | Pulse { on_duration; period } ->
          let gap = period -. on_duration in
          let jitter = 0.9 +. (0.2 *. Stats.Rng.float t.rng) in
          Sim.after s (gap *. jitter) (fun () ->
              if t.running then send_loop t ~until:(Sim.now s +. on_duration))
  end

and start_on t ~mean_on =
  if t.running then begin
    let on = Stats.Sampler.exponential t.rng ~rate:(1. /. mean_on) in
    let s = Net.sim t.net in
    send_loop t ~until:(Sim.now s +. on)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    match t.shape with
    | Cbr -> send_loop t ~until:infinity
    | Onoff { mean_on; mean_off = _ } -> start_on t ~mean_on
    | Pulse { on_duration; period = _ } ->
        let s = Net.sim t.net in
        send_loop t ~until:(Sim.now s +. on_duration)
  end

let stop t = t.running <- false
let sent t = t.sent
let received t = t.received

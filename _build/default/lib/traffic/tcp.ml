open Netsim

type config = {
  mss : int;
  header : int;
  ack_size : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  min_rto : float;
  max_rto : float;
}

let default_config =
  {
    mss = 1000;
    header = 40;
    ack_size = 40;
    initial_cwnd = 2.;
    initial_ssthresh = 64.;
    min_rto = 0.2;
    max_rto = 60.;
  }

type mode = Normal | Recovery of { recover : int }

type receiver = {
  mutable next_expected : int;
  buffered : (int, unit) Hashtbl.t;
  mutable delivered : int;
}

type t = {
  net : Net.t;
  config : config;
  flow : int;
  src : int;
  dst : int;
  recv : receiver;
  (* --- sender state --- *)
  mutable started : bool;
  mutable next_to_send : int;  (* next segment try_send will emit *)
  mutable max_sent : int;  (* one past the highest segment ever sent *)
  mutable highest_acked : int;  (* cumulative: all segments < this are acked *)
  mutable backlog : int option;  (* total segments supplied; None = unlimited *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable mode : mode;
  mutable dupacks : int;
  (* RTT estimation (Karn: one timed segment at a time, never a
     retransmission) *)
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable timed_seq : int option;
  mutable timed_at : float;
  mutable retx_floor : int;  (* segments below this were retransmitted *)
  mutable timer_gen : int;
  mutable completed : bool;
  mutable complete_cb : unit -> unit;
  (* counters *)
  mutable segments_sent : int;
  mutable retransmissions : int;
  mutable timeouts : int;
}

let flow t = t.flow
let sim t = Net.sim t.net

let backlog_limit t = match t.backlog with None -> max_int | Some n -> n

let flight_size t = t.next_to_send - t.highest_acked

(* --- receiver ------------------------------------------------------- *)

let send_ack t =
  let s = sim t in
  let pkt =
    Packet.make ~id:(Sim.fresh_packet_id s) ~flow:t.flow ~src:t.dst ~dst:t.src
      ~size:t.config.ack_size ~kind:Packet.Tcp_ack ~seq:t.recv.next_expected
      ~sent_at:(Sim.now s) ()
  in
  Net.inject t.net pkt

let handle_data t (pkt : Packet.t) =
  let r = t.recv in
  let seq = pkt.Packet.seq in
  if seq = r.next_expected then begin
    r.next_expected <- r.next_expected + 1;
    r.delivered <- r.delivered + 1;
    (* Drain any contiguous buffered segments. *)
    let continue = ref true in
    while !continue do
      if Hashtbl.mem r.buffered r.next_expected then begin
        Hashtbl.remove r.buffered r.next_expected;
        r.next_expected <- r.next_expected + 1;
        r.delivered <- r.delivered + 1
      end
      else continue := false
    done
  end
  else if seq > r.next_expected then Hashtbl.replace r.buffered seq ();
  send_ack t

(* --- sender --------------------------------------------------------- *)

let update_rto t sample =
  let alpha = 1. /. 8. and beta = 1. /. 4. in
  (match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- sample /. 2.
  | Some srtt ->
      t.rttvar <- ((1. -. beta) *. t.rttvar) +. (beta *. abs_float (srtt -. sample));
      t.srtt <- Some (((1. -. alpha) *. srtt) +. (alpha *. sample)));
  let srtt = Option.get t.srtt in
  t.rto <- Float.min t.config.max_rto (Float.max t.config.min_rto (srtt +. (4. *. t.rttvar)))

let stop_timer t = t.timer_gen <- t.timer_gen + 1

let rec restart_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Sim.after (sim t) t.rto (fun () -> if gen = t.timer_gen && not t.completed then on_timeout t)

and transmit t seq ~retransmission =
  let s = sim t in
  let pkt =
    Packet.make ~id:(Sim.fresh_packet_id s) ~flow:t.flow ~src:t.src ~dst:t.dst
      ~size:(t.config.mss + t.config.header) ~kind:Packet.Tcp_data ~seq
      ~sent_at:(Sim.now s) ()
  in
  t.segments_sent <- t.segments_sent + 1;
  t.max_sent <- Stdlib.max t.max_sent (seq + 1);
  if retransmission then begin
    t.retransmissions <- t.retransmissions + 1;
    t.retx_floor <- Stdlib.max t.retx_floor (seq + 1);
    if t.timed_seq = Some seq then t.timed_seq <- None
  end
  else if t.timed_seq = None && seq >= t.retx_floor then begin
    t.timed_seq <- Some seq;
    t.timed_at <- Sim.now s
  end;
  Net.inject t.net pkt

and try_send t =
  let limit = backlog_limit t in
  let window = int_of_float t.cwnd in
  let continue = ref true in
  while !continue do
    if t.next_to_send < limit && t.next_to_send - t.highest_acked < window then begin
      let had_outstanding = flight_size t > 0 in
      (* After a timeout [next_to_send] rewinds to the cumulative ACK:
         everything up to [max_sent] is then a (go-back-N) resend. *)
      transmit t t.next_to_send ~retransmission:(t.next_to_send < t.max_sent);
      t.next_to_send <- t.next_to_send + 1;
      if not had_outstanding then restart_timer t
    end
    else continue := false
  done

and on_timeout t =
  if flight_size t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    t.ssthresh <- Float.max 2. (float_of_int (flight_size t) /. 2.);
    t.cwnd <- 1.;
    t.mode <- Normal;
    t.dupacks <- 0;
    t.timed_seq <- None;
    (* Exponential backoff; the next valid RTT sample recomputes it. *)
    t.rto <- Float.min t.config.max_rto (t.rto *. 2.);
    (* Slow-start retransmission: everything past the cumulative ACK is
       presumed lost and resent as the window reopens. *)
    t.next_to_send <- t.highest_acked;
    restart_timer t;
    try_send t
  end

let check_complete t =
  match t.backlog with
  | Some n when (not t.completed) && t.highest_acked >= n ->
      t.completed <- true;
      stop_timer t;
      t.complete_cb ()
  | Some _ | None -> ()

let maybe_sample_rtt t ack =
  match t.timed_seq with
  | Some seq when ack > seq ->
      update_rto t (Sim.now (sim t) -. t.timed_at);
      t.timed_seq <- None
  | Some _ | None -> ()

let enter_recovery t =
  t.ssthresh <- Float.max 2. (float_of_int (flight_size t) /. 2.);
  let recover = t.next_to_send - 1 in
  t.mode <- Recovery { recover };
  transmit t t.highest_acked ~retransmission:true;
  t.cwnd <- t.ssthresh +. 3.;
  restart_timer t

let on_new_ack t ack =
  maybe_sample_rtt t ack;
  let newly = ack - t.highest_acked in
  t.highest_acked <- ack;
  (match t.mode with
  | Recovery _ ->
      (* Plain Reno: any new ACK ends fast recovery and deflates the
         window.  (NewReno-style partial-ACK retransmission is
         deliberately not used: with repeated retransmission losses its
         per-dupack inflation is unbounded, whereas Reno falls back to
         the retransmission timer — the behaviour of the ns TCP agents
         of the paper's era.) *)
      t.mode <- Normal;
      t.dupacks <- 0;
      t.cwnd <- t.ssthresh
  | Normal ->
      t.dupacks <- 0;
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. float_of_int newly
      else t.cwnd <- t.cwnd +. (float_of_int newly /. t.cwnd));
  if flight_size t > 0 then restart_timer t else stop_timer t;
  try_send t;
  check_complete t

let on_dup_ack t =
  (match t.mode with
  | Recovery _ ->
      (* Window inflation per extra duplicate. *)
      t.cwnd <- t.cwnd +. 1.
  | Normal ->
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 && flight_size t > 0 then enter_recovery t);
  try_send t

let handle_ack t (pkt : Packet.t) =
  if t.completed then ()
  else
    let ack = pkt.Packet.seq in
    if ack > t.highest_acked then on_new_ack t ack
    else if ack = t.highest_acked && flight_size t > 0 then on_dup_ack t

let create ?(config = default_config) ?flow net ~src ~dst () =
  let s = Net.sim net in
  let flow = match flow with Some f -> f | None -> Sim.fresh_flow_id s in
  let t =
    {
      net;
      config;
      flow;
      src;
      dst;
      recv = { next_expected = 0; buffered = Hashtbl.create 64; delivered = 0 };
      started = false;
      next_to_send = 0;
      max_sent = 0;
      highest_acked = 0;
      backlog = Some 0;
      cwnd = config.initial_cwnd;
      ssthresh = config.initial_ssthresh;
      mode = Normal;
      dupacks = 0;
      srtt = None;
      rttvar = 0.;
      rto = 1.;
      timed_seq = None;
      timed_at = 0.;
      retx_floor = 0;
      timer_gen = 0;
      completed = false;
      complete_cb = (fun () -> ());
      segments_sent = 0;
      retransmissions = 0;
      timeouts = 0;
    }
  in
  Net.set_handler net ~node:dst ~flow (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Tcp_data -> handle_data t pkt
      | Packet.Tcp_ack | Packet.Udp | Packet.Icmp_ttl_exceeded -> ());
  Net.set_handler net ~node:src ~flow (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Tcp_ack -> handle_ack t pkt
      | Packet.Tcp_data | Packet.Udp | Packet.Icmp_ttl_exceeded -> ());
  t

let start t =
  if not t.started then begin
    t.started <- true;
    try_send t
  end

let supply t n =
  if n < 0 then invalid_arg "Tcp.supply: negative";
  (match t.backlog with
  | Some b ->
      t.backlog <- Some (b + n);
      if n > 0 then t.completed <- false
  | None -> ());
  if t.started then try_send t

let set_unlimited t =
  t.backlog <- None;
  if t.started then try_send t

let on_complete t f = t.complete_cb <- f
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let rto t = t.rto
let highest_acked t = t.highest_acked
let segments_sent t = t.segments_sent
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts
let delivered_in_order t = t.recv.delivered

lib/traffic/udp.ml: Net Netsim Packet Sim Stats

lib/traffic/tcp.ml: Float Hashtbl Net Netsim Option Packet Sim Stdlib

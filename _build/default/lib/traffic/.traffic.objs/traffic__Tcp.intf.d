lib/traffic/tcp.mli: Netsim

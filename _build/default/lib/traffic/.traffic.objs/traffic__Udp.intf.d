lib/traffic/udp.mli: Netsim

lib/traffic/workload.ml: Net Netsim Sim Stats Stdlib Tcp

lib/traffic/workload.mli: Netsim Tcp

(** Open-loop UDP sources: constant bit rate and exponential on-off.
    Both register a counting sink at the destination. *)

type t

val cbr :
  Netsim.Net.t -> src:int -> dst:int -> rate:float -> pkt_size:int -> t
(** [cbr net ~src ~dst ~rate ~pkt_size] emits [pkt_size]-byte datagrams
    back to back at [rate] bits/s once started. *)

val onoff :
  Netsim.Net.t ->
  src:int ->
  dst:int ->
  rate:float ->
  pkt_size:int ->
  mean_on:float ->
  mean_off:float ->
  t
(** Exponential on-off source: alternates exponentially distributed ON
    periods (mean [mean_on] seconds, sending at [rate] bits/s) and OFF
    periods (mean [mean_off]).  This is the paper's "UDP on-off"
    cross traffic. *)

val pulse :
  Netsim.Net.t ->
  src:int ->
  dst:int ->
  rate:float ->
  pkt_size:int ->
  on_duration:float ->
  period:float ->
  t
(** Periodic pulse source: every [period] seconds (with a +/-10%
    uniform jitter so it cannot phase-lock with periodic probing) it
    transmits at [rate] bits/s for [on_duration] seconds.  Think
    periodic bulk jobs: it produces one congestion episode of
    predictable length per period, which makes a link's loss level
    steady across runs. *)

val start : t -> unit
(** Begin at the current simulation time (an on-off source starts with
    an ON period). *)

val stop : t -> unit
val sent : t -> int
val received : t -> int
(** Packets that reached the destination sink. *)

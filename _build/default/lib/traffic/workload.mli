(** Closed-loop application workloads layered over {!Tcp}: greedy FTP
    transfers and an HTTP-like session model (the paper's "FTP and
    HTTP traffic generated using the empirical data provided by ns" is
    approximated by Poisson sessions fetching Pareto-sized objects with
    exponential think times — the standard web-workload shape). *)

val ftp : ?config:Tcp.config -> Netsim.Net.t -> src:int -> dst:int -> Tcp.t
(** An unlimited TCP source.  Call {!Tcp.start} (or use {!ftp_at}). *)

val ftp_at : ?config:Tcp.config -> Netsim.Net.t -> src:int -> dst:int -> at:float -> Tcp.t
(** FTP starting at absolute time [at]. *)

type http

val http :
  ?config:Tcp.config ->
  ?pages_per_session:int ->
  ?pareto_shape:float ->
  ?min_page_segments:int ->
  ?mean_think:float ->
  Netsim.Net.t ->
  src:int ->
  dst:int ->
  session_rate:float ->
  http
(** HTTP-like workload from [src] to [dst]: sessions arrive as a
    Poisson process of rate [session_rate] per second; each session
    fetches [pages_per_session] (default 5) objects in sequence, each a
    fresh TCP connection transferring a Pareto([pareto_shape], default
    1.3) number of segments (min [min_page_segments], default 2), with
    exponential think times (mean [mean_think], default 1 s) between
    objects. *)

val http_start : http -> unit
val http_pages_completed : http -> int
val http_sessions_started : http -> int

(** TCP Reno/NewReno over the simulated network, at segment
    granularity.

    The sender implements slow start, congestion avoidance, fast
    retransmit after three duplicate ACKs, Reno fast recovery (any new
    ACK ends recovery; remaining holes are recovered by further fast
    retransmits or the timer), an RFC 6298 retransmission timer with
    Karn's algorithm and exponential backoff.  The receiver buffers
    out-of-order segments and returns cumulative ACKs.  This mirrors
    the ns TCP agents driving the paper's cross traffic closely enough
    to produce the bursty, closed-loop queue dynamics the probes
    observe. *)

type config = {
  mss : int;  (** payload bytes per segment *)
  header : int;  (** header bytes added to data segments *)
  ack_size : int;  (** bytes of a pure ACK *)
  initial_cwnd : float;  (** segments *)
  initial_ssthresh : float;  (** segments *)
  min_rto : float;
  max_rto : float;
}

val default_config : config
(** 1000-byte MSS, 40-byte headers and ACKs, cwnd 2, ssthresh 64,
    RTO in [\[0.2 s, 60 s\]]. *)

type t
(** A connection: sender agent at [src], receiver agent at [dst]. *)

val create :
  ?config:config -> ?flow:int -> Netsim.Net.t -> src:int -> dst:int -> unit -> t
(** Creates both endpoints and registers their packet handlers.  The
    connection is idle until {!supply} or {!set_unlimited} provides
    data and {!start} is called. *)

val flow : t -> int

val start : t -> unit
(** Begin transmitting at the current simulation time. *)

val supply : t -> int -> unit
(** Add [n] segments to the application backlog. *)

val set_unlimited : t -> unit
(** Greedy source (FTP): the backlog never empties. *)

val on_complete : t -> (unit -> unit) -> unit
(** Called once when every supplied segment has been cumulatively
    acknowledged.  Never called for unlimited senders. *)

(** {1 Introspection (sender side unless noted)} *)

val cwnd : t -> float
val ssthresh : t -> float
val rto : t -> float
val highest_acked : t -> int
val segments_sent : t -> int
(** Transmissions, including retransmissions. *)

val retransmissions : t -> int
val timeouts : t -> int
val delivered_in_order : t -> int
(** Receiver side: segments delivered to the application in order. *)

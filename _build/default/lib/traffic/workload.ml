open Netsim

let ftp ?config net ~src ~dst =
  let conn = Tcp.create ?config net ~src ~dst () in
  Tcp.set_unlimited conn;
  conn

let ftp_at ?config net ~src ~dst ~at =
  let conn = ftp ?config net ~src ~dst in
  Sim.at (Net.sim net) at (fun () -> Tcp.start conn);
  conn

type http = {
  net : Net.t;
  config : Tcp.config option;
  src : int;
  dst : int;
  session_rate : float;
  pages_per_session : int;
  pareto_shape : float;
  min_page_segments : int;
  mean_think : float;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable pages_completed : int;
  mutable sessions_started : int;
}

let http ?config ?(pages_per_session = 5) ?(pareto_shape = 1.3) ?(min_page_segments = 2)
    ?(mean_think = 1.0) net ~src ~dst ~session_rate =
  if session_rate <= 0. then invalid_arg "Workload.http: session_rate <= 0";
  {
    net;
    config;
    src;
    dst;
    session_rate;
    pages_per_session;
    pareto_shape;
    min_page_segments;
    mean_think;
    rng = Stats.Rng.split (Sim.rng (Net.sim net));
    running = false;
    pages_completed = 0;
    sessions_started = 0;
  }

let page_size t =
  let x =
    Stats.Sampler.pareto t.rng ~shape:t.pareto_shape
      ~scale:(float_of_int t.min_page_segments)
  in
  (* Cap pathological tail draws so one object cannot occupy the
     bottleneck for the whole run. *)
  Stdlib.min 500 (int_of_float (ceil x))

let rec fetch_page t ~remaining =
  if t.running && remaining > 0 then begin
    let conn = Tcp.create ?config:t.config t.net ~src:t.src ~dst:t.dst () in
    Tcp.supply conn (page_size t);
    Tcp.on_complete conn (fun () ->
        t.pages_completed <- t.pages_completed + 1;
        if remaining > 1 then begin
          let think = Stats.Sampler.exponential t.rng ~rate:(1. /. t.mean_think) in
          Sim.after (Net.sim t.net) think (fun () -> fetch_page t ~remaining:(remaining - 1))
        end);
    Tcp.start conn
  end

let rec session_arrivals t =
  if t.running then begin
    let gap = Stats.Sampler.exponential t.rng ~rate:t.session_rate in
    Sim.after (Net.sim t.net) gap (fun () ->
        if t.running then begin
          t.sessions_started <- t.sessions_started + 1;
          fetch_page t ~remaining:t.pages_per_session;
          session_arrivals t
        end)
  end

let http_start t =
  if not t.running then begin
    t.running <- true;
    session_arrivals t
  end

let http_pages_completed t = t.pages_completed
let http_sessions_started t = t.sessions_started

(** ns-2-style packet event tracing.

    The paper's ground truth comes from "traces logged in ns"; this
    module is the equivalent instrument for our simulator: it logs
    per-packet events on selected links in the classic ns-2 trace
    format and parses such files back, so experiments can be debugged
    and post-processed the way ns experiments were.

    Format (one event per line):

      {v
+ 12.3456 0 1 tcp 1040 ---- 7 0.0 3.0 41 205
      v}

    columns: event ([+] enqueue, [-] dequeue, [d] drop, [r] receive),
    time, from-node, to-node, packet type, size, flags (unused,
    [----]), flow id, source node, destination node, sequence number,
    packet id. *)

type event_kind = Enqueue | Dequeue | Drop | Receive

type event = {
  kind : event_kind;
  time : float;
  from_node : int;
  to_node : int;
  packet_type : string;
  size : int;
  flow : int;
  src : int;
  dst : int;
  seq : int;
  packet_id : int;
}

type t
(** A collector accumulating events in memory until {!save}. *)

val create : unit -> t

val attach : t -> Sim.t -> Link.t -> unit
(** Log this link's events: enqueue/dequeue are approximated by offer
    acceptance and delivery ([r] at the downstream node), drops
    exactly. *)

val events : t -> event array
(** Events recorded so far, in chronological order. *)

val count : t -> int

val save : t -> string -> unit
(** Write the ns-2-format trace file. *)

val load : string -> event array
(** Parse a file written by {!save} (or by ns-2, for the fields
    above). *)

val drops_per_flow : event array -> (int * int) list
(** (flow id, drop count) pairs, ascending by flow id — the kind of
    post-processing the paper's validation scripts did. *)

(** Discrete-event simulation engine: a clock and an event queue of
    closures.  Callbacks scheduled at the same instant fire in the
    order they were scheduled. *)

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds an engine whose {!rng} is seeded with
    [seed] (default 1). *)

val now : t -> float
(** Current simulation time in seconds. *)

val rng : t -> Stats.Rng.t
(** The engine's root random stream; components should {!Stats.Rng.split}
    their own substreams from it at construction time. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time f] schedules [f] at absolute [time].  Requires
    [time >= now t]. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t d f] schedules [f] at [now t +. d].  Requires [d >= 0]. *)

val run_until : t -> float -> unit
(** Execute events in order until the clock would pass the horizon;
    leaves the clock at the horizon.  Events scheduled exactly at the
    horizon are executed. *)

val run : t -> unit
(** Drain all events. *)

val pending : t -> int

val fresh_packet_id : t -> int
val fresh_flow_id : t -> int

(** A unidirectional link: a finite buffer (droptail or adaptive RED)
    in front of a FIFO server of rate [bandwidth], followed by a fixed
    propagation delay.

    The buffer capacity bounds the bytes {e waiting} for service; the
    packet in transmission has left the buffer.  The link's maximum
    queuing delay — the paper's [Q_k], "the time required to drain a
    full queue" — is therefore [capacity * 8 / bandwidth]. *)

type policy = Droptail | Red of Red.t

type t

val create :
  Sim.t ->
  id:int ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  delay:float ->
  capacity:int ->
  ?mtu:int ->
  policy:policy ->
  unit ->
  t
(** [bandwidth] in bits/s, [delay] (propagation) in seconds, [capacity]
    in bytes.  All must be positive.

    [mtu] (default 1040 bytes) sets the drop granularity: an arrival is
    dropped when the waiting room cannot hold one more [mtu]-sized
    packet.  This emulates ns's packet-counting droptail queues — a
    10-byte probe is dropped exactly when a full-size packet would be —
    while keeping byte-accurate drain times. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Install the callback invoked when a packet finishes propagation and
    arrives at the downstream node. *)

val set_on_drop : t -> (Packet.t -> unit) -> unit

val set_on_accept : t -> (Packet.t -> unit) -> unit
(** Called when an arrival is accepted into the buffer (or straight
    into service) — an ns-2 enqueue event. *)

val set_on_transmit : t -> (Packet.t -> unit) -> unit
(** Called when a packet begins transmission — an ns-2 dequeue
    event. *)

val add_deliver_observer : t -> (Packet.t -> unit) -> unit
(** Run an extra callback (after the forwarding one) when a packet
    finishes propagation — an ns-2 receive event.  Composes; does not
    replace the callback installed by {!set_deliver}. *)

val offer : t -> Packet.t -> unit
(** Present an arriving packet to the buffer at the current simulation
    time: it is dropped (droptail overflow or RED early drop) or
    accepted for eventual transmission. *)

(** {1 Introspection} *)

val id : t -> int
val src : t -> int
val dst : t -> int
val bandwidth : t -> float
val prop_delay : t -> float
val capacity : t -> int
val policy : t -> policy

val unfinished_work : t -> float
(** Seconds until a packet arriving now would begin transmission:
    residual service time of the packet on the wire plus the drain time
    of the waiting buffer.  This is the queuing delay a (tiny) probe
    arriving now experiences. *)

val queued_bytes : t -> int
val queue_length : t -> int
(** Packets waiting plus the one in service, the quantity RED
    averages. *)

val would_drop : t -> size:int -> float
(** Probability that a packet of [size] bytes offered now would be
    dropped: 0 or 1 for droptail, the current ramp probability for RED.
    Does not mutate any state. *)

val max_queuing_delay : t -> float
(** [capacity * 8 / bandwidth] — the paper's [Q_k]. *)

val transmission_time : t -> size:int -> float

(** {1 Counters} *)

val arrivals : t -> int
val drops : t -> int
val departures : t -> int
val busy_time : t -> float
(** Cumulated transmission time; divide by elapsed time for
    utilization. *)

val loss_rate : t -> float
(** [drops / arrivals]; 0 when idle. *)

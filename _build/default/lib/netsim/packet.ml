type kind = Udp | Tcp_data | Tcp_ack | Icmp_ttl_exceeded

type t = {
  id : int;
  flow : int;
  src : int;
  dst : int;
  size : int;
  kind : kind;
  seq : int;
  sent_at : float;
  ttl : int;
}

let make ~id ~flow ~src ~dst ~size ~kind ~seq ~sent_at ?(ttl = 64) () =
  if size <= 0 then invalid_arg "Packet.make: non-positive size";
  if ttl <= 0 then invalid_arg "Packet.make: non-positive ttl";
  { id; flow; src; dst; size; kind; seq; sent_at; ttl }

let kind_to_string = function
  | Udp -> "udp"
  | Tcp_data -> "tcp"
  | Tcp_ack -> "ack"
  | Icmp_ttl_exceeded -> "icmp-ttl"

let pp ppf p =
  Format.fprintf ppf "#%d %s flow=%d %d->%d seq=%d %dB" p.id (kind_to_string p.kind)
    p.flow p.src p.dst p.seq p.size

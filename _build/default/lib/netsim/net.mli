(** Topology, routing, and packet delivery: nodes connected by
    unidirectional {!Link}s, static minimum-hop next-hop routing, and a
    per-(node, flow) handler registry for delivering packets to
    transport agents. *)

type t

val create : Sim.t -> t
val sim : t -> Sim.t

val add_node : t -> string -> int
(** Register a node and return its id (dense, starting at 0). *)

val node_count : t -> int
val node_name : t -> int -> string

type queue_spec =
  | Droptail_q
  | Red_q of { min_th : float; max_th : float }
      (** thresholds in packets; the averaging time constant is derived
          from the link bandwidth assuming 1000-byte packets *)

val add_link :
  t ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  delay:float ->
  capacity:int ->
  ?queue:queue_spec ->
  unit ->
  Link.t
(** One-directional link.  [capacity] in bytes; default queue is
    droptail. *)

val add_duplex :
  t ->
  a:int ->
  b:int ->
  bandwidth:float ->
  delay:float ->
  capacity:int ->
  ?queue:queue_spec ->
  unit ->
  Link.t * Link.t
(** Two symmetric links (a→b, b→a). *)

val compute_routes : t -> unit
(** (Re)build the minimum-hop next-hop tables.  Must be called after
    the topology is complete and before any traffic flows. *)

val links : t -> Link.t list
val link_between : t -> src:int -> dst:int -> Link.t option

val path_links : t -> src:int -> dst:int -> Link.t list
(** The links a packet from [src] to [dst] traverses under the current
    routes.  Raises [Not_found] if unreachable or routes are stale. *)

val set_handler : t -> node:int -> flow:int -> (Packet.t -> unit) -> unit
(** Receive packets of [flow] addressed to [node].  The handler runs at
    packet arrival time. *)

val set_default_handler : t -> node:int -> (Packet.t -> unit) -> unit
(** Fallback sink for flows with no dedicated handler. *)

val inject : t -> Packet.t -> unit
(** Hand a freshly created packet to its source node for forwarding at
    the current simulation time. *)

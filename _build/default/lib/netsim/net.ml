type queue_spec = Droptail_q | Red_q of { min_th : float; max_th : float }

type t = {
  sim : Sim.t;
  mutable names : string array;
  mutable n_nodes : int;
  mutable links_rev : Link.t list;
  mutable n_links : int;
  (* adjacency: per node, outgoing links *)
  mutable out_links : Link.t list array;
  (* next_hop.(node).(dst) = outgoing link, or None *)
  mutable next_hop : Link.t option array array;
  mutable routes_fresh : bool;
  handlers : (int * int, Packet.t -> unit) Hashtbl.t;
  default_handlers : (int, Packet.t -> unit) Hashtbl.t;
}

let create sim =
  {
    sim;
    names = [||];
    n_nodes = 0;
    links_rev = [];
    n_links = 0;
    out_links = [||];
    next_hop = [||];
    routes_fresh = false;
    handlers = Hashtbl.create 64;
    default_handlers = Hashtbl.create 16;
  }

let sim t = t.sim

let add_node t name =
  let id = t.n_nodes in
  let cap = Array.length t.names in
  if id = cap then begin
    let ncap = Stdlib.max 8 (2 * cap) in
    let names = Array.make ncap "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names;
    let out = Array.make ncap [] in
    Array.blit t.out_links 0 out 0 cap;
    t.out_links <- out
  end;
  t.names.(id) <- name;
  t.n_nodes <- id + 1;
  t.routes_fresh <- false;
  id

let node_count t = t.n_nodes

let node_name t id =
  if id < 0 || id >= t.n_nodes then invalid_arg "Net.node_name: bad node id";
  t.names.(id)

let check_node t id label =
  if id < 0 || id >= t.n_nodes then invalid_arg ("Net.add_link: bad " ^ label ^ " node id")

(* Forward declaration cycle: links deliver to the net's forwarding
   function, which offers to links. *)
let rec deliver t (pkt : Packet.t) node =
  if pkt.Packet.dst = node then begin
    match Hashtbl.find_opt t.handlers (node, pkt.Packet.flow) with
    | Some h -> h pkt
    | None -> (
        match Hashtbl.find_opt t.default_handlers node with
        | Some h -> h pkt
        | None -> ())
  end
  else forward t pkt node

and forward t pkt node =
  if not t.routes_fresh then failwith "Net: routes are stale; call compute_routes";
  (* Routers (not the originating host) decrement the TTL; on expiry
     the packet is discarded and a small time-exceeded reply carrying
     the packet's flow and sequence number returns to the source —
     enough for traceroute/pathchar-style per-hop measurement. *)
  let pkt =
    if node = pkt.Packet.src then pkt else { pkt with Packet.ttl = pkt.Packet.ttl - 1 }
  in
  if pkt.Packet.ttl <= 0 then begin
    if node <> pkt.Packet.src then
      let reply =
        Packet.make ~id:(Sim.fresh_packet_id t.sim) ~flow:pkt.Packet.flow ~src:node
          ~dst:pkt.Packet.src ~size:56 ~kind:Packet.Icmp_ttl_exceeded ~seq:pkt.Packet.seq
          ~sent_at:(Sim.now t.sim) ()
      in
      deliver t reply node
  end
  else
    match t.next_hop.(node).(pkt.Packet.dst) with
    | Some link -> Link.offer link pkt
    | None ->
        failwith
          (Printf.sprintf "Net: no route from %s to %s" t.names.(node)
             t.names.(pkt.Packet.dst))

let add_link t ~src ~dst ~bandwidth ~delay ~capacity ?(queue = Droptail_q) () =
  check_node t src "src";
  check_node t dst "dst";
  let policy =
    match queue with
    | Droptail_q -> Link.Droptail
    | Red_q { min_th; max_th } ->
        let mean_pkt_time = 1000. *. 8. /. bandwidth in
        Link.Red (Red.create ~min_th ~max_th ~mean_pkt_time ())
  in
  let id = t.n_links in
  let link = Link.create t.sim ~id ~src ~dst ~bandwidth ~delay ~capacity ~policy () in
  Link.set_deliver link (fun pkt -> deliver t pkt dst);
  t.links_rev <- link :: t.links_rev;
  t.n_links <- id + 1;
  t.out_links.(src) <- link :: t.out_links.(src);
  t.routes_fresh <- false;
  link

let add_duplex t ~a ~b ~bandwidth ~delay ~capacity ?queue () =
  let ab = add_link t ~src:a ~dst:b ~bandwidth ~delay ~capacity ?queue () in
  let ba = add_link t ~src:b ~dst:a ~bandwidth ~delay ~capacity ?queue () in
  (ab, ba)

let compute_routes t =
  let n = t.n_nodes in
  t.next_hop <- Array.init n (fun _ -> Array.make n None);
  (* BFS from every source over outgoing links; first-hop recorded per
     destination.  O(V * (V + E)), fine for experiment-scale nets. *)
  for s = 0 to n - 1 do
    let dist = Array.make n max_int in
    let first : Link.t option array = Array.make n None in
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun link ->
          let v = Link.dst link in
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            first.(v) <- (if u = s then Some link else first.(u));
            Queue.add v q
          end)
        t.out_links.(u)
    done;
    for d = 0 to n - 1 do
      if d <> s then t.next_hop.(s).(d) <- first.(d)
    done
  done;
  t.routes_fresh <- true

let links t = List.rev t.links_rev

let link_between t ~src ~dst =
  List.find_opt (fun l -> Link.dst l = dst) t.out_links.(src)

let path_links t ~src ~dst =
  if not t.routes_fresh then failwith "Net.path_links: routes are stale";
  let rec walk node acc =
    if node = dst then List.rev acc
    else
      match t.next_hop.(node).(dst) with
      | None -> raise Not_found
      | Some link -> walk (Link.dst link) (link :: acc)
  in
  walk src []

let set_handler t ~node ~flow h = Hashtbl.replace t.handlers (node, flow) h
let set_default_handler t ~node h = Hashtbl.replace t.default_handlers node h
let inject t pkt = deliver t pkt pkt.Packet.src

(** Periodic sampling of a link's queue state — the simulator-side
    instrument behind utilization/occupancy reports (what the paper
    reads out of ns traces). *)

type t

val create : Sim.t -> Link.t -> interval:float -> t
(** Sample the link every [interval] seconds once started. *)

val start : t -> at:float -> until:float -> unit

val samples : t -> (float * float) array
(** (time, unfinished work in seconds) samples, in time order. *)

val mean_backlog : t -> float
(** Mean sampled unfinished work, seconds. *)

val max_backlog : t -> float

val fraction_above : t -> threshold:float -> float
(** Fraction of samples with unfinished work at least [threshold]
    seconds — e.g. the fraction of time the queue is near-full. *)

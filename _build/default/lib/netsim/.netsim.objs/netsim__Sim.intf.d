lib/netsim/sim.mli: Stats

lib/netsim/qmonitor.mli: Link Sim

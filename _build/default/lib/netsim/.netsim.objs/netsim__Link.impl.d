lib/netsim/link.ml: Float Packet Queue Red Sim Stats Stdlib

lib/netsim/red.ml: Float Stats

lib/netsim/tracefile.mli: Link Sim

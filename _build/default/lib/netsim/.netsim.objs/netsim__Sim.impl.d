lib/netsim/sim.ml: Eventq Float Printf Stats

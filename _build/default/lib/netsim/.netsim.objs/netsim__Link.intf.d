lib/netsim/link.mli: Packet Red Sim

lib/netsim/eventq.mli:

lib/netsim/red.mli: Stats

lib/netsim/net.ml: Array Hashtbl Link List Packet Printf Queue Red Sim Stdlib

lib/netsim/qmonitor.ml: Array Float Link List Sim

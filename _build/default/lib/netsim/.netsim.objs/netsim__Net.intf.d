lib/netsim/net.mli: Link Packet Sim

lib/netsim/tracefile.ml: Array Fun Hashtbl Link List Option Packet Printf Sim String

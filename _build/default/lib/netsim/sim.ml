type t = {
  mutable now : float;
  events : (unit -> unit) Eventq.t;
  rng : Stats.Rng.t;
  mutable next_packet_id : int;
  mutable next_flow_id : int;
}

let create ?(seed = 1) () =
  {
    now = 0.;
    events = Eventq.create ();
    rng = Stats.Rng.create seed;
    next_packet_id = 0;
    next_flow_id = 0;
  }

let now t = t.now
let rng t = t.rng

let at t time f =
  if time < t.now -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%.9f < %.9f)" time t.now);
  Eventq.push t.events ~time:(Float.max time t.now) f

let after t d f =
  if d < 0. then invalid_arg "Sim.after: negative delay";
  at t (t.now +. d) f

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Eventq.peek_time t.events with
    | Some time when time <= horizon -> (
        match Eventq.pop t.events with
        | Some (time, f) ->
            t.now <- time;
            f ()
        | None -> continue := false)
    | Some _ | None -> continue := false
  done;
  t.now <- Float.max t.now horizon

let run t =
  let continue = ref true in
  while !continue do
    match Eventq.pop t.events with
    | Some (time, f) ->
        t.now <- time;
        f ()
    | None -> continue := false
  done

let pending t = Eventq.length t.events

let fresh_packet_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let fresh_flow_id t =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

type t = {
  sim : Sim.t;
  link : Link.t;
  interval : float;
  mutable samples_rev : (float * float) list;
}

let create sim link ~interval =
  if interval <= 0. then invalid_arg "Qmonitor.create: interval <= 0";
  { sim; link; interval; samples_rev = [] }

let start t ~at ~until =
  if until <= at then invalid_arg "Qmonitor.start: empty window";
  let n = int_of_float (ceil ((until -. at) /. t.interval)) in
  for i = 0 to n - 1 do
    let time = at +. (float_of_int i *. t.interval) in
    if time < until then
      Sim.at t.sim time (fun () ->
          t.samples_rev <- (time, Link.unfinished_work t.link) :: t.samples_rev)
  done

let samples t = Array.of_list (List.rev t.samples_rev)

let fold f init t = List.fold_left f init t.samples_rev

let mean_backlog t =
  let n = List.length t.samples_rev in
  if n = 0 then 0. else fold (fun acc (_, w) -> acc +. w) 0. t /. float_of_int n

let max_backlog t = fold (fun acc (_, w) -> Float.max acc w) 0. t

let fraction_above t ~threshold =
  let n = List.length t.samples_rev in
  if n = 0 then 0.
  else
    float_of_int (fold (fun acc (_, w) -> if w >= threshold then acc + 1 else acc) 0 t)
    /. float_of_int n

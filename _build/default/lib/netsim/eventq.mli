(** Pending-event set of the discrete-event engine: a binary min-heap
    keyed by ([time], [seq]) where [seq] is an insertion counter, so
    simultaneous events fire in insertion order and runs are
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at absolute time [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any. *)

val peek_time : 'a t -> float option

(** Adaptive RED active queue management (Floyd, Gummadi, Shenker
    2001), in gentle mode, operating on queue length in packets — the
    configuration used in Section VI-A5 of the paper.

    The drop probability ramps linearly from 0 to [max_p] as the EWMA
    average queue size grows from [min_th] to [max_th], and (gentle
    mode) from [max_p] to 1 between [max_th] and [2*max_th].  [max_p]
    itself adapts by AIMD every [interval] seconds to keep the average
    queue between the 40% and 60% points of [\[min_th, max_th\]]. *)

type t

val create :
  ?weight:float ->
  ?interval:float ->
  ?initial_max_p:float ->
  min_th:float ->
  max_th:float ->
  mean_pkt_time:float ->
  unit ->
  t
(** [weight] is the EWMA gain (default 0.002); [interval] the [max_p]
    adaptation period (default 0.5 s); [mean_pkt_time] the typical
    packet transmission time, used to age the average across idle
    periods.  Requires [0 < min_th < max_th]. *)

val decide : t -> rng:Stats.Rng.t -> qlen:int -> now:float -> bool
(** [decide t ~rng ~qlen ~now] updates the average with the current
    instantaneous queue length [qlen] (packets) and returns [true] when
    the arriving packet must be dropped.  Mutates the AQM state. *)

val drop_probability : t -> qlen:int -> now:float -> float
(** Probability that {!decide} would drop right now, {e without}
    mutating any state (the between-drops count correction is not
    applied).  Used by transparent probes. *)

val note_idle_start : t -> now:float -> unit
(** Record that the queue just went empty, for idle-time aging. *)

val avg : t -> float
(** Current average queue estimate (packets). *)

val max_p : t -> float

type t = {
  weight : float;
  interval : float;
  min_th : float;
  max_th : float;
  mean_pkt_time : float;
  mutable max_p : float;
  mutable avg : float;
  mutable count : int;  (* packets since last drop while in the ramp *)
  mutable idle_since : float option;
  mutable next_adapt : float;
}

let create ?(weight = 0.002) ?(interval = 0.5) ?(initial_max_p = 0.1) ~min_th ~max_th
    ~mean_pkt_time () =
  if min_th <= 0. || max_th <= min_th then invalid_arg "Red.create: need 0 < min_th < max_th";
  {
    weight;
    interval;
    min_th;
    max_th;
    mean_pkt_time;
    max_p = initial_max_p;
    avg = 0.;
    count = -1;
    idle_since = None;
    next_adapt = interval;
  }

let note_idle_start t ~now = t.idle_since <- Some now

(* AIMD adaptation of max_p (Adaptive RED): keep avg inside the middle
   fifth of [min_th, max_th]. *)
let adapt t ~now =
  if now >= t.next_adapt then begin
    let range = t.max_th -. t.min_th in
    let target_lo = t.min_th +. (0.4 *. range) and target_hi = t.min_th +. (0.6 *. range) in
    if t.avg > target_hi && t.max_p <= 0.5 then
      t.max_p <- Float.min 0.5 (t.max_p +. Float.min 0.01 (t.max_p /. 4.))
    else if t.avg < target_lo && t.max_p >= 0.01 then t.max_p <- Float.max 0.01 (t.max_p *. 0.9);
    t.next_adapt <- now +. t.interval
  end

let update_avg t ~qlen ~now =
  (match t.idle_since with
  | Some since when qlen = 0 ->
      (* Age the average as if (idle / mean_pkt_time) empty samples had
         been observed. *)
      let m = (now -. since) /. t.mean_pkt_time in
      t.avg <- t.avg *. ((1. -. t.weight) ** Float.max 0. m);
      t.idle_since <- None
  | Some _ -> t.idle_since <- None
  | None -> ());
  t.avg <- t.avg +. (t.weight *. (float_of_int qlen -. t.avg))

let base_probability t =
  if t.avg < t.min_th then 0.
  else if t.avg < t.max_th then t.max_p *. (t.avg -. t.min_th) /. (t.max_th -. t.min_th)
  else if t.avg < 2. *. t.max_th then
    (* Gentle mode ramp from max_p to 1. *)
    t.max_p +. ((1. -. t.max_p) *. (t.avg -. t.max_th) /. t.max_th)
  else 1.

let decide t ~rng ~qlen ~now =
  update_avg t ~qlen ~now;
  adapt t ~now;
  if t.avg < t.min_th then begin
    t.count <- -1;
    false
  end
  else begin
    t.count <- t.count + 1;
    let pb = base_probability t in
    if pb >= 1. then begin
      t.count <- 0;
      true
    end
    else
      (* Uniformize inter-drop spacing (Floyd/Jacobson 1993). *)
      let denom = 1. -. (float_of_int t.count *. pb) in
      let pa = if denom <= 0. then 1. else Float.min 1. (pb /. denom) in
      if Stats.Rng.float rng < pa then begin
        t.count <- 0;
        true
      end
      else false
  end

let drop_probability t ~qlen ~now =
  ignore qlen;
  ignore now;
  base_probability t

let avg t = t.avg
let max_p t = t.max_p

type policy = Droptail | Red of Red.t

type t = {
  sim : Sim.t;
  id : int;
  src : int;
  dst : int;
  bandwidth : float;
  prop_delay : float;
  capacity : int;
  mtu : int;
  policy : policy;
  rng : Stats.Rng.t;
  waiting : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable service_end : float;  (* departure time of the in-service packet *)
  mutable deliver : Packet.t -> unit;
  mutable on_drop : Packet.t -> unit;
  mutable on_accept : Packet.t -> unit;
  mutable on_transmit : Packet.t -> unit;
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable busy_time : float;
}

let create sim ~id ~src ~dst ~bandwidth ~delay ~capacity ?(mtu = 1040) ~policy () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth <= 0";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  if capacity <= 0 then invalid_arg "Link.create: capacity <= 0";
  if mtu <= 0 then invalid_arg "Link.create: mtu <= 0";
  {
    sim;
    id;
    src;
    dst;
    bandwidth;
    prop_delay = delay;
    capacity;
    mtu;
    policy;
    rng = Stats.Rng.split (Sim.rng sim);
    waiting = Queue.create ();
    queued_bytes = 0;
    busy = false;
    service_end = 0.;
    deliver = (fun _ -> ());
    on_drop = (fun _ -> ());
    on_accept = (fun _ -> ());
    on_transmit = (fun _ -> ());
    arrivals = 0;
    drops = 0;
    departures = 0;
    busy_time = 0.;
  }

let set_deliver t f = t.deliver <- f
let set_on_drop t f = t.on_drop <- f
let set_on_accept t f = t.on_accept <- f
let set_on_transmit t f = t.on_transmit <- f

let add_deliver_observer t f =
  let previous = t.deliver in
  t.deliver <-
    (fun pkt ->
      previous pkt;
      f pkt)

let transmission_time t ~size = float_of_int (size * 8) /. t.bandwidth

let queue_length t = Queue.length t.waiting + if t.busy then 1 else 0

let rec start_service t pkt =
  t.busy <- true;
  t.on_transmit pkt;
  let tx = transmission_time t ~size:pkt.Packet.size in
  t.busy_time <- t.busy_time +. tx;
  t.service_end <- Sim.now t.sim +. tx;
  Sim.after t.sim tx (fun () -> finish_service t pkt)

and finish_service t pkt =
  t.departures <- t.departures + 1;
  Sim.after t.sim t.prop_delay (fun () -> t.deliver pkt);
  match Queue.take_opt t.waiting with
  | Some next ->
      t.queued_bytes <- t.queued_bytes - next.Packet.size;
      start_service t next
  | None ->
      t.busy <- false;
      (match t.policy with
      | Red red -> Red.note_idle_start red ~now:(Sim.now t.sim)
      | Droptail -> ())

let accept t pkt =
  t.on_accept pkt;
  if t.busy then begin
    Queue.add pkt t.waiting;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size
  end
  else start_service t pkt

(* The buffer is "full" for an arrival of [size] bytes when it cannot
   hold one more packet of [max size mtu] bytes — packet-slot semantics
   with byte-accurate drain times (see the interface). *)
let overflow t ~size = t.queued_bytes + Stdlib.max size t.mtu > t.capacity

let offer t pkt =
  t.arrivals <- t.arrivals + 1;
  let drop =
    match t.policy with
    | Droptail -> overflow t ~size:pkt.Packet.size
    | Red red ->
        (* RED may early-drop, but a physically full buffer always
           drops. *)
        overflow t ~size:pkt.Packet.size
        || Red.decide red ~rng:t.rng ~qlen:(queue_length t) ~now:(Sim.now t.sim)
  in
  if drop then begin
    t.drops <- t.drops + 1;
    t.on_drop pkt
  end
  else accept t pkt

let id t = t.id
let src t = t.src
let dst t = t.dst
let bandwidth t = t.bandwidth
let prop_delay t = t.prop_delay
let capacity t = t.capacity
let policy t = t.policy
let queued_bytes t = t.queued_bytes

let unfinished_work t =
  let residual = if t.busy then Float.max 0. (t.service_end -. Sim.now t.sim) else 0. in
  (float_of_int (t.queued_bytes * 8) /. t.bandwidth) +. residual

let max_queuing_delay t = float_of_int (t.capacity * 8) /. t.bandwidth

let would_drop t ~size =
  match t.policy with
  | Droptail -> if overflow t ~size then 1. else 0.
  | Red red ->
      if overflow t ~size then 1.
      else Red.drop_probability red ~qlen:(queue_length t) ~now:(Sim.now t.sim)

let arrivals t = t.arrivals
let drops t = t.drops
let departures t = t.departures
let busy_time t = t.busy_time
let loss_rate t = if t.arrivals = 0 then 0. else float_of_int t.drops /. float_of_int t.arrivals

type t = {
  n : int;
  m : int;
  pi : float array;
  a : float array array;
  c : float array;
}

type observation = int option
type fit_stats = { iterations : int; log_likelihood : float; converged : bool }

let states t = t.n * t.m

let state_of t ~hidden ~symbol =
  if hidden < 0 || hidden >= t.n || symbol < 0 || symbol >= t.m then
    invalid_arg "Mmhd.state_of: out of range";
  (hidden * t.m) + symbol

let symbol_of t s = s mod t.m
let hidden_of t s = s / t.m

let clamp_prob p = Float.max 1e-6 (Float.min (1. -. 1e-6) p)

let init_random rng ~n ~m ~loss_fraction =
  if n <= 0 || m <= 0 then invalid_arg "Mmhd.init_random: n and m must be positive";
  let s = n * m in
  let jitter () = 0.8 +. (0.4 *. Stats.Rng.float rng) in
  {
    n;
    m;
    pi = Stats.Sampler.dirichlet_like rng s;
    a = Stats.Matrix.random_stochastic rng s s;
    c = Array.init m (fun _ -> clamp_prob (loss_fraction *. jitter ()));
  }

(* Nearest-surviving-neighbour attribution of losses to symbols: the
   empirical analogue of the posterior the EM will compute.  Seeds the
   initial loss probabilities [c] so that EM starts near solutions that
   explain losses with the symbols actually observed around them,
   instead of drifting to a degenerate optimum where a rarely-observed
   symbol absorbs all losses. *)
let neighbor_attribution ~m obs =
  let tt = Array.length obs in
  let seen = Array.make m 1. and lost = Array.make m 0.5 in
  let nearest t0 =
    let rec scan d =
      if d > tt then None
      else
        let back = t0 - d and fwd = t0 + d in
        let pick t = if t >= 0 && t < tt then obs.(t) else None in
        match pick back with
        | Some j -> Some j
        | None -> ( match pick fwd with Some j -> Some j | None -> scan (d + 1))
    in
    scan 1
  in
  Array.iteri
    (fun t o ->
      match o with
      | Some j -> seen.(j) <- seen.(j) +. 1.
      | None -> (
          match nearest t with
          | Some j -> lost.(j) <- lost.(j) +. 1.
          | None -> ()))
    obs;
  (seen, lost)

(* Symbol bigram frequencies over the observed (non-loss) subsequence,
   Laplace-smoothed; used to seed the transition structure. *)
let observed_bigrams ~m obs =
  let big = Array.init m (fun _ -> Array.make m 0.2) in
  let prev = ref None in
  Array.iter
    (fun o ->
      (match (!prev, o) with
      | Some i, Some j -> big.(i).(j) <- big.(i).(j) +. 1.
      | _ -> ());
      prev := o)
    obs;
  Stats.Matrix.row_normalize big;
  big

let init_informed rng ~n ~m obs =
  let seen, lost = neighbor_attribution ~m obs in
  let big = observed_bigrams ~m obs in
  let s = n * m in
  let jitter () = 0.85 +. (0.3 *. Stats.Rng.float rng) in
  let c = Array.init m (fun j -> clamp_prob (lost.(j) /. (seen.(j) +. lost.(j)))) in
  let total_seen = Array.fold_left ( +. ) 0. seen in
  let pi =
    Array.init s (fun st -> seen.(st mod m) /. total_seen /. float_of_int n *. jitter ())
  in
  let pi_total = Array.fold_left ( +. ) 0. pi in
  let pi = Array.map (fun p -> p /. pi_total) pi in
  let a =
    Array.init s (fun st ->
        let y = st mod m in
        let row =
          Array.init s (fun st' -> big.(y).(st' mod m) /. float_of_int n *. jitter ())
        in
        row)
  in
  Stats.Matrix.row_normalize a;
  { n; m; pi; a; c }

let validate t =
  let s = states t in
  let stochastic_vec v = abs_float (Array.fold_left ( +. ) 0. v -. 1.) <= 1e-6 in
  let is_prob_vector v = Array.for_all (fun p -> p >= 0. && p <= 1.) v in
  if Array.length t.pi <> s || not (stochastic_vec t.pi) || not (is_prob_vector t.pi)
  then invalid_arg "Mmhd.validate: pi is not a distribution over n*m states";
  if Stats.Matrix.dims t.a <> (s, s) || not (Stats.Matrix.is_stochastic t.a) then
    invalid_arg "Mmhd.validate: a is not stochastic over n*m states";
  if Array.length t.c <> t.m || not (is_prob_vector t.c) then
    invalid_arg "Mmhd.validate: c is not a vector of m probabilities"

(* Emission probability of observation [o] in state [s] (symbol y):
     e(s, Some j) = (1 - c_j) if y = j, else 0
     e(s, None)   = c_y                                                *)
let emission t s = function
  | Some j -> if symbol_of t s = j then 1. -. t.c.(j) else 0.
  | None -> t.c.(symbol_of t s)

(* States compatible with an observation: n states for an observed
   symbol, all n*m for a loss.  Iterating only over these makes the
   forward-backward cost T*n*S on mostly-observed traces instead of
   T*S^2. *)
let active t = function
  | Some j -> Array.init t.n (fun x -> (x * t.m) + j)
  | None -> Array.init (states t) (fun s -> s)

let forward_backward t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Mmhd: empty observation sequence";
  let s_all = states t in
  let alpha = Array.make_matrix tt s_all 0. in
  let beta = Array.make_matrix tt s_all 0. in
  let scale = Array.make tt 0. in
  let act = Array.map (active t) obs in
  (* Forward. *)
  let s0 = ref 0. in
  Array.iter
    (fun s ->
      let v = t.pi.(s) *. emission t s obs.(0) in
      alpha.(0).(s) <- v;
      s0 := !s0 +. v)
    act.(0);
  if !s0 <= 0. then failwith "Mmhd: observation has zero likelihood under the model";
  scale.(0) <- !s0;
  Array.iter (fun s -> alpha.(0).(s) <- alpha.(0).(s) /. !s0) act.(0);
  for time = 1 to tt - 1 do
    let sc = ref 0. in
    Array.iter
      (fun s' ->
        let acc = ref 0. in
        Array.iter (fun s -> acc := !acc +. (alpha.(time - 1).(s) *. t.a.(s).(s'))) act.(time - 1);
        let v = !acc *. emission t s' obs.(time) in
        alpha.(time).(s') <- v;
        sc := !sc +. v)
      act.(time);
    if !sc <= 0. then failwith "Mmhd: observation has zero likelihood under the model";
    scale.(time) <- !sc;
    Array.iter (fun s -> alpha.(time).(s) <- alpha.(time).(s) /. !sc) act.(time)
  done;
  (* Backward. *)
  Array.iter (fun s -> beta.(tt - 1).(s) <- 1.) act.(tt - 1);
  for time = tt - 2 downto 0 do
    Array.iter
      (fun s ->
        let acc = ref 0. in
        Array.iter
          (fun s' ->
            acc := !acc +. (t.a.(s).(s') *. emission t s' obs.(time + 1) *. beta.(time + 1).(s')))
          act.(time + 1);
        beta.(time).(s) <- !acc /. scale.(time + 1))
      act.(time)
  done;
  (alpha, beta, scale, act)

let viterbi t obs =
  let tt = Array.length obs in
  if tt = 0 then invalid_arg "Mmhd.viterbi: empty observation sequence";
  let s_all = states t in
  let log_safe x = if x <= 0. then neg_infinity else log x in
  let act = Array.map (active t) obs in
  let delta = Array.make_matrix tt s_all neg_infinity in
  let back = Array.make_matrix tt s_all 0 in
  Array.iter
    (fun s -> delta.(0).(s) <- log_safe t.pi.(s) +. log_safe (emission t s obs.(0)))
    act.(0);
  for time = 1 to tt - 1 do
    Array.iter
      (fun s' ->
        let e = log_safe (emission t s' obs.(time)) in
        Array.iter
          (fun s ->
            let cand = delta.(time - 1).(s) +. log_safe t.a.(s).(s') +. e in
            if cand > delta.(time).(s') then begin
              delta.(time).(s') <- cand;
              back.(time).(s') <- s
            end)
          act.(time - 1))
      act.(time)
  done;
  let best = ref act.(tt - 1).(0) in
  Array.iter (fun s -> if delta.(tt - 1).(s) > delta.(tt - 1).(!best) then best := s) act.(tt - 1);
  let path = Array.make tt 0 in
  path.(tt - 1) <- !best;
  for time = tt - 2 downto 0 do
    path.(time) <- back.(time + 1).(path.(time + 1))
  done;
  (path, delta.(tt - 1).(!best))

let log_likelihood t obs =
  let _, _, scale, _ = forward_backward t obs in
  Array.fold_left (fun acc s -> acc +. log s) 0. scale

let state_posteriors t obs =
  let alpha, beta, _, _ = forward_backward t obs in
  Array.mapi (fun time a_row -> Array.mapi (fun s a_s -> a_s *. beta.(time).(s)) a_row) alpha

let em_step t obs =
  let tt = Array.length obs in
  let s_all = states t in
  let alpha, beta, scale, act = forward_backward t obs in
  let gamma time s = alpha.(time).(s) *. beta.(time).(s) in
  (* Transition statistics over active pairs. *)
  let xi_sum = Stats.Matrix.make s_all s_all 0. in
  let gamma_sum = Array.make s_all 0. in
  for time = 0 to tt - 2 do
    Array.iter
      (fun s ->
        gamma_sum.(s) <- gamma_sum.(s) +. gamma time s;
        let a_t_s = alpha.(time).(s) in
        if a_t_s > 0. then
          Array.iter
            (fun s' ->
              xi_sum.(s).(s') <-
                xi_sum.(s).(s')
                +. a_t_s *. t.a.(s).(s')
                   *. emission t s' obs.(time + 1)
                   *. beta.(time + 1).(s')
                   /. scale.(time + 1))
            act.(time + 1))
      act.(time)
  done;
  (* gamma 0 sums to 1 only up to floating-point rounding; renormalize
     so the result always validates. *)
  let pi' = Array.init s_all (fun s -> Float.max 0. (gamma 0 s)) in
  let pi_sum = Array.fold_left ( +. ) 0. pi' in
  let pi' = Array.map (fun p -> p /. pi_sum) pi' in
  let a' =
    Array.init s_all (fun s ->
        Array.init s_all (fun s' ->
            if gamma_sum.(s) <= 0. then t.a.(s).(s') else xi_sum.(s).(s') /. gamma_sum.(s)))
  in
  Stats.Matrix.row_normalize a';
  (* Loss probabilities: expected losses with symbol y over expected
     visits to symbol y. *)
  let lost = Array.make t.m 0. and seen = Array.make t.m 0. in
  for time = 0 to tt - 1 do
    Array.iter
      (fun s ->
        let g = gamma time s in
        let y = symbol_of t s in
        seen.(y) <- seen.(y) +. g;
        if obs.(time) = None then lost.(y) <- lost.(y) +. g)
      act.(time)
  done;
  let c' = Array.init t.m (fun y -> if seen.(y) <= 0. then t.c.(y) else lost.(y) /. seen.(y)) in
  { t with pi = pi'; a = a'; c = c' }

let param_change old_t new_t =
  let d1 = Stats.Matrix.max_abs_diff_vec old_t.pi new_t.pi in
  let d2 = Stats.Matrix.max_abs_diff old_t.a new_t.a in
  let d3 = Stats.Matrix.max_abs_diff_vec old_t.c new_t.c in
  Float.max d1 (Float.max d2 d3)

let fit_from ?(eps = 1e-3) ?(max_iter = 300) t0 obs =
  let rec iterate t iter =
    let t' = em_step t obs in
    let change = param_change t t' in
    if change <= eps || iter + 1 >= max_iter then
      ( t',
        {
          iterations = iter + 1;
          log_likelihood = log_likelihood t' obs;
          converged = change <= eps;
        } )
    else iterate t' (iter + 1)
  in
  iterate t0 0

let fit ?eps ?max_iter ?(restarts = 2) ~rng ~n ~m obs =
  if restarts <= 0 then invalid_arg "Mmhd.fit: restarts must be positive";
  (* Every starting point is the data-driven informed initialization
     with independent jitter, and the best converged attempt wins.
     Purely random initializations are deliberately not raced by
     likelihood: the model family admits degenerate optima in which a
     rarely-observed symbol absorbs all the losses (its loss
     probability is driven toward 1 at negligible cost), and those
     optima can dominate the likelihood while being statistically
     meaningless.  Informed starts are anchored by the neighbour
     attribution, so comparing them by likelihood is safe. *)
  let attempt () = fit_from ?eps ?max_iter (init_informed rng ~n ~m obs) obs in
  let best = ref (attempt ()) in
  for _ = 2 to restarts do
    let cand = attempt () in
    let better =
      ((snd cand).converged && not (snd !best).converged)
      || (snd cand).converged = (snd !best).converged
         && (snd cand).log_likelihood > (snd !best).log_likelihood
    in
    if better then best := cand
  done;
  !best

let virtual_delay_pmf t obs =
  let alpha, beta, _, _ = forward_backward t obs in
  let acc = Array.make t.m 0. in
  let losses = ref 0 in
  Array.iteri
    (fun time o ->
      match o with
      | Some _ -> ()
      | None ->
          incr losses;
          for s = 0 to states t - 1 do
            let g = alpha.(time).(s) *. beta.(time).(s) in
            acc.(symbol_of t s) <- acc.(symbol_of t s) +. g
          done)
    obs;
  if !losses = 0 then invalid_arg "Mmhd.virtual_delay_pmf: no loss in the sequence";
  Stats.Histogram.normalize acc

let simulate rng t ~len =
  if len <= 0 then invalid_arg "Mmhd.simulate: len <= 0";
  validate t;
  let path = Array.make len 0 in
  let obs = Array.make len None in
  let state = ref (Stats.Sampler.categorical rng t.pi) in
  for time = 0 to len - 1 do
    path.(time) <- !state;
    let y = symbol_of t !state in
    obs.(time) <- (if Stats.Sampler.bernoulli rng ~p:t.c.(y) then None else Some y);
    state := Stats.Sampler.categorical rng t.a.(!state)
  done;
  (obs, path)

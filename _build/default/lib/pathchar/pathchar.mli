(** A pathchar-style per-hop capacity estimator (Jacobson 1997 /
    Downey 1999) — the tool the paper uses (as "pchar") to
    cross-validate its Internet identifications: "results from pchar
    indicate that one link has much lower bandwidth than others, which
    is consistent with our identification" (Section VI-B).

    Method: for each hop [h], send probes of several sizes with
    [ttl = h]; the router at hop [h] discards each probe and returns a
    small time-exceeded reply.  The {e minimum} round-trip time over
    many probes of size [s] is (up to the size-independent return
    path)

      [min_rtt(h, s) = sum_{i<=h} (s * 8 / C_i + d_i) + const]

    so a least-squares line through the per-size minima has slope
    [sum_{i<=h} 8 / C_i].  Differencing consecutive hops' slopes gives
    each link's capacity [C_h]; differencing intercepts gives its
    latency. *)

type hop = {
  index : int;  (** 1-based hop number *)
  replies : int;  (** time-exceeded replies received *)
  slope : float option;  (** fitted cumulative seconds/byte, if enough data *)
  capacity : float option;  (** estimated link bandwidth, bits/s *)
  latency : float option;  (** estimated one-way fixed delay, seconds *)
}

type result = {
  hops : hop array;
  narrow_hop : int option;
      (** 1-based hop with the smallest estimated capacity — the
          "narrow link" of the path *)
}

val run :
  ?sizes:int list ->
  ?probes_per_size:int ->
  ?interval:float ->
  Netsim.Net.t ->
  src:int ->
  hops:int ->
  dst:int ->
  k:(result -> unit) ->
  unit
(** [run net ~src ~hops ~dst ~k] probes hops [1..hops] of the route
    from [src] toward [dst] and calls [k] with the estimates once all
    probes have been answered or timed out.  Probes start at the
    current simulation time, spaced [interval] seconds apart (default
    30 ms, wide enough that probes do not queue behind each other on
    slow links), cycling through [sizes] (default 200..1400 step 300 bytes)
    with [probes_per_size] repetitions (default 16).  Estimates are
    [None] for hops with too few replies or non-increasing slopes
    (pathchar's own failure mode on noisy paths). *)

val fit_min_line : (int * float) list -> (float * float) option
(** Least-squares line through (size, min-RTT) points:
    [(slope, intercept)]; [None] with fewer than two points.  Exposed
    for tests. *)

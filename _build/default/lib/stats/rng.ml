type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from SplitMix64: variant of MurmurHash3's 64-bit mix with
   David Stafford's "Mix13" constants. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let float t =
  (* Use the top 53 bits for a uniform dyadic rational in [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the high bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub (Int64.add (Int64.sub bits v) n64) 1L < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

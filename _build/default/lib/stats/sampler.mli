(** Random-variate samplers used by the traffic generators and model
    initialization.  Every sampler takes the {!Rng.t} to draw from as
    its first argument. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)].  Requires [lo <= hi]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1 /. rate]).  Requires
    [rate > 0]. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto (type I) with shape [alpha] and minimum value [scale]:
    [P(X > x) = (scale /. x) ** shape] for [x >= scale].  Used for
    heavy-tailed HTTP object sizes.  Requires both positive. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via the Box-Muller transform. *)

val bernoulli : Rng.t -> p:float -> bool
(** [true] with probability [p]. *)

val categorical : Rng.t -> float array -> int
(** [categorical rng w] draws an index proportionally to the
    non-negative weights [w].  Requires a positive total weight. *)

val dirichlet_like : Rng.t -> int -> float array
(** [dirichlet_like rng n] returns a random stochastic vector of length
    [n] (normalized i.i.d. uniforms, bounded away from zero).  Used to
    randomize EM starting points. *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

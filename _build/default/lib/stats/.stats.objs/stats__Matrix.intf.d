lib/stats/matrix.mli: Rng

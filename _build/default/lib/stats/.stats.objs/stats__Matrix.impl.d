lib/stats/matrix.ml: Array Rng

lib/stats/sampler.ml: Array Float Rng

lib/stats/histogram.mli:

lib/stats/rng.mli:

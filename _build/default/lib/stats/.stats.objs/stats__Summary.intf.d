lib/stats/summary.mli:

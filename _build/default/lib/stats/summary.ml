type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let mean_of xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Summary.quantile: q out of [0,1]";
  let s = Array.copy xs in
  Array.sort compare s;
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.of_int (int_of_float pos)) in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then s.(n - 1) else s.(i) +. (frac *. (s.(i + 1) -. s.(i)))

let median xs = quantile xs 0.5

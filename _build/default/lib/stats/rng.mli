(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that
    every simulation and every EM initialization is reproducible from a
    seed.  The generator is SplitMix64 (Steele, Lea, Flood 2014): a
    64-bit state advanced by a Weyl increment and finalized by a strong
    mixing function.  It is fast, passes BigCrush, and — crucially for
    simulations — supports cheap creation of statistically independent
    substreams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of
    the remainder of [t]'s stream.  [t] is advanced. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)], 53-bit resolution. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n-1\]].  Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

(** Descriptive statistics over float samples. *)

type t
(** A running (streaming) summary: count, mean, variance, min, max.
    Constant memory; uses Welford's update. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val mean_of : float array -> float
val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]]: linear-interpolation quantile
    of a copy of [xs] (the input is not modified).  Requires a
    non-empty array. *)

val median : float array -> float

let uniform rng ~lo ~hi =
  if lo > hi then invalid_arg "Sampler.uniform: lo > hi";
  lo +. ((hi -. lo) *. Rng.float rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Sampler.exponential: rate <= 0";
  (* 1 - u avoids log 0 since Rng.float is in [0,1). *)
  -.log (1. -. Rng.float rng) /. rate

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Sampler.pareto: non-positive parameter";
  scale /. ((1. -. Rng.float rng) ** (1. /. shape))

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.float rng and u2 = Rng.float rng in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))

let bernoulli rng ~p = Rng.float rng < p

let categorical rng w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Sampler.categorical: total weight <= 0";
  let x = Rng.float rng *. total in
  let n = Array.length w in
  let rec walk i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else walk (i + 1) acc
  in
  walk 0 0.

let dirichlet_like rng n =
  if n <= 0 then invalid_arg "Sampler.dirichlet_like: n <= 0";
  let v = Array.init n (fun _ -> 0.05 +. Rng.float rng) in
  let total = Array.fold_left ( +. ) 0. v in
  Array.map (fun x -> x /. total) v

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Small dense-matrix helpers for the EM implementations.  Matrices
    are [float array array] in row-major layout; no aliasing tricks. *)

val make : int -> int -> float -> float array array
val copy : float array array -> float array array
val dims : float array array -> int * int

val row_normalize : float array array -> unit
(** Make every row a stochastic vector in place.  Rows summing to zero
    are replaced by the uniform distribution (the EM M-step can produce
    such rows for states never visited). *)

val max_abs_diff : float array array -> float array array -> float
(** Largest entrywise absolute difference.  Requires equal dims. *)

val max_abs_diff_vec : float array -> float array -> float

val random_stochastic : Rng.t -> int -> int -> float array array
(** Random row-stochastic matrix with entries bounded away from 0 —
    the paper initializes the MMHD transition matrix randomly. *)

val is_stochastic : ?eps:float -> float array array -> bool
(** All entries non-negative and every row sums to 1 within [eps]
    (default 1e-6). *)

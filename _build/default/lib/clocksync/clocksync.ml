type line = { slope : float; intercept : float }

let lower_hull points =
  let pts = Array.copy points in
  Array.sort compare pts;
  let n = Array.length pts in
  if n <= 2 then pts
  else begin
    let hull = Array.make n (0., 0.) in
    let k = ref 0 in
    let cross (ox, oy) (ax, ay) (bx, by) =
      ((ax -. ox) *. (by -. oy)) -. ((ay -. oy) *. (bx -. ox))
    in
    Array.iter
      (fun p ->
        while !k >= 2 && cross hull.(!k - 2) hull.(!k - 1) p <= 0. do
          decr k
        done;
        hull.(!k) <- p;
        incr k)
      pts;
    Array.sub hull 0 !k
  end

let estimate ~times ~delays =
  let n = Array.length times in
  if n <> Array.length delays then invalid_arg "Clocksync.estimate: length mismatch";
  if n < 2 then invalid_arg "Clocksync.estimate: need at least two samples";
  let points = Array.init n (fun i -> (times.(i), delays.(i))) in
  let hull = lower_hull points in
  let t_mean = Array.fold_left ( +. ) 0. times /. float_of_int n in
  if Array.length hull = 1 then invalid_arg "Clocksync.estimate: all times equal";
  (* The LP objective sum (d_i - a - b t_i) over feasible (a, b) is
     minimized by the hull edge whose span contains the mean time: the
     objective is linear in (a, b) and the feasible optimum moves along
     hull edges, with the derivative changing sign where t_mean falls
     inside an edge's interval. *)
  let best = ref None in
  for i = 0 to Array.length hull - 2 do
    let x1, y1 = hull.(i) and x2, y2 = hull.(i + 1) in
    if x2 > x1 then begin
      let slope = (y2 -. y1) /. (x2 -. x1) in
      let intercept = y1 -. (slope *. x1) in
      (* Objective up to constants: maximize intercept + slope*t_mean. *)
      let score = intercept +. (slope *. t_mean) in
      match !best with
      | Some (s, _) when s >= score -> ()
      | Some _ | None -> best := Some (score, { slope; intercept })
    end
  done;
  match !best with
  | Some (_, line) -> line
  | None -> invalid_arg "Clocksync.estimate: degenerate hull"

let remove_skew ~times ~delays =
  let { slope; _ } = estimate ~times ~delays in
  let t0 = times.(0) in
  Array.mapi (fun i d -> d -. (slope *. (times.(i) -. t0))) delays

let apply_skew ~times ~delays ~skew =
  if Array.length times <> Array.length delays then
    invalid_arg "Clocksync.apply_skew: length mismatch";
  Array.mapi (fun i d -> d +. (skew *. times.(i))) delays

(** Clock offset and skew removal for one-way delay measurements
    (Zhang, Liu, Xia, INFOCOM 2002 — the algorithm the paper applies
    to its tcpdump traces).

    When sender and receiver clocks are unsynchronized, the measured
    one-way delay of a probe sent at time [t] is
    [d(t) + offset + skew * t].  Since true delays are bounded below by
    the (constant) propagation delay, the skew line is found as the
    line lying below every measurement that minimizes the total
    vertical distance to the points — a linear program whose optimum is
    attained on the lower convex hull of the measurement cloud. *)

type line = { slope : float; intercept : float }
(** [d = intercept +. slope *. t]. *)

val lower_hull : (float * float) array -> (float * float) array
(** Lower convex hull of a point cloud, by Andrew's monotone chain;
    input need not be sorted.  Exposed for tests. *)

val estimate : times:float array -> delays:float array -> line
(** Best lower-bounding line (least total distance).  Requires at
    least two samples with distinct times. *)

val remove_skew : times:float array -> delays:float array -> float array
(** Subtract the estimated skew from the measurements:
    [delays.(i) -. slope *. (times.(i) -. times.(0))].  The constant
    clock offset is retained — the identification pipeline estimates
    the propagation delay as the minimum observed delay, which absorbs
    any constant shift. *)

val apply_skew : times:float array -> delays:float array -> skew:float -> float array
(** Distort measurements with a linear clock drift of [skew]
    seconds/second (testing helper: [remove_skew] should undo it). *)

lib/dcl/identify.ml: Array Bound Discretize Float Format Hmm Mmhd Probe Tests Vqd

lib/dcl/locate.mli: Identify Probe Stats

lib/dcl/bootstrap.mli: Identify Probe Stats

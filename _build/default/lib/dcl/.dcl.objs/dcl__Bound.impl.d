lib/dcl/bound.ml: Array Discretize List Vqd

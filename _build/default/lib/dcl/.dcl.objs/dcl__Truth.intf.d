lib/dcl/truth.mli: Format Probe

lib/dcl/vqd.mli: Discretize Format Probe

lib/dcl/tests.ml: Format Vqd

lib/dcl/truth.ml: Array Format Probe

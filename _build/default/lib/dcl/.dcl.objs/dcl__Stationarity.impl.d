lib/dcl/stationarity.ml: Array Discretize Float Format Probe Stats

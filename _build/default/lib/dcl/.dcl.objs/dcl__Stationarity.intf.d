lib/dcl/stationarity.mli: Format Probe

lib/dcl/locate.ml: Identify List Probe

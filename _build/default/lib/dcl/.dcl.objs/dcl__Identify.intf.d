lib/dcl/identify.mli: Discretize Format Probe Stats Tests Vqd

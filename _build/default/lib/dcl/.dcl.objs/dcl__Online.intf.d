lib/dcl/online.mli: Identify Probe Stats

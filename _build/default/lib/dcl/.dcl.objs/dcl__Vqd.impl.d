lib/dcl/vqd.ml: Array Discretize Format Probe Stats

lib/dcl/tests.mli: Format Vqd

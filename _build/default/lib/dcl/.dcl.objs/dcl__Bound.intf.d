lib/dcl/bound.mli: Vqd

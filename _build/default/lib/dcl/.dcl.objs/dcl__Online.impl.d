lib/dcl/online.ml: Array Float Identify List Probe Tests

lib/dcl/bootstrap.ml: Array Float Identify Probe Stats Stdlib Tests

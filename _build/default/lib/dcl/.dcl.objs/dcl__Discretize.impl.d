lib/dcl/discretize.ml: Array Probe

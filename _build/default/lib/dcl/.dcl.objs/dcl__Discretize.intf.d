lib/dcl/discretize.mli: Probe

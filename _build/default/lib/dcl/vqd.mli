(** Virtual queuing delay distributions: the discretized distribution
    of [Y], the end–end queuing delay of the (virtual) lost probes,
    however obtained — model posterior (Eq. 5), ground truth, or
    loss-pair samples.  The hypothesis tests and bound estimators all
    consume this type. *)

type t = {
  scheme : Discretize.t;
  pmf : float array;  (** length [scheme.m], sums to 1 *)
  cdf : float array;
}

val of_pmf : Discretize.t -> float array -> t
(** Requires a length-[m] vector with positive sum (it is
    normalized). *)

val of_queuing_samples : Discretize.t -> float array -> t
(** Bin raw queuing-delay samples (seconds).  Requires a non-empty
    sample. *)

val of_trace_truth : Discretize.t -> Probe.Trace.t -> t
(** Ground-truth distribution from the virtual-probe records of a
    trace ("ns virtual" in the paper's figures).  Requires at least
    one loss. *)

val cdf_at : t -> int -> float
(** [cdf_at t j] = [P(Y <= symbol j)]; [j < 0] gives 0, [j >= m]
    gives 1. *)

val quantile_symbol : t -> float -> int
(** Smallest symbol [j] with [cdf_at t j >= q]. *)

val mean_queuing : t -> float
(** Mean of the distribution using upper-edge bin values. *)

val tv_distance : t -> t -> float
(** Total-variation distance between two distributions on the same
    number of symbols. *)

val pp : Format.formatter -> t -> unit
(** Render the PMF as "j:probability" pairs for reports. *)

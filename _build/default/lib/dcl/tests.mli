(** The paper's two hypothesis tests (Section IV-A, Figs. 2 and 3),
    operating on the discretized virtual queuing delay distribution.

    Let [d*] be the smallest symbol with [F at d* >= 1/2] (symbols are
    1-based in the statements below, matching the paper).

    - SDCL-Test (Theorem 1): under the null hypothesis that a strongly
      dominant congested link exists, [F at 2*d_star = 1].  Reject when
      [F at 2*d_star < 1 - tolerance].
    - WDCL-Test (Theorem 2): under the null hypothesis that a weakly
      dominant congested link with parameters [(beta, eps)] exists,
      [F at 2*d_star >= (1 - beta) * (1 - eps)].  Reject when it falls short
      by more than [tolerance].

    [tolerance] absorbs estimation noise in [F] (the paper accepts
    e.g. [F = 0.97 >= 0.94] and implicitly treats 1 as "1 within
    estimation error"); the default is 0.005. *)

type verdict = Accept | Reject

type outcome = {
  verdict : verdict;
  d_star : int;  (** 1-based symbol [d*] *)
  two_d_star : int;  (** 1-based symbol [2*d_star] (may exceed [m]) *)
  f_at_two_d_star : float;  (** [F at 2*d_star], 1 when [2 d* > m] *)
  threshold : float;  (** acceptance threshold on [F at 2*d_star] *)
}

val default_tolerance : float

val sdcl : ?tolerance:float -> ?delay_factor:float -> Vqd.t -> outcome
(** Test for a strongly dominant congested link.

    [delay_factor] is the generalization parameter [x] the paper
    mentions (its reference \[39\]): the delay condition becomes
    [Q_k >= x * (aggregate queuing of the other links)], which forces
    [Y <= (1 + 1/x) * Q_k], so the tested symbol becomes
    [ceil ((1 + 1/x) * d_star)].  The default [x = 1] is the paper's
    definition (tested symbol [2 * d_star]).  Larger [x] is a stricter
    notion of dominance (the link must dominate by a larger factor);
    requires [delay_factor > 0]. *)

val wdcl :
  ?tolerance:float -> ?delay_factor:float -> beta:float -> eps:float -> Vqd.t -> outcome
(** Test for a weakly dominant congested link with parameters
    [(beta, eps)]; requires [0 <= beta < 1/2] and [0 <= eps <= 1].
    [delay_factor] as in {!sdcl}. *)

val pp_outcome : Format.formatter -> outcome -> unit

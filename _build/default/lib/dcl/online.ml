type sample = {
  at : float;
  conclusion : Identify.conclusion option;
  f_at_two_d_star : float;
  loss_rate : float;
}

let scan ?(params = Identify.default_params) ~rng ~window ~stride trace =
  if stride <= 0. then invalid_arg "Online.scan: stride <= 0";
  let duration = Probe.Trace.duration trace in
  if window <= 0. || window > duration then
    invalid_arg "Online.scan: window must be in (0, duration]";
  let interval = trace.Probe.Trace.interval in
  let per_window = int_of_float (ceil (window /. interval)) in
  let n = Probe.Trace.length trace in
  let rec walk t acc =
    let pos = int_of_float (t /. interval) in
    if pos + per_window > n then List.rev acc
    else begin
      let segment = Probe.Trace.sub trace ~pos ~len:per_window in
      let last = segment.Probe.Trace.records.(per_window - 1).Probe.Trace.send_time in
      let sample =
        if Identify.identifiable segment then begin
          let r = Identify.run ~params ~rng segment in
          {
            at = last;
            conclusion = Some r.Identify.conclusion;
            f_at_two_d_star = r.Identify.wdcl.Tests.f_at_two_d_star;
            loss_rate = r.Identify.loss_rate;
          }
        end
        else
          {
            at = last;
            conclusion = None;
            f_at_two_d_star = Float.nan;
            loss_rate = Probe.Trace.loss_rate segment;
          }
      in
      walk (t +. stride) (sample :: acc)
    end
  in
  walk 0. []

let changes samples =
  let rec collapse prev acc = function
    | [] -> List.rev acc
    | s :: rest ->
        if prev = None || Some s.conclusion <> prev then
          collapse (Some s.conclusion) ((s.at, s.conclusion) :: acc) rest
        else collapse prev acc rest
  in
  collapse None [] samples

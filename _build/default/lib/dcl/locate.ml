type prefix = {
  hops : int;
  conclusion : Identify.conclusion option;
  loss_rate : float;
}

let dominant = function
  | Some Identify.Strongly_dominant | Some Identify.Weakly_dominant -> true
  | Some Identify.No_dominant | None -> false

let pinpoint prefixes =
  let sorted = List.sort (fun a b -> compare a.hops b.hops) prefixes in
  (* Find the smallest prefix from which every result is dominant. *)
  let rec scan acc = function
    | [] -> acc
    | p :: rest ->
        if dominant p.conclusion then
          let acc = match acc with Some _ -> acc | None -> Some p.hops in
          scan acc rest
        else scan None rest
  in
  match scan None sorted with
  | Some h ->
      (* Sanity: the longest prefix must itself be dominant (scan
         guarantees it) and there must be at least one measurement. *)
      Some h
  | None -> None

let analyze ?(params = Identify.default_params) ~rng traces =
  let prefixes =
    List.map
      (fun (hops, trace) ->
        let conclusion, loss_rate =
          if Identify.identifiable trace then begin
            let r = Identify.run ~params ~rng trace in
            (Some r.Identify.conclusion, r.Identify.loss_rate)
          end
          else (None, Probe.Trace.loss_rate trace)
        in
        { hops; conclusion; loss_rate })
      traces
  in
  (prefixes, pinpoint prefixes)

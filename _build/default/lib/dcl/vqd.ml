type t = { scheme : Discretize.t; pmf : float array; cdf : float array }

let of_pmf scheme pmf =
  if Array.length pmf <> scheme.Discretize.m then invalid_arg "Vqd.of_pmf: length mismatch";
  let pmf = Stats.Histogram.normalize pmf in
  { scheme; pmf; cdf = Stats.Histogram.cdf_of_pmf pmf }

let of_queuing_samples scheme samples =
  if Array.length samples = 0 then invalid_arg "Vqd.of_queuing_samples: empty sample";
  let counts = Array.make scheme.Discretize.m 0. in
  Array.iter
    (fun q ->
      let j = Discretize.symbol_of_queuing scheme q in
      counts.(j) <- counts.(j) +. 1.)
    samples;
  of_pmf scheme counts

let of_trace_truth scheme trace =
  let samples = Probe.Trace.truth_virtual_delays trace in
  if Array.length samples = 0 then invalid_arg "Vqd.of_trace_truth: trace has no loss";
  of_queuing_samples scheme samples

let cdf_at t j =
  if j < 0 then 0. else if j >= Array.length t.cdf then 1. else t.cdf.(j)

let quantile_symbol t q =
  let m = Array.length t.cdf in
  let rec find j = if j >= m - 1 || t.cdf.(j) >= q then j else find (j + 1) in
  find 0

let mean_queuing t =
  let acc = ref 0. in
  Array.iteri (fun j p -> acc := !acc +. (p *. Discretize.queuing_value t.scheme j)) t.pmf;
  !acc

let tv_distance a b = Stats.Histogram.total_variation a.pmf b.pmf

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun j p -> if p > 5e-4 then Format.fprintf ppf "%d:%.3f " (j + 1) p)
    t.pmf;
  Format.fprintf ppf "@]"

(** Delay discretization (Section V-A).

    End–end delays are mapped to [m] equal-width symbols over
    [\[lo, hi\]], where [lo] is the path propagation delay [P] (known,
    or approximated by the smallest observed delay) and [hi] is the
    largest observed delay.  Symbol [j] (0-based) covers end–end delays
    in [(lo + j*w, lo + (j+1)*w]]; equivalently queuing delays in
    [(j*w, (j+1)*w]].  Converting a symbol back to an actual delay uses
    the bin's upper edge, the paper's "actual delay value is j*w"
    convention (1-based there). *)

type t = {
  m : int;
  lo : float;  (** propagation-delay estimate [P] *)
  hi : float;  (** largest observed end–end delay *)
  width : float;
}

type prop_delay = Known of float | From_trace
(** How to obtain [P]: supplied externally, or estimated as the
    minimum observed delay of the trace (Section V-A / Fig. 14). *)

val of_trace : m:int -> prop_delay:prop_delay -> Probe.Trace.t -> t
(** Requires at least two distinct observed delays. *)

val of_range : m:int -> lo:float -> hi:float -> t

val symbol_of_delay : t -> float -> int
(** Clamped to [\[0, m-1\]]. *)

val symbol_of_queuing : t -> float -> int
(** Symbol of a queuing delay (relative to [lo]). *)

val queuing_value : t -> int -> float
(** Upper edge of the symbol's queuing-delay range: [(j+1) * width]. *)

val symbolize : t -> Probe.Trace.observation array -> int option array
(** Map a trace's observations to model inputs: [Some symbol] for a
    delay, [None] for a loss. *)

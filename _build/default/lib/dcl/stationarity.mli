(** Stationarity screening for probe traces.

    The paper assumes "the loss and delay characteristics experienced
    by the probes are stationary" (Section III) and selects stationary
    20-minute segments from its hour-long Internet traces
    (Section VI-B).  This module provides the screening step: split the
    trace into blocks, compare per-block loss rates and delay
    distributions, and flag traces whose characteristics drift. *)

type block = {
  start_time : float;
  probes : int;
  loss_rate : float;
  median_delay : float;  (** of surviving probes; [nan] if none *)
}

type report = {
  blocks : block array;
  max_tv : float;
      (** largest pairwise total-variation distance between block delay
          distributions (over a common 10-symbol discretization) *)
  loss_rate_spread : float;  (** max - min block loss rate *)
  stationary : bool;
}

val check :
  ?blocks:int ->
  ?tv_threshold:float ->
  ?loss_spread_threshold:float ->
  Probe.Trace.t ->
  report
(** [check trace] splits the trace into [blocks] (default 4) equal
    pieces and declares it stationary when every pairwise TV distance
    between block delay distributions is at most [tv_threshold]
    (default 0.3) and block loss rates differ by at most
    [loss_spread_threshold] (default 0.03).  Requires at least
    [2 * blocks] probes and at least one surviving probe overall. *)

val pp_report : Format.formatter -> report -> unit

type t = { m : int; lo : float; hi : float; width : float }
type prop_delay = Known of float | From_trace

let of_range ~m ~lo ~hi =
  if m <= 0 then invalid_arg "Discretize.of_range: m <= 0";
  if hi <= lo then invalid_arg "Discretize.of_range: hi <= lo";
  { m; lo; hi; width = (hi -. lo) /. float_of_int m }

let of_trace ~m ~prop_delay trace =
  let hi = Probe.Trace.max_delay trace in
  let lo =
    match prop_delay with Known p -> p | From_trace -> Probe.Trace.min_delay trace
  in
  if hi <= lo then
    invalid_arg "Discretize.of_trace: no delay spread (all observed delays equal)";
  of_range ~m ~lo ~hi

let symbol_of_delay t d =
  if d <= t.lo then 0
  else if d >= t.hi then t.m - 1
  else
    let j = int_of_float (ceil ((d -. t.lo) /. t.width)) - 1 in
    if j < 0 then 0 else if j >= t.m then t.m - 1 else j

let symbol_of_queuing t q = symbol_of_delay t (t.lo +. q)
let queuing_value t j = float_of_int (j + 1) *. t.width

let symbolize t obs =
  Array.map
    (function
      | Probe.Trace.Lost -> None
      | Probe.Trace.Delay d -> Some (symbol_of_delay t d))
    obs

type regime = Strong | Weak of { hop : int; loss_share : float } | No_dominant

let loss_shares trace ~hop_count =
  let shares = Array.make hop_count 0. in
  let total = ref 0 in
  Array.iter
    (fun r ->
      match r.Probe.Trace.truth with
      | Some { Probe.Trace.loss_hop = Some h; _ } ->
          incr total;
          shares.(h) <- shares.(h) +. 1.
      | Some { Probe.Trace.loss_hop = None; _ } | None -> ())
    trace.Probe.Trace.records;
  if !total > 0 then
    Array.iteri (fun i s -> shares.(i) <- s /. float_of_int !total) shares;
  shares

let dominant_hop trace ~hop_count =
  let shares = loss_shares trace ~hop_count in
  let best = ref (-1) and best_share = ref 0. in
  Array.iteri
    (fun i s ->
      if s > !best_share then begin
        best := i;
        best_share := s
      end)
    shares;
  if !best < 0 then None else Some (!best, !best_share)

let delay_condition_fraction trace ~hop =
  let total = ref 0 and ok = ref 0 in
  Array.iter
    (fun r ->
      match r.Probe.Trace.truth with
      | Some { Probe.Trace.loss_hop = Some h; hop_queuing; _ } when h = hop ->
          incr total;
          let here = hop_queuing.(hop) in
          let others = Array.fold_left ( +. ) 0. hop_queuing -. here in
          if here >= others -. 1e-12 then incr ok
      | Some _ | None -> ())
    trace.Probe.Trace.records;
  if !total = 0 then 1. else float_of_int !ok /. float_of_int !total

let classify ?(strong_share = 0.995) ?(weak_share = 0.94) ?(delay_fraction = 0.995) trace
    ~hop_count =
  match dominant_hop trace ~hop_count with
  | None -> No_dominant
  | Some (hop, share) ->
      if share >= strong_share && delay_condition_fraction trace ~hop >= delay_fraction
      then Strong
      else if share >= weak_share then Weak { hop; loss_share = share }
      else No_dominant

let pp_regime ppf = function
  | Strong -> Format.fprintf ppf "strongly dominant"
  | Weak { hop; loss_share } ->
      Format.fprintf ppf "weakly dominant (hop %d, %.1f%% of losses)" hop
        (100. *. loss_share)
  | No_dominant -> Format.fprintf ppf "no dominant congested link"

type block = {
  start_time : float;
  probes : int;
  loss_rate : float;
  median_delay : float;
}

type report = {
  blocks : block array;
  max_tv : float;
  loss_rate_spread : float;
  stationary : bool;
}

let check ?(blocks = 4) ?(tv_threshold = 0.3) ?(loss_spread_threshold = 0.03) trace =
  if blocks < 2 then invalid_arg "Stationarity.check: need at least 2 blocks";
  let n = Probe.Trace.length trace in
  if n < 2 * blocks then invalid_arg "Stationarity.check: trace too short";
  (* A common delay discretization across blocks, finer than the
     identification's (m = 10), so distribution drift is visible. *)
  let scheme = Discretize.of_trace ~m:10 ~prop_delay:Discretize.From_trace trace in
  let block_size = n / blocks in
  let parts =
    Array.init blocks (fun b ->
        let pos = b * block_size in
        let len = if b = blocks - 1 then n - pos else block_size in
        Probe.Trace.sub trace ~pos ~len)
  in
  let summaries =
    Array.map
      (fun part ->
        let ds = Probe.Trace.observed_delays part in
        let median =
          if Array.length ds = 0 then Float.nan else Stats.Summary.median ds
        in
        let pmf =
          if Array.length ds = 0 then None
          else
            Some
              (Stats.Histogram.normalize
                 (Array.fold_left
                    (fun acc d ->
                      acc.(Discretize.symbol_of_delay scheme d) <-
                        acc.(Discretize.symbol_of_delay scheme d) +. 1.;
                      acc)
                    (Array.make 10 0.) ds))
        in
        let block =
          {
            start_time = part.Probe.Trace.records.(0).Probe.Trace.send_time;
            probes = Probe.Trace.length part;
            loss_rate = Probe.Trace.loss_rate part;
            median_delay = median;
          }
        in
        (block, pmf))
      parts
  in
  let max_tv = ref 0. in
  let some_block_empty = ref false in
  Array.iteri
    (fun i (_, pi) ->
      Array.iteri
        (fun j (_, pj) ->
          if i < j then
            match (pi, pj) with
            | Some a, Some b ->
                max_tv := Float.max !max_tv (Stats.Histogram.total_variation a b)
            | _ -> some_block_empty := true)
        summaries)
    summaries;
  let rates = Array.map (fun (b, _) -> b.loss_rate) summaries in
  let spread =
    Array.fold_left Float.max rates.(0) rates -. Array.fold_left Float.min rates.(0) rates
  in
  {
    blocks = Array.map fst summaries;
    max_tv = !max_tv;
    loss_rate_spread = spread;
    stationary =
      (not !some_block_empty) && !max_tv <= tv_threshold && spread <= loss_spread_threshold;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s (max block TV %.3f, loss-rate spread %.3f)@,"
    (if r.stationary then "stationary" else "NOT stationary")
    r.max_tv r.loss_rate_spread;
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "block %d: t=%.0fs probes=%d loss=%.2f%% median=%.1fms@," i
        b.start_time b.probes (100. *. b.loss_rate) (1000. *. b.median_delay))
    r.blocks;
  Format.fprintf ppf "@]"

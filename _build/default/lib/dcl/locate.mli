(** Pinpointing the dominant congested link — the paper's stated
    future work ("we will investigate how to pinpoint a dominant
    congested link after identifying such a link exists",
    Section VII).

    The idea: run the identification on {e path prefixes} (probes to
    intermediate routers — obtainable with TTL-limited probes against
    routers that answer, or with cooperating vantage points).  Losses
    on the prefix to router [r_k] are exactly the losses at links
    [1..k], so as [k] grows the prefix "acquires" the dominant link at
    one specific hop:

    - prefixes ending before the dominant link see few or none of the
      losses (not identifiable, or no dominant link);
    - every prefix from the dominant link onward sees essentially the
      full loss process and identifies a dominant congested link.

    The dominant link is therefore the first prefix length at which the
    conclusion switches to dominant and stays there. *)

type prefix = {
  hops : int;  (** prefix length in links *)
  conclusion : Identify.conclusion option;
      (** [None] when the prefix trace was not identifiable *)
  loss_rate : float;
}

val pinpoint : prefix list -> int option
(** [pinpoint prefixes] returns the 1-based hop of the dominant
    congested link: the smallest prefix length whose conclusion is
    dominant such that all longer prefixes are dominant too.  [None]
    when no such suffix exists (no dominant link, or inconsistent
    prefix results).  The input may be in any order. *)

val analyze :
  ?params:Identify.params ->
  rng:Stats.Rng.t ->
  (int * Probe.Trace.t) list ->
  prefix list * int option
(** [analyze ~rng traces] runs the identification on each
    [(hops, trace)] prefix measurement and {!pinpoint}s the dominant
    link. *)

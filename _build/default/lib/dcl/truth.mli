(** Ground-truth characterization of a trace's loss/delay regime from
    its virtual-probe records — the role ns internals play in the
    paper's validation.  Only meaningful for traces produced by the
    simulator (records carry [truth]). *)

type regime =
  | Strong  (** one hop takes (essentially) all losses and dominates delays *)
  | Weak of { hop : int; loss_share : float }
  | No_dominant

val loss_shares : Probe.Trace.t -> hop_count:int -> float array
(** Fraction of loss marks per path hop; zeros when there are no
    losses. *)

val dominant_hop : Probe.Trace.t -> hop_count:int -> (int * float) option
(** Hop with the largest loss share, if any loss occurred. *)

val delay_condition_fraction : Probe.Trace.t -> hop:int -> float
(** Among loss-marked probes lost at [hop], the fraction whose recorded
    queuing delay at [hop] is at least the sum over all other hops —
    the delay condition of Definitions 1–2 evaluated on the lost
    probes.  1.0 when there is no such probe. *)

val classify :
  ?strong_share:float ->
  ?weak_share:float ->
  ?delay_fraction:float ->
  Probe.Trace.t ->
  hop_count:int ->
  regime
(** Classify the regime: [Strong] when some hop has loss share at least
    [strong_share] (default 0.995) and delay-condition fraction at
    least [delay_fraction] (default 0.995); [Weak] when some hop has
    share at least [weak_share] (default 0.75); otherwise
    [No_dominant].  Traces without losses are [No_dominant]. *)

val pp_regime : Format.formatter -> regime -> unit

(** Upper bounds on the maximum queuing delay [Q_k] of an identified
    dominant congested link (Section IV-B).

    All bounds are returned as actual queuing delays in seconds (the
    symbol's upper bin edge). *)

val sdcl_bound : Vqd.t -> float
(** For a strongly dominant congested link: the smallest delay value
    [d] with [F(d) >= 1/2].  Since all loss-marked probes satisfy
    [Y >= Q_k], any positive quantile of [F] upper-bounds [Q_k]; the
    median is the paper's choice. *)

val wdcl_bound : beta:float -> Vqd.t -> float
(** For a weakly dominant congested link with parameter [beta]: the
    smallest delay value [d] with [F(d) > beta] (Theorem 2 gives
    [F(Q_k^-) <= beta]). *)

val component_bound : ?mass_threshold:float -> Vqd.t -> float
(** The finer-grained heuristic for small [eps] (Section IV-B,
    illustrated in Fig. 7): among maximal runs of consecutive symbols
    whose probability exceeds [mass_threshold] (default 0.005), take
    the run with the largest total mass — the "connected component with
    most of the mass" — and return the delay value of its first
    symbol.  Meant to be used with a fine discretization (M = 40 in
    the paper). *)

val components : ?mass_threshold:float -> Vqd.t -> (int * int * float) list
(** The maximal runs the heuristic considers: (first symbol, last
    symbol, total mass), 0-based, in symbol order.  Exposed for
    reporting and tests. *)

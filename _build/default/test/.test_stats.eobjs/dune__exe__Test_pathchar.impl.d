test/test_pathchar.ml: Alcotest Array List Net Netsim Packet Pathchar Printf Sim Traffic

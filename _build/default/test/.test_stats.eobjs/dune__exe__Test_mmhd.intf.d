test/test_mmhd.mli:

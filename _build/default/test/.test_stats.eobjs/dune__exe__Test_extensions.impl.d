test/test_extensions.ml: Alcotest Array Dcl Filename Float Fun Hmm Link List Mmhd Netsim Packet Probe Qmonitor Sim Stats Sys Tracefile

test/test_pathchar.mli:

test/test_hmm.ml: Alcotest Array Hmm List Printf QCheck QCheck_alcotest Stats

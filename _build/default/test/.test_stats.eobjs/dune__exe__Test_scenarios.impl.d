test/test_scenarios.ml: Alcotest Array Dcl Netsim Option Probe Scenarios Stats

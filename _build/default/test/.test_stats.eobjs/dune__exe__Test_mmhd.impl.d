test/test_mmhd.ml: Alcotest Array List Mmhd Printf QCheck QCheck_alcotest Stats

test/test_dcl.ml: Alcotest Array Dcl List Mmhd Probe QCheck QCheck_alcotest Stats

test/test_netsim.ml: Alcotest Array Eventq Link List Net Netsim Option Packet Printf QCheck QCheck_alcotest Red Sim Stats

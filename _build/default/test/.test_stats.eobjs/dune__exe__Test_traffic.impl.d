test/test_traffic.ml: Alcotest Link Net Netsim Sim Traffic

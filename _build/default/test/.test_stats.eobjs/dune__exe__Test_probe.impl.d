test/test_probe.ml: Alcotest Array Filename Fun Link List Net Netsim Packet Probe QCheck QCheck_alcotest Sim Stats Sys Traffic

test/test_dcl.mli:

test/test_clocksync.ml: Alcotest Array Clocksync Float List QCheck QCheck_alcotest Stats

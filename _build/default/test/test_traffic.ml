(* Tests for the traffic generators: TCP, UDP sources, workloads. *)

open Netsim

let check_close eps = Alcotest.(check (float eps))

(* Two hosts joined by one duplex link. *)
let two_hosts ?(bandwidth = 1e6) ?(capacity = 20_000) ?(delay = 0.01) () =
  let sim = Sim.create ~seed:7 () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  let fwd, _ = Net.add_duplex net ~a ~b ~bandwidth ~delay ~capacity () in
  Net.compute_routes net;
  (sim, net, a, b, fwd)

(* --- TCP --------------------------------------------------------------- *)

let test_tcp_transfer_completes () =
  let sim, net, a, b, _ = two_hosts () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.supply conn 50;
  let completed_at = ref None in
  Traffic.Tcp.on_complete conn (fun () -> completed_at := Some (Sim.now sim));
  Traffic.Tcp.start conn;
  Sim.run_until sim 60.;
  (match !completed_at with
  | None -> Alcotest.fail "transfer did not complete"
  | Some t -> Alcotest.(check bool) "took a sensible time" true (t > 0.1 && t < 10.));
  Alcotest.(check int) "all segments delivered in order" 50
    (Traffic.Tcp.delivered_in_order conn);
  Alcotest.(check int) "all acked" 50 (Traffic.Tcp.highest_acked conn)

let test_tcp_no_loss_no_retransmit () =
  let sim, net, a, b, _ = two_hosts ~capacity:1_000_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.supply conn 100;
  Traffic.Tcp.start conn;
  Sim.run_until sim 60.;
  Alcotest.(check int) "no retransmissions on a clean path" 0
    (Traffic.Tcp.retransmissions conn);
  Alcotest.(check int) "no timeouts" 0 (Traffic.Tcp.timeouts conn);
  Alcotest.(check int) "exactly 100 transmissions" 100 (Traffic.Tcp.segments_sent conn)

let test_tcp_slow_start_growth () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.set_unlimited conn;
  Traffic.Tcp.start conn;
  (* After a few RTTs of slow start, cwnd should have grown well beyond
     its initial value of 2. *)
  Sim.run_until sim 0.5;
  Alcotest.(check bool) "cwnd grew" true (Traffic.Tcp.cwnd conn > 8.)

let test_tcp_recovers_from_loss () =
  (* Tiny buffer: losses are inevitable; the transfer must still finish
     with correct in-order delivery. *)
  let sim, net, a, b, link = two_hosts ~capacity:4_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.supply conn 300;
  let done_ = ref false in
  Traffic.Tcp.on_complete conn (fun () -> done_ := true);
  Traffic.Tcp.start conn;
  Sim.run_until sim 300.;
  Alcotest.(check bool) "completed despite losses" true !done_;
  Alcotest.(check bool) "losses occurred" true (Link.drops link > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Traffic.Tcp.retransmissions conn > 0);
  Alcotest.(check int) "receiver got everything in order" 300
    (Traffic.Tcp.delivered_in_order conn)

let test_tcp_congestion_response () =
  let sim, net, a, b, _ = two_hosts ~capacity:4_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.set_unlimited conn;
  Traffic.Tcp.start conn;
  Sim.run_until sim 30.;
  (* With an 8 ms/packet bottleneck and ~4 packets of buffering, cwnd
     must stay small; ssthresh must have been reduced from its initial
     64. *)
  Alcotest.(check bool) "cwnd bounded by path capacity" true (Traffic.Tcp.cwnd conn < 20.);
  Alcotest.(check bool) "ssthresh adjusted" true (Traffic.Tcp.ssthresh conn < 64.)

let test_tcp_throughput_matches_bottleneck () =
  let sim, net, a, b, link = two_hosts ~bandwidth:1e6 ~capacity:20_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.set_unlimited conn;
  Traffic.Tcp.start conn;
  Sim.run_until sim 60.;
  let util = Link.busy_time link /. 60. in
  Alcotest.(check bool) "utilization above 85%" true (util > 0.85)

let test_tcp_rto_sanity () =
  let sim, net, a, b, _ = two_hosts ~capacity:1_000_000 () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.supply conn 20;
  Traffic.Tcp.start conn;
  Sim.run_until sim 10.;
  let rto = Traffic.Tcp.rto conn in
  Alcotest.(check bool) "rto within configured clamp" true (rto >= 0.2 && rto <= 60.)

let test_tcp_on_complete_once () =
  let sim, net, a, b, _ = two_hosts () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.supply conn 5;
  let calls = ref 0 in
  Traffic.Tcp.on_complete conn (fun () -> incr calls);
  Traffic.Tcp.start conn;
  Sim.run_until sim 30.;
  Alcotest.(check int) "completion fires once" 1 !calls

let test_tcp_two_flows_share () =
  let sim, net, a, b, link = two_hosts ~capacity:20_000 () in
  let c1 = Traffic.Tcp.create net ~src:a ~dst:b () in
  let c2 = Traffic.Tcp.create net ~src:a ~dst:b () in
  Traffic.Tcp.set_unlimited c1;
  Traffic.Tcp.set_unlimited c2;
  Traffic.Tcp.start c1;
  Sim.at sim 0.5 (fun () -> Traffic.Tcp.start c2);
  Sim.run_until sim 120.;
  let d1 = Traffic.Tcp.delivered_in_order c1 and d2 = Traffic.Tcp.delivered_in_order c2 in
  Alcotest.(check bool) "both make progress" true (d1 > 500 && d2 > 500);
  let ratio = float_of_int (max d1 d2) /. float_of_int (min d1 d2) in
  Alcotest.(check bool) "rough fairness (within 4x)" true (ratio < 4.);
  Alcotest.(check bool) "bottleneck saturated" true (Link.busy_time link /. 120. > 0.9)

let test_tcp_flow_ids_distinct () =
  let _, net, a, b, _ = two_hosts () in
  let c1 = Traffic.Tcp.create net ~src:a ~dst:b () in
  let c2 = Traffic.Tcp.create net ~src:a ~dst:b () in
  Alcotest.(check bool) "flows distinct" true (Traffic.Tcp.flow c1 <> Traffic.Tcp.flow c2)

let test_tcp_supply_invalid () =
  let _, net, a, b, _ = two_hosts () in
  let conn = Traffic.Tcp.create net ~src:a ~dst:b () in
  Alcotest.check_raises "negative supply" (Invalid_argument "Tcp.supply: negative")
    (fun () -> Traffic.Tcp.supply conn (-1))

(* --- UDP --------------------------------------------------------------- *)

let test_cbr_rate () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let src = Traffic.Udp.cbr net ~src:a ~dst:b ~rate:1e6 ~pkt_size:1000 in
  Traffic.Udp.start src;
  Sim.run_until sim 10.;
  Traffic.Udp.stop src;
  Sim.run_until sim 11.;
  (* 1 Mb/s = 125 packets/s of 1000 bytes. *)
  check_close 5. "cbr packet count" 1250. (float_of_int (Traffic.Udp.sent src))

let test_cbr_received_counts () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let src = Traffic.Udp.cbr net ~src:a ~dst:b ~rate:1e6 ~pkt_size:1000 in
  Traffic.Udp.start src;
  Sim.run_until sim 5.;
  Traffic.Udp.stop src;
  Sim.run_until sim 6.;
  Alcotest.(check int) "received = sent on clean path" (Traffic.Udp.sent src)
    (Traffic.Udp.received src)

let test_onoff_duty_cycle () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let src =
    Traffic.Udp.onoff net ~src:a ~dst:b ~rate:2e6 ~pkt_size:1000 ~mean_on:0.5
      ~mean_off:0.5
  in
  Traffic.Udp.start src;
  Sim.run_until sim 200.;
  Traffic.Udp.stop src;
  (* Duty 50% at 250 pkt/s while on => ~125 pkt/s average. *)
  let rate = float_of_int (Traffic.Udp.sent src) /. 200. in
  Alcotest.(check bool) "on-off average rate within 20%" true
    (rate > 100. && rate < 150.)

let test_pulse_periodicity () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let src =
    Traffic.Udp.pulse net ~src:a ~dst:b ~rate:1e6 ~pkt_size:1000 ~on_duration:0.4
      ~period:2.
  in
  Traffic.Udp.start src;
  Sim.run_until sim 20.;
  Traffic.Udp.stop src;
  (* ~10 pulses x 0.4 s x 125 pkt/s = ~500 packets. *)
  let sent = Traffic.Udp.sent src in
  Alcotest.(check bool) "pulse volume in expected band" true (sent > 350 && sent < 650)

let test_udp_invalid () =
  let _, net, a, b, _ = two_hosts () in
  Alcotest.check_raises "bad rate" (Invalid_argument "Udp: rate <= 0") (fun () ->
      ignore (Traffic.Udp.cbr net ~src:a ~dst:b ~rate:0. ~pkt_size:100));
  Alcotest.check_raises "bad pulse" (Invalid_argument "Udp.pulse: need 0 < on_duration < period")
    (fun () ->
      ignore
        (Traffic.Udp.pulse net ~src:a ~dst:b ~rate:1e6 ~pkt_size:100 ~on_duration:2.
           ~period:1.))

(* --- Workloads ---------------------------------------------------------- *)

let test_ftp_is_greedy () =
  let sim, net, a, b, _ = two_hosts () in
  let conn = Traffic.Workload.ftp net ~src:a ~dst:b in
  Traffic.Tcp.start conn;
  Sim.run_until sim 30.;
  Alcotest.(check bool) "keeps sending" true (Traffic.Tcp.delivered_in_order conn > 1000)

let test_ftp_at_start_time () =
  let sim, net, a, b, _ = two_hosts () in
  let conn = Traffic.Workload.ftp_at net ~src:a ~dst:b ~at:5. in
  Sim.run_until sim 4.9;
  Alcotest.(check int) "nothing before start" 0 (Traffic.Tcp.segments_sent conn);
  Sim.run_until sim 10.;
  Alcotest.(check bool) "sending after start" true (Traffic.Tcp.segments_sent conn > 0)

let test_http_progress () =
  let sim, net, a, b, _ = two_hosts ~bandwidth:10e6 ~capacity:1_000_000 () in
  let wl = Traffic.Workload.http net ~src:a ~dst:b ~session_rate:1.0 in
  Traffic.Workload.http_start wl;
  Sim.run_until sim 60.;
  Alcotest.(check bool) "sessions started" true
    (Traffic.Workload.http_sessions_started wl > 20);
  Alcotest.(check bool) "pages completed" true
    (Traffic.Workload.http_pages_completed wl > 20)

let test_http_invalid () =
  let _, net, a, b, _ = two_hosts () in
  Alcotest.check_raises "bad rate" (Invalid_argument "Workload.http: session_rate <= 0")
    (fun () -> ignore (Traffic.Workload.http net ~src:a ~dst:b ~session_rate:0.))

let () =
  Alcotest.run "traffic"
    [
      ( "tcp",
        [
          Alcotest.test_case "transfer completes" `Quick test_tcp_transfer_completes;
          Alcotest.test_case "clean path, no retransmit" `Quick
            test_tcp_no_loss_no_retransmit;
          Alcotest.test_case "slow start growth" `Quick test_tcp_slow_start_growth;
          Alcotest.test_case "recovers from loss" `Quick test_tcp_recovers_from_loss;
          Alcotest.test_case "congestion response" `Quick test_tcp_congestion_response;
          Alcotest.test_case "saturates bottleneck" `Quick
            test_tcp_throughput_matches_bottleneck;
          Alcotest.test_case "rto sanity" `Quick test_tcp_rto_sanity;
          Alcotest.test_case "on_complete once" `Quick test_tcp_on_complete_once;
          Alcotest.test_case "two flows share" `Quick test_tcp_two_flows_share;
          Alcotest.test_case "distinct flow ids" `Quick test_tcp_flow_ids_distinct;
          Alcotest.test_case "supply invalid" `Quick test_tcp_supply_invalid;
        ] );
      ( "udp",
        [
          Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
          Alcotest.test_case "cbr received" `Quick test_cbr_received_counts;
          Alcotest.test_case "onoff duty cycle" `Quick test_onoff_duty_cycle;
          Alcotest.test_case "pulse periodicity" `Quick test_pulse_periodicity;
          Alcotest.test_case "invalid args" `Quick test_udp_invalid;
        ] );
      ( "workload",
        [
          Alcotest.test_case "ftp greedy" `Quick test_ftp_is_greedy;
          Alcotest.test_case "ftp start time" `Quick test_ftp_at_start_time;
          Alcotest.test_case "http progress" `Quick test_http_progress;
          Alcotest.test_case "http invalid" `Quick test_http_invalid;
        ] );
    ]

(* Integration tests: the paper's experiment setups end-to-end, at
   reduced durations.  These tie the whole stack together: simulator,
   traffic, probing, ground truth, and identification. *)

let check_close eps = Alcotest.(check (float eps))

let test_strongly_preset_structure () =
  let cfg = Scenarios.Presets.strongly_dcl ~duration:60. ~bw3:1e6 () in
  let o = Scenarios.Paper_topology.run cfg in
  let tr = o.Scenarios.Paper_topology.trace in
  Alcotest.(check int) "probe count" 3000 (Probe.Trace.length tr);
  Alcotest.(check bool) "losses occur" true (Probe.Trace.losses tr > 10);
  (* All losses at the bottleneck (hop 3). *)
  let shares = Dcl.Truth.loss_shares tr ~hop_count:5 in
  Alcotest.(check bool) "all losses at L3" true (shares.(3) > 0.99);
  (* Link reports: only L3 drops packets. *)
  let r = o.Scenarios.Paper_topology.reports in
  Alcotest.(check int) "L1 lossless" 0 r.(0).Scenarios.Paper_topology.drops;
  Alcotest.(check bool) "L3 lossy" true (r.(2).Scenarios.Paper_topology.drops > 0);
  check_close 1e-9 "L3 q_max" 0.16 r.(2).Scenarios.Paper_topology.q_max;
  Alcotest.(check bool) "ground truth says strongly dominant" true
    (Dcl.Truth.classify tr ~hop_count:5 = Dcl.Truth.Strong)

let test_strongly_identification () =
  let cfg = Scenarios.Presets.strongly_dcl ~duration:120. ~bw3:1e6 () in
  let o = Scenarios.Paper_topology.run cfg in
  let rng = Stats.Rng.create 7 in
  let r = Dcl.Identify.run ~rng o.Scenarios.Paper_topology.trace in
  Alcotest.(check bool) "SDCL accepts" true
    (r.Dcl.Identify.conclusion = Dcl.Identify.Strongly_dominant);
  (* The Q_max bound must cover the true value and not exceed twice it. *)
  match r.Dcl.Identify.bound with
  | None -> Alcotest.fail "no bound"
  | Some b ->
      let q = (o.Scenarios.Paper_topology.reports.(2)).Scenarios.Paper_topology.q_max in
      Alcotest.(check bool) "bound in [Q, 2Q]" true (b >= q -. 1e-9 && b <= 2. *. q)

let test_weakly_preset_structure () =
  let cfg = Scenarios.Presets.weakly_dcl ~duration:300. () in
  let o = Scenarios.Paper_topology.run cfg in
  let tr = o.Scenarios.Paper_topology.trace in
  let shares = Dcl.Truth.loss_shares tr ~hop_count:5 in
  Alcotest.(check bool) "L1 dominates losses" true (shares.(1) > 0.9);
  Alcotest.(check bool) "L3 loses a little" true (shares.(3) > 0. && shares.(3) < 0.1);
  (* Q_max ordering that the geometry relies on. *)
  let r = o.Scenarios.Paper_topology.reports in
  Alcotest.(check bool) "Q3 much larger than Q1" true
    (r.(2).Scenarios.Paper_topology.q_max > 2.5 *. r.(0).Scenarios.Paper_topology.q_max)

let test_no_dcl_preset_structure () =
  let cfg = Scenarios.Presets.no_dcl ~duration:300. () in
  let o = Scenarios.Paper_topology.run cfg in
  let tr = o.Scenarios.Paper_topology.trace in
  let shares = Dcl.Truth.loss_shares tr ~hop_count:5 in
  Alcotest.(check bool) "both links lose" true (shares.(1) > 0.4 && shares.(3) > 0.1);
  Alcotest.(check bool) "no link reaches the 94% boundary" true
    (shares.(1) < 0.94 && shares.(3) < 0.94);
  Alcotest.(check bool) "classifier agrees" true
    (Dcl.Truth.classify tr ~hop_count:5 = Dcl.Truth.No_dominant)

let test_no_dcl_truth_rejects () =
  let cfg = Scenarios.Presets.no_dcl ~duration:300. () in
  let o = Scenarios.Paper_topology.run cfg in
  let tr = o.Scenarios.Paper_topology.trace in
  let scheme = Dcl.Discretize.of_trace ~m:5 ~prop_delay:Dcl.Discretize.From_trace tr in
  let truth = Dcl.Vqd.of_trace_truth scheme tr in
  Alcotest.(check bool) "ground-truth F rejects WDCL" true
    ((Dcl.Tests.wdcl ~beta:0.06 ~eps:0. truth).Dcl.Tests.verdict = Dcl.Tests.Reject)

let test_loss_pairs_in_preset () =
  let cfg = Scenarios.Presets.strongly_dcl ~duration:120. ~with_loss_pairs:true ~bw3:1e6 () in
  let o = Scenarios.Paper_topology.run cfg in
  match o.Scenarios.Paper_topology.loss_pair_estimate with
  | None -> Alcotest.fail "expected loss pairs"
  | Some est ->
      let q = (o.Scenarios.Paper_topology.reports.(2)).Scenarios.Paper_topology.q_max in
      check_close (0.3 *. q) "loss-pair estimate near Q3" q est

let test_red_preset_runs () =
  let cfg =
    Scenarios.Presets.with_red ~min_th_frac:0.5
      (Scenarios.Presets.strongly_dcl ~duration:60. ~bw3:1e6 ())
  in
  Array.iter
    (fun (lc : Scenarios.Paper_topology.link_config) ->
      match lc.Scenarios.Paper_topology.queue with
      | Netsim.Net.Red_q { min_th; max_th } ->
          Alcotest.(check bool) "thresholds sane" true (min_th > 0. && max_th = 3. *. min_th)
      | Netsim.Net.Droptail_q -> Alcotest.fail "expected RED queues")
    cfg.Scenarios.Paper_topology.backbone;
  let o = Scenarios.Paper_topology.run cfg in
  Alcotest.(check bool) "losses still occur under RED" true
    (Probe.Trace.losses o.Scenarios.Paper_topology.trace > 0)

let test_seed_reproducibility () =
  let run () =
    let o = Scenarios.Paper_topology.run (Scenarios.Presets.strongly_dcl ~duration:30. ~bw3:1e6 ()) in
    let tr = o.Scenarios.Paper_topology.trace in
    (Probe.Trace.losses tr, Probe.Trace.max_delay tr)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true (a = b)

let test_internet_path_skew_recovery () =
  let o = Scenarios.Internet.run ~duration:120. Scenarios.Internet.Adsl_from_usevilla in
  check_close 3e-6 "skew recovered within 3 ppm" o.Scenarios.Internet.skew_applied
    o.Scenarios.Internet.skew_estimated;
  (* Before repair the skewed trace's delays drift; after repair the
     spread matches the clean trace's within a millisecond. *)
  let spread t = Probe.Trace.max_delay t -. Probe.Trace.min_delay t in
  check_close 1e-3 "repaired spread = true spread"
    (spread o.Scenarios.Internet.trace)
    (spread o.Scenarios.Internet.repaired)

let test_internet_path_structure () =
  let o = Scenarios.Internet.run ~duration:240. Scenarios.Internet.Adsl_from_ufpr in
  let tr = o.Scenarios.Internet.trace in
  Alcotest.(check int) "15-hop path" 15 (Scenarios.Internet.hop_count Scenarios.Internet.Adsl_from_ufpr);
  Alcotest.(check bool) "light loss" true
    (o.Scenarios.Internet.loss_rate > 0. && o.Scenarios.Internet.loss_rate < 0.01);
  let shares = Dcl.Truth.loss_shares tr ~hop_count:15 in
  Alcotest.(check bool) "losses at the access bottleneck" true
    (shares.(o.Scenarios.Internet.bottleneck_hop) > 0.95)

let test_internet_snu_two_bottlenecks () =
  let o = Scenarios.Internet.run ~duration:240. Scenarios.Internet.Adsl_from_snu in
  let tr = o.Scenarios.Internet.trace in
  let shares = Dcl.Truth.loss_shares tr ~hop_count:20 in
  let main = shares.(o.Scenarios.Internet.bottleneck_hop) in
  let second = shares.(Option.get o.Scenarios.Internet.secondary_hop) in
  Alcotest.(check bool) "both congested links lose" true (main > 0.2 && second > 0.2);
  Alcotest.(check bool) "neither dominates at the 94% level" true
    (main < 0.94 && second < 0.94)

let () =
  Alcotest.run "scenarios"
    [
      ( "paper topology",
        [
          Alcotest.test_case "strongly: structure" `Slow test_strongly_preset_structure;
          Alcotest.test_case "strongly: identification" `Slow test_strongly_identification;
          Alcotest.test_case "weakly: structure" `Slow test_weakly_preset_structure;
          Alcotest.test_case "no dcl: structure" `Slow test_no_dcl_preset_structure;
          Alcotest.test_case "no dcl: truth rejects" `Slow test_no_dcl_truth_rejects;
          Alcotest.test_case "loss pairs" `Slow test_loss_pairs_in_preset;
          Alcotest.test_case "red variant" `Slow test_red_preset_runs;
          Alcotest.test_case "reproducibility" `Quick test_seed_reproducibility;
        ] );
      ( "internet",
        [
          Alcotest.test_case "skew recovery" `Slow test_internet_path_skew_recovery;
          Alcotest.test_case "path structure" `Slow test_internet_path_structure;
          Alcotest.test_case "snu two bottlenecks" `Slow test_internet_snu_two_bottlenecks;
        ] );
    ]

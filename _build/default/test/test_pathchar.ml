(* Tests for TTL/ICMP forwarding and the pathchar per-hop capacity
   estimator. *)

open Netsim

let check_close eps = Alcotest.(check (float eps))

let chain bandwidths =
  let sim = Sim.create ~seed:3 () in
  let net = Net.create sim in
  let n = Array.length bandwidths in
  let nodes = Array.init (n + 1) (fun i -> Net.add_node net (Printf.sprintf "n%d" i)) in
  Array.iteri
    (fun i bw ->
      ignore
        (Net.add_duplex net ~a:nodes.(i) ~b:nodes.(i + 1) ~bandwidth:bw ~delay:0.003
           ~capacity:200_000 ()))
    bandwidths;
  Net.compute_routes net;
  (sim, net, nodes)

(* --- TTL / ICMP --------------------------------------------------------- *)

let test_ttl_expiry_reply () =
  let sim, net, nodes = chain [| 1e6; 1e6; 1e6 |] in
  let got = ref None in
  Net.set_handler net ~node:nodes.(0) ~flow:5 (fun pkt -> got := Some pkt);
  Sim.at sim 0. (fun () ->
      Net.inject net
        (Packet.make ~id:0 ~flow:5 ~src:nodes.(0) ~dst:nodes.(3) ~size:500
           ~kind:Packet.Udp ~seq:42 ~sent_at:0. ~ttl:2 ()));
  Sim.run sim;
  match !got with
  | Some pkt ->
      Alcotest.(check bool) "kind" true (pkt.Packet.kind = Packet.Icmp_ttl_exceeded);
      Alcotest.(check int) "seq echoed" 42 pkt.Packet.seq;
      Alcotest.(check int) "reply from the second router" nodes.(2) pkt.Packet.src
  | None -> Alcotest.fail "no time-exceeded reply"

let test_ttl_sufficient_no_reply () =
  let sim, net, nodes = chain [| 1e6; 1e6; 1e6 |] in
  let replies = ref 0 and delivered = ref 0 in
  Net.set_handler net ~node:nodes.(0) ~flow:5 (fun _ -> incr replies);
  Net.set_handler net ~node:nodes.(3) ~flow:5 (fun _ -> incr delivered);
  Sim.at sim 0. (fun () ->
      Net.inject net
        (Packet.make ~id:0 ~flow:5 ~src:nodes.(0) ~dst:nodes.(3) ~size:500
           ~kind:Packet.Udp ~seq:0 ~sent_at:0. ~ttl:3 ()));
  Sim.run sim;
  Alcotest.(check int) "delivered" 1 !delivered;
  Alcotest.(check int) "no reply" 0 !replies

let test_ttl_default_is_ample () =
  let sim, net, nodes = chain (Array.make 10 1e6) in
  let delivered = ref 0 in
  Net.set_handler net ~node:nodes.(10) ~flow:1 (fun _ -> incr delivered);
  Sim.at sim 0. (fun () ->
      Net.inject net
        (Packet.make ~id:0 ~flow:1 ~src:nodes.(0) ~dst:nodes.(10) ~size:100
           ~kind:Packet.Udp ~seq:0 ~sent_at:0. ()));
  Sim.run sim;
  Alcotest.(check int) "10-hop delivery with default ttl" 1 !delivered

let test_ttl_invalid () =
  Alcotest.check_raises "non-positive ttl" (Invalid_argument "Packet.make: non-positive ttl")
    (fun () ->
      ignore
        (Packet.make ~id:0 ~flow:0 ~src:0 ~dst:1 ~size:10 ~kind:Packet.Udp ~seq:0
           ~sent_at:0. ~ttl:0 ()))

(* --- fit_min_line -------------------------------------------------------- *)

let test_fit_exact_line () =
  let points = List.map (fun s -> (s, 0.01 +. (2e-6 *. float_of_int s))) [ 100; 500; 900 ] in
  match Pathchar.fit_min_line points with
  | Some (slope, intercept) ->
      check_close 1e-12 "slope" 2e-6 slope;
      check_close 1e-9 "intercept" 0.01 intercept
  | None -> Alcotest.fail "no fit"

let test_fit_insufficient () =
  Alcotest.(check bool) "one point" true (Pathchar.fit_min_line [ (100, 0.1) ] = None);
  Alcotest.(check bool) "no points" true (Pathchar.fit_min_line [] = None)

(* --- end-to-end pathchar -------------------------------------------------- *)

let run_pathchar ?probes_per_size bandwidths =
  let sim, net, nodes = chain bandwidths in
  let hops = Array.length bandwidths in
  let result = ref None in
  Sim.at sim 0. (fun () ->
      Pathchar.run ?probes_per_size net ~src:nodes.(0) ~hops ~dst:nodes.(hops)
        ~k:(fun r -> result := Some r));
  Sim.run sim;
  match !result with Some r -> r | None -> Alcotest.fail "pathchar did not finish"

let test_pathchar_idle_chain () =
  let r = run_pathchar [| 10e6; 1e6; 5e6 |] in
  Array.iteri
    (fun i (h : Pathchar.hop) ->
      match h.Pathchar.capacity with
      | Some c ->
          let truth = [| 10e6; 1e6; 5e6 |].(i) in
          if abs_float (c -. truth) > 0.05 *. truth then
            Alcotest.failf "hop %d capacity %.2f Mb/s (expected %.2f)" (i + 1) (c /. 1e6)
              (truth /. 1e6)
      | None -> Alcotest.failf "hop %d: no capacity estimate" (i + 1))
    r.Pathchar.hops;
  Alcotest.(check (option int)) "narrow hop" (Some 2) r.Pathchar.narrow_hop

let test_pathchar_latency_estimates () =
  let r = run_pathchar [| 10e6; 1e6 |] in
  Array.iter
    (fun (h : Pathchar.hop) ->
      match h.Pathchar.latency with
      | Some l -> check_close 0.002 (Printf.sprintf "hop %d latency" h.Pathchar.index) 0.003 l
      | None -> Alcotest.fail "missing latency")
    r.Pathchar.hops

let test_pathchar_with_cross_traffic () =
  (* Moderate cross traffic on the narrow link: minimum filtering must
     still locate it. *)
  let sim, net, nodes = chain [| 10e6; 1e6; 5e6 |] in
  let src = Traffic.Udp.onoff net ~src:nodes.(1) ~dst:nodes.(2) ~rate:0.5e6 ~pkt_size:1000
      ~mean_on:0.2 ~mean_off:0.4 in
  Traffic.Udp.start src;
  let result = ref None in
  Sim.at sim 0.5 (fun () ->
      Pathchar.run ~probes_per_size:32 net ~src:nodes.(0) ~hops:3 ~dst:nodes.(3)
        ~k:(fun r -> result := Some r));
  Sim.run_until sim 300.;
  match !result with
  | None -> Alcotest.fail "pathchar did not finish"
  | Some r -> Alcotest.(check (option int)) "narrow hop found despite load" (Some 2)
                r.Pathchar.narrow_hop

let test_pathchar_replies_counted () =
  let r = run_pathchar ~probes_per_size:4 [| 1e6; 1e6 |] in
  Array.iter
    (fun (h : Pathchar.hop) ->
      Alcotest.(check int) "all probes answered on an idle chain" 20 h.Pathchar.replies)
    r.Pathchar.hops

let test_pathchar_invalid () =
  let _, net, nodes = chain [| 1e6 |] in
  Alcotest.check_raises "hops <= 0" (Invalid_argument "Pathchar.run: hops <= 0")
    (fun () -> Pathchar.run net ~src:nodes.(0) ~hops:0 ~dst:nodes.(1) ~k:(fun _ -> ()))

let () =
  Alcotest.run "pathchar"
    [
      ( "ttl",
        [
          Alcotest.test_case "expiry reply" `Quick test_ttl_expiry_reply;
          Alcotest.test_case "sufficient ttl" `Quick test_ttl_sufficient_no_reply;
          Alcotest.test_case "default ample" `Quick test_ttl_default_is_ample;
          Alcotest.test_case "invalid" `Quick test_ttl_invalid;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact line" `Quick test_fit_exact_line;
          Alcotest.test_case "insufficient points" `Quick test_fit_insufficient;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "idle chain capacities" `Quick test_pathchar_idle_chain;
          Alcotest.test_case "latency estimates" `Quick test_pathchar_latency_estimates;
          Alcotest.test_case "cross traffic" `Slow test_pathchar_with_cross_traffic;
          Alcotest.test_case "reply accounting" `Quick test_pathchar_replies_counted;
          Alcotest.test_case "invalid args" `Quick test_pathchar_invalid;
        ] );
    ]

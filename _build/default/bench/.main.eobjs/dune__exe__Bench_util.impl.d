bench/bench_util.ml: Array Dcl List Printf Probe Stats Stdlib String

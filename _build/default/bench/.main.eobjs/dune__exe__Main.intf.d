bench/main.mli:

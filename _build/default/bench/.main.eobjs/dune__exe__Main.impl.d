bench/main.ml: Analyze Array Bechamel Bench_util Benchmark Dcl Float Hashtbl Hmm List Measure Mmhd Option Pathchar Printf Probe Scenarios Staged Stats String Sys Test Time Toolkit Unix

(* Shared plumbing for the experiment harness: table rendering, PMF
   bar plots, and the shape-claim checklist that every experiment
   registers its assertions with. *)

let printf = Printf.printf

let section title =
  printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = printf "\n--- %s ---\n" title

(* --- shape-claim checklist --------------------------------------------- *)

let claims : (string * bool) list ref = ref []

let claim name ok =
  claims := (name, ok) :: !claims;
  printf "  [%s] %s\n" (if ok then "ok" else "FAILED") name

let claims_summary () =
  let all = List.rev !claims in
  let failed = List.filter (fun (_, ok) -> not ok) all in
  section "Shape-claim summary";
  printf "%d claims checked, %d failed\n" (List.length all) (List.length failed);
  List.iter (fun (name, _) -> printf "  FAILED: %s\n" name) failed;
  List.length failed = 0

(* --- rendering ----------------------------------------------------------- *)

let ms x = x *. 1000.

let bar p =
  let width = int_of_float (40. *. p +. 0.5) in
  String.make width '#'

let print_pmf ~label (pmf : float array) =
  printf "  %-14s" label;
  Array.iteri (fun j p -> if p > 0.0005 then printf " %d:%.3f" (j + 1) p) pmf;
  printf "\n"

let print_pmf_bars ~label (pmf : float array) =
  printf "  %s\n" label;
  Array.iteri (fun j p -> printf "    %2d | %-40s %.3f\n" (j + 1) (bar p) p) pmf

let verdict_to_string = function Dcl.Tests.Accept -> "accept" | Dcl.Tests.Reject -> "reject"

let conclusion_short = function
  | Dcl.Identify.Strongly_dominant -> "strong"
  | Dcl.Identify.Weakly_dominant -> "weak"
  | Dcl.Identify.No_dominant -> "none"

(* Simple aligned table printing. *)
let print_table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    printf "  ";
    List.iteri (fun c cell -> printf "%-*s  " (List.nth widths c) cell) row;
    printf "\n"
  in
  print_row header;
  printf "  %s\n" (String.concat "" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

(* --- analysis helpers ---------------------------------------------------- *)

(* Identification with the paper's defaults, plus a second fine-grained
   (M = 40) fit for the Q_max bound, as Section VI-A does. *)
let identify_with_fine_bound ?(params = Dcl.Identify.default_params) ~seed trace =
  let rng = Stats.Rng.create seed in
  let result = Dcl.Identify.run ~params ~rng trace in
  let fine_bound =
    match result.Dcl.Identify.conclusion with
    | Dcl.Identify.No_dominant -> None
    | Dcl.Identify.Strongly_dominant | Dcl.Identify.Weakly_dominant -> (
        try
          let fine = { params with Dcl.Identify.m = 40 } in
          let vqd40, _ = Dcl.Identify.fit_vqd ~params:fine ~rng trace in
          Some (Dcl.Bound.component_bound vqd40)
        with Invalid_argument _ | Failure _ -> None)
  in
  (result, fine_bound)

(* Observed (surviving-probe) queuing delay PMF over a scheme — the
   paper's "observed" curve in Fig. 5. *)
let observed_pmf scheme trace =
  let counts = Array.make scheme.Dcl.Discretize.m 0. in
  Array.iter
    (fun d ->
      let j = Dcl.Discretize.symbol_of_delay scheme d in
      counts.(j) <- counts.(j) +. 1.)
    (Probe.Trace.observed_delays trace);
  Stats.Histogram.normalize counts

(* Fraction of [reps] random [duration]-second segments of [trace] whose
   identification agrees with [expected] (Fig. 9 / Fig. 14 protocol).
   Unidentifiable segments (no loss) count as failures. *)
let correct_ratio ?(params = Dcl.Identify.default_params) ~seed ~reps ~duration ~expected
    trace =
  let rng = Stats.Rng.create seed in
  let hits = ref 0 in
  for _ = 1 to reps do
    let segment = Probe.Trace.random_segment rng trace ~duration in
    if Dcl.Identify.identifiable segment then begin
      let r = Dcl.Identify.run ~params ~rng segment in
      if r.Dcl.Identify.conclusion = expected then incr hits
    end
  done;
  float_of_int !hits /. float_of_int reps

(* Like [correct_ratio], but the per-segment criterion is the WDCL
   verdict alone (the paper's Fig. 14 consistency notion: segments are
   consistent when they accept/reject the weakly-dominant hypothesis
   like the full trace does). *)
let consistency_ratio_wdcl ?(params = Dcl.Identify.default_params) ~seed ~reps ~duration
    ~expected trace =
  let rng = Stats.Rng.create seed in
  let hits = ref 0 in
  for _ = 1 to reps do
    let segment = Probe.Trace.random_segment rng trace ~duration in
    if Dcl.Identify.identifiable segment then begin
      let r = Dcl.Identify.run ~params ~rng segment in
      if r.Dcl.Identify.wdcl.Dcl.Tests.verdict = expected then incr hits
    end
  done;
  float_of_int !hits /. float_of_int reps

(* Dominant symbol of a distribution: (1-based symbol, mass). *)
let peak (vqd : Dcl.Vqd.t) =
  let best = ref 0 in
  Array.iteri (fun j p -> if p > vqd.Dcl.Vqd.pmf.(!best) then best := j) vqd.Dcl.Vqd.pmf;
  (!best + 1, vqd.Dcl.Vqd.pmf.(!best))

bin/dcl_pathchar.mli:

bin/dcl_sim.mli:

bin/dcl_sim.ml: Arg Array Cmd Cmdliner Dcl Format List Printf Probe Scenarios String Term

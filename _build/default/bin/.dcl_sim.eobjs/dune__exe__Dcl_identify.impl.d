bin/dcl_identify.ml: Arg Array Cmd Cmdliner Dcl Format Printf Probe Stats Term

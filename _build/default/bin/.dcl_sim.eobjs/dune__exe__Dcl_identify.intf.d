bin/dcl_identify.mli:

bin/dcl_pathchar.ml: Arg Array Cmd Cmdliner List Pathchar Printf Scenarios String Term

(* Unit, integration, and property tests for the discrete-event network
   simulator. *)

open Netsim

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let mk_packet sim ~src ~dst ?(size = 1000) ?(flow = 0) ?(seq = 0) () =
  Packet.make ~id:(Sim.fresh_packet_id sim) ~flow ~src ~dst ~size ~kind:Packet.Udp ~seq
    ~sent_at:(Sim.now sim) ()

(* --- Eventq ------------------------------------------------------------ *)

let test_eventq_order () =
  let q = Eventq.create () in
  Eventq.push q ~time:3. "c";
  Eventq.push q ~time:1. "a";
  Eventq.push q ~time:2. "b";
  let pops = List.init 3 (fun _ -> Option.get (Eventq.pop q)) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.map snd pops);
  Alcotest.(check bool) "empty after" true (Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  List.iter (fun s -> Eventq.push q ~time:1. s) [ "x"; "y"; "z" ];
  let pops = List.init 3 (fun _ -> snd (Option.get (Eventq.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] pops

let test_eventq_peek () =
  let q = Eventq.create () in
  Alcotest.(check (option (float 0.))) "empty peek" None (Eventq.peek_time q);
  Eventq.push q ~time:5. ();
  Alcotest.(check (option (float 0.))) "peek" (Some 5.) (Eventq.peek_time q);
  Alcotest.(check int) "length" 1 (Eventq.length q)

let prop_eventq_sorted =
  QCheck.Test.make ~name:"pops are time-sorted" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (float_bound_inclusive 1000.))
    (fun times ->
      let q = Eventq.create () in
      List.iteri (fun i t -> Eventq.push q ~time:t i) times;
      let rec drain last =
        match Eventq.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Sim --------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 2. (fun () -> log := "b" :: !log);
  Sim.at sim 1. (fun () -> log := "a" :: !log);
  Sim.after sim 3. (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3. (Sim.now sim)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.at sim 1. (fun () -> incr fired);
  Sim.at sim 2. (fun () -> incr fired);
  Sim.at sim 5. (fun () -> incr fired);
  Sim.run_until sim 2.;
  Alcotest.(check int) "events at or before horizon" 2 !fired;
  check_float "clock at horizon" 2. (Sim.now sim);
  Sim.run_until sim 10.;
  Alcotest.(check int) "remaining" 3 !fired

let test_sim_past_scheduling () =
  let sim = Sim.create () in
  Sim.at sim 5. (fun () -> ());
  Sim.run sim;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       Sim.at sim 1. (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 1. (fun () ->
      log := "outer" :: !log;
      Sim.after sim 1. (fun () -> log := "inner" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "time" 2. (Sim.now sim)

let test_sim_fresh_ids () =
  let sim = Sim.create () in
  Alcotest.(check int) "packet ids dense" 0 (Sim.fresh_packet_id sim);
  Alcotest.(check int) "packet ids dense" 1 (Sim.fresh_packet_id sim);
  Alcotest.(check int) "flow ids dense" 0 (Sim.fresh_flow_id sim)

(* --- Packet ------------------------------------------------------------ *)

let test_packet_invalid_size () =
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Packet.make: non-positive size") (fun () ->
      ignore
        (Packet.make ~id:0 ~flow:0 ~src:0 ~dst:1 ~size:0 ~kind:Packet.Udp ~seq:0
           ~sent_at:0. ()))

(* --- Link -------------------------------------------------------------- *)

(* One-link harness: src node 0, dst node 1, recording deliveries. *)
let link_harness ?(bandwidth = 1e6) ?(capacity = 10_000) ?(policy = Link.Droptail)
    ?(delay = 0.01) () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth ~delay ~capacity ~policy ()
  in
  let delivered = ref [] in
  Link.set_deliver link (fun pkt -> delivered := (Sim.now sim, pkt) :: !delivered);
  (sim, link, delivered)

let test_link_single_packet_delay () =
  let sim, link, delivered = link_harness () in
  Sim.at sim 0. (fun () -> Link.offer link (mk_packet sim ~src:0 ~dst:1 ~size:1000 ()));
  Sim.run sim;
  match !delivered with
  | [ (t, _) ] ->
      (* 1000 bytes at 1 Mb/s = 8 ms transmission + 10 ms propagation. *)
      check_float "delay = tx + prop" 0.018 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_link_fifo_and_serialization () =
  let sim, link, delivered = link_harness () in
  Sim.at sim 0. (fun () ->
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ~seq:0 ());
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ~seq:1 ()));
  Sim.run sim;
  match List.rev !delivered with
  | [ (t1, p1); (t2, p2) ] ->
      Alcotest.(check int) "fifo order" 0 p1.Packet.seq;
      Alcotest.(check int) "fifo order" 1 p2.Packet.seq;
      check_float "first" 0.018 t1;
      check_float "second waits for serialization" 0.026 t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_link_droptail_overflow () =
  (* Capacity 2000 bytes of waiting room with mtu 1040: waiting room is
     full for a new arrival once 1000 bytes wait (1000 + 1040 > 2000).
     First packet goes into service, second waits, third drops. *)
  let sim, link, delivered = link_harness ~capacity:2000 () in
  Sim.at sim 0. (fun () ->
      for i = 0 to 2 do
        Link.offer link (mk_packet sim ~src:0 ~dst:1 ~seq:i ())
      done);
  Sim.run sim;
  Alcotest.(check int) "arrivals" 3 (Link.arrivals link);
  Alcotest.(check int) "drops" 1 (Link.drops link);
  Alcotest.(check int) "delivered" 2 (List.length !delivered);
  check_close 1e-9 "loss rate" (1. /. 3.) (Link.loss_rate link)

let test_link_mtu_room_rule () =
  (* A 10-byte probe must be dropped exactly when a full-size packet
     would be (ns packet-mode emulation). *)
  let sim, link, _ = link_harness ~capacity:2000 () in
  Sim.at sim 0. (fun () ->
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ());
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ());
      check_float "probe sees full queue" 1. (Link.would_drop link ~size:10);
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ~size:10 ()));
  Sim.run sim;
  Alcotest.(check int) "probe dropped" 1 (Link.drops link)

let test_link_unfinished_work () =
  let sim, link, _ = link_harness ~capacity:100_000 () in
  Sim.at sim 0. (fun () ->
      check_float "idle link" 0. (Link.unfinished_work link);
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ());
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ());
      (* 2 x 8 ms of work just queued. *)
      check_close 1e-9 "two packets of work" 0.016 (Link.unfinished_work link));
  Sim.at sim 0.004 (fun () ->
      (* Half of the first packet transmitted. *)
      check_close 1e-9 "work drains at line rate" 0.012 (Link.unfinished_work link));
  Sim.run sim;
  check_float "drained" 0. (Link.unfinished_work link)

let test_link_max_queuing_delay () =
  let _, link, _ = link_harness ~bandwidth:1e6 ~capacity:10_000 () in
  check_float "capacity drain time" 0.08 (Link.max_queuing_delay link)

let test_link_busy_time () =
  let sim, link, _ = link_harness () in
  Sim.at sim 0. (fun () ->
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ());
      Link.offer link (mk_packet sim ~src:0 ~dst:1 ()));
  Sim.run sim;
  check_close 1e-9 "busy time = 2 transmissions" 0.016 (Link.busy_time link)

let test_link_conservation () =
  (* arrivals = departures + drops once the link drains. *)
  let sim, link, _ = link_harness ~capacity:3000 () in
  let rng = Stats.Rng.create 99 in
  for i = 0 to 199 do
    Sim.at sim (0.005 *. float_of_int i +. Stats.Rng.float rng *. 0.004) (fun () ->
        Link.offer link (mk_packet sim ~src:0 ~dst:1 ()))
  done;
  Sim.run sim;
  Alcotest.(check int) "conservation" (Link.arrivals link)
    (Link.departures link + Link.drops link)

let test_link_invalid_args () =
  let sim = Sim.create () in
  let mk ~bandwidth ~delay ~capacity () =
    ignore
      (Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth ~delay ~capacity
         ~policy:Link.Droptail ())
  in
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Link.create: bandwidth <= 0")
    (mk ~bandwidth:0. ~delay:0.1 ~capacity:100);
  Alcotest.check_raises "bad delay" (Invalid_argument "Link.create: negative delay")
    (mk ~bandwidth:1e6 ~delay:(-1.) ~capacity:100);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Link.create: capacity <= 0")
    (mk ~bandwidth:1e6 ~delay:0.1 ~capacity:0)

(* --- RED --------------------------------------------------------------- *)

let test_red_no_drop_below_min_th () =
  let red = Red.create ~min_th:5. ~max_th:15. ~mean_pkt_time:0.008 () in
  let rng = Stats.Rng.create 1 in
  for i = 0 to 3000 do
    if Red.decide red ~rng ~qlen:2 ~now:(0.001 *. float_of_int i) then
      Alcotest.fail "dropped below min_th"
  done;
  Alcotest.(check bool) "avg tracks queue" true (Red.avg red > 1.5 && Red.avg red < 2.5)

let test_red_always_drop_above_2maxth () =
  let red = Red.create ~min_th:2. ~max_th:4. ~mean_pkt_time:0.008 () in
  let rng = Stats.Rng.create 1 in
  (* Force the EWMA up with a long stream of large queue samples. *)
  for i = 0 to 5000 do
    ignore (Red.decide red ~rng ~qlen:50 ~now:(0.001 *. float_of_int i))
  done;
  Alcotest.(check bool) "avg above gentle region" true (Red.avg red > 8.);
  Alcotest.(check bool) "drops with certainty" true
    (Red.decide red ~rng ~qlen:50 ~now:6.)

let test_red_ramp_probability () =
  let red = Red.create ~min_th:5. ~max_th:15. ~initial_max_p:0.1 ~mean_pkt_time:0.008 () in
  let rng = Stats.Rng.create 2 in
  (* Drive avg to ~10 (mid-ramp). *)
  for i = 0 to 5000 do
    ignore (Red.decide red ~rng ~qlen:10 ~now:(0.0001 *. float_of_int i))
  done;
  let p = Red.drop_probability red ~qlen:10 ~now:1. in
  Alcotest.(check bool) "mid-ramp probability positive and below max_p+eps" true
    (p > 0. && p <= Red.max_p red +. 1e-9)

let test_red_adaptation_bounds () =
  let red = Red.create ~min_th:5. ~max_th:15. ~mean_pkt_time:0.008 () in
  let rng = Stats.Rng.create 3 in
  for i = 0 to 20_000 do
    ignore (Red.decide red ~rng ~qlen:30 ~now:(0.01 *. float_of_int i))
  done;
  Alcotest.(check bool) "max_p stays within [0.01, 0.5]" true
    (Red.max_p red >= 0.01 -. 1e-9 && Red.max_p red <= 0.5 +. 1e-9)

let test_red_idle_aging () =
  let red = Red.create ~min_th:5. ~max_th:15. ~mean_pkt_time:0.001 () in
  let rng = Stats.Rng.create 4 in
  for i = 0 to 2000 do
    ignore (Red.decide red ~rng ~qlen:12 ~now:(0.001 *. float_of_int i))
  done;
  let before = Red.avg red in
  Red.note_idle_start red ~now:2.;
  ignore (Red.decide red ~rng ~qlen:0 ~now:4.);
  Alcotest.(check bool) "idle period decays the average" true (Red.avg red < before /. 2.)

let test_red_invalid () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Red.create: need 0 < min_th < max_th") (fun () ->
      ignore (Red.create ~min_th:5. ~max_th:5. ~mean_pkt_time:0.01 ()))

(* --- Net --------------------------------------------------------------- *)

let chain_net n_nodes =
  let sim = Sim.create () in
  let net = Net.create sim in
  let nodes = Array.init n_nodes (fun i -> Net.add_node net (Printf.sprintf "n%d" i)) in
  let links =
    Array.init (n_nodes - 1) (fun i ->
        fst
          (Net.add_duplex net ~a:nodes.(i) ~b:nodes.(i + 1) ~bandwidth:1e6 ~delay:0.001
             ~capacity:100_000 ()))
  in
  Net.compute_routes net;
  (sim, net, nodes, links)

let test_net_end_to_end_delivery () =
  let sim, net, nodes, _ = chain_net 4 in
  let got = ref None in
  Net.set_handler net ~node:nodes.(3) ~flow:7 (fun pkt -> got := Some (Sim.now sim, pkt));
  Sim.at sim 0. (fun () ->
      Net.inject net
        (Packet.make ~id:0 ~flow:7 ~src:nodes.(0) ~dst:nodes.(3) ~size:1000
           ~kind:Packet.Udp ~seq:0 ~sent_at:0. ()));
  Sim.run sim;
  match !got with
  | Some (t, pkt) ->
      Alcotest.(check int) "right packet" 0 pkt.Packet.seq;
      (* 3 hops x (8 ms tx + 1 ms prop). *)
      check_close 1e-9 "delivery time" 0.027 t
  | None -> Alcotest.fail "packet not delivered"

let test_net_path_links () =
  let _, net, nodes, links = chain_net 4 in
  let path = Net.path_links net ~src:nodes.(0) ~dst:nodes.(3) in
  Alcotest.(check int) "3 links" 3 (List.length path);
  Alcotest.(check (list int)) "right links"
    (List.map Link.id (Array.to_list links))
    (List.map Link.id path)

let test_net_default_handler () =
  let sim, net, nodes, _ = chain_net 2 in
  let count = ref 0 in
  Net.set_default_handler net ~node:nodes.(1) (fun _ -> incr count);
  Sim.at sim 0. (fun () ->
      Net.inject net
        (Packet.make ~id:0 ~flow:12345 ~src:nodes.(0) ~dst:nodes.(1) ~size:100
           ~kind:Packet.Udp ~seq:0 ~sent_at:0. ()));
  Sim.run sim;
  Alcotest.(check int) "default handler used" 1 !count

let test_net_no_route () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" in
  let b = Net.add_node net "b" in
  Net.compute_routes net;
  Alcotest.(check bool) "unroutable raises" true
    (try
       Net.inject net
         (Packet.make ~id:0 ~flow:0 ~src:a ~dst:b ~size:10 ~kind:Packet.Udp ~seq:0
            ~sent_at:0. ());
       false
     with Failure _ -> true)

let test_net_stale_routes () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" in
  let b = Net.add_node net "b" in
  ignore (Net.add_duplex net ~a ~b ~bandwidth:1e6 ~delay:0.001 ~capacity:1000 ());
  Alcotest.(check bool) "stale routes raise" true
    (try
       Net.inject net
         (Packet.make ~id:0 ~flow:0 ~src:a ~dst:b ~size:10 ~kind:Packet.Udp ~seq:0
            ~sent_at:0. ());
       false
     with Failure _ -> true)

let test_net_shortest_path () =
  (* Diamond: a-b-d and a-c-e-d; routing must pick the 2-hop branch. *)
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  let c = Net.add_node net "c" and e = Net.add_node net "e" in
  let d = Net.add_node net "d" in
  let add x y = ignore (Net.add_duplex net ~a:x ~b:y ~bandwidth:1e6 ~delay:0.001 ~capacity:10_000 ()) in
  add a b;
  add b d;
  add a c;
  add c e;
  add e d;
  Net.compute_routes net;
  Alcotest.(check int) "min-hop route" 2 (List.length (Net.path_links net ~src:a ~dst:d))

let test_net_node_names () =
  let _, net, nodes, _ = chain_net 2 in
  Alcotest.(check string) "name" "n0" (Net.node_name net nodes.(0));
  Alcotest.(check int) "count" 2 (Net.node_count net);
  Alcotest.check_raises "bad id" (Invalid_argument "Net.node_name: bad node id")
    (fun () -> ignore (Net.node_name net 99))

(* Packet conservation across a congested chain under random load. *)
let test_net_conservation_under_load () =
  let sim, net, nodes, links = chain_net 3 in
  let received = ref 0 in
  Net.set_default_handler net ~node:nodes.(2) (fun _ -> incr received);
  let rng = Stats.Rng.create 5 in
  let sent = 500 in
  for _ = 1 to sent do
    let t = Stats.Rng.float rng *. 2. in
    Sim.at sim t (fun () ->
        Net.inject net
          (Packet.make ~id:(Sim.fresh_packet_id sim) ~flow:0 ~src:nodes.(0)
             ~dst:nodes.(2) ~size:1000 ~kind:Packet.Udp ~seq:0 ~sent_at:t ()))
  done;
  Sim.run sim;
  let dropped = Array.fold_left (fun acc l -> acc + Link.drops l) 0 links in
  Alcotest.(check int) "sent = received + dropped" sent (!received + dropped)

let qcheck_cases = List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_eventq_sorted ]

let () =
  Alcotest.run "netsim"
    [
      ( "eventq",
        [
          Alcotest.test_case "order" `Quick test_eventq_order;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "peek/length" `Quick test_eventq_peek;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "past scheduling" `Quick test_sim_past_scheduling;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "fresh ids" `Quick test_sim_fresh_ids;
        ] );
      ("packet", [ Alcotest.test_case "invalid size" `Quick test_packet_invalid_size ]);
      ( "link",
        [
          Alcotest.test_case "single packet delay" `Quick test_link_single_packet_delay;
          Alcotest.test_case "fifo + serialization" `Quick test_link_fifo_and_serialization;
          Alcotest.test_case "droptail overflow" `Quick test_link_droptail_overflow;
          Alcotest.test_case "mtu-room rule" `Quick test_link_mtu_room_rule;
          Alcotest.test_case "unfinished work" `Quick test_link_unfinished_work;
          Alcotest.test_case "max queuing delay" `Quick test_link_max_queuing_delay;
          Alcotest.test_case "busy time" `Quick test_link_busy_time;
          Alcotest.test_case "conservation" `Quick test_link_conservation;
          Alcotest.test_case "invalid args" `Quick test_link_invalid_args;
        ] );
      ( "red",
        [
          Alcotest.test_case "no drop below min_th" `Quick test_red_no_drop_below_min_th;
          Alcotest.test_case "certain drop above 2*max_th" `Quick
            test_red_always_drop_above_2maxth;
          Alcotest.test_case "ramp probability" `Quick test_red_ramp_probability;
          Alcotest.test_case "adaptation bounds" `Quick test_red_adaptation_bounds;
          Alcotest.test_case "idle aging" `Quick test_red_idle_aging;
          Alcotest.test_case "invalid" `Quick test_red_invalid;
        ] );
      ( "net",
        [
          Alcotest.test_case "end-end delivery" `Quick test_net_end_to_end_delivery;
          Alcotest.test_case "path links" `Quick test_net_path_links;
          Alcotest.test_case "default handler" `Quick test_net_default_handler;
          Alcotest.test_case "no route" `Quick test_net_no_route;
          Alcotest.test_case "stale routes" `Quick test_net_stale_routes;
          Alcotest.test_case "shortest path" `Quick test_net_shortest_path;
          Alcotest.test_case "node names" `Quick test_net_node_names;
          Alcotest.test_case "conservation under load" `Quick
            test_net_conservation_under_load;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for the sketch triage layer: count-min overestimation (the
   bound the gate's loss masking relies on), decay-table/EWMA coasting
   identities, Robbins-Monro quantile-tracker monotonicity and
   convergence, and the promotion/demotion hysteresis machine. *)

let check_float = Alcotest.(check (float 1e-12))

(* --- count-min sketch --------------------------------------------------- *)

(* The guarantee everything downstream leans on: for every key,
   query >= true count — with halving applied to the truth as floor
   division at the same points, since floor((a+b)/2) >= floor(a/2) +
   floor(b/2) preserves the bound.  A zero estimate therefore proves a
   loss-free window. *)
let prop_cms_overestimates_only =
  QCheck.Test.make ~name:"count-min only ever overestimates" ~count:100
    QCheck.(pair small_int (small_list (pair (int_bound 63) (int_bound 9))))
    (fun (seed, ops) ->
      let cms = Sketch.Count_min.create ~width:16 ~seed () in
      let truth = Array.make 64 0 in
      List.iteri
        (fun i (key, n) ->
          Sketch.Count_min.add cms key n;
          truth.(key) <- truth.(key) + n;
          (* Interleave halvings so the decayed bound is exercised. *)
          if i mod 5 = 4 then begin
            Sketch.Count_min.halve cms;
            Array.iteri (fun k v -> truth.(k) <- v / 2) truth
          end)
        ops;
      Array.for_all
        (fun k -> Sketch.Count_min.query cms k >= truth.(k))
        (Array.init 64 (fun k -> k)))

let test_cms_exact_when_sparse () =
  (* With far more cells than keys the estimate is almost surely exact;
     this pins the plumbing (row indexing, min over rows). *)
  let cms = Sketch.Count_min.create ~width:1024 ~seed:42 () in
  Sketch.Count_min.add cms 7 3;
  Sketch.Count_min.add cms 7 2;
  Sketch.Count_min.add cms 900 1;
  Alcotest.(check int) "key 7" 5 (Sketch.Count_min.query cms 7);
  Alcotest.(check int) "key 900" 1 (Sketch.Count_min.query cms 900);
  Alcotest.(check int) "untouched key" 0 (Sketch.Count_min.query cms 3);
  Sketch.Count_min.halve cms;
  Alcotest.(check int) "halved (floor)" 2 (Sketch.Count_min.query cms 7);
  Sketch.Count_min.clear cms;
  Alcotest.(check int) "cleared" 0 (Sketch.Count_min.query cms 7)

let test_cms_deterministic () =
  let run () =
    let cms = Sketch.Count_min.create ~width:32 ~seed:0xBEEF () in
    for k = 0 to 99 do
      Sketch.Count_min.add cms k (k mod 7)
    done;
    Array.init 100 (fun k -> Sketch.Count_min.query cms k)
  in
  Alcotest.(check (array int)) "equal seeds replay bitwise" (run ()) (run ())

let test_cms_validation () =
  Alcotest.check_raises "width zero"
    (Invalid_argument "Sketch.Count_min.create: width must be positive")
    (fun () -> ignore (Sketch.Count_min.create ~width:0 ~seed:1 ()));
  Alcotest.check_raises "rows zero"
    (Invalid_argument "Sketch.Count_min.create: rows must be positive")
    (fun () -> ignore (Sketch.Count_min.create ~rows:0 ~width:8 ~seed:1 ()));
  let cms = Sketch.Count_min.create ~width:5 ~seed:1 () in
  Alcotest.(check int) "width rounds up to a power of two" 8
    (Sketch.Count_min.width cms);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Sketch.Count_min.add: count must be non-negative")
    (fun () -> Sketch.Count_min.add cms 0 (-1))

(* --- decay table -------------------------------------------------------- *)

let test_decay_table_matches_iterated_product () =
  let t = Sketch.Estimators.Decay_table.make ~factor:0.9 () in
  let acc = ref 1. in
  for k = 0 to 64 do
    (* Bitwise, not approximate: the table is built by the same
       left-to-right multiplication a per-epoch decay loop performs. *)
    Alcotest.(check (float 0.))
      (Printf.sprintf "0.9^%d" k)
      !acc
      (Sketch.Estimators.Decay_table.pow t k);
    acc := !acc *. 0.9
  done;
  check_float "clamps past max_pow"
    (Sketch.Estimators.Decay_table.pow t 64)
    (Sketch.Estimators.Decay_table.pow t 1000)

let test_decay_table_validation () =
  Alcotest.check_raises "factor above one"
    (Invalid_argument "Sketch.Estimators.Decay_table.make: factor must be in [0, 1]")
    (fun () ->
      ignore (Sketch.Estimators.Decay_table.make ~factor:1.5 ()));
  let t = Sketch.Estimators.Decay_table.make ~factor:0.5 () in
  Alcotest.check_raises "negative power"
    (Invalid_argument "Sketch.Estimators.Decay_table.pow: negative power")
    (fun () -> ignore (Sketch.Estimators.Decay_table.pow t (-1) : float))

(* --- loss EWMA ---------------------------------------------------------- *)

(* Coasting k epochs through the table is the same as k explicit
   zero-updates, up to float multiplication order. *)
let prop_ewma_coast_equals_zero_updates =
  QCheck.Test.make ~name:"ewma coast = k zero-updates" ~count:200
    QCheck.(pair (float_range 0.01 1.) (int_range 0 64))
    (fun (x0, k) ->
      let alpha = 0.15 in
      let table = Sketch.Estimators.Decay_table.make ~factor:(1. -. alpha) () in
      let a = Sketch.Estimators.Ewma.make ~alpha in
      let b = Sketch.Estimators.Ewma.make ~alpha in
      Sketch.Estimators.Ewma.update a x0;
      Sketch.Estimators.Ewma.update b x0;
      Sketch.Estimators.Ewma.coast a table k;
      for _ = 1 to k do
        Sketch.Estimators.Ewma.update b 0.
      done;
      Stats.Float_cmp.approx_eq ~eps:1e-12
        (Sketch.Estimators.Ewma.value a)
        (Sketch.Estimators.Ewma.value b))

let test_ewma_priming_and_convergence () =
  let e = Sketch.Estimators.Ewma.make ~alpha:0.2 in
  Alcotest.(check bool) "unprimed" false (Sketch.Estimators.Ewma.primed e);
  check_float "zero before the first update" 0. (Sketch.Estimators.Ewma.value e);
  Sketch.Estimators.Ewma.update e 0.7;
  check_float "first update primes directly" 0.7 (Sketch.Estimators.Ewma.value e);
  for _ = 1 to 200 do
    Sketch.Estimators.Ewma.update e 0.3
  done;
  Alcotest.(check (float 1e-6)) "converges to the constant input" 0.3
    (Sketch.Estimators.Ewma.value e);
  (* Coasting an unprimed EWMA stays a no-op. *)
  let table = Sketch.Estimators.Decay_table.make ~factor:0.8 () in
  let fresh = Sketch.Estimators.Ewma.make ~alpha:0.2 in
  Sketch.Estimators.Ewma.coast fresh table 5;
  Alcotest.(check bool) "coast does not prime" false
    (Sketch.Estimators.Ewma.primed fresh)

let test_ewma_validation () =
  Alcotest.check_raises "alpha zero"
    (Invalid_argument "Sketch.Estimators.Ewma.make: alpha must be in (0, 1]")
    (fun () -> ignore (Sketch.Estimators.Ewma.make ~alpha:0.))

(* --- quantile tracker --------------------------------------------------- *)

(* Monotone by construction: an observation above the estimate can only
   raise it, one at or below can only lower it (and never outside
   [lo, hi]). *)
let prop_quantile_update_monotone =
  QCheck.Test.make ~name:"quantile update moves toward the observation"
    ~count:300
    QCheck.(pair (small_list (float_range 0. 4.)) (float_range 0. 4.))
    (fun (warm, y) ->
      let q = Sketch.Estimators.Quantile.make ~p:0.75 ~lo:0. ~hi:4. () in
      List.iter (Sketch.Estimators.Quantile.update q) warm;
      let before = Sketch.Estimators.Quantile.value q in
      Sketch.Estimators.Quantile.update q y;
      let after = Sketch.Estimators.Quantile.value q in
      let ok_dir =
        if Sketch.Estimators.Quantile.count q = 1 then true
          (* first observation primes the estimate directly *)
        else if Stats.Float_cmp.gt y before then Stats.Float_cmp.geq after before
        else Stats.Float_cmp.leq after before
      in
      ok_dir
      && Stats.Float_cmp.geq after 0.
      && Stats.Float_cmp.leq after 4.
      && Stats.Float_cmp.geq (Sketch.Estimators.Quantile.elevation q) 0.
      && Stats.Float_cmp.leq (Sketch.Estimators.Quantile.elevation q) 1.)

let test_quantile_converges () =
  (* Uniform draws over the symbol range: the p75 of uniform [0, 4] is
     3; the tracker should land nearby with the 1/n-quantized gains. *)
  let q = Sketch.Estimators.Quantile.make ~p:0.75 ~lo:0. ~hi:4. () in
  let rng = Stats.Rng.create 1234 in
  for _ = 1 to 5000 do
    Sketch.Estimators.Quantile.update q (4. *. Stats.Rng.float rng)
  done;
  Alcotest.(check (float 0.35)) "p75 of uniform [0,4]" 3.
    (Sketch.Estimators.Quantile.value q);
  Alcotest.(check (float 0.1)) "elevation = value / range" 0.75
    (Sketch.Estimators.Quantile.elevation q)

let test_quantile_concentrated_input () =
  (* All mass at one symbol: the estimate hovers at the symbol within
     the tracker's steady-state oscillation (ties step downward by
     step * (1 - p), ~0.008 at this count), and elevation reads the
     symbol's height — the drift signal the gate thresholds. *)
  let q = Sketch.Estimators.Quantile.make ~p:0.75 ~lo:0. ~hi:4. () in
  for _ = 1 to 500 do
    Sketch.Estimators.Quantile.update q 4.
  done;
  Alcotest.(check (float 0.02)) "pins to the constant input" 4.
    (Sketch.Estimators.Quantile.value q);
  Alcotest.(check (float 0.02)) "full elevation" 1.
    (Sketch.Estimators.Quantile.elevation q)

let test_quantile_clamps () =
  let q = Sketch.Estimators.Quantile.make ~p:0.5 ~lo:0. ~hi:4. () in
  Sketch.Estimators.Quantile.update q 100.;
  Alcotest.(check bool) "primed value clamped" true
    (Stats.Float_cmp.leq (Sketch.Estimators.Quantile.value q) 4.);
  for _ = 1 to 50 do
    Sketch.Estimators.Quantile.update q (-100.)
  done;
  Alcotest.(check bool) "driven value clamped at lo" true
    (Stats.Float_cmp.geq (Sketch.Estimators.Quantile.value q) 0.)

let test_quantile_validation () =
  Alcotest.check_raises "p at the boundary"
    (Invalid_argument "Sketch.Estimators.Quantile.make: p must be in (0, 1)")
    (fun () ->
      ignore (Sketch.Estimators.Quantile.make ~p:1. ~lo:0. ~hi:1. ()));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Sketch.Estimators.Quantile.make: lo must be below hi")
    (fun () ->
      ignore (Sketch.Estimators.Quantile.make ~p:0.5 ~lo:1. ~hi:1. ()))

(* --- gate hysteresis ---------------------------------------------------- *)

let step cfg g ~suspect ~calm ~settled =
  Sketch.Gate.step cfg g ~suspect ~calm ~settled

let test_gate_promotes_after_exactly_h () =
  let cfg = Sketch.Gate.config ~promote_after:3 () in
  let g = Sketch.Gate.create () in
  Alcotest.(check bool) "starts quiet" false (Sketch.Gate.promoted g);
  Alcotest.(check bool) "epoch 1 stays" true
    (step cfg g ~suspect:true ~calm:false ~settled:false = Sketch.Gate.Stay);
  Alcotest.(check bool) "epoch 2 stays" true
    (step cfg g ~suspect:true ~calm:false ~settled:false = Sketch.Gate.Stay);
  Alcotest.(check bool) "epoch 3 promotes" true
    (step cfg g ~suspect:true ~calm:false ~settled:false = Sketch.Gate.Promote);
  Alcotest.(check bool) "now promoted" true (Sketch.Gate.promoted g)

let test_gate_suspect_gap_resets_streak () =
  let cfg = Sketch.Gate.config ~promote_after:2 () in
  let g = Sketch.Gate.create () in
  ignore (step cfg g ~suspect:true ~calm:false ~settled:false);
  ignore (step cfg g ~suspect:false ~calm:true ~settled:false);
  Alcotest.(check int) "gap cleared the streak" 0 (Sketch.Gate.streak g);
  Alcotest.(check bool) "needs the full run again" true
    (step cfg g ~suspect:true ~calm:false ~settled:false = Sketch.Gate.Stay);
  Alcotest.(check bool) "second consecutive promotes" true
    (step cfg g ~suspect:true ~calm:false ~settled:false = Sketch.Gate.Promote)

let test_gate_demotion_needs_calm_and_settled () =
  let cfg = Sketch.Gate.config ~promote_after:1 ~demote_after:2 () in
  let g = Sketch.Gate.create () in
  ignore (step cfg g ~suspect:true ~calm:false ~settled:false);
  Alcotest.(check bool) "promoted" true (Sketch.Gate.promoted g);
  (* Calm without a settled no-dominant verdict never demotes. *)
  for _ = 1 to 5 do
    Alcotest.(check bool) "calm alone stays" true
      (step cfg g ~suspect:false ~calm:true ~settled:false = Sketch.Gate.Stay)
  done;
  (* Calm and settled, but interrupted: the streak starts over. *)
  ignore (step cfg g ~suspect:false ~calm:true ~settled:true);
  ignore (step cfg g ~suspect:true ~calm:false ~settled:true);
  Alcotest.(check bool) "interruption resets" true
    (step cfg g ~suspect:false ~calm:true ~settled:true = Sketch.Gate.Stay);
  Alcotest.(check bool) "second consecutive demotes" true
    (step cfg g ~suspect:false ~calm:true ~settled:true = Sketch.Gate.Demote);
  Alcotest.(check bool) "back to quiet" false (Sketch.Gate.promoted g)

let test_gate_signal_thresholds () =
  let cfg =
    Sketch.Gate.config ~loss_threshold:0.2 ~drift_threshold:0.75
      ~demote_margin:0.8 ()
  in
  Alcotest.(check bool) "loss at threshold is suspect" true
    (Sketch.Gate.suspect cfg ~loss:0.2 ~drift:0.);
  Alcotest.(check bool) "drift at threshold is suspect" true
    (Sketch.Gate.suspect cfg ~loss:0. ~drift:0.75);
  Alcotest.(check bool) "both below is not suspect" false
    (Sketch.Gate.suspect cfg ~loss:0.19 ~drift:0.74);
  Alcotest.(check bool) "inside the margin band is not calm" false
    (Sketch.Gate.calm cfg ~loss:0.17 ~drift:0.);
  Alcotest.(check bool) "below both margins is calm" true
    (Sketch.Gate.calm cfg ~loss:0.15 ~drift:0.5)

let test_gate_config_validation () =
  Alcotest.check_raises "promote_after zero"
    (Invalid_argument "Sketch.Gate.config: promote_after must be positive")
    (fun () -> ignore (Sketch.Gate.config ~promote_after:0 ()));
  Alcotest.check_raises "margin above one"
    (Invalid_argument "Sketch.Gate.config: demote_margin must be in [0, 1]")
    (fun () -> ignore (Sketch.Gate.config ~demote_margin:1.5 ()))

let () =
  Alcotest.run "sketch"
    [
      ( "count-min",
        [
          QCheck_alcotest.to_alcotest prop_cms_overestimates_only;
          Alcotest.test_case "exact when sparse" `Quick test_cms_exact_when_sparse;
          Alcotest.test_case "deterministic" `Quick test_cms_deterministic;
          Alcotest.test_case "validation" `Quick test_cms_validation;
        ] );
      ( "decay-table",
        [
          Alcotest.test_case "iterated product" `Quick
            test_decay_table_matches_iterated_product;
          Alcotest.test_case "validation" `Quick test_decay_table_validation;
        ] );
      ( "ewma",
        [
          QCheck_alcotest.to_alcotest prop_ewma_coast_equals_zero_updates;
          Alcotest.test_case "priming and convergence" `Quick
            test_ewma_priming_and_convergence;
          Alcotest.test_case "validation" `Quick test_ewma_validation;
        ] );
      ( "quantile",
        [
          QCheck_alcotest.to_alcotest prop_quantile_update_monotone;
          Alcotest.test_case "converges on uniform input" `Quick
            test_quantile_converges;
          Alcotest.test_case "concentrated input" `Quick
            test_quantile_concentrated_input;
          Alcotest.test_case "clamps" `Quick test_quantile_clamps;
          Alcotest.test_case "validation" `Quick test_quantile_validation;
        ] );
      ( "gate",
        [
          Alcotest.test_case "promotes after exactly H" `Quick
            test_gate_promotes_after_exactly_h;
          Alcotest.test_case "gap resets streak" `Quick
            test_gate_suspect_gap_resets_streak;
          Alcotest.test_case "demotion needs calm+settled" `Quick
            test_gate_demotion_needs_calm_and_settled;
          Alcotest.test_case "signal thresholds" `Quick test_gate_signal_thresholds;
          Alcotest.test_case "config validation" `Quick test_gate_config_validation;
        ] );
    ]

(* Tests for the fleet layer: incremental-EM equivalence with the batch
   sweep, decay semantics, carry factorization, pooled epoch
   determinism, transition emission, and the per-domain workspace
   cache. *)

(* Oversubscribe the pool so the multi-domain determinism tests spawn
   real workers even on a single-core CI machine. *)
let () = Stats.Pool.set_capacity 8

let check_float = Alcotest.(check (float 1e-12))
let check_same_floats name a b = Alcotest.(check (array (float 0.))) name a b

let mmhd_obs ~seed ~n ~m ~len =
  let rng = Stats.Rng.create seed in
  let truth = Mmhd.init_random rng ~n ~m ~loss_fraction:0.08 in
  let obs, _ = Mmhd.simulate rng truth ~len in
  obs.(0) <- Some 0;
  obs.(1) <- None;
  obs

let informed ~seed ~n ~m obs =
  Mmhd.to_em (Mmhd.init_informed (Stats.Rng.create seed) ~n ~m obs)

(* --- incremental EM vs the batch sweep --------------------------------- *)

(* One appended batch at lambda = 1 must reproduce the batch EM step:
   same log-likelihood as the full forward pass, and an M-step equal to
   em_step parameter-for-parameter.  The property quantifies over model
   shape, batch length and seed. *)
let prop_single_append_matches_em_step =
  QCheck.Test.make ~name:"lambda=1 single append = batch em_step" ~count:60
    QCheck.(triple (int_range 1 3) (int_range 2 5) (int_range 30 300))
    (fun (n, m, len) ->
      let obs = mmhd_obs ~seed:(n + (7 * m) + len) ~n ~m ~len in
      let model = informed ~seed:5 ~n ~m obs in
      let ws = Em.workspace () in
      let stats = Em.Incremental.create ~s:(n * m) ~m in
      let ll = Em.Incremental.append ~ws stats model obs in
      let incr_model = Em.Incremental.m_step stats model in
      let batch_model = Em.em_step ~ws ~update_b:false model obs in
      let ll_batch = Em.log_likelihood ~ws model obs in
      let eq = Stats.Float_cmp.approx_eq ~eps:1e-9 in
      let arrays_eq a b =
        Array.length a = Array.length b && Array.for_all2 eq a b
      in
      eq ll ll_batch
      && arrays_eq incr_model.Em.pi batch_model.Em.pi
      && arrays_eq incr_model.Em.a batch_model.Em.a
      && arrays_eq incr_model.Em.c batch_model.Em.c)

let test_single_append_bitwise () =
  (* On one concrete case the equality is exact, not just within
     tolerance: append accumulates the same kernel statistics em_step
     consumes, and m_step mirrors its arithmetic. *)
  let n = 2 and m = 4 in
  let obs = mmhd_obs ~seed:3 ~n ~m ~len:400 in
  let model = informed ~seed:9 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  let ll = Em.Incremental.append ~ws stats model obs in
  let incr_model = Em.Incremental.m_step stats model in
  let batch_model = Em.em_step ~ws ~update_b:false model obs in
  check_float "log-likelihood" (Em.log_likelihood ~ws model obs) ll;
  check_same_floats "pi" batch_model.Em.pi incr_model.Em.pi;
  check_same_floats "a" batch_model.Em.a incr_model.Em.a;
  check_same_floats "c" batch_model.Em.c incr_model.Em.c;
  Alcotest.(check (array (float 0.)))
    "b is shared, not copied" model.Em.b incr_model.Em.b

let test_append_weight_and_counts () =
  let n = 2 and m = 3 in
  let obs = mmhd_obs ~seed:21 ~n ~m ~len:120 in
  let model = informed ~seed:2 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  ignore (Em.Incremental.append ~ws stats model obs : float);
  check_float "weight = batch length" 120. (Em.Incremental.weight stats);
  Alcotest.(check int) "one batch" 1 (Em.Incremental.batches stats);
  (* Posterior observation + loss mass accounts for every probe: each
     time step contributes one unit of posterior mass. *)
  let total =
    Array.fold_left ( +. ) 0. (Em.Incremental.count_obs stats)
    +. Array.fold_left ( +. ) 0. (Em.Incremental.count_loss stats)
  in
  Alcotest.(check (float 1e-6)) "posterior mass = T" 120. total

(* --- decay ------------------------------------------------------------- *)

let test_decay_scales_everything () =
  let n = 2 and m = 3 in
  let obs = mmhd_obs ~seed:31 ~n ~m ~len:150 in
  let model = informed ~seed:4 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  ignore (Em.Incremental.append ~ws stats model obs : float);
  let xi0 = Em.Incremental.xi stats in
  let w0 = Em.Incremental.weight stats in
  Em.Incremental.decay stats ~lambda:0.5 ;
  check_float "weight halves" (w0 /. 2.) (Em.Incremental.weight stats);
  Array.iteri
    (fun i x -> check_float (Printf.sprintf "xi.(%d) halves" i) (xi0.(i) /. 2.) x)
    (Em.Incremental.xi stats)

let test_decay_identity_at_one () =
  let n = 1 and m = 3 in
  let obs = mmhd_obs ~seed:41 ~n ~m ~len:90 in
  let model = informed ~seed:6 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  ignore (Em.Incremental.append ~ws stats model obs : float);
  let xi0 = Em.Incremental.xi stats in
  let co0 = Em.Incremental.count_obs stats in
  Em.Incremental.decay stats ~lambda:1.;
  check_same_floats "xi unchanged bitwise" xi0 (Em.Incremental.xi stats);
  check_same_floats "count_obs unchanged bitwise" co0 (Em.Incremental.count_obs stats)

let test_decay_validation () =
  let stats = Em.Incremental.create ~s:4 ~m:2 in
  Alcotest.check_raises "lambda > 1"
    (Invalid_argument "Em.Incremental.decay: lambda must be in [0, 1]")
    (fun () -> Em.Incremental.decay stats ~lambda:1.5)

(* --- carry: the forward likelihood factorizes across batches ----------- *)

let test_carry_loglik_additivity () =
  let n = 2 and m = 4 in
  let obs = mmhd_obs ~seed:51 ~n ~m ~len:300 in
  let model = informed ~seed:8 ~n ~m obs in
  let ws = Em.workspace () in
  let ll_full = Em.log_likelihood ~ws model obs in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  let ll1 =
    Em.Incremental.append ~ws stats model (Array.sub obs 0 150)
  in
  let ll2 =
    Em.Incremental.append ~ws stats model (Array.sub obs 150 150)
  in
  (* Propagating the filtered end distribution one transition step into
     the next batch's starting distribution makes the product of batch
     likelihoods the full-sequence likelihood, up to summation order. *)
  Alcotest.(check (float 1e-8)) "sum of batch logLs = full logL" ll_full (ll1 +. ll2)

let test_carry_off_is_independent () =
  let n = 2 and m = 4 in
  let obs = mmhd_obs ~seed:61 ~n ~m ~len:200 in
  let model = informed ~seed:8 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  ignore (Em.Incremental.append ~ws stats model (Array.sub obs 0 100) : float);
  let ll2 = Em.Incremental.append ~ws ~carry:false stats model (Array.sub obs 100 100) in
  let fresh = Em.Incremental.create ~s:(n * m) ~m in
  let ll2' = Em.Incremental.append ~ws fresh model (Array.sub obs 100 100) in
  check_float "carry:false restarts from the model prior" ll2' ll2

let test_reset () =
  let n = 1 and m = 2 in
  let obs = mmhd_obs ~seed:71 ~n ~m ~len:60 in
  let model = informed ~seed:3 ~n ~m obs in
  let ws = Em.workspace () in
  let stats = Em.Incremental.create ~s:(n * m) ~m in
  ignore (Em.Incremental.append ~ws stats model obs : float);
  Em.Incremental.reset stats;
  check_float "weight zero" 0. (Em.Incremental.weight stats);
  Alcotest.(check int) "batches zero" 0 (Em.Incremental.batches stats);
  Alcotest.check_raises "m_step on empty stats"
    (Invalid_argument "Em.Incremental.m_step: no appended batch") (fun () ->
      ignore (Em.Incremental.m_step stats model))

(* --- fleet: pooled epoch determinism ----------------------------------- *)

let conclusion_tag = function
  | None -> "u"
  | Some Dcl.Identify.Strongly_dominant -> "s"
  | Some Dcl.Identify.Weakly_dominant -> "w"
  | Some Dcl.Identify.No_dominant -> "n"

let run_fleet ?gate ~domains ~paths ~epochs ~epoch_len ~seed () =
  let log = Buffer.create 128 in
  let rng = Stats.Rng.create seed in
  let src = Fleet.Source.synthetic ~rng ~paths () in
  let config = Fleet.Path_state.config ~scheme:(Fleet.Source.scheme src) () in
  let on_transition (tr : Fleet.Scheduler.transition) =
    Printf.bprintf log "%d:%d:%s>%s;" tr.Fleet.Scheduler.epoch
      tr.Fleet.Scheduler.path
      (conclusion_tag tr.Fleet.Scheduler.was)
      (conclusion_tag tr.Fleet.Scheduler.now)
  in
  let sched =
    Fleet.Scheduler.create ~domains ~on_transition ?gate ~rng ~paths config
  in
  for _ = 1 to epochs do
    for p = 0 to paths - 1 do
      Fleet.Scheduler.push sched ~path:p
        (Fleet.Source.pull src ~path:p ~len:epoch_len)
    done;
    ignore (Fleet.Scheduler.tick sched : int)
  done;
  (sched, Fleet.Scheduler.fingerprint sched, Buffer.contents log)

let test_pool_determinism () =
  let paths = 48 and epochs = 4 and epoch_len = 24 and seed = 1234 in
  let _, fp1, log1 = run_fleet ~domains:1 ~paths ~epochs ~epoch_len ~seed () in
  Alcotest.(check bool) "serial run emits transitions" true (String.length log1 > 0);
  List.iter
    (fun domains ->
      let _, fp, log = run_fleet ~domains ~paths ~epochs ~epoch_len ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "fingerprint at %d domains" domains)
        fp1 fp;
      Alcotest.(check string)
        (Printf.sprintf "transition log at %d domains" domains)
        log1 log)
    [ 2; 4; 8 ]

let test_gated_pool_determinism () =
  (* The gated fingerprint also folds the sketch/gate state, so this
     checks the whole triage front end is driver-side and pure. *)
  let gate () = Sketch.Gate.config ~loss_threshold:0.05 ~promote_after:1 () in
  let paths = 48 and epochs = 4 and epoch_len = 24 and seed = 1234 in
  let sched, fp1, log1 =
    run_fleet ~gate:(gate ()) ~domains:1 ~paths ~epochs ~epoch_len ~seed ()
  in
  Alcotest.(check bool) "gated fleet promotes some paths" true
    (Fleet.Scheduler.promoted_count sched > 0);
  Alcotest.(check bool) "and keeps some quiet" true
    (Fleet.Scheduler.promoted_count sched < paths);
  List.iter
    (fun domains ->
      let _, fp, log =
        run_fleet ~gate:(gate ()) ~domains ~paths ~epochs ~epoch_len ~seed ()
      in
      Alcotest.(check string)
        (Printf.sprintf "gated fingerprint at %d domains" domains)
        fp1 fp;
      Alcotest.(check string)
        (Printf.sprintf "gated transition log at %d domains" domains)
        log1 log)
    [ 2; 4; 8 ]

let test_fleet_reruns_identically () =
  (* Same seed, same everything: the whole fleet is a pure function of
     its inputs even across separate constructions. *)
  let run () =
    run_fleet ~domains:1 ~paths:16 ~epochs:3 ~epoch_len:32 ~seed:77 ()
  in
  let _, fp1, log1 = run () and _, fp2, log2 = run () in
  Alcotest.(check string) "fingerprint" fp1 fp2;
  Alcotest.(check string) "log" log1 log2

(* --- fleet: transition emission ---------------------------------------- *)

let test_transitions_consistent () =
  let paths = 32 and epochs = 6 in
  let transitions = ref [] in
  let rng = Stats.Rng.create 99 in
  let src = Fleet.Source.synthetic ~rng ~paths () in
  let config = Fleet.Path_state.config ~scheme:(Fleet.Source.scheme src) () in
  let sched =
    Fleet.Scheduler.create
      ~on_transition:(fun tr -> transitions := tr :: !transitions)
      ~rng ~paths config
  in
  for _ = 1 to epochs do
    for p = 0 to paths - 1 do
      Fleet.Scheduler.push sched ~path:p (Fleet.Source.pull src ~path:p ~len:48)
    done;
    ignore (Fleet.Scheduler.tick sched : int)
  done;
  let transitions = List.rev !transitions in
  Alcotest.(check bool) "some transitions" true (transitions <> []);
  (* Each transition is a real change; within an epoch they arrive in
     ascending path order; per path, consecutive transitions chain. *)
  let last_state = Hashtbl.create 16 and last_key = ref (-1, -1) in
  List.iter
    (fun (tr : Fleet.Scheduler.transition) ->
      Alcotest.(check bool) "was <> now" true (tr.was <> tr.now);
      let key = (tr.epoch, tr.path) in
      Alcotest.(check bool) "ascending (epoch, path) order" true (key > !last_key);
      last_key := key;
      let prev =
        Option.value ~default:None (Hashtbl.find_opt last_state tr.path)
      in
      Alcotest.(check bool) "chains from previous state" true (tr.was = prev);
      Hashtbl.replace last_state tr.path tr.now)
    transitions;
  (* Final scheduler state agrees with the last emitted transition. *)
  Hashtbl.iter
    (fun path state ->
      Alcotest.(check string)
        (Printf.sprintf "path %d final state" path)
        (conclusion_tag state)
        (conclusion_tag (Fleet.Scheduler.conclusion sched path)))
    last_state

(* --- path state edge cases --------------------------------------------- *)

let scheme5 = Dcl.Discretize.of_range ~m:5 ~lo:0.02 ~hi:0.07

let test_path_state_gates () =
  let config = Fleet.Path_state.config ~scheme:scheme5 () in
  let p = Fleet.Path_state.create config ~rng:(Stats.Rng.create 1) in
  let ws = Em.workspace () in
  Alcotest.(check bool) "empty batch is a no-op" false
    (Fleet.Path_state.update ~ws p [||]);
  Alcotest.(check bool) "all-loss first batch is dropped" false
    (Fleet.Path_state.update ~ws p (Array.make 8 None));
  Alcotest.(check bool) "still no model" true (Fleet.Path_state.model p = None);
  let batch = Array.init 64 (fun i -> if i mod 9 = 0 then None else Some (i mod 5)) in
  ignore (Fleet.Path_state.update ~ws p batch : bool);
  Alcotest.(check bool) "model after first mixed batch" true
    (Fleet.Path_state.model p <> None);
  Alcotest.(check int) "observations counted" 64 (Fleet.Path_state.observations p)

let test_config_validation () =
  Alcotest.check_raises "lambda out of range"
    (Invalid_argument "Fleet.Path_state.config: lambda must be in [0, 1]")
    (fun () ->
      ignore (Fleet.Path_state.config ~lambda:1.2 ~scheme:scheme5 ()));
  Alcotest.check_raises "n non-positive"
    (Invalid_argument "Fleet.Path_state.config: n must be positive") (fun () ->
      ignore (Fleet.Path_state.config ~n:0 ~scheme:scheme5 ()))

let test_path_state_coast () =
  let config = Fleet.Path_state.config ~scheme:scheme5 () in
  let p = Fleet.Path_state.create config ~rng:(Stats.Rng.create 2) in
  (* Coasting an empty path is a no-op, not an error. *)
  Fleet.Path_state.coast p ~factor:0.5;
  check_float "still empty" 0. (Fleet.Path_state.weight p);
  let ws = Em.workspace () in
  let batch = Array.init 64 (fun i -> if i mod 9 = 0 then None else Some (i mod 5)) in
  ignore (Fleet.Path_state.update ~ws p batch : bool);
  let w0 = Fleet.Path_state.weight p in
  Fleet.Path_state.coast p ~factor:0.5;
  check_float "weight ages by the factor" (w0 /. 2.) (Fleet.Path_state.weight p);
  Alcotest.check_raises "factor out of range"
    (Invalid_argument "Fleet.Path_state.coast: factor must be in [0, 1]")
    (fun () -> Fleet.Path_state.coast p ~factor:1.5)

(* --- sketch gating ------------------------------------------------------ *)

(* Hand-built epochs so the gate's inputs are exact.  A hot batch loses
   a third of its probes and concentrates delays at the top symbol
   (loss EWMA ~0.33 >= 0.2 and drift ~1 >= 0.75: suspect on both
   signals); a cold batch is loss-free at the bottom symbols (loss 0,
   drift <= 0.25: calm under the 0.8 margin). *)
let hot_batch len = Array.init len (fun i -> if i mod 3 = 0 then None else Some 4)
let cold_batch len = Array.init len (fun i -> Some (i mod 2))

let gated_sched ?(gate = Sketch.Gate.config ()) ~paths () =
  let config = Fleet.Path_state.config ~scheme:scheme5 () in
  Fleet.Scheduler.create ~gate ~rng:(Stats.Rng.create 3) ~paths config

let test_gate_promotes_congested_within_h () =
  let h = 2 in
  let sched = gated_sched ~gate:(Sketch.Gate.config ~promote_after:h ()) ~paths:2 () in
  for e = 1 to h do
    Fleet.Scheduler.push sched ~path:0 (hot_batch 24);
    Fleet.Scheduler.push sched ~path:1 (cold_batch 24);
    ignore (Fleet.Scheduler.tick sched : int);
    let v p = Option.get (Fleet.Scheduler.gate_view sched p) in
    Alcotest.(check bool)
      (Printf.sprintf "hot path promoted iff epoch %d = H" e)
      (e = h) (v 0).Fleet.Scheduler.promoted_path;
    Alcotest.(check bool) "cold path stays quiet" false
      (v 1).Fleet.Scheduler.promoted_path
  done;
  Alcotest.(check int) "promoted count" 1 (Fleet.Scheduler.promoted_count sched);
  let gs = Option.get (Fleet.Scheduler.gate_stats sched) in
  Alcotest.(check int) "one promotion" 1 gs.Fleet.Scheduler.promotions;
  (* The gate steps before the queue/drop decision, so the hot path's
     promotion-epoch batch is already queued for EM; only its earlier
     H-1 batches were absorbed sketch-only, plus everything from the
     forever-quiet cold path. *)
  Alcotest.(check int) "skipped observations" ((h - 1 + h) * 24)
    gs.Fleet.Scheduler.sketch_only_observations;
  (* From the promotion epoch on, the hot path runs full inference and
     the cold path still does not. *)
  for _ = 1 to 6 do
    Fleet.Scheduler.push sched ~path:0 (hot_batch 24);
    Fleet.Scheduler.push sched ~path:1 (cold_batch 24);
    ignore (Fleet.Scheduler.tick sched : int)
  done;
  Alcotest.(check bool) "promoted path accumulates EM state" true
    (Fleet.Path_state.epochs (Fleet.Scheduler.path sched 0) > 0);
  Alcotest.(check int) "quiet path never entered EM" 0
    (Fleet.Path_state.epochs (Fleet.Scheduler.path sched 1));
  Alcotest.(check bool) "quiet path has no conclusion" true
    (Fleet.Scheduler.conclusion sched 1 = None)

let test_gate_loss_signal_masked_by_cms () =
  (* A loss-free path's loss signal must read exactly zero through the
     count-min mask, whatever the EWMA holds. *)
  let sched = gated_sched ~paths:1 () in
  Fleet.Scheduler.push sched ~path:0 (cold_batch 32);
  ignore (Fleet.Scheduler.tick sched : int);
  let v = Option.get (Fleet.Scheduler.gate_view sched 0) in
  Alcotest.(check int) "no losses estimated" 0 v.Fleet.Scheduler.loss_estimate;
  check_float "loss ewma zero" 0. v.Fleet.Scheduler.loss_ewma

let test_gate_demotes_settled_quiet_path () =
  (* Promote on a lossy no-DCL-shaped stream, let the EM settle on
     no-dominant, then go cold: the gate must demote after the
     configured streak while keeping the path's statistics and verdict
     warm.  The loss mass must split ~2:1 between the bottom and top
     symbols: the majority share at the bottom pins d-star to the
     first symbol, and F at 2 d-star ~ 2/3 then rejects both the SDCL
     (0.995) and WDCL (0.935) thresholds.  An even 50/50 split would
     backfire: the VQD median lands mid-alphabet and 2 d-star walks
     off the end of the m=5 scheme, where F saturates to 1 and
     trivially accepts. *)
  let mixed_batch len =
    Array.init len (fun i ->
        match i mod 16 with
        | 2 | 5 | 11 -> None (* two losses amid the 0s, one amid the 4s *)
        | k when k < 8 -> Some 0
        | _ -> Some 4)
  in
  let sched =
    gated_sched
      ~gate:(Sketch.Gate.config ~promote_after:1 ~demote_after:3 ())
      ~paths:1 ()
  in
  let demoted = ref None in
  for e = 1 to 30 do
    Fleet.Scheduler.push sched ~path:0
      (if e <= 6 then mixed_batch 48 else cold_batch 48);
    ignore (Fleet.Scheduler.tick sched : int);
    let v = Option.get (Fleet.Scheduler.gate_view sched 0) in
    if !demoted = None && not v.Fleet.Scheduler.promoted_path then demoted := Some e
  done;
  Alcotest.(check bool) "eventually demoted" true (!demoted <> None);
  Alcotest.(check int) "promoted count back to zero" 0
    (Fleet.Scheduler.promoted_count sched);
  let gs = Option.get (Fleet.Scheduler.gate_stats sched) in
  Alcotest.(check int) "one demotion" 1 gs.Fleet.Scheduler.demotions;
  (* Demotion keeps the decayed statistics and the verdict visible. *)
  let p = Fleet.Scheduler.path sched 0 in
  Alcotest.(check bool) "statistics kept warm" true
    (Stats.Float_cmp.gt (Fleet.Path_state.weight p) 0.);
  Alcotest.(check bool) "no-dominant verdict kept" true
    (Fleet.Scheduler.conclusion sched 0 = Some Dcl.Identify.No_dominant)

(* --- workspace cache --------------------------------------------------- *)

let test_workspace_cache () =
  let a = Fleet.Workspace_cache.get ~s:10 ~m:5 in
  let b = Fleet.Workspace_cache.get ~s:10 ~m:5 in
  Alcotest.(check bool) "same shape shares the workspace" true (a == b);
  let c = Fleet.Workspace_cache.get ~s:8 ~m:4 in
  Alcotest.(check bool) "different shape gets its own" true (not (a == c));
  Alcotest.(check bool) "cache counts both shapes" true
    (Fleet.Workspace_cache.cached () >= 2)

(* --- diagnosis timeline ------------------------------------------------ *)

let test_timeline_wraparound () =
  let tl = Fleet.Timeline.create ~capacity:3 in
  Alcotest.(check int) "capacity as requested" 3 (Fleet.Timeline.capacity tl);
  for e = 1 to 7 do
    Fleet.Timeline.record tl
      (Fleet.Timeline.Update
         {
           epoch = e;
           verdict = None;
           log_likelihood = -1.5;
           weight = float_of_int e;
           bound = None;
         })
  done;
  Alcotest.(check int) "total counts past capacity" 7 (Fleet.Timeline.total tl);
  Alcotest.(check int) "length capped at capacity" 3 (Fleet.Timeline.length tl);
  let epochs =
    List.map
      (function
        | Fleet.Timeline.Update u -> u.epoch
        | Fleet.Timeline.Gate g -> g.epoch
        | Fleet.Timeline.Reset r -> r.epoch)
      (Fleet.Timeline.entries tl)
  in
  Alcotest.(check (list int)) "newest window, oldest-first" [ 5; 6; 7 ] epochs

let test_timeline_entry_kinds_and_json () =
  let tl = Fleet.Timeline.create ~capacity:8 in
  Fleet.Timeline.record tl
    (Fleet.Timeline.Update
       {
         epoch = 1;
         verdict = Some Dcl.Identify.Strongly_dominant;
         log_likelihood = -2.25;
         weight = 32.;
         bound = Some 0.75;
       });
  Fleet.Timeline.record tl
    (Fleet.Timeline.Gate
       { epoch = 2; promoted = true; cause = "loss-ewma"; streak = 3 });
  Fleet.Timeline.record tl (Fleet.Timeline.Reset { epoch = 3 });
  Fleet.Timeline.record tl
    (Fleet.Timeline.Update
       {
         epoch = 4;
         verdict = None;
         log_likelihood = Float.neg_infinity;
         weight = 0.;
         bound = None;
       });
  Alcotest.(check int) "all entries retained" 4 (Fleet.Timeline.length tl);
  let js = Fleet.Timeline.to_json tl in
  let contains sub =
    let n = String.length js and m = String.length sub in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + m <= n do
      if String.sub js !i m = sub then found := true else incr i
    done;
    !found
  in
  Alcotest.(check bool) "verdict named" true (contains "strongly-dominant");
  Alcotest.(check bool) "gate cause present" true (contains "loss-ewma");
  Alcotest.(check bool) "reset entry present" true (contains "reset");
  (* Non-finite floats must not leak into the JSON (they are not valid
     JSON number literals) — the exporter nulls them. *)
  Alcotest.(check bool) "no bare infinity token" false (contains "inf");
  Alcotest.(check bool) "non-finite exported as null" true (contains "null")

let test_timeline_capacity_zero () =
  let tl = Fleet.Timeline.create ~capacity:0 in
  Fleet.Timeline.record tl (Fleet.Timeline.Reset { epoch = 1 });
  Alcotest.(check int) "record is a no-op" 0 (Fleet.Timeline.total tl);
  Alcotest.(check int) "no entries" 0 (List.length (Fleet.Timeline.entries tl));
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Fleet.Timeline.create: capacity must be non-negative")
    (fun () -> ignore (Fleet.Timeline.create ~capacity:(-1)))

(* Path_state threads every update, gate flip, and reset through its
   timeline: drive one path with the scheduler's own machinery and
   check the history lines up with the observable state. *)
let test_path_state_records_timeline () =
  let cfg =
    Fleet.Path_state.config ~timeline_capacity:16
      ~scheme:(Dcl.Discretize.of_range ~m:5 ~lo:0.02 ~hi:0.07)
      ()
  in
  let p = Fleet.Path_state.create cfg ~rng:(Stats.Rng.create 11) in
  let ws = Em.workspace () in
  let batch =
    Array.init 64 (fun i -> if i mod 9 = 0 then None else Some (i mod 5))
  in
  ignore (Fleet.Path_state.update ~ws p batch : bool);
  ignore (Fleet.Path_state.update ~ws ~epoch:9 p batch : bool);
  let tl = Fleet.Path_state.timeline p in
  Alcotest.(check int) "one entry per update" 2 (Fleet.Timeline.total tl);
  match Fleet.Timeline.entries tl with
  | [ Fleet.Timeline.Update u1; Fleet.Timeline.Update u2 ] ->
      Alcotest.(check int) "default epoch stamp is the epoch counter" 1
        u1.epoch;
      Alcotest.(check int) "explicit epoch stamp wins" 9 u2.epoch;
      Alcotest.(check bool) "recorded weight is positive" true
        (u2.weight > 0.)
  | _ -> Alcotest.fail "expected exactly two Update entries"

(* --- source ------------------------------------------------------------ *)

let test_synthetic_source_deterministic () =
  let mk () = Fleet.Source.synthetic ~rng:(Stats.Rng.create 5) ~paths:4 () in
  let s1 = mk () and s2 = mk () in
  let b1 = Fleet.Source.pull s1 ~path:2 ~len:50 in
  let b2 = Fleet.Source.pull s2 ~path:2 ~len:50 in
  Alcotest.(check bool) "seeded pulls replay bitwise" true (b1 = b2);
  Alcotest.(check bool) "ground truth available" true
    (Fleet.Source.ground_truth s1 0 <> None)

(* The congested-template split is one integer rounding decision, for
   every fraction in [0, 1] — the boundary the old per-index float
   comparison could misround. *)
let prop_congested_templates_rounds =
  QCheck.Test.make ~name:"congested count = round(fraction * templates)"
    ~count:500
    QCheck.(pair (int_range 1 64) (float_range 0. 1.))
    (fun (templates, fraction) ->
      let c = Fleet.Source.congested_templates ~templates ~fraction in
      c = int_of_float (Float.round (fraction *. float_of_int templates))
      && c >= 0 && c <= templates)

let test_congested_templates_boundaries () =
  Alcotest.(check int) "zero fraction" 0
    (Fleet.Source.congested_templates ~templates:8 ~fraction:0.);
  Alcotest.(check int) "full fraction" 8
    (Fleet.Source.congested_templates ~templates:8 ~fraction:1.);
  (* A representable exact half rounds away from zero, and the count
     is computed once — not re-derived per template index. *)
  Alcotest.(check int) "half rounds up" 1
    (Fleet.Source.congested_templates ~templates:8 ~fraction:0.0625);
  Alcotest.(check int) "one in ten" 1
    (Fleet.Source.congested_templates ~templates:10 ~fraction:0.1)

let () =
  Alcotest.run "fleet"
    [
      ( "incremental-em",
        [
          QCheck_alcotest.to_alcotest prop_single_append_matches_em_step;
          Alcotest.test_case "single append bitwise" `Quick test_single_append_bitwise;
          Alcotest.test_case "weight and counts" `Quick test_append_weight_and_counts;
        ] );
      ( "decay",
        [
          Alcotest.test_case "scales statistics" `Quick test_decay_scales_everything;
          Alcotest.test_case "identity at 1" `Quick test_decay_identity_at_one;
          Alcotest.test_case "validation" `Quick test_decay_validation;
        ] );
      ( "carry",
        [
          Alcotest.test_case "logL additivity" `Quick test_carry_loglik_additivity;
          Alcotest.test_case "carry off" `Quick test_carry_off_is_independent;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "serial = pooled at 2/4/8" `Quick test_pool_determinism;
          Alcotest.test_case "gated serial = pooled at 2/4/8" `Quick
            test_gated_pool_determinism;
          Alcotest.test_case "rerun identical" `Quick test_fleet_reruns_identically;
        ] );
      ( "transitions",
        [ Alcotest.test_case "consistent stream" `Quick test_transitions_consistent ] );
      ( "path-state",
        [
          Alcotest.test_case "gates" `Quick test_path_state_gates;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "coast" `Quick test_path_state_coast;
        ] );
      ( "gating",
        [
          Alcotest.test_case "promotes congested within H" `Quick
            test_gate_promotes_congested_within_h;
          Alcotest.test_case "loss signal masked by count-min" `Quick
            test_gate_loss_signal_masked_by_cms;
          Alcotest.test_case "demotes settled quiet path" `Quick
            test_gate_demotes_settled_quiet_path;
        ] );
      ( "workspace-cache",
        [ Alcotest.test_case "keyed by shape" `Quick test_workspace_cache ] );
      ( "timeline",
        [
          Alcotest.test_case "ring wraparound" `Quick test_timeline_wraparound;
          Alcotest.test_case "entry kinds and json" `Quick
            test_timeline_entry_kinds_and_json;
          Alcotest.test_case "capacity zero" `Quick test_timeline_capacity_zero;
          Alcotest.test_case "path-state records history" `Quick
            test_path_state_records_timeline;
        ] );
      ( "source",
        [
          Alcotest.test_case "deterministic" `Quick
            test_synthetic_source_deterministic;
          QCheck_alcotest.to_alcotest prop_congested_templates_rounds;
          Alcotest.test_case "congested-count boundaries" `Quick
            test_congested_templates_boundaries;
        ] );
    ]

(* Tests for the shared EM kernel: parallel-restart determinism,
   degenerate-restart skipping, and workspace reuse across
   differently-sized models. *)

let check_float = Alcotest.(check (float 1e-12))

let mmhd_obs ~seed ~len =
  let rng = Stats.Rng.create seed in
  let truth = Mmhd.init_random rng ~n:2 ~m:4 ~loss_fraction:0.08 in
  let obs, _ = Mmhd.simulate rng truth ~len in
  obs.(0) <- Some 0;
  obs.(1) <- None;
  obs

let hmm_obs ~seed ~len =
  let rng = Stats.Rng.create seed in
  let truth = Hmm.init_random rng ~n:2 ~m:4 ~loss_fraction:0.08 in
  let obs, _ = Hmm.simulate rng truth ~len in
  obs.(0) <- Some 0;
  obs.(1) <- None;
  obs

(* --- parallel restarts pick the identical winner ----------------------- *)

let check_same_floats name a b =
  Alcotest.(check (array (float 0.))) name a b

let check_same_matrix name a b =
  Array.iteri (fun i row -> check_same_floats (Printf.sprintf "%s row %d" name i) row b.(i)) a

let test_mmhd_parallel_determinism () =
  let obs = mmhd_obs ~seed:11 ~len:1500 in
  let fit domains =
    Mmhd.fit ~max_iter:25 ~restarts:4 ~domains ~rng:(Stats.Rng.create 5) ~n:2 ~m:4 obs
  in
  let serial, s_stats = fit 1 in
  let parallel, p_stats = fit 4 in
  check_same_floats "pi" serial.Mmhd.pi parallel.Mmhd.pi;
  check_same_matrix "a" serial.Mmhd.a parallel.Mmhd.a;
  check_same_floats "c" serial.Mmhd.c parallel.Mmhd.c;
  check_float "log-likelihood" s_stats.Mmhd.log_likelihood p_stats.Mmhd.log_likelihood;
  Alcotest.(check int) "iterations" s_stats.Mmhd.iterations p_stats.Mmhd.iterations

let test_hmm_parallel_determinism () =
  let obs = hmm_obs ~seed:13 ~len:1500 in
  let fit domains =
    Hmm.fit ~max_iter:25 ~restarts:4 ~domains ~rng:(Stats.Rng.create 5) ~n:2 ~m:4 obs
  in
  let serial, s_stats = fit 1 in
  let parallel, p_stats = fit 4 in
  check_same_floats "pi" serial.Hmm.pi parallel.Hmm.pi;
  check_same_matrix "a" serial.Hmm.a parallel.Hmm.a;
  check_same_matrix "b" serial.Hmm.b parallel.Hmm.b;
  check_same_floats "c" serial.Hmm.c parallel.Hmm.c;
  check_float "log-likelihood" s_stats.Hmm.log_likelihood p_stats.Hmm.log_likelihood

let test_more_domains_than_restarts () =
  (* domains beyond the restart count must not change the result. *)
  let obs = mmhd_obs ~seed:17 ~len:800 in
  let fit domains =
    fst (Mmhd.fit ~max_iter:10 ~restarts:2 ~domains ~rng:(Stats.Rng.create 3) ~n:2 ~m:4 obs)
  in
  check_same_floats "pi" (fit 1).Mmhd.pi (fit 8).Mmhd.pi

(* --- degenerate restarts are skipped, not fatal ------------------------ *)

(* A model whose emission rows assign zero probability to symbol 0 has
   zero likelihood on any sequence containing symbol 0. *)
let degenerate_model : Em.model =
  {
    Em.s = 2;
    m = 2;
    pi = [| 0.5; 0.5 |];
    a = [| 0.5; 0.5; 0.5; 0.5 |];
    b = [| 0.; 1.; 0.; 1. |];
    c = [| 0.1; 0.1 |];
  }

let sane_model : Em.model =
  {
    Em.s = 2;
    m = 2;
    pi = [| 0.6; 0.4 |];
    a = [| 0.7; 0.3; 0.2; 0.8 |];
    b = [| 0.8; 0.2; 0.3; 0.7 |];
    c = [| 0.1; 0.2 |];
  }

let em_obs = [| Some 0; Some 1; None; Some 0; Some 1; Some 1; Some 0; None; Some 1 |]

let test_degenerate_restart_skipped () =
  let init k = if k = 0 then degenerate_model else sane_model in
  let model, stats =
    Em.fit_restarts ~max_iter:20 ~restarts:2 ~update_b:true ~init em_obs
  in
  (* The surviving restart's fit is returned, not an exception, and the
     discarded restart is accounted for. *)
  Alcotest.(check bool) "finite log-likelihood" true
    (Float.is_finite stats.Em.log_likelihood);
  Alcotest.(check int) "state count preserved" 2 model.Em.s;
  Alcotest.(check int) "one restart skipped" 1 stats.Em.skipped_restarts

let test_healthy_fit_skips_nothing () =
  let _, stats =
    Em.fit_restarts ~max_iter:20 ~restarts:3 ~update_b:true
      ~init:(fun _ -> sane_model)
      em_obs
  in
  Alcotest.(check int) "no skipped restarts" 0 stats.Em.skipped_restarts;
  let ws = Em.workspace () in
  let _, from_stats = Em.fit_from ~ws ~max_iter:20 ~update_b:true sane_model em_obs in
  Alcotest.(check int) "fit_from never skips" 0 from_stats.Em.skipped_restarts

let test_pp_fit_stats () =
  let s =
    { Em.iterations = 42; log_likelihood = -12.5; converged = true; skipped_restarts = 1 }
  in
  Alcotest.(check string) "render"
    "42 iterations (converged), logL=-12.500, 1 degenerate restart skipped"
    (Format.asprintf "%a" Em.pp_fit_stats s);
  let s' = { s with Em.converged = false; skipped_restarts = 0 } in
  Alcotest.(check string) "render max-iter"
    "42 iterations (max-iter), logL=-12.500, 0 degenerate restarts skipped"
    (Format.asprintf "%a" Em.pp_fit_stats s')

let test_all_degenerate_fails () =
  Alcotest.check_raises "all restarts degenerate"
    (Failure "Em.fit_restarts: every restart hit a zero-likelihood degeneracy")
    (fun () ->
      ignore
        (Em.fit_restarts ~max_iter:20 ~restarts:3 ~update_b:true
           ~init:(fun _ -> degenerate_model)
           em_obs))

let test_zero_likelihood_carries_time () =
  (* The exception reports the first impossible observation's index. *)
  let ws = Em.workspace () in
  match Em.log_likelihood ~ws degenerate_model [| Some 1; Some 1; Some 0 |] with
  | _ -> Alcotest.fail "expected Zero_likelihood"
  | exception Em.Zero_likelihood t -> Alcotest.(check int) "failing time" 2 t

let test_em_floors_keep_fit_alive () =
  (* Starting EM from a model already carrying hard zeros in re-estimated
     blocks must not abort: the M-step floors keep later iterations
     strictly positive wherever the data demands it. *)
  let nearly_degenerate : Em.model =
    (* Identity transitions: hard zeros off-diagonal, both states
       occupied, so both rows get re-estimated and floored. *)
    {
      Em.s = 2;
      m = 2;
      pi = [| 0.5; 0.5 |];
      a = [| 1.; 0.; 0.; 1. |];
      b = [| 0.5; 0.5; 0.5; 0.5 |];
      c = [| 0.1; 0.1 |];
    }
  in
  let ws = Em.workspace () in
  let fitted, stats = Em.fit_from ~ws ~max_iter:30 ~update_b:true nearly_degenerate em_obs in
  Alcotest.(check bool) "finite" true (Float.is_finite stats.Em.log_likelihood);
  (* Transition rows were floored away from exact zero. *)
  Array.iter
    (fun p -> Alcotest.(check bool) "transition > 0" true (p > 0.))
    fitted.Em.a

(* --- workspace reuse across sizes -------------------------------------- *)

let test_workspace_reuse_across_sizes () =
  (* Run a big model, then a smaller one, in the same workspace; the
     small model's results must match a fresh workspace bit-for-bit
     (stale buffer contents never leak through the active-set masks). *)
  let big_obs = mmhd_obs ~seed:23 ~len:400 in
  let small_obs = [| Some 0; None; Some 1; Some 1; Some 0; None; Some 1 |] in
  let shared = Em.workspace () in
  let big = Mmhd.init_informed (Stats.Rng.create 9) ~n:3 ~m:4 big_obs in
  let big_em : Em.model =
    let s = 12 in
    {
      Em.s;
      m = 4;
      pi = Array.copy big.Mmhd.pi;
      a = Array.init (s * s) (fun k -> big.Mmhd.a.(k / s).(k mod s));
      b = Array.init (s * 4) (fun k -> if k mod 4 = k / 4 mod 4 then 1. else 0.);
      c = Array.copy big.Mmhd.c;
    }
  in
  ignore (Em.em_step ~ws:shared ~update_b:false big_em big_obs);
  let fresh = Em.workspace () in
  let ll_shared = Em.log_likelihood ~ws:shared sane_model small_obs in
  let ll_fresh = Em.log_likelihood ~ws:fresh sane_model small_obs in
  check_float "log-likelihood identical" ll_fresh ll_shared;
  let step_shared = Em.em_step ~ws:shared ~update_b:true sane_model small_obs in
  let step_fresh = Em.em_step ~ws:fresh ~update_b:true sane_model small_obs in
  check_same_floats "pi" step_fresh.Em.pi step_shared.Em.pi;
  check_same_floats "a" step_fresh.Em.a step_shared.Em.a;
  check_same_floats "b" step_fresh.Em.b step_shared.Em.b;
  check_same_floats "c" step_fresh.Em.c step_shared.Em.c

(* --- chunked within-sweep parallelism ---------------------------------- *)

(* Small warm-up/crossover so a 1500-step fixture actually splits into
   up to 8 chunks; production defaults would fall back to serial. *)
let sweep ~chunks ~domains =
  Em.Sweep.policy ~chunks ~domains ~warmup:64 ~min_chunk:128 ()

let chunk_counts = [ 1; 2; 4; 8 ]

(* For each K, the pooled run and the inline (domains = 1) run execute
   the identical chunked arithmetic over disjoint buffer ranges, so
   full fits — forward, backward, accumulate, M-step, iterated — must
   agree bit-for-bit. *)
let test_mmhd_chunked_pool_identity () =
  Stats.Pool.set_capacity 3;
  let obs = mmhd_obs ~seed:11 ~len:1500 in
  List.iter
    (fun k ->
      let fit domains =
        Mmhd.fit_from ~max_iter:15
          ~sweep:(sweep ~chunks:k ~domains)
          (Mmhd.init_informed (Stats.Rng.create 7) ~n:2 ~m:4 obs)
          obs
      in
      let inline, i_stats = fit 1 in
      let pooled, p_stats = fit k in
      let name s = Printf.sprintf "K=%d %s" k s in
      check_same_floats (name "pi") inline.Mmhd.pi pooled.Mmhd.pi;
      check_same_matrix (name "a") inline.Mmhd.a pooled.Mmhd.a;
      check_same_floats (name "c") inline.Mmhd.c pooled.Mmhd.c;
      check_float (name "logL") i_stats.Mmhd.log_likelihood
        p_stats.Mmhd.log_likelihood;
      Alcotest.(check int) (name "iterations") i_stats.Mmhd.iterations
        p_stats.Mmhd.iterations)
    chunk_counts

let test_hmm_chunked_pool_identity () =
  Stats.Pool.set_capacity 3;
  let obs = hmm_obs ~seed:13 ~len:1500 in
  List.iter
    (fun k ->
      let fit domains =
        Hmm.fit_from ~max_iter:15
          ~sweep:(sweep ~chunks:k ~domains)
          (Hmm.init_informed (Stats.Rng.create 7) ~n:2 ~m:4 obs)
          obs
      in
      let inline, i_stats = fit 1 in
      let pooled, p_stats = fit k in
      let name s = Printf.sprintf "K=%d %s" k s in
      check_same_floats (name "pi") inline.Hmm.pi pooled.Hmm.pi;
      check_same_matrix (name "a") inline.Hmm.a pooled.Hmm.a;
      check_same_matrix (name "b") inline.Hmm.b pooled.Hmm.b;
      check_same_floats (name "c") inline.Hmm.c pooled.Hmm.c;
      check_float (name "logL") i_stats.Hmm.log_likelihood
        p_stats.Hmm.log_likelihood)
    chunk_counts

(* Across different K the floating-point association changes and the
   chunk boundaries are re-derived through speculative warm-up, so
   bit-identity is not on offer — but with a 64-step warm-up the
   geometric contraction leaves drift far below any statistical
   resolution.  Bound the per-sweep log-likelihood against the exact
   serial recursion. *)
let test_chunked_loglik_drift_bounded () =
  let obs = mmhd_obs ~seed:11 ~len:1500 in
  let model = Mmhd.to_em (Mmhd.init_informed (Stats.Rng.create 7) ~n:2 ~m:4 obs) in
  let ws = Em.workspace () in
  let ll_serial = Em.log_likelihood ~ws model obs in
  List.iter
    (fun k ->
      let ll_k =
        Em.log_likelihood ~ws ~sweep:(sweep ~chunks:k ~domains:1) model obs
      in
      Alcotest.(check bool)
        (Printf.sprintf "K=%d logL within 1e-6 relative of serial" k)
        true
        (Stats.Float_cmp.approx_eq
           ~eps:(1e-6 *. Float.abs ll_serial)
           ll_serial ll_k))
    chunk_counts

(* Sweep-level chunking nested under restart-level parallelism: pool
   jobs submitted from inside a pool item run inline, so the two
   composition orders execute the same arithmetic. *)
let test_restart_and_sweep_parallelism_compose () =
  Stats.Pool.set_capacity 3;
  let obs = mmhd_obs ~seed:17 ~len:1500 in
  let fit domains =
    Mmhd.fit ~max_iter:10 ~restarts:2 ~domains
      ~sweep:(sweep ~chunks:2 ~domains:2)
      ~rng:(Stats.Rng.create 3) ~n:2 ~m:4 obs
  in
  let serial_restarts, s_stats = fit 1 in
  let pooled_restarts, p_stats = fit 2 in
  check_same_floats "pi" serial_restarts.Mmhd.pi pooled_restarts.Mmhd.pi;
  check_same_matrix "a" serial_restarts.Mmhd.a pooled_restarts.Mmhd.a;
  check_float "logL" s_stats.Mmhd.log_likelihood p_stats.Mmhd.log_likelihood

(* --- float32 workspace mode -------------------------------------------- *)

let test_f32_drift_bounded () =
  let obs = mmhd_obs ~seed:11 ~len:1500 in
  let model = Mmhd.to_em (Mmhd.init_informed (Stats.Rng.create 7) ~n:2 ~m:4 obs) in
  let ws32 = Em.workspace ~precision:Em.F32 () in
  Alcotest.(check bool) "precision accessor" true
    (match Em.precision ws32 with Em.F32 -> true | Em.F64 -> false);
  let ll64 = Em.log_likelihood ~ws:(Em.workspace ()) model obs in
  let ll32 = Em.log_likelihood ~ws:ws32 model obs in
  Alcotest.(check bool) "f32 logL finite" true (Float.is_finite ll32);
  Alcotest.(check bool) "f32 logL within 1e-3 relative of f64" true
    (Stats.Float_cmp.approx_eq ~eps:(1e-3 *. Float.abs ll64) ll64 ll32)

let test_f32_chunked_matches_f32_serial_contract () =
  (* The same-K inline/pooled identity holds in f32 mode too: rounding
     is a pure function of the value being written. *)
  Stats.Pool.set_capacity 3;
  let obs = mmhd_obs ~seed:19 ~len:1500 in
  let model = Mmhd.to_em (Mmhd.init_informed (Stats.Rng.create 7) ~n:2 ~m:4 obs) in
  let ll domains =
    Em.log_likelihood
      ~ws:(Em.workspace ~precision:Em.F32 ())
      ~sweep:(sweep ~chunks:4 ~domains)
      model obs
  in
  check_float "f32 inline = pooled" (ll 1) (ll 4)

let test_restarts_validation () =
  Alcotest.check_raises "restarts must be positive"
    (Invalid_argument "Em.fit_restarts: restarts must be positive")
    (fun () ->
      ignore
        (Em.fit_restarts ~restarts:0 ~update_b:true ~init:(fun _ -> sane_model) em_obs))

let () =
  Alcotest.run "em"
    [
      ( "parallel determinism",
        [
          Alcotest.test_case "mmhd serial = 4 domains" `Quick
            test_mmhd_parallel_determinism;
          Alcotest.test_case "hmm serial = 4 domains" `Quick
            test_hmm_parallel_determinism;
          Alcotest.test_case "more domains than restarts" `Quick
            test_more_domains_than_restarts;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "degenerate restart skipped" `Quick
            test_degenerate_restart_skipped;
          Alcotest.test_case "healthy fit skips nothing" `Quick
            test_healthy_fit_skips_nothing;
          Alcotest.test_case "pp_fit_stats" `Quick test_pp_fit_stats;
          Alcotest.test_case "all degenerate fails" `Quick test_all_degenerate_fails;
          Alcotest.test_case "zero likelihood carries time" `Quick
            test_zero_likelihood_carries_time;
          Alcotest.test_case "floors keep fit alive" `Quick
            test_em_floors_keep_fit_alive;
        ] );
      ( "chunked sweep",
        [
          Alcotest.test_case "mmhd inline = pooled per K" `Quick
            test_mmhd_chunked_pool_identity;
          Alcotest.test_case "hmm inline = pooled per K" `Quick
            test_hmm_chunked_pool_identity;
          Alcotest.test_case "cross-K logL drift bounded" `Quick
            test_chunked_loglik_drift_bounded;
          Alcotest.test_case "restart x sweep composition" `Quick
            test_restart_and_sweep_parallelism_compose;
        ] );
      ( "float32",
        [
          Alcotest.test_case "f32 drift bounded" `Quick test_f32_drift_bounded;
          Alcotest.test_case "f32 inline = pooled" `Quick
            test_f32_chunked_matches_f32_serial_contract;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "reuse across sizes" `Quick
            test_workspace_reuse_across_sizes;
          Alcotest.test_case "restart validation" `Quick test_restarts_validation;
        ] );
    ]

(* Unit and property tests for the stats substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Rng --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Stats.Rng.create 42 and b = Stats.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Stats.Rng.bits64 a = Stats.Rng.bits64 b)

let test_rng_copy () =
  let a = Stats.Rng.create 7 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stats.Rng.bits64 a)
    (Stats.Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Stats.Rng.create 7 in
  let b = Stats.Rng.split a in
  let xs = Array.init 50 (fun _ -> Stats.Rng.bits64 a) in
  let ys = Array.init 50 (fun _ -> Stats.Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_rng_float_range () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Stats.Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %f" x
  done

let test_rng_float_mean () =
  let rng = Stats.Rng.create 5 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Stats.Rng.float rng)
  done;
  check_close 0.01 "mean ~ 1/2" 0.5 (Stats.Summary.mean s);
  check_close 0.01 "variance ~ 1/12" (1. /. 12.) (Stats.Summary.variance s)

let test_rng_int_bounds () =
  let rng = Stats.Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Stats.Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done

let test_rng_int_uniform () =
  let rng = Stats.Rng.create 13 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Stats.Rng.int rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let f = float_of_int c /. float_of_int n in
      if abs_float (f -. 0.2) > 0.01 then Alcotest.failf "bucket %d biased: %f" i f)
    counts

let test_rng_int_invalid () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0))

let test_rng_bool_balance () =
  let rng = Stats.Rng.create 17 in
  let t = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Stats.Rng.bool rng then incr t
  done;
  check_close 0.01 "bool is fair" 0.5 (float_of_int !t /. float_of_int n)

(* --- Sampler ----------------------------------------------------------- *)

let moments f n =
  let s = Stats.Summary.create () in
  for _ = 1 to n do
    Stats.Summary.add s (f ())
  done;
  s

let test_uniform_sampler () =
  let rng = Stats.Rng.create 21 in
  let s = moments (fun () -> Stats.Sampler.uniform rng ~lo:2. ~hi:6.) 50_000 in
  check_close 0.05 "mean" 4. (Stats.Summary.mean s);
  Alcotest.(check bool) "bounds" true (Stats.Summary.min s >= 2. && Stats.Summary.max s < 6.)

let test_uniform_invalid () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Sampler.uniform: lo > hi") (fun () ->
      ignore (Stats.Sampler.uniform rng ~lo:2. ~hi:1.))

let test_exponential_sampler () =
  let rng = Stats.Rng.create 23 in
  let s = moments (fun () -> Stats.Sampler.exponential rng ~rate:2.) 100_000 in
  check_close 0.01 "mean = 1/rate" 0.5 (Stats.Summary.mean s);
  check_close 0.02 "std = 1/rate" 0.5 (Stats.Summary.stddev s);
  Alcotest.(check bool) "non-negative" true (Stats.Summary.min s >= 0.)

let test_exponential_invalid () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "rate 0" (Invalid_argument "Sampler.exponential: rate <= 0")
    (fun () -> ignore (Stats.Sampler.exponential rng ~rate:0.))

let test_pareto_sampler () =
  let rng = Stats.Rng.create 25 in
  (* shape 3 has finite mean = shape*scale/(shape-1) = 3. *)
  let s = moments (fun () -> Stats.Sampler.pareto rng ~shape:3. ~scale:2.) 200_000 in
  check_close 0.08 "mean" 3. (Stats.Summary.mean s);
  Alcotest.(check bool) "min >= scale" true (Stats.Summary.min s >= 2.)

let test_normal_sampler () =
  let rng = Stats.Rng.create 27 in
  let s = moments (fun () -> Stats.Sampler.normal rng ~mean:(-1.) ~std:2.) 100_000 in
  check_close 0.03 "mean" (-1.) (Stats.Summary.mean s);
  check_close 0.03 "std" 2. (Stats.Summary.stddev s)

let test_bernoulli_sampler () =
  let rng = Stats.Rng.create 29 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Stats.Sampler.bernoulli rng ~p:0.3 then incr hits
  done;
  check_close 0.01 "p" 0.3 (float_of_int !hits /. 100_000.)

let test_categorical_sampler () =
  let rng = Stats.Rng.create 31 in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Stats.Sampler.categorical rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight bucket never drawn" 0 counts.(1);
  check_close 0.01 "ratio" 0.25 (float_of_int counts.(0) /. 40_000.)

let test_categorical_invalid () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "zero total"
    (Invalid_argument "Sampler.categorical: total weight <= 0") (fun () ->
      ignore (Stats.Sampler.categorical rng [| 0.; 0. |]))

let test_dirichlet_like () =
  let rng = Stats.Rng.create 33 in
  for _ = 1 to 100 do
    let v = Stats.Sampler.dirichlet_like rng 6 in
    check_float "sums to 1" 1. (Array.fold_left ( +. ) 0. v);
    Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.)) v
  done

let test_shuffle_is_permutation () =
  let rng = Stats.Rng.create 35 in
  let a = Array.init 20 (fun i -> i) in
  let b = Array.copy a in
  Stats.Sampler.shuffle rng b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "same multiset" a sb

(* --- Summary ----------------------------------------------------------- *)

let test_summary_known_values () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_close 1e-9 "variance" (5. /. 3.) (Stats.Summary.variance s);
  check_float "min" 1. (Stats.Summary.min s);
  check_float "max" 4. (Stats.Summary.max s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check_float "mean of empty" 0. (Stats.Summary.mean s);
  check_float "variance of empty" 0. (Stats.Summary.variance s)

let test_quantiles () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "median" 30. (Stats.Summary.median xs);
  check_float "q0" 10. (Stats.Summary.quantile xs 0.);
  check_float "q1" 50. (Stats.Summary.quantile xs 1.);
  check_float "q25" 20. (Stats.Summary.quantile xs 0.25)

let test_quantile_interpolation () =
  let xs = [| 0.; 1. |] in
  check_float "interpolated" 0.3 (Stats.Summary.quantile xs 0.3)

let test_quantile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile: empty sample")
    (fun () -> ignore (Stats.Summary.quantile [||] 0.5))

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_binning () =
  let h = Stats.Histogram.create ~m:4 ~lo:0. ~hi:8. in
  Alcotest.(check int) "first bin" 0 (Stats.Histogram.index_of h 0.5);
  Alcotest.(check int) "second bin" 1 (Stats.Histogram.index_of h 2.5);
  Alcotest.(check int) "clamp low" 0 (Stats.Histogram.index_of h (-3.));
  Alcotest.(check int) "clamp high" 3 (Stats.Histogram.index_of h 100.);
  check_float "width" 2. (Stats.Histogram.width h);
  check_float "value_of = upper edge" 4. (Stats.Histogram.value_of h 1)

let test_histogram_pmf () =
  let h = Stats.Histogram.create ~m:2 ~lo:0. ~hi:2. in
  List.iter (Stats.Histogram.add h) [ 0.1; 0.2; 1.5 ];
  let pmf = Stats.Histogram.pmf h in
  check_float "bin 0" (2. /. 3.) pmf.(0);
  check_float "bin 1" (1. /. 3.) pmf.(1);
  Alcotest.(check int) "total" 3 (Stats.Histogram.total h)

let test_histogram_empty_pmf () =
  let h = Stats.Histogram.create ~m:3 ~lo:0. ~hi:1. in
  Alcotest.(check (array (float 0.))) "all zero" [| 0.; 0.; 0. |] (Stats.Histogram.pmf h)

let test_histogram_mode () =
  let h = Stats.Histogram.create ~m:4 ~lo:0. ~hi:4. in
  List.iter (Stats.Histogram.add h) [ 2.5; 2.7; 0.5 ];
  check_float "mode = upper edge of bin 2" 3. (Stats.Histogram.mode_value h)

let test_histogram_invalid () =
  Alcotest.check_raises "m <= 0" (Invalid_argument "Histogram.create: m <= 0") (fun () ->
      ignore (Stats.Histogram.create ~m:0 ~lo:0. ~hi:1.));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Stats.Histogram.create ~m:3 ~lo:1. ~hi:1.))

let test_cdf_of_pmf () =
  let cdf = Stats.Histogram.cdf_of_pmf [| 0.25; 0.25; 0.5 |] in
  check_float "c0" 0.25 cdf.(0);
  check_float "c1" 0.5 cdf.(1);
  check_float "c2 forced to 1" 1. cdf.(2)

let test_total_variation () =
  check_float "identical" 0. (Stats.Histogram.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  check_float "disjoint" 1. (Stats.Histogram.total_variation [| 1.; 0. |] [| 0.; 1. |])

let test_normalize_invalid () =
  Alcotest.check_raises "zero sum" (Invalid_argument "Histogram.normalize: non-positive sum")
    (fun () -> ignore (Stats.Histogram.normalize [| 0.; 0. |]))

(* --- Matrix ------------------------------------------------------------ *)

let test_row_normalize () =
  let m = [| [| 1.; 3. |]; [| 0.; 0. |] |] in
  Stats.Matrix.row_normalize m;
  check_float "normalized" 0.25 m.(0).(0);
  check_float "zero row becomes uniform" 0.5 m.(1).(0);
  Alcotest.(check bool) "is stochastic" true (Stats.Matrix.is_stochastic m)

let test_max_abs_diff () =
  let a = [| [| 1.; 2. |] |] and b = [| [| 1.5; 2. |] |] in
  check_float "diff" 0.5 (Stats.Matrix.max_abs_diff a b)

let test_random_stochastic () =
  let rng = Stats.Rng.create 37 in
  let m = Stats.Matrix.random_stochastic rng 4 6 in
  Alcotest.(check bool) "stochastic" true (Stats.Matrix.is_stochastic m);
  Alcotest.(check (pair int int)) "dims" (4, 6) (Stats.Matrix.dims m)

(* --- QCheck properties -------------------------------------------------- *)

let pmf_gen =
  QCheck.Gen.(
    list_size (int_range 1 12) (float_range 0.001 10.)
    |> map (fun ws -> Stats.Histogram.normalize (Array.of_list ws)))

let pmf_arb = QCheck.make ~print:(fun a -> String.concat ";" (Array.to_list (Array.map string_of_float a))) pmf_gen

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone, ends at 1" ~count:200 pmf_arb (fun pmf ->
      let cdf = Stats.Histogram.cdf_of_pmf pmf in
      let ok = ref (abs_float (cdf.(Array.length cdf - 1) -. 1.) < 1e-6) in
      for i = 1 to Array.length cdf - 1 do
        if cdf.(i) < cdf.(i - 1) -. 1e-12 then ok := false
      done;
      !ok)

let prop_tv_bounds =
  QCheck.Test.make ~name:"TV distance in [0,1], symmetric" ~count:200
    (QCheck.pair pmf_arb pmf_arb) (fun (p, q) ->
      QCheck.assume (Array.length p = Array.length q);
      let d = Stats.Histogram.total_variation p q in
      d >= -1e-12
      && d <= 1. +. 1e-12
      && abs_float (d -. Stats.Histogram.total_variation q p) < 1e-12)

let prop_quantile_in_range =
  QCheck.Test.make ~name:"quantile within sample range" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 40) (float_bound_exclusive 100.)) (float_bound_inclusive 1.))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let v = Stats.Summary.quantile a q in
      let lo = Array.fold_left Float.min a.(0) a in
      let hi = Array.fold_left Float.max a.(0) a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_histogram_index_in_range =
  QCheck.Test.make ~name:"histogram index within bins" ~count:500
    QCheck.(pair (int_range 1 20) (float_range (-1000.) 1000.))
    (fun (m, x) ->
      let h = Stats.Histogram.create ~m ~lo:(-10.) ~hi:10. in
      let j = Stats.Histogram.index_of h x in
      j >= 0 && j < m)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_cdf_monotone; prop_tv_bounds; prop_quantile_in_range; prop_histogram_index_in_range ]

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float moments" `Quick test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_sampler;
          Alcotest.test_case "uniform invalid" `Quick test_uniform_invalid;
          Alcotest.test_case "exponential" `Quick test_exponential_sampler;
          Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
          Alcotest.test_case "pareto" `Quick test_pareto_sampler;
          Alcotest.test_case "normal" `Quick test_normal_sampler;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli_sampler;
          Alcotest.test_case "categorical" `Quick test_categorical_sampler;
          Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
          Alcotest.test_case "dirichlet-like" `Quick test_dirichlet_like;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
        ] );
      ( "summary",
        [
          Alcotest.test_case "known values" `Quick test_summary_known_values;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "invalid" `Quick test_quantile_invalid;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "pmf" `Quick test_histogram_pmf;
          Alcotest.test_case "empty pmf" `Quick test_histogram_empty_pmf;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
          Alcotest.test_case "cdf of pmf" `Quick test_cdf_of_pmf;
          Alcotest.test_case "total variation" `Quick test_total_variation;
          Alcotest.test_case "normalize invalid" `Quick test_normalize_invalid;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "row normalize" `Quick test_row_normalize;
          Alcotest.test_case "max abs diff" `Quick test_max_abs_diff;
          Alcotest.test_case "random stochastic" `Quick test_random_stochastic;
        ] );
      ("properties", qcheck_cases);
    ]

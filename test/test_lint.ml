(* Unit tests for the dcl-lint contract checker: each rule fires on a
   minimal source at the exact (line, rule) position, suppression and
   its failure modes behave as documented, and the CLI honours its
   exit-code contract.  The end-end fixture corpus under
   [lint_fixtures/] is exercised both through [--fixtures] here and by
   [dune build @lint]. *)

let pairs diags = List.map (fun d -> Dcl_lint.(d.d_line, d.d_rule)) diags

let lint ?(path = "bin/fixture/under_test.ml") ?(mli_exists = true) src =
  pairs (Dcl_lint.lint_source ~mli_exists ~path src)

let check_diags name expected actual =
  Alcotest.(check (list (pair int string))) name expected actual

(* --- rule firing positions -------------------------------------------- *)

let test_r1_rng () =
  check_diags "Random use outside rng.ml"
    [ (2, "R1") ]
    (lint ~path:"lib/hmm/hmm.ml" "let x = 1\nlet y () = Random.int 7\n");
  check_diags "wall-clock seeding" [ (1, "R1") ]
    (lint ~path:"bench/bench_em.ml" "let t0 = Unix.gettimeofday ()\n");
  check_diags "sanctioned in rng.ml" []
    (lint ~path:"lib/stats/rng.ml" "let y () = Random.int 7\n")

let test_r2_concurrency () =
  check_diags "Atomic outside the sanctioned homes"
    [ (1, "R2") ]
    (lint ~path:"lib/dcl/dcl.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned in pool.ml" []
    (lint ~path:"lib/stats/pool.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned under lib/obs/" []
    (lint ~path:"lib/obs/obs.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned in the sweep chunk driver" []
    (lint ~path:"lib/em/em_sweep.ml" "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "sanctioned under lib/fleet/" []
    (lint ~path:"lib/fleet/workspace_cache.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "sanctioned under lib/sketch/" []
    (lint ~path:"lib/sketch/front.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "other em modules are not a concurrency home" [ (1, "R2") ]
    (lint ~path:"lib/em/em_kernel.ml" "let k = Domain.DLS.new_key (fun () -> 0)\n")

let test_r3_float_cmp () =
  check_diags "= against a float literal" [ (1, "R3") ]
    (lint "let f x = x = 1.0\n");
  check_diags "<> with float arithmetic operand" [ (1, "R3") ]
    (lint "let f a b = (a +. b) <> 0.5\n");
  check_diags "polymorphic compare on floats" [ (1, "R3") ]
    (lint "let f x = compare x 1.0\n");
  check_diags "hand-rolled abs_float epsilon" [ (1, "R3") ]
    (lint "let f a b = abs_float (a -. b) < 1e-9\n");
  check_diags "int equality untouched" [] (lint "let f x = x = 1\n");
  check_diags "sanctioned in float_cmp.ml" []
    (lint ~path:"lib/stats/float_cmp.ml" "let f x = x = 1.0\n")

let test_r4_io () =
  check_diags "print_endline in lib/" [ (1, "R4") ]
    (lint ~path:"lib/dcl/dcl.ml" "let f () = print_endline \"x\"\n");
  check_diags "exit in lib/" [ (1, "R4") ]
    (lint ~path:"lib/dcl/dcl.ml" "let f () = exit 1\n");
  check_diags "binaries may print" []
    (lint ~path:"bin/dcl_cli.ml" "let f () = print_endline \"x\"\n")

let test_r5_hot_alloc () =
  let src =
    "let f xs =\n\
     \  (* lint: hot *)\n\
     \  let y = List.length xs in\n\
     \  (* lint: end-hot *)\n\
     \  let z = List.length xs in\n\
     \  y + z\n"
  in
  check_diags "allocating combinator only inside the fence" [ (3, "R5") ] (lint src);
  check_diags "list cons inside the fence" [ (2, "R5") ]
    (lint "let f x =\n  (* lint: hot *) x :: []\n(* lint: end-hot *)\n");
  check_diags "array accessors stay allowed" []
    (lint "let f (a : float array) =\n  (* lint: hot *)\n  Array.get a 0\n(* lint: end-hot *)\n")

let test_r5_bigarray () =
  (* Load/store accessors — safe and unsafe alike — are fence-clean,
     both through the full path and through a module alias. *)
  check_diags "accessors inside the fence" []
    (lint
       "module Ba = Bigarray.Array1\n\
        let f b =\n\
        \  (* lint: hot *)\n\
        \  Ba.unsafe_set b 0 (Bigarray.Array1.unsafe_get b 1 +. Ba.get b 2)\n\
        \  (* lint: end-hot *)\n");
  check_diags "Bigarray create inside the fence allocates" [ (3, "R5") ]
    (lint
       "let f () =\n\
        \  (* lint: hot *)\n\
        \  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 4\n\
        \  (* lint: end-hot *)\n");
  check_diags "aliased sub inside the fence allocates" [ (4, "R5") ]
    (lint
       "module Ba = Bigarray.Array1\n\
        let f b n =\n\
        \  (* lint: hot *)\n\
        \  Ba.sub b 0 n\n\
        \  (* lint: end-hot *)\n");
  check_diags "unsafe access outside any fence" [ (2, "R5") ]
    (lint "module Ba = Bigarray.Array1\nlet f b = Ba.unsafe_get b 0\n");
  check_diags "safe access outside a fence is fine" []
    (lint "module Ba = Bigarray.Array1\nlet f b = Ba.get b 0\n");
  check_diags "non-Bigarray alias is not captured" []
    (lint "module Ba = Stats.Matrix\nlet f b = Ba.unsafe_get b 0\n")

let test_r6_mli () =
  check_diags "bare lib module" [ (1, "R6") ]
    (lint ~path:"lib/dcl/dcl.ml" ~mli_exists:false "let x = 1\n");
  check_diags "mli present" [] (lint ~path:"lib/dcl/dcl.ml" ~mli_exists:true "let x = 1\n");
  check_diags "bin modules exempt" []
    (lint ~path:"bin/dcl_cli.ml" ~mli_exists:false "let x = 1\n")

(* --- suppression ------------------------------------------------------ *)

let test_allow_scope () =
  check_diags "allow covers the next line" []
    (lint "(* lint: allow R3 test reason *)\nlet f x = x = 1.0\n");
  check_diags "allow covers its own line" []
    (lint "let f x = x = 1.0 (* lint: allow R3 test reason *)\n");
  check_diags "allow does not reach two lines down" [ (3, "R3") ]
    (lint "(* lint: allow R3 test reason *)\nlet g x = x + 1\nlet f x = x = 1.0\n");
  check_diags "allow is rule-specific" [ (2, "R3") ]
    (lint "(* lint: allow R1 test reason *)\nlet f x = x = 1.0\n")

let test_bad_directives () =
  check_diags "allow without a reason is R0, and does not suppress"
    [ (1, "R0"); (2, "R3") ]
    (lint "(* lint: allow R3 *)\nlet f x = x = 1.0\n");
  check_diags "unknown rule id" [ (1, "R0") ] (lint "(* lint: allow R12 reason *)\n");
  check_diags "unclosed hot fence" [ (1, "R0") ] (lint "(* lint: hot *)\nlet x = 1\n");
  check_diags "R0 cannot be suppressed" [ (1, "R0"); (2, "R0") ]
    (lint "(* lint: allow R0 reason *)\n(* lint: allow R3 *)\n")

let test_owner_directives () =
  check_diags "unknown owner kind is R0" [ (1, "R0") ]
    (lint "(* lint: owner chef *)\nlet x = ref 0\n");
  check_diags "guarded-by without a mutex name is R0" [ (1, "R0") ]
    (lint "(* lint: owner shared guarded-by *)\nlet x = ref 0\n");
  check_diags "guarded-by only qualifies owner shared" [ (1, "R0") ]
    (lint "(* lint: owner driver guarded-by m *)\nlet x = ref 0\n");
  check_diags "well-formed owner annotations parse clean" []
    (lint
       "(* lint: owner driver *)\n\
        let a = ref 0\n\
        (* lint: owner worker *)\n\
        let b = ref 0\n\
        (* lint: owner shared guarded-by m *)\n\
        let c = ref 0\n")

(* --- CLI exit codes --------------------------------------------------- *)

let test_cli_exit_codes () =
  Alcotest.(check int) "--version exits 0" 0 (Dcl_lint.Cli.run [ "--version" ]);
  Alcotest.(check int) "--help exits 0" 0 (Dcl_lint.Cli.run [ "--help" ]);
  Alcotest.(check int) "unknown option exits 2" 2 (Dcl_lint.Cli.run [ "--frobnicate" ]);
  Alcotest.(check int) "no paths exits 2" 2 (Dcl_lint.Cli.run []);
  Alcotest.(check int) "missing path exits 2" 2 (Dcl_lint.Cli.run [ "no/such/dir" ])

let corpus_dir name = Filename.concat (Filename.dirname Sys.executable_name) name

let test_cli_fixture_corpus () =
  (* The corpus is a dune dep of this test, so it is staged next to the
     executable.  As a self-test every fixture must match its
     expectations; linted as ordinary sources the violation fixtures
     must drive the exit code to 1. *)
  let corpus = corpus_dir "lint_fixtures" in
  Alcotest.(check int) "--fixtures corpus is green" 0
    (Dcl_lint.Cli.run [ "--fixtures"; corpus ]);
  Alcotest.(check int) "violation fixtures fail a plain lint" 1
    (Dcl_lint.Cli.run [ "--json"; corpus ])

let test_cli_typed_fixture_corpus () =
  (* The typed corpus is a compiled dune library staged (with its .cmt
     artifacts) next to the executable, so the R7-R9 expectations run
     against real typedtrees. *)
  let corpus = corpus_dir "lint_fixtures_typed" in
  Alcotest.(check int) "typed corpus self-test is green" 0
    (Dcl_lint.Cli.run [ "--cmt"; corpus; "--fixtures"; corpus ]);
  Alcotest.(check int) "typed violations fail a plain lint" 1
    (Dcl_lint.Cli.run [ "--json"; "--cmt"; corpus; corpus ])

let test_cli_only () =
  let r3 = Filename.concat (corpus_dir "lint_fixtures") "r3_violation.ml" in
  Alcotest.(check int) "--only with an unknown rule exits 2" 2
    (Dcl_lint.Cli.run [ "--only"; "R42"; r3 ]);
  Alcotest.(check int) "--only keeping the firing rule reports it" 1
    (Dcl_lint.Cli.run [ "--json"; "--only"; "R3"; r3 ]);
  Alcotest.(check int) "--only filtering the firing rule away is clean" 0
    (Dcl_lint.Cli.run [ "--json"; "--only"; "R1"; r3 ]);
  Alcotest.(check int) "long rule names resolve" 1
    (Dcl_lint.Cli.run [ "--json"; "--only"; "float-cmp"; r3 ])

let test_cli_changed_files () =
  let corpus = corpus_dir "lint_fixtures" in
  let with_list lines f =
    let file = Filename.temp_file "dcl_lint_changed" ".txt" in
    let oc = open_out file in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)
  in
  with_list [ "r3_violation.ml" ] (fun file ->
      Alcotest.(check int) "sweep narrowed to a listed violation exits 1" 1
        (Dcl_lint.Cli.run [ "--json"; "--changed-files"; file; corpus ]));
  with_list [ "lib/nowhere/untouched.ml" ] (fun file ->
      Alcotest.(check int) "sweep narrowed to no listed file exits 0" 0
        (Dcl_lint.Cli.run [ "--json"; "--changed-files"; file; corpus ]));
  Alcotest.(check int) "missing list file exits 2" 2
    (Dcl_lint.Cli.run [ "--changed-files"; "/no/such/list"; corpus ])

(* --- SARIF -------------------------------------------------------------- *)

(* Minimal recursive-descent JSON syntax checker: enough to prove the
   exporter emits a well-formed document without a JSON dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then incr pos else raise Exit in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> raise Exit
  and lit w = String.iter expect w
  and number () =
    let num = function
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | _ -> false
    in
    while num (peek ()) do
      incr pos
    done
  and str () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
          incr pos;
          if peek () = None then raise Exit;
          incr pos;
          go ()
      | Some _ ->
          incr pos;
          go ()
      | None -> raise Exit
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec fields () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            fields ()
        | Some '}' -> incr pos
        | _ -> raise Exit
      in
      fields ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items ()
        | Some ']' -> incr pos
        | _ -> raise Exit
      in
      items ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_sarif_document () =
  let diags =
    Dcl_lint.lint_source ~mli_exists:true ~path:"lib/dcl/dcl.ml"
      "let f x = x = 1.0\nlet g () = print_endline \"x\"\n"
  in
  Alcotest.(check int) "probe source fires two rules" 2 (List.length diags);
  let s = Dcl_lint.Sarif.to_string diags in
  Alcotest.(check bool) "SARIF parses as JSON" true (json_valid s);
  List.iter
    (fun field ->
      Alcotest.(check bool) (Printf.sprintf "SARIF carries %s" field) true
        (contains s field))
    [
      "\"$schema\"";
      "\"version\":\"2.1.0\"";
      "\"runs\"";
      "\"driver\"";
      "\"rules\"";
      "\"results\"";
      "\"ruleId\":\"R3\"";
      "\"ruleId\":\"R4\"";
      "\"ruleIndex\"";
      "\"level\":\"error\"";
      "\"physicalLocation\"";
      "\"startLine\":1";
      "\"startLine\":2";
      "\"uri\":\"lib/dcl/dcl.ml\"";
      "\"originalUriBaseIds\"";
      "[float-cmp]";
      "[io-containment]";
    ];
  Alcotest.(check bool) "an empty run still parses" true
    (json_valid (Dcl_lint.Sarif.to_string []))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 rng containment" `Quick test_r1_rng;
          Alcotest.test_case "R2 concurrency containment" `Quick test_r2_concurrency;
          Alcotest.test_case "R3 float comparison" `Quick test_r3_float_cmp;
          Alcotest.test_case "R4 io containment" `Quick test_r4_io;
          Alcotest.test_case "R5 hot-region allocation" `Quick test_r5_hot_alloc;
          Alcotest.test_case "R5 Bigarray containment" `Quick test_r5_bigarray;
          Alcotest.test_case "R6 missing mli" `Quick test_r6_mli;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow scope" `Quick test_allow_scope;
          Alcotest.test_case "bad directives" `Quick test_bad_directives;
          Alcotest.test_case "owner directives" `Quick test_owner_directives;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit codes" `Quick test_cli_exit_codes;
          Alcotest.test_case "fixture corpus" `Quick test_cli_fixture_corpus;
          Alcotest.test_case "typed fixture corpus" `Quick test_cli_typed_fixture_corpus;
          Alcotest.test_case "--only filter" `Quick test_cli_only;
          Alcotest.test_case "--changed-files filter" `Quick test_cli_changed_files;
        ] );
      ( "sarif",
        [ Alcotest.test_case "document shape" `Quick test_sarif_document ] );
    ]

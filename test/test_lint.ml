(* Unit tests for the dcl-lint contract checker: each rule fires on a
   minimal source at the exact (line, rule) position, suppression and
   its failure modes behave as documented, and the CLI honours its
   exit-code contract.  The end-end fixture corpus under
   [lint_fixtures/] is exercised both through [--fixtures] here and by
   [dune build @lint]. *)

let pairs diags = List.map (fun d -> Dcl_lint.(d.d_line, d.d_rule)) diags

let lint ?(path = "bin/fixture/under_test.ml") ?(mli_exists = true) src =
  pairs (Dcl_lint.lint_source ~mli_exists ~path src)

let check_diags name expected actual =
  Alcotest.(check (list (pair int string))) name expected actual

(* --- rule firing positions -------------------------------------------- *)

let test_r1_rng () =
  check_diags "Random use outside rng.ml"
    [ (2, "R1") ]
    (lint ~path:"lib/hmm/hmm.ml" "let x = 1\nlet y () = Random.int 7\n");
  check_diags "wall-clock seeding" [ (1, "R1") ]
    (lint ~path:"bench/bench_em.ml" "let t0 = Unix.gettimeofday ()\n");
  check_diags "sanctioned in rng.ml" []
    (lint ~path:"lib/stats/rng.ml" "let y () = Random.int 7\n")

let test_r2_concurrency () =
  check_diags "Atomic outside the sanctioned homes"
    [ (1, "R2") ]
    (lint ~path:"lib/dcl/dcl.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned in pool.ml" []
    (lint ~path:"lib/stats/pool.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned under lib/obs/" []
    (lint ~path:"lib/obs/obs.ml" "let c = Atomic.make 0\n");
  check_diags "sanctioned in the sweep chunk driver" []
    (lint ~path:"lib/em/em_sweep.ml" "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "sanctioned under lib/fleet/" []
    (lint ~path:"lib/fleet/workspace_cache.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "sanctioned under lib/sketch/" []
    (lint ~path:"lib/sketch/front.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_diags "other em modules are not a concurrency home" [ (1, "R2") ]
    (lint ~path:"lib/em/em_kernel.ml" "let k = Domain.DLS.new_key (fun () -> 0)\n")

let test_r3_float_cmp () =
  check_diags "= against a float literal" [ (1, "R3") ]
    (lint "let f x = x = 1.0\n");
  check_diags "<> with float arithmetic operand" [ (1, "R3") ]
    (lint "let f a b = (a +. b) <> 0.5\n");
  check_diags "polymorphic compare on floats" [ (1, "R3") ]
    (lint "let f x = compare x 1.0\n");
  check_diags "hand-rolled abs_float epsilon" [ (1, "R3") ]
    (lint "let f a b = abs_float (a -. b) < 1e-9\n");
  check_diags "int equality untouched" [] (lint "let f x = x = 1\n");
  check_diags "sanctioned in float_cmp.ml" []
    (lint ~path:"lib/stats/float_cmp.ml" "let f x = x = 1.0\n")

let test_r4_io () =
  check_diags "print_endline in lib/" [ (1, "R4") ]
    (lint ~path:"lib/dcl/dcl.ml" "let f () = print_endline \"x\"\n");
  check_diags "exit in lib/" [ (1, "R4") ]
    (lint ~path:"lib/dcl/dcl.ml" "let f () = exit 1\n");
  check_diags "binaries may print" []
    (lint ~path:"bin/dcl_cli.ml" "let f () = print_endline \"x\"\n")

let test_r5_hot_alloc () =
  let src =
    "let f xs =\n\
     \  (* lint: hot *)\n\
     \  let y = List.length xs in\n\
     \  (* lint: end-hot *)\n\
     \  let z = List.length xs in\n\
     \  y + z\n"
  in
  check_diags "allocating combinator only inside the fence" [ (3, "R5") ] (lint src);
  check_diags "list cons inside the fence" [ (2, "R5") ]
    (lint "let f x =\n  (* lint: hot *) x :: []\n(* lint: end-hot *)\n");
  check_diags "array accessors stay allowed" []
    (lint "let f (a : float array) =\n  (* lint: hot *)\n  Array.get a 0\n(* lint: end-hot *)\n")

let test_r5_bigarray () =
  (* Load/store accessors — safe and unsafe alike — are fence-clean,
     both through the full path and through a module alias. *)
  check_diags "accessors inside the fence" []
    (lint
       "module Ba = Bigarray.Array1\n\
        let f b =\n\
        \  (* lint: hot *)\n\
        \  Ba.unsafe_set b 0 (Bigarray.Array1.unsafe_get b 1 +. Ba.get b 2)\n\
        \  (* lint: end-hot *)\n");
  check_diags "Bigarray create inside the fence allocates" [ (3, "R5") ]
    (lint
       "let f () =\n\
        \  (* lint: hot *)\n\
        \  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 4\n\
        \  (* lint: end-hot *)\n");
  check_diags "aliased sub inside the fence allocates" [ (4, "R5") ]
    (lint
       "module Ba = Bigarray.Array1\n\
        let f b n =\n\
        \  (* lint: hot *)\n\
        \  Ba.sub b 0 n\n\
        \  (* lint: end-hot *)\n");
  check_diags "unsafe access outside any fence" [ (2, "R5") ]
    (lint "module Ba = Bigarray.Array1\nlet f b = Ba.unsafe_get b 0\n");
  check_diags "safe access outside a fence is fine" []
    (lint "module Ba = Bigarray.Array1\nlet f b = Ba.get b 0\n");
  check_diags "non-Bigarray alias is not captured" []
    (lint "module Ba = Stats.Matrix\nlet f b = Ba.unsafe_get b 0\n")

let test_r6_mli () =
  check_diags "bare lib module" [ (1, "R6") ]
    (lint ~path:"lib/dcl/dcl.ml" ~mli_exists:false "let x = 1\n");
  check_diags "mli present" [] (lint ~path:"lib/dcl/dcl.ml" ~mli_exists:true "let x = 1\n");
  check_diags "bin modules exempt" []
    (lint ~path:"bin/dcl_cli.ml" ~mli_exists:false "let x = 1\n")

(* --- suppression ------------------------------------------------------ *)

let test_allow_scope () =
  check_diags "allow covers the next line" []
    (lint "(* lint: allow R3 test reason *)\nlet f x = x = 1.0\n");
  check_diags "allow covers its own line" []
    (lint "let f x = x = 1.0 (* lint: allow R3 test reason *)\n");
  check_diags "allow does not reach two lines down" [ (3, "R3") ]
    (lint "(* lint: allow R3 test reason *)\nlet g x = x + 1\nlet f x = x = 1.0\n");
  check_diags "allow is rule-specific" [ (2, "R3") ]
    (lint "(* lint: allow R1 test reason *)\nlet f x = x = 1.0\n")

let test_bad_directives () =
  check_diags "allow without a reason is R0, and does not suppress"
    [ (1, "R0"); (2, "R3") ]
    (lint "(* lint: allow R3 *)\nlet f x = x = 1.0\n");
  check_diags "unknown rule id" [ (1, "R0") ] (lint "(* lint: allow R9 reason *)\n");
  check_diags "unclosed hot fence" [ (1, "R0") ] (lint "(* lint: hot *)\nlet x = 1\n");
  check_diags "R0 cannot be suppressed" [ (1, "R0"); (2, "R0") ]
    (lint "(* lint: allow R0 reason *)\n(* lint: allow R3 *)\n")

(* --- CLI exit codes --------------------------------------------------- *)

let test_cli_exit_codes () =
  Alcotest.(check int) "--version exits 0" 0 (Dcl_lint.Cli.run [ "--version" ]);
  Alcotest.(check int) "--help exits 0" 0 (Dcl_lint.Cli.run [ "--help" ]);
  Alcotest.(check int) "unknown option exits 2" 2 (Dcl_lint.Cli.run [ "--frobnicate" ]);
  Alcotest.(check int) "no paths exits 2" 2 (Dcl_lint.Cli.run []);
  Alcotest.(check int) "missing path exits 2" 2 (Dcl_lint.Cli.run [ "no/such/dir" ])

let test_cli_fixture_corpus () =
  (* The corpus is a dune dep of this test, so it is staged next to the
     executable.  As a self-test every fixture must match its
     expectations; linted as ordinary sources the violation fixtures
     must drive the exit code to 1. *)
  let corpus = Filename.concat (Filename.dirname Sys.executable_name) "lint_fixtures" in
  Alcotest.(check int) "--fixtures corpus is green" 0
    (Dcl_lint.Cli.run [ "--fixtures"; corpus ]);
  Alcotest.(check int) "violation fixtures fail a plain lint" 1
    (Dcl_lint.Cli.run [ "--json"; corpus ])

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 rng containment" `Quick test_r1_rng;
          Alcotest.test_case "R2 concurrency containment" `Quick test_r2_concurrency;
          Alcotest.test_case "R3 float comparison" `Quick test_r3_float_cmp;
          Alcotest.test_case "R4 io containment" `Quick test_r4_io;
          Alcotest.test_case "R5 hot-region allocation" `Quick test_r5_hot_alloc;
          Alcotest.test_case "R5 Bigarray containment" `Quick test_r5_bigarray;
          Alcotest.test_case "R6 missing mli" `Quick test_r6_mli;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow scope" `Quick test_allow_scope;
          Alcotest.test_case "bad directives" `Quick test_bad_directives;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit codes" `Quick test_cli_exit_codes;
          Alcotest.test_case "fixture corpus" `Quick test_cli_fixture_corpus;
        ] );
    ]

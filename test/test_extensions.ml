(* Tests for the extension modules: Viterbi decoding, the generalized
   delay-factor tests, stationarity screening, sliding-window
   identification, and queue monitoring. *)

open Netsim

let check_close eps = Alcotest.(check (float eps))

(* --- Viterbi ------------------------------------------------------------- *)

let hmm_ref : Hmm.t =
  {
    n = 2;
    m = 3;
    pi = [| 0.7; 0.3 |];
    a = [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |];
    b = [| [| 0.6; 0.35; 0.05 |]; [| 0.05; 0.15; 0.8 |] |];
    c = [| 0.01; 0.05; 0.4 |];
  }

let mmhd_ref : Mmhd.t =
  {
    n = 2;
    m = 2;
    pi = [| 0.5; 0.2; 0.1; 0.2 |];
    a =
      [|
        [| 0.70; 0.20; 0.05; 0.05 |];
        [| 0.40; 0.40; 0.05; 0.15 |];
        [| 0.20; 0.05; 0.40; 0.35 |];
        [| 0.05; 0.05; 0.30; 0.60 |];
      |];
    c = [| 0.02; 0.30 |];
  }

(* Brute-force best path by enumeration for a tiny sequence. *)
let brute_viterbi_hmm (t : Hmm.t) obs =
  let emission i = function
    | Some j -> t.Hmm.b.(i).(j) *. (1. -. t.Hmm.c.(j))
    | None ->
        let acc = ref 0. in
        for j = 0 to t.Hmm.m - 1 do
          acc := !acc +. (t.Hmm.b.(i).(j) *. t.Hmm.c.(j))
        done;
        !acc
  in
  let tt = Array.length obs in
  let best = ref (neg_infinity, [||]) in
  let rec extend time path prob =
    if time = tt then begin
      if prob > fst !best then best := (prob, Array.of_list (List.rev path))
    end
    else
      for i = 0 to t.Hmm.n - 1 do
        let step =
          (match path with
          | [] -> log t.Hmm.pi.(i)
          | prev :: _ -> log t.Hmm.a.(prev).(i))
          +. log (emission i obs.(time))
        in
        extend (time + 1) (i :: path) (prob +. step)
      done
  in
  extend 0 [] 0.;
  !best

let test_hmm_viterbi_matches_brute_force () =
  let obs = [| Some 0; Some 2; None; Some 2; Some 0; Some 1 |] in
  let path, logp = Hmm.viterbi hmm_ref obs in
  let b_logp, b_path = brute_viterbi_hmm hmm_ref obs in
  check_close 1e-9 "log prob" b_logp logp;
  Alcotest.(check (array int)) "path" b_path path

let test_hmm_viterbi_tracks_regimes () =
  let obs = Array.append (Array.make 8 (Some 0)) (Array.make 8 (Some 2)) in
  let path, _ = Hmm.viterbi hmm_ref obs in
  Alcotest.(check int) "starts calm" 0 path.(2);
  Alcotest.(check int) "ends congested" 1 path.(13)

let test_mmhd_viterbi_consistency () =
  (* At observed instants the decoded state must carry the observed
     symbol. *)
  let rng = Stats.Rng.create 5 in
  let obs, _ = Mmhd.simulate rng mmhd_ref ~len:500 in
  let path, logp = Mmhd.viterbi mmhd_ref obs in
  Alcotest.(check bool) "finite log prob" true (Float.is_finite logp);
  Array.iteri
    (fun t o ->
      match o with
      | Some j -> Alcotest.(check int) "symbol consistent" j (Mmhd.symbol_of mmhd_ref path.(t))
      | None -> ())
    obs

let test_mmhd_viterbi_attributes_loss () =
  (* A loss surrounded by symbol-1 observations decodes to a symbol-1
     state (symbol 1 has the high loss probability). *)
  let obs = [| Some 1; Some 1; None; Some 1 |] in
  let path, _ = Mmhd.viterbi mmhd_ref obs in
  Alcotest.(check int) "loss decoded at symbol 1" 1 (Mmhd.symbol_of mmhd_ref path.(2))

(* --- Generalized delay-factor tests -------------------------------------- *)

let scheme = Dcl.Discretize.of_range ~m:10 ~lo:0. ~hi:1.

let test_delay_factor_indexing () =
  (* Mass at symbol 3 (1-based): with x = 1 the tested symbol is 6;
     with x = 2 it is ceil(1.5 * 3) = 5; with x = 0.5 it is 9. *)
  let pmf = Array.make 10 0. in
  pmf.(2) <- 1.;
  let v = Dcl.Vqd.of_pmf scheme pmf in
  Alcotest.(check int) "x=1" 6 (Dcl.Tests.sdcl v).Dcl.Tests.two_d_star;
  Alcotest.(check int) "x=2" 5 (Dcl.Tests.sdcl ~delay_factor:2. v).Dcl.Tests.two_d_star;
  Alcotest.(check int) "x=0.5" 9 (Dcl.Tests.sdcl ~delay_factor:0.5 v).Dcl.Tests.two_d_star

let test_delay_factor_strictness () =
  (* A distribution with its tail just above 2 d* is accepted under a
     lenient x < 1 but rejected under the default x = 1 and stricter
     x > 1. *)
  let pmf = Array.make 10 0. in
  pmf.(2) <- 0.8;
  (* d* = 3 (1-based); tail at symbol 7 > 6 = 2 d*. *)
  pmf.(6) <- 0.2;
  let v = Dcl.Vqd.of_pmf scheme pmf in
  Alcotest.(check bool) "x=1 rejects" true
    ((Dcl.Tests.sdcl v).Dcl.Tests.verdict = Dcl.Tests.Reject);
  Alcotest.(check bool) "x=0.5 accepts (tests symbol 9)" true
    ((Dcl.Tests.sdcl ~delay_factor:0.5 v).Dcl.Tests.verdict = Dcl.Tests.Accept);
  Alcotest.(check bool) "x=2 rejects too" true
    ((Dcl.Tests.sdcl ~delay_factor:2. v).Dcl.Tests.verdict = Dcl.Tests.Reject)

let test_delay_factor_invalid () =
  let v = Dcl.Vqd.of_pmf scheme (Array.make 10 0.1) in
  Alcotest.check_raises "x <= 0" (Invalid_argument "Tests: delay_factor must be positive")
    (fun () -> ignore (Dcl.Tests.sdcl ~delay_factor:0. v))

(* --- Stationarity --------------------------------------------------------- *)

let mk_record t obs = Probe.Trace.{ send_time = t; obs; truth = None }

let synthetic_trace ~n ~delay_of ~loss_every =
  let records =
    Array.init n (fun i ->
        let t = 0.02 *. float_of_int i in
        if loss_every > 0 && i mod loss_every = 0 then mk_record t Probe.Trace.Lost
        else mk_record t (Probe.Trace.Delay (delay_of i)))
  in
  Probe.Trace.create ~records ~interval:0.02 ~base_delay:0.05 ~hop_count:1

let test_stationarity_accepts_stable () =
  let rng = Stats.Rng.create 7 in
  let trace =
    synthetic_trace ~n:4000
      ~delay_of:(fun _ -> 0.05 +. (0.05 *. Stats.Rng.float rng))
      ~loss_every:50
  in
  let r = Dcl.Stationarity.check trace in
  Alcotest.(check bool) "stationary" true r.Dcl.Stationarity.stationary;
  Alcotest.(check int) "4 blocks" 4 (Array.length r.Dcl.Stationarity.blocks)

let test_stationarity_rejects_delay_shift () =
  let rng = Stats.Rng.create 7 in
  (* The second half's delays double: clear distribution drift. *)
  let trace =
    synthetic_trace ~n:4000
      ~delay_of:(fun i ->
        let base = if i < 2000 then 0.05 else 0.15 in
        base +. (0.02 *. Stats.Rng.float rng))
      ~loss_every:50
  in
  let r = Dcl.Stationarity.check trace in
  Alcotest.(check bool) "not stationary" false r.Dcl.Stationarity.stationary;
  Alcotest.(check bool) "large TV" true (r.Dcl.Stationarity.max_tv > 0.5)

let test_stationarity_rejects_loss_shift () =
  let rng = Stats.Rng.create 7 in
  let records =
    Array.init 4000 (fun i ->
        let t = 0.02 *. float_of_int i in
        let lossy = i >= 2000 in
        if (lossy && i mod 10 = 0) || ((not lossy) && i mod 1000 = 0) then
          mk_record t Probe.Trace.Lost
        else mk_record t (Probe.Trace.Delay (0.05 +. (0.05 *. Stats.Rng.float rng))))
  in
  let trace = Probe.Trace.create ~records ~interval:0.02 ~base_delay:0.05 ~hop_count:1 in
  let r = Dcl.Stationarity.check trace in
  Alcotest.(check bool) "not stationary" false r.Dcl.Stationarity.stationary;
  Alcotest.(check bool) "loss spread visible" true
    (r.Dcl.Stationarity.loss_rate_spread > 0.05)

let test_stationarity_invalid () =
  let trace = synthetic_trace ~n:4 ~delay_of:(fun _ -> 0.1) ~loss_every:0 in
  Alcotest.check_raises "too short" (Invalid_argument "Stationarity.check: trace too short")
    (fun () -> ignore (Dcl.Stationarity.check trace))

(* --- Online scan ---------------------------------------------------------- *)

(* A synthetic trace whose regime changes halfway: first half losses at
   a low symbol cluster, second half losses split low/high. *)
let online_trace () =
  let rng = Stats.Rng.create 13 in
  let n = 30_000 in
  let records =
    Array.init n (fun i ->
        let t = 0.02 *. float_of_int i in
        let second_half = i >= n / 2 in
        let u = Stats.Rng.float rng in
        if u < 0.01 then
          (* a loss: neighbors below determine its context *)
          mk_record t Probe.Trace.Lost
        else
          let near_loss = u < 0.03 in
          let delay =
            if near_loss then if second_half && u < 0.02 then 0.45 else 0.15
            else 0.05 +. (0.04 *. Stats.Rng.float rng)
          in
          mk_record t (Probe.Trace.Delay delay))
  in
  Probe.Trace.create ~records ~interval:0.02 ~base_delay:0.05 ~hop_count:1

let test_online_scan_shapes () =
  let trace = online_trace () in
  let rng = Stats.Rng.create 3 in
  let samples = Dcl.Online.scan ~rng ~window:120. ~stride:60. trace in
  Alcotest.(check bool) "several windows" true (List.length samples > 5);
  (* Windows are ordered and spaced by the stride. *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Dcl.Online.at < b.Dcl.Online.at && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (ordered samples);
  List.iter
    (fun (s : Dcl.Online.sample) ->
      match s.Dcl.Online.conclusion with
      | Some _ -> ()
      | None -> Alcotest.fail "window unexpectedly unidentifiable")
    samples

let test_online_changes_collapse () =
  let mk at conclusion =
    Dcl.Online.{ at; conclusion; f_at_two_d_star = 1.; loss_rate = 0.01 }
  in
  let samples =
    [
      mk 1. (Some Dcl.Identify.Strongly_dominant);
      mk 2. (Some Dcl.Identify.Strongly_dominant);
      mk 3. (Some Dcl.Identify.No_dominant);
      mk 4. (Some Dcl.Identify.No_dominant);
      mk 5. None;
    ]
  in
  let changes = Dcl.Online.changes samples in
  Alcotest.(check int) "three change points" 3 (List.length changes);
  Alcotest.(check (list (float 0.))) "at the right times" [ 1.; 3.; 5. ]
    (List.map fst changes)

(* The conclusion-changed event stream must be exactly the transitions
   of the sample list: one event per consecutive pair that disagrees,
   in chronological order, carrying both conclusions.  The two-regime
   trace guarantees at least one real transition to exercise it. *)
let test_online_conclusion_changed_events () =
  let trace = online_trace () in
  let rng = Stats.Rng.create 3 in
  let events = ref [] in
  let on_change ~at ~was ~now = events := (at, was, now) :: !events in
  let samples = Dcl.Online.scan ~on_change ~rng ~window:120. ~stride:60. trace in
  let events = List.rev !events in
  let expected =
    let rec pairs = function
      | a :: (b :: _ as rest) ->
          if b.Dcl.Online.conclusion <> a.Dcl.Online.conclusion then
            (b.Dcl.Online.at, a.Dcl.Online.conclusion, b.Dcl.Online.conclusion)
            :: pairs rest
          else pairs rest
      | [] | [ _ ] -> []
    in
    pairs samples
  in
  Alcotest.(check int) "one event per transition" (List.length expected)
    (List.length events);
  Alcotest.(check bool) "the regime change is detected" true
    (List.length events >= 1);
  List.iter2
    (fun (at, was, now) (at', was', now') ->
      Alcotest.(check (float 0.)) "timestamp" at' at;
      Alcotest.(check bool) "was" true (was = was');
      Alcotest.(check bool) "now" true (now = now'))
    events expected;
  (* Events agree with the public change-point view: [changes] lists
     the initial conclusion plus one entry per transition. *)
  Alcotest.(check int) "consistent with changes" (List.length events + 1)
    (List.length (Dcl.Online.changes samples))

let test_online_invalid () =
  let trace = online_trace () in
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "stride" (Invalid_argument "Online.scan: stride <= 0") (fun () ->
      ignore (Dcl.Online.scan ~rng ~window:60. ~stride:0. trace));
  Alcotest.check_raises "window" (Invalid_argument "Online.scan: window must be in (0, duration]")
    (fun () -> ignore (Dcl.Online.scan ~rng ~window:1e9 ~stride:60. trace))

(* Regression: window positions must be walked in integer record
   indices.  With interval = stride = 0.1, accumulating [t +. stride]
   in floats and recovering the index as [int_of_float (t /. interval)]
   drifts across record boundaries: some windows are evaluated twice
   and others skipped entirely. *)
let test_online_scan_no_float_drift () =
  let n = 60 and interval = 0.1 in
  (* A flat lossless trace: every window is unidentifiable, so the scan
     exercises only the positioning logic. *)
  let records =
    Array.init n (fun i -> mk_record (interval *. float_of_int i) (Probe.Trace.Delay 0.05))
  in
  let trace = Probe.Trace.create ~records ~interval ~base_delay:0.05 ~hop_count:1 in
  let window = 1.0 and stride = 0.1 in
  let per_window = 10 and stride_rec = 1 in
  (* First, demonstrate the bug in the replaced float walk: replicate it
     and collect the window positions it would visit. *)
  let old_positions =
    let rec walk t acc =
      let pos = int_of_float (t /. interval) in
      if pos + per_window > n then List.rev acc else walk (t +. stride) (pos :: acc)
    in
    walk 0. []
  in
  let distinct = List.sort_uniq compare old_positions in
  Alcotest.(check bool) "old float walk visits duplicate positions" true
    (List.length distinct < List.length old_positions);
  Alcotest.(check bool) "old float walk skips positions" true
    (List.length distinct < ((n - per_window) / stride_rec) + 1);
  (* The fixed scan emits exactly one sample per integer window start. *)
  let expected = ((n - per_window) / stride_rec) + 1 in
  let samples = Dcl.Online.scan ~rng:(Stats.Rng.create 1) ~window ~stride trace in
  Alcotest.(check int) "exact window count" expected (List.length samples);
  let ats = List.map (fun s -> s.Dcl.Online.at) samples in
  Alcotest.(check int) "all window positions distinct" expected
    (List.length (List.sort_uniq compare ats));
  (* Consecutive windows are exactly one stride apart. *)
  let rec strided = function
    | a :: (b :: _ as rest) ->
        abs_float (b -. a -. stride) < 1e-9 && strided rest
    | _ -> true
  in
  Alcotest.(check bool) "evenly strided" true (strided ats)

(* Regression: a window/interval quotient one ulp above its intended
   integer (0.14 /. 0.02 = 7.0000000000000009) fed straight to [ceil]
   produced an 8-record window — every window read one record too many
   and the scan emitted one window too few.  The scan now snaps
   near-integer quotients before rounding. *)
let test_online_scan_quotient_snap () =
  let n = 10 and interval = 0.02 in
  let records =
    Array.init n (fun i -> mk_record (interval *. float_of_int i) (Probe.Trace.Delay 0.05))
  in
  let trace = Probe.Trace.create ~records ~interval ~base_delay:0.05 ~hop_count:1 in
  let window = 0.14 and stride = 0.06 in
  (* The raw float walk the snap replaces really does overshoot. *)
  Alcotest.(check int) "raw ceil overshoots the integer quotient" 8
    (int_of_float (ceil (window /. interval)));
  let samples = Dcl.Online.scan ~rng:(Stats.Rng.create 1) ~window ~stride trace in
  (* 7-record windows striding by 3 records: starts at records 0 and 3.
     With the 8-record bug only one window fit in the 10 records. *)
  Alcotest.(check int) "window count" 2 (List.length samples);
  match samples with
  | first :: _ ->
      Alcotest.(check (float 1e-9)) "first window covers exactly 7 records"
        (interval *. 6.) first.Dcl.Online.at
  | [] -> Alcotest.fail "no samples"

(* The coverage contract: trailing records not filling a final window
   are dropped, and the scan says how many through the tail metrics. *)
let test_online_scan_tail_metrics () =
  Obs.set_enabled true;
  let g = Obs.Gauge.make "dcl_online_tail_records" in
  let c = Obs.Counter.make "dcl_online_tail_records_total" in
  let interval = 0.02 in
  let mk n =
    let records =
      Array.init n (fun i -> mk_record (interval *. float_of_int i) (Probe.Trace.Delay 0.05))
    in
    Probe.Trace.create ~records ~interval ~base_delay:0.05 ~hop_count:1
  in
  let scan n =
    ignore (Dcl.Online.scan ~rng:(Stats.Rng.create 1) ~window:0.14 ~stride:0.06 (mk n))
  in
  let before = Obs.Counter.value c in
  (* n = 12: 7-record windows start at records 0 and 3 covering 0..9;
     records 10 and 11 are the uncovered tail. *)
  scan 12;
  Alcotest.(check (float 0.)) "gauge holds the last scan's tail" 2. (Obs.Gauge.value g);
  Alcotest.(check (float 0.)) "counter accumulates the tail" (before +. 2.)
    (Obs.Counter.value c);
  (* n = 10: exact coverage — the gauge drops back to zero and the
     cumulative counter is untouched. *)
  scan 10;
  Alcotest.(check (float 0.)) "gauge resets on full coverage" 0. (Obs.Gauge.value g);
  Alcotest.(check (float 0.)) "counter unchanged when tail is empty" (before +. 2.)
    (Obs.Counter.value c)

let test_online_scan_domains_deterministic () =
  let rng = Stats.Rng.create 21 in
  let n = 600 in
  let records =
    Array.init n (fun i ->
        let t = 0.02 *. float_of_int i in
        let u = Stats.Rng.float rng in
        if u < 0.02 then mk_record t Probe.Trace.Lost
        else mk_record t (Probe.Trace.Delay (0.05 +. (0.1 *. u))))
  in
  let trace = Probe.Trace.create ~records ~interval:0.02 ~base_delay:0.05 ~hop_count:1 in
  let scan domains =
    Dcl.Online.scan ~domains ~rng:(Stats.Rng.create 4) ~window:4. ~stride:2. trace
  in
  let serial = scan 1 and parallel = scan 3 in
  Alcotest.(check int) "same sample count" (List.length serial) (List.length parallel);
  List.iter2
    (fun (a : Dcl.Online.sample) (b : Dcl.Online.sample) ->
      Alcotest.(check (float 0.)) "at" a.Dcl.Online.at b.Dcl.Online.at;
      Alcotest.(check bool) "conclusion" true
        (a.Dcl.Online.conclusion = b.Dcl.Online.conclusion);
      Alcotest.(check bool) "statistic bit-identical" true
        (Int64.equal
           (Int64.bits_of_float a.Dcl.Online.f_at_two_d_star)
           (Int64.bits_of_float b.Dcl.Online.f_at_two_d_star)))
    serial parallel

(* --- Queue monitor --------------------------------------------------------- *)

let test_qmonitor_tracks_backlog () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth:1e6 ~delay:0.001 ~capacity:100_000
      ~policy:Link.Droptail ()
  in
  let mon = Qmonitor.create sim link ~interval:0.001 in
  Qmonitor.start mon ~at:0. ~until:0.1;
  (* Two packets queued at t=0: backlog decays from 16 ms to 0. *)
  Sim.at sim 0. (fun () ->
      for i = 0 to 1 do
        Link.offer link
          (Packet.make ~id:i ~flow:0 ~src:0 ~dst:1 ~size:1000 ~kind:Packet.Udp ~seq:i
             ~sent_at:0. ())
      done);
  Sim.run sim;
  let samples = Qmonitor.samples mon in
  Alcotest.(check int) "100 samples" 100 (Array.length samples);
  (* The monitor's t=0 sample fires before the packets are offered, so
     the first loaded sample is at t=1 ms with 15 ms of work left. *)
  check_close 1e-9 "max backlog" 0.015 (Qmonitor.max_backlog mon);
  Alcotest.(check bool) "mean in (0, max)" true
    (Qmonitor.mean_backlog mon > 0. && Qmonitor.mean_backlog mon < 0.015);
  (* Busy ~15 of the 100 sampled milliseconds. *)
  check_close 0.02 "fraction above zero" 0.15 (Qmonitor.fraction_above mon ~threshold:1e-6)

let test_qmonitor_invalid () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth:1e6 ~delay:0.001 ~capacity:1000
      ~policy:Link.Droptail ()
  in
  Alcotest.check_raises "interval" (Invalid_argument "Qmonitor.create: interval <= 0")
    (fun () -> ignore (Qmonitor.create sim link ~interval:0.))

(* --- Locate ------------------------------------------------------------------- *)

let mk_prefix hops conclusion =
  Dcl.Locate.{ hops; conclusion; loss_rate = 0.01 }

let test_locate_clean_case () =
  let prefixes =
    [
      mk_prefix 1 None;
      mk_prefix 2 (Some Dcl.Identify.No_dominant);
      mk_prefix 3 (Some Dcl.Identify.Strongly_dominant);
      mk_prefix 4 (Some Dcl.Identify.Weakly_dominant);
      mk_prefix 5 (Some Dcl.Identify.Strongly_dominant);
    ]
  in
  Alcotest.(check (option int)) "hop 3" (Some 3) (Dcl.Locate.pinpoint prefixes)

let test_locate_order_independent () =
  let prefixes =
    [
      mk_prefix 3 (Some Dcl.Identify.Strongly_dominant);
      mk_prefix 1 None;
      mk_prefix 2 (Some Dcl.Identify.No_dominant);
    ]
  in
  Alcotest.(check (option int)) "unsorted input" (Some 3) (Dcl.Locate.pinpoint prefixes)

let test_locate_no_dominant () =
  let prefixes =
    [ mk_prefix 1 (Some Dcl.Identify.No_dominant); mk_prefix 2 (Some Dcl.Identify.No_dominant) ]
  in
  Alcotest.(check (option int)) "none" None (Dcl.Locate.pinpoint prefixes)

let test_locate_inconsistent_suffix () =
  (* A dominant prefix followed by a non-dominant longer prefix is
     inconsistent: the dominant suffix must be unbroken. *)
  let prefixes =
    [
      mk_prefix 1 (Some Dcl.Identify.Strongly_dominant);
      mk_prefix 2 (Some Dcl.Identify.No_dominant);
      mk_prefix 3 (Some Dcl.Identify.Strongly_dominant);
    ]
  in
  Alcotest.(check (option int)) "restarts at 3" (Some 3) (Dcl.Locate.pinpoint prefixes)

let test_locate_empty () =
  Alcotest.(check (option int)) "empty input" None (Dcl.Locate.pinpoint [])

(* --- Tracefile -------------------------------------------------------------- *)

let test_tracefile_events_and_roundtrip () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth:1e6 ~delay:0.001 ~capacity:2000
      ~policy:Link.Droptail ()
  in
  let tf = Tracefile.create () in
  Tracefile.attach tf sim link;
  Sim.at sim 0. (fun () ->
      for i = 0 to 2 do
        Link.offer link
          (Packet.make ~id:i ~flow:9 ~src:0 ~dst:1 ~size:1000 ~kind:Packet.Udp ~seq:i
             ~sent_at:0. ())
      done);
  Sim.run sim;
  let events = Tracefile.events tf in
  (* 2 accepted (enqueue+dequeue+receive each) + 1 drop = 7 events. *)
  Alcotest.(check int) "event count" 7 (Array.length events);
  let count k =
    Array.fold_left (fun n e -> if e.Tracefile.kind = k then n + 1 else n) 0 events
  in
  Alcotest.(check int) "enqueues" 2 (count Tracefile.Enqueue);
  Alcotest.(check int) "dequeues" 2 (count Tracefile.Dequeue);
  Alcotest.(check int) "receives" 2 (count Tracefile.Receive);
  Alcotest.(check int) "drops" 1 (count Tracefile.Drop);
  Alcotest.(check (list (pair int int))) "drops per flow" [ (9, 1) ]
    (Tracefile.drops_per_flow events);
  (* Save / load roundtrip. *)
  let file = Filename.temp_file "nstrace" ".tr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Tracefile.save tf file;
      let loaded = Tracefile.load file in
      Alcotest.(check int) "loaded count" (Array.length events) (Array.length loaded);
      Array.iteri
        (fun i e ->
          let l = loaded.(i) in
          Alcotest.(check bool) "kind" true (e.Tracefile.kind = l.Tracefile.kind);
          Alcotest.(check int) "packet id" e.Tracefile.packet_id l.Tracefile.packet_id;
          check_close 1e-5 "time" e.Tracefile.time l.Tracefile.time)
        events)

let test_tracefile_ordering () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~src:0 ~dst:1 ~bandwidth:1e6 ~delay:0.001 ~capacity:100_000
      ~policy:Link.Droptail ()
  in
  let tf = Tracefile.create () in
  Tracefile.attach tf sim link;
  Sim.at sim 0. (fun () ->
      Link.offer link
        (Packet.make ~id:0 ~flow:0 ~src:0 ~dst:1 ~size:1000 ~kind:Packet.Udp ~seq:0
           ~sent_at:0. ()));
  Sim.run sim;
  let events = Tracefile.events tf in
  let kinds = Array.to_list (Array.map (fun e -> e.Tracefile.kind) events) in
  Alcotest.(check bool) "enqueue, dequeue, receive in order" true
    (kinds = [ Tracefile.Enqueue; Tracefile.Dequeue; Tracefile.Receive ])

(* --- Bootstrap ---------------------------------------------------------------- *)

(* Reuse the synthetic online trace: its F statistic is stable and the
   bootstrap must bracket it. *)
let test_bootstrap_brackets_point () =
  let trace = online_trace () in
  let trace = Probe.Trace.sub trace ~pos:0 ~len:10_000 in
  let rng = Stats.Rng.create 9 in
  let iv = Dcl.Bootstrap.f_statistic ~replicates:20 ~rng trace in
  Alcotest.(check bool) "finite interval" true (Float.is_finite iv.Dcl.Bootstrap.lo);
  Alcotest.(check bool) "ordered" true (iv.Dcl.Bootstrap.lo <= iv.Dcl.Bootstrap.hi);
  Alcotest.(check bool) "point within a widened interval" true
    (iv.Dcl.Bootstrap.point >= iv.Dcl.Bootstrap.lo -. 0.1
    && iv.Dcl.Bootstrap.point <= iv.Dcl.Bootstrap.hi +. 0.1);
  Alcotest.(check bool) "accept fraction is a probability" true
    (iv.Dcl.Bootstrap.accept_fraction >= 0. && iv.Dcl.Bootstrap.accept_fraction <= 1.)

let test_bootstrap_parallel_determinism () =
  (* The replicate loop runs on the pool; pre-split per-replicate RNGs
     make the interval bit-identical to the serial run. *)
  let trace = online_trace () in
  let trace = Probe.Trace.sub trace ~pos:0 ~len:8_000 in
  let interval domains =
    Dcl.Bootstrap.f_statistic ~replicates:12 ~domains ~rng:(Stats.Rng.create 9) trace
  in
  let s = interval 1 and p = interval 4 in
  Alcotest.(check (float 0.)) "lo" s.Dcl.Bootstrap.lo p.Dcl.Bootstrap.lo;
  Alcotest.(check (float 0.)) "hi" s.Dcl.Bootstrap.hi p.Dcl.Bootstrap.hi;
  Alcotest.(check (float 0.)) "point" s.Dcl.Bootstrap.point p.Dcl.Bootstrap.point;
  Alcotest.(check (float 0.)) "accept fraction" s.Dcl.Bootstrap.accept_fraction
    p.Dcl.Bootstrap.accept_fraction

let test_bootstrap_invalid () =
  let trace = online_trace () in
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "replicates" (Invalid_argument "Bootstrap.f_statistic: replicates <= 0")
    (fun () -> ignore (Dcl.Bootstrap.f_statistic ~replicates:0 ~rng trace));
  Alcotest.check_raises "confidence"
    (Invalid_argument "Bootstrap.f_statistic: confidence must be in (0, 1)") (fun () ->
      ignore (Dcl.Bootstrap.f_statistic ~confidence:1.5 ~rng trace))

let () =
  Alcotest.run "extensions"
    [
      ( "viterbi",
        [
          Alcotest.test_case "hmm matches brute force" `Quick
            test_hmm_viterbi_matches_brute_force;
          Alcotest.test_case "hmm tracks regimes" `Quick test_hmm_viterbi_tracks_regimes;
          Alcotest.test_case "mmhd consistency" `Quick test_mmhd_viterbi_consistency;
          Alcotest.test_case "mmhd loss attribution" `Quick test_mmhd_viterbi_attributes_loss;
        ] );
      ( "delay factor",
        [
          Alcotest.test_case "indexing" `Quick test_delay_factor_indexing;
          Alcotest.test_case "strictness" `Quick test_delay_factor_strictness;
          Alcotest.test_case "invalid" `Quick test_delay_factor_invalid;
        ] );
      ( "stationarity",
        [
          Alcotest.test_case "accepts stable" `Quick test_stationarity_accepts_stable;
          Alcotest.test_case "rejects delay shift" `Quick test_stationarity_rejects_delay_shift;
          Alcotest.test_case "rejects loss shift" `Quick test_stationarity_rejects_loss_shift;
          Alcotest.test_case "invalid" `Quick test_stationarity_invalid;
        ] );
      ( "online",
        [
          Alcotest.test_case "scan shapes" `Slow test_online_scan_shapes;
          Alcotest.test_case "changes collapse" `Quick test_online_changes_collapse;
          Alcotest.test_case "conclusion-changed events" `Slow
            test_online_conclusion_changed_events;
          Alcotest.test_case "invalid" `Quick test_online_invalid;
          Alcotest.test_case "no float drift" `Quick test_online_scan_no_float_drift;
          Alcotest.test_case "quotient snap" `Quick test_online_scan_quotient_snap;
          Alcotest.test_case "tail metrics" `Quick test_online_scan_tail_metrics;
          Alcotest.test_case "domains deterministic" `Quick
            test_online_scan_domains_deterministic;
        ] );
      ( "qmonitor",
        [
          Alcotest.test_case "tracks backlog" `Quick test_qmonitor_tracks_backlog;
          Alcotest.test_case "invalid" `Quick test_qmonitor_invalid;
        ] );
      ( "locate",
        [
          Alcotest.test_case "clean case" `Quick test_locate_clean_case;
          Alcotest.test_case "order independent" `Quick test_locate_order_independent;
          Alcotest.test_case "no dominant" `Quick test_locate_no_dominant;
          Alcotest.test_case "inconsistent suffix" `Quick test_locate_inconsistent_suffix;
          Alcotest.test_case "empty" `Quick test_locate_empty;
        ] );
      ( "tracefile",
        [
          Alcotest.test_case "events and roundtrip" `Quick test_tracefile_events_and_roundtrip;
          Alcotest.test_case "ordering" `Quick test_tracefile_ordering;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "brackets the point" `Slow test_bootstrap_brackets_point;
          Alcotest.test_case "serial = 4 domains" `Slow test_bootstrap_parallel_determinism;
          Alcotest.test_case "invalid" `Quick test_bootstrap_invalid;
        ] );
    ]

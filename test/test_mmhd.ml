(* Tests for the Markov model with a hidden dimension (MMHD): state
   indexing, forward-backward correctness against brute force, the
   Appendix-B EM, and Eq. (5). *)

let check_close eps = Alcotest.(check (float eps))

(* Reference model: 2 hidden states, 2 symbols (4 states).  Hidden
   dimension 1 corresponds to a "congested" phase in which symbol 1
   dominates and losses are frequent. *)
let reference : Mmhd.t =
  {
    n = 2;
    m = 2;
    (* states: (0,0) (0,1) (1,0) (1,1) *)
    pi = [| 0.5; 0.2; 0.1; 0.2 |];
    a =
      [|
        [| 0.70; 0.20; 0.05; 0.05 |];
        [| 0.40; 0.40; 0.05; 0.15 |];
        [| 0.20; 0.05; 0.40; 0.35 |];
        [| 0.05; 0.05; 0.30; 0.60 |];
      |];
    c = [| 0.02; 0.30 |];
  }

let brute_force_likelihood (t : Mmhd.t) obs =
  let s_all = Mmhd.states t in
  let emission s = function
    | Some j -> if Mmhd.symbol_of t s = j then 1. -. t.Mmhd.c.(j) else 0.
    | None -> t.Mmhd.c.(Mmhd.symbol_of t s)
  in
  let tt = Array.length obs in
  let total = ref 0. in
  for s0 = 0 to s_all - 1 do
    let rec walk time state prob =
      if prob = 0. then 0.
      else if time = tt - 1 then prob
      else begin
        let acc = ref 0. in
        for next = 0 to s_all - 1 do
          acc := !acc +. walk (time + 1) next (prob *. t.Mmhd.a.(state).(next) *. emission next obs.(time + 1))
        done;
        !acc
      end
    in
    total := !total +. walk 0 s0 (t.Mmhd.pi.(s0) *. emission s0 obs.(0))
  done;
  !total

let short_obs = [| Some 0; Some 1; None; Some 1; Some 0; None; Some 0 |]

let test_state_indexing () =
  Alcotest.(check int) "flatten" 3 (Mmhd.state_of reference ~hidden:1 ~symbol:1);
  Alcotest.(check int) "symbol" 1 (Mmhd.symbol_of reference 3);
  Alcotest.(check int) "hidden" 1 (Mmhd.hidden_of reference 3);
  Alcotest.(check int) "states" 4 (Mmhd.states reference);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Mmhd.state_of reference ~hidden:2 ~symbol:0);
       false
     with Invalid_argument _ -> true)

let test_likelihood_vs_brute_force () =
  check_close 1e-9 "scaled likelihood"
    (log (brute_force_likelihood reference short_obs))
    (Mmhd.log_likelihood reference short_obs)

let test_likelihood_all_observed () =
  let obs = [| Some 0; Some 0; Some 1; Some 1; Some 0 |] in
  check_close 1e-9 "all observed"
    (log (brute_force_likelihood reference obs))
    (Mmhd.log_likelihood reference obs)

let test_posteriors_normalized_and_consistent () =
  let gamma = Mmhd.state_posteriors reference short_obs in
  Array.iteri
    (fun t row ->
      check_close 1e-9 (Printf.sprintf "sums to 1 at %d" t) 1.
        (Array.fold_left ( +. ) 0. row);
      (* At an observed instant, only states carrying that symbol may
         have mass. *)
      match short_obs.(t) with
      | Some j ->
          Array.iteri
            (fun s g ->
              if Mmhd.symbol_of reference s <> j && g > 1e-12 then
                Alcotest.failf "mass on wrong symbol at time %d" t)
            row
      | None -> ())
    gamma

let test_validate_reference () = Mmhd.validate reference

let test_validate_rejects () =
  let bad = { reference with c = [| 0.5; 1.5 |] } in
  Alcotest.(check bool) "bad c rejected" true
    (try
       Mmhd.validate bad;
       false
     with Invalid_argument _ -> true)

let test_inits_valid () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 10 do
    Mmhd.validate (Mmhd.init_random rng ~n:2 ~m:4 ~loss_fraction:0.05)
  done;
  let obs = [| Some 0; None; Some 2; Some 3; Some 1; None; Some 0 |] in
  Mmhd.validate (Mmhd.init_informed rng ~n:3 ~m:4 obs)

let test_simulate_consistency () =
  let rng = Stats.Rng.create 5 in
  let obs, path = Mmhd.simulate rng reference ~len:20_000 in
  (* Every observed symbol must equal the state's symbol component. *)
  Array.iteri
    (fun t o ->
      match o with
      | Some j ->
          Alcotest.(check int) "observation = state symbol" (Mmhd.symbol_of reference path.(t)) j
      | None -> ())
    obs;
  (* Empirical loss rate per symbol should approximate c. *)
  let seen = Array.make 2 0 and lost = Array.make 2 0 in
  Array.iteri
    (fun t o ->
      let y = Mmhd.symbol_of reference path.(t) in
      match o with
      | Some _ -> seen.(y) <- seen.(y) + 1
      | None -> lost.(y) <- lost.(y) + 1)
    obs;
  Array.iteri
    (fun j c ->
      let f = float_of_int lost.(j) /. float_of_int (seen.(j) + lost.(j)) in
      check_close 0.03 (Printf.sprintf "c_%d recovered empirically" j) c f)
    reference.Mmhd.c

let test_em_improves_likelihood () =
  let rng = Stats.Rng.create 7 in
  let obs, _ = Mmhd.simulate rng reference ~len:3000 in
  let t0 = Mmhd.init_random rng ~n:2 ~m:2 ~loss_fraction:0.1 in
  let ll0 = Mmhd.log_likelihood t0 obs in
  let fitted, stats = Mmhd.fit_from ~max_iter:40 t0 obs in
  Alcotest.(check bool) "improved" true (stats.Mmhd.log_likelihood > ll0);
  Mmhd.validate fitted

let test_em_monotone_steps () =
  let rng = Stats.Rng.create 9 in
  let obs, _ = Mmhd.simulate rng reference ~len:2000 in
  let model = ref (Mmhd.init_random rng ~n:2 ~m:2 ~loss_fraction:0.1) in
  let last = ref (Mmhd.log_likelihood !model obs) in
  for step = 1 to 15 do
    let next, _ = Mmhd.fit_from ~max_iter:1 !model obs in
    let ll = Mmhd.log_likelihood next obs in
    if ll < !last -. 1e-6 then Alcotest.failf "likelihood decreased at step %d" step;
    last := ll;
    model := next
  done

let test_fit_recovers_c () =
  let rng = Stats.Rng.create 11 in
  let obs, _ = Mmhd.simulate rng reference ~len:30_000 in
  let fitted, _ = Mmhd.fit ~rng ~n:2 ~m:2 obs in
  check_close 0.03 "c_0" reference.Mmhd.c.(0) fitted.Mmhd.c.(0);
  check_close 0.05 "c_1" reference.Mmhd.c.(1) fitted.Mmhd.c.(1)

let test_fit_recovers_loss_posterior () =
  let rng = Stats.Rng.create 13 in
  let obs, path = Mmhd.simulate rng reference ~len:30_000 in
  (* Empirical ground truth P(Y = j | loss) from the hidden path. *)
  let cnt = Array.make 2 0. and total = ref 0. in
  Array.iteri
    (fun t o ->
      if o = None then begin
        cnt.(Mmhd.symbol_of reference path.(t)) <-
          cnt.(Mmhd.symbol_of reference path.(t)) +. 1.;
        total := !total +. 1.
      end)
    obs;
  let truth = Array.map (fun x -> x /. !total) cnt in
  let fitted, _ = Mmhd.fit ~rng ~n:2 ~m:2 obs in
  let pmf = Mmhd.virtual_delay_pmf fitted obs in
  check_close 0.04 "TV to hidden truth" 0. (Stats.Histogram.total_variation truth pmf)

let test_markov_degenerate () =
  (* n = 1: a plain Markov chain over the symbols. *)
  let rng = Stats.Rng.create 15 in
  let obs, _ = Mmhd.simulate rng reference ~len:8000 in
  let fitted, stats = Mmhd.fit ~rng ~n:1 ~m:2 obs in
  Alcotest.(check bool) "converged" true stats.Mmhd.converged;
  Mmhd.validate fitted;
  Alcotest.(check int) "2 states only" 2 (Mmhd.states fitted)

let test_virtual_pmf_distribution () =
  let pmf = Mmhd.virtual_delay_pmf reference short_obs in
  check_close 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. pmf);
  Alcotest.(check int) "length m" 2 (Array.length pmf)

let test_virtual_pmf_requires_loss () =
  Alcotest.check_raises "no loss"
    (Invalid_argument "Mmhd.virtual_delay_pmf: no loss in the sequence") (fun () ->
      ignore (Mmhd.virtual_delay_pmf reference [| Some 0; Some 1 |]))

let test_virtual_pmf_context_sensitivity () =
  (* A loss surrounded by symbol 1 must be attributed mostly to
     symbol 1 (it has both the adjacency and the higher c). *)
  let obs = [| Some 1; Some 1; None; Some 1; Some 1 |] in
  let pmf = Mmhd.virtual_delay_pmf reference obs in
  Alcotest.(check bool) "symbol 1 dominates" true (pmf.(1) > 0.8)

let test_empty_rejected () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Mmhd.log_likelihood reference [||]);
       false
     with Invalid_argument _ -> true)

(* QCheck: random small MMHDs match brute force. *)
let model_and_obs_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let rng = Stats.Rng.create seed in
    let model = Mmhd.init_random rng ~n:2 ~m:2 ~loss_fraction:0.25 in
    let* len = int_range 2 7 in
    let obs, _ = Mmhd.simulate rng model ~len in
    return (model, obs))

let prop_likelihood_matches_brute_force =
  QCheck.Test.make ~name:"scaled likelihood = brute force" ~count:100
    (QCheck.make model_and_obs_gen) (fun (model, obs) ->
      abs_float (Mmhd.log_likelihood model obs -. log (brute_force_likelihood model obs))
      < 1e-8)

let prop_virtual_pmf_normalized =
  QCheck.Test.make ~name:"Eq. (5) posterior is a distribution" ~count:100
    (QCheck.make model_and_obs_gen) (fun (model, obs) ->
      QCheck.assume (Array.exists (fun o -> o = None) obs);
      let pmf = Mmhd.virtual_delay_pmf model obs in
      abs_float (Array.fold_left ( +. ) 0. pmf -. 1.) < 1e-9
      && Array.for_all (fun p -> p >= 0.) pmf)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_likelihood_matches_brute_force; prop_virtual_pmf_normalized ]

let () =
  Alcotest.run "mmhd"
    [
      ( "structure",
        [
          Alcotest.test_case "state indexing" `Quick test_state_indexing;
          Alcotest.test_case "validate reference" `Quick test_validate_reference;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "inits valid" `Quick test_inits_valid;
        ] );
      ( "forward-backward",
        [
          Alcotest.test_case "likelihood vs brute force" `Quick
            test_likelihood_vs_brute_force;
          Alcotest.test_case "all observed" `Quick test_likelihood_all_observed;
          Alcotest.test_case "posteriors consistent" `Quick
            test_posteriors_normalized_and_consistent;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
      ( "simulate",
        [ Alcotest.test_case "consistency with c and symbols" `Quick test_simulate_consistency ]
      );
      ( "em",
        [
          Alcotest.test_case "improves likelihood" `Quick test_em_improves_likelihood;
          Alcotest.test_case "monotone steps" `Quick test_em_monotone_steps;
          Alcotest.test_case "recovers c" `Slow test_fit_recovers_c;
          Alcotest.test_case "recovers loss posterior" `Slow test_fit_recovers_loss_posterior;
          Alcotest.test_case "markov degenerate (n=1)" `Quick test_markov_degenerate;
        ] );
      ( "virtual delay pmf",
        [
          Alcotest.test_case "is a distribution" `Quick test_virtual_pmf_distribution;
          Alcotest.test_case "requires a loss" `Quick test_virtual_pmf_requires_loss;
          Alcotest.test_case "context sensitivity" `Quick test_virtual_pmf_context_sensitivity;
        ] );
      ("properties", qcheck_cases);
    ]

(* Property tests for the persistent domain pool behind Par.map_range:
   pooled results equal Array.init for arbitrary sizes and domain
   counts, worker exceptions re-raise in the caller, and back-to-back
   submissions reuse the warm pool (and warm per-domain EM workspaces)
   without cross-job contamination. *)

(* Force real worker domains even on small machines: the default cap is
   [size () - 1], which on a single-core CI box would route every job
   through the serial fallback and leave the concurrent path untested. *)
let () = Stats.Pool.set_capacity 3

let qtest t = QCheck_alcotest.to_alcotest t

(* --- map_range over random sizes/domain counts equals Array.init ------- *)

let test_map_range_matches_init =
  QCheck.Test.make ~name:"pooled map_range equals Array.init" ~count:200
    QCheck.(pair (int_bound 200) (int_range 1 9))
    (fun (n, domains) ->
      let f i = (i * 2654435761) lxor (i lsl 7) in
      Stats.Par.map_range ~domains n f = Array.init n f)

let test_map_range_spawn_matches_init =
  QCheck.Test.make ~name:"spawn-per-call map_range equals Array.init" ~count:50
    QCheck.(pair (int_bound 64) (int_range 1 6))
    (fun (n, domains) ->
      let f i = (i * 31) + 7 in
      Stats.Par.map_range_spawn ~domains n f = Array.init n f)

let test_map_range_allocating_payload =
  (* Boxed results exercise the GC across domains. *)
  QCheck.Test.make ~name:"pooled map_range with allocating items" ~count:50
    QCheck.(pair (int_bound 100) (int_range 2 8))
    (fun (n, domains) ->
      let f i = Array.init (1 + (i mod 17)) (fun k -> float_of_int (i + k)) in
      Stats.Par.map_range ~domains n f = Array.init n f)

let test_empty_and_clamp () =
  Alcotest.(check (array int)) "n = 0" [||] (Stats.Par.map_range ~domains:4 0 (fun i -> i));
  Alcotest.(check (array int)) "domains > n" [| 0; 1 |]
    (Stats.Par.map_range ~domains:64 2 (fun i -> i));
  Alcotest.(check (array int)) "domains = 0 clamps to serial" [| 0; 1; 2 |]
    (Stats.Par.map_range ~domains:0 3 (fun i -> i))

(* --- worker exceptions re-raise in the caller -------------------------- *)

exception Boom of int

let test_exception_reraised () =
  Alcotest.check_raises "item exception reaches the caller" (Boom 37) (fun () ->
      ignore
        (Stats.Par.map_range ~domains:4 100 (fun i ->
             if i = 37 then raise (Boom 37) else i)))

let test_exception_lowest_index () =
  (* Several failing items: the lowest index wins deterministically. *)
  match
    Stats.Par.map_range ~domains:4 100 (fun i ->
        if i mod 10 = 3 then raise (Boom i) else i)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing item" 3 i

let test_pool_survives_failure () =
  (* A failed job must not wedge the pool for later submissions. *)
  (try ignore (Stats.Par.map_range ~domains:4 20 (fun i -> if i = 5 then failwith "x" else i))
   with Failure _ -> ());
  Alcotest.(check (array int)) "next job runs" [| 0; 2; 4; 6 |]
    (Stats.Par.map_range ~domains:4 4 (fun i -> 2 * i))

(* --- warm reuse without cross-job contamination ------------------------ *)

let mmhd_obs ~seed ~n ~m ~len =
  let rng = Stats.Rng.create seed in
  let truth = Mmhd.init_random rng ~n ~m ~loss_fraction:0.08 in
  let obs, _ = Mmhd.simulate rng truth ~len in
  obs.(0) <- Some 0;
  obs.(1) <- None;
  obs

let test_no_respawn_across_jobs () =
  ignore (Stats.Par.map_range ~domains:4 16 (fun i -> i));
  let w1 = Stats.Pool.worker_count () in
  ignore (Stats.Par.map_range ~domains:4 16 (fun i -> i * i));
  ignore (Stats.Par.map_range ~domains:2 64 (fun i -> i + 1));
  let w2 = Stats.Pool.worker_count () in
  Alcotest.(check int) "workers persist across jobs" w1 w2;
  Alcotest.(check bool) "pool never exceeds its capacity" true (w2 <= 3);
  Alcotest.(check bool) "workers actually spawned" true (w2 > 0)

let test_warm_workspaces_not_contaminated () =
  (* Run a large model through the pool (growing every per-domain EM
     workspace), then a small model back-to-back: the small fit must be
     bit-identical to its serial run, i.e. nothing left in the warm
     workspaces leaks across jobs. *)
  let big_obs = mmhd_obs ~seed:41 ~n:3 ~m:5 ~len:900 in
  ignore (Mmhd.fit ~max_iter:8 ~restarts:4 ~domains:4 ~rng:(Stats.Rng.create 1) ~n:3 ~m:5 big_obs);
  let small_obs = mmhd_obs ~seed:43 ~n:2 ~m:3 ~len:300 in
  let fit domains =
    Mmhd.fit ~max_iter:12 ~restarts:4 ~domains ~rng:(Stats.Rng.create 2) ~n:2 ~m:3 small_obs
  in
  let pooled, p_stats = fit 4 in
  let serial, s_stats = fit 1 in
  Alcotest.(check (array (float 0.))) "pi" serial.Mmhd.pi pooled.Mmhd.pi;
  Array.iteri
    (fun i row -> Alcotest.(check (array (float 0.))) (Printf.sprintf "a row %d" i) row pooled.Mmhd.a.(i))
    serial.Mmhd.a;
  Alcotest.(check (array (float 0.))) "c" serial.Mmhd.c pooled.Mmhd.c;
  Alcotest.(check (float 1e-12)) "log-likelihood" s_stats.Mmhd.log_likelihood
    p_stats.Mmhd.log_likelihood

let test_nested_map_range_runs_inline () =
  (* Items that themselves call map_range must not deadlock; the inner
     call runs serially inside the item. *)
  let outer =
    Stats.Par.map_range ~domains:4 8 (fun i ->
        Array.fold_left ( + ) 0 (Stats.Par.map_range ~domains:4 5 (fun k -> i + k)))
  in
  Alcotest.(check (array int)) "nested results"
    (Array.init 8 (fun i -> (5 * i) + 10))
    outer

(* --- explicit chunk override ------------------------------------------- *)

let test_chunk_override_complete_and_exact =
  (* Any positive chunk size (including sizes larger than the range)
     must still run every item exactly once. *)
  QCheck.Test.make ~name:"chunked run covers every item once" ~count:100
    QCheck.(triple (int_bound 150) (int_range 1 200) (int_range 1 4))
    (fun (n, chunk, domains) ->
      let hits = Array.make (max n 1) 0 in
      Stats.Pool.run ~chunk ~participants:domains n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Array.for_all (fun h -> h = 1) (Array.sub hits 0 n))

let test_chunk_rejects_nonpositive () =
  let reject c =
    Alcotest.check_raises
      (Printf.sprintf "chunk %d" c)
      (Invalid_argument "Pool.run: chunk must be positive")
      (fun () -> Stats.Pool.run ~chunk:c ~participants:2 4 ignore)
  in
  reject 0;
  reject (-3)

let test_set_capacity_rejects_nonpositive () =
  let reject c =
    Alcotest.check_raises
      (Printf.sprintf "set_capacity %d" c)
      (Invalid_argument "Pool.set_capacity: capacity must be positive")
      (fun () -> Stats.Pool.set_capacity c)
  in
  reject 0;
  reject (-1);
  (* The override in force since startup must survive the rejected calls. *)
  Alcotest.(check int) "capacity unchanged" 3 (Stats.Pool.capacity ())

let () =
  Alcotest.run "pool"
    [
      ( "map_range",
        [
          qtest test_map_range_matches_init;
          qtest test_map_range_spawn_matches_init;
          qtest test_map_range_allocating_payload;
          Alcotest.test_case "empty and clamped inputs" `Quick test_empty_and_clamp;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "re-raised in caller" `Quick test_exception_reraised;
          Alcotest.test_case "lowest index wins" `Quick test_exception_lowest_index;
          Alcotest.test_case "pool survives a failed job" `Quick test_pool_survives_failure;
        ] );
      ( "warm reuse",
        [
          Alcotest.test_case "no respawn across jobs" `Quick test_no_respawn_across_jobs;
          Alcotest.test_case "workspaces not contaminated" `Quick
            test_warm_workspaces_not_contaminated;
          Alcotest.test_case "nested map_range runs inline" `Quick
            test_nested_map_range_runs_inline;
        ] );
      ( "chunk",
        [
          qtest test_chunk_override_complete_and_exact;
          Alcotest.test_case "chunk rejects non-positive" `Quick
            test_chunk_rejects_nonpositive;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "set_capacity rejects non-positive" `Quick
            test_set_capacity_rejects_nonpositive;
        ] );
    ]

(* Property tests for the off-by-one-prone boundaries of the inference
   pipeline: the strict [F(j) > beta] cutoff of the WDCL bound, the
   1-based [d*] of the hypothesis tests against the 0-based [cdf_at]
   indexing, and histogram bin-edge classification. *)

let scheme m = Dcl.Discretize.of_range ~m ~lo:0.1 ~hi:(0.1 +. (0.1 *. float_of_int m))

let vqd_of_pmf m pmf = Dcl.Vqd.of_pmf (scheme m) pmf

(* Positive pmfs of a given size; weights bounded away from zero so the
   normalized cdf is strictly increasing. *)
let pmf_arb m =
  QCheck.make
    ~print:(fun a -> String.concat ";" (List.map string_of_float (Array.to_list a)))
    QCheck.Gen.(array_size (return m) (float_range 0.01 1.))

(* --- Bound.wdcl_bound: strict F(j) > beta cutoff ----------------------- *)

(* The bound's symbol is the smallest j with F(j) > beta (capped at
   m - 1): equality F(j) = beta must NOT stop the scan, because Theorem
   2 only guarantees that at most a beta loss-fraction lies below the
   dominant link's contribution. *)

let test_wdcl_bound_exact_equality () =
  (* cdf.(0) = 0.25 exactly (binary-exact weights summing to 1). *)
  let v = vqd_of_pmf 4 [| 0.25; 0.25; 0.25; 0.25 |] in
  let q = Dcl.Discretize.queuing_value (scheme 4) in
  Alcotest.(check (float 1e-12))
    "F(0) = beta exactly does not stop the scan" (q 1)
    (Dcl.Bound.wdcl_bound ~beta:0.25 v);
  Alcotest.(check (float 1e-12))
    "F(0) just above beta stops at symbol 0" (q 0)
    (Dcl.Bound.wdcl_bound ~beta:0.2499 v);
  (* beta = 0: any positive first bin exceeds it. *)
  Alcotest.(check (float 1e-12))
    "beta = 0 stops at the first positive bin" (q 0)
    (Dcl.Bound.wdcl_bound ~beta:0. v)

let test_wdcl_bound_all_mass_low () =
  (* Everything below beta until the last bin: the scan must cap at
     m - 1, not run past the array. *)
  let v = vqd_of_pmf 5 [| 0.01; 0.01; 0.01; 0.01; 0.96 |] in
  Alcotest.(check (float 1e-12))
    "caps at the last symbol"
    (Dcl.Discretize.queuing_value (scheme 5) 4)
    (Dcl.Bound.wdcl_bound ~beta:0.45 v)

let prop_wdcl_bound_is_least_symbol_above_beta =
  QCheck.Test.make ~name:"wdcl_bound returns the least symbol with F > beta"
    ~count:300
    QCheck.(pair (pmf_arb 7) (float_range 0. 0.49))
    (fun (pmf, beta) ->
      let v = vqd_of_pmf 7 pmf in
      let bound = Dcl.Bound.wdcl_bound ~beta v in
      (* Recover the chosen symbol from the bound value. *)
      let j =
        let rec find j =
          if j = 6 || abs_float (Dcl.Discretize.queuing_value (scheme 7) j -. bound) < 1e-9
          then j
          else find (j + 1)
        in
        find 0
      in
      (* Every skipped symbol had F <= beta, and the chosen one exceeds
         beta unless the scan capped at the last symbol. *)
      let skipped_ok =
        let rec check k = k >= j || (Dcl.Vqd.cdf_at v k <= beta && check (k + 1)) in
        check 0
      in
      skipped_ok && (j = 6 || Dcl.Vqd.cdf_at v j > beta))

(* --- Tests.run_test: 1-based d* against 0-based cdf_at ----------------- *)

(* Independent reference implementation of Theorems 1-2 in the paper's
   own 1-based indexing: F(d) for a 1-based symbol d is cdf.(d - 1);
   d* is the smallest 1-based d with F(d) >= 1/2; the tested symbol is
   ceil((1 + 1/x) * d_star); F past the last symbol is 1. *)
let reference vqd ~delay_factor =
  let cdf = vqd.Dcl.Vqd.cdf in
  let m = Array.length cdf in
  let f d = if d <= 0 then 0. else if d > m then 1. else cdf.(d - 1) in
  let rec find d = if d >= m || f d >= 0.5 then d else find (d + 1) in
  let d_star = find 1 in
  let tested =
    int_of_float (ceil ((1. +. (1. /. delay_factor)) *. float_of_int d_star))
  in
  (d_star, tested, f tested)

let prop_run_test_matches_reference =
  QCheck.Test.make ~name:"sdcl outcome indices match the 1-based reference"
    ~count:300
    QCheck.(pair (pmf_arb 9) (float_range 0.25 4.))
    (fun (pmf, delay_factor) ->
      let v = vqd_of_pmf 9 pmf in
      let o = Dcl.Tests.sdcl ~delay_factor v in
      let d_star, tested, f = reference v ~delay_factor in
      o.Dcl.Tests.d_star = d_star
      && o.Dcl.Tests.two_d_star = tested
      && abs_float (o.Dcl.Tests.f_at_two_d_star -. f) < 1e-12)

let prop_d_star_is_least_median_symbol =
  QCheck.Test.make ~name:"d* is the least 1-based symbol with F >= 1/2" ~count:300
    (pmf_arb 6) (fun pmf ->
      let v = vqd_of_pmf 6 pmf in
      let o = Dcl.Tests.sdcl v in
      let d = o.Dcl.Tests.d_star in
      1 <= d && d <= 6
      && Dcl.Vqd.cdf_at v (d - 2) < 0.5
      && (d = 6 || Dcl.Vqd.cdf_at v (d - 1) >= 0.5))

let test_run_test_past_end () =
  (* All mass in the last bin: d* = m, tested symbol 2m > m, and F
     there must read as 1 (not an out-of-range access). *)
  let v = vqd_of_pmf 3 [| 1e-9; 1e-9; 1. |] in
  let o = Dcl.Tests.sdcl v in
  Alcotest.(check int) "d* = m" 3 o.Dcl.Tests.d_star;
  Alcotest.(check int) "tested symbol past the end" 6 o.Dcl.Tests.two_d_star;
  Alcotest.(check (float 1e-12)) "F past the end is 1" 1. o.Dcl.Tests.f_at_two_d_star;
  Alcotest.(check bool) "accepts" true (o.Dcl.Tests.verdict = Dcl.Tests.Accept)

let test_run_test_first_bin () =
  (* All mass in the first bin: d* = 1 (1-based!), tested symbol 2. *)
  let v = vqd_of_pmf 4 [| 1.; 1e-9; 1e-9; 1e-9 |] in
  let o = Dcl.Tests.sdcl v in
  Alcotest.(check int) "d* = 1" 1 o.Dcl.Tests.d_star;
  Alcotest.(check int) "tested symbol = 2" 2 o.Dcl.Tests.two_d_star

(* --- Stats.Histogram: index_of / value_of on bin edges ----------------- *)

let hist_m = 8
let hist () = Stats.Histogram.create ~m:hist_m ~lo:0.2 ~hi:1.

let test_histogram_edges () =
  let h = hist () in
  Alcotest.(check int) "x = lo" 0 (Stats.Histogram.index_of h 0.2);
  Alcotest.(check int) "x < lo clamps" 0 (Stats.Histogram.index_of h (-5.));
  Alcotest.(check int) "x = hi" (hist_m - 1) (Stats.Histogram.index_of h 1.);
  Alcotest.(check int) "x > hi clamps" (hist_m - 1) (Stats.Histogram.index_of h 7.);
  (* value_of is the right edge of the bin; the last right edge is hi. *)
  Alcotest.(check (float 1e-12)) "last value is hi" 1.
    (Stats.Histogram.value_of h (hist_m - 1))

let prop_histogram_index_in_range =
  QCheck.Test.make ~name:"index_of stays in [0, m)" ~count:500
    QCheck.(float_range (-2.) 3.)
    (fun x ->
      let j = Stats.Histogram.index_of (hist ()) x in
      0 <= j && j < hist_m)

let prop_histogram_index_monotone =
  QCheck.Test.make ~name:"index_of is monotone" ~count:500
    QCheck.(pair (float_range 0. 1.2) (float_range 0. 1.2))
    (fun (x, y) ->
      let h = hist () in
      let x, y = if x <= y then (x, y) else (y, x) in
      Stats.Histogram.index_of h x <= Stats.Histogram.index_of h y)

let prop_histogram_interior_edges =
  (* Bins are half-open on the shared boundary grid: an interior edge
     belongs to exactly the bin whose lower edge it is.  Before the
     grid-reconciled index_of, the raw division could round the edge
     into either adjacent bin, so this property only held as
     "j = k - 1 || j = k". *)
  QCheck.Test.make ~name:"interior edges land in their own bin" ~count:200
    QCheck.(int_range 1 (hist_m - 1))
    (fun k ->
      let h = hist () in
      let edge = Stats.Histogram.lo h +. (float_of_int k *. Stats.Histogram.width h) in
      Stats.Histogram.index_of h edge = k)

let prop_histogram_value_roundtrip =
  (* The right edge of bin j is the lower edge of bin j + 1, so under
     half-open ownership it indexes to exactly j + 1 — except the last
     right edge, which is hi and stays in the last bin. *)
  QCheck.Test.make ~name:"index_of (value_of j) is exactly j+1 (last: j)" ~count:200
    QCheck.(int_range 0 (hist_m - 1))
    (fun j ->
      let h = hist () in
      let idx = Stats.Histogram.index_of h (Stats.Histogram.value_of h j) in
      idx = min (j + 1) (hist_m - 1))

let prop_histogram_half_open_contract =
  (* Direct statement of the contract: every in-range sample satisfies
     edges.(j) <= x < edges.(j+1) for its returned bin (the last bin
     also owns hi). *)
  QCheck.Test.make ~name:"index_of satisfies the half-open bin contract" ~count:500
    QCheck.(float_range 0.2 1.)
    (fun x ->
      let h = hist () in
      let j = Stats.Histogram.index_of h x in
      let edge k = Stats.Histogram.lo h +. (float_of_int k *. Stats.Histogram.width h) in
      edge j <= x && (x < edge (j + 1) || j = hist_m - 1))

let test_histogram_clamped_counter () =
  let h = hist () in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h (-1.);
  Stats.Histogram.add h 2.;
  (* The range endpoints are in range, not clamps. *)
  Stats.Histogram.add h 0.2;
  Stats.Histogram.add h 1.;
  Alcotest.(check int) "clamped counts only out-of-range samples" 2
    (Stats.Histogram.clamped h);
  Alcotest.(check int) "clamped samples still land in edge bins" 5
    (Stats.Histogram.total h);
  Alcotest.(check int) "add_index does not clamp" 2
    (Stats.Histogram.add_index h 3;
     Stats.Histogram.clamped h)

let prop_histogram_values_increasing =
  QCheck.Test.make ~name:"value_of is strictly increasing" ~count:100
    QCheck.(int_range 0 (hist_m - 2))
    (fun j ->
      let h = hist () in
      Stats.Histogram.value_of h j < Stats.Histogram.value_of h (j + 1))

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_wdcl_bound_is_least_symbol_above_beta;
      prop_run_test_matches_reference;
      prop_d_star_is_least_median_symbol;
      prop_histogram_index_in_range;
      prop_histogram_index_monotone;
      prop_histogram_interior_edges;
      prop_histogram_value_roundtrip;
      prop_histogram_half_open_contract;
      prop_histogram_values_increasing;
    ]

let () =
  Alcotest.run "boundaries"
    [
      ( "wdcl bound cutoff",
        [
          Alcotest.test_case "exact equality" `Quick test_wdcl_bound_exact_equality;
          Alcotest.test_case "caps at last symbol" `Quick test_wdcl_bound_all_mass_low;
        ] );
      ( "test indexing",
        [
          Alcotest.test_case "past the end" `Quick test_run_test_past_end;
          Alcotest.test_case "first bin" `Quick test_run_test_first_bin;
        ] );
      ( "histogram edges",
        [
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          Alcotest.test_case "clamped counter" `Quick test_histogram_clamped_counter;
        ] );
      ("properties", qcheck_cases);
    ]

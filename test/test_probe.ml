(* Tests for shadow probes, traces, the prober, and the loss-pair
   baseline. *)

open Netsim

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let chain ?(bandwidth = 1e6) ?(capacity = 10_000) () =
  let sim = Sim.create ~seed:11 () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" and c = Net.add_node net "c" in
  let l1, _ = Net.add_duplex net ~a ~b ~bandwidth ~delay:0.005 ~capacity:1_000_000 () in
  let l2, _ = Net.add_duplex net ~a:b ~b:c ~bandwidth ~delay:0.005 ~capacity () in
  Net.compute_routes net;
  (sim, net, a, b, c, l1, l2)

(* --- Shadow ------------------------------------------------------------ *)

let test_shadow_idle_path () =
  let sim, net, a, _, c, _, _ = chain () in
  let path = Net.path_links net ~src:a ~dst:c in
  let result = ref None in
  Probe.Shadow.launch net ~path ~size:10 ~rng:(Stats.Rng.create 1) ~at:1. ~k:(fun r ->
      result := Some r);
  Sim.run sim;
  match !result with
  | None -> Alcotest.fail "shadow did not complete"
  | Some r ->
      Alcotest.(check (option int)) "no loss" None r.Probe.Shadow.loss_hop;
      check_float "zero queuing" 0. (Probe.Shadow.total_queuing r);
      (* base = 2 x (prop 5 ms + 80 us transmission of 10 B at 1 Mb/s) *)
      check_float "base delay" 0.01016 r.Probe.Shadow.base_delay;
      check_float "end-end = base" r.Probe.Shadow.base_delay
        (Probe.Shadow.end_to_end_delay r)

let test_shadow_sees_queue () =
  let sim, net, a, b, c, _, l2 = chain () in
  (* Two 1000-byte packets in l2's queue when the shadow arrives: the
     shadow launched at t=0.99 reaches l2 at 0.99 + 80us + 5ms, while
     the packets (injected at 0.99) still occupy it. *)
  Sim.at sim 0.99 (fun () ->
      for i = 0 to 1 do
        Net.inject net
          (Packet.make ~id:i ~flow:0 ~src:b ~dst:c ~size:1000 ~kind:Packet.Udp ~seq:i
             ~sent_at:0.99 ())
      done);
  ignore l2;
  let path = Net.path_links net ~src:a ~dst:c in
  let result = ref None in
  Probe.Shadow.launch net ~path ~size:10 ~rng:(Stats.Rng.create 1) ~at:0.99
    ~k:(fun r -> result := Some r);
  Sim.run sim;
  match !result with
  | None -> Alcotest.fail "no result"
  | Some r ->
      Alcotest.(check (option int)) "not lost" None r.Probe.Shadow.loss_hop;
      Alcotest.(check bool) "queuing observed at hop 1" true (r.Probe.Shadow.hop_queuing.(1) > 0.001)

let test_shadow_loss_mark () =
  let sim, net, a, _, c, _, l2 = chain ~capacity:2000 () in
  (* Fill l2 (waiting room full for the MTU rule). *)
  Sim.at sim 0.9999 (fun () ->
      for i = 0 to 2 do
        Net.inject net
          (Packet.make ~id:i ~flow:0 ~src:(Link.src l2) ~dst:c ~size:1000
             ~kind:Packet.Udp ~seq:i ~sent_at:0.9999 ())
      done);
  let path = Net.path_links net ~src:a ~dst:c in
  let result = ref None in
  (* Arrive at l2 just after it fills: launch so hop-1 arrival ~1.0001. *)
  Probe.Shadow.launch net ~path ~size:10 ~rng:(Stats.Rng.create 1)
    ~at:(1.0001 -. 0.005 -. 0.00008)
    ~k:(fun r -> result := Some r);
  Sim.run sim;
  match !result with
  | None -> Alcotest.fail "no result"
  | Some r ->
      Alcotest.(check (option int)) "lost at hop 1" (Some 1) r.Probe.Shadow.loss_hop;
      check_float "records the full-queue drain time Q_k"
        (Link.max_queuing_delay l2) r.Probe.Shadow.hop_queuing.(1)

let test_shadow_transparent () =
  (* Shadows must not affect link counters or queues. *)
  let sim, net, a, _, c, _, l2 = chain () in
  let path = Net.path_links net ~src:a ~dst:c in
  for i = 0 to 99 do
    Probe.Shadow.launch net ~path ~size:10 ~rng:(Stats.Rng.create 1)
      ~at:(0.01 *. float_of_int i) ~k:(fun _ -> ())
  done;
  Sim.run sim;
  Alcotest.(check int) "no arrivals recorded" 0 (Link.arrivals l2);
  Alcotest.(check int) "no drops recorded" 0 (Link.drops l2)

let test_shadow_empty_path () =
  let _, net, _, _, _, _, _ = chain () in
  Alcotest.check_raises "empty path" (Invalid_argument "Shadow.launch: empty path")
    (fun () ->
      Probe.Shadow.launch net ~path:[] ~size:10 ~rng:(Stats.Rng.create 1) ~at:0.
        ~k:(fun _ -> ()))

(* --- Trace ------------------------------------------------------------- *)

let mk_record ?(t = 0.) obs truth = Probe.Trace.{ send_time = t; obs; truth }

let sample_trace () =
  let records =
    [|
      mk_record ~t:0. (Probe.Trace.Delay 0.10) None;
      mk_record ~t:0.02 Probe.Trace.Lost
        (Some
           Probe.Trace.
             { virtual_queuing_delay = 0.08; hop_queuing = [| 0.; 0.08 |]; loss_hop = Some 1 });
      mk_record ~t:0.04 (Probe.Trace.Delay 0.15) None;
      mk_record ~t:0.06 (Probe.Trace.Delay 0.12) None;
    |]
  in
  Probe.Trace.create ~records ~interval:0.02 ~base_delay:0.05 ~hop_count:2

let test_trace_stats () =
  let t = sample_trace () in
  Alcotest.(check int) "length" 4 (Probe.Trace.length t);
  Alcotest.(check int) "losses" 1 (Probe.Trace.losses t);
  check_float "loss rate" 0.25 (Probe.Trace.loss_rate t);
  check_float "min delay" 0.10 (Probe.Trace.min_delay t);
  check_float "max delay" 0.15 (Probe.Trace.max_delay t);
  check_float "duration" 0.08 (Probe.Trace.duration t);
  Alcotest.(check int) "observed delays" 3 (Array.length (Probe.Trace.observed_delays t))

let test_trace_truth_accessors () =
  let t = sample_trace () in
  let v = Probe.Trace.truth_virtual_delays t in
  Alcotest.(check int) "one loss-marked probe" 1 (Array.length v);
  check_float "virtual queuing delay" 0.08 v.(0);
  check_float "loss share at hop 1" 1. (Probe.Trace.truth_loss_share t 1);
  check_float "loss share at hop 0" 0. (Probe.Trace.truth_loss_share t 0)

let test_trace_sub () =
  let t = sample_trace () in
  let s = Probe.Trace.sub t ~pos:1 ~len:2 in
  Alcotest.(check int) "sub length" 2 (Probe.Trace.length s);
  Alcotest.(check int) "sub losses" 1 (Probe.Trace.losses s);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Trace.sub: out of bounds")
    (fun () -> ignore (Probe.Trace.sub t ~pos:3 ~len:2))

let test_trace_random_segment () =
  let t = sample_trace () in
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 20 do
    let s = Probe.Trace.random_segment rng t ~duration:0.04 in
    Alcotest.(check int) "segment size" 2 (Probe.Trace.length s)
  done

let test_trace_save_load_roundtrip () =
  let t = sample_trace () in
  let file = Filename.temp_file "dcl" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Probe.Trace.save t file;
      let t' = Probe.Trace.load file in
      Alcotest.(check int) "length" (Probe.Trace.length t) (Probe.Trace.length t');
      check_float "interval" t.Probe.Trace.interval t'.Probe.Trace.interval;
      check_close 1e-8 "base" t.Probe.Trace.base_delay t'.Probe.Trace.base_delay;
      Alcotest.(check int) "hops" t.Probe.Trace.hop_count t'.Probe.Trace.hop_count;
      Array.iteri
        (fun i (r : Probe.Trace.record) ->
          let r' = t'.Probe.Trace.records.(i) in
          (match (r.obs, r'.obs) with
          | Probe.Trace.Lost, Probe.Trace.Lost -> ()
          | Probe.Trace.Delay a, Probe.Trace.Delay b -> check_close 1e-8 "delay" a b
          | _ -> Alcotest.fail "observation mismatch");
          match (r.truth, r'.truth) with
          | None, None -> ()
          | Some a, Some b ->
              check_close 1e-8 "vqd" a.Probe.Trace.virtual_queuing_delay
                b.Probe.Trace.virtual_queuing_delay;
              Alcotest.(check (option int)) "loss hop" a.Probe.Trace.loss_hop
                b.Probe.Trace.loss_hop
          | _ -> Alcotest.fail "truth mismatch")
        t.Probe.Trace.records)

(* Property: save/load roundtrips arbitrary traces. *)
let trace_gen =
  QCheck.Gen.(
    let record_gen =
      pair (float_bound_inclusive 1.) (option (float_range 0.001 0.5)) >|= fun (t, d) ->
      match d with
      | Some d -> mk_record ~t (Probe.Trace.Delay d) None
      | None ->
          mk_record ~t Probe.Trace.Lost
            (Some
               Probe.Trace.
                 { virtual_queuing_delay = 0.1; hop_queuing = [| 0.1 |]; loss_hop = Some 0 })
    in
    list_size (int_range 1 50) record_gen >|= fun rs ->
    Probe.Trace.create ~records:(Array.of_list rs) ~interval:0.02 ~base_delay:0.01
      ~hop_count:1)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace save/load roundtrip" ~count:50
    (QCheck.make trace_gen) (fun t ->
      let file = Filename.temp_file "dclq" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Probe.Trace.save t file;
          let t' = Probe.Trace.load file in
          Probe.Trace.length t = Probe.Trace.length t'
          && Probe.Trace.losses t = Probe.Trace.losses t'))

(* --- Prober ------------------------------------------------------------ *)

let test_prober_count_and_order () =
  let sim, net, a, _, c, _, _ = chain () in
  let prober = Probe.Prober.create net ~src:a ~dst:c ~interval:0.02 () in
  Probe.Prober.start prober ~at:1. ~until:3.;
  Sim.run_until sim 4.;
  let trace = Probe.Prober.trace prober in
  Alcotest.(check int) "100 probes" 100 (Probe.Trace.length trace);
  check_float "first send time" 1. trace.Probe.Trace.records.(0).Probe.Trace.send_time;
  Array.iteri
    (fun i (r : Probe.Trace.record) ->
      check_close 1e-9 "regular spacing"
        (1. +. (0.02 *. float_of_int i))
        r.Probe.Trace.send_time)
    trace.Probe.Trace.records

let test_prober_idle_path_delays () =
  let sim, net, a, _, c, _, _ = chain () in
  let prober = Probe.Prober.create net ~src:a ~dst:c ~interval:0.02 () in
  Probe.Prober.start prober ~at:0. ~until:1.;
  Sim.run_until sim 2.;
  let trace = Probe.Prober.trace prober in
  Alcotest.(check int) "no losses" 0 (Probe.Trace.losses trace);
  check_float "all delays equal base" trace.Probe.Trace.base_delay
    (Probe.Trace.min_delay trace);
  check_float "all delays equal base" trace.Probe.Trace.base_delay
    (Probe.Trace.max_delay trace)

let test_prober_invalid_window () =
  let _, net, a, _, c, _, _ = chain () in
  let prober = Probe.Prober.create net ~src:a ~dst:c ~interval:0.02 () in
  Alcotest.check_raises "empty window" (Invalid_argument "Prober.start: empty probing window")
    (fun () -> Probe.Prober.start prober ~at:2. ~until:1.)

(* --- Loss pairs --------------------------------------------------------- *)

let test_losspair_accounting () =
  let sim, net, a, _, c, _, l2 = chain ~capacity:3000 () in
  (* Saturating CBR makes the bottleneck drop. *)
  let src = Traffic.Udp.cbr net ~src:(Link.src l2) ~dst:c ~rate:1.4e6 ~pkt_size:1000 in
  Traffic.Udp.start src;
  let lp = Probe.Losspair.create net ~src:a ~dst:c ~pair_interval:0.04 () in
  Probe.Losspair.start lp ~at:1. ~until:21.;
  Sim.run_until sim 25.;
  Alcotest.(check int) "pairs sent" 500 (Probe.Losspair.pairs_sent lp);
  let samples = Probe.Losspair.samples lp in
  Alcotest.(check int) "one sample per loss pair" (Probe.Losspair.loss_pairs lp)
    (Array.length samples);
  Alcotest.(check bool) "pair outcomes within bounds" true
    (Probe.Losspair.loss_pairs lp + Probe.Losspair.both_lost lp
    <= Probe.Losspair.pairs_sent lp)

let test_losspair_estimate_near_qmax () =
  (* On-off overload: the queue fills during bursts and drains between
     them, so loss pairs straddle full-queue instants. *)
  let sim, net, a, _, c, _, l2 = chain ~capacity:10_000 () in
  let src =
    Traffic.Udp.onoff net ~src:(Link.src l2) ~dst:c ~rate:2e6 ~pkt_size:1000 ~mean_on:0.4
      ~mean_off:0.4
  in
  Traffic.Udp.start src;
  let lp = Probe.Losspair.create net ~src:a ~dst:c ~gap:0.004 ~pair_interval:0.04 () in
  Probe.Losspair.start lp ~at:1. ~until:121.;
  Sim.run_until sim 125.;
  match Probe.Losspair.estimate_max_queuing_delay lp with
  | None -> Alcotest.fail "no loss pairs observed"
  | Some est ->
      check_close 0.02 "estimate near Q_max of the only congested link"
        (Link.max_queuing_delay l2) est

let test_losspair_no_losses () =
  let sim, net, a, _, c, _, _ = chain () in
  let lp = Probe.Losspair.create net ~src:a ~dst:c ~pair_interval:0.04 () in
  Probe.Losspair.start lp ~at:0. ~until:2.;
  Sim.run_until sim 3.;
  Alcotest.(check int) "no loss pairs on idle path" 0 (Probe.Losspair.loss_pairs lp);
  Alcotest.(check (option (float 0.))) "no estimate" None
    (Probe.Losspair.estimate_max_queuing_delay lp)

let qcheck_cases = List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_trace_roundtrip ]

let () =
  Alcotest.run "probe"
    [
      ( "shadow",
        [
          Alcotest.test_case "idle path" `Quick test_shadow_idle_path;
          Alcotest.test_case "sees queue" `Quick test_shadow_sees_queue;
          Alcotest.test_case "loss mark" `Quick test_shadow_loss_mark;
          Alcotest.test_case "transparent" `Quick test_shadow_transparent;
          Alcotest.test_case "empty path" `Quick test_shadow_empty_path;
        ] );
      ( "trace",
        [
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "truth accessors" `Quick test_trace_truth_accessors;
          Alcotest.test_case "sub" `Quick test_trace_sub;
          Alcotest.test_case "random segment" `Quick test_trace_random_segment;
          Alcotest.test_case "save/load roundtrip" `Quick test_trace_save_load_roundtrip;
        ] );
      ( "prober",
        [
          Alcotest.test_case "count and order" `Quick test_prober_count_and_order;
          Alcotest.test_case "idle path delays" `Quick test_prober_idle_path_delays;
          Alcotest.test_case "invalid window" `Quick test_prober_invalid_window;
        ] );
      ( "losspair",
        [
          Alcotest.test_case "accounting" `Quick test_losspair_accounting;
          Alcotest.test_case "estimate near Qmax" `Quick test_losspair_estimate_near_qmax;
          Alcotest.test_case "no losses" `Quick test_losspair_no_losses;
        ] );
      ("properties", qcheck_cases);
    ]

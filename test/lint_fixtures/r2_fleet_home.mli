(* Interface companion: keeps the sanctioned-home fixture clear of R6
   (every lib/ module must ship a .mli). *)
val key : (int, int) Hashtbl.t Domain.DLS.key
val cache : unit -> (int, int) Hashtbl.t

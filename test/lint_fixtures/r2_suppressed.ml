(* lint-fixture: bin/fixtures/r2s.ml *)
(* lint: allow R2 fixture exercises the suppression path, not real parallelism *)
let pause () = Domain.cpu_relax ()

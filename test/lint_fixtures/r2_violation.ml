(* lint-fixture: bin/fixtures/r2.ml *)
let pause () = Domain.cpu_relax () (* expect: R2 *)

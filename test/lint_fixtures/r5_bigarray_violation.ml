(* lint-fixture: bin/fixtures/r5ba.ml *)
module Ba = Bigarray.Array1

(* Unsafe access outside a fence: bounds-unchecked loads are only
   tolerated inside audited hot regions. *)
let peek (b : (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t) =
  Ba.unsafe_get b 0 (* expect: R5 *)

let shrink (b : (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t) n =
  (* lint: hot *)
  let v = Ba.sub b 0 n in (* expect: R5 *)
  let x = Ba.unsafe_get v 0 in
  (* lint: end-hot *)
  x

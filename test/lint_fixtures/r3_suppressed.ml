(* lint-fixture: bin/fixtures/r3s.ml *)
(* lint: allow R3 fixture exercises the suppression path, not a real tolerance *)
let at_one x = x = 1.0

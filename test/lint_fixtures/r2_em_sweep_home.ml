(* lint-fixture: lib/em/em_sweep.ml *)
(* The within-sweep chunk driver is a sanctioned concurrency home:
   Domain-local workspace state and pool dispatch live here by design,
   so none of these produce R2 diagnostics. *)
let key = Domain.DLS.new_key (fun () -> ref 0)
let slot () = Domain.DLS.get key

(* lint-fixture: bin/fixtures/r0_owner.ml *)
(* lint: owner chef *) (* expect: R0 *)
(* lint: owner shared guarded-by *) (* expect: R0 *)
(* lint: owner driver guarded-by m *) (* expect: R0 *)
let x = 1

(* lint-fixture: bin/fixtures/r1s.ml *)
(* lint: allow R1 fixture exercises the suppression path, not real entropy *)
let draw () = Random.float 1.0

(* Disk sibling so the R4 fixture does not also trip R6/missing-mli. *)
val greet : unit -> unit

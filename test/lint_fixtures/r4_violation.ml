(* lint-fixture: lib/fixtures/r4.ml *)
let greet () = print_endline "hello" (* expect: R4 *)

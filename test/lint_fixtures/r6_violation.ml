(* lint-fixture: lib/fixtures/r6.ml *) (* expect: R6 *)
let answer = 42

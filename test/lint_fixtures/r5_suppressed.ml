(* lint-fixture: bin/fixtures/r5s.ml *)
let double xs =
  (* lint: hot *)
  (* lint: allow R5 fixture exercises the suppression path, not a real hot loop *)
  let ys = List.map (fun x -> x * 2) xs in
  (* lint: end-hot *)
  ys

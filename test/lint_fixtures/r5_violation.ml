(* lint-fixture: bin/fixtures/r5.ml *)
let double xs =
  (* lint: hot *)
  let ys = List.map (fun x -> x * 2) xs in (* expect: R5 *)
  (* lint: end-hot *)
  ys

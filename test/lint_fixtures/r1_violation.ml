(* lint-fixture: bin/fixtures/r1.ml *)
let draw () = Random.float 1.0 (* expect: R1 *)

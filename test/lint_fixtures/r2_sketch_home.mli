(* Interface companion: keeps the sanctioned-home fixture clear of R6
   (every lib/ module must ship a .mli). *)
val key : int array Domain.DLS.key
val scratch : unit -> int array

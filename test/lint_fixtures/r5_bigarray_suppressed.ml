(* lint-fixture: bin/fixtures/r5bas.ml *)
module Ba = Bigarray.Array1

let peek (b : (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t) =
  (* lint: allow R5 fixture exercises the suppression path, not a real access *)
  Ba.unsafe_get b 0

let shrink (b : (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t) n =
  (* lint: hot *)
  (* lint: allow R5 fixture exercises the suppression path, not a real hot loop *)
  let v = Ba.sub b 0 n in
  let x = Ba.unsafe_get v 0 in
  (* lint: end-hot *)
  x

(* lint-fixture: bin/fixtures/r3.ml *)
let at_one x = x = 1.0 (* expect: R3 *)

let close a b = abs_float (a -. b) < 1e-9 (* expect: R3 *)

(* lint-fixture: lib/fixtures/r6s.ml *) (* lint: allow R6 fixture stands in for a module whose interface is its implementation *)
let answer = 42

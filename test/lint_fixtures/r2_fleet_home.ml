(* lint-fixture: lib/fleet/workspace_cache.ml *)
(* The fleet layer is a sanctioned concurrency home: it owns the
   per-domain EM workspace cache (Domain.DLS) and the epoch fan-out
   over the pool, so none of these produce R2 diagnostics. *)
let key = Domain.DLS.new_key (fun () -> Hashtbl.create 8)
let cache () = Domain.DLS.get key

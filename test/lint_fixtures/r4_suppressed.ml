(* lint-fixture: lib/fixtures/r4s.ml *)
(* lint: allow R4 fixture exercises the suppression path, not real stdout *)
let greet () = print_endline "hello"

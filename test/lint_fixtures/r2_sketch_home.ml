(* lint-fixture: lib/sketch/front.ml *)
(* The sketch triage layer sits on the fleet's push path and is a
   sanctioned concurrency home alongside lib/fleet/: per-domain
   scratch for the estimators may live in Domain.DLS, so none of
   these produce R2 diagnostics. *)
let key = Domain.DLS.new_key (fun () -> Array.make 4 0)
let scratch () = Domain.DLS.get key

(* lint-fixture: bin/fixtures/r0.ml *)
(* lint: allow R3 *) (* expect: R0 *)
let at_one x = x = 1.0 (* expect: R3 *)

(* Companion interface so the lib/-classified fixture passes R6. *)
val slot : unit -> int ref

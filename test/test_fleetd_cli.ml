(* End-end CLI validation for dcl-fleetd: out-of-range or malformed
   arguments must be rejected at the cmdliner layer with the standard
   cli-error exit code (124) and never reach the library (where they
   would surface as an Invalid_argument backtrace or a confusing
   trace-file load error).  Runs the installed executable as a
   subprocess; dune provides it via the stanza's deps. *)

let exe = Filename.concat (Filename.concat ".." "bin") "dcl_fleetd.exe"

let run args =
  Sys.command (Filename.quote_command exe args ~stdout:Filename.null ~stderr:Filename.null)

let cli_error = 124

let check_rejected name args =
  Alcotest.(check int) name cli_error (run args)

let test_lambda_validation () =
  check_rejected "lambda zero" [ "--lambda"; "0" ];
  check_rejected "lambda above one" [ "--lambda"; "1.5" ];
  check_rejected "lambda negative" [ "--lambda"; "-0.5" ];
  check_rejected "lambda not a number" [ "--lambda"; "fast" ];
  check_rejected "lambda nan" [ "--lambda"; "nan" ]

let test_epoch_validation () =
  check_rejected "epoch zero" [ "--epoch"; "0" ];
  check_rejected "epoch negative" [ "--epoch"; "-3" ];
  check_rejected "epochs zero" [ "--epochs"; "0" ];
  check_rejected "paths zero" [ "--paths"; "0" ];
  check_rejected "domains zero" [ "--domains"; "0" ];
  check_rejected "m below three" [ "-m"; "2" ];
  check_rejected "n zero" [ "-n"; "0" ]

let test_congested_fraction_validation () =
  check_rejected "fraction above one" [ "--congested-fraction"; "1.5" ];
  check_rejected "fraction negative" [ "--congested-fraction"; "-0.1" ]

let test_source_validation () =
  check_rejected "unknown source keyword" [ "--source"; "bogus" ];
  check_rejected "nonexistent trace file"
    [ "--source"; "no-such-trace-file.trace" ]

let test_gate_validation () =
  check_rejected "gate hysteresis zero" [ "--gate"; "--gate-h"; "0" ];
  check_rejected "gate demote zero" [ "--gate"; "--gate-demote"; "0" ];
  check_rejected "gate loss negative" [ "--gate"; "--gate-loss"; "-0.1" ];
  check_rejected "gate drift negative" [ "--gate"; "--gate-drift"; "-1" ]

let tiny = [ "--paths"; "4"; "--epochs"; "2"; "--epoch"; "8"; "--seed"; "3" ]

let test_valid_runs () =
  Alcotest.(check int) "tiny synthetic run" 0 (run tiny);
  Alcotest.(check int) "tiny gated run" 0 (run (tiny @ [ "--gate" ]));
  Alcotest.(check int) "boundary values accepted" 0
    (run (tiny @ [ "--lambda"; "1.0"; "--congested-fraction"; "1.0" ]))

let () =
  if not (Sys.file_exists exe) then begin
    (* Driven by dune, the dep guarantees the binary; a bare run
       outside the build tree degrades to a skip, not a false fail. *)
    print_endline "test_fleetd_cli: dcl_fleetd.exe not found, skipping";
    exit 0
  end;
  Alcotest.run "fleetd-cli"
    [
      ( "validation",
        [
          Alcotest.test_case "lambda range" `Quick test_lambda_validation;
          Alcotest.test_case "integer floors" `Quick test_epoch_validation;
          Alcotest.test_case "congested fraction" `Quick
            test_congested_fraction_validation;
          Alcotest.test_case "source keyword" `Quick test_source_validation;
          Alcotest.test_case "gate parameters" `Quick test_gate_validation;
        ] );
      ( "accepted",
        [ Alcotest.test_case "valid invocations" `Quick test_valid_runs ] );
    ]

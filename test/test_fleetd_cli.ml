(* End-end CLI validation for dcl-fleetd: out-of-range or malformed
   arguments must be rejected at the cmdliner layer with the standard
   cli-error exit code (124) and never reach the library (where they
   would surface as an Invalid_argument backtrace or a confusing
   trace-file load error).  Runs the installed executable as a
   subprocess; dune provides it via the stanza's deps. *)

let exe = Filename.concat (Filename.concat ".." "bin") "dcl_fleetd.exe"

let run args =
  Sys.command (Filename.quote_command exe args ~stdout:Filename.null ~stderr:Filename.null)

let cli_error = 124

let check_rejected name args =
  Alcotest.(check int) name cli_error (run args)

let test_lambda_validation () =
  check_rejected "lambda zero" [ "--lambda"; "0" ];
  check_rejected "lambda above one" [ "--lambda"; "1.5" ];
  check_rejected "lambda negative" [ "--lambda"; "-0.5" ];
  check_rejected "lambda not a number" [ "--lambda"; "fast" ];
  check_rejected "lambda nan" [ "--lambda"; "nan" ]

let test_epoch_validation () =
  check_rejected "epoch zero" [ "--epoch"; "0" ];
  check_rejected "epoch negative" [ "--epoch"; "-3" ];
  check_rejected "epochs zero" [ "--epochs"; "0" ];
  check_rejected "paths zero" [ "--paths"; "0" ];
  check_rejected "domains zero" [ "--domains"; "0" ];
  check_rejected "m below three" [ "-m"; "2" ];
  check_rejected "n zero" [ "-n"; "0" ]

let test_congested_fraction_validation () =
  check_rejected "fraction above one" [ "--congested-fraction"; "1.5" ];
  check_rejected "fraction negative" [ "--congested-fraction"; "-0.1" ]

let test_source_validation () =
  check_rejected "unknown source keyword" [ "--source"; "bogus" ];
  check_rejected "nonexistent trace file"
    [ "--source"; "no-such-trace-file.trace" ]

let test_gate_validation () =
  check_rejected "gate hysteresis zero" [ "--gate"; "--gate-h"; "0" ];
  check_rejected "gate demote zero" [ "--gate"; "--gate-demote"; "0" ];
  check_rejected "gate loss negative" [ "--gate"; "--gate-loss"; "-0.1" ];
  check_rejected "gate drift negative" [ "--gate"; "--gate-drift"; "-1" ]

let test_admin_validation () =
  check_rejected "listen port negative" [ "--listen"; "-1" ];
  check_rejected "listen port above 65535" [ "--listen"; "65536" ];
  check_rejected "listen port not a number" [ "--listen"; "http" ];
  check_rejected "metrics interval zero" [ "--metrics-interval"; "0" ];
  check_rejected "metrics interval negative" [ "--metrics-interval"; "-2" ];
  check_rejected "linger negative" [ "--linger"; "-1" ]

let tiny = [ "--paths"; "4"; "--epochs"; "2"; "--epoch"; "8"; "--seed"; "3" ]

let test_valid_runs () =
  Alcotest.(check int) "tiny synthetic run" 0 (run tiny);
  Alcotest.(check int) "tiny gated run" 0 (run (tiny @ [ "--gate" ]));
  Alcotest.(check int) "boundary values accepted" 0
    (run (tiny @ [ "--lambda"; "1.0"; "--congested-fraction"; "1.0" ]));
  Alcotest.(check int) "ephemeral listen port accepted" 0
    (run (tiny @ [ "--listen"; "0"; "--metrics-interval"; "2" ]))

(* --- live endpoint smoke ------------------------------------------------ *)

(* Launch the daemon with --listen 0, parse the announced ephemeral
   port from its stdout, and exercise the admin routes over a real
   socket while the run lingers.  The linger window is generous (the
   whole test takes well under a second of it) and the daemon exits by
   itself when it closes. *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      path
  in
  let _ = Unix.write_substring sock req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let k = Unix.read sock chunk 0 4096 in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      drain ()
    end
  in
  drain ();
  Buffer.contents buf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* The daemon announces "admin: listening on http://127.0.0.1:PORT". *)
let parse_port out =
  let marker = "http://127.0.0.1:" in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length out then None
    else if String.sub out i ml = marker then begin
      let j = ref (i + ml) in
      while
        !j < String.length out && out.[!j] >= '0' && out.[!j] <= '9'
      do
        incr j
      done;
      int_of_string_opt (String.sub out (i + ml) (!j - i - ml))
    end
    else find (i + 1)
  in
  find 0

let test_live_endpoint () =
  let out_path = Filename.temp_file "fleetd_cli" ".out" in
  Fun.protect ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
  @@ fun () ->
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let args =
    [|
      exe; "--paths"; "8"; "--epochs"; "40"; "--epoch"; "8"; "--seed"; "3";
      "--listen"; "0"; "--linger"; "30";
    |]
  in
  (* DCL_TRACE through the environment is the no-dump opt-in path — a
     regression here once left the flag set but the rings unallocated,
     so /trace served an empty event list. *)
  let env = Array.append (Unix.environment ()) [| "DCL_TRACE=1" |] in
  let pid = Unix.create_process_env exe args env Unix.stdin out_fd Unix.stderr in
  Unix.close out_fd;
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
  @@ fun () ->
  (* Poll for the announced port: the daemon prints it right after
     binding, well before the epochs finish. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec wait_port () =
    match parse_port (read_file out_path) with
    | Some p -> p
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "daemon never announced its admin port"
        else begin
          Unix.sleepf 0.05;
          wait_port ()
        end
  in
  let port = wait_port () in
  let health = http_get port "/healthz" in
  Alcotest.(check bool) "healthz 200" true (contains health "200 OK");
  (* Slow routes are served by the driver between epochs (and during
     the linger window), so they may take an epoch's latency — the
     blocking socket read already waits for it. *)
  let paths = http_get port "/paths" in
  Alcotest.(check bool) "paths summary 200" true (contains paths "200 OK");
  Alcotest.(check bool) "summary counts the fleet" true
    (contains paths "\"paths\":8");
  let p0 = http_get port "/paths/0" in
  Alcotest.(check bool) "path detail 200" true (contains p0 "200 OK");
  Alcotest.(check bool) "path detail has a timeline" true
    (contains p0 "\"timeline\"");
  let missing = http_get port "/paths/999" in
  Alcotest.(check bool) "out-of-range path is 404" true
    (contains missing "404 Not Found");
  let unknown = http_get port "/nope" in
  Alcotest.(check bool) "unknown route is 404" true
    (contains unknown "404 Not Found");
  let trace = http_get port "/trace" in
  Alcotest.(check bool) "trace 200" true (contains trace "200 OK");
  Alcotest.(check bool) "env-enabled recorder captured events" true
    (contains trace "\"name\":\"fleet.epoch\"")

let () =
  if not (Sys.file_exists exe) then begin
    (* Driven by dune, the dep guarantees the binary; a bare run
       outside the build tree degrades to a skip, not a false fail. *)
    print_endline "test_fleetd_cli: dcl_fleetd.exe not found, skipping";
    exit 0
  end;
  Alcotest.run "fleetd-cli"
    [
      ( "validation",
        [
          Alcotest.test_case "lambda range" `Quick test_lambda_validation;
          Alcotest.test_case "integer floors" `Quick test_epoch_validation;
          Alcotest.test_case "congested fraction" `Quick
            test_congested_fraction_validation;
          Alcotest.test_case "source keyword" `Quick test_source_validation;
          Alcotest.test_case "gate parameters" `Quick test_gate_validation;
          Alcotest.test_case "admin flags" `Quick test_admin_validation;
        ] );
      ( "accepted",
        [ Alcotest.test_case "valid invocations" `Quick test_valid_runs ] );
      ( "endpoint",
        [ Alcotest.test_case "live admin routes" `Quick test_live_endpoint ] );
    ]

(* lint-fixture: lib/fleet/r3_typed_violation.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* No float literal, no float arithmetic, no registered ident: only the
   typedtree knows these operands are floats. *)

let eq (a : float) b = a = b (* expect: R3 *)

let cmp (a : float) b = compare a b (* expect: R3 *)

(* lint-fixture: lib/fleet/r7_via_local_fn.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* Reachability, not just direct capture: the worker closure touches
   driver state through a unit-local helper chain. *)

(* lint: owner driver *)
let sched_state = ref 0

let read_sched () = !sched_state
let indirect () = read_sched () + 1

let sweep n =
  Stats.Pool.run ~participants:2 n (fun _i ->
      ignore (indirect ()) (* expect: R7 *))

(* lint-fixture: lib/fleet/r9_protect_ok.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* The sanctioned shapes: Fun.protect guarding a raising span, and a
   provably no-raise span with a direct unlock. *)

let m = Mutex.create ()

(* lint: owner shared guarded-by m *)
let items : int list ref = ref []

let register_protected f =
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () ->
      let v = f () in
      items := v :: !items)

let push v =
  Mutex.lock m;
  items := v :: !items;
  Mutex.unlock m

(* lint-fixture: lib/fleet/r3_typed_suppressed.ml *) (* lint: allow R6 fixture module has no interface by design *)

let eq (a : float) b =
  (* lint: allow R3 fixture exercises suppression of the typed float-cmp rule *)
  a = b

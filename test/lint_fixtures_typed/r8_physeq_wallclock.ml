(* lint-fixture: lib/fleet/r8_physeq_wallclock.ml *) (* lint: allow R6 fixture module has no interface by design *)

let same_box (a : float) (b : float) = a == b (* expect: R8 *)

let stamp () = Sys.time () (* expect: R8 *)

let stamp_allowed () =
  (* lint: allow R8 fixture demonstrates suppressing a wall-clock read *)
  Sys.time ()

(* lint-fixture: lib/fleet/r5_alias_suppressed.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* lint: hot *)
let fast_get = Bigarray.Array1.unsafe_get
(* lint: end-hot *)

let read (buf : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) i =
  (* lint: allow R5 index is validated by the caller; fixture exercises suppression *)
  fast_get buf i

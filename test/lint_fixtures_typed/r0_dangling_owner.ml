(* lint-fixture: lib/fleet/r0_dangling_owner.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* An owner annotation must sit on (or directly above) a top-level
   mutable binding; attached to a function it is malformed, and
   floating free it is dangling. *)

(* lint: owner driver *)
let plain_function x = x + 1 (* expect: R0 *)

(* lint: owner worker *) (* expect: R0 *)

let far_away = ref 0 (* expect: R7 *)

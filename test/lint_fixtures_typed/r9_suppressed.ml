(* lint-fixture: lib/fleet/r9_suppressed.ml *) (* lint: allow R6 fixture module has no interface by design *)

let m = Mutex.create ()

(* lint: owner shared guarded-by m *)
let items : int list ref = ref []

let register f =
  (* lint: allow R9 f is documented no-raise; fixture exercises suppression *)
  Mutex.lock m;
  let v = f () in
  items := v :: !items;
  Mutex.unlock m

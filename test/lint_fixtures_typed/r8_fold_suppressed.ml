(* lint-fixture: lib/fleet/r8_fold_suppressed.ml *) (* lint: allow R6 fixture module has no interface by design *)

let count (h : (string, int) Hashtbl.t) =
  (* lint: allow R8 commutative sum; iteration order cannot show in the result *)
  Hashtbl.fold (fun _ v acc -> v + acc) h 0

(* lint-fixture: lib/fleet/r5_alias_violation.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* Renaming an unsafe accessor does not launder it: the typed pass
   tracks the alias through the let-binding. *)

(* lint: hot *)
let fast_get = Bigarray.Array1.unsafe_get
(* lint: end-hot *)

let read (buf : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) i =
  fast_get buf i (* expect: R5 *)

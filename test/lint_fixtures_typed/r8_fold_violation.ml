(* lint-fixture: lib/fleet/r8_fold_violation.ml *) (* lint: allow R6 fixture module has no interface by design *)

let snapshot (h : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] (* expect: R8 *)

(* Sorting at the collection point makes the iteration order
   irrelevant: no diagnostic. *)
let snapshot_sorted (h : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

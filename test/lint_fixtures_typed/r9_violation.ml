(* lint-fixture: lib/fleet/r9_violation.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* The shape of the lock-leak this rule exists for: a callback runs
   between lock and unlock, so an exception escapes with the mutex
   held.  Mirrors the pre-fix Obs.register. *)

let m = Mutex.create ()

(* lint: owner shared guarded-by m *)
let items : int list ref = ref []

let register f =
  Mutex.lock m; (* expect: R9 *)
  let v = f () in
  items := v :: !items;
  Mutex.unlock m

(* lint-fixture: lib/fleet/r7_owner_violation.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* The seeded race of the acceptance criteria: a pool-worker closure
   reads driver-owned scheduler state. *)

(* lint: owner driver *)
let epoch = ref 0

let sweep n =
  Stats.Pool.run ~participants:2 n (fun _i ->
      ignore !epoch (* expect: R7 *))

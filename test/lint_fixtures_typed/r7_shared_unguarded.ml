(* lint-fixture: lib/fleet/r7_shared_unguarded.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* [shared] must synchronize: Atomic-typed, or guarded-by a named
   mutex. *)

(* lint: owner shared *)
let registry : (string, int) Hashtbl.t = Hashtbl.create 8 (* expect: R7 *)

let reg_mutex = Mutex.create ()

(* lint: owner shared guarded-by reg_mutex *)
let guarded : (string, int) Hashtbl.t = Hashtbl.create 8

(* lint: owner shared *)
let flag = Atomic.make false

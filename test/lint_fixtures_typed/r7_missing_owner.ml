(* lint-fixture: lib/fleet/r7_missing_owner.ml *) (* lint: allow R6 fixture module has no interface by design *)

let counter = ref 0 (* expect: R7 *)
let bump () = incr counter

(* A worker-owned cell with its annotation in place is fine. *)
(* lint: owner worker *)
let scratch = ref 0

(* lint-fixture: lib/fleet/r7_owner_suppressed.ml *) (* lint: allow R6 fixture module has no interface by design *)

(* lint: owner driver *)
let epoch = ref 0

let sweep n =
  Stats.Pool.run ~participants:2 n (fun _i ->
      (* lint: allow R7 fixture demonstrates suppressing the ownership race *)
      ignore !epoch)

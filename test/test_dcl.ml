(* Tests for the core contribution: discretization, virtual queuing
   delay distributions, the SDCL/WDCL hypothesis tests (Theorems 1-2 on
   synthetic virtual-probe populations), the Q_max bounds, the
   ground-truth classifier, and the end-end pipeline. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Discretize --------------------------------------------------------- *)

let scheme5 = Dcl.Discretize.of_range ~m:5 ~lo:0.1 ~hi:0.6

let test_discretize_ranges () =
  check_float "width" 0.1 scheme5.Dcl.Discretize.width;
  Alcotest.(check int) "at lo" 0 (Dcl.Discretize.symbol_of_delay scheme5 0.1);
  Alcotest.(check int) "inside bin 0" 0 (Dcl.Discretize.symbol_of_delay scheme5 0.15);
  Alcotest.(check int) "upper edge belongs to bin" 0
    (Dcl.Discretize.symbol_of_delay scheme5 0.2);
  Alcotest.(check int) "just above an edge" 1
    (Dcl.Discretize.symbol_of_delay scheme5 0.2000001);
  Alcotest.(check int) "clamp below" 0 (Dcl.Discretize.symbol_of_delay scheme5 0.0);
  Alcotest.(check int) "clamp above" 4 (Dcl.Discretize.symbol_of_delay scheme5 1.0);
  Alcotest.(check int) "top bin" 4 (Dcl.Discretize.symbol_of_delay scheme5 0.55)

let test_discretize_queuing () =
  Alcotest.(check int) "queuing = delay - lo" 2
    (Dcl.Discretize.symbol_of_queuing scheme5 0.25);
  check_float "queuing value = upper edge" 0.3 (Dcl.Discretize.queuing_value scheme5 2)

let test_discretize_symbolize () =
  let obs = [| Probe.Trace.Delay 0.15; Probe.Trace.Lost; Probe.Trace.Delay 0.45 |] in
  Alcotest.(check (array (option int))) "symbolized"
    [| Some 0; None; Some 3 |]
    (Dcl.Discretize.symbolize scheme5 obs)

let test_discretize_invalid () =
  Alcotest.check_raises "m <= 0" (Invalid_argument "Discretize.of_range: m <= 0")
    (fun () -> ignore (Dcl.Discretize.of_range ~m:0 ~lo:0. ~hi:1.));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Discretize.of_range: hi <= lo")
    (fun () -> ignore (Dcl.Discretize.of_range ~m:5 ~lo:1. ~hi:1.))

let mk_trace ?(interval = 0.02) records =
  Probe.Trace.create ~records:(Array.of_list records) ~interval ~base_delay:0.1
    ~hop_count:2

let rec_delay t d = Probe.Trace.{ send_time = t; obs = Delay d; truth = None }

let rec_loss t vqd hop =
  Probe.Trace.
    {
      send_time = t;
      obs = Lost;
      truth =
        Some { virtual_queuing_delay = vqd; hop_queuing = [| 0.; vqd |]; loss_hop = Some hop };
    }

let test_discretize_of_trace () =
  let trace = mk_trace [ rec_delay 0. 0.12; rec_delay 0.02 0.3; rec_loss 0.04 0.1 1 ] in
  let s = Dcl.Discretize.of_trace ~m:5 ~prop_delay:Dcl.Discretize.From_trace trace in
  check_float "lo = min observed" 0.12 s.Dcl.Discretize.lo;
  check_float "hi = max observed" 0.3 s.Dcl.Discretize.hi;
  let s' = Dcl.Discretize.of_trace ~m:5 ~prop_delay:(Dcl.Discretize.Known 0.1) trace in
  check_float "known propagation" 0.1 s'.Dcl.Discretize.lo

(* --- Vqd ----------------------------------------------------------------- *)

let test_vqd_of_pmf () =
  let v = Dcl.Vqd.of_pmf scheme5 [| 1.; 1.; 2.; 0.; 0. |] in
  check_float "normalized" 0.25 v.Dcl.Vqd.pmf.(0);
  check_float "cdf" 0.5 (Dcl.Vqd.cdf_at v 1);
  check_float "cdf below range" 0. (Dcl.Vqd.cdf_at v (-1));
  check_float "cdf above range" 1. (Dcl.Vqd.cdf_at v 99)

let test_vqd_of_samples () =
  let v = Dcl.Vqd.of_queuing_samples scheme5 [| 0.05; 0.15; 0.18; 0.45 |] in
  check_float "bin 0" 0.25 v.Dcl.Vqd.pmf.(0);
  check_float "bin 1" 0.5 v.Dcl.Vqd.pmf.(1);
  check_float "bin 4" 0.25 v.Dcl.Vqd.pmf.(4)

let test_vqd_quantile () =
  let v = Dcl.Vqd.of_pmf scheme5 [| 0.2; 0.2; 0.3; 0.2; 0.1 |] in
  Alcotest.(check int) "median symbol" 2 (Dcl.Vqd.quantile_symbol v 0.5);
  Alcotest.(check int) "q0 symbol" 0 (Dcl.Vqd.quantile_symbol v 0.1);
  Alcotest.(check int) "q1 symbol" 4 (Dcl.Vqd.quantile_symbol v 1.0)

let test_vqd_mean () =
  let v = Dcl.Vqd.of_pmf scheme5 [| 0.; 0.; 1.; 0.; 0. |] in
  check_float "mean at bin value" 0.3 (Dcl.Vqd.mean_queuing v)

let test_vqd_of_trace_truth () =
  let trace =
    mk_trace [ rec_delay 0. 0.12; rec_loss 0.02 0.25 1; rec_loss 0.04 0.26 1; rec_delay 0.06 0.6 ]
  in
  let v = Dcl.Vqd.of_trace_truth scheme5 trace in
  check_float "both losses in bin 2" 1. v.Dcl.Vqd.pmf.(2)

let test_vqd_requires_losses () =
  let trace = mk_trace [ rec_delay 0. 0.2 ] in
  Alcotest.check_raises "no loss" (Invalid_argument "Vqd.of_trace_truth: trace has no loss")
    (fun () -> ignore (Dcl.Vqd.of_trace_truth scheme5 trace))

(* --- Hypothesis tests (Theorems 1-2 on synthetic populations) ---------- *)

(* Build the discretized F directly from a synthetic population of
   virtual queuing delays of lost probes. *)
let vqd_of_y_population scheme ys = Dcl.Vqd.of_queuing_samples scheme (Array.of_list ys)

let test_sdcl_accepts_strongly_dominant () =
  (* One link takes all losses with Q_k = 0.25 over a 0-0.5 range:
     every Y is in [Q_k, 2 Q_k], as Theorem 1 requires. *)
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let ys = List.init 100 (fun i -> 0.25 +. (0.002 *. float_of_int i)) in
  let v = vqd_of_y_population scheme ys in
  let o = Dcl.Tests.sdcl v in
  Alcotest.(check bool) "accepts" true (o.Dcl.Tests.verdict = Dcl.Tests.Accept);
  Alcotest.(check bool) "F at 2 d_star = 1" true (o.Dcl.Tests.f_at_two_d_star >= 0.999)

let test_sdcl_rejects_two_lossy_links () =
  (* Two independent lossy links with Q1 = 0.1 and Q2 = 0.4: the small
     cluster's Y  ~ 0.1, the big one's ~ 0.4 > 2 * d_star value. *)
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let ys =
    List.init 60 (fun i -> 0.1 +. (0.0003 *. float_of_int i))
    @ List.init 40 (fun i -> 0.42 +. (0.001 *. float_of_int i))
  in
  let v = vqd_of_y_population scheme ys in
  let o = Dcl.Tests.sdcl v in
  Alcotest.(check bool) "rejects" true (o.Dcl.Tests.verdict = Dcl.Tests.Reject);
  check_close 1e-9 "F at 2 d_star = share of small cluster" 0.6
    o.Dcl.Tests.f_at_two_d_star

let test_wdcl_accepts_weakly_dominant () =
  (* 95% of losses at the small-Q link: with beta = 0.06 the weak test
     accepts while the strong test rejects. *)
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let ys =
    List.init 95 (fun i -> 0.1 +. (0.0003 *. float_of_int i))
    @ List.init 5 (fun i -> 0.42 +. (0.001 *. float_of_int i))
  in
  let v = vqd_of_y_population scheme ys in
  Alcotest.(check bool) "SDCL rejects" true
    ((Dcl.Tests.sdcl v).Dcl.Tests.verdict = Dcl.Tests.Reject);
  Alcotest.(check bool) "WDCL(0.06, 0) accepts" true
    ((Dcl.Tests.wdcl ~beta:0.06 ~eps:0. v).Dcl.Tests.verdict = Dcl.Tests.Accept);
  (* With a beta below the off-link share the test must reject
     (the paper's beta = 0.02 worked example). *)
  Alcotest.(check bool) "WDCL(0.02, 0) rejects" true
    ((Dcl.Tests.wdcl ~beta:0.02 ~eps:0. v).Dcl.Tests.verdict = Dcl.Tests.Reject)

let test_wdcl_threshold_formula () =
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let v = vqd_of_y_population scheme (List.init 10 (fun _ -> 0.05)) in
  let o = Dcl.Tests.wdcl ~tolerance:0. ~beta:0.1 ~eps:0.2 v in
  check_float "threshold = (1-beta)(1-eps)" 0.72 o.Dcl.Tests.threshold

let test_wdcl_invalid_params () =
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let v = vqd_of_y_population scheme [ 0.1 ] in
  Alcotest.check_raises "beta >= 1/2" (Invalid_argument "Tests.wdcl: beta must be in [0, 1/2)")
    (fun () -> ignore (Dcl.Tests.wdcl ~beta:0.5 ~eps:0. v));
  Alcotest.check_raises "eps > 1" (Invalid_argument "Tests.wdcl: eps must be in [0, 1]")
    (fun () -> ignore (Dcl.Tests.wdcl ~beta:0.1 ~eps:1.5 v))

let test_d_star_indexing_matches_paper () =
  (* Mass at symbol 2 (1-based) => d_star = 2 and 2 d_star = 4, as in
     the paper's worked example. *)
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  let v = Dcl.Vqd.of_pmf scheme [| 0.0; 0.97; 0.0; 0.0; 0.03 |] in
  let o = Dcl.Tests.sdcl v in
  Alcotest.(check int) "d_star" 2 o.Dcl.Tests.d_star;
  Alcotest.(check int) "2 d_star" 4 o.Dcl.Tests.two_d_star;
  check_float "F at symbol 4" 0.97 o.Dcl.Tests.f_at_two_d_star

(* --- Bounds -------------------------------------------------------------- *)

let test_sdcl_bound () =
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  (* All mass in bin 2 => median symbol 2 (0-based), bound = 0.3. *)
  let v = Dcl.Vqd.of_pmf scheme [| 0.; 0.; 1.; 0.; 0. |] in
  check_float "median-quantile bound" 0.3 (Dcl.Bound.sdcl_bound v);
  (* The bound must upper-bound the true Q_k for a strongly dominant
     population: Y >= Q_k always, so the median delay value >= Q_k. *)
  let q_k = 0.25 in
  let ys = List.init 100 (fun i -> q_k +. (0.002 *. float_of_int i)) in
  let v2 = vqd_of_y_population scheme ys in
  Alcotest.(check bool) "bound dominates Q_k" true (Dcl.Bound.sdcl_bound v2 >= q_k)

let test_wdcl_bound () =
  let scheme = Dcl.Discretize.of_range ~m:5 ~lo:0. ~hi:0.5 in
  (* 5% of mass below the dominant cluster: with beta = 0.06 the bound
     skips the small low cluster. *)
  let v = Dcl.Vqd.of_pmf scheme [| 0.05; 0.; 0.95; 0.; 0. |] in
  check_float "skips sub-beta mass" 0.3 (Dcl.Bound.wdcl_bound ~beta:0.06 v);
  (* With beta = 0.02 the low cluster (5% > beta) stops the scan. *)
  check_float "stops at first above-beta mass" 0.1 (Dcl.Bound.wdcl_bound ~beta:0.02 v)

let test_component_bound () =
  let scheme = Dcl.Discretize.of_range ~m:10 ~lo:0. ~hi:1. in
  (* Components: bins 1-2 (mass 0.15) and bins 6-8 (mass 0.85). *)
  let pmf = [| 0.; 0.1; 0.05; 0.; 0.; 0.; 0.3; 0.4; 0.15; 0. |] in
  let v = Dcl.Vqd.of_pmf scheme pmf in
  let comps = Dcl.Bound.components v in
  Alcotest.(check int) "two components" 2 (List.length comps);
  (* Largest-mass component starts at bin 6: bound = value of bin 6. *)
  check_close 1e-9 "bound at component start" 0.7 (Dcl.Bound.component_bound v)

let test_component_bound_single_cluster () =
  let scheme = Dcl.Discretize.of_range ~m:10 ~lo:0. ~hi:1. in
  let pmf = [| 0.; 0.; 0.; 0.5; 0.5; 0.; 0.; 0.; 0.; 0. |] in
  let v = Dcl.Vqd.of_pmf scheme pmf in
  check_close 1e-9 "single component" 0.4 (Dcl.Bound.component_bound v)

(* --- Truth --------------------------------------------------------------- *)

let test_truth_classify () =
  let strong =
    mk_trace (List.init 20 (fun i -> rec_loss (0.02 *. float_of_int i) 0.25 1))
  in
  Alcotest.(check bool) "strong" true (Dcl.Truth.classify strong ~hop_count:2 = Dcl.Truth.Strong);
  let weak =
    mk_trace
      (List.init 19 (fun i -> rec_loss (0.02 *. float_of_int i) 0.25 1)
      @ [ rec_loss 0.40 0.3 0 ])
  in
  (match Dcl.Truth.classify weak ~hop_count:2 with
  | Dcl.Truth.Weak { hop = 1; _ } -> ()
  | _ -> Alcotest.fail "expected weak at hop 1");
  let none =
    mk_trace
      (List.init 10 (fun i -> rec_loss (0.02 *. float_of_int i) 0.25 1)
      @ List.init 10 (fun i -> rec_loss (0.2 +. (0.02 *. float_of_int i)) 0.3 0))
  in
  Alcotest.(check bool) "no dominant" true
    (Dcl.Truth.classify none ~hop_count:2 = Dcl.Truth.No_dominant);
  let lossless = mk_trace [ rec_delay 0. 0.2 ] in
  Alcotest.(check bool) "no losses => no dominant" true
    (Dcl.Truth.classify lossless ~hop_count:2 = Dcl.Truth.No_dominant)

let test_truth_shares_and_delay_condition () =
  let trace =
    mk_trace [ rec_loss 0. 0.25 1; rec_loss 0.02 0.25 1; rec_loss 0.04 0.3 0 ]
  in
  let shares = Dcl.Truth.loss_shares trace ~hop_count:2 in
  check_close 1e-9 "share hop 1" (2. /. 3.) shares.(1);
  (match Dcl.Truth.dominant_hop trace ~hop_count:2 with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "dominant hop");
  (* rec_loss puts all queuing on hop 1, so the delay condition holds
     trivially there. *)
  check_float "delay condition" 1. (Dcl.Truth.delay_condition_fraction trace ~hop:1)

(* --- Identify (end-end pipeline on synthetic traces) -------------------- *)

(* Synthesize a trace from an MMHD reference model: delays are bin
   midpoints of the symbols, losses carry truth with Y = the hidden
   symbol's value. *)
let synthetic_trace ~len seed =
  let reference : Mmhd.t =
    {
      n = 1;
      m = 5;
      pi = [| 0.55; 0.25; 0.15; 0.04; 0.01 |];
      a =
        [|
          [| 0.80; 0.15; 0.04; 0.008; 0.002 |];
          [| 0.30; 0.50; 0.15; 0.04; 0.01 |];
          [| 0.10; 0.25; 0.50; 0.12; 0.03 |];
          [| 0.05; 0.10; 0.30; 0.45; 0.10 |];
          [| 0.02; 0.08; 0.20; 0.30; 0.40 |];
        |];
      c = [| 0.; 0.005; 0.02; 0.3; 0.4 |];
    }
  in
  let rng = Stats.Rng.create seed in
  let obs, path = Mmhd.simulate rng reference ~len in
  let base = 0.05 in
  let width = 0.02 in
  (* Jitter delays within their generator bin so the From_trace
     discretization grid aligns with the generator's. *)
  let jrng = Stats.Rng.create (seed + 1) in
  let records =
    Array.mapi
      (fun t o ->
        let send_time = 0.02 *. float_of_int t in
        let y = Mmhd.symbol_of reference path.(t) in
        let delay =
          base +. (width *. (float_of_int y +. Stats.Sampler.uniform jrng ~lo:0.02 ~hi:0.98))
        in
        match o with
        | Some _ -> Probe.Trace.{ send_time; obs = Delay delay; truth = None }
        | None ->
            Probe.Trace.
              {
                send_time;
                obs = Lost;
                truth =
                  Some
                    {
                      virtual_queuing_delay = delay -. base;
                      hop_queuing = [| delay -. base |];
                      loss_hop = Some 0;
                    };
              })
      obs
  in
  Probe.Trace.create ~records ~interval:0.02 ~base_delay:base ~hop_count:1

let test_identifiable () =
  let good = synthetic_trace ~len:2000 3 in
  Alcotest.(check bool) "synthetic trace identifiable" true (Dcl.Identify.identifiable good);
  let lossless = mk_trace [ rec_delay 0. 0.2; rec_delay 0.02 0.3 ] in
  Alcotest.(check bool) "lossless not identifiable" false
    (Dcl.Identify.identifiable lossless);
  let flat = mk_trace [ rec_delay 0. 0.2; rec_loss 0.02 0.1 1 ] in
  Alcotest.(check bool) "no spread not identifiable" false (Dcl.Identify.identifiable flat)

let test_identify_runs_end_to_end () =
  let trace = synthetic_trace ~len:8000 5 in
  let rng = Stats.Rng.create 7 in
  let r = Dcl.Identify.run ~rng trace in
  Alcotest.(check int) "m symbols" 5 (Array.length r.Dcl.Identify.vqd.Dcl.Vqd.pmf);
  Alcotest.(check bool) "loss rate recorded" true (r.Dcl.Identify.loss_rate > 0.);
  Alcotest.(check bool) "em ran" true (r.Dcl.Identify.em_iterations > 0);
  (* The synthetic losses concentrate at high symbols: the model's
     posterior must agree with the generator's truth within a small TV
     distance. *)
  let scheme = r.Dcl.Identify.scheme in
  let truth = Dcl.Vqd.of_trace_truth scheme trace in
  Alcotest.(check bool) "model close to truth" true
    (Dcl.Vqd.tv_distance truth r.Dcl.Identify.vqd < 0.2)

let test_identify_models_agree_on_synthetic () =
  let trace = synthetic_trace ~len:8000 11 in
  let rng = Stats.Rng.create 13 in
  let conclusions =
    List.map
      (fun model ->
        let params = { Dcl.Identify.default_params with model } in
        (Dcl.Identify.run ~params ~rng trace).Dcl.Identify.conclusion)
      [ Dcl.Identify.Model_mmhd; Dcl.Identify.Model_markov; Dcl.Identify.Model_hmm ]
  in
  match conclusions with
  | [ a; b; c ] ->
      Alcotest.(check bool) "all three models agree" true (a = b && b = c)
  | _ -> Alcotest.fail "unexpected"

let test_identify_rejects_bad_trace () =
  let rng = Stats.Rng.create 1 in
  let lossless = mk_trace [ rec_delay 0. 0.2; rec_delay 0.02 0.3 ] in
  Alcotest.(check bool) "raises on unidentifiable trace" true
    (try
       ignore (Dcl.Identify.run ~rng lossless);
       false
     with Invalid_argument _ -> true)

let test_conclusion_strings () =
  Alcotest.(check string) "strong" "strongly dominant congested link"
    (Dcl.Identify.conclusion_to_string Dcl.Identify.Strongly_dominant);
  Alcotest.(check string) "none" "no dominant congested link"
    (Dcl.Identify.conclusion_to_string Dcl.Identify.No_dominant)

(* QCheck: for arbitrary VQDs, d_star doubles correctly and verdicts are
   monotone in beta (larger beta => easier acceptance). *)
let vqd_arb =
  let gen =
    QCheck.Gen.(
      list_size (return 5) (float_range 0.01 1.) >|= fun ws ->
      Dcl.Vqd.of_pmf scheme5 (Array.of_list ws))
  in
  QCheck.make gen

let prop_wdcl_monotone_in_beta =
  QCheck.Test.make ~name:"WDCL acceptance monotone in beta" ~count:200 vqd_arb (fun v ->
      let accept beta = (Dcl.Tests.wdcl ~beta ~eps:0. v).Dcl.Tests.verdict = Dcl.Tests.Accept in
      (* If it accepts at a small beta it must accept at a larger one. *)
      (not (accept 0.02)) || accept 0.2)

let prop_sdcl_implies_wdcl =
  QCheck.Test.make ~name:"SDCL acceptance implies WDCL acceptance" ~count:200 vqd_arb
    (fun v ->
      (Dcl.Tests.sdcl v).Dcl.Tests.verdict = Dcl.Tests.Reject
      || (Dcl.Tests.wdcl ~beta:0.06 ~eps:0. v).Dcl.Tests.verdict = Dcl.Tests.Accept)

let prop_bounds_ordering =
  QCheck.Test.make ~name:"WDCL bound <= SDCL bound" ~count:200 vqd_arb (fun v ->
      (* The beta-quantile is never above the median. *)
      Dcl.Bound.wdcl_bound ~beta:0.06 v <= Dcl.Bound.sdcl_bound v +. 1e-9)

let prop_symbol_roundtrip =
  QCheck.Test.make ~name:"bin midpoints land in their own symbol" ~count:300
    QCheck.(pair (int_range 1 40) (int_range 0 39))
    (fun (m, j) ->
      QCheck.assume (j < m);
      let s = Dcl.Discretize.of_range ~m ~lo:0.1 ~hi:1.7 in
      (* Bin edges are subject to floating-point rounding either way;
         the midpoint is unambiguous. *)
      let mid = Dcl.Discretize.queuing_value s j -. (s.Dcl.Discretize.width /. 2.) in
      Dcl.Discretize.symbol_of_queuing s mid = j)

let prop_symbolize_total =
  QCheck.Test.make ~name:"symbolize preserves length and loss positions" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (option (float_range 0.05 2.)))
    (fun entries ->
      let obs =
        Array.of_list
          (List.map
             (function
               | Some d -> Probe.Trace.Delay d
               | None -> Probe.Trace.Lost)
             entries)
      in
      let s = Dcl.Discretize.of_range ~m:7 ~lo:0.05 ~hi:2. in
      let symbols = Dcl.Discretize.symbolize s obs in
      Array.length symbols = Array.length obs
      && Array.for_all2
           (fun o sym ->
             match (o, sym) with
             | Probe.Trace.Lost, None -> true
             | Probe.Trace.Delay _, Some j -> j >= 0 && j < 7
             | _ -> false)
           obs symbols)

let prop_component_bound_dominated_by_range =
  QCheck.Test.make ~name:"component bound within the queuing range" ~count:200 vqd_arb
    (fun v ->
      let b = Dcl.Bound.component_bound v in
      b > 0. && b <= Dcl.Discretize.queuing_value v.Dcl.Vqd.scheme 4 +. 1e-9)

let qcheck_cases =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_wdcl_monotone_in_beta;
      prop_sdcl_implies_wdcl;
      prop_bounds_ordering;
      prop_symbol_roundtrip;
      prop_symbolize_total;
      prop_component_bound_dominated_by_range;
    ]

let () =
  Alcotest.run "dcl"
    [
      ( "discretize",
        [
          Alcotest.test_case "ranges" `Quick test_discretize_ranges;
          Alcotest.test_case "queuing" `Quick test_discretize_queuing;
          Alcotest.test_case "symbolize" `Quick test_discretize_symbolize;
          Alcotest.test_case "invalid" `Quick test_discretize_invalid;
          Alcotest.test_case "of_trace" `Quick test_discretize_of_trace;
        ] );
      ( "vqd",
        [
          Alcotest.test_case "of pmf" `Quick test_vqd_of_pmf;
          Alcotest.test_case "of samples" `Quick test_vqd_of_samples;
          Alcotest.test_case "quantile" `Quick test_vqd_quantile;
          Alcotest.test_case "mean" `Quick test_vqd_mean;
          Alcotest.test_case "of trace truth" `Quick test_vqd_of_trace_truth;
          Alcotest.test_case "requires losses" `Quick test_vqd_requires_losses;
        ] );
      ( "hypothesis tests",
        [
          Alcotest.test_case "SDCL accepts strong" `Quick test_sdcl_accepts_strongly_dominant;
          Alcotest.test_case "SDCL rejects two lossy links" `Quick
            test_sdcl_rejects_two_lossy_links;
          Alcotest.test_case "WDCL worked example" `Quick test_wdcl_accepts_weakly_dominant;
          Alcotest.test_case "WDCL threshold formula" `Quick test_wdcl_threshold_formula;
          Alcotest.test_case "WDCL invalid params" `Quick test_wdcl_invalid_params;
          Alcotest.test_case "d* indexing" `Quick test_d_star_indexing_matches_paper;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "SDCL bound" `Quick test_sdcl_bound;
          Alcotest.test_case "WDCL bound" `Quick test_wdcl_bound;
          Alcotest.test_case "component bound" `Quick test_component_bound;
          Alcotest.test_case "single cluster" `Quick test_component_bound_single_cluster;
        ] );
      ( "truth",
        [
          Alcotest.test_case "classify" `Quick test_truth_classify;
          Alcotest.test_case "shares and delay condition" `Quick
            test_truth_shares_and_delay_condition;
        ] );
      ( "identify",
        [
          Alcotest.test_case "identifiable" `Quick test_identifiable;
          Alcotest.test_case "end-end pipeline" `Slow test_identify_runs_end_to_end;
          Alcotest.test_case "models agree" `Slow test_identify_models_agree_on_synthetic;
          Alcotest.test_case "rejects bad trace" `Quick test_identify_rejects_bad_trace;
          Alcotest.test_case "conclusion strings" `Quick test_conclusion_strings;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for convex-hull clock skew estimation and removal. *)

let check_close eps = Alcotest.(check (float eps))

let test_hull_of_line () =
  let pts = Array.init 10 (fun i -> (float_of_int i, 2. +. float_of_int i)) in
  let hull = Clocksync.lower_hull pts in
  (* Collinear points collapse to the segment endpoints (possibly with
     interior points removed). *)
  Alcotest.(check bool) "endpoints kept" true
    (hull.(0) = (0., 2.) && hull.(Array.length hull - 1) = (9., 11.))

let test_hull_below_points () =
  let rng = Stats.Rng.create 3 in
  let pts =
    Array.init 200 (fun i ->
        (float_of_int i, (0.01 *. float_of_int i) +. Stats.Rng.float rng))
  in
  let hull = Clocksync.lower_hull pts in
  (* Every point must lie on or above every hull edge's chord. *)
  for k = 0 to Array.length hull - 2 do
    let x1, y1 = hull.(k) and x2, y2 = hull.(k + 1) in
    let slope = (y2 -. y1) /. (x2 -. x1) in
    Array.iter
      (fun (x, y) ->
        if x >= x1 && x <= x2 then
          let line = y1 +. (slope *. (x -. x1)) in
          if y < line -. 1e-9 then Alcotest.fail "point below hull edge")
      pts
  done

let test_estimate_exact_line () =
  let times = Array.init 50 (fun i -> float_of_int i) in
  let delays = Array.map (fun t -> 0.05 +. (0.001 *. t)) times in
  let { Clocksync.slope; intercept } = Clocksync.estimate ~times ~delays in
  check_close 1e-9 "slope" 0.001 slope;
  check_close 1e-9 "intercept" 0.05 intercept

let test_estimate_with_queueing_noise () =
  (* One-way delays = propagation + skew*t + non-negative queuing; the
     estimator must recover the skew from the floor of the cloud. *)
  let rng = Stats.Rng.create 7 in
  let n = 5000 in
  let skew = 5e-5 in
  let times = Array.init n (fun i -> 0.02 *. float_of_int i) in
  let delays =
    Array.map
      (fun t ->
        let queuing =
          if Stats.Sampler.bernoulli rng ~p:0.7 then 0.
          else Stats.Sampler.exponential rng ~rate:50.
        in
        0.03 +. (skew *. t) +. queuing)
      times
    in
  let { Clocksync.slope; _ } = Clocksync.estimate ~times ~delays in
  check_close 2e-6 "skew recovered" skew slope

let test_apply_remove_roundtrip () =
  let rng = Stats.Rng.create 9 in
  let n = 2000 in
  let times = Array.init n (fun i -> 0.02 *. float_of_int i) in
  let clean =
    Array.map
      (fun _ ->
        0.03
        +. if Stats.Sampler.bernoulli rng ~p:0.5 then 0. else Stats.Sampler.exponential rng ~rate:30.)
      times
  in
  let skewed = Clocksync.apply_skew ~times ~delays:clean ~skew:(-8e-5) in
  let repaired = Clocksync.remove_skew ~times ~delays:skewed in
  (* Compare shapes: the repaired series differs from the clean one by
     at most a constant (the offset at t0) plus estimation error. *)
  let diff = Array.init n (fun i -> repaired.(i) -. clean.(i)) in
  let dmin = Array.fold_left Float.min diff.(0) diff in
  let dmax = Array.fold_left Float.max diff.(0) diff in
  Alcotest.(check bool) "residual drift < 1 ms across the trace" true
    (dmax -. dmin < 0.001)

let test_estimate_invalid () =
  Alcotest.(check bool) "needs 2 samples" true
    (try
       ignore (Clocksync.estimate ~times:[| 1. |] ~delays:[| 1. |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Clocksync.estimate ~times:[| 1.; 2. |] ~delays:[| 1. |]);
       false
     with Invalid_argument _ -> true)

(* QCheck: estimated line lies below all samples. *)
let prop_line_below_cloud =
  QCheck.Test.make ~name:"estimated line bounds the cloud from below" ~count:100
    QCheck.(pair (int_range 1 1000) (float_range (-1e-4) 1e-4))
    (fun (seed, skew) ->
      let rng = Stats.Rng.create seed in
      let n = 200 in
      let times = Array.init n (fun i -> float_of_int i) in
      let delays =
        Array.map (fun t -> 0.05 +. (skew *. t) +. Stats.Rng.float rng) times
      in
      let { Clocksync.slope; intercept } = Clocksync.estimate ~times ~delays in
      Array.for_all2
        (fun t d -> d >= intercept +. (slope *. t) -. 1e-9)
        times delays)

let qcheck_cases = List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_line_below_cloud ]

let () =
  Alcotest.run "clocksync"
    [
      ( "hull",
        [
          Alcotest.test_case "line" `Quick test_hull_of_line;
          Alcotest.test_case "below points" `Quick test_hull_below_points;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "exact line" `Quick test_estimate_exact_line;
          Alcotest.test_case "queueing noise" `Quick test_estimate_with_queueing_noise;
          Alcotest.test_case "invalid" `Quick test_estimate_invalid;
        ] );
      ( "remove",
        [ Alcotest.test_case "apply/remove roundtrip" `Quick test_apply_remove_roundtrip ]
      );
      ("properties", qcheck_cases);
    ]

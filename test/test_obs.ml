(* Observability layer: exact counting under concurrency, histogram
   bucket-boundary semantics, snapshot determinism, and the
   zero-allocation disabled path. *)

let () = Stats.Pool.set_capacity 3

(* --- concurrent counting ------------------------------------------------ *)

(* Increments from pool workers and the caller must sum exactly: the
   sharded cells may split the count any way between domains, but the
   total is the number of increments, every time. *)
let concurrent_counter_sum =
  QCheck.Test.make ~name:"concurrent increments sum exactly" ~count:15
    QCheck.(pair (int_range 1 3_000) (int_range 1 4))
    (fun (n, domains) ->
      Obs.set_enabled true;
      let c = Obs.Counter.make "test_obs_concurrent_total" in
      let before = Obs.Counter.value c in
      ignore
        (Stats.Par.map_range ~domains n (fun i ->
             if i land 1 = 0 then Obs.Counter.incr c else Obs.Counter.add c 1));
      Obs.Counter.value c -. before = float_of_int n)

let concurrent_float_sum =
  QCheck.Test.make ~name:"concurrent float adds sum exactly" ~count:10
    (QCheck.int_range 1 2_000)
    (fun n ->
      Obs.set_enabled true;
      let c = Obs.Counter.make "test_obs_concurrent_float_total" in
      let before = Obs.Counter.value c in
      (* 0.25 is exactly representable, so the CAS accumulation admits
         no rounding and the check can be exact. *)
      ignore
        (Stats.Par.map_range ~domains:4 n (fun _ ->
             Obs.Counter.add_float c 0.25));
      Obs.Counter.value c -. before = 0.25 *. float_of_int n)

(* --- histogram bucket boundaries ---------------------------------------- *)

(* Reference semantics: smallest [i] with [v <= uppers.(i)], overflow
   bucket at [Array.length uppers]. *)
let reference_index uppers v =
  let n = Array.length uppers in
  let rec go i = if i >= n || v <= uppers.(i) then i else go (i + 1) in
  go 0

let hist_counter = ref 0

let fresh_hist buckets =
  incr hist_counter;
  Obs.Histogram.make ~buckets
    (Printf.sprintf "test_obs_hist_%d_seconds" !hist_counter)

let bucket_index_matches_reference =
  QCheck.Test.make ~name:"bucket_index matches reference" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8) (float_range 0.001 100.))
        (float_range (-1.) 200.))
    (fun (raw, v) ->
      let uppers = List.sort_uniq compare raw |> Array.of_list in
      let h = fresh_hist uppers in
      Obs.Histogram.bucket_index h v = reference_index uppers v)

let test_bucket_boundaries () =
  let h = fresh_hist [| 1.; 2.; 5. |] in
  let check what v expect =
    Alcotest.(check int) what expect (Obs.Histogram.bucket_index h v)
  in
  (* Upper edges are inclusive (Prometheus [le] semantics): an
     observation exactly on a boundary lands in that bucket, the next
     representable float above it in the next one. *)
  check "below first" 0.5 0;
  check "on first edge" 1. 0;
  check "just above first edge" (Float.succ 1.) 1;
  check "on middle edge" 2. 1;
  check "interior" 3. 2;
  check "on last edge" 5. 2;
  check "overflow" 5.000001 3;
  check "negative" (-1.) 0;
  Obs.set_enabled true;
  Obs.Histogram.observe h 1.;
  Obs.Histogram.observe h (Float.succ 1.);
  Obs.Histogram.observe h 100.;
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  let cum = Obs.Histogram.bucket_counts h in
  Alcotest.(check int) "cumulative le=1" 1 (snd cum.(0));
  Alcotest.(check int) "cumulative le=2" 2 (snd cum.(1));
  Alcotest.(check int) "cumulative le=5" 2 (snd cum.(2));
  Alcotest.(check int) "cumulative +Inf" 3 (snd cum.(3));
  Alcotest.(check bool) "+Inf upper bound" true (fst cum.(3) = infinity)

(* --- snapshot determinism ----------------------------------------------- *)

let test_snapshot_determinism () =
  Obs.set_enabled true;
  let c = Obs.Counter.make ~help:"snapshot test" "test_obs_snap_total" in
  Obs.Counter.add c 3;
  let g = Obs.Gauge.make "test_obs_snap_gauge" in
  Obs.Gauge.set g 1.5;
  let h = fresh_hist [| 0.1; 1. |] in
  Obs.Histogram.observe h 0.05;
  let p1 = Obs.prometheus () in
  let p2 = Obs.prometheus () in
  Alcotest.(check string) "two prometheus dumps identical" p1 p2;
  let j1 = Obs.json () in
  let j2 = Obs.json () in
  Alcotest.(check string) "two json dumps identical" j1 j2;
  (* The dump carries the recorded values, not just the names. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line present" true
    (contains p1 "test_obs_snap_total 3");
  Alcotest.(check bool) "gauge line present" true
    (contains p1 "test_obs_snap_gauge 1.5")

(* --- histogram quantiles ------------------------------------------------ *)

let test_quantile_interpolation () =
  Obs.set_enabled true;
  let h = fresh_hist [| 1.; 2.; 4. |] in
  (* 4 observations in (1, 2], 4 in (2, 4]: the cumulative counts pin
     the quartiles to linear interpolation within those buckets. *)
  for _ = 1 to 4 do
    Obs.Histogram.observe h 1.5
  done;
  for _ = 1 to 4 do
    Obs.Histogram.observe h 3.
  done;
  Alcotest.(check (float 1e-9)) "median at the bucket boundary" 2.
    (Obs.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p25 mid-first-occupied-bucket" 1.5
    (Obs.Histogram.quantile h 0.25);
  Alcotest.(check (float 1e-9)) "p75 mid-second-occupied-bucket" 3.
    (Obs.Histogram.quantile h 0.75);
  Alcotest.(check (float 1e-9)) "q=1 is the top boundary" 4.
    (Obs.Histogram.quantile h 1.);
  Alcotest.(check (float 1e-9)) "q=0 is the bucket floor" 1.
    (Obs.Histogram.quantile h 0.)

let test_quantile_overflow_and_empty () =
  Obs.set_enabled true;
  let h = fresh_hist [| 1.; 2. |] in
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Obs.Histogram.quantile h 0.5));
  Obs.Histogram.observe h 10.;
  (* All mass in the overflow bucket: every quantile reports the top
     finite boundary (the histogram cannot resolve beyond it). *)
  Alcotest.(check (float 1e-9)) "overflow clamps to top boundary" 2.
    (Obs.Histogram.quantile h 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Obs.Histogram.quantile h 1.5))

let test_quantile_low_rank_edges () =
  Obs.set_enabled true;
  (* Regression: with all mass past empty leading buckets, a rank of
     zero used to resolve inside the first (empty) bucket and report
     its UPPER edge — 1.0 here — instead of skipping to the first
     occupied bucket's lower edge. *)
  let h = fresh_hist [| 1.; 2.; 3. |] in
  Obs.Histogram.observe h 2.5;
  Alcotest.(check (float 1e-9)) "q=0 skips empty leading buckets" 2.
    (Obs.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "q=1 stays in the occupied bucket" 3.
    (Obs.Histogram.quantile h 1.);
  (* A strictly positive rank below one observation lands in the same
     occupied bucket and interpolates from its lower edge. *)
  Alcotest.(check (float 1e-9)) "median interpolates within it" 2.5
    (Obs.Histogram.quantile h 0.5);
  (* Overflow-only mass: the boundary ranks clamp to the top finite
     edge from both sides. *)
  let h2 = fresh_hist [| 1.; 2. |] in
  Obs.Histogram.observe h2 50.;
  Alcotest.(check (float 1e-9)) "q=0 on overflow-only mass" 2.
    (Obs.Histogram.quantile h2 0.);
  Alcotest.(check (float 1e-9)) "q=1 on overflow-only mass" 2.
    (Obs.Histogram.quantile h2 1.)

(* For any observation set and any q, the quantile lies between the
   first occupied bucket's lower edge and the top finite boundary, and
   is monotone in q — in particular at the q = 0 and q = 1 edges. *)
let prop_quantile_bounds_and_monotone =
  QCheck.Test.make ~name:"quantile bounded by occupied range, monotone in q"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (float_range 0.001 6.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (vals, (qa, qb)) ->
      Obs.set_enabled true;
      let uppers = [| 1.; 2.; 3.; 4. |] in
      let h = fresh_hist uppers in
      List.iter (Obs.Histogram.observe h) vals;
      let lo_edge =
        (* lower edge of the first bucket holding any observation;
           overflow-only mass clamps to the top finite edge *)
        let idx =
          List.fold_left (fun acc v -> min acc (reference_index uppers v)) max_int vals
        in
        if idx >= Array.length uppers then uppers.(Array.length uppers - 1)
        else if idx = 0 then 0.
        else uppers.(idx - 1)
      in
      let q1 = Float.min qa qb and q2 = Float.max qa qb in
      let v0 = Obs.Histogram.quantile h 0. in
      let v1 = Obs.Histogram.quantile h q1 in
      let v2 = Obs.Histogram.quantile h q2 in
      let v3 = Obs.Histogram.quantile h 1. in
      Stats.Float_cmp.geq v0 lo_edge
      && Stats.Float_cmp.leq v3 uppers.(Array.length uppers - 1)
      && Stats.Float_cmp.leq v0 v1
      && Stats.Float_cmp.leq v1 v2
      && Stats.Float_cmp.leq v2 v3)

(* --- disabled path ------------------------------------------------------ *)

let test_disabled_span_allocates_nothing () =
  Obs.set_enabled false;
  let h = fresh_hist [| 0.1; 1. |] in
  let c = Obs.Counter.make "test_obs_disabled_total" in
  let spans = 100_000 in
  for _ = 1 to 64 do
    Obs.Span.stop h (Obs.Span.start ())
  done;
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to spans do
    let t0 = Obs.Span.start () in
    Obs.Counter.incr c;
    Obs.Span.stop h t0
  done;
  let per_span = (Gc.allocated_bytes () -. a0) /. float_of_int spans in
  (* Gc.allocated_bytes boxes its own float result, hence the sub-byte
     slack instead of an exact zero. *)
  Alcotest.(check bool)
    (Printf.sprintf "0 bytes per disabled span (measured %.4f)" per_span)
    true (per_span < 0.01);
  Alcotest.(check int) "nothing recorded while disabled" 0
    (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "counter untouched while disabled" 0.
    (Obs.Counter.value c)

(* --- prometheus label escaping ------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + m <= n do
      if String.sub s !i m = sub then found := true else incr i
    done;
    !found
  end

(* Every value of label [v] on [metric] in a Prometheus text dump,
   unescaped.  The scanner is escape-aware, so a label value that
   itself contains a quote-brace sequence cannot end the scan early. *)
let scan_label_values dump metric =
  let prefix = metric ^ "{v=\"" in
  let pl = String.length prefix and n = String.length dump in
  let out = ref [] in
  let i = ref 0 in
  while !i + pl <= n do
    if String.sub dump !i pl = prefix then begin
      let b = Buffer.create 16 in
      let j = ref (!i + pl) in
      let fin = ref false in
      while (not !fin) && !j < n do
        match dump.[!j] with
        | '\\' when !j + 1 < n ->
            (match dump.[!j + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | c -> Buffer.add_char b c);
            j := !j + 2
        | '"' ->
            fin := true;
            incr j
        | c ->
            Buffer.add_char b c;
            incr j
      done;
      out := Buffer.contents b :: !out;
      i := !j
    end
    else incr i
  done;
  !out

(* Escaping round-trip: a hostile label value (quotes, backslashes,
   newlines) survives a Prometheus dump intact once the dump's own
   escaping is undone — and never breaks the line structure. *)
let prometheus_label_roundtrip =
  QCheck.Test.make ~name:"prometheus label values escape round-trip" ~count:100
    (QCheck.string_gen_of_size
       (QCheck.Gen.int_range 0 12)
       (QCheck.Gen.oneofl
          [ 'a'; 'z'; '0'; '"'; '\\'; '\n'; '\t'; ' '; '{'; '}'; '='; ',' ]))
    (fun s ->
      Obs.set_enabled true;
      let c = Obs.Counter.make ~labels:[ ("v", s) ] "test_obs_escape_total" in
      Obs.Counter.incr c;
      List.mem s (scan_label_values (Obs.prometheus ()) "test_obs_escape_total"))

(* --- JSON exporters ------------------------------------------------------ *)

(* Minimal RFC 8259 well-formedness checker, enough to prove the
   exporters emit parseable JSON without a json-library dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail = ref false in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let adv () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if peek () = c then adv () else fail := true in
  let hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      if !pos >= n then fail := true
      else
        match s.[!pos] with
        | '"' ->
            adv ();
            fin := true
        | '\\' -> (
            adv ();
            match peek () with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> adv ()
            | 'u' ->
                adv ();
                for _ = 1 to 4 do
                  if !pos < n && hex s.[!pos] then adv () else fail := true
                done
            | _ -> fail := true)
        | c when Char.code c < 0x20 -> fail := true
        | _ -> adv ()
    done
  in
  let number () =
    if peek () = '-' then adv ();
    let digits () =
      if not (peek () >= '0' && peek () <= '9') then fail := true;
      while peek () >= '0' && peek () <= '9' do
        adv ()
      done
    in
    digits ();
    if peek () = '.' then begin
      adv ();
      digits ()
    end;
    match peek () with
    | 'e' | 'E' ->
        adv ();
        (match peek () with '+' | '-' -> adv () | _ -> ());
        digits ()
    | _ -> ()
  in
  let literal lit =
    let ln = String.length lit in
    if !pos + ln <= n && String.sub s !pos ln = lit then pos := !pos + ln
    else fail := true
  in
  let rec value d =
    if d > 64 || !fail then fail := true
    else begin
      skip_ws ();
      match peek () with
      | '{' ->
          adv ();
          skip_ws ();
          if peek () = '}' then adv ()
          else begin
            let cont = ref true in
            while !cont && not !fail do
              skip_ws ();
              string_lit ();
              skip_ws ();
              expect ':';
              value (d + 1);
              skip_ws ();
              match peek () with
              | ',' -> adv ()
              | '}' ->
                  adv ();
                  cont := false
              | _ -> fail := true
            done
          end
      | '[' ->
          adv ();
          skip_ws ();
          if peek () = ']' then adv ()
          else begin
            let cont = ref true in
            while !cont && not !fail do
              value (d + 1);
              skip_ws ();
              match peek () with
              | ',' -> adv ()
              | ']' ->
                  adv ();
                  cont := false
              | _ -> fail := true
            done
          end
      | '"' -> string_lit ()
      | 't' -> literal "true"
      | 'f' -> literal "false"
      | 'n' -> literal "null"
      | _ -> number ()
    end
  in
  value 0;
  skip_ws ();
  (not !fail) && !pos = n

let test_json_exports_well_formed () =
  Obs.set_enabled true;
  let hostile = "a\"b\\c\nd\te\011f" in
  let c =
    Obs.Counter.make ~labels:[ ("v", hostile) ] ~help:"hostile \"help\" \\ text"
      "test_obs_hostile_total"
  in
  Obs.Counter.incr c;
  Alcotest.(check bool) "Obs.json with hostile labels parses" true
    (json_valid (Obs.json ()));
  Obs.Trace.set_capacity 64;
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  Obs.Trace.instant_d "test.json" "detail \"quoted\" back\\slash\nnewline" 1;
  Obs.Trace.span_begin "test.json" 2;
  Obs.Trace.span_end "test.json";
  Obs.Trace.counter "test.json" 3;
  Obs.Trace.set_enabled false;
  Alcotest.(check bool) "Trace.chrome_json with hostile details parses" true
    (json_valid (Obs.Trace.chrome_json ()))

(* --- flight recorder ----------------------------------------------------- *)

let test_trace_wraparound () =
  Obs.Trace.set_capacity 8;
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  for i = 1 to 20 do
    Obs.Trace.instant_at "test.wrap" i (1000 + i)
  done;
  Obs.Trace.set_enabled false;
  Alcotest.(check int) "emitted counts past capacity" 20 (Obs.Trace.emitted ());
  Alcotest.(check int) "stored capped at capacity" 8 (Obs.Trace.stored ());
  let evs = Obs.Trace.events () in
  Alcotest.(check (list int)) "retains the newest events, oldest-first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Obs.Trace.ev_arg) evs);
  let lines = String.split_on_char '\n' (Obs.Trace.dump ()) in
  let wrap_lines =
    List.filter (fun l -> contains_sub l "test.wrap") lines
  in
  Alcotest.(check int) "dump carries exactly the retained window" 8
    (List.length wrap_lines)

let test_trace_concurrent_emission () =
  Obs.Trace.set_capacity 4096;
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  let n = 1000 in
  ignore
    (Stats.Par.map_range ~domains:4 n (fun i ->
         Obs.Trace.instant "test.conc" i));
  Obs.Trace.set_enabled false;
  let evs =
    List.filter
      (fun e -> e.Obs.Trace.ev_name = "test.conc")
      (Obs.Trace.events ())
  in
  Alcotest.(check int) "every concurrent emission recorded exactly once" n
    (List.length evs);
  let distinct =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Trace.ev_arg) evs)
  in
  Alcotest.(check int) "all args distinct" n (List.length distinct);
  Alcotest.(check bool) "emitted covers at least the emissions" true
    (Obs.Trace.emitted () >= n)

let test_trace_disabled_allocates_nothing () =
  Obs.Trace.set_enabled false;
  let before = Obs.Trace.emitted () in
  let iters = 100_000 in
  for i = 1 to 64 do
    Obs.Trace.span_begin "test.disabled" i;
    Obs.Trace.span_end "test.disabled"
  done;
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for i = 1 to iters do
    Obs.Trace.span_begin "test.disabled" i;
    Obs.Trace.instant "test.disabled" i;
    Obs.Trace.counter "test.disabled" i;
    Obs.Trace.span_end "test.disabled"
  done;
  (* Gc.allocated_bytes boxes its own float result, hence the sub-byte
     slack instead of an exact zero. *)
  let per_call = (Gc.allocated_bytes () -. a0) /. float_of_int (4 * iters) in
  Alcotest.(check bool)
    (Printf.sprintf "0 bytes per disabled trace call (measured %.4f)" per_call)
    true (per_call < 0.01);
  Alcotest.(check int) "nothing emitted while disabled" before
    (Obs.Trace.emitted ())

(* --- admin endpoint ------------------------------------------------------ *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      path
  in
  let _ = Unix.write_substring sock req 0 (String.length req) in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let rec drain () =
    let k = Unix.read sock chunk 0 1024 in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      drain ()
    end
  in
  drain ();
  Buffer.contents buf

let test_admin_fast_routes () =
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_obs_admin_total" in
  Obs.Counter.add c 7;
  let fast = function
    | "/healthz" -> Some ("text/plain", "ok\n")
    | "/metrics" -> Some ("text/plain; version=0.0.4", Obs.prometheus ())
    | _ -> None
  in
  let admin = Obs.Admin.start ~port:0 ~fast () in
  Fun.protect ~finally:(fun () -> Obs.Admin.stop admin) @@ fun () ->
  let port = Obs.Admin.port admin in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let health = http_get port "/healthz" in
  Alcotest.(check bool) "healthz answers 200" true
    (contains_sub health "200 OK");
  Alcotest.(check bool) "healthz body" true (contains_sub health "ok\n");
  let metrics = http_get port "/metrics" in
  Alcotest.(check bool) "metrics answers 200" true
    (contains_sub metrics "200 OK");
  Alcotest.(check bool) "metrics body carries the counter" true
    (contains_sub metrics "test_obs_admin_total 7")

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "registry",
        [
          q concurrent_counter_sum;
          q concurrent_float_sum;
          q bucket_index_matches_reference;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_determinism;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "quantile overflow and empty" `Quick
            test_quantile_overflow_and_empty;
          Alcotest.test_case "quantile low-rank edges" `Quick
            test_quantile_low_rank_edges;
          q prop_quantile_bounds_and_monotone;
          Alcotest.test_case "disabled span allocates nothing" `Quick
            test_disabled_span_allocates_nothing;
        ] );
      ( "export",
        [
          q prometheus_label_roundtrip;
          Alcotest.test_case "json exporters well-formed" `Quick
            test_json_exports_well_formed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound keeps newest window" `Quick
            test_trace_wraparound;
          Alcotest.test_case "concurrent emission exact counts" `Quick
            test_trace_concurrent_emission;
          Alcotest.test_case "disabled trace allocates nothing" `Quick
            test_trace_disabled_allocates_nothing;
        ] );
      ( "admin",
        [
          Alcotest.test_case "fast routes over a real socket" `Quick
            test_admin_fast_routes;
        ] );
    ]

(* Observability layer: exact counting under concurrency, histogram
   bucket-boundary semantics, snapshot determinism, and the
   zero-allocation disabled path. *)

let () = Stats.Pool.set_capacity 3

(* --- concurrent counting ------------------------------------------------ *)

(* Increments from pool workers and the caller must sum exactly: the
   sharded cells may split the count any way between domains, but the
   total is the number of increments, every time. *)
let concurrent_counter_sum =
  QCheck.Test.make ~name:"concurrent increments sum exactly" ~count:15
    QCheck.(pair (int_range 1 3_000) (int_range 1 4))
    (fun (n, domains) ->
      Obs.set_enabled true;
      let c = Obs.Counter.make "test_obs_concurrent_total" in
      let before = Obs.Counter.value c in
      ignore
        (Stats.Par.map_range ~domains n (fun i ->
             if i land 1 = 0 then Obs.Counter.incr c else Obs.Counter.add c 1));
      Obs.Counter.value c -. before = float_of_int n)

let concurrent_float_sum =
  QCheck.Test.make ~name:"concurrent float adds sum exactly" ~count:10
    (QCheck.int_range 1 2_000)
    (fun n ->
      Obs.set_enabled true;
      let c = Obs.Counter.make "test_obs_concurrent_float_total" in
      let before = Obs.Counter.value c in
      (* 0.25 is exactly representable, so the CAS accumulation admits
         no rounding and the check can be exact. *)
      ignore
        (Stats.Par.map_range ~domains:4 n (fun _ ->
             Obs.Counter.add_float c 0.25));
      Obs.Counter.value c -. before = 0.25 *. float_of_int n)

(* --- histogram bucket boundaries ---------------------------------------- *)

(* Reference semantics: smallest [i] with [v <= uppers.(i)], overflow
   bucket at [Array.length uppers]. *)
let reference_index uppers v =
  let n = Array.length uppers in
  let rec go i = if i >= n || v <= uppers.(i) then i else go (i + 1) in
  go 0

let hist_counter = ref 0

let fresh_hist buckets =
  incr hist_counter;
  Obs.Histogram.make ~buckets
    (Printf.sprintf "test_obs_hist_%d_seconds" !hist_counter)

let bucket_index_matches_reference =
  QCheck.Test.make ~name:"bucket_index matches reference" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8) (float_range 0.001 100.))
        (float_range (-1.) 200.))
    (fun (raw, v) ->
      let uppers = List.sort_uniq compare raw |> Array.of_list in
      let h = fresh_hist uppers in
      Obs.Histogram.bucket_index h v = reference_index uppers v)

let test_bucket_boundaries () =
  let h = fresh_hist [| 1.; 2.; 5. |] in
  let check what v expect =
    Alcotest.(check int) what expect (Obs.Histogram.bucket_index h v)
  in
  (* Upper edges are inclusive (Prometheus [le] semantics): an
     observation exactly on a boundary lands in that bucket, the next
     representable float above it in the next one. *)
  check "below first" 0.5 0;
  check "on first edge" 1. 0;
  check "just above first edge" (Float.succ 1.) 1;
  check "on middle edge" 2. 1;
  check "interior" 3. 2;
  check "on last edge" 5. 2;
  check "overflow" 5.000001 3;
  check "negative" (-1.) 0;
  Obs.set_enabled true;
  Obs.Histogram.observe h 1.;
  Obs.Histogram.observe h (Float.succ 1.);
  Obs.Histogram.observe h 100.;
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  let cum = Obs.Histogram.bucket_counts h in
  Alcotest.(check int) "cumulative le=1" 1 (snd cum.(0));
  Alcotest.(check int) "cumulative le=2" 2 (snd cum.(1));
  Alcotest.(check int) "cumulative le=5" 2 (snd cum.(2));
  Alcotest.(check int) "cumulative +Inf" 3 (snd cum.(3));
  Alcotest.(check bool) "+Inf upper bound" true (fst cum.(3) = infinity)

(* --- snapshot determinism ----------------------------------------------- *)

let test_snapshot_determinism () =
  Obs.set_enabled true;
  let c = Obs.Counter.make ~help:"snapshot test" "test_obs_snap_total" in
  Obs.Counter.add c 3;
  let g = Obs.Gauge.make "test_obs_snap_gauge" in
  Obs.Gauge.set g 1.5;
  let h = fresh_hist [| 0.1; 1. |] in
  Obs.Histogram.observe h 0.05;
  let p1 = Obs.prometheus () in
  let p2 = Obs.prometheus () in
  Alcotest.(check string) "two prometheus dumps identical" p1 p2;
  let j1 = Obs.json () in
  let j2 = Obs.json () in
  Alcotest.(check string) "two json dumps identical" j1 j2;
  (* The dump carries the recorded values, not just the names. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line present" true
    (contains p1 "test_obs_snap_total 3");
  Alcotest.(check bool) "gauge line present" true
    (contains p1 "test_obs_snap_gauge 1.5")

(* --- histogram quantiles ------------------------------------------------ *)

let test_quantile_interpolation () =
  Obs.set_enabled true;
  let h = fresh_hist [| 1.; 2.; 4. |] in
  (* 4 observations in (1, 2], 4 in (2, 4]: the cumulative counts pin
     the quartiles to linear interpolation within those buckets. *)
  for _ = 1 to 4 do
    Obs.Histogram.observe h 1.5
  done;
  for _ = 1 to 4 do
    Obs.Histogram.observe h 3.
  done;
  Alcotest.(check (float 1e-9)) "median at the bucket boundary" 2.
    (Obs.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p25 mid-first-occupied-bucket" 1.5
    (Obs.Histogram.quantile h 0.25);
  Alcotest.(check (float 1e-9)) "p75 mid-second-occupied-bucket" 3.
    (Obs.Histogram.quantile h 0.75);
  Alcotest.(check (float 1e-9)) "q=1 is the top boundary" 4.
    (Obs.Histogram.quantile h 1.);
  Alcotest.(check (float 1e-9)) "q=0 is the bucket floor" 1.
    (Obs.Histogram.quantile h 0.)

let test_quantile_overflow_and_empty () =
  Obs.set_enabled true;
  let h = fresh_hist [| 1.; 2. |] in
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Obs.Histogram.quantile h 0.5));
  Obs.Histogram.observe h 10.;
  (* All mass in the overflow bucket: every quantile reports the top
     finite boundary (the histogram cannot resolve beyond it). *)
  Alcotest.(check (float 1e-9)) "overflow clamps to top boundary" 2.
    (Obs.Histogram.quantile h 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Obs.Histogram.quantile h 1.5))

let test_quantile_low_rank_edges () =
  Obs.set_enabled true;
  (* Regression: with all mass past empty leading buckets, a rank of
     zero used to resolve inside the first (empty) bucket and report
     its UPPER edge — 1.0 here — instead of skipping to the first
     occupied bucket's lower edge. *)
  let h = fresh_hist [| 1.; 2.; 3. |] in
  Obs.Histogram.observe h 2.5;
  Alcotest.(check (float 1e-9)) "q=0 skips empty leading buckets" 2.
    (Obs.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "q=1 stays in the occupied bucket" 3.
    (Obs.Histogram.quantile h 1.);
  (* A strictly positive rank below one observation lands in the same
     occupied bucket and interpolates from its lower edge. *)
  Alcotest.(check (float 1e-9)) "median interpolates within it" 2.5
    (Obs.Histogram.quantile h 0.5);
  (* Overflow-only mass: the boundary ranks clamp to the top finite
     edge from both sides. *)
  let h2 = fresh_hist [| 1.; 2. |] in
  Obs.Histogram.observe h2 50.;
  Alcotest.(check (float 1e-9)) "q=0 on overflow-only mass" 2.
    (Obs.Histogram.quantile h2 0.);
  Alcotest.(check (float 1e-9)) "q=1 on overflow-only mass" 2.
    (Obs.Histogram.quantile h2 1.)

(* For any observation set and any q, the quantile lies between the
   first occupied bucket's lower edge and the top finite boundary, and
   is monotone in q — in particular at the q = 0 and q = 1 edges. *)
let prop_quantile_bounds_and_monotone =
  QCheck.Test.make ~name:"quantile bounded by occupied range, monotone in q"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (float_range 0.001 6.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (vals, (qa, qb)) ->
      Obs.set_enabled true;
      let uppers = [| 1.; 2.; 3.; 4. |] in
      let h = fresh_hist uppers in
      List.iter (Obs.Histogram.observe h) vals;
      let lo_edge =
        (* lower edge of the first bucket holding any observation;
           overflow-only mass clamps to the top finite edge *)
        let idx =
          List.fold_left (fun acc v -> min acc (reference_index uppers v)) max_int vals
        in
        if idx >= Array.length uppers then uppers.(Array.length uppers - 1)
        else if idx = 0 then 0.
        else uppers.(idx - 1)
      in
      let q1 = Float.min qa qb and q2 = Float.max qa qb in
      let v0 = Obs.Histogram.quantile h 0. in
      let v1 = Obs.Histogram.quantile h q1 in
      let v2 = Obs.Histogram.quantile h q2 in
      let v3 = Obs.Histogram.quantile h 1. in
      Stats.Float_cmp.geq v0 lo_edge
      && Stats.Float_cmp.leq v3 uppers.(Array.length uppers - 1)
      && Stats.Float_cmp.leq v0 v1
      && Stats.Float_cmp.leq v1 v2
      && Stats.Float_cmp.leq v2 v3)

(* --- disabled path ------------------------------------------------------ *)

let test_disabled_span_allocates_nothing () =
  Obs.set_enabled false;
  let h = fresh_hist [| 0.1; 1. |] in
  let c = Obs.Counter.make "test_obs_disabled_total" in
  let spans = 100_000 in
  for _ = 1 to 64 do
    Obs.Span.stop h (Obs.Span.start ())
  done;
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to spans do
    let t0 = Obs.Span.start () in
    Obs.Counter.incr c;
    Obs.Span.stop h t0
  done;
  let per_span = (Gc.allocated_bytes () -. a0) /. float_of_int spans in
  (* Gc.allocated_bytes boxes its own float result, hence the sub-byte
     slack instead of an exact zero. *)
  Alcotest.(check bool)
    (Printf.sprintf "0 bytes per disabled span (measured %.4f)" per_span)
    true (per_span < 0.01);
  Alcotest.(check int) "nothing recorded while disabled" 0
    (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "counter untouched while disabled" 0.
    (Obs.Counter.value c)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "registry",
        [
          q concurrent_counter_sum;
          q concurrent_float_sum;
          q bucket_index_matches_reference;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_determinism;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "quantile overflow and empty" `Quick
            test_quantile_overflow_and_empty;
          Alcotest.test_case "quantile low-rank edges" `Quick
            test_quantile_low_rank_edges;
          q prop_quantile_bounds_and_monotone;
          Alcotest.test_case "disabled span allocates nothing" `Quick
            test_disabled_span_allocates_nothing;
        ] );
    ]

(* Tests for the HMM with missing (loss) observations: correctness of
   the forward-backward machinery against brute-force enumeration, EM
   behaviour, and parameter recovery on synthetic data. *)

let check_close eps = Alcotest.(check (float eps))

(* A small, well-conditioned reference model: 2 hidden states, 3
   symbols.  State 0 emits low symbols and rarely loses; state 1 emits
   the top symbol and loses often. *)
let reference : Hmm.t =
  {
    n = 2;
    m = 3;
    pi = [| 0.7; 0.3 |];
    a = [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |];
    b = [| [| 0.6; 0.35; 0.05 |]; [| 0.05; 0.15; 0.8 |] |];
    c = [| 0.01; 0.05; 0.4 |];
  }

(* Brute-force likelihood: sum over all hidden state paths. *)
let brute_force_likelihood (t : Hmm.t) obs =
  let emission i = function
    | Some j -> t.Hmm.b.(i).(j) *. (1. -. t.Hmm.c.(j))
    | None ->
        let acc = ref 0. in
        for j = 0 to t.Hmm.m - 1 do
          acc := !acc +. (t.Hmm.b.(i).(j) *. t.Hmm.c.(j))
        done;
        !acc
  in
  let tt = Array.length obs in
  let rec extend time state prob =
    if time = tt then prob
    else
      let acc = ref 0. in
      for next = 0 to t.Hmm.n - 1 do
        acc :=
          !acc
          +. extend (time + 1) next (prob *. t.Hmm.a.(state).(next) *. emission next obs.(time + 1 - 1))
      done;
      !acc
  in
  (* Handle time 0 separately: pi * e(o_0), then extend. *)
  let total = ref 0. in
  for s0 = 0 to t.Hmm.n - 1 do
    let p0 = t.Hmm.pi.(s0) *. emission s0 obs.(0) in
    let rec walk time state prob =
      if time = tt - 1 then prob
      else begin
        let acc = ref 0. in
        for next = 0 to t.Hmm.n - 1 do
          acc := !acc +. walk (time + 1) next (prob *. t.Hmm.a.(state).(next) *. emission next obs.(time + 1))
        done;
        !acc
      end
    in
    total := !total +. walk 0 s0 p0
  done;
  ignore extend;
  !total

let short_obs = [| Some 0; Some 1; None; Some 2; Some 0; None; Some 1 |]

let test_likelihood_vs_brute_force () =
  let ll = Hmm.log_likelihood reference short_obs in
  let bf = log (brute_force_likelihood reference short_obs) in
  check_close 1e-9 "scaled forward matches enumeration" bf ll

let test_likelihood_no_losses () =
  let obs = [| Some 0; Some 0; Some 1; Some 2; Some 1 |] in
  let ll = Hmm.log_likelihood reference obs in
  let bf = log (brute_force_likelihood reference obs) in
  check_close 1e-9 "all-observed case" bf ll

let test_posteriors_normalized () =
  let gamma = Hmm.state_posteriors reference short_obs in
  Array.iteri
    (fun t row ->
      let s = Array.fold_left ( +. ) 0. row in
      check_close 1e-9 (Printf.sprintf "gamma at %d sums to 1" t) 1. s)
    gamma

let test_posterior_tracks_emission () =
  (* A long run of the top symbol should put the posterior firmly on
     hidden state 1. *)
  let obs = Array.make 10 (Some 2) in
  let gamma = Hmm.state_posteriors reference obs in
  Alcotest.(check bool) "state 1 dominant" true (gamma.(5).(1) > 0.9)

let test_validate_accepts_reference () = Hmm.validate reference

let test_validate_rejects_bad () =
  let bad = { reference with pi = [| 0.5; 0.7 |] } in
  Alcotest.(check bool) "bad pi rejected" true
    (try
       Hmm.validate bad;
       false
     with Invalid_argument _ -> true)

let test_init_random_valid () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 20 do
    Hmm.validate (Hmm.init_random rng ~n:3 ~m:4 ~loss_fraction:0.02)
  done

let test_init_informed_valid () =
  let rng = Stats.Rng.create 5 in
  let obs = [| Some 0; None; Some 1; Some 1; None; Some 0; Some 2 |] in
  Hmm.validate (Hmm.init_informed rng ~n:2 ~m:3 obs)

let test_simulate_statistics () =
  let rng = Stats.Rng.create 7 in
  let obs, states = Hmm.simulate rng reference ~len:50_000 in
  Alcotest.(check int) "lengths match" (Array.length obs) (Array.length states);
  (* Loss fraction should be near the stationary mixture's value. *)
  let losses = Array.fold_left (fun n o -> if o = None then n + 1 else n) 0 obs in
  let frac = float_of_int losses /. 50_000. in
  Alcotest.(check bool) "plausible loss fraction" true (frac > 0.05 && frac < 0.25);
  (* Hidden states must be within range. *)
  Array.iter (fun s -> Alcotest.(check bool) "state range" true (s >= 0 && s < 2)) states

let test_em_improves_likelihood () =
  let rng = Stats.Rng.create 9 in
  let obs, _ = Hmm.simulate rng reference ~len:3000 in
  let t0 = Hmm.init_random rng ~n:2 ~m:3 ~loss_fraction:0.1 in
  let ll0 = Hmm.log_likelihood t0 obs in
  let fitted, stats = Hmm.fit_from ~max_iter:30 t0 obs in
  Alcotest.(check bool) "EM improves the likelihood" true
    (stats.Hmm.log_likelihood > ll0);
  Hmm.validate fitted

let test_em_monotone_steps () =
  (* Likelihood must be non-decreasing across successive single-step
     fits (the fundamental EM guarantee). *)
  let rng = Stats.Rng.create 13 in
  let obs, _ = Hmm.simulate rng reference ~len:2000 in
  let model = ref (Hmm.init_random rng ~n:2 ~m:3 ~loss_fraction:0.1) in
  let last = ref (Hmm.log_likelihood !model obs) in
  for step = 1 to 15 do
    let next, _ = Hmm.fit_from ~max_iter:1 !model obs in
    let ll = Hmm.log_likelihood next obs in
    if ll < !last -. 1e-6 then Alcotest.failf "likelihood decreased at step %d" step;
    last := ll;
    model := next
  done

let test_fit_recovers_loss_posterior () =
  let rng = Stats.Rng.create 17 in
  let obs, _ = Hmm.simulate rng reference ~len:30_000 in
  (* (a) MLE consistency: EM started at the truth stays near it. *)
  let truth_pmf = Hmm.virtual_delay_pmf reference obs in
  let at_truth, _ = Hmm.fit_from reference obs in
  let at_truth_pmf = Hmm.virtual_delay_pmf at_truth obs in
  check_close 0.05 "EM started at the truth stays near it" 0.
    (Stats.Histogram.total_variation truth_pmf at_truth_pmf);
  (* (b) optimization competitiveness: a data-driven fit reaches a
     likelihood close to the reference model's. *)
  let fitted, stats = Hmm.fit ~rng ~n:2 ~m:3 obs in
  Hmm.validate fitted;
  let ref_ll = Hmm.log_likelihood reference obs in
  Alcotest.(check bool) "fit within 2% of the truth's likelihood" true
    (stats.Hmm.log_likelihood > ref_ll +. (0.02 *. ref_ll))

let test_virtual_pmf_is_distribution () =
  let pmf = Hmm.virtual_delay_pmf reference short_obs in
  check_close 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. pmf);
  Array.iter (fun p -> Alcotest.(check bool) "non-negative" true (p >= 0.)) pmf

let test_virtual_pmf_requires_loss () =
  Alcotest.check_raises "no loss"
    (Invalid_argument "Hmm.virtual_delay_pmf: no loss in the sequence") (fun () ->
      ignore (Hmm.virtual_delay_pmf reference [| Some 0; Some 1 |]))

let test_virtual_pmf_favors_lossy_symbol () =
  (* In the reference model symbol 2 has c = 0.4 vs 0.01/0.05: losses
     should be attributed mostly to symbol 2 when the hidden state
     suggests it. *)
  let obs = [| Some 2; Some 2; None; Some 2; Some 2 |] in
  let pmf = Hmm.virtual_delay_pmf reference obs in
  Alcotest.(check bool) "symbol 2 dominates" true (pmf.(2) > 0.8)

let test_empty_sequence_rejected () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Hmm.log_likelihood reference [||]);
       false
     with Invalid_argument _ -> true)

let test_fit_invalid_restarts () =
  let rng = Stats.Rng.create 1 in
  Alcotest.check_raises "restarts 0" (Invalid_argument "Hmm.fit: restarts must be positive")
    (fun () -> ignore (Hmm.fit ~restarts:0 ~rng ~n:2 ~m:3 [| Some 0; None; Some 1 |]))

let test_degenerate_single_state () =
  (* n = 1: the HMM reduces to an i.i.d. symbol model; fitting must
     still work and produce a sane loss posterior. *)
  let rng = Stats.Rng.create 19 in
  let obs, _ = Hmm.simulate rng reference ~len:5000 in
  let fitted, stats = Hmm.fit ~rng ~n:1 ~m:3 obs in
  Alcotest.(check bool) "converged" true stats.Hmm.converged;
  Hmm.validate fitted

(* QCheck: likelihood of random small models matches brute force on
   random short observation sequences. *)
let model_and_obs_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let rng = Stats.Rng.create seed in
    let model = Hmm.init_random rng ~n:2 ~m:3 ~loss_fraction:0.2 in
    let* len = int_range 2 8 in
    let obs, _ = Hmm.simulate rng model ~len in
    return (model, obs))

let prop_likelihood_matches_brute_force =
  QCheck.Test.make ~name:"scaled likelihood = brute force" ~count:100
    (QCheck.make model_and_obs_gen) (fun (model, obs) ->
      let ll = Hmm.log_likelihood model obs in
      let bf = log (brute_force_likelihood model obs) in
      abs_float (ll -. bf) < 1e-8)

let qcheck_cases = List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_likelihood_matches_brute_force ]

let () =
  Alcotest.run "hmm"
    [
      ( "forward-backward",
        [
          Alcotest.test_case "likelihood vs brute force" `Quick
            test_likelihood_vs_brute_force;
          Alcotest.test_case "all-observed case" `Quick test_likelihood_no_losses;
          Alcotest.test_case "posteriors normalized" `Quick test_posteriors_normalized;
          Alcotest.test_case "posterior tracks emission" `Quick
            test_posterior_tracks_emission;
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence_rejected;
        ] );
      ( "model",
        [
          Alcotest.test_case "validate reference" `Quick test_validate_accepts_reference;
          Alcotest.test_case "validate rejects bad" `Quick test_validate_rejects_bad;
          Alcotest.test_case "random init valid" `Quick test_init_random_valid;
          Alcotest.test_case "informed init valid" `Quick test_init_informed_valid;
          Alcotest.test_case "simulate statistics" `Quick test_simulate_statistics;
        ] );
      ( "em",
        [
          Alcotest.test_case "improves likelihood" `Quick test_em_improves_likelihood;
          Alcotest.test_case "monotone steps" `Quick test_em_monotone_steps;
          Alcotest.test_case "recovers loss posterior" `Slow
            test_fit_recovers_loss_posterior;
          Alcotest.test_case "single hidden state" `Quick test_degenerate_single_state;
          Alcotest.test_case "invalid restarts" `Quick test_fit_invalid_restarts;
        ] );
      ( "virtual delay pmf",
        [
          Alcotest.test_case "is a distribution" `Quick test_virtual_pmf_is_distribution;
          Alcotest.test_case "requires a loss" `Quick test_virtual_pmf_requires_loss;
          Alcotest.test_case "favors lossy symbol" `Quick test_virtual_pmf_favors_lossy_symbol;
        ] );
      ("properties", qcheck_cases);
    ]

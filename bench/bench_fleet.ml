(* Fleet benchmark: streaming monitoring throughput and the two
   contracts behind it — pooled epoch determinism (serial tick must be
   bit-identical to the pooled tick, transitions included) and the
   incremental-vs-refit speedup (one online-EM iteration per epoch
   instead of a full history refit); emitted as BENCH_fleet.json, or
   BENCH_fleet.smoke.json with --smoke.

   Schema is documented in DESIGN.md ("BENCH_fleet.json").  The bench
   aborts (exit 1) if any pooled run diverges from the serial one, or
   if the incremental path fails its speedup floor (>= 1x in smoke,
   >= 5x in the full run). *)

let time_of f =
  let t0 = Obs.Span.now_ns () in
  let r = f () in
  (r, float_of_int (Obs.Span.now_ns () - t0) *. 1e-9)

let conclusion_tag = function
  | None -> "u"
  | Some Dcl.Identify.Strongly_dominant -> "s"
  | Some Dcl.Identify.Weakly_dominant -> "w"
  | Some Dcl.Identify.No_dominant -> "n"

(* One complete fleet run: seeded source, seeded scheduler, [epochs]
   ticks.  The transition log captures the full operator-visible event
   stream; determinism means fingerprint AND log match across domain
   counts. *)
let run_fleet ~domains ~paths ~epochs ~epoch_len ~seed =
  let log = Buffer.create 256 in
  let rng = Stats.Rng.create seed in
  let src = Fleet.Source.synthetic ~rng ~paths () in
  let config = Fleet.Path_state.config ~scheme:(Fleet.Source.scheme src) () in
  let on_transition (tr : Fleet.Scheduler.transition) =
    Printf.bprintf log "%d:%d:%s>%s;" tr.Fleet.Scheduler.epoch
      tr.Fleet.Scheduler.path
      (conclusion_tag tr.Fleet.Scheduler.was)
      (conclusion_tag tr.Fleet.Scheduler.now)
  in
  let sched = Fleet.Scheduler.create ~domains ~on_transition ~rng ~paths config in
  for _ = 1 to epochs do
    for p = 0 to paths - 1 do
      Fleet.Scheduler.push sched ~path:p
        (Fleet.Source.pull src ~path:p ~len:epoch_len)
    done;
    ignore (Fleet.Scheduler.tick sched : int)
  done;
  (Fleet.Scheduler.fingerprint sched, Buffer.contents log)

let run_determinism ~smoke buf =
  let paths = if smoke then 64 else 256 in
  let epochs = if smoke then 4 else 8 in
  let epoch_len = 32 and seed = 0xF1EE7 in
  let domain_counts = if smoke then [ 2; 4 ] else [ 2; 4; 8 ] in
  let fp_serial, log_serial = run_fleet ~domains:1 ~paths ~epochs ~epoch_len ~seed in
  let identical =
    List.for_all
      (fun d ->
        let fp, log = run_fleet ~domains:d ~paths ~epochs ~epoch_len ~seed in
        if fp <> fp_serial || log <> log_serial then begin
          Printf.eprintf
            "FATAL: pooled fleet (%d domains) diverges from serial \
             (fingerprint %s vs %s, logs %s)\n"
            d fp fp_serial
            (if log = log_serial then "identical" else "differ");
          false
        end
        else true)
      domain_counts
  in
  if not identical then exit 1;
  Printf.bprintf buf
    "  \"determinism\": {\"paths\": %d, \"epochs\": %d, \"epoch_len\": %d,\n\
    \    \"domain_counts\": [%s], \"serial_fingerprint\": \"%s\",\n\
    \    \"transitions_logged\": %d, \"serial_identical_to_pool\": true},\n"
    paths epochs epoch_len
    (String.concat ", " (List.map string_of_int domain_counts))
    fp_serial
    (List.length (String.split_on_char ';' log_serial) - 1);
  Printf.eprintf "bench_fleet: determinism ok (%d paths, domains %s)\n%!" paths
    (String.concat "/" (List.map string_of_int domain_counts))

(* Incremental-vs-refit: the same pre-generated observation stream fed
   once through the streaming scheduler (one online-EM iteration per
   epoch) and once through the classical alternative — re-fit the MMHD
   from scratch on the full history every epoch.  The refit arm skips
   re-testing entirely, which only flatters it. *)
let run_speedup ~smoke buf =
  let paths = if smoke then 12 else 48 in
  let epochs = if smoke then 5 else 10 in
  let epoch_len = 32 in
  let n = 2 and m = 5 in
  let max_iter = if smoke then 10 else 25 in
  let rng = Stats.Rng.create 0xBA7C4 in
  let src = Fleet.Source.synthetic ~m ~rng ~paths () in
  let batches = Array.make_matrix paths epochs [||] in
  for p = 0 to paths - 1 do
    for e = 0 to epochs - 1 do
      batches.(p).(e) <- Fleet.Source.pull src ~path:p ~len:epoch_len
    done
  done;
  let config = Fleet.Path_state.config ~n ~scheme:(Fleet.Source.scheme src) () in
  let sched =
    Fleet.Scheduler.create ~domains:1 ~rng:(Stats.Rng.create 42) ~paths config
  in
  let (), incremental_s =
    time_of (fun () ->
        for e = 0 to epochs - 1 do
          for p = 0 to paths - 1 do
            Fleet.Scheduler.push sched ~path:p batches.(p).(e)
          done;
          ignore (Fleet.Scheduler.tick sched : int)
        done)
  in
  let histories = Array.make paths [||] in
  let refit_rng = Stats.Rng.create 42 in
  let (), refit_s =
    time_of (fun () ->
        for e = 0 to epochs - 1 do
          for p = 0 to paths - 1 do
            histories.(p) <- Array.append histories.(p) batches.(p).(e);
            if Array.exists (fun o -> o <> None) histories.(p) then begin
              let t0 = Mmhd.init_informed refit_rng ~n ~m histories.(p) in
              ignore (Mmhd.fit_from ~eps:1e-3 ~max_iter t0 histories.(p))
            end
          done
        done)
  in
  let speedup = refit_s /. incremental_s in
  let floor = if smoke then 1. else 5. in
  Printf.bprintf buf
    "  \"incremental_vs_refit\": {\"paths\": %d, \"epochs\": %d, \"epoch_len\": %d,\n\
    \    \"refit_max_iter\": %d, \"incremental_seconds\": %.6f,\n\
    \    \"refit_seconds\": %.6f, \"speedup\": %.2f},\n"
    paths epochs epoch_len max_iter incremental_s refit_s speedup;
  Printf.eprintf "bench_fleet: incremental %.2fx vs per-epoch refit\n%!" speedup;
  if speedup < floor then begin
    Printf.eprintf
      "FATAL: incremental speedup %.2fx below the %.0fx floor\n" speedup floor;
    exit 1
  end

let run_scale ~smoke buf =
  let paths = if smoke then 2_000 else 100_000 in
  let epochs = 3 and epoch_len = 16 in
  let rng = Stats.Rng.create 0x5CA1E in
  let src = Fleet.Source.synthetic ~rng ~paths () in
  let config = Fleet.Path_state.config ~scheme:(Fleet.Source.scheme src) () in
  let sched = Fleet.Scheduler.create ~domains:1 ~rng ~paths config in
  Obs.set_enabled true;
  Obs.reset ();
  let tick_total = ref 0. and wall_total = ref 0. in
  for _ = 1 to epochs do
    let (), gen_s =
      time_of (fun () ->
          for p = 0 to paths - 1 do
            Fleet.Scheduler.push sched ~path:p
              (Fleet.Source.pull src ~path:p ~len:epoch_len)
          done)
    in
    let _, tick_s = time_of (fun () -> Fleet.Scheduler.tick sched) in
    tick_total := !tick_total +. tick_s;
    wall_total := !wall_total +. gen_s +. tick_s
  done;
  let q p = Obs.Histogram.quantile Fleet.Scheduler.epoch_histogram p in
  let p50 = q 0.5 and p95 = q 0.95 and p99 = q 0.99 in
  Obs.set_enabled false;
  let updates = float_of_int (paths * epochs) in
  Printf.bprintf buf
    "  \"scale\": {\"paths\": %d, \"epochs\": %d, \"epoch_len\": %d,\n\
    \    \"tick_seconds_total\": %.4f, \"paths_per_s\": %.0f,\n\
    \    \"end_to_end_paths_per_s\": %.0f,\n\
    \    \"epoch_latency_p50\": %.4f, \"epoch_latency_p95\": %.4f,\n\
    \    \"epoch_latency_p99\": %.4f},\n"
    paths epochs epoch_len !tick_total (updates /. !tick_total)
    (updates /. !wall_total) p50 p95 p99;
  Printf.eprintf "bench_fleet: %d paths, %.0f path-updates/s in the tick\n%!"
    paths (updates /. !tick_total)

let () =
  let smoke = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--smoke" -> smoke := true
        | _ ->
            Printf.eprintf
              "bench_fleet: unknown argument %S\nusage: bench_fleet [--smoke]\n"
              arg;
            exit 2)
    Sys.argv;
  let smoke = !smoke in
  (* Force real pool workers even on small CI machines, so the pooled
     determinism runs genuinely interleave. *)
  Stats.Pool.set_capacity (max 8 (Stats.Pool.size ()));
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"bench\": \"fleet\",\n  \"cores\": %d,\n"
    (Stats.Pool.size ());
  run_determinism ~smoke buf;
  run_speedup ~smoke buf;
  run_scale ~smoke buf;
  Printf.bprintf buf
    "  \"note\": \"determinism re-runs the same seeded fleet serially and on \
     2/4/8 pool domains and requires bitwise-equal model fingerprints and \
     transition logs. incremental_vs_refit feeds one pre-generated stream \
     through the streaming scheduler (one online-EM iteration per epoch, \
     re-tests included) and through per-epoch full-history refits \
     (informed init, eps 1e-3, re-tests excluded); the speedup floor is 1x \
     in smoke and 5x in the full run, and grows with history length since \
     refit cost is O(history) per epoch. scale drives the full fleet for 3 \
     epochs; paths_per_s counts scheduler updates only, end_to_end adds \
     synthetic-source generation; epoch latency quantiles come from the \
     dcl_fleet_epoch_seconds histogram, linearly interpolated within \
     buckets.\"\n}\n";
  let path = if smoke then "BENCH_fleet.smoke.json" else "BENCH_fleet.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.eprintf "bench_fleet: wrote %s\n%!" path
